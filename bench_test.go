// Benchmarks regenerating the paper's figures and quantitative claims, one
// per experiment id of DESIGN.md, plus micro-benchmarks of the protocol
// primitives. Run with:
//
//	go test -bench=. -benchmem
package uncheatgrid

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

// benchWorkload is the standard 64-bit-output synthetic function.
func benchWorkload(seed uint64) Workload {
	return NewSyntheticWorkload(seed, 1, 64)
}

func mustProver(b *testing.B, n int, f Workload, opts ...ProtocolOption) *Prover {
	b.Helper()
	p, err := NewProver(n, func(i uint64) []byte { return f.Eval(i) }, opts...)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkFig1ProveVerify measures the Figure 1 unit of work: one proof
// plus one verification on a 16-leaf tree.
func BenchmarkFig1ProveVerify(b *testing.B) {
	f := benchWorkload(1)
	prover := mustProver(b, 16, f)
	verifier, err := NewVerifier(prover.Commitment(), WithRand(rand.New(rand.NewSource(1))))
	if err != nil {
		b.Fatal(err)
	}
	check := RecomputeCheck(func(i uint64) []byte { return f.Eval(i) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := prover.Respond([]uint64{2})
		if err != nil {
			b.Fatal(err)
		}
		if err := verifier.Verify(Challenge{Indices: []uint64{2}}, resp, check); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2SampleSize measures the Eq. 3 sample-size computation across
// the Figure 2 sweep.
func BenchmarkFig2SampleSize(b *testing.B) {
	ratios := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range ratios {
			if _, err := RequiredSamples(1e-4, r, 0); err != nil {
				b.Fatal(err)
			}
			if _, err := RequiredSamples(1e-4, r, 0.5); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig3PartialProve measures the Section 3.3 storage-bounded proof
// across subtree heights: the cost dial the rco formula predicts.
func BenchmarkFig3PartialProve(b *testing.B) {
	f := benchWorkload(3)
	const n = 1 << 12
	for _, ell := range []int{0, 4, 8} {
		b.Run(fmt.Sprintf("ell=%d", ell), func(b *testing.B) {
			prover := mustProver(b, n, f, WithSubtreeHeight(ell))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := prover.Respond([]uint64{uint64(i) % n}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEq2MonteCarlo measures one full protocol round against a
// semi-honest cheater — the unit of the Eq. 2 Monte-Carlo experiment.
func BenchmarkEq2MonteCarlo(b *testing.B) {
	f := benchWorkload(4)
	check := RecomputeCheck(func(i uint64) []byte { return f.Eval(i) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		producer, err := NewSemiHonest(f, 0.5, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		prover, err := NewProver(256, producer.Claim)
		if err != nil {
			b.Fatal(err)
		}
		verifier, err := NewVerifier(prover.Commitment(),
			WithRand(rand.New(rand.NewSource(int64(i)))))
		if err != nil {
			b.Fatal(err)
		}
		ch, err := verifier.Challenge(14)
		if err != nil {
			b.Fatal(err)
		}
		resp, err := prover.Respond(ch.Indices)
		if err != nil {
			b.Fatal(err)
		}
		_ = verifier.Verify(ch, resp, check) // rejection expected: that is the experiment
	}
}

// BenchmarkCommCBS and BenchmarkCommNaive measure the end-to-end task
// exchange whose byte counts the comm experiment reports.
func BenchmarkCommCBS(b *testing.B) {
	benchScheme(b, SchemeSpec{Kind: SchemeCBS, M: 50})
}

// BenchmarkCommNaive is the O(n)-upload counterpart of BenchmarkCommCBS.
func BenchmarkCommNaive(b *testing.B) {
	benchScheme(b, SchemeSpec{Kind: SchemeNaive, M: 50})
}

// BenchmarkCommNICBS measures the non-interactive variant.
func BenchmarkCommNICBS(b *testing.B) {
	benchScheme(b, SchemeSpec{Kind: SchemeNICBS, M: 50, ChainIters: 1})
}

func benchScheme(b *testing.B, spec SchemeSpec) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		report, err := RunSim(SimConfig{
			Spec:     spec,
			Workload: "synthetic",
			Seed:     uint64(i),
			TaskSize: 1 << 12,
			Tasks:    1,
			Honest:   1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(report.SupervisorBytesRecv), "upload-B")
	}
}

// BenchmarkEq5Reroll measures the Section 4.2 re-rolling attack at r=0.5,
// m=4 (expected 16 tree rebuilds per success).
func BenchmarkEq5Reroll(b *testing.B) {
	chain, err := NewHashChain(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		result, err := Reroll(RerollConfig{
			F:           benchWorkload(uint64(i)),
			N:           64,
			Ratio:       0.5,
			M:           4,
			Chain:       chain,
			MaxAttempts: 1 << 20,
			Seed:        uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(result.Attempts), "attempts")
	}
}

// BenchmarkSchemesPopulation measures a full mixed-population simulation —
// the schemes comparison row generator.
func BenchmarkSchemesPopulation(b *testing.B) {
	for _, kind := range []SchemeKind{SchemeCBS, SchemeNICBS, SchemeNaive} {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := RunSim(SimConfig{
					Spec:         SchemeSpec{Kind: kind, M: 33, ChainIters: 1},
					Workload:     "synthetic",
					Seed:         uint64(i),
					TaskSize:     1 << 10,
					Tasks:        4,
					Honest:       2,
					SemiHonest:   2,
					HonestyRatio: 0.5,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVerifyVsRecompute times the factoring workload's two sides of
// the Step 4 check: computing f versus verifying a claimed output.
func BenchmarkVerifyVsRecompute(b *testing.B) {
	f := NewFactorWorkload(2004)
	outputs := make([][]byte, 64)
	for x := range outputs {
		outputs[x] = f.Eval(uint64(x))
	}
	b.Run("recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.Eval(uint64(i % 64))
		}
	})
	b.Run("verify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !f.VerifyOutput(uint64(i%64), outputs[i%64]) {
				b.Fatal("verification rejected a true output")
			}
		}
	})
}

// BenchmarkTreeBuild measures commitment construction — the participant's
// fixed overhead per task.
func BenchmarkTreeBuild(b *testing.B) {
	f := benchWorkload(5)
	for _, n := range []int{1 << 10, 1 << 14} {
		values := make([][]byte, n)
		for i := range values {
			values[i] = f.Eval(uint64(i))
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := BuildMerkleTree(values); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMerkleBuildParallel compares the sequential and parallel tree
// builders at n = 2^16 and 2^18 — the bottom layer of the concurrent
// verification engine. The parallel root is bit-identical to the
// sequential one; only the construction schedule differs. Allocation
// counts are part of the contract: the arena-backed build allocates
// O(tree depth), not O(n).
func BenchmarkMerkleBuildParallel(b *testing.B) {
	f := benchWorkload(6)
	for _, n := range []int{1 << 16, 1 << 18} {
		values := make([][]byte, n)
		for i := range values {
			values[i] = f.Eval(uint64(i))
		}
		at := func(i int) []byte { return values[i] }
		b.Run(fmt.Sprintf("n=%d/sequential", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := BuildMerkleTreeFunc(n, at); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, p := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("n=%d/parallel-p%d", n, p), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := BuildMerkleTreeFunc(n, at,
						WithMerkleParallelism(p)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkMerkleStreamBuild measures the one-pass commitment stream — the
// participant path that never holds the leaf set in memory — serial versus
// sharded across worker goroutines. Roots are bit-identical in every mode.
// The serial fast path is allocation-free per Add; build-wide allocations
// stay O(depth + shards).
func BenchmarkMerkleStreamBuild(b *testing.B) {
	f := benchWorkload(6)
	for _, n := range []int{1 << 16, 1 << 18} {
		values := make([][]byte, n)
		for i := range values {
			values[i] = f.Eval(uint64(i))
		}
		run := func(b *testing.B, opts ...MerkleOption) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sb, err := NewMerkleStreamBuilder(n, opts...)
				if err != nil {
					b.Fatal(err)
				}
				for _, v := range values {
					if err := sb.Add(v); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := sb.Root(); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.Run(fmt.Sprintf("n=%d/serial", n), func(b *testing.B) { run(b) })
		for _, p := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("n=%d/sharded-p%d", n, p), func(b *testing.B) {
				run(b, WithMerkleParallelism(p))
			})
		}
	}
}

// BenchmarkSupervisionPooled compares serial and pooled supervision of an
// 8-participant population: the same 8 CBS tasks verified one at a time
// versus concurrently through the SupervisorPool. Per-task seed derivation
// makes the two runs produce identical reports.
func BenchmarkSupervisionPooled(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				report, err := RunSim(SimConfig{
					Spec:     SchemeSpec{Kind: SchemeCBS, M: 33},
					Workload: "synthetic",
					Seed:     uint64(i),
					TaskSize: 1 << 12,
					Tasks:    8,
					Honest:   8,
					Workers:  workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if report.TasksAssigned != 8 {
					b.Fatalf("assigned %d tasks, want 8", report.TasksAssigned)
				}
			}
		})
	}
}

// BenchmarkPipelinedSession compares one-dialogue-per-task supervision with
// a pipelined multi-task session on the same single connection — the
// transport-level batching experiment. The latency variants model a real
// link where every frame pays a fixed one-way send delay: pipelining
// overlaps the waits and batching shares frames across tasks, so the
// session sustains far more tasks per second. Over a zero-latency in-memory
// pipe the two should be within noise on one CPU — the session machinery
// costs (nearly) nothing when it cannot help.
func BenchmarkPipelinedSession(b *testing.B) {
	const tasks = 8
	const window = 8
	const taskSize = 1 << 10
	for _, latency := range []time.Duration{0, 500 * time.Microsecond} {
		for _, pipelined := range []bool{false, true} {
			mode := "dialogue"
			if pipelined {
				mode = fmt.Sprintf("session-w%d", window)
			}
			b.Run(fmt.Sprintf("latency=%s/%s", latency, mode), func(b *testing.B) {
				var wire int64
				for i := 0; i < b.N; i++ {
					supConn, partConn := Pipe()
					p, err := NewParticipant("p", HonestFactory)
					if err != nil {
						b.Fatal(err)
					}
					serveErr := make(chan error, 1)
					go func() { serveErr <- p.Serve(WithLatency(partConn, latency)) }()
					sup, err := NewSupervisor(SupervisorConfig{
						Spec: SchemeSpec{Kind: SchemeCBS, M: 20},
						Seed: int64(i),
					})
					if err != nil {
						b.Fatal(err)
					}
					conn := WithLatency(supConn, latency)
					taskList := make([]Task, tasks)
					for j := range taskList {
						taskList[j] = Task{
							ID: uint64(j), Start: uint64(j) * taskSize, N: taskSize,
							Workload: "synthetic", Seed: 7,
						}
					}
					if pipelined {
						sess, err := sup.OpenSession(conn, window)
						if err != nil {
							b.Fatal(err)
						}
						var wg sync.WaitGroup
						for _, task := range taskList {
							wg.Add(1)
							go func(task Task) {
								defer wg.Done()
								if _, err := sess.RunTask(task); err != nil {
									b.Error(err)
								}
							}(task)
						}
						wg.Wait()
						if err := sess.Close(); err != nil {
							b.Fatal(err)
						}
					} else {
						for _, task := range taskList {
							if _, err := sup.RunTask(conn, task); err != nil {
								b.Fatal(err)
							}
						}
					}
					wire += supConn.Stats().BytesSent() + supConn.Stats().BytesRecv()
					_ = supConn.Close()
					if err := <-serveErr; err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.N*tasks)/b.Elapsed().Seconds(), "tasks/s")
				b.ReportMetric(float64(wire)/float64(int64(b.N)*tasks), "wire-B/task")
			})
		}
	}
}

// BenchmarkResumedSession extends the dialogue-vs-session comparison with
// the fault-recovery row: the same 8-task pipelined workload on one
// connection, but over a link that garbles frames. Corruption is caught by
// the batch checksum, the connection is quarantined, and in-flight tasks
// resume mid-protocol on a redialed replacement — the metric shows what
// reconnect-and-resume costs relative to the clean session run.
func BenchmarkResumedSession(b *testing.B) {
	const tasks = 8
	const window = 8
	const taskSize = 1 << 10
	for _, garble := range []float64{0, 0.05} {
		b.Run(fmt.Sprintf("garble=%g", garble), func(b *testing.B) {
			var reconnects int64
			for i := 0; i < b.N; i++ {
				p, err := NewParticipant("p", HonestFactory)
				if err != nil {
					b.Fatal(err)
				}
				var mu sync.Mutex
				var supConns []Conn
				var serveErrs []chan error
				dial := func() Conn {
					supConn, partConn := Pipe()
					var sup, part Conn = supConn, partConn
					mu.Lock()
					attempt := len(supConns)
					mu.Unlock()
					if garble > 0 {
						sup = WithFaults(sup, FaultPlan{GarbleProb: garble, Seed: int64(i*1000 + attempt*2)})
						part = WithFaults(part, FaultPlan{GarbleProb: garble, Seed: int64(i*1000 + attempt*2 + 1)})
					}
					ch := make(chan error, 1)
					go func() { ch <- p.Serve(part) }()
					mu.Lock()
					supConns = append(supConns, sup)
					serveErrs = append(serveErrs, ch)
					mu.Unlock()
					return sup
				}
				pool, err := NewSupervisorPool(SupervisorConfig{
					Spec: SchemeSpec{Kind: SchemeCBS, M: 20},
					Seed: int64(i),
				}, window)
				if err != nil {
					b.Fatal(err)
				}
				taskList := make([]Task, tasks)
				for j := range taskList {
					taskList[j] = Task{
						ID: uint64(j), Start: uint64(j) * taskSize, N: taskSize,
						Workload: "synthetic", Seed: 7,
					}
				}
				stream, err := pool.RunTasksStream(context.Background(),
					[]Conn{dial()}, taskList, window,
					WithStreamRedial(func(Conn) (Conn, error) { return dial(), nil }),
					WithStreamMaxReconnects(1000),
					WithStreamRecvTimeout(2*time.Second))
				if err != nil {
					b.Fatal(err)
				}
				count := 0
				for so := range stream.Outcomes() {
					count++
					if !so.Outcome.Verdict.Accepted {
						b.Fatalf("honest task %d rejected: %s", so.Outcome.Task.ID, so.Outcome.Verdict.Reason)
					}
				}
				if err := stream.Err(); err != nil {
					b.Fatal(err)
				}
				if count != tasks {
					b.Fatalf("completed %d tasks, want %d", count, tasks)
				}
				mu.Lock()
				reconnects += int64(len(supConns) - 1)
				for _, c := range supConns {
					_ = c.Close()
				}
				errs := serveErrs
				mu.Unlock()
				for _, ch := range errs {
					if err := <-ch; err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(b.N*tasks)/b.Elapsed().Seconds(), "tasks/s")
			b.ReportMetric(float64(reconnects)/float64(b.N), "reconnects/op")
		})
	}
}

// BenchmarkReplicatedDoubleCheck compares the two ways to run the
// double-check scheme on the same R connections: the serial RunReplicated
// dialogue (replicas exchanged one at a time, one frame per message) versus
// a replicated pipelined stream (uploads overlap freely inside each
// connection's window; only the comparison meets at the cross-connection
// rendezvous). On a link where every frame pays a fixed send delay the
// pipelined form must sustain a multiple of the dialogue's replicated
// tasks/s — the acceptance bar is >= 2x at 500µs.
func BenchmarkReplicatedDoubleCheck(b *testing.B) {
	const tasks = 6
	const replicas = 3
	const window = 4
	const taskSize = 1 << 10
	for _, latency := range []time.Duration{0, 500 * time.Microsecond} {
		for _, pipelined := range []bool{false, true} {
			mode := "dialogue"
			if pipelined {
				mode = fmt.Sprintf("stream-w%d", window)
			}
			b.Run(fmt.Sprintf("latency=%s/%s", latency, mode), func(b *testing.B) {
				var wire int64
				for i := 0; i < b.N; i++ {
					conns := make([]Conn, replicas)
					raw := make([]Conn, replicas)
					serveErrs := make([]chan error, replicas)
					for j := 0; j < replicas; j++ {
						supConn, partConn := Pipe(WithPipeBuffer(8))
						p, err := NewParticipant(fmt.Sprintf("p%d", j), HonestFactory)
						if err != nil {
							b.Fatal(err)
						}
						serveErrs[j] = make(chan error, 1)
						go func(ch chan error, c Conn) { ch <- p.Serve(c) }(serveErrs[j], WithLatency(partConn, latency))
						raw[j] = supConn
						conns[j] = WithLatency(supConn, latency)
					}
					cfg := SupervisorConfig{
						Spec: SchemeSpec{Kind: SchemeDoubleCheck, M: 1},
						Seed: int64(i),
					}
					taskList := make([]Task, tasks)
					for j := range taskList {
						taskList[j] = Task{
							ID: uint64(j), Start: uint64(j) * taskSize, N: taskSize,
							Workload: "synthetic", Seed: 7,
						}
					}
					if pipelined {
						// Size the worker bound like RunSim does
						// (connections x window): an exchange holds a worker
						// slot across its link-latency stalls, so the default
						// (NumCPU, 1 on this box) would serialize the stream.
						pool, err := NewSupervisorPool(cfg, replicas*window)
						if err != nil {
							b.Fatal(err)
						}
						stream, err := pool.RunTasksStream(context.Background(), conns, taskList, window,
							WithStreamReplicas(replicas))
						if err != nil {
							b.Fatal(err)
						}
						count := 0
						for so := range stream.Outcomes() {
							count++
							if !so.Outcome.Verdict.Accepted {
								b.Errorf("honest replica rejected: %s", so.Outcome.Verdict.Reason)
							}
						}
						if err := stream.Err(); err != nil {
							b.Fatal(err)
						}
						if count != tasks*replicas {
							b.Fatalf("streamed %d replica outcomes, want %d", count, tasks*replicas)
						}
					} else {
						sup, err := NewSupervisor(cfg)
						if err != nil {
							b.Fatal(err)
						}
						for _, task := range taskList {
							outcomes, err := sup.RunReplicated(conns, task)
							if err != nil {
								b.Fatal(err)
							}
							for _, o := range outcomes {
								if !o.Verdict.Accepted {
									b.Errorf("honest replica rejected: %s", o.Verdict.Reason)
								}
							}
						}
					}
					for _, c := range raw {
						wire += c.Stats().BytesSent() + c.Stats().BytesRecv()
						_ = c.Close()
					}
					for _, ch := range serveErrs {
						if err := <-ch; err != nil {
							b.Fatal(err)
						}
					}
				}
				b.ReportMetric(float64(b.N*tasks)/b.Elapsed().Seconds(), "tasks/s")
				b.ReportMetric(float64(wire)/float64(int64(b.N)*tasks), "wire-B/task")
			})
		}
	}
}

// BenchmarkBrokerPipeline measures the GRACE relay hop: the same pipelined
// NI-CBS workload run direct versus through a BrokerHub, with relay-hop
// batching on and off. The topology models the GRACE deployment — the
// supervisor↔broker leg is the WAN hop where every frame send pays a 500µs
// link delay, the broker↔participant leg is the cheap grid-site LAN — so
// direct and brokered runs cross one delayed hop per frame and are directly
// comparable. Relay-hop batching shows up in the relayed-frames/op metric:
// LAN-fast participant bursts queue at the hub behind the WAN sends and are
// re-coalesced, so the batched hub forwards the same tagged traffic in
// fewer delayed frames.
func BenchmarkBrokerPipeline(b *testing.B) {
	const tasks = 16
	const window = 16
	const taskSize = 1 << 10
	const latency = 500 * time.Microsecond
	modes := []struct {
		name             string
		broker, batching bool
	}{
		{"direct", false, false},
		{"broker-batched", true, true},
		{"broker-unbatched", true, false},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			var relayed int64
			for i := 0; i < b.N; i++ {
				p, err := NewParticipant("p", HonestFactory)
				if err != nil {
					b.Fatal(err)
				}
				serveErr := make(chan error, 1)
				var supConn Conn
				var hub *BrokerHub
				if mode.broker {
					hub = NewBrokerHub(WithRelayBatching(mode.batching))
					hubDown, partConn := Pipe(WithPipeBuffer(8))
					if err := HelloWorker(partConn, "p"); err != nil {
						b.Fatal(err)
					}
					if err := hub.Attach(hubDown); err != nil {
						b.Fatal(err)
					}
					go func() { serveErr <- p.Serve(partConn) }()
					sc, hubUp := Pipe(WithPipeBuffer(8))
					supConn = WithLatency(sc, latency)
					if err := HelloSupervisor(supConn, "p"); err != nil {
						b.Fatal(err)
					}
					if err := hub.Attach(WithLatency(hubUp, latency)); err != nil {
						b.Fatal(err)
					}
				} else {
					sc, partConn := Pipe(WithPipeBuffer(8))
					go func() { serveErr <- p.Serve(WithLatency(partConn, latency)) }()
					supConn = WithLatency(sc, latency)
				}
				sup, err := NewSupervisor(SupervisorConfig{
					Spec: SchemeSpec{Kind: SchemeNICBS, M: 20, ChainIters: 1},
					Seed: int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				sess, err := sup.OpenSession(supConn, window)
				if err != nil {
					b.Fatal(err)
				}
				var wg sync.WaitGroup
				for j := 0; j < tasks; j++ {
					wg.Add(1)
					go func(j int) {
						defer wg.Done()
						outcome, err := sess.RunTask(Task{
							ID: uint64(j), Start: uint64(j) * taskSize, N: taskSize,
							Workload: "synthetic", Seed: 7,
						})
						if err != nil {
							b.Error(err)
							return
						}
						if !outcome.Verdict.Accepted {
							b.Errorf("honest task %d rejected: %s", j, outcome.Verdict.Reason)
						}
					}(j)
				}
				wg.Wait()
				if err := sess.Close(); err != nil {
					b.Fatal(err)
				}
				_ = supConn.Close()
				if err := <-serveErr; err != nil {
					b.Fatal(err)
				}
				if hub != nil {
					if err := hub.Close(); err != nil {
						b.Fatal(err)
					}
					relayed += hub.RelayedMessages()
				}
			}
			b.ReportMetric(float64(b.N*tasks)/b.Elapsed().Seconds(), "tasks/s")
			if mode.broker {
				b.ReportMetric(float64(relayed)/float64(b.N), "relayed-frames/op")
			}
		})
	}
}

// BenchmarkChunkedUpload measures a naive-scheme task whose full result
// upload exceeds MaxFrameBytes: 2^21 password digests encode to ~69 MiB and
// must travel as an ordered chunk stream. Byte accounting stays exact — the
// outcome's receive total equals the connection counter, frame headers
// included.
func BenchmarkChunkedUpload(b *testing.B) {
	const n = 1 << 21
	task := Task{ID: 1, N: n, Workload: "password", Seed: 3}
	for i := 0; i < b.N; i++ {
		supConn, partConn := Pipe(WithPipeBuffer(8))
		p, err := NewParticipant("p", HonestFactory)
		if err != nil {
			b.Fatal(err)
		}
		serveErr := make(chan error, 1)
		go func() { serveErr <- p.Serve(partConn) }()
		sup, err := NewSupervisor(SupervisorConfig{
			Spec: SchemeSpec{Kind: SchemeNaive, M: 8},
			Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		outcome, err := sup.RunTask(supConn, task)
		if err != nil {
			b.Fatal(err)
		}
		if !outcome.Verdict.Accepted {
			b.Fatalf("honest upload rejected: %s", outcome.Verdict.Reason)
		}
		if outcome.BytesRecv <= MaxFrameBytes {
			b.Fatalf("upload of %d bytes does not exceed MaxFrameBytes — not a chunked case", outcome.BytesRecv)
		}
		if outcome.BytesRecv != supConn.Stats().BytesRecv() {
			b.Fatalf("byte accounting drifted: outcome %d, connection %d", outcome.BytesRecv, supConn.Stats().BytesRecv())
		}
		b.SetBytes(outcome.BytesRecv)
		_ = supConn.Close()
		if err := <-serveErr; err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHashChain measures the NI-CBS sample derivation as the Eq. 5
// cost dial k grows.
func BenchmarkHashChain(b *testing.B) {
	root := []byte("a 32-byte-ish commitment root...")
	for _, k := range []int{1, 16, 256} {
		chain, err := NewHashChain(k)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := chain.SampleIndices(root, 10, 1<<20); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBroker1kRoutes scales the hub to 1000 concurrent supervisor
// routes and compares the legacy topology — one physical supervisor link
// per route — against the multiplexed topology, where every route shares
// ONE physical supervisor link as a tagged sub-stream with per-route
// credit flow control. Each route binds a registered participant and runs
// one NI-CBS task, so the measured traffic crosses the full relay path.
// The goroutines/route metric is sampled after every route is bound and
// includes the per-worker floor (one Serve goroutine plus the hub's two
// worker-link loops) that both modes pay; the dedicated mode adds two more
// hub loops per route for its per-route physical links, while the muxed
// mode pays two loops for the single shared link regardless of route
// count. Single-CPU caveat: with GOMAXPROCS=1 the modes' wall-clock times
// converge (everything serializes anyway); the goroutine budget and
// frames-relayed/s remain the meaningful comparison.
func BenchmarkBroker1kRoutes(b *testing.B) {
	const routes = 1000
	const taskSize = 256
	modes := []struct {
		name  string
		muxed bool
	}{
		{"dedicated-links", false},
		{"muxed-one-link", true},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			var relayed int64
			var goroutinesPerRoute float64
			var creditWindowBytes float64
			for i := 0; i < b.N; i++ {
				base := runtime.NumGoroutine()
				hub := NewBrokerHub()
				serveErrs := make([]chan error, routes)
				partConns := make([]Conn, routes)
				for j := 0; j < routes; j++ {
					p, err := NewParticipant(fmt.Sprintf("w-%d", j), HonestFactory)
					if err != nil {
						b.Fatal(err)
					}
					hubDown, partConn := Pipe(WithPipeBuffer(8))
					if err := HelloWorker(partConn, p.ID()); err != nil {
						b.Fatal(err)
					}
					if err := hub.Attach(hubDown); err != nil {
						b.Fatal(err)
					}
					serveErrs[j] = make(chan error, 1)
					partConns[j] = partConn
					go func(j int, p *Participant) { serveErrs[j] <- p.Serve(partConns[j]) }(j, p)
				}
				conns := make([]Conn, routes)
				var mux *SupervisorMux
				if mode.muxed {
					sc, hubUp := Pipe(WithPipeBuffer(8))
					m, err := OpenMux(sc, "bench-sup")
					if err != nil {
						b.Fatal(err)
					}
					if err := hub.Attach(hubUp); err != nil {
						b.Fatal(err)
					}
					mux = m
					for j := 0; j < routes; j++ {
						c, err := m.OpenRoute(fmt.Sprintf("w-%d", j))
						if err != nil {
							b.Fatal(err)
						}
						conns[j] = c
					}
				} else {
					for j := 0; j < routes; j++ {
						sc, hubUp := Pipe(WithPipeBuffer(8))
						if err := HelloSupervisor(sc, fmt.Sprintf("w-%d", j)); err != nil {
							b.Fatal(err)
						}
						if err := hub.Attach(hubUp); err != nil {
							b.Fatal(err)
						}
						conns[j] = sc
					}
				}
				for j := 0; j < routes; j++ {
					name := fmt.Sprintf("w-%d", j)
					for {
						st, ok := hub.WorkerStats(name)
						if ok && st.Binds >= 1 {
							break
						}
						time.Sleep(50 * time.Microsecond)
					}
				}
				goroutinesPerRoute += float64(runtime.NumGoroutine()-base) / routes
				sup, err := NewSupervisor(SupervisorConfig{
					Spec: SchemeSpec{Kind: SchemeNICBS, M: 8, ChainIters: 1},
					Seed: int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				var wg sync.WaitGroup
				errs := make(chan error, routes)
				for j := 0; j < routes; j++ {
					wg.Add(1)
					go func(j int) {
						defer wg.Done()
						sess, err := sup.OpenSession(conns[j], 2)
						if err != nil {
							errs <- fmt.Errorf("route %d open: %w", j, err)
							return
						}
						outcome, err := sess.RunTask(Task{
							ID: uint64(j), Start: uint64(j) * taskSize, N: taskSize,
							Workload: "synthetic", Seed: 7,
						})
						if err != nil {
							errs <- fmt.Errorf("route %d task: %w", j, err)
							return
						}
						if !outcome.Verdict.Accepted {
							errs <- fmt.Errorf("route %d: honest task rejected: %s", j, outcome.Verdict.Reason)
							return
						}
						errs <- sess.Close()
					}(j)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
				if mode.muxed {
					// Adaptive credit sizing is the hub's memory bound at this
					// fan-out: the live per-route windows sum far below the
					// static routes x 256 KiB ceiling of fixed windows.
					creditWindowBytes += float64(hub.CreditWindowBytes())
				}
				for _, c := range conns {
					_ = c.Close()
				}
				if mux != nil {
					if err := mux.Close(); err != nil {
						b.Fatal(err)
					}
				}
				for j := 0; j < routes; j++ {
					if err := <-serveErrs[j]; err != nil {
						b.Fatalf("participant w-%d serve: %v", j, err)
					}
				}
				relayed += hub.RelayedMessages()
				if err := hub.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(goroutinesPerRoute/float64(b.N), "goroutines/route")
			b.ReportMetric(float64(relayed)/b.Elapsed().Seconds(), "frames-relayed/s")
			b.ReportMetric(float64(b.N*routes)/b.Elapsed().Seconds(), "tasks/s")
			if mode.muxed {
				b.ReportMetric(creditWindowBytes/float64(b.N*routes), "credit-window-B/route")
			}
		})
	}
}
