module uncheatgrid

go 1.24
