// Signalwatch runs a long-horizon SETI-style sky watch through the
// streaming supervisor. Unlike setisearch, which audits one fixed batch,
// this watch treats the spectrum as an open-ended stream: tasks are drawn
// lazily from a source (no task list is ever materialized), every
// participant folds each settled window of task digests into a rolling
// hash-chained commitment the supervisor spot-checks as the run goes, and
// the shift ends with a durable checkpoint barrier so the next shift can
// pick up exactly where this one stopped.
//
// The second half demonstrates why the checkpoints are worth carrying: a
// simulated supervisor crash mid-run restarts from the last durable
// segment and still produces the same verdicts as an uninterrupted run.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"uncheatgrid"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

const (
	participants = 3
	taskChunks   = 256 // spectrum chunks per task (|D|)
	horizon      = 48  // tasks in one watch shift
	seed         = 1977
)

func run() error {
	if err := watchShift(); err != nil {
		return err
	}
	return killAndRestart()
}

// watchShift streams one shift of the watch through the public pool API:
// lazy task source, rolling window commitments, drain checkpoint barrier.
func watchShift() error {
	spec := uncheatgrid.SchemeSpec{
		Kind: uncheatgrid.SchemeCBS, M: 12, ChainIters: 1,
		WindowTasks: 4, WindowSamples: 2,
	}
	dir, err := os.MkdirTemp("", "signalwatch-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// The source materializes nothing: task i exists only when the
	// scheduler's bounded look-ahead asks for it, so the same code drives a
	// 48-task demo or a year-long watch in O(look-ahead) memory.
	source := func(i uint64) (uncheatgrid.Task, bool) {
		if i >= horizon {
			return uncheatgrid.Task{}, false
		}
		return uncheatgrid.Task{
			ID: i, Start: i * taskChunks, N: taskChunks,
			Workload: "signal", Seed: seed,
		}, true
	}

	conns := make([]uncheatgrid.Conn, participants)
	for i := range conns {
		p, err := uncheatgrid.NewParticipant(
			fmt.Sprintf("scope-%d", i), uncheatgrid.HonestFactory,
			uncheatgrid.WithParticipantCheckpointDir(dir))
		if err != nil {
			return err
		}
		supConn, partConn := uncheatgrid.Pipe(uncheatgrid.WithPipeBuffer(8))
		conns[i] = supConn
		go func() { _ = p.Serve(partConn) }()
	}
	defer func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}()

	pool, err := uncheatgrid.NewSupervisorPool(
		uncheatgrid.SupervisorConfig{Spec: spec, Seed: seed}, participants*2)
	if err != nil {
		return err
	}
	ledgers := make([]*uncheatgrid.WindowLedger, participants)
	for i := range ledgers {
		if ledgers[i], err = uncheatgrid.NewWindowLedger(spec); err != nil {
			return err
		}
	}

	stream, err := pool.RunTaskSource(context.Background(), conns, source, 4,
		uncheatgrid.WithStreamWindowSettle(ledgers),
		uncheatgrid.WithStreamDrainCheckpoint(horizon))
	if err != nil {
		return err
	}

	fmt.Printf("watching %d tasks × %d chunks across %d scopes (m=%d audits/task)\n",
		horizon, taskChunks, participants, spec.M)
	tones, accepted := 0, 0
	for so := range stream.Outcomes() {
		if so.Outcome.Verdict.Accepted {
			accepted++
		}
		for _, rep := range so.Outcome.Reports {
			tones++
			if tones <= 3 {
				fmt.Printf("  candidate: %s\n", rep.S)
			}
		}
	}
	if err := stream.Err(); err != nil {
		return err
	}

	var settled, violations uint64
	var pending int
	for _, led := range ledgers {
		stats := led.Stats()
		settled += stats.Settled
		violations += stats.Violations
		pending += stats.Pending
	}
	fmt.Printf("shift done: %d/%d accepted, %d candidate tones\n", accepted, horizon, tones)
	fmt.Printf("rolling commitments: %d windows settled, %d violations, %d tasks pending\n",
		settled, violations, pending)

	// The drain barrier left every scope durably checkpointed at the shift
	// boundary — a fresh process restores and resumes from here.
	for i := 0; i < participants; i++ {
		restored, err := uncheatgrid.NewParticipant(
			fmt.Sprintf("scope-%d", i), uncheatgrid.HonestFactory,
			uncheatgrid.WithParticipantCheckpointDir(dir))
		if err != nil {
			return err
		}
		seq, ok, err := restored.RestoreCheckpoint()
		if err != nil {
			return err
		}
		if !ok || seq != horizon {
			return fmt.Errorf("scope-%d checkpoint = (%d, %v), want (%d, true)", i, seq, ok, horizon)
		}
	}
	fmt.Printf("checkpoint barrier: all %d scopes durable at task %d\n\n", participants, horizon)
	return nil
}

// killAndRestart crashes a streaming simulation mid-run and restarts it
// from the last durable checkpoint, then checks the interrupted run ruled
// exactly like an uninterrupted one.
func killAndRestart() error {
	base := uncheatgrid.SimConfig{
		Spec: uncheatgrid.SchemeSpec{
			Kind: uncheatgrid.SchemeCBS, M: 12, ChainIters: 1,
			WindowTasks: 4, WindowSamples: 2,
		},
		Workload:       "signal",
		Seed:           seed,
		TaskSize:       128,
		Tasks:          horizon,
		Honest:         2,
		SemiHonest:     1,
		HonestyRatio:   0.5,
		Workers:        4,
		PipelineWindow: 4,
		Stream:         true,
	}

	clean, err := uncheatgrid.RunSim(base)
	if err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "signalwatch-ckpt-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	killed := base
	killed.CheckpointDir = dir
	killed.CheckpointEvery = 16
	killed.KillAfter = 20
	restarted, err := uncheatgrid.RunSim(killed)
	if err != nil {
		return err
	}

	fmt.Printf("crash drill: killed after %d settled tasks, restarted from checkpoint %d\n",
		killed.KillAfter, killed.CheckpointEvery)
	fmt.Printf("  clean run:     detected %d/%d cheaters, %d windows settled\n",
		clean.CheatersDetected, clean.CheatersTotal, clean.WindowsSettled)
	fmt.Printf("  restarted run: detected %d/%d cheaters, %d windows settled\n",
		restarted.CheatersDetected, restarted.CheatersTotal, restarted.WindowsSettled)
	if restarted.CheatersDetected != clean.CheatersDetected ||
		restarted.WindowsSettled != clean.WindowsSettled ||
		restarted.HonestAccused != clean.HonestAccused {
		return fmt.Errorf("restarted run diverged from the clean run")
	}
	fmt.Println("verdicts identical: the crash cost wall-clock, never correctness")
	return nil
}
