// Setisearch runs the SETI@home-style spectral search with the Section 3.3
// storage-bounded prover: the participant keeps only the top levels of its
// Merkle tree and recomputes one 2^ℓ-leaf subtree per audited sample,
// trading a measured, bounded amount of recomputation (rco = 2m/S) for a
// 2^ℓ-fold smaller commitment store.
package main

import (
	"fmt"
	"log"

	"uncheatgrid"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	signal := uncheatgrid.NewSignalWorkload(1977, 64)
	const (
		n = 1 << 14 // 16384 signal chunks per task
		m = 14      // Eq. 3 at ε=1e-4, r=0.5, q≈0
	)

	check := uncheatgrid.RecomputeCheck(func(i uint64) []byte { return signal.Eval(i) })
	fmt.Printf("spectral search over %d chunks of %d samples; m = %d audits\n\n",
		n, signal.ChunkLen(), m)
	fmt.Printf("%4s %14s %16s %14s %14s\n", "ℓ", "stored slots", "rebuilt f-evals", "measured rco", "analytic 2m/S")

	for _, ell := range []int{0, 4, 8, 12} {
		prover, err := uncheatgrid.NewProver(n,
			func(i uint64) []byte { return signal.Eval(i) },
			uncheatgrid.WithSubtreeHeight(ell))
		if err != nil {
			return err
		}
		verifier, err := uncheatgrid.NewVerifier(prover.Commitment())
		if err != nil {
			return err
		}
		challenge, err := verifier.Challenge(m)
		if err != nil {
			return err
		}
		response, err := prover.Respond(challenge.Indices)
		if err != nil {
			return err
		}
		if err := verifier.Verify(challenge, response, check); err != nil {
			return fmt.Errorf("honest prover rejected at ℓ=%d: %w", ell, err)
		}
		measured := float64(prover.RebuiltLeaves()) / float64(n)
		analytic, err := uncheatgrid.RCO(m, prover.StoredNodes())
		if err != nil {
			return err
		}
		if ell == 0 {
			analytic = 0
		}
		fmt.Printf("%4d %14d %16d %14.6f %14.6f\n",
			ell, prover.StoredNodes(), prover.RebuiltLeaves(), measured, analytic)
	}

	// Scan one window for candidate signals, the screener's job.
	screener := signal.Screener()
	found := 0
	for x := uint64(0); x < 4096 && found < 3; x++ {
		if s, ok := screener.Screen(x, signal.Eval(x)); ok {
			fmt.Printf("\n%s", s)
			found++
		}
	}
	fmt.Printf("\n\nat ℓ=12 the tree store shrinks 4096-fold while the audit recomputes")
	fmt.Printf("\nonly rco·|D| chunks — the paper's 4GB-disk-for-2^40-inputs tradeoff.\n")
	return nil
}
