// Quickstart: one complete CBS exchange (commit → challenge → prove →
// verify) against an honest participant and a cheating one, using the
// public uncheatgrid API.
package main

import (
	"errors"
	"fmt"
	"log"

	"uncheatgrid"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The task: evaluate f on n = 1024 inputs. Here f is the tunable
	// synthetic workload; any deterministic function works.
	f := uncheatgrid.NewSyntheticWorkload(42, 4, 64)
	const n = 1024

	// Eq. 3: how many samples catch a participant that did half the work,
	// with certainty 1 - 1e-4? (q = 0: guessing a 64-bit output is hopeless.)
	m, err := uncheatgrid.RequiredSamples(1e-4, 0.5, f.GuessProb())
	if err != nil {
		return err
	}
	fmt.Printf("sample size m = %d (ε=1e-4, r=0.5, q=%g)\n\n", m, f.GuessProb())

	check := uncheatgrid.RecomputeCheck(func(i uint64) []byte { return f.Eval(i) })

	// --- An honest participant passes (Theorem 1). ---
	honest, err := uncheatgrid.NewProver(n, func(i uint64) []byte { return f.Eval(i) })
	if err != nil {
		return err
	}
	verdict, err := audit(honest, m, check)
	if err != nil {
		return err
	}
	fmt.Printf("honest participant:   %s\n", verdict)

	// --- A cheater that computed only 60%% is caught (Theorems 2-3). ---
	cheater, err := uncheatgrid.NewSemiHonest(f, 0.6, 7)
	if err != nil {
		return err
	}
	lazyProver, err := uncheatgrid.NewProver(n, cheater.Claim)
	if err != nil {
		return err
	}
	verdict, err = audit(lazyProver, m, check)
	if err != nil {
		return err
	}
	fmt.Printf("cheater (r = 0.6):    %s\n", verdict)
	return nil
}

// audit runs Steps 1-4 of the CBS scheme against a prover and renders the
// outcome.
func audit(prover *uncheatgrid.Prover, m int, check uncheatgrid.CheckFunc) (string, error) {
	// Step 1: the participant commits to all n results (Merkle root).
	verifier, err := uncheatgrid.NewVerifier(prover.Commitment())
	if err != nil {
		return "", err
	}
	// Step 2: the supervisor draws m uniform sample indices.
	challenge, err := verifier.Challenge(m)
	if err != nil {
		return "", err
	}
	// Step 3: the participant returns f(x) plus the audit path per sample.
	response, err := prover.Respond(challenge.Indices)
	if err != nil {
		return "", err
	}
	// Step 4: the supervisor checks each output and reconstructs the root.
	err = verifier.Verify(challenge, response, check)
	var cheat *uncheatgrid.CheatError
	switch {
	case err == nil:
		return "ACCEPTED (all samples consistent with the commitment)", nil
	case errors.As(err, &cheat):
		return fmt.Sprintf("REJECTED (%v)", err), nil
	default:
		return "", err
	}
}
