// Passwordsearch runs the paper's motivating workload — brute-forcing a
// keyspace — on a simulated grid with a mixed honest/cheating population,
// comparing CBS against the Golle-Mironov ringer baseline on the same task
// set.
package main

import (
	"fmt"
	"log"

	"uncheatgrid"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Seed 247 hides its password at key 507, inside the first task window
	// (see the workload's deterministic secret derivation).
	const (
		seed     = 247
		taskSize = 4096
		tasks    = 8
	)

	for _, spec := range []uncheatgrid.SchemeSpec{
		{Kind: uncheatgrid.SchemeCBS, M: 14},   // Eq. 3 at ε=1e-4, r=0.5, q=0
		{Kind: uncheatgrid.SchemeRinger, M: 8}, // works here: H(key) is one-way
	} {
		report, err := uncheatgrid.RunSim(uncheatgrid.SimConfig{
			Spec:         spec,
			Workload:     "password",
			Seed:         seed,
			TaskSize:     taskSize,
			Tasks:        tasks,
			Honest:       3,
			SemiHonest:   3,
			HonestyRatio: 0.5,
			Blacklist:    true,
		})
		if err != nil {
			return err
		}

		fmt.Printf("== scheme %s ==\n", report.Scheme)
		fmt.Printf("cheaters caught: %d/%d, honest falsely accused: %d\n",
			report.CheatersDetected, report.CheatersTotal, report.HonestAccused)
		fmt.Printf("supervisor traffic: %d B down, %d B up\n",
			report.SupervisorBytesRecv, report.SupervisorBytesSent)
		for _, rep := range report.Reports {
			fmt.Printf("discovery: %s\n", rep.S)
		}
		for _, p := range report.Participants {
			if p.Blacklisted {
				fmt.Printf("blacklisted: %s (%s) after %d rejection(s)\n",
					p.ID, p.Behavior, p.Rejected)
			}
		}
		fmt.Println()
	}
	fmt.Println("both schemes catch the lazy workers; CBS needs no one-way structure in f.")
	return nil
}
