// Drugscreen models the IBM smallpox grid the paper cites: molecule
// screening distributed through a GRACE-style broker, where the supervisor
// cannot interact with participants directly — the setting that requires
// non-interactive CBS (Section 4). The hash chain g = H^k is sized with
// Eq. 5 so the re-rolling attack costs more than honest computation.
package main

import (
	"fmt"
	"log"

	"uncheatgrid"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		taskSize = 4096
		m        = 20
		r        = 0.95 // assume cheaters shade at most 5% of the work
		fCost    = 4.0  // the synthetic docking score costs ~4 hash units
	)

	// Eq. 5: size k in g = H^k so the expected re-rolling attack costs at
	// least as much as honestly screening the whole task.
	k, err := uncheatgrid.RequiredChainIterations(taskSize, fCost, r, m)
	if err != nil {
		return err
	}
	cost, err := uncheatgrid.RerollAttackCost(taskSize, fCost, r, m, int(k))
	if err != nil {
		return err
	}
	fmt.Printf("NI-CBS sample chain: g = H^%d (Eq. 5: attack %.0f ≥ honest %.0f hash-units)\n\n",
		int(k), cost.Cheating, cost.Honest)

	// Supervisor ↔ broker hub ↔ participant, wired over in-memory pipes.
	// The worker registers its identity with the hub; the supervisor's
	// link names that identity and the hub binds the route. The hub relays
	// without interpreting task payloads; NI-CBS needs no challenge leg.
	hub := uncheatgrid.NewBrokerHub()
	defer hub.Close()

	participant, err := uncheatgrid.NewParticipant("screener-node", uncheatgrid.HonestFactory)
	if err != nil {
		return err
	}
	brokerDown, partConn := uncheatgrid.Pipe(uncheatgrid.WithPipeBuffer(8))
	if err := uncheatgrid.HelloWorker(partConn, participant.ID()); err != nil {
		return err
	}
	if err := hub.Attach(brokerDown); err != nil {
		return err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- participant.Serve(partConn) }()

	supConn, brokerUp := uncheatgrid.Pipe(uncheatgrid.WithPipeBuffer(8))
	if err := uncheatgrid.HelloSupervisor(supConn, participant.ID()); err != nil {
		return err
	}
	if err := hub.Attach(brokerUp); err != nil {
		return err
	}

	supervisor, err := uncheatgrid.NewSupervisor(uncheatgrid.SupervisorConfig{
		Spec: uncheatgrid.SchemeSpec{
			Kind:       uncheatgrid.SchemeNICBS,
			M:          m,
			ChainIters: int(k),
		},
		Seed: 7,
	})
	if err != nil {
		return err
	}

	for taskID := uint64(0); taskID < 4; taskID++ {
		outcome, err := supervisor.RunTask(supConn, uncheatgrid.Task{
			ID:       taskID,
			Start:    taskID * taskSize,
			N:        taskSize,
			Workload: "drugscreen",
			Seed:     2004,
		})
		if err != nil {
			return err
		}
		fmt.Printf("task %d: accepted=%v, %d B up through the broker\n",
			taskID, outcome.Verdict.Accepted, outcome.BytesRecv)
		for _, rep := range outcome.Reports {
			fmt.Printf("  %s\n", rep.S)
		}
	}

	if err := supConn.Close(); err != nil {
		return err
	}
	if err := <-serveDone; err != nil {
		return err
	}
	if err := hub.Close(); err != nil {
		return err
	}
	fmt.Printf("\nbroker relayed %d frames (%d B); zero supervisor→participant challenges.\n",
		hub.RelayedMessages(), hub.RelayedBytes())
	return nil
}
