// Package cheat implements the participant behaviour models of Section 2.2
// of "Uncheatable Grid Computing" (Du et al., ICDCS 2004): honest
// participants, semi-honest cheaters who compute f only on a subset D' of
// their domain (honesty ratio r = |D'|/|D|) and fabricate the rest, and
// malicious participants who compute f faithfully but corrupt the screener
// reports. It also implements the re-rolling attack against non-interactive
// CBS described in Section 4.2.
package cheat

import (
	"errors"
	"fmt"
	"math/rand"

	"uncheatgrid/internal/workload"
)

// Errors reported by this package.
var (
	// ErrBadRatio is returned for honesty ratios outside [0, 1].
	ErrBadRatio = errors.New("cheat: honesty ratio must be in [0, 1]")
	// ErrBadProb is returned for probabilities outside [0, 1].
	ErrBadProb = errors.New("cheat: probability must be in [0, 1]")
)

// Producer yields the results a participant claims for its task. Claim is
// what enters the Merkle tree (and thus what CBS audits); Report filters the
// screener verdicts sent to the supervisor. HonestOn exposes the ground
// truth D' membership so experiments can compare detection against reality.
//
// Implementations are safe for concurrent use.
type Producer interface {
	// Name identifies the behaviour in reports.
	Name() string
	// Claim returns the value the participant commits as f(x).
	Claim(x uint64) []byte
	// HonestOn reports whether x ∈ D', i.e. whether Claim(x) was computed
	// by actually evaluating f.
	HonestOn(x uint64) bool
	// Report post-processes the screener verdict for x before it is sent.
	Report(x uint64, s string, interesting bool) (string, bool)
}

// Honest is the fully honest participant: r = 1, faithful reports.
type Honest struct {
	f workload.Function
}

var _ Producer = (*Honest)(nil)

// NewHonest wraps f in an honest behaviour.
func NewHonest(f workload.Function) *Honest {
	return &Honest{f: f}
}

// Name implements Producer.
func (h *Honest) Name() string { return "honest" }

// Claim implements Producer: always the true f(x).
func (h *Honest) Claim(x uint64) []byte { return h.f.Eval(x) }

// HonestOn implements Producer.
func (h *Honest) HonestOn(uint64) bool { return true }

// Report implements Producer: verdicts pass through unchanged.
func (h *Honest) Report(_ uint64, s string, interesting bool) (string, bool) {
	return s, interesting
}

// SemiHonest is the paper's rational cheater: it evaluates f only on a
// pseudo-random subset D' covering a fraction r of the domain and substitutes
// the cheap guess f̌ elsewhere. Membership in D' is a deterministic function
// of (seed, x), so the set is stable across protocol phases — exactly the
// cheater the CBS security analysis models.
type SemiHonest struct {
	f     workload.Function
	ratio float64
	// threshold implements Pr[x ∈ D'] = r via a 64-bit comparison.
	threshold uint64
	seed      uint64
}

var _ Producer = (*SemiHonest)(nil)

// NewSemiHonest creates a cheater with honesty ratio r. The seed fixes both
// the D' membership and the guess stream; Claim is fully deterministic, so
// the fabricated leaves stay stable across commitment and proof phases (the
// cheater "committed" to its guesses, as the paper's model requires).
func NewSemiHonest(f workload.Function, r float64, seed uint64) (*SemiHonest, error) {
	if !(r >= 0 && r <= 1) { // the negated form also rejects NaN
		return nil, fmt.Errorf("%w: got %v", ErrBadRatio, r)
	}
	return &SemiHonest{
		f:         f,
		ratio:     r,
		threshold: ratioThreshold(r),
		seed:      seed,
	}, nil
}

// Name implements Producer.
func (s *SemiHonest) Name() string { return fmt.Sprintf("semi-honest(r=%g)", s.ratio) }

// Ratio reports the honesty ratio r.
func (s *SemiHonest) Ratio() float64 { return s.ratio }

// HonestOn implements Producer.
func (s *SemiHonest) HonestOn(x uint64) bool {
	if s.ratio >= 1 {
		return true
	}
	return mix(s.seed^mix(x)) < s.threshold
}

// Claim implements Producer: f(x) on D', the guess f̌(x) elsewhere. Guesses
// are drawn from a per-input deterministic stream so repeated calls agree.
func (s *SemiHonest) Claim(x uint64) []byte {
	if s.HonestOn(x) {
		return s.f.Eval(x)
	}
	rng := rand.New(rand.NewSource(int64(mix(s.seed ^ mix(x^0x6355)))))
	return s.f.GuessOutput(x, rng)
}

// Report implements Producer: the semi-honest cheater reports whatever its
// claimed values screen to — it is lazy, not disruptive.
func (s *SemiHonest) Report(_ uint64, str string, interesting bool) (string, bool) {
	return str, interesting
}

// Malicious is the disruptive participant of Section 2.2: it computes f on
// all of D (so commitment audits pass) but sabotages the screener stage,
// suppressing a fraction of true reports and fabricating noise.
type Malicious struct {
	f           workload.Function
	corruptProb float64
	seed        uint64
}

var _ Producer = (*Malicious)(nil)

// NewMalicious creates a saboteur that corrupts each report independently
// with probability corruptProb.
func NewMalicious(f workload.Function, corruptProb float64, seed uint64) (*Malicious, error) {
	if !(corruptProb >= 0 && corruptProb <= 1) { // also rejects NaN
		return nil, fmt.Errorf("%w: got %v", ErrBadProb, corruptProb)
	}
	return &Malicious{f: f, corruptProb: corruptProb, seed: seed}, nil
}

// Name implements Producer.
func (m *Malicious) Name() string { return fmt.Sprintf("malicious(p=%g)", m.corruptProb) }

// Claim implements Producer: the true f(x); the attack is downstream.
func (m *Malicious) Claim(x uint64) []byte { return m.f.Eval(x) }

// HonestOn implements Producer: computation-wise the saboteur is honest.
func (m *Malicious) HonestOn(uint64) bool { return true }

// Report implements Producer: with probability corruptProb the verdict is
// flipped — interesting results are suppressed and boring ones reported as
// S(x, z) for a random z, the paper's example of malicious cheating.
func (m *Malicious) Report(x uint64, s string, interesting bool) (string, bool) {
	if !m.corrupts(x) {
		return s, interesting
	}
	if interesting {
		return "", false // suppress a real discovery
	}
	return fmt.Sprintf("fabricated result for input %d", x), true
}

func (m *Malicious) corrupts(x uint64) bool {
	return mix(m.seed^mix(x^0xbad)) < ratioThreshold(m.corruptProb)
}

// ratioThreshold maps a probability in [0,1] to a uint64 comparison bound.
func ratioThreshold(p float64) uint64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return ^uint64(0)
	default:
		return uint64(p * float64(1<<63) * 2)
	}
}

// mix is SplitMix64; it decorrelates membership decisions from input values.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
