package cheat

import (
	"errors"
	"fmt"
	"math/rand"

	"uncheatgrid/internal/hashchain"
	"uncheatgrid/internal/merkle"
	"uncheatgrid/internal/workload"
)

// ErrAttackBudget is returned when the re-rolling attack exhausts its
// attempt budget without landing every derived sample inside D'.
var ErrAttackBudget = errors.New("cheat: re-roll attack exhausted its attempt budget")

// RerollConfig parameterizes the Section 4.2 attack on non-interactive CBS.
type RerollConfig struct {
	// F is the workload whose guesses fill D − D'.
	F workload.Function
	// N is the domain size |D| (inputs 0..N-1).
	N int
	// Ratio is the honesty ratio r: the first r·N evaluations are honest.
	Ratio float64
	// M is the sample count the verifier will derive.
	M int
	// Chain is the sample-derivation function g (shared with the verifier).
	Chain *hashchain.Chain
	// MaxAttempts bounds the attack; 0 means 4 · r^-M (four times the
	// expected number of attempts).
	MaxAttempts int
	// Seed drives both D' membership and the per-attempt guess streams.
	Seed uint64
	// TreeOptions are forwarded to the Merkle builds.
	TreeOptions []merkle.Option
}

// RerollResult reports the outcome of a re-rolling attack.
type RerollResult struct {
	// Attempts is the number of trees built (1 per re-roll).
	Attempts int
	// Root is the commitment of the successful attempt.
	Root []byte
	// Claims holds the leaf values of the successful tree; experiments use
	// them to complete the forged protocol run.
	Claims [][]byte
	// ChainEvaluations counts applications of g across all attempts — the
	// quantity Eq. 5 prices.
	ChainEvaluations int
	// HonestEvaluations counts evaluations of f spent on D' (paid once).
	HonestEvaluations int
}

// Reroll mounts the Section 4.2 attack: compute f honestly only on D', fill
// the remaining leaves with fresh guesses, rebuild the Merkle tree, derive
// the NI-CBS samples from its root, and repeat until every derived sample
// falls inside D'. The returned result carries the forged commitment, which
// will pass NI-CBS verification despite r < 1.
func Reroll(cfg RerollConfig) (*RerollResult, error) {
	if cfg.F == nil || cfg.Chain == nil {
		return nil, errors.New("cheat: RerollConfig needs F and Chain")
	}
	if cfg.N <= 0 {
		return nil, fmt.Errorf("cheat: domain size must be positive, got %d", cfg.N)
	}
	if cfg.Ratio < 0 || cfg.Ratio > 1 {
		return nil, fmt.Errorf("%w: got %v", ErrBadRatio, cfg.Ratio)
	}
	if cfg.M < 1 {
		return nil, fmt.Errorf("cheat: sample count must be >= 1, got %d", cfg.M)
	}

	honest := int(cfg.Ratio * float64(cfg.N))
	maxAttempts := cfg.MaxAttempts
	if maxAttempts == 0 {
		expected := 1.0
		for i := 0; i < cfg.M; i++ {
			expected /= cfg.Ratio
		}
		maxAttempts = int(4 * expected)
		if maxAttempts < 16 {
			maxAttempts = 16
		}
	}

	result := &RerollResult{}
	claims := make([][]byte, cfg.N)
	// D' is the prefix [0, honest): the attacker computes those once.
	for i := 0; i < honest; i++ {
		claims[i] = cfg.F.Eval(uint64(i))
		result.HonestEvaluations++
	}
	rng := rand.New(rand.NewSource(int64(cfg.Seed) ^ 0x7e7011))

	for attempt := 1; attempt <= maxAttempts; attempt++ {
		// Re-roll the fabricated leaves (step 2-3 of the paper's strategy).
		for i := honest; i < cfg.N; i++ {
			claims[i] = cfg.F.GuessOutput(uint64(i), rng)
		}
		tree, err := merkle.Build(claims, cfg.TreeOptions...)
		if err != nil {
			return nil, fmt.Errorf("cheat: build attempt %d: %w", attempt, err)
		}
		root := tree.Root()
		indices, err := cfg.Chain.SampleIndices(root, cfg.M, uint64(cfg.N))
		if err != nil {
			return nil, fmt.Errorf("cheat: derive samples: %w", err)
		}
		result.Attempts = attempt
		result.ChainEvaluations += cfg.M

		if allBelow(indices, uint64(honest)) {
			result.Root = root
			result.Claims = claims
			return result, nil
		}
	}
	return result, fmt.Errorf("%w: %d attempts", ErrAttackBudget, result.Attempts)
}

func allBelow(indices []uint64, bound uint64) bool {
	for _, idx := range indices {
		if idx >= bound {
			return false
		}
	}
	return true
}
