package cheat

import (
	"errors"
	"math"
	"testing"

	"uncheatgrid/internal/hashchain"
	"uncheatgrid/internal/merkle"
	"uncheatgrid/internal/workload"
)

func testChain(t *testing.T) *hashchain.Chain {
	t.Helper()
	chain, err := hashchain.New(1)
	if err != nil {
		t.Fatalf("hashchain.New: %v", err)
	}
	return chain
}

func TestRerollForgesPassingCommitment(t *testing.T) {
	chain := testChain(t)
	cfg := RerollConfig{
		F:           workload.NewSynthetic(1, 1, 64),
		N:           64,
		Ratio:       0.5,
		M:           4, // expected attempts: 2^4 = 16
		Chain:       chain,
		MaxAttempts: 100000,
		Seed:        1,
	}
	result, err := Reroll(cfg)
	if err != nil {
		t.Fatalf("Reroll: %v", err)
	}
	if result.Attempts < 1 {
		t.Fatal("attack succeeded with zero attempts")
	}
	// The forged commitment must actually pass NI-CBS verification: every
	// derived sample has a consistent proof with a correct-looking... no —
	// a *correct* value only on D'. Check that all derived samples are in
	// D' and that the proofs verify against the forged root.
	indices, err := chain.SampleIndices(result.Root, cfg.M, uint64(cfg.N))
	if err != nil {
		t.Fatalf("SampleIndices: %v", err)
	}
	honest := int(cfg.Ratio * float64(cfg.N))
	tree, err := merkle.Build(result.Claims)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for _, idx := range indices {
		if idx >= uint64(honest) {
			t.Fatalf("derived sample %d outside D' [0,%d)", idx, honest)
		}
		proof, err := tree.Prove(int(idx))
		if err != nil {
			t.Fatalf("Prove: %v", err)
		}
		if err := merkle.Verify(result.Root, proof); err != nil {
			t.Fatalf("forged proof does not verify: %v", err)
		}
	}
	if result.HonestEvaluations != honest {
		t.Fatalf("HonestEvaluations = %d, want %d", result.HonestEvaluations, honest)
	}
	if result.ChainEvaluations != result.Attempts*cfg.M {
		t.Fatalf("ChainEvaluations = %d, want attempts×m = %d",
			result.ChainEvaluations, result.Attempts*cfg.M)
	}
}

func TestRerollAttemptsTrackExpectation(t *testing.T) {
	// Section 4.2: the expected number of attempts is r^-m. Average over
	// seeds and compare within a loose factor — enough to pin the shape.
	chain := testChain(t)
	const (
		r     = 0.5
		m     = 3
		seeds = 60
	)
	want := math.Pow(r, -m) // 8
	total := 0
	for seed := uint64(0); seed < seeds; seed++ {
		result, err := Reroll(RerollConfig{
			F:           workload.NewSynthetic(seed, 1, 64),
			N:           32,
			Ratio:       r,
			M:           m,
			Chain:       chain,
			MaxAttempts: 1 << 16,
			Seed:        seed,
		})
		if err != nil {
			t.Fatalf("Reroll(seed=%d): %v", seed, err)
		}
		total += result.Attempts
	}
	got := float64(total) / seeds
	if got < want/2 || got > want*2 {
		t.Fatalf("mean attempts = %v, want within [%v, %v] of r^-m = %v",
			got, want/2, want*2, want)
	}
}

func TestRerollHonestParticipantSucceedsImmediately(t *testing.T) {
	// r = 1 degenerates to an honest run: the first tree passes.
	result, err := Reroll(RerollConfig{
		F:     workload.NewSynthetic(2, 1, 64),
		N:     16,
		Ratio: 1,
		M:     8,
		Chain: testChain(t),
		Seed:  5,
	})
	if err != nil {
		t.Fatalf("Reroll: %v", err)
	}
	if result.Attempts != 1 {
		t.Fatalf("Attempts = %d, want 1 for r=1", result.Attempts)
	}
}

func TestRerollBudgetExhaustion(t *testing.T) {
	// r = 0.25, m = 8 → expected 65536 attempts; a budget of 3 must fail.
	_, err := Reroll(RerollConfig{
		F:           workload.NewSynthetic(3, 1, 64),
		N:           64,
		Ratio:       0.25,
		M:           8,
		Chain:       testChain(t),
		MaxAttempts: 3,
		Seed:        5,
	})
	if !errors.Is(err, ErrAttackBudget) {
		t.Fatalf("err = %v, want ErrAttackBudget", err)
	}
}

func TestRerollValidation(t *testing.T) {
	chain := testChain(t)
	f := workload.NewSynthetic(1, 1, 64)
	tests := []struct {
		name string
		cfg  RerollConfig
	}{
		{name: "nil F", cfg: RerollConfig{Chain: chain, N: 8, Ratio: 0.5, M: 2}},
		{name: "nil chain", cfg: RerollConfig{F: f, N: 8, Ratio: 0.5, M: 2}},
		{name: "bad n", cfg: RerollConfig{F: f, Chain: chain, N: 0, Ratio: 0.5, M: 2}},
		{name: "bad ratio", cfg: RerollConfig{F: f, Chain: chain, N: 8, Ratio: 1.5, M: 2}},
		{name: "bad m", cfg: RerollConfig{F: f, Chain: chain, N: 8, Ratio: 0.5, M: 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Reroll(tt.cfg); err == nil {
				t.Fatal("Reroll accepted an invalid config")
			}
		})
	}
}
