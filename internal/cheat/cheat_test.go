package cheat

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"testing"

	"uncheatgrid/internal/workload"
)

func TestHonestClaimsMatchF(t *testing.T) {
	f := workload.NewSynthetic(1, 1, 64)
	h := NewHonest(f)
	for x := uint64(0); x < 16; x++ {
		if !bytes.Equal(h.Claim(x), f.Eval(x)) {
			t.Fatalf("Claim(%d) != f(%d)", x, x)
		}
		if !h.HonestOn(x) {
			t.Fatalf("HonestOn(%d) = false for honest participant", x)
		}
	}
	if s, ok := h.Report(1, "hit", true); s != "hit" || !ok {
		t.Fatal("honest Report mutated the verdict")
	}
}

func TestSemiHonestRatioValidation(t *testing.T) {
	f := workload.NewSynthetic(1, 1, 64)
	for _, bad := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := NewSemiHonest(f, bad, 1); !errors.Is(err, ErrBadRatio) {
			t.Errorf("NewSemiHonest(r=%v): err = %v, want ErrBadRatio", bad, err)
		}
	}
}

func TestSemiHonestSubsetFractionMatchesR(t *testing.T) {
	f := workload.NewSynthetic(1, 1, 64)
	for _, r := range []float64{0.0, 0.25, 0.5, 0.9, 1.0} {
		t.Run(fmt.Sprintf("r=%g", r), func(t *testing.T) {
			s, err := NewSemiHonest(f, r, 42)
			if err != nil {
				t.Fatalf("NewSemiHonest: %v", err)
			}
			const n = 20000
			honest := 0
			for x := uint64(0); x < n; x++ {
				if s.HonestOn(x) {
					honest++
				}
			}
			got := float64(honest) / n
			if math.Abs(got-r) > 0.02 {
				t.Fatalf("|D'|/|D| = %v, want ≈ %v", got, r)
			}
		})
	}
}

func TestSemiHonestMembershipIsStable(t *testing.T) {
	// D' must not drift between commitment and proof phases, or the cheater
	// model would not match the paper's analysis.
	f := workload.NewSynthetic(1, 1, 64)
	s, err := NewSemiHonest(f, 0.5, 7)
	if err != nil {
		t.Fatalf("NewSemiHonest: %v", err)
	}
	for x := uint64(0); x < 500; x++ {
		if s.HonestOn(x) != s.HonestOn(x) {
			t.Fatalf("HonestOn(%d) is not stable", x)
		}
	}
}

func TestSemiHonestClaimsHonestOnDPrime(t *testing.T) {
	f := workload.NewSynthetic(1, 1, 64)
	s, err := NewSemiHonest(f, 0.5, 11)
	if err != nil {
		t.Fatalf("NewSemiHonest: %v", err)
	}
	var honestMatches, dishonestMatches, honestCount, dishonestCount int
	for x := uint64(0); x < 2000; x++ {
		claim := s.Claim(x)
		matches := bytes.Equal(claim, f.Eval(x))
		if s.HonestOn(x) {
			honestCount++
			if matches {
				honestMatches++
			}
		} else {
			dishonestCount++
			if matches {
				dishonestMatches++
			}
		}
	}
	if honestMatches != honestCount {
		t.Fatalf("honest claims correct on %d/%d inputs", honestMatches, honestCount)
	}
	// 64-bit guesses essentially never collide with the true value.
	if dishonestMatches != 0 {
		t.Fatalf("guessed claims matched f on %d/%d inputs", dishonestMatches, dishonestCount)
	}
}

func TestSemiHonestGuessMatchesQForOneBit(t *testing.T) {
	// With a 1-bit output the fabricated leaves should be right about half
	// the time — the q = 0.5 premise of Fig. 2.
	f := workload.NewSynthetic(3, 1, 1)
	s, err := NewSemiHonest(f, 0, 13) // r = 0: everything is guessed
	if err != nil {
		t.Fatalf("NewSemiHonest: %v", err)
	}
	matches := 0
	const n = 4000
	for x := uint64(0); x < n; x++ {
		if bytes.Equal(s.Claim(x), f.Eval(x)) {
			matches++
		}
	}
	rate := float64(matches) / n
	if rate < 0.45 || rate > 0.55 {
		t.Fatalf("guess hit rate = %v, want ≈ 0.5", rate)
	}
}

func TestSemiHonestEdgeRatios(t *testing.T) {
	f := workload.NewSynthetic(1, 1, 64)
	all, err := NewSemiHonest(f, 1, 3)
	if err != nil {
		t.Fatalf("NewSemiHonest: %v", err)
	}
	none, err := NewSemiHonest(f, 0, 3)
	if err != nil {
		t.Fatalf("NewSemiHonest: %v", err)
	}
	for x := uint64(0); x < 100; x++ {
		if !all.HonestOn(x) {
			t.Fatalf("r=1: HonestOn(%d) = false", x)
		}
		if none.HonestOn(x) {
			t.Fatalf("r=0: HonestOn(%d) = true", x)
		}
	}
}

func TestSemiHonestNameCarriesRatio(t *testing.T) {
	f := workload.NewSynthetic(1, 1, 64)
	s, err := NewSemiHonest(f, 0.25, 1)
	if err != nil {
		t.Fatalf("NewSemiHonest: %v", err)
	}
	if s.Name() != "semi-honest(r=0.25)" {
		t.Fatalf("Name() = %q", s.Name())
	}
	if s.Ratio() != 0.25 {
		t.Fatalf("Ratio() = %v", s.Ratio())
	}
}

func TestMaliciousComputesHonestly(t *testing.T) {
	f := workload.NewSynthetic(1, 1, 64)
	m, err := NewMalicious(f, 0.5, 9)
	if err != nil {
		t.Fatalf("NewMalicious: %v", err)
	}
	for x := uint64(0); x < 64; x++ {
		if !bytes.Equal(m.Claim(x), f.Eval(x)) {
			t.Fatalf("malicious Claim(%d) differs from f — it should cheat downstream, not here", x)
		}
		if !m.HonestOn(x) {
			t.Fatalf("malicious HonestOn(%d) = false", x)
		}
	}
}

func TestMaliciousCorruptsReportsAtRate(t *testing.T) {
	f := workload.NewSynthetic(1, 1, 64)
	m, err := NewMalicious(f, 0.3, 17)
	if err != nil {
		t.Fatalf("NewMalicious: %v", err)
	}
	const n = 10000
	suppressed, fabricated := 0, 0
	for x := uint64(0); x < n; x++ {
		if _, ok := m.Report(x, "real hit", true); !ok {
			suppressed++
		}
		if _, ok := m.Report(x, "", false); ok {
			fabricated++
		}
	}
	for name, got := range map[string]int{"suppressed": suppressed, "fabricated": fabricated} {
		rate := float64(got) / n
		if math.Abs(rate-0.3) > 0.03 {
			t.Errorf("%s rate = %v, want ≈ 0.3", name, rate)
		}
	}
}

func TestMaliciousProbValidation(t *testing.T) {
	f := workload.NewSynthetic(1, 1, 64)
	if _, err := NewMalicious(f, -1, 1); !errors.Is(err, ErrBadProb) {
		t.Fatalf("NewMalicious(-1): err = %v, want ErrBadProb", err)
	}
	if _, err := NewMalicious(f, 2, 1); !errors.Is(err, ErrBadProb) {
		t.Fatalf("NewMalicious(2): err = %v, want ErrBadProb", err)
	}
}

func TestRatioThresholdEdges(t *testing.T) {
	if got := ratioThreshold(0); got != 0 {
		t.Errorf("ratioThreshold(0) = %d", got)
	}
	if got := ratioThreshold(1); got != ^uint64(0) {
		t.Errorf("ratioThreshold(1) = %d", got)
	}
	mid := ratioThreshold(0.5)
	if mid < 1<<62 || mid > 3<<62 {
		t.Errorf("ratioThreshold(0.5) = %d, not near 2^63", mid)
	}
}
