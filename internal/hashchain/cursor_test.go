package hashchain

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

// windowRoots fabricates deterministic per-window commitment roots; flip
// selects one window whose root is perturbed (flip < 0 perturbs none).
func windowRoots(windows int, flip int) [][]byte {
	roots := make([][]byte, windows)
	for k := range roots {
		d := sha256.Sum256([]byte{byte(k), byte(k >> 8), 0x5a})
		if k == flip {
			d[0] ^= 0x01
		}
		roots[k] = d[:]
	}
	return roots
}

// TestCursorSnapshotRestoreDeterministic is the satellite property test:
// for arbitrary split points, a cursor snapshotted mid-stream and restored
// walks on to exactly the states and indices of an uninterrupted cursor.
func TestCursorSnapshotRestoreDeterministic(t *testing.T) {
	chain, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	const windows, m, n = 24, 5, 1 << 20
	rng := rand.New(rand.NewSource(7))
	roots := windowRoots(windows, -1)
	for trial := 0; trial < 50; trial++ {
		split := rng.Intn(windows + 1)
		full, err := chain.NewCursor([]byte("stream seed"))
		if err != nil {
			t.Fatal(err)
		}
		part, err := chain.NewCursor([]byte("stream seed"))
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < split; k++ {
			if err := full.Advance(roots[k]); err != nil {
				t.Fatal(err)
			}
			if err := part.Advance(roots[k]); err != nil {
				t.Fatal(err)
			}
		}
		snap := part.Snapshot()
		// Mutating the snapshot must not reach back into the cursor.
		if len(snap.State) > 0 {
			snap.State[0] ^= 0xff
			snap.State[0] ^= 0xff
		}
		restored, err := chain.RestoreCursor(snap)
		if err != nil {
			t.Fatal(err)
		}
		if restored.Window() != uint64(split) {
			t.Fatalf("split=%d: restored window %d", split, restored.Window())
		}
		for k := split; k < windows; k++ {
			if err := full.Advance(roots[k]); err != nil {
				t.Fatal(err)
			}
			if err := restored.Advance(roots[k]); err != nil {
				t.Fatal(err)
			}
			wantIdx, err := full.Indices(m, n)
			if err != nil {
				t.Fatal(err)
			}
			gotIdx, err := restored.Indices(m, n)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(wantIdx, gotIdx) {
				t.Fatalf("split=%d window=%d: indices diverge", split, k)
			}
		}
		if !bytes.Equal(full.State(), restored.State()) {
			t.Fatalf("split=%d: final states diverge", split)
		}
	}
}

// TestCursorHistoryBinding is the second satellite property: the indices
// for window k+1 must change whenever any window <= k contributed a
// different root — the challenge is bound to the whole history.
func TestCursorHistoryBinding(t *testing.T) {
	chain, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	const windows, m, n = 10, 8, 1 << 16
	clean := windowRoots(windows, -1)
	for flip := 0; flip < windows; flip++ {
		honest, err := chain.NewCursor([]byte("seed"))
		if err != nil {
			t.Fatal(err)
		}
		tampered, err := chain.NewCursor([]byte("seed"))
		if err != nil {
			t.Fatal(err)
		}
		flipped := windowRoots(windows, flip)
		for k := 0; k < windows; k++ {
			if err := honest.Advance(clean[k]); err != nil {
				t.Fatal(err)
			}
			if err := tampered.Advance(flipped[k]); err != nil {
				t.Fatal(err)
			}
			hi, err := honest.Indices(m, n)
			if err != nil {
				t.Fatal(err)
			}
			ti, err := tampered.Indices(m, n)
			if err != nil {
				t.Fatal(err)
			}
			if k < flip {
				if !reflect.DeepEqual(hi, ti) {
					t.Fatalf("flip=%d window=%d: indices diverged before the tampered window", flip, k)
				}
				continue
			}
			// From the tampered window on, every later window's challenge
			// must differ (collision of 8 independent indices over 2^16 is
			// astronomically unlikely for a cryptographic hash).
			if reflect.DeepEqual(hi, ti) {
				t.Fatalf("flip=%d window=%d: tampered history produced identical indices", flip, k)
			}
		}
	}
}

func TestCursorValidation(t *testing.T) {
	chain, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chain.NewCursor(nil); !errors.Is(err, ErrEmptySeed) {
		t.Fatalf("empty seed: got %v", err)
	}
	cu, err := chain.NewCursor([]byte("s"))
	if err != nil {
		t.Fatal(err)
	}
	if err := cu.Advance(nil); !errors.Is(err, ErrEmptySeed) {
		t.Fatalf("empty root: got %v", err)
	}
	if _, err := chain.RestoreCursor(CursorSnapshot{}); !errors.Is(err, ErrBadCursorState) {
		t.Fatalf("empty state: got %v", err)
	}
	if _, err := chain.RestoreCursor(CursorSnapshot{State: make([]byte, maxCursorState+1)}); !errors.Is(err, ErrBadCursorState) {
		t.Fatalf("oversized state: got %v", err)
	}
}
