package hashchain

import (
	"bytes"
	"crypto/md5"
	"crypto/sha256"
	"errors"
	"hash"
	"math"
	"testing"
	"testing/quick"
)

func mustChain(t *testing.T, iterations int, opts ...Option) *Chain {
	t.Helper()
	c, err := New(iterations, opts...)
	if err != nil {
		t.Fatalf("New(%d): %v", iterations, err)
	}
	return c
}

func TestNewValidatesIterations(t *testing.T) {
	for _, bad := range []int{0, -1, -100} {
		if _, err := New(bad); !errors.Is(err, ErrBadIterations) {
			t.Errorf("New(%d): err = %v, want ErrBadIterations", bad, err)
		}
	}
	c := mustChain(t, 7)
	if got := c.Iterations(); got != 7 {
		t.Errorf("Iterations() = %d, want 7", got)
	}
}

func TestApplyMatchesManualIteration(t *testing.T) {
	seed := []byte("merkle root commitment")
	c := mustChain(t, 3)

	want := seed
	for i := 0; i < 3; i++ {
		sum := sha256.Sum256(want)
		want = sum[:]
	}
	if got := c.Apply(seed); !bytes.Equal(got, want) {
		t.Fatalf("Apply = %x, want %x", got, want)
	}
}

func TestApplyIsDeterministic(t *testing.T) {
	c := mustChain(t, 5)
	seed := []byte("seed")
	if !bytes.Equal(c.Apply(seed), c.Apply(seed)) {
		t.Fatal("Apply is not deterministic")
	}
}

func TestIteratedChainEqualsComposition(t *testing.T) {
	// g = H^6 applied once must equal g' = H^2 applied three times.
	seed := []byte("composition check")
	six := mustChain(t, 6)
	two := mustChain(t, 2)
	got := two.Apply(two.Apply(two.Apply(seed)))
	if !bytes.Equal(six.Apply(seed), got) {
		t.Fatal("H^6 != (H^2)^3")
	}
}

func TestWalk(t *testing.T) {
	c := mustChain(t, 1)
	seed := []byte("root")
	states, err := c.Walk(seed, 4)
	if err != nil {
		t.Fatalf("Walk: %v", err)
	}
	if len(states) != 4 {
		t.Fatalf("Walk returned %d states, want 4", len(states))
	}
	// Eq. (4): state k is g applied to state k-1; state 1 is g(seed).
	cur := seed
	for k, state := range states {
		cur = c.Apply(cur)
		if !bytes.Equal(state, cur) {
			t.Fatalf("state %d does not match g^%d(seed)", k, k+1)
		}
	}
}

func TestWalkErrors(t *testing.T) {
	c := mustChain(t, 1)
	if _, err := c.Walk(nil, 3); !errors.Is(err, ErrEmptySeed) {
		t.Errorf("Walk(nil seed): err = %v, want ErrEmptySeed", err)
	}
	if _, err := c.Walk([]byte("x"), 0); !errors.Is(err, ErrBadSampleCount) {
		t.Errorf("Walk(m=0): err = %v, want ErrBadSampleCount", err)
	}
}

func TestSampleIndicesDeterministicAndInRange(t *testing.T) {
	c := mustChain(t, 2)
	root := []byte("commitment root bytes")
	const m, n = 50, 1000

	first, err := c.SampleIndices(root, m, n)
	if err != nil {
		t.Fatalf("SampleIndices: %v", err)
	}
	second, err := c.SampleIndices(root, m, n)
	if err != nil {
		t.Fatalf("SampleIndices: %v", err)
	}
	if len(first) != m {
		t.Fatalf("got %d indices, want %d", len(first), m)
	}
	for k := range first {
		if first[k] != second[k] {
			t.Fatalf("index %d differs across identical derivations", k)
		}
		if first[k] >= n {
			t.Fatalf("index %d = %d out of range [0,%d)", k, first[k], n)
		}
	}
}

func TestSampleIndicesDependOnRoot(t *testing.T) {
	// A participant who changes even one bit of the commitment gets an
	// entirely different challenge set — the property that defeats
	// pre-selecting samples (Section 4.2).
	c := mustChain(t, 1)
	a, err := c.SampleIndices([]byte("root-a"), 32, 1<<20)
	if err != nil {
		t.Fatalf("SampleIndices: %v", err)
	}
	b, err := c.SampleIndices([]byte("root-b"), 32, 1<<20)
	if err != nil {
		t.Fatalf("SampleIndices: %v", err)
	}
	same := 0
	for k := range a {
		if a[k] == b[k] {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d of 32 indices coincide across different roots", same)
	}
}

func TestSampleIndicesErrors(t *testing.T) {
	c := mustChain(t, 1)
	if _, err := c.SampleIndices([]byte("r"), 10, 0); !errors.Is(err, ErrBadDomain) {
		t.Errorf("n=0: err = %v, want ErrBadDomain", err)
	}
	if _, err := c.SampleIndices(nil, 10, 5); !errors.Is(err, ErrEmptySeed) {
		t.Errorf("nil root: err = %v, want ErrEmptySeed", err)
	}
	if _, err := c.SampleIndices([]byte("r"), -1, 5); !errors.Is(err, ErrBadSampleCount) {
		t.Errorf("m=-1: err = %v, want ErrBadSampleCount", err)
	}
}

func TestSampleIndicesSmallDomains(t *testing.T) {
	c := mustChain(t, 1)
	for _, n := range []uint64{1, 2, 3} {
		indices, err := c.SampleIndices([]byte("root"), 20, n)
		if err != nil {
			t.Fatalf("SampleIndices(n=%d): %v", n, err)
		}
		for _, idx := range indices {
			if idx >= n {
				t.Fatalf("n=%d: index %d out of range", n, idx)
			}
		}
	}
}

func TestSampleIndicesUniformity(t *testing.T) {
	// §4.2 assumes "perfect randomness of the one-way hash values". Check a
	// coarse chi-square over 8 buckets with many derivations.
	c := mustChain(t, 1)
	const n = 8
	counts := make([]int, n)
	const rounds = 200
	const perRound = 16
	for r := 0; r < rounds; r++ {
		// Independent seed per round; reusing chain states would double
		// count overlapping windows and skew the statistic.
		seed := sha256.Sum256([]byte{byte(r), byte(r >> 8), 'u'})
		indices, err := c.SampleIndices(seed[:], perRound, n)
		if err != nil {
			t.Fatalf("SampleIndices: %v", err)
		}
		for _, idx := range indices {
			counts[idx]++
		}
	}
	total := rounds * perRound
	expected := float64(total) / n
	chi2 := 0.0
	for _, cnt := range counts {
		d := float64(cnt) - expected
		chi2 += d * d / expected
	}
	// 7 degrees of freedom; 0.999 quantile ≈ 24.3. Deterministic inputs, so
	// this cannot flake.
	if chi2 > 24.3 {
		t.Fatalf("chi2 = %v over buckets %v; hash-derived indices look biased", chi2, counts)
	}
}

func TestWithHasherMD5(t *testing.T) {
	// The paper's §4.2 defense is phrased as g ≡ (MD5)^k; MD5's 16-byte
	// digest must flow through index derivation.
	c := mustChain(t, 3, WithHasher(func() hash.Hash { return md5.New() }))
	indices, err := c.SampleIndices([]byte("root"), 10, 1<<30)
	if err != nil {
		t.Fatalf("SampleIndices: %v", err)
	}
	sha := mustChain(t, 3)
	shaIndices, err := sha.SampleIndices([]byte("root"), 10, 1<<30)
	if err != nil {
		t.Fatalf("SampleIndices: %v", err)
	}
	diff := false
	for k := range indices {
		if indices[k] != shaIndices[k] {
			diff = true
		}
		if indices[k] >= 1<<30 {
			t.Fatalf("index out of range: %d", indices[k])
		}
	}
	if !diff {
		t.Fatal("MD5 and SHA-256 chains derived identical indices")
	}
}

func TestIndexFromDigestShortDigests(t *testing.T) {
	tests := []struct {
		name   string
		digest []byte
		n      uint64
		want   uint64
	}{
		{name: "empty digest", digest: nil, n: 7, want: 0},
		{name: "one byte", digest: []byte{0x05}, n: 4, want: 1},
		{name: "exact eight", digest: []byte{0, 0, 0, 0, 0, 0, 0, 9}, n: 4, want: 1},
		{name: "n of one", digest: []byte{0xff, 0xff}, n: 1, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := indexFromDigest(tt.digest, tt.n); got != tt.want {
				t.Errorf("indexFromDigest = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestIndexFromDigestQuick(t *testing.T) {
	f := func(digest []byte, nSeed uint64) bool {
		n := nSeed%math.MaxUint32 + 1
		return indexFromDigest(digest, n) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexFromDigestLargeN(t *testing.T) {
	// n near 2^64 exercises the 128/64 reduction path.
	digest := bytes.Repeat([]byte{0xff}, 32)
	n := uint64(math.MaxUint64 - 3)
	if got := indexFromDigest(digest, n); got >= n {
		t.Fatalf("index %d out of range for n=%d", got, n)
	}
}
