// Package hashchain implements the iterated one-way function g of Section 4
// of "Uncheatable Grid Computing" (Du et al., ICDCS 2004).
//
// The non-interactive CBS scheme derives its own sample indices from the
// Merkle root commitment (Eq. 4):
//
//	i_k = (g^k(Φ(R)) mod n) + 1, k = 1..m
//
// where g^k is the k-fold application of a one-way hash g. Section 4.2
// additionally raises the cost of g by defining g ≡ hash^t (the hash iterated
// t times) so that the expected cost of the re-rolling attack exceeds the
// cost of honest computation (Eq. 5). Chain captures both roles: it is the
// function g with a configurable per-application iteration count.
package hashchain

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"math/bits"
)

// Errors reported by this package.
var (
	// ErrBadIterations is returned for a non-positive per-step iteration count.
	ErrBadIterations = errors.New("hashchain: iterations must be >= 1")
	// ErrBadSampleCount is returned for a non-positive sample count m.
	ErrBadSampleCount = errors.New("hashchain: sample count must be >= 1")
	// ErrBadDomain is returned for an empty sample domain.
	ErrBadDomain = errors.New("hashchain: domain size must be >= 1")
	// ErrEmptySeed is returned when the seed (the Merkle root) is empty.
	ErrEmptySeed = errors.New("hashchain: seed must not be empty")
)

// Hasher names a constructor for the base hash underlying g.
type Hasher func() hash.Hash

// Chain is the one-way function g. Applying the chain once costs Iterations
// invocations of the base hash; the zero-cost configuration is Iterations=1.
// A Chain is immutable and safe for concurrent use.
type Chain struct {
	newHash    Hasher
	iterations int
}

// Option customizes a Chain.
type Option interface {
	apply(*Chain)
}

type hasherOption struct{ h Hasher }

func (o hasherOption) apply(c *Chain) { c.newHash = o.h }

// WithHasher selects the base hash (default SHA-256).
func WithHasher(h Hasher) Option { return hasherOption{h: h} }

// New constructs the function g = hash^iterations.
func New(iterations int, opts ...Option) (*Chain, error) {
	if iterations < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadIterations, iterations)
	}
	c := &Chain{newHash: sha256.New, iterations: iterations}
	for _, opt := range opts {
		opt.apply(c)
	}
	return c, nil
}

// Iterations reports the per-application base-hash count t in g = hash^t.
func (c *Chain) Iterations() int { return c.iterations }

// Apply computes g(value): the base hash applied Iterations times.
func (c *Chain) Apply(value []byte) []byte {
	h := c.newHash()
	cur := value
	for i := 0; i < c.iterations; i++ {
		h.Reset()
		h.Write(cur)
		cur = h.Sum(nil)
	}
	return cur
}

// Walk returns the m successive chain states g^1(seed)..g^m(seed). The grid
// protocol uses the states both for index derivation and, in tests, to check
// that supervisor and participant walk identical chains.
func (c *Chain) Walk(seed []byte, m int) ([][]byte, error) {
	if len(seed) == 0 {
		return nil, ErrEmptySeed
	}
	if m < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadSampleCount, m)
	}
	states := make([][]byte, m)
	cur := seed
	for k := 0; k < m; k++ {
		cur = c.Apply(cur)
		states[k] = cur
	}
	return states, nil
}

// SampleIndices derives the m sample indices of Eq. (4) from the commitment.
// Indices are zero-based (the paper's (... mod n) + 1 converted to [0, n)),
// drawn from a domain of size n. Both supervisor and participant call this
// with the same root and must obtain the same indices.
func (c *Chain) SampleIndices(root []byte, m int, n uint64) ([]uint64, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadDomain, n)
	}
	states, err := c.Walk(root, m)
	if err != nil {
		return nil, err
	}
	indices := make([]uint64, m)
	for k, state := range states {
		indices[k] = indexFromDigest(state, n)
	}
	return indices, nil
}

// indexFromDigest maps a chain state to [0, n). The paper treats the hash as
// an unbiased random-bit generator; reducing 128 bits modulo n keeps the
// modulo bias below 2^-64 for any practical n.
func indexFromDigest(digest []byte, n uint64) uint64 {
	// Fold the digest to 16 bytes if shorter hashes (e.g. MD5) are in use.
	var hi, lo uint64
	switch {
	case len(digest) >= 16:
		hi = binary.BigEndian.Uint64(digest[:8])
		lo = binary.BigEndian.Uint64(digest[8:16])
	case len(digest) >= 8:
		lo = binary.BigEndian.Uint64(digest[:8])
	default:
		var buf [8]byte
		copy(buf[8-len(digest):], digest)
		lo = binary.BigEndian.Uint64(buf[:])
	}
	// Compute (hi·2^64 + lo) mod n with 128/64 division. Reducing hi first
	// guarantees the quotient fits in 64 bits, as bits.Div64 requires.
	_, rem := bits.Div64(hi%n, lo, n)
	return rem
}
