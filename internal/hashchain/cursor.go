package hashchain

// Per-window challenge derivation for long-horizon streams. A bounded batch
// derives its sample indices once, from the single commitment (Eq. 4). An
// unbounded stream settles in windows, and the cursor extends Eq. 4 across
// them: the state after window k is s_k = g(s_{k-1} || Φ(R_k)), so the
// indices challenged in window k+1 depend on every window root up to and
// including k. A participant cannot predict a future window's challenge
// without fixing its entire history first — the same pre-commitment argument
// as the non-interactive scheme, applied per-window.

import (
	"errors"
	"fmt"
)

// Cursor errors.
var (
	// ErrBadCursorState is returned when restoring a cursor from an empty
	// or oversized state.
	ErrBadCursorState = errors.New("hashchain: invalid cursor state")
)

// maxCursorState bounds a restored state so a corrupt checkpoint cannot
// allocate unbounded memory. Any real chain state is one digest.
const maxCursorState = 1024

// Cursor is an advanceable per-window chain state. It is created from a
// shared seed, absorbs each window's Merkle root as the window settles, and
// derives the sample indices for the *next* window from the absorbed
// history. A Cursor is not safe for concurrent use.
type Cursor struct {
	chain  *Chain
	state  []byte
	window uint64
}

// NewCursor starts a cursor at window 0 with state g(seed). Both protocol
// sides must start from the same seed to derive the same challenges.
func (c *Chain) NewCursor(seed []byte) (*Cursor, error) {
	if len(seed) == 0 {
		return nil, ErrEmptySeed
	}
	return &Cursor{chain: c, state: c.Apply(seed), window: 0}, nil
}

// Advance absorbs the settled window's commitment root:
// s_{k+1} = g(s_k || root). The cursor moves to the next window.
func (cu *Cursor) Advance(root []byte) error {
	if len(root) == 0 {
		return ErrEmptySeed
	}
	input := make([]byte, 0, len(cu.state)+len(root))
	input = append(input, cu.state...)
	input = append(input, root...)
	cu.state = cu.chain.Apply(input)
	cu.window++
	return nil
}

// Indices derives the m sample indices for the cursor's current window from
// its state — Eq. 4 with the chained state standing in for the commitment.
func (cu *Cursor) Indices(m int, n uint64) ([]uint64, error) {
	return cu.chain.SampleIndices(cu.state, m, n)
}

// Window reports how many windows the cursor has absorbed.
func (cu *Cursor) Window() uint64 { return cu.window }

// State returns a copy of the current chain state.
func (cu *Cursor) State() []byte {
	out := make([]byte, len(cu.state))
	copy(out, cu.state)
	return out
}

// CursorSnapshot is a cursor's durable position: the chain state and the
// number of windows absorbed. The chain parameters (iteration count, hash)
// are configuration, not state — a restore must supply the same Chain.
type CursorSnapshot struct {
	State  []byte
	Window uint64
}

// Snapshot captures the cursor's position for a checkpoint.
func (cu *Cursor) Snapshot() CursorSnapshot {
	return CursorSnapshot{State: cu.State(), Window: cu.window}
}

// RestoreCursor resumes a cursor from a snapshot taken against the same
// chain configuration. The restored cursor is byte-for-byte the cursor that
// was snapshotted: advancing both with the same roots yields identical
// states and indices.
func (c *Chain) RestoreCursor(snap CursorSnapshot) (*Cursor, error) {
	if len(snap.State) == 0 || len(snap.State) > maxCursorState {
		return nil, fmt.Errorf("%w: %d state bytes", ErrBadCursorState, len(snap.State))
	}
	state := make([]byte, len(snap.State))
	copy(state, snap.State)
	return &Cursor{chain: c, state: state, window: snap.Window}, nil
}
