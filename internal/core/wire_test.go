package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"uncheatgrid/internal/workload"
)

func TestCommitmentRoundTrip(t *testing.T) {
	c := Commitment{Root: []byte{1, 2, 3, 4}, N: 1 << 40}
	data, err := c.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	if len(data) != c.EncodedSize() {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(data), c.EncodedSize())
	}
	var decoded Commitment
	if err := decoded.UnmarshalBinary(data); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if !bytes.Equal(decoded.Root, c.Root) || decoded.N != c.N {
		t.Fatalf("decoded %+v, want %+v", decoded, c)
	}
}

func TestCommitmentMarshalRejectsEmpty(t *testing.T) {
	var c Commitment
	if _, err := c.MarshalBinary(); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

func TestCommitmentUnmarshalRejectsGarbage(t *testing.T) {
	tests := []struct {
		name string
		data []byte
	}{
		{name: "empty", data: nil},
		{name: "zero root length", data: []byte{0x00, 0x05}},
		{name: "truncated root", data: []byte{0x10, 0x01}},
		{name: "missing n", data: []byte{0x01, 0xaa}},
		{name: "trailing", data: []byte{0x01, 0xaa, 0x05, 0xff}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var c Commitment
			if err := c.UnmarshalBinary(tt.data); !errors.Is(err, ErrProtocol) {
				t.Fatalf("err = %v, want ErrProtocol", err)
			}
		})
	}
}

func TestChallengeRoundTrip(t *testing.T) {
	ch := Challenge{Indices: []uint64{0, 7, 1 << 50, 3}}
	data, err := ch.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	if len(data) != ch.EncodedSize() {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(data), ch.EncodedSize())
	}
	var decoded Challenge
	if err := decoded.UnmarshalBinary(data); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if len(decoded.Indices) != len(ch.Indices) {
		t.Fatalf("decoded %d indices, want %d", len(decoded.Indices), len(ch.Indices))
	}
	for k := range ch.Indices {
		if decoded.Indices[k] != ch.Indices[k] {
			t.Fatalf("index %d: %d != %d", k, decoded.Indices[k], ch.Indices[k])
		}
	}
}

func TestChallengeUnmarshalBounds(t *testing.T) {
	var ch Challenge
	if err := ch.UnmarshalBinary([]byte{0x00}); !errors.Is(err, ErrProtocol) {
		t.Errorf("zero count: err = %v, want ErrProtocol", err)
	}
	// Count of 2^40 must be rejected before allocation.
	huge := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x20}
	if err := ch.UnmarshalBinary(huge); !errors.Is(err, ErrProtocol) {
		t.Errorf("huge count: err = %v, want ErrProtocol", err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	f := workload.NewSynthetic(3, 1, 64)
	p := honestProver(t, f, 33)
	resp, err := p.Respond([]uint64{0, 13, 32})
	if err != nil {
		t.Fatalf("Respond: %v", err)
	}
	data, err := resp.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	if len(data) != resp.EncodedSize() {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(data), resp.EncodedSize())
	}
	var decoded Response
	if err := decoded.UnmarshalBinary(data); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}

	// The decoded response must still verify end to end.
	v := seededVerifier(t, p.Commitment(), 4)
	ch := Challenge{Indices: []uint64{0, 13, 32}}
	if err := v.Verify(ch, &decoded, recompute(f)); err != nil {
		t.Fatalf("Verify(decoded): %v", err)
	}
}

func TestResponseMarshalRejectsEmpty(t *testing.T) {
	var resp Response
	if _, err := resp.MarshalBinary(); !errors.Is(err, ErrProtocol) {
		t.Errorf("empty: err = %v, want ErrProtocol", err)
	}
	var nilResp *Response
	if _, err := nilResp.MarshalBinary(); !errors.Is(err, ErrProtocol) {
		t.Errorf("nil: err = %v, want ErrProtocol", err)
	}
}

func TestResponseUnmarshalRejectsGarbage(t *testing.T) {
	f := workload.NewSynthetic(4, 1, 64)
	p := honestProver(t, f, 16)
	resp, err := p.Respond([]uint64{5})
	if err != nil {
		t.Fatalf("Respond: %v", err)
	}
	data, err := resp.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}

	for cut := 0; cut < len(data); cut += 5 {
		var d Response
		if err := d.UnmarshalBinary(data[:cut]); err == nil {
			t.Fatalf("accepted truncation at %d", cut)
		}
	}
	var d Response
	if err := d.UnmarshalBinary(append(append([]byte(nil), data...), 0)); err == nil {
		t.Fatal("accepted trailing byte")
	}
}

func TestWireQuickRoundTrips(t *testing.T) {
	f := func(rootSeed uint64, n uint64, indices []uint64) bool {
		root := make([]byte, 32)
		rand.New(rand.NewSource(int64(rootSeed))).Read(root)
		c := Commitment{Root: root, N: n%(1<<62) + 1}
		data, err := c.MarshalBinary()
		if err != nil {
			return false
		}
		var dc Commitment
		if err := dc.UnmarshalBinary(data); err != nil {
			return false
		}
		if !bytes.Equal(dc.Root, c.Root) || dc.N != c.N {
			return false
		}
		if len(indices) == 0 {
			return true
		}
		ch := Challenge{Indices: indices}
		cdata, err := ch.MarshalBinary()
		if err != nil {
			return false
		}
		var dch Challenge
		if err := dch.UnmarshalBinary(cdata); err != nil {
			return false
		}
		if len(dch.Indices) != len(indices) {
			return false
		}
		for k := range indices {
			if dch.Indices[k] != indices[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestResponseSizeScalesLogarithmically(t *testing.T) {
	// §3.1: total communication for m samples is O(m log n).
	f := workload.NewSynthetic(5, 1, 64)
	size := func(n int) int {
		p := honestProver(t, f, n)
		resp, err := p.Respond([]uint64{uint64(n / 2)})
		if err != nil {
			t.Fatalf("Respond: %v", err)
		}
		return resp.EncodedSize()
	}
	small, large := size(1<<8), size(1<<14)
	if large >= 2*small {
		t.Fatalf("response size not logarithmic: n=2^8 → %dB, n=2^14 → %dB", small, large)
	}
}
