package core

import (
	"errors"
	"fmt"

	"uncheatgrid/internal/hashchain"
	"uncheatgrid/internal/merkle"
)

// Verifier is the supervisor side of CBS for one participant's task. It
// holds the received commitment and audits responses against it.
type Verifier struct {
	commitment  Commitment
	treeOptions []merkle.Option
	rng         challengeRand
}

// challengeRand is the minimal randomness surface Challenge needs.
type challengeRand interface {
	Uint64() uint64
}

// NewVerifier accepts the participant's commitment (Step 1) and prepares to
// audit it.
func NewVerifier(c Commitment, opts ...Option) (*Verifier, error) {
	if c.N < 1 {
		return nil, fmt.Errorf("%w: committed domain size %d", ErrBadDomain, c.N)
	}
	if len(c.Root) == 0 {
		return nil, fmt.Errorf("%w: empty commitment root", ErrProtocol)
	}
	cfg := buildConfig(opts)
	v := &Verifier{
		commitment:  Commitment{Root: append([]byte(nil), c.Root...), N: c.N},
		treeOptions: cfg.treeOptions,
	}
	if cfg.rng != nil {
		v.rng = cfg.rng
	} else {
		rng, err := cryptoSeededRand()
		if err != nil {
			return nil, err
		}
		v.rng = rng
	}
	return v, nil
}

// Commitment returns the commitment under audit.
func (v *Verifier) Commitment() Commitment { return v.commitment }

// Challenge draws m sample indices uniformly at random with replacement from
// [0, n) — Step 2 of Section 3.1. Sampling with replacement matches the
// independence assumption of Theorem 3 exactly.
func (v *Verifier) Challenge(m int) (Challenge, error) {
	if m < 1 {
		return Challenge{}, fmt.Errorf("%w: got %d", ErrBadSampleCount, m)
	}
	indices := make([]uint64, m)
	for k := range indices {
		indices[k] = uniformIndex(v.rng, v.commitment.N)
	}
	return Challenge{Indices: indices}, nil
}

// Verify runs Step 4 for every challenged sample: first the output
// correctness check, then the root reconstruction against the commitment.
// It returns nil when the participant passes, a *CheatError at the first
// convicting sample, or an ErrProtocol-wrapped error for malformed input.
func (v *Verifier) Verify(ch Challenge, resp *Response, check CheckFunc) error {
	if resp == nil {
		return fmt.Errorf("%w: nil response", ErrProtocol)
	}
	if check == nil {
		return fmt.Errorf("%w: nil output check", ErrProtocol)
	}
	if len(ch.Indices) == 0 {
		return fmt.Errorf("%w: empty challenge", ErrProtocol)
	}
	if len(resp.Proofs) != len(ch.Indices) {
		return fmt.Errorf("%w: %d proofs for %d challenged samples",
			ErrProtocol, len(resp.Proofs), len(ch.Indices))
	}
	for k, idx := range ch.Indices {
		if err := v.verifySample(idx, resp.Proofs[k], check); err != nil {
			return err
		}
	}
	return nil
}

// VerifyNonInteractive audits an NI-CBS response (Section 4.1, Step 4): the
// supervisor re-derives the m sample indices from the committed root via the
// shared hash chain, then verifies exactly as in the interactive scheme.
func (v *Verifier) VerifyNonInteractive(chain *hashchain.Chain, m int, resp *Response, check CheckFunc) error {
	if chain == nil {
		return fmt.Errorf("%w: nil hash chain", ErrProtocol)
	}
	if m < 1 {
		return fmt.Errorf("%w: got %d", ErrBadSampleCount, m)
	}
	indices, err := chain.SampleIndices(v.commitment.Root, m, v.commitment.N)
	if err != nil {
		return fmt.Errorf("core: re-derive samples: %w", err)
	}
	return v.Verify(Challenge{Indices: indices}, resp, check)
}

func (v *Verifier) verifySample(idx uint64, proof *merkle.Proof, check CheckFunc) error {
	if proof == nil {
		return fmt.Errorf("%w: nil proof for sample %d", ErrProtocol, idx)
	}
	if uint64(proof.Index) != idx || idx >= v.commitment.N {
		return fmt.Errorf("%w: proof is for index %d, challenged %d",
			ErrProtocol, proof.Index, idx)
	}
	if uint64(proof.N) != v.commitment.N {
		return fmt.Errorf("%w: proof domain %d, committed %d",
			ErrProtocol, proof.N, v.commitment.N)
	}
	// Step 4, case 1: is the claimed f(x) correct?
	if err := check(idx, proof.Value); err != nil {
		if errors.Is(err, ErrWrongOutput) {
			return &CheatError{Index: idx, Err: err}
		}
		return &CheatError{Index: idx, Err: fmt.Errorf("%w: %v", ErrWrongOutput, err)}
	}
	// Step 4, case 2: was that value committed before the challenge?
	switch err := merkle.Verify(v.commitment.Root, proof, v.treeOptions...); {
	case err == nil:
		return nil
	case errors.Is(err, merkle.ErrRootMismatch):
		return &CheatError{Index: idx, Err: ErrCommitmentMismatch}
	default:
		return fmt.Errorf("%w: %v", ErrProtocol, err)
	}
}

// uniformIndex draws uniformly from [0, n) without modulo bias.
func uniformIndex(rng challengeRand, n uint64) uint64 {
	if n&(n-1) == 0 {
		return rng.Uint64() & (n - 1) // power of two: mask is exact
	}
	// Rejection sampling over the largest multiple of n below 2^64.
	limit := ^uint64(0) - ^uint64(0)%n
	for {
		v := rng.Uint64()
		if v < limit {
			return v % n
		}
	}
}
