package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"uncheatgrid/internal/cheat"
	"uncheatgrid/internal/hashchain"
	"uncheatgrid/internal/merkle"
	"uncheatgrid/internal/workload"
)

// testFunction returns a cheap deterministic workload for protocol tests.
func testFunction(seed uint64) workload.Function {
	return workload.NewSynthetic(seed, 1, 64)
}

func honestProver(t *testing.T, f workload.Function, n int, opts ...Option) *Prover {
	t.Helper()
	p, err := NewProver(n, func(i uint64) []byte { return f.Eval(i) }, opts...)
	if err != nil {
		t.Fatalf("NewProver: %v", err)
	}
	return p
}

func seededVerifier(t *testing.T, c Commitment, seed int64, opts ...Option) *Verifier {
	t.Helper()
	opts = append(opts, WithRand(rand.New(rand.NewSource(seed))))
	v, err := NewVerifier(c, opts...)
	if err != nil {
		t.Fatalf("NewVerifier: %v", err)
	}
	return v
}

func recompute(f workload.Function) CheckFunc {
	return RecomputeCheck(func(i uint64) []byte { return f.Eval(i) })
}

// TestSoundness is Theorem 1: an honest participant always convinces the
// supervisor, across domain sizes and sample counts.
func TestSoundness(t *testing.T) {
	f := testFunction(1)
	for _, n := range []int{1, 2, 7, 64, 100, 257} {
		for _, m := range []int{1, 5, 33} {
			t.Run(fmt.Sprintf("n=%d,m=%d", n, m), func(t *testing.T) {
				prover := honestProver(t, f, n)
				verifier := seededVerifier(t, prover.Commitment(), int64(n*1000+m))
				ch, err := verifier.Challenge(m)
				if err != nil {
					t.Fatalf("Challenge: %v", err)
				}
				resp, err := prover.Respond(ch.Indices)
				if err != nil {
					t.Fatalf("Respond: %v", err)
				}
				if err := verifier.Verify(ch, resp, recompute(f)); err != nil {
					t.Fatalf("honest participant rejected: %v", err)
				}
			})
		}
	}
}

// TestUncheatability is Theorem 2: a participant that committed a wrong
// value for a sampled leaf cannot produce an accepting proof, even when it
// supplies the correct f(x) after learning the sample.
func TestUncheatability(t *testing.T) {
	f := testFunction(2)
	const n = 64
	const badIndex = 17

	// The cheater commits a guess at badIndex.
	lie := []byte{0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0}
	cheater, err := NewProver(n, func(i uint64) []byte {
		if i == badIndex {
			return lie
		}
		return f.Eval(i)
	})
	if err != nil {
		t.Fatalf("NewProver: %v", err)
	}
	verifier := seededVerifier(t, cheater.Commitment(), 7)

	t.Run("lying response fails output check", func(t *testing.T) {
		// The cheater answers with what it committed: the wrong value.
		resp, err := cheater.Respond([]uint64{badIndex})
		if err != nil {
			t.Fatalf("Respond: %v", err)
		}
		err = verifier.Verify(Challenge{Indices: []uint64{badIndex}}, resp, recompute(f))
		var cheatErr *CheatError
		if !errors.As(err, &cheatErr) {
			t.Fatalf("Verify: err = %v, want *CheatError", err)
		}
		if !errors.Is(err, ErrWrongOutput) {
			t.Fatalf("err = %v, want ErrWrongOutput", err)
		}
		if cheatErr.Index != badIndex {
			t.Fatalf("convicted at %d, want %d", cheatErr.Index, badIndex)
		}
	})

	t.Run("post-hoc correct value fails commitment check", func(t *testing.T) {
		// The cheater computes the true f(x) after learning the sample and
		// splices it into the proof. The root no longer reconstructs.
		resp, err := cheater.Respond([]uint64{badIndex})
		if err != nil {
			t.Fatalf("Respond: %v", err)
		}
		resp.Proofs[0].Value = f.Eval(badIndex)
		err = verifier.Verify(Challenge{Indices: []uint64{badIndex}}, resp, recompute(f))
		if !errors.Is(err, ErrCommitmentMismatch) {
			t.Fatalf("err = %v, want ErrCommitmentMismatch", err)
		}
	})

	t.Run("unsampled lies survive", func(t *testing.T) {
		// Sampling elsewhere does not convict — the probabilistic gap the
		// sample-size formula closes.
		resp, err := cheater.Respond([]uint64{3, 40})
		if err != nil {
			t.Fatalf("Respond: %v", err)
		}
		if err := verifier.Verify(Challenge{Indices: []uint64{3, 40}}, resp, recompute(f)); err != nil {
			t.Fatalf("Verify on honest leaves: %v", err)
		}
	})
}

func TestProverValidation(t *testing.T) {
	f := testFunction(3)
	claim := func(i uint64) []byte { return f.Eval(i) }
	if _, err := NewProver(0, claim); !errors.Is(err, ErrBadDomain) {
		t.Errorf("n=0: err = %v, want ErrBadDomain", err)
	}
	if _, err := NewProver(4, nil); !errors.Is(err, ErrProtocol) {
		t.Errorf("nil claim: err = %v, want ErrProtocol", err)
	}
	if _, err := NewProver(4, claim, WithSubtreeHeight(5)); err == nil {
		t.Error("subtree height beyond tree height accepted")
	}

	p := honestProver(t, f, 8)
	if _, err := p.Respond(nil); !errors.Is(err, ErrProtocol) {
		t.Errorf("empty challenge: err = %v, want ErrProtocol", err)
	}
	if _, err := p.Respond([]uint64{8}); !errors.Is(err, ErrProtocol) {
		t.Errorf("out-of-range index: err = %v, want ErrProtocol", err)
	}
	if p.N() != 8 {
		t.Errorf("N() = %d, want 8", p.N())
	}
}

func TestVerifierValidation(t *testing.T) {
	f := testFunction(4)
	p := honestProver(t, f, 8)

	if _, err := NewVerifier(Commitment{Root: nil, N: 8}); !errors.Is(err, ErrProtocol) {
		t.Errorf("empty root: err = %v, want ErrProtocol", err)
	}
	if _, err := NewVerifier(Commitment{Root: []byte{1}, N: 0}); !errors.Is(err, ErrBadDomain) {
		t.Errorf("n=0: err = %v, want ErrBadDomain", err)
	}

	v := seededVerifier(t, p.Commitment(), 1)
	if _, err := v.Challenge(0); !errors.Is(err, ErrBadSampleCount) {
		t.Errorf("m=0: err = %v, want ErrBadSampleCount", err)
	}

	ch, err := v.Challenge(2)
	if err != nil {
		t.Fatalf("Challenge: %v", err)
	}
	resp, err := p.Respond(ch.Indices)
	if err != nil {
		t.Fatalf("Respond: %v", err)
	}

	if err := v.Verify(ch, nil, recompute(f)); !errors.Is(err, ErrProtocol) {
		t.Errorf("nil response: err = %v, want ErrProtocol", err)
	}
	if err := v.Verify(ch, resp, nil); !errors.Is(err, ErrProtocol) {
		t.Errorf("nil check: err = %v, want ErrProtocol", err)
	}
	if err := v.Verify(Challenge{}, resp, recompute(f)); !errors.Is(err, ErrProtocol) {
		t.Errorf("empty challenge: err = %v, want ErrProtocol", err)
	}
	short := &Response{Proofs: resp.Proofs[:1]}
	if err := v.Verify(ch, short, recompute(f)); !errors.Is(err, ErrProtocol) {
		t.Errorf("short response: err = %v, want ErrProtocol", err)
	}

	// A proof re-ordered against the challenge is a protocol violation.
	if len(ch.Indices) == 2 && ch.Indices[0] != ch.Indices[1] {
		swapped := &Response{Proofs: []*merkle.Proof{resp.Proofs[1], resp.Proofs[0]}}
		if err := v.Verify(ch, swapped, recompute(f)); !errors.Is(err, ErrProtocol) {
			t.Errorf("swapped proofs: err = %v, want ErrProtocol", err)
		}
	}
}

func TestChallengeDistribution(t *testing.T) {
	f := testFunction(5)
	p := honestProver(t, f, 8)
	v := seededVerifier(t, p.Commitment(), 99)
	ch, err := v.Challenge(8000)
	if err != nil {
		t.Fatalf("Challenge: %v", err)
	}
	counts := make([]int, 8)
	for _, idx := range ch.Indices {
		if idx >= 8 {
			t.Fatalf("index %d out of range", idx)
		}
		counts[idx]++
	}
	for bucket, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("bucket %d has %d of 8000 samples; challenge not uniform: %v", bucket, c, counts)
		}
	}
}

func TestChallengeNonPowerOfTwoUnbiased(t *testing.T) {
	f := testFunction(6)
	p := honestProver(t, f, 3)
	v := seededVerifier(t, p.Commitment(), 5)
	ch, err := v.Challenge(9000)
	if err != nil {
		t.Fatalf("Challenge: %v", err)
	}
	counts := make([]int, 3)
	for _, idx := range ch.Indices {
		counts[idx]++
	}
	for bucket, c := range counts {
		if c < 2700 || c > 3300 {
			t.Fatalf("bucket %d has %d of 9000; rejection sampling biased: %v", bucket, c, counts)
		}
	}
}

// TestEquationTwoMonteCarlo cross-checks Theorem 3 against the live
// protocol: the measured cheat-survival rate over many independent rounds
// must match (r + (1-r)q)^m.
func TestEquationTwoMonteCarlo(t *testing.T) {
	const (
		n      = 32
		rounds = 400
	)
	tests := []struct {
		name string
		r    float64
		bits uint // output width: q = 2^-bits
		q    float64
		m    int
	}{
		{name: "r=0.5 q=0 m=3", r: 0.5, bits: 64, q: 0, m: 3},
		{name: "r=0.5 q=0.5 m=4", r: 0.5, bits: 1, q: 0.5, m: 4},
		{name: "r=0.8 q=0 m=5", r: 0.8, bits: 64, q: 0, m: 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			survived := 0
			for round := 0; round < rounds; round++ {
				f := workload.NewSynthetic(uint64(round), 1, tt.bits)
				producer, err := cheat.NewSemiHonest(f, tt.r, uint64(round)*7919)
				if err != nil {
					t.Fatalf("NewSemiHonest: %v", err)
				}
				prover, err := NewProver(n, producer.Claim)
				if err != nil {
					t.Fatalf("NewProver: %v", err)
				}
				verifier := seededVerifier(t, prover.Commitment(), int64(round)+1)
				ch, err := verifier.Challenge(tt.m)
				if err != nil {
					t.Fatalf("Challenge: %v", err)
				}
				resp, err := prover.Respond(ch.Indices)
				if err != nil {
					t.Fatalf("Respond: %v", err)
				}
				err = verifier.Verify(ch, resp, recompute(f))
				var cheatErr *CheatError
				switch {
				case err == nil:
					survived++
				case errors.As(err, &cheatErr):
					// detected; expected most of the time
				default:
					t.Fatalf("unexpected protocol error: %v", err)
				}
			}
			got := float64(survived) / rounds
			want := math.Pow(tt.r+(1-tt.r)*tt.q, float64(tt.m))
			// Binomial std dev over `rounds` trials; allow 4 sigma.
			sigma := math.Sqrt(want * (1 - want) / rounds)
			if math.Abs(got-want) > 4*sigma+0.02 {
				t.Fatalf("survival rate = %v, want %v ± %v (Eq. 2)", got, want, 4*sigma+0.02)
			}
		})
	}
}

func TestStorageBoundedProverMatchesFullProver(t *testing.T) {
	f := testFunction(7)
	const n = 128
	full := honestProver(t, f, n)
	bounded := honestProver(t, f, n, WithSubtreeHeight(4))

	if string(full.Commitment().Root) != string(bounded.Commitment().Root) {
		t.Fatal("storage-bounded prover commits to a different root")
	}
	if bounded.StoredNodes() >= full.StoredNodes() {
		t.Fatalf("bounded StoredNodes() = %d, full = %d; no storage saved",
			bounded.StoredNodes(), full.StoredNodes())
	}

	verifier := seededVerifier(t, bounded.Commitment(), 3)
	ch, err := verifier.Challenge(8)
	if err != nil {
		t.Fatalf("Challenge: %v", err)
	}
	resp, err := bounded.Respond(ch.Indices)
	if err != nil {
		t.Fatalf("Respond: %v", err)
	}
	if err := verifier.Verify(ch, resp, recompute(f)); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if got := bounded.RebuiltLeaves(); got != 8*(1<<4) {
		t.Fatalf("RebuiltLeaves() = %d, want %d (m·2^ℓ)", got, 8*(1<<4))
	}
	if full.RebuiltLeaves() != 0 {
		t.Fatal("full prover reports rebuilt leaves")
	}
}

func TestNonInteractiveRoundTrip(t *testing.T) {
	f := testFunction(8)
	chain, err := hashchain.New(2)
	if err != nil {
		t.Fatalf("hashchain.New: %v", err)
	}
	const n, m = 64, 10

	prover := honestProver(t, f, n)
	resp, err := prover.RespondNonInteractive(chain, m)
	if err != nil {
		t.Fatalf("RespondNonInteractive: %v", err)
	}
	verifier := seededVerifier(t, prover.Commitment(), 1)
	if err := verifier.VerifyNonInteractive(chain, m, resp, recompute(f)); err != nil {
		t.Fatalf("VerifyNonInteractive: %v", err)
	}
}

func TestNonInteractiveCatchesNaiveCheater(t *testing.T) {
	// A semi-honest cheater that does NOT re-roll is caught by NI-CBS at
	// the same rate as CBS. With r=0.25 and m=8 the survival probability is
	// 2^-16; one run virtually always convicts.
	f := testFunction(9)
	chain, err := hashchain.New(1)
	if err != nil {
		t.Fatalf("hashchain.New: %v", err)
	}
	producer, err := cheat.NewSemiHonest(f, 0.25, 4242)
	if err != nil {
		t.Fatalf("NewSemiHonest: %v", err)
	}
	prover, err := NewProver(256, producer.Claim)
	if err != nil {
		t.Fatalf("NewProver: %v", err)
	}
	resp, err := prover.RespondNonInteractive(chain, 8)
	if err != nil {
		t.Fatalf("RespondNonInteractive: %v", err)
	}
	verifier := seededVerifier(t, prover.Commitment(), 2)
	err = verifier.VerifyNonInteractive(chain, 8, resp, recompute(f))
	var cheatErr *CheatError
	if !errors.As(err, &cheatErr) {
		t.Fatalf("cheater passed NI-CBS: err = %v", err)
	}
}

func TestNonInteractiveRerollForgeryPasses(t *testing.T) {
	// The flip side (Section 4.2): a re-rolling attacker with a small m
	// forges a commitment that NI-CBS accepts — motivating the Eq. 5
	// defense. The output check must be the screener-style "accept
	// committed values" here, since the supervisor in the NI setting cannot
	// recompute f for values it never saw... it CAN check outputs; the
	// attack works because all audited samples fall in D', where outputs
	// are genuinely correct.
	f := testFunction(10)
	chain, err := hashchain.New(1)
	if err != nil {
		t.Fatalf("hashchain.New: %v", err)
	}
	const n, m = 32, 3
	result, err := cheat.Reroll(cheat.RerollConfig{
		F:           f,
		N:           n,
		Ratio:       0.5,
		M:           m,
		Chain:       chain,
		MaxAttempts: 1 << 14,
		Seed:        77,
	})
	if err != nil {
		t.Fatalf("Reroll: %v", err)
	}
	forged, err := NewProver(n, func(i uint64) []byte { return result.Claims[i] })
	if err != nil {
		t.Fatalf("NewProver: %v", err)
	}
	resp, err := forged.RespondNonInteractive(chain, m)
	if err != nil {
		t.Fatalf("RespondNonInteractive: %v", err)
	}
	verifier := seededVerifier(t, forged.Commitment(), 3)
	if err := verifier.VerifyNonInteractive(chain, m, resp, recompute(f)); err != nil {
		t.Fatalf("re-roll forgery rejected — attack should succeed at small m: %v", err)
	}
}

func TestNonInteractiveValidation(t *testing.T) {
	f := testFunction(11)
	p := honestProver(t, f, 8)
	chain, err := hashchain.New(1)
	if err != nil {
		t.Fatalf("hashchain.New: %v", err)
	}
	if _, err := p.RespondNonInteractive(nil, 4); !errors.Is(err, ErrProtocol) {
		t.Errorf("nil chain: err = %v, want ErrProtocol", err)
	}
	if _, err := p.RespondNonInteractive(chain, 0); !errors.Is(err, ErrBadSampleCount) {
		t.Errorf("m=0: err = %v, want ErrBadSampleCount", err)
	}
	v := seededVerifier(t, p.Commitment(), 1)
	resp, err := p.RespondNonInteractive(chain, 4)
	if err != nil {
		t.Fatalf("RespondNonInteractive: %v", err)
	}
	if err := v.VerifyNonInteractive(nil, 4, resp, recompute(f)); !errors.Is(err, ErrProtocol) {
		t.Errorf("nil chain: err = %v, want ErrProtocol", err)
	}
	if err := v.VerifyNonInteractive(chain, 0, resp, recompute(f)); !errors.Is(err, ErrBadSampleCount) {
		t.Errorf("m=0: err = %v, want ErrBadSampleCount", err)
	}
	// Mismatched chains derive different indices → protocol error.
	otherChain, err := hashchain.New(3)
	if err != nil {
		t.Fatalf("hashchain.New: %v", err)
	}
	if err := v.VerifyNonInteractive(otherChain, 4, resp, recompute(f)); err == nil {
		t.Error("mismatched chains accepted")
	}
}

func TestCheckFuncAdapters(t *testing.T) {
	f := testFunction(12)
	check := recompute(f)
	if err := check(5, f.Eval(5)); err != nil {
		t.Fatalf("RecomputeCheck rejected the true value: %v", err)
	}
	if err := check(5, f.Eval(6)); !errors.Is(err, ErrWrongOutput) {
		t.Fatalf("RecomputeCheck accepted a wrong value: %v", err)
	}
	if err := check(5, []byte{1}); !errors.Is(err, ErrWrongOutput) {
		t.Fatalf("RecomputeCheck accepted a short value: %v", err)
	}
	if err := AcceptAnyOutput(1, []byte{9}); err != nil {
		t.Fatalf("AcceptAnyOutput: %v", err)
	}
}

func TestCheatErrorFormatting(t *testing.T) {
	err := &CheatError{Index: 42, Err: ErrWrongOutput}
	if !errors.Is(err, ErrWrongOutput) {
		t.Fatal("CheatError does not unwrap")
	}
	if msg := err.Error(); msg == "" {
		t.Fatal("empty error message")
	}
}
