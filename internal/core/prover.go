package core

import (
	"fmt"

	"uncheatgrid/internal/hashchain"
	"uncheatgrid/internal/merkle"
)

// proofSource abstracts the full and partial Merkle trees behind the prover.
type proofSource interface {
	Root() []byte
	Prove(i int) (*merkle.Proof, error)
}

// Prover is the participant side of CBS. It owns the committed Merkle tree
// and answers sample challenges. Construct one per assigned task; safe for
// concurrent Respond calls.
type Prover struct {
	n       int
	source  proofSource
	partial *merkle.PartialTree // nil in full-tree mode
}

// NewProver builds the participant's Merkle tree over n claimed results
// (Step 1 of Section 3.1). claim(i) must return the value the participant
// stands behind for domain index i; for an honest participant that is
// f(x_i). With WithSubtreeHeight(ℓ > 0), claim must be deterministic since
// audited subtrees are recomputed on demand.
func NewProver(n int, claim func(i uint64) []byte, opts ...Option) (*Prover, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadDomain, n)
	}
	if claim == nil {
		return nil, fmt.Errorf("%w: nil claim function", ErrProtocol)
	}
	cfg := buildConfig(opts)

	p := &Prover{n: n}
	if cfg.subtreeHeight > 0 {
		partial, err := merkle.NewPartial(n, cfg.subtreeHeight,
			func(i int) []byte { return claim(uint64(i)) }, cfg.treeOptions...)
		if err != nil {
			return nil, fmt.Errorf("core: build partial tree: %w", err)
		}
		p.source = partial
		p.partial = partial
		return p, nil
	}
	tree, err := merkle.BuildFunc(n, func(i int) []byte { return claim(uint64(i)) }, cfg.treeOptions...)
	if err != nil {
		return nil, fmt.Errorf("core: build tree: %w", err)
	}
	p.source = tree
	return p, nil
}

// N reports the domain size n.
func (p *Prover) N() int { return p.n }

// Commitment returns the message of Step 1: the root Φ(R) and the domain
// size.
func (p *Prover) Commitment() Commitment {
	return Commitment{Root: p.source.Root(), N: uint64(p.n)}
}

// Respond produces the participant's proof of honesty (Step 3) for the
// challenged sample indices: for each index, the claimed f(x) plus the
// sibling Φ values along the leaf-to-root path.
func (p *Prover) Respond(indices []uint64) (*Response, error) {
	if len(indices) == 0 {
		return nil, fmt.Errorf("%w: empty challenge", ErrProtocol)
	}
	proofs := make([]*merkle.Proof, len(indices))
	for k, idx := range indices {
		if idx >= uint64(p.n) {
			return nil, fmt.Errorf("%w: challenged index %d outside domain [0,%d)",
				ErrProtocol, idx, p.n)
		}
		proof, err := p.source.Prove(int(idx))
		if err != nil {
			return nil, fmt.Errorf("core: prove index %d: %w", idx, err)
		}
		proofs[k] = proof
	}
	return &Response{Proofs: proofs}, nil
}

// RespondNonInteractive runs Steps 2-3 of the NI-CBS scheme (Section 4.1):
// the participant derives its own m sample indices from the commitment via
// the hash chain g (Eq. 4) and returns the proofs. No supervisor round trip
// is needed; the verifier re-derives the same indices from the root.
func (p *Prover) RespondNonInteractive(chain *hashchain.Chain, m int) (*Response, error) {
	if chain == nil {
		return nil, fmt.Errorf("%w: nil hash chain", ErrProtocol)
	}
	if m < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadSampleCount, m)
	}
	indices, err := chain.SampleIndices(p.source.Root(), m, uint64(p.n))
	if err != nil {
		return nil, fmt.Errorf("core: derive samples: %w", err)
	}
	return p.Respond(indices)
}

// RebuiltLeaves reports how many leaf recomputations the Section 3.3 mode
// has performed to serve proofs; 0 in full-tree mode.
func (p *Prover) RebuiltLeaves() int64 {
	if p.partial == nil {
		return 0
	}
	return p.partial.RebuiltLeaves()
}

// StoredNodes reports the prover's tree-storage footprint in node slots
// (S of Section 3.3). Full-tree mode stores 2·nextPow2(n) slots.
func (p *Prover) StoredNodes() int {
	if p.partial != nil {
		return p.partial.StoredNodes()
	}
	capacity := 1
	for capacity < p.n {
		capacity *= 2
	}
	return 2 * capacity
}
