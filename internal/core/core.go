// Package core implements the Commitment-Based Sampling (CBS) scheme of
// "Uncheatable Grid Computing" (Du, Jia, Mangal, Murugesan; ICDCS 2004) —
// the paper's primary contribution — in both its interactive (Section 3.1)
// and non-interactive (Section 4.1) forms.
//
// The protocol has four steps:
//
//  1. Building the Merkle tree: the participant commits to all n results by
//     sending Φ(R), the tree root (Prover.Commitment).
//  2. Sample selection: the supervisor draws m uniform indices
//     (Verifier.Challenge); in the non-interactive variant both sides derive
//     them from the commitment via a hash chain (Eq. 4).
//  3. Proof of honesty: the participant returns f(x) and the sibling path
//     for every sample (Prover.Respond).
//  4. Verification: the supervisor checks each claimed output and
//     reconstructs the root from the proof (Verifier.Verify); any mismatch
//     convicts the participant (Theorems 1-2).
//
// The storage-bounded prover of Section 3.3 is selected with
// WithSubtreeHeight: it keeps only the top H-ℓ tree levels and recomputes
// one 2^ℓ-leaf subtree per audited sample.
package core

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	mrand "math/rand"

	"uncheatgrid/internal/merkle"
)

// Errors reported by this package. CheatError wraps ErrWrongOutput and
// ErrCommitmentMismatch so callers can both identify the failing sample and
// classify the failure.
var (
	// ErrBadDomain is returned for an empty or oversized domain.
	ErrBadDomain = errors.New("core: domain size must be >= 1")
	// ErrBadSampleCount is returned for a non-positive sample count.
	ErrBadSampleCount = errors.New("core: sample count must be >= 1")
	// ErrProtocol is returned for structurally invalid or mismatched
	// messages — a protocol violation rather than a detected cheat.
	ErrProtocol = errors.New("core: protocol violation")
	// ErrWrongOutput indicates the claimed f(x) failed the supervisor's
	// correctness check (Step 4, case 1).
	ErrWrongOutput = errors.New("core: claimed output is incorrect")
	// ErrCommitmentMismatch indicates the proof does not reconstruct the
	// committed root (Step 4, case 2): the participant did not know f(x)
	// when it built the tree.
	ErrCommitmentMismatch = errors.New("core: proof inconsistent with commitment")
)

// CheatError reports a failed verification: which sample convicted the
// participant and why. Use errors.As to extract it and errors.Is to test for
// ErrWrongOutput or ErrCommitmentMismatch.
type CheatError struct {
	// Index is the domain index of the convicting sample.
	Index uint64
	// Err is ErrWrongOutput or ErrCommitmentMismatch (possibly wrapped).
	Err error
}

// Error implements error.
func (e *CheatError) Error() string {
	return fmt.Sprintf("cheating detected at sample %d: %v", e.Index, e.Err)
}

// Unwrap exposes the failure class.
func (e *CheatError) Unwrap() error { return e.Err }

// CheckFunc is the supervisor's correctness check for a claimed output
// (Step 4, case 1). It returns nil when output is the true f(x). The paper
// notes this need not recompute f — cheap verifiers (factoring) qualify.
type CheckFunc func(index uint64, output []byte) error

// RecomputeCheck builds a CheckFunc that recomputes f and compares — the
// generic, always-available strategy.
func RecomputeCheck(eval func(index uint64) []byte) CheckFunc {
	return func(index uint64, output []byte) error {
		want := eval(index)
		if len(want) != len(output) {
			return fmt.Errorf("%w: length %d, want %d", ErrWrongOutput, len(output), len(want))
		}
		for i := range want {
			if want[i] != output[i] {
				return ErrWrongOutput
			}
		}
		return nil
	}
}

// AcceptAnyOutput is a CheckFunc that skips the output-correctness step,
// relying on the commitment check alone. Experiments use it to isolate the
// commitment mechanism; real supervisors should not.
func AcceptAnyOutput(uint64, []byte) error { return nil }

// config collects construction options shared by Prover and Verifier.
type config struct {
	subtreeHeight int
	treeOptions   []merkle.Option
	rng           *mrand.Rand
}

// Option customizes a Prover or Verifier.
type Option interface {
	apply(*config)
}

type subtreeHeightOption int

func (o subtreeHeightOption) apply(c *config) { c.subtreeHeight = int(o) }

// WithSubtreeHeight selects the Section 3.3 storage-bounded prover: only the
// top H-ℓ levels of the tree are stored, and each audited sample rebuilds a
// 2^ℓ-leaf subtree. ℓ = 0 (the default) stores the full tree. The claim
// function must be deterministic in this mode. Verifiers ignore this option.
func WithSubtreeHeight(ell int) Option { return subtreeHeightOption(ell) }

type treeOptionsOption []merkle.Option

func (o treeOptionsOption) apply(c *config) {
	c.treeOptions = append(c.treeOptions, []merkle.Option(o)...)
}

// WithTreeOptions forwards options (e.g. the hash function) to the Merkle
// layer. Prover and Verifier must agree on them.
func WithTreeOptions(opts ...merkle.Option) Option { return treeOptionsOption(opts) }

type rngOption struct{ rng *mrand.Rand }

func (o rngOption) apply(c *config) { c.rng = o.rng }

// WithRand fixes the verifier's challenge randomness; experiments use it for
// reproducibility. The default draws a fresh seed from crypto/rand.
func WithRand(rng *mrand.Rand) Option { return rngOption{rng: rng} }

func buildConfig(opts []Option) config {
	var c config
	for _, opt := range opts {
		opt.apply(&c)
	}
	return c
}

// cryptoSeededRand returns a math/rand generator seeded from the OS CSPRNG;
// used when the caller does not pin randomness.
func cryptoSeededRand() (*mrand.Rand, error) {
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err != nil {
		return nil, fmt.Errorf("core: seed challenge rng: %w", err)
	}
	return mrand.New(mrand.NewSource(int64(binary.BigEndian.Uint64(seed[:])))), nil
}
