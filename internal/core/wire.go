package core

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"uncheatgrid/internal/merkle"
)

// Commitment is the Step 1 message: the Merkle root Φ(R) over all n results
// plus the domain size the participant claims to have computed.
type Commitment struct {
	// Root is Φ(R).
	Root []byte
	// N is the number of leaves (the participant's |D|).
	N uint64
}

// Challenge is the Step 2 message: the supervisor's sample indices
// (zero-based positions within the participant's domain).
type Challenge struct {
	// Indices are drawn uniformly with replacement from [0, N).
	Indices []uint64
}

// Response is the Step 3 message: one audit-path proof per challenged
// sample, each carrying the claimed f(x) as its leaf value.
type Response struct {
	// Proofs are ordered to match the challenge indices.
	Proofs []*merkle.Proof
}

// MarshalBinary encodes the commitment as
// uvarint(len(root)) || root || uvarint(n).
func (c Commitment) MarshalBinary() ([]byte, error) {
	if len(c.Root) == 0 {
		return nil, fmt.Errorf("%w: empty commitment root", ErrProtocol)
	}
	var buf bytes.Buffer
	writeUvarint(&buf, uint64(len(c.Root)))
	buf.Write(c.Root)
	writeUvarint(&buf, c.N)
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a commitment produced by MarshalBinary.
func (c *Commitment) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	root, err := readLengthPrefixed(r, "root")
	if err != nil {
		return err
	}
	if len(root) == 0 {
		return fmt.Errorf("%w: empty commitment root", ErrProtocol)
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("%w: commitment n: %v", ErrProtocol, err)
	}
	if err := expectEOF(r); err != nil {
		return err
	}
	c.Root = root
	c.N = n
	return nil
}

// EncodedSize reports the exact MarshalBinary length.
func (c Commitment) EncodedSize() int {
	return uvarintLen(uint64(len(c.Root))) + len(c.Root) + uvarintLen(c.N)
}

// MarshalBinary encodes the challenge as uvarint(m) || uvarint(index)*.
func (ch Challenge) MarshalBinary() ([]byte, error) {
	if len(ch.Indices) == 0 {
		return nil, fmt.Errorf("%w: empty challenge", ErrProtocol)
	}
	var buf bytes.Buffer
	writeUvarint(&buf, uint64(len(ch.Indices)))
	for _, idx := range ch.Indices {
		writeUvarint(&buf, idx)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a challenge produced by MarshalBinary.
func (ch *Challenge) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	m, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("%w: challenge count: %v", ErrProtocol, err)
	}
	const maxSamples = 1 << 20 // far above any useful m; bounds allocation
	if m == 0 || m > maxSamples {
		return fmt.Errorf("%w: challenge count %d outside [1, %d]", ErrProtocol, m, maxSamples)
	}
	indices := make([]uint64, m)
	for k := range indices {
		idx, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("%w: challenge index %d: %v", ErrProtocol, k, err)
		}
		indices[k] = idx
	}
	if err := expectEOF(r); err != nil {
		return err
	}
	ch.Indices = indices
	return nil
}

// EncodedSize reports the exact MarshalBinary length.
func (ch Challenge) EncodedSize() int {
	size := uvarintLen(uint64(len(ch.Indices)))
	for _, idx := range ch.Indices {
		size += uvarintLen(idx)
	}
	return size
}

// MarshalBinary encodes the response as uvarint(count) followed by each
// proof length-prefixed.
func (resp *Response) MarshalBinary() ([]byte, error) {
	if resp == nil || len(resp.Proofs) == 0 {
		return nil, fmt.Errorf("%w: empty response", ErrProtocol)
	}
	var buf bytes.Buffer
	writeUvarint(&buf, uint64(len(resp.Proofs)))
	for k, proof := range resp.Proofs {
		if proof == nil {
			return nil, fmt.Errorf("%w: nil proof %d", ErrProtocol, k)
		}
		encoded, err := proof.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("core: marshal proof %d: %w", k, err)
		}
		writeUvarint(&buf, uint64(len(encoded)))
		buf.Write(encoded)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a response produced by MarshalBinary.
func (resp *Response) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("%w: response count: %v", ErrProtocol, err)
	}
	const maxProofs = 1 << 20
	if count == 0 || count > maxProofs {
		return fmt.Errorf("%w: response count %d outside [1, %d]", ErrProtocol, count, maxProofs)
	}
	proofs := make([]*merkle.Proof, count)
	for k := range proofs {
		encoded, err := readLengthPrefixed(r, fmt.Sprintf("proof %d", k))
		if err != nil {
			return err
		}
		var proof merkle.Proof
		if err := proof.UnmarshalBinary(encoded); err != nil {
			return fmt.Errorf("%w: proof %d: %v", ErrProtocol, k, err)
		}
		proofs[k] = &proof
	}
	if err := expectEOF(r); err != nil {
		return err
	}
	resp.Proofs = proofs
	return nil
}

// EncodedSize reports the exact MarshalBinary length. It is the quantity the
// communication-cost experiment measures: O(m log n) by Section 3.1.
func (resp *Response) EncodedSize() int {
	size := uvarintLen(uint64(len(resp.Proofs)))
	for _, proof := range resp.Proofs {
		ps := proof.EncodedSize()
		size += uvarintLen(uint64(ps)) + ps
	}
	return size
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	buf.Write(tmp[:n])
}

func uvarintLen(v uint64) int {
	var tmp [binary.MaxVarintLen64]byte
	return binary.PutUvarint(tmp[:], v)
}

func readLengthPrefixed(r *bytes.Reader, what string) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %s length: %v", ErrProtocol, what, err)
	}
	if n > uint64(r.Len()) {
		return nil, fmt.Errorf("%w: %s declares %d bytes, %d remain", ErrProtocol, what, n, r.Len())
	}
	out := make([]byte, n)
	if n == 0 {
		// bytes.Reader reports io.EOF for empty reads at the end of the
		// buffer; a zero-length field is valid wherever it appears.
		return out, nil
	}
	if _, err := r.Read(out); err != nil {
		return nil, fmt.Errorf("%w: %s payload: %v", ErrProtocol, what, err)
	}
	return out, nil
}

func expectEOF(r *bytes.Reader) error {
	if r.Len() != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrProtocol, r.Len())
	}
	return nil
}
