package workload

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
)

// Password is the paper's running example (Section 3): breaking a password
// by brute force, i.e. inverting a one-way function over a keyspace. Here
// f(x) = SHA-256(salt || x) over a 2^KeyBits keyspace, and the screener
// reports any x whose digest equals the target.
//
// The output is a 32-byte digest, so the guessing probability q is
// negligible (2^-256). Because f itself is one-way, this workload is also
// the one class the ringer scheme of Golle-Mironov supports, making it the
// comparison substrate for the baselines.
type Password struct {
	salt    [8]byte
	keyBits uint
	target  []byte
}

var _ Function = (*Password)(nil)

// NewPassword creates a keyspace-search workload over 2^keyBits keys. The
// hidden password is derived from the seed so that every run has exactly one
// hit inside the keyspace.
func NewPassword(seed uint64, keyBits uint) *Password {
	if keyBits == 0 || keyBits > 63 {
		keyBits = 20
	}
	p := &Password{keyBits: keyBits}
	binary.BigEndian.PutUint64(p.salt[:], seed)
	secret := splitmix(seed) & ((1 << keyBits) - 1)
	p.target = p.Eval(secret)
	return p
}

// Name implements Function.
func (p *Password) Name() string { return "password" }

// KeyBits reports the keyspace width.
func (p *Password) KeyBits() uint { return p.keyBits }

// Target returns the digest of the hidden password.
func (p *Password) Target() []byte {
	return append([]byte(nil), p.target...)
}

// Eval implements Function: f(x) = SHA-256(salt || x).
func (p *Password) Eval(x uint64) []byte {
	var buf [16]byte
	copy(buf[:8], p.salt[:])
	binary.BigEndian.PutUint64(buf[8:], x)
	sum := sha256.Sum256(buf[:])
	return sum[:]
}

// GuessOutput implements Function: a random 32-byte digest.
func (p *Password) GuessOutput(_ uint64, rng *rand.Rand) []byte {
	guess := make([]byte, sha256.Size)
	rng.Read(guess)
	return guess
}

// GuessProb implements Function. Guessing a 256-bit digest never succeeds
// in practice.
func (p *Password) GuessProb() float64 { return 0 }

// Screener returns the screener that reports keys matching the target
// digest — the "results of interest" of the search.
func (p *Password) Screener() Screener {
	target := p.target
	return ScreenerFunc(func(x uint64, output []byte) (string, bool) {
		if !bytes.Equal(output, target) {
			return "", false
		}
		return fmt.Sprintf("password found: key=%d", x), true
	})
}

// splitmix is the SplitMix64 mixer; used to derive hidden parameters from
// seeds without correlating them with the evaluated function.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
