package workload

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
)

// DrugScreen models the IBM smallpox-research grid the paper cites: scoring
// hundreds of thousands of candidate molecules against a protein target and
// reporting the strong binders. The real computation is molecular docking;
// here the docking score is a deterministic synthetic function of the
// molecule id with a comparable shape — an expensive scalar score where only
// the tail of the distribution is interesting.
//
// f(x) is a 64-bit fixed-point score computed from several rounds of hashing
// (standing in for the docking search's iterations); the screener reports
// molecules whose score exceeds a threshold chosen so roughly 1 in 2^14
// candidates qualify. The output space is 64 bits, so q ≈ 0.
type DrugScreen struct {
	seed uint64
}

var _ Function = (*DrugScreen)(nil)

// scoreRounds controls the synthetic docking cost. Several hash rounds make
// Eval measurably more expensive than screening, as §2.1 assumes.
const scoreRounds = 4

// drugScreenThreshold selects the top ~2^-14 slice of the uniform score
// distribution.
const drugScreenThreshold = ^uint64(0) - (^uint64(0) >> 14)

// NewDrugScreen creates a molecule-screening workload. The seed selects the
// synthetic protein target.
func NewDrugScreen(seed uint64) *DrugScreen {
	return &DrugScreen{seed: seed}
}

// Name implements Function.
func (d *DrugScreen) Name() string { return "drugscreen" }

// Eval implements Function: the synthetic docking score of molecule x.
func (d *DrugScreen) Eval(x uint64) []byte {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], d.seed)
	binary.BigEndian.PutUint64(buf[8:], x)
	state := sha256.Sum256(buf[:])
	for round := 1; round < scoreRounds; round++ {
		state = sha256.Sum256(state[:])
	}
	out := make([]byte, 8)
	copy(out, state[:8])
	return out
}

// GuessOutput implements Function: a uniform random 64-bit score.
func (d *DrugScreen) GuessOutput(_ uint64, rng *rand.Rand) []byte {
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, rng.Uint64())
	return out
}

// GuessProb implements Function: 2^-64 is negligible.
func (d *DrugScreen) GuessProb() float64 { return 0 }

// Screener reports molecules whose score clears the binding threshold.
func (d *DrugScreen) Screener() Screener {
	return ScreenerFunc(func(x uint64, output []byte) (string, bool) {
		if len(output) != 8 {
			return "", false
		}
		score := binary.BigEndian.Uint64(output)
		if score < drugScreenThreshold {
			return "", false
		}
		return fmt.Sprintf("molecule %d binds: score=%d", x, score), true
	})
}
