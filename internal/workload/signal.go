package workload

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
)

// Signal models SETI@home-style processing: each input x names a chunk of
// radio telescope samples, f(x) runs a spectral analysis (an FFT power
// spectrum followed by a peak search), and the screener reports chunks whose
// peak-to-mean power ratio suggests a narrowband transmission.
//
// Real tapes are replaced by deterministic synthetic chunks: Gaussian-ish
// noise derived from (seed, x), with roughly 1 chunk in 256 carrying an
// injected sinusoid. This keeps the code path identical (generate → window →
// FFT → peak statistics) while making every evaluation reproducible.
//
// The output encodes the peak bin and the quantized peak-to-mean ratio
// (10 bytes), so q ≈ 0.
type Signal struct {
	seed     uint64
	chunkLen int
}

var _ Function = (*Signal)(nil)

// signalSNRThreshold is the peak-to-mean power ratio (scaled by 1000) above
// which a chunk is reported. Pure-noise chunks of length 64 stay well below
// it; injected tones exceed it by an order of magnitude.
const signalSNRThreshold = 12_000

// NewSignal creates a signal-search workload over chunks of chunkLen
// samples. chunkLen is rounded up to a power of two (minimum 16).
func NewSignal(seed uint64, chunkLen int) *Signal {
	n := 16
	for n < chunkLen {
		n *= 2
	}
	return &Signal{seed: seed, chunkLen: n}
}

// Name implements Function.
func (s *Signal) Name() string { return "signal" }

// ChunkLen reports the per-chunk sample count.
func (s *Signal) ChunkLen() int { return s.chunkLen }

// Eval implements Function: spectral peak analysis of chunk x. The output is
// bin (2 bytes BE) || ratio×1000 (8 bytes BE).
func (s *Signal) Eval(x uint64) []byte {
	samples := s.generate(x)
	spectrum := powerSpectrum(samples)

	// Peak over the positive-frequency bins, excluding DC.
	half := len(spectrum) / 2
	peakBin, peakPower, total := 1, spectrum[1], 0.0
	for bin := 1; bin < half; bin++ {
		total += spectrum[bin]
		if spectrum[bin] > peakPower {
			peakBin, peakPower = bin, spectrum[bin]
		}
	}
	mean := total / float64(half-1)
	ratio := 0.0
	if mean > 0 {
		ratio = peakPower / mean
	}

	out := make([]byte, 10)
	binary.BigEndian.PutUint16(out[:2], uint16(peakBin))
	binary.BigEndian.PutUint64(out[2:], uint64(math.Round(ratio*1000)))
	return out
}

// GuessOutput implements Function: a random bin plus a ratio drawn near the
// noise floor, the cheapest plausible fabrication.
func (s *Signal) GuessOutput(_ uint64, rng *rand.Rand) []byte {
	out := make([]byte, 10)
	binary.BigEndian.PutUint16(out[:2], uint16(1+rng.Intn(s.chunkLen/2-1)))
	binary.BigEndian.PutUint64(out[2:], uint64(500+rng.Intn(5000)))
	return out
}

// GuessProb implements Function: matching bin and quantized ratio by chance
// is negligible.
func (s *Signal) GuessProb() float64 { return 0 }

// Screener reports chunks whose peak-to-mean ratio clears the threshold.
func (s *Signal) Screener() Screener {
	return ScreenerFunc(func(x uint64, output []byte) (string, bool) {
		if len(output) != 10 {
			return "", false
		}
		ratio := binary.BigEndian.Uint64(output[2:])
		if ratio < signalSNRThreshold {
			return "", false
		}
		bin := binary.BigEndian.Uint16(output[:2])
		return fmt.Sprintf("candidate signal in chunk %d: bin=%d ratio=%d/1000", x, bin, ratio), true
	})
}

// HasTone reports whether chunk x carries an injected sinusoid; tests use it
// as ground truth for the screener.
func (s *Signal) HasTone(x uint64) bool {
	return splitmix(s.seed^splitmix(x))%256 == 0
}

// generate synthesizes chunk x: uniform noise in [-1, 1), plus an injected
// tone in ~1/256 of chunks.
func (s *Signal) generate(x uint64) []float64 {
	samples := make([]float64, s.chunkLen)
	state := splitmix(s.seed ^ splitmix(x))
	for i := range samples {
		state = splitmix(state)
		samples[i] = float64(int64(state>>11))/(1<<52) - 1.0
	}
	if s.HasTone(x) {
		bin := 1 + int(splitmix(state)%uint64(s.chunkLen/2-1))
		freq := 2 * math.Pi * float64(bin) / float64(s.chunkLen)
		for i := range samples {
			samples[i] += 4 * math.Sin(freq*float64(i))
		}
	}
	return samples
}

// powerSpectrum computes |FFT(samples)|^2 via an iterative radix-2
// Cooley-Tukey transform. len(samples) must be a power of two.
func powerSpectrum(samples []float64) []float64 {
	n := len(samples)
	re := make([]float64, n)
	im := make([]float64, n)
	// Bit-reversal permutation.
	for i, rev := 0, 0; i < n; i++ {
		if i < rev {
			samples[i], samples[rev] = samples[rev], samples[i]
		}
		mask := n >> 1
		for ; rev&mask != 0; mask >>= 1 {
			rev &^= mask
		}
		rev |= mask
	}
	copy(re, samples)

	for size := 2; size <= n; size *= 2 {
		half := size / 2
		step := -2 * math.Pi / float64(size)
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				angle := step * float64(k)
				wr, wi := math.Cos(angle), math.Sin(angle)
				i, j := start+k, start+k+half
				tr := wr*re[j] - wi*im[j]
				ti := wr*im[j] + wi*re[j]
				re[j], im[j] = re[i]-tr, im[i]-ti
				re[i], im[i] = re[i]+tr, im[i]+ti
			}
		}
	}

	power := make([]float64, n)
	for i := range power {
		power[i] = re[i]*re[i] + im[i]*im[i]
	}
	return power
}
