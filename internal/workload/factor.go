package workload

import (
	"encoding/binary"

	"math/rand"
)

// Factor models the paper's Section 3.1 remark that "factoring large numbers
// is an expensive computation, but verifying the factoring results is
// trivial": it is the workload whose supervisor-side check does not require
// recomputing f.
//
// Input x names a semiprime N(x) = p·q with 16-bit prime factors derived
// deterministically from (seed, x). Eval factors N(x) by trial division
// (~2^15 divisions); VerifyOutput merely checks p·q = N(x) and the primality
// of two 16-bit numbers (a few dozen operations). The output is the pair
// (p, q), so q_guess ≈ 0.
type Factor struct {
	seed uint64
}

var (
	_ Function       = (*Factor)(nil)
	_ OutputVerifier = (*Factor)(nil)
)

// NewFactor creates a semiprime-factoring workload.
func NewFactor(seed uint64) *Factor {
	return &Factor{seed: seed}
}

// Name implements Function.
func (f *Factor) Name() string { return "factor" }

// Modulus returns the semiprime N(x) the participant must factor.
func (f *Factor) Modulus(x uint64) uint64 {
	p, q := f.factors(x)
	return p * q
}

// factors derives the two hidden 16-bit primes for input x.
func (f *Factor) factors(x uint64) (uint64, uint64) {
	h := splitmix(f.seed ^ splitmix(x))
	p := nextPrimeAtLeast(1<<15 | (h & 0x7fff))
	q := nextPrimeAtLeast(1<<15 | ((h >> 20) & 0x7fff))
	return p, q
}

// Eval implements Function: factor N(x) by trial division and return the
// factor pair min||max as two 4-byte big-endian words.
func (f *Factor) Eval(x uint64) []byte {
	n := f.Modulus(x)
	var p uint64
	for d := uint64(3); d*d <= n; d += 2 {
		if n%d == 0 {
			p = d
			break
		}
	}
	if p == 0 {
		// Unreachable: n is a product of two odd 16-bit primes.
		p = n
	}
	return encodeFactorPair(p, n/p)
}

// GuessOutput implements Function: two random odd 16-bit values.
func (f *Factor) GuessOutput(_ uint64, rng *rand.Rand) []byte {
	a := uint64(1<<15 | rng.Intn(1<<15) | 1)
	b := uint64(1<<15 | rng.Intn(1<<15) | 1)
	if a > b {
		a, b = b, a
	}
	return encodeFactorPair(a, b)
}

// GuessProb implements Function: hitting both hidden primes by chance is
// negligible.
func (f *Factor) GuessProb() float64 { return 0 }

// VerifyOutput implements OutputVerifier: the cheap check the supervisor
// runs instead of refactoring N(x).
func (f *Factor) VerifyOutput(x uint64, output []byte) bool {
	if len(output) != 8 {
		return false
	}
	p := uint64(binary.BigEndian.Uint32(output[:4]))
	q := uint64(binary.BigEndian.Uint32(output[4:]))
	if p < 2 || q < 2 || p > q {
		return false
	}
	return p*q == f.Modulus(x) && isPrimeUint64(p) && isPrimeUint64(q)
}

// Screener reports nothing: the factorizations themselves are the product of
// the computation, retrieved through CBS proofs or bulk upload. A screener
// that always declines models the paper's "very small number of results of
// interest" in the extreme.
func (f *Factor) Screener() Screener {
	return ScreenerFunc(func(uint64, []byte) (string, bool) { return "", false })
}

func encodeFactorPair(p, q uint64) []byte {
	out := make([]byte, 8)
	binary.BigEndian.PutUint32(out[:4], uint32(p))
	binary.BigEndian.PutUint32(out[4:], uint32(q))
	return out
}

// nextPrimeAtLeast returns the smallest prime >= n (n is made odd first).
func nextPrimeAtLeast(n uint64) uint64 {
	if n < 3 {
		return 3
	}
	if n%2 == 0 {
		n++
	}
	for !isPrimeUint64(n) {
		n += 2
	}
	return n
}
