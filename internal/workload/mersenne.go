package workload

import (
	"fmt"
	"math/big"
	"math/rand"
)

// Mersenne models the GIMPS project cited in the paper's introduction: input
// x names a candidate exponent and f(x) decides whether the Mersenne number
// M_p = 2^p - 1 is prime, using a trial-division pre-filter on p followed by
// the Lucas-Lehmer test.
//
// The output is a single byte in {0, 1}, which makes this the paper's
// q = 0.5 case (Fig. 2's upper curve): a cheater guessing a binary result is
// right half the time. GuessOutput draws uniformly from {0, 1}, matching the
// paper's model of an unbiased guess.
type Mersenne struct {
	seed uint64
	// exponentSpan bounds the exponent so evaluation cost stays within a
	// simulation-friendly envelope.
	exponentSpan uint64
}

var _ Function = (*Mersenne)(nil)

// NewMersenne creates a Mersenne-prime testing workload.
func NewMersenne(seed uint64) *Mersenne {
	return &Mersenne{seed: seed, exponentSpan: 256}
}

// Name implements Function.
func (m *Mersenne) Name() string { return "mersenne" }

// Exponent maps input x to the odd exponent p it tests.
func (m *Mersenne) Exponent(x uint64) uint64 {
	// Mix the seed in so different runs scan different exponent windows.
	base := 3 + 2*(m.seed%1000)
	return base + 2*(x%m.exponentSpan)
}

// Eval implements Function: 1 if M_p is prime, else 0.
func (m *Mersenne) Eval(x uint64) []byte {
	p := m.Exponent(x)
	if !isPrimeUint64(p) {
		// M_p can only be prime when p is prime.
		return []byte{0}
	}
	if lucasLehmer(p) {
		return []byte{1}
	}
	return []byte{0}
}

// GuessOutput implements Function: an unbiased coin, the paper's q = 0.5
// guesser. (A sharper cheater could exploit the skew toward 0; the paper's
// analysis parameterizes exactly this through q.)
func (m *Mersenne) GuessOutput(_ uint64, rng *rand.Rand) []byte {
	return []byte{byte(rng.Intn(2))}
}

// GuessProb implements Function.
func (m *Mersenne) GuessProb() float64 { return 0.5 }

// Screener reports discovered Mersenne primes.
func (m *Mersenne) Screener() Screener {
	return ScreenerFunc(func(x uint64, output []byte) (string, bool) {
		if len(output) != 1 || output[0] != 1 {
			return "", false
		}
		return fmt.Sprintf("mersenne prime: 2^%d-1", m.Exponent(x)), true
	})
}

// lucasLehmer reports whether M_p = 2^p - 1 is prime for an odd prime p.
// s_0 = 4; s_i = s_{i-1}^2 - 2 mod M_p; M_p is prime iff s_{p-2} = 0.
func lucasLehmer(p uint64) bool {
	if p == 2 {
		return true
	}
	mp := new(big.Int).Lsh(big.NewInt(1), uint(p))
	mp.Sub(mp, big.NewInt(1))
	s := big.NewInt(4)
	two := big.NewInt(2)
	for i := uint64(0); i < p-2; i++ {
		s.Mul(s, s)
		s.Sub(s, two)
		s.Mod(s, mp)
	}
	return s.Sign() == 0
}

// isPrimeUint64 is deterministic trial division; exponents are small so this
// is cheap relative to Lucas-Lehmer.
func isPrimeUint64(n uint64) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	for d := uint64(3); d*d <= n; d += 2 {
		if n%d == 0 {
			return false
		}
	}
	return true
}
