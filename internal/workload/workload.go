// Package workload provides the computations f evaluated by grid
// participants, together with the screeners S of Section 2.1 of
// "Uncheatable Grid Computing" (Du et al., ICDCS 2004) and the guess model
// f̌ of the semi-honest cheater (Section 2.2).
//
// The CBS scheme treats f as a black box; what matters for the experiments
// are (a) its evaluation cost, (b) how expensive verification of a single
// output is relative to recomputation, and (c) the probability q that a
// cheater guesses f(x) correctly without computing it (Theorem 3). Each
// implementation documents where it sits on those axes.
//
// The concrete workloads mirror the applications the paper's introduction
// motivates: brute-force keyspace search (its running example), drug-candidate
// screening (IBM smallpox grid), radio-signal analysis (SETI@home), Mersenne
// prime testing (GIMPS), and integer factoring (the "verification is trivial"
// example of Section 3.1).
package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
)

// Errors reported by this package.
var (
	// ErrUnknownFunction is returned by the registry for unregistered names.
	ErrUnknownFunction = errors.New("workload: unknown function")
)

// Function is the computation f assigned to participants, defined over a
// uint64 input domain. Implementations must be deterministic and safe for
// concurrent use.
type Function interface {
	// Name identifies the workload (registry key, report label).
	Name() string
	// Eval computes f(x).
	Eval(x uint64) []byte
	// GuessOutput fabricates a stand-in for f(x) at negligible cost — the
	// cheater's f̌ of Section 2.2. It must draw from the same output format
	// as Eval so that a guess is indistinguishable except by value.
	GuessOutput(x uint64, rng *rand.Rand) []byte
	// GuessProb reports q = Pr[GuessOutput(x) == Eval(x)], the guessing
	// probability of Theorem 3.
	GuessProb() float64
	// Screener returns the workload's canonical screener S (Section 2.1),
	// selecting the outputs reported to the supervisor.
	Screener() Screener
}

// OutputVerifier is implemented by functions whose outputs can be checked
// far more cheaply than recomputed — the paper's factoring remark in
// Section 3.1, Step 4. VerifyOutput must accept exactly the outputs Eval
// produces.
type OutputVerifier interface {
	VerifyOutput(x uint64, output []byte) bool
}

// Screener is the program S of Section 2.1: it inspects a pair (x, f(x))
// and reports the string s for "valuable" outputs. Its runtime must be
// negligible next to Eval.
type Screener interface {
	// Screen returns the report string and whether the output is of
	// interest to the supervisor.
	Screen(x uint64, output []byte) (string, bool)
}

// ScreenerFunc adapts a function to the Screener interface.
type ScreenerFunc func(x uint64, output []byte) (string, bool)

// Screen implements Screener.
func (f ScreenerFunc) Screen(x uint64, output []byte) (string, bool) { return f(x, output) }

// Counter wraps a Function and counts evaluations. The experiments use it to
// measure participant effort (honest work, cheat savings, §3.3 rebuild cost,
// §4.2 attack cost). Safe for concurrent use.
type Counter struct {
	inner Function
	evals atomic.Int64
}

var _ Function = (*Counter)(nil)

// Count wraps f with an evaluation counter.
func Count(f Function) *Counter {
	return &Counter{inner: f}
}

// Name implements Function.
func (c *Counter) Name() string { return c.inner.Name() }

// Eval implements Function, incrementing the counter.
//
//gridlint:credit the Counter wrapper exists to count evaluations
func (c *Counter) Eval(x uint64) []byte {
	c.evals.Add(1)
	return c.inner.Eval(x)
}

// GuessOutput implements Function. Guesses are free: no count.
func (c *Counter) GuessOutput(x uint64, rng *rand.Rand) []byte {
	return c.inner.GuessOutput(x, rng)
}

// GuessProb implements Function.
func (c *Counter) GuessProb() float64 { return c.inner.GuessProb() }

// Screener implements Function; screening is not counted as evaluation.
func (c *Counter) Screener() Screener { return c.inner.Screener() }

// Evals reports the number of Eval calls since construction or Reset.
func (c *Counter) Evals() int64 { return c.evals.Load() }

// Reset zeroes the counter.
//
//gridlint:credit the Counter wrapper owns its own field
func (c *Counter) Reset() { c.evals.Store(0) }

// Unwrap returns the underlying Function.
func (c *Counter) Unwrap() Function { return c.inner }

// AsOutputVerifier reports whether f (unwrapping counters) supports cheap
// output verification, returning the verifier when it does.
func AsOutputVerifier(f Function) (OutputVerifier, bool) {
	for {
		if v, ok := f.(OutputVerifier); ok {
			return v, true
		}
		c, ok := f.(*Counter)
		if !ok {
			return nil, false
		}
		f = c.Unwrap()
	}
}

// Builder constructs a workload from a seed, letting command-line tools and
// experiments instantiate workloads by name.
type Builder func(seed uint64) Function

// registry maps workload names to builders. Populated at package
// initialization with the standard workloads; immutable afterwards.
var registry = map[string]Builder{
	"password":   func(seed uint64) Function { return NewPassword(seed, 20) },
	"drugscreen": func(seed uint64) Function { return NewDrugScreen(seed) },
	"signal":     func(seed uint64) Function { return NewSignal(seed, 64) },
	"mersenne":   func(seed uint64) Function { return NewMersenne(seed) },
	"factor":     func(seed uint64) Function { return NewFactor(seed) },
	"synthetic":  func(seed uint64) Function { return NewSynthetic(seed, 4, 64) },
}

// New instantiates a registered workload by name.
func New(name string, seed uint64) (Function, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q (known: %v)", ErrUnknownFunction, name, Names())
	}
	return b(seed), nil
}

// Names lists the registered workload names in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
