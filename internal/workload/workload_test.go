package workload

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func TestRegistryKnowsAllWorkloads(t *testing.T) {
	want := []string{"drugscreen", "factor", "mersenne", "password", "signal", "synthetic"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for _, name := range want {
		f, err := New(name, 1)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if f.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, f.Name())
		}
	}
}

func TestRegistryUnknownName(t *testing.T) {
	if _, err := New("nope", 1); !errors.Is(err, ErrUnknownFunction) {
		t.Fatalf("New(nope): err = %v, want ErrUnknownFunction", err)
	}
}

func TestEveryWorkloadIsDeterministic(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			a, err := New(name, 99)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			b, err := New(name, 99)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			for x := uint64(0); x < 8; x++ {
				if !bytes.Equal(a.Eval(x), b.Eval(x)) {
					t.Fatalf("Eval(%d) differs across instances with equal seeds", x)
				}
				if !bytes.Equal(a.Eval(x), a.Eval(x)) {
					t.Fatalf("Eval(%d) differs across calls", x)
				}
			}
		})
	}
}

func TestSeedChangesOutputs(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			a, err := New(name, 1)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			b, err := New(name, 2)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			differs := false
			for x := uint64(0); x < 32 && !differs; x++ {
				differs = !bytes.Equal(a.Eval(x), b.Eval(x))
			}
			if !differs {
				t.Fatal("outputs identical across different seeds")
			}
		})
	}
}

func TestGuessOutputMatchesEvalFormat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			f, err := New(name, 5)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			for x := uint64(0); x < 4; x++ {
				real := f.Eval(x)
				guess := f.GuessOutput(x, rng)
				if len(guess) != len(real) {
					t.Fatalf("guess length %d != eval length %d", len(guess), len(real))
				}
			}
		})
	}
}

func TestGuessProbBounds(t *testing.T) {
	for _, name := range Names() {
		f, err := New(name, 5)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		q := f.GuessProb()
		if q < 0 || q > 1 {
			t.Errorf("%s: GuessProb() = %v outside [0,1]", name, q)
		}
	}
}

func TestCounterCountsEvalsOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := Count(NewSynthetic(1, 1, 64))
	if got := c.Evals(); got != 0 {
		t.Fatalf("fresh counter Evals() = %d", got)
	}
	c.Eval(1)
	c.Eval(2)
	c.GuessOutput(3, rng) // guesses are free
	if got := c.Evals(); got != 2 {
		t.Fatalf("Evals() = %d, want 2", got)
	}
	c.Reset()
	if got := c.Evals(); got != 0 {
		t.Fatalf("after Reset, Evals() = %d", got)
	}
	if c.Name() != "synthetic" || c.GuessProb() != c.Unwrap().GuessProb() {
		t.Fatal("Counter does not delegate metadata")
	}
}

func TestCounterEvalMatchesInner(t *testing.T) {
	inner := NewSynthetic(3, 2, 64)
	c := Count(inner)
	if !bytes.Equal(c.Eval(42), inner.Eval(42)) {
		t.Fatal("Counter.Eval differs from inner Eval")
	}
}

func TestAsOutputVerifierUnwrapsCounters(t *testing.T) {
	factor := NewFactor(1)
	if _, ok := AsOutputVerifier(factor); !ok {
		t.Fatal("Factor should be an OutputVerifier")
	}
	if _, ok := AsOutputVerifier(Count(factor)); !ok {
		t.Fatal("Counter-wrapped Factor should unwrap to an OutputVerifier")
	}
	if _, ok := AsOutputVerifier(Count(Count(factor))); !ok {
		t.Fatal("doubly wrapped Factor should unwrap")
	}
	if _, ok := AsOutputVerifier(NewSynthetic(1, 1, 8)); ok {
		t.Fatal("Synthetic must not claim cheap verification")
	}
}

func TestPasswordScreenerFindsExactlyTheSecret(t *testing.T) {
	p := NewPassword(123, 12) // 4096 keys: exhaustive scan is fast
	screener := p.Screener()
	hits := 0
	var hitKey uint64
	for x := uint64(0); x < 1<<12; x++ {
		if _, ok := screener.Screen(x, p.Eval(x)); ok {
			hits++
			hitKey = x
		}
	}
	if hits != 1 {
		t.Fatalf("screener reported %d hits, want exactly 1", hits)
	}
	if !bytes.Equal(p.Eval(hitKey), p.Target()) {
		t.Fatal("reported key does not hash to the target")
	}
}

func TestPasswordKeyBitsClamped(t *testing.T) {
	if got := NewPassword(1, 0).KeyBits(); got != 20 {
		t.Errorf("KeyBits(0 clamped) = %d, want 20", got)
	}
	if got := NewPassword(1, 64).KeyBits(); got != 20 {
		t.Errorf("KeyBits(64 clamped) = %d, want 20", got)
	}
	if got := NewPassword(1, 16).KeyBits(); got != 16 {
		t.Errorf("KeyBits(16) = %d, want 16", got)
	}
}

func TestDrugScreenThresholdIsSelective(t *testing.T) {
	d := NewDrugScreen(77)
	screener := d.Screener()
	hits := 0
	const n = 1 << 13
	for x := uint64(0); x < n; x++ {
		if _, ok := screener.Screen(x, d.Eval(x)); ok {
			hits++
		}
	}
	// Expected rate 2^-14 → about 0.5 hits over 2^13; allow generous slack.
	if hits > 8 {
		t.Fatalf("screener reported %d of %d molecules; threshold is not selective", hits, n)
	}
	if _, ok := screener.Screen(1, []byte{1, 2, 3}); ok {
		t.Fatal("screener accepted a malformed output")
	}
}

func TestSignalScreenerMatchesGroundTruth(t *testing.T) {
	s := NewSignal(5, 64)
	screener := s.Screener()
	var tones, reported, agree int
	const n = 2048
	for x := uint64(0); x < n; x++ {
		_, ok := screener.Screen(x, s.Eval(x))
		truth := s.HasTone(x)
		if truth {
			tones++
		}
		if ok {
			reported++
		}
		if ok == truth {
			agree++
		}
	}
	if tones == 0 {
		t.Fatal("no injected tones in 2048 chunks; generator broken")
	}
	if reported == 0 {
		t.Fatal("screener reported nothing despite injected tones")
	}
	if agree < n-2 { // the synthetic SNR margin is wide; allow edge noise
		t.Fatalf("screener agrees with ground truth on %d/%d chunks", agree, n)
	}
}

func TestSignalChunkLenRounding(t *testing.T) {
	tests := []struct {
		give int
		want int
	}{
		{give: 0, want: 16},
		{give: 16, want: 16},
		{give: 17, want: 32},
		{give: 64, want: 64},
		{give: 100, want: 128},
	}
	for _, tt := range tests {
		if got := NewSignal(1, tt.give).ChunkLen(); got != tt.want {
			t.Errorf("ChunkLen(%d) = %d, want %d", tt.give, got, tt.want)
		}
	}
}

func TestMersenneKnownPrimes(t *testing.T) {
	// Classical results: M_p prime for p in {3,5,7,13,17,19,31,61,89,107,127}
	// and composite for the other primes below 128.
	primesWithMersennePrime := map[uint64]bool{
		3: true, 5: true, 7: true, 13: true, 17: true, 19: true,
		31: true, 61: true, 89: true, 107: true, 127: true,
	}
	for p := uint64(3); p <= 127; p += 2 {
		if !isPrimeUint64(p) {
			continue
		}
		want := primesWithMersennePrime[p]
		if got := lucasLehmer(p); got != want {
			t.Errorf("lucasLehmer(%d) = %v, want %v", p, got, want)
		}
	}
}

func TestMersenneCompositeExponentIsZero(t *testing.T) {
	m := NewMersenne(0) // base exponent 3: x=3 → exponent 9, composite
	var x uint64
	found := false
	for x = 0; x < 50; x++ {
		if !isPrimeUint64(m.Exponent(x)) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no composite exponent in range; test setup broken")
	}
	if out := m.Eval(x); len(out) != 1 || out[0] != 0 {
		t.Fatalf("Eval(composite exponent) = %v, want [0]", out)
	}
}

func TestMersenneGuessIsCoinFlip(t *testing.T) {
	m := NewMersenne(1)
	rng := rand.New(rand.NewSource(3))
	counts := map[byte]int{}
	for i := 0; i < 2000; i++ {
		g := m.GuessOutput(0, rng)
		if len(g) != 1 || g[0] > 1 {
			t.Fatalf("guess %v outside {0,1}", g)
		}
		counts[g[0]]++
	}
	if counts[0] < 800 || counts[1] < 800 {
		t.Fatalf("guess distribution skewed: %v", counts)
	}
	if m.GuessProb() != 0.5 {
		t.Fatalf("GuessProb() = %v, want 0.5", m.GuessProb())
	}
}

func TestFactorEvalVerifies(t *testing.T) {
	f := NewFactor(11)
	for x := uint64(0); x < 20; x++ {
		out := f.Eval(x)
		if !f.VerifyOutput(x, out) {
			t.Fatalf("VerifyOutput rejected Eval's own output for x=%d", x)
		}
	}
}

func TestFactorVerifyRejectsWrongFactors(t *testing.T) {
	f := NewFactor(11)
	out := f.Eval(3)

	tests := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{name: "flip byte", mutate: func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[3] ^= 0x01
			return c
		}},
		{name: "swap order", mutate: func(b []byte) []byte {
			c := make([]byte, 8)
			copy(c[:4], b[4:])
			copy(c[4:], b[:4])
			return c
		}},
		{name: "short", mutate: func(b []byte) []byte { return b[:7] }},
		{name: "ones", mutate: func([]byte) []byte {
			return []byte{0, 0, 0, 1, 0, 0, 0, 1}
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			mutated := tt.mutate(out)
			if bytes.Equal(mutated, out) {
				t.Skip("mutation produced identical output")
			}
			if f.VerifyOutput(3, mutated) {
				t.Fatal("VerifyOutput accepted a wrong factorization")
			}
		})
	}
}

func TestFactorVerifyRejectsCompositeFactors(t *testing.T) {
	// 1 * N passes the product check but 1 is not prime; similarly a
	// composite pair whose product happens to be right must fail. Build a
	// fake pair from the modulus itself.
	f := NewFactor(2)
	n := f.Modulus(0)
	fake := encodeFactorPair(1, n)
	if f.VerifyOutput(0, fake) {
		t.Fatal("VerifyOutput accepted 1 × N")
	}
}

func TestSyntheticOutputBits(t *testing.T) {
	tests := []struct {
		bits     uint
		wantLen  int
		wantProb float64
	}{
		{bits: 1, wantLen: 1, wantProb: 0.5},
		{bits: 8, wantLen: 1, wantProb: 1.0 / 256},
		{bits: 12, wantLen: 2, wantProb: 1.0 / 4096},
		{bits: 64, wantLen: 8, wantProb: 5.421010862427522e-20},
	}
	for _, tt := range tests {
		s := NewSynthetic(1, 1, tt.bits)
		out := s.Eval(7)
		if len(out) != tt.wantLen {
			t.Errorf("bits=%d: output length %d, want %d", tt.bits, len(out), tt.wantLen)
		}
		if got := s.GuessProb(); got != tt.wantProb {
			t.Errorf("bits=%d: GuessProb() = %v, want %v", tt.bits, got, tt.wantProb)
		}
	}
}

func TestSyntheticOneBitOutputsAreMasked(t *testing.T) {
	s := NewSynthetic(9, 1, 1)
	rng := rand.New(rand.NewSource(4))
	for x := uint64(0); x < 64; x++ {
		if out := s.Eval(x); out[0]&0x7f != 0 {
			t.Fatalf("Eval(%d) = %08b has bits below the top bit", x, out[0])
		}
		if g := s.GuessOutput(x, rng); g[0]&0x7f != 0 {
			t.Fatalf("guess has bits below the top bit: %08b", g[0])
		}
	}
}

func TestSyntheticOneBitGuessMatchesRateQ(t *testing.T) {
	// Empirically confirm Pr[guess == eval] ≈ q = 0.5 for 1-bit outputs —
	// the exact premise of the paper's Fig. 2 upper curve.
	s := NewSynthetic(21, 1, 1)
	rng := rand.New(rand.NewSource(8))
	matches := 0
	const trials = 4000
	for x := uint64(0); x < trials; x++ {
		if bytes.Equal(s.Eval(x), s.GuessOutput(x, rng)) {
			matches++
		}
	}
	rate := float64(matches) / trials
	if rate < 0.45 || rate > 0.55 {
		t.Fatalf("guess match rate = %v, want ≈ 0.5", rate)
	}
}

func TestSyntheticClamping(t *testing.T) {
	s := NewSynthetic(1, 0, 0)
	if s.CostIters() != 1 {
		t.Errorf("CostIters clamped = %d, want 1", s.CostIters())
	}
	if s.OutputBits() != 1 {
		t.Errorf("OutputBits clamped = %d, want 1", s.OutputBits())
	}
	if got := NewSynthetic(1, 1, 999).OutputBits(); got != 256 {
		t.Errorf("OutputBits(999) = %d, want 256", got)
	}
}
