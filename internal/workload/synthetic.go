package workload

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"math/rand"
)

// Synthetic is the experiment workload: a hash-based function with tunable
// evaluation cost and output width. It lets the experiments dial in the
// paper's parameters directly:
//
//   - cost: Eval performs CostIters chained SHA-256 compressions, so the
//     cost ratio C_f/C_hash of Eq. 5 is simply CostIters.
//   - q: outputs are OutputBits uniform bits, so a uniform guesser succeeds
//     with probability exactly q = 2^-OutputBits. OutputBits=1 reproduces
//     the paper's q = 0.5 curve in Fig. 2.
type Synthetic struct {
	seed       uint64
	costIters  int
	outputBits uint
}

var _ Function = (*Synthetic)(nil)

// NewSynthetic creates a synthetic workload. costIters < 1 is clamped to 1;
// outputBits is clamped to [1, 256].
func NewSynthetic(seed uint64, costIters int, outputBits uint) *Synthetic {
	if costIters < 1 {
		costIters = 1
	}
	if outputBits < 1 {
		outputBits = 1
	}
	if outputBits > 256 {
		outputBits = 256
	}
	return &Synthetic{seed: seed, costIters: costIters, outputBits: outputBits}
}

// Name implements Function.
func (s *Synthetic) Name() string { return "synthetic" }

// CostIters reports the number of hash compressions per evaluation.
func (s *Synthetic) CostIters() int { return s.costIters }

// OutputBits reports the output width in bits.
func (s *Synthetic) OutputBits() uint { return s.outputBits }

// Eval implements Function: CostIters chained hashes truncated to
// OutputBits.
func (s *Synthetic) Eval(x uint64) []byte {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], s.seed)
	binary.BigEndian.PutUint64(buf[8:], x)
	state := sha256.Sum256(buf[:])
	for i := 1; i < s.costIters; i++ {
		state = sha256.Sum256(state[:])
	}
	return truncateBits(state[:], s.outputBits)
}

// GuessOutput implements Function: uniform random bits in the same format.
func (s *Synthetic) GuessOutput(_ uint64, rng *rand.Rand) []byte {
	raw := make([]byte, (s.outputBits+7)/8)
	rng.Read(raw)
	return truncateBits(raw, s.outputBits)
}

// GuessProb implements Function: exactly 2^-OutputBits.
func (s *Synthetic) GuessProb() float64 {
	return math.Pow(2, -float64(s.outputBits))
}

// Screener reports a sparse pseudo-random subset (~1/1024) of outputs so
// that end-to-end runs exercise the reporting path.
func (s *Synthetic) Screener() Screener {
	return ScreenerFunc(func(x uint64, output []byte) (string, bool) {
		if splitmix(s.seed^x)%1024 != 0 {
			return "", false
		}
		return "synthetic hit", true
	})
}

// truncateBits keeps the first bits of raw (big-endian bit order), zeroing
// the remainder of the final byte, in a ceil(bits/8)-byte slice.
func truncateBits(raw []byte, bits uint) []byte {
	byteLen := int((bits + 7) / 8)
	out := make([]byte, byteLen)
	copy(out, raw[:min(len(raw), byteLen)])
	if rem := bits % 8; rem != 0 {
		out[byteLen-1] &= byte(0xff << (8 - rem))
	}
	return out
}
