package lint

// errclassify enforces the PR 3 error taxonomy at the transport boundary.
// That PR split connection failures into three fates — quarantine the
// connection and resume the exchange, retry in place, or fail the attempt —
// and encoded the split in grid's quarantineWrap classifier. The invariant:
// an exported function that performs transport I/O directly (calls Send or
// Recv on a connection-shaped value) must classify the resulting errors
// before they escape, either by routing them through a classifier such as
// quarantineWrap or by discriminating with errors.Is/errors.As against the
// transport sentinels. A raw `return err` from a transport call strips the
// caller of the quarantine/resume/fatal decision and resurrects the
// pre-PR 3 behaviour where every hiccup was fatal.
//
// The transport package itself is exempt: it produces the sentinels the
// taxonomy is built from.

import (
	"go/ast"
	"go/token"
	"strings"
)

// ErrClassify is the transport-error classification analyzer.
var ErrClassify = &Analyzer{
	Name: "errclassify",
	Doc:  "exported functions doing transport I/O must classify errors (quarantine/resume/fatal) before returning them",
	Run:  runErrClassify,
}

// defaultClassifiers names functions that count as classification sites.
// Overridable per run via Config["errclassify-classifiers"] (comma list).
var defaultClassifiers = []string{"quarantineWrap"}

func runErrClassify(pass *Pass) error {
	if strings.HasSuffix(pass.Path, "internal/transport") {
		return nil
	}
	classifiers := defaultClassifiers
	if s, ok := pass.Config["errclassify-classifiers"]; ok && s != "" {
		classifiers = strings.Split(s, ",")
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if !returnsError(fd) {
				continue
			}
			ioPos := transportIOCalls(pass, fd.Body)
			if len(ioPos) == 0 {
				continue
			}
			if classifiesErrors(fd.Body, classifiers) {
				continue
			}
			pass.Reportf(ioPos[0], "exported %s performs transport I/O but returns its errors unclassified; wrap them with quarantineWrap or discriminate with errors.Is/errors.As (quarantine vs resume vs fatal)", fd.Name.Name)
		}
	}
	return nil
}

// returnsError reports whether the function's results include an error.
func returnsError(fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, field := range fd.Type.Results.List {
		if id, ok := field.Type.(*ast.Ident); ok && id.Name == "error" {
			return true
		}
	}
	return false
}

// transportIOCalls returns the positions of direct Send/Recv calls on
// connection-shaped values (interfaces declaring both Send and Recv) inside
// body, in source order.
func transportIOCalls(pass *Pass, body *ast.BlockStmt) []token.Pos {
	var out []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Send" && sel.Sel.Name != "Recv" {
			return true
		}
		if connLikeType(pass.TypeOf(sel.X)) {
			out = append(out, call.Pos())
		}
		return true
	})
	return out
}

// classifiesErrors reports whether the body contains a classification
// site: a call to one of the named classifier functions, or a call to
// errors.Is / errors.As.
func classifiesErrors(body *ast.BlockStmt, classifiers []string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			for _, c := range classifiers {
				if fun.Name == c {
					found = true
				}
			}
		case *ast.SelectorExpr:
			if id, ok := fun.X.(*ast.Ident); ok && id.Name == "errors" &&
				(fun.Sel.Name == "Is" || fun.Sel.Name == "As") {
				found = true
			}
			for _, c := range classifiers {
				if fun.Sel.Name == c {
					found = true
				}
			}
		}
		return true
	})
	return found
}
