// Package good confines counter accumulation to annotated crediting
// functions; snapshots and plain assignments stay unflagged.
package good

import "sync/atomic"

type stats struct {
	sentBytes int64
	msgs      int
	evals     atomic.Int64
}

// settle credits bytes at flush time, once the frames are on the wire.
//
//gridlint:credit flush-time settle: bytes counted only after the write lands
func settle(st *stats, n int64) {
	st.sentBytes += n
	st.msgs++
	st.evals.Add(1)
}

// snapshot assembles a copy; plain assignment is not accumulation.
func snapshot(st *stats) stats {
	var out stats
	out.sentBytes = st.sentBytes
	out.msgs = st.msgs
	return out
}

// makeSettler returns a crediting callback; the directive on the literal
// marks it as a crediting site.
func makeSettler(st *stats) func(int64) {
	//gridlint:credit settle callback invoked by the flusher after each write
	return func(n int64) {
		st.sentBytes += n
	}
}

var _ = settle
var _ = snapshot
var _ = makeSettler
