// Package bad accumulates accounting fields from unannotated functions:
// enqueue-time byte crediting, ad-hoc message counting, and atomic eval
// bumps outside any crediting site.
package bad

import "sync/atomic"

type stats struct {
	sentBytes int64
	msgs      int
	evals     atomic.Int64
	label     string
}

func enqueue(st *stats, n int64) {
	st.sentBytes += n // want "accounting field sentBytes"
	st.msgs++         // want "accounting field msgs"
	st.evals.Add(1)   // want "accounting field evals"
	st.label = "ok"   // non-counter field: not flagged
}

func resetHard(st *stats) {
	st.evals.Store(0) // want "accounting field evals"
}

func closureLeak(st *stats) func(int64) {
	return func(n int64) {
		st.sentBytes += n // want "accounting field sentBytes"
	}
}

var _ = enqueue
var _ = resetHard
var _ = closureLeak
