package good

import "testing"

func FuzzDecodePing(f *testing.F) {
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = decodePing(data)
	})
}

func FuzzDecodeSettle(f *testing.F) {
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = decodeSettle(data)
	})
}
