// Package good satisfies wireexhaustive: every constant is dispatched
// (including via a boolean-switch comparison), the manifest is total, and
// every decoder has a fuzz target registered in CI.
package good

const (
	msgPing uint8 = iota + 1
	msgPong
	msgSettle
)

// wireDecoderFor maps each wire kind to its payload decoder; "" marks kinds
// whose payload is empty.
var wireDecoderFor = map[uint8]string{
	msgPing:   "decodePing",
	msgPong:   "",
	msgSettle: "decodeSettle",
}

func dispatch(kind uint8) bool {
	switch kind {
	case msgPing, msgPong:
		return true
	}
	return kind == msgSettle
}

func decodePing(b []byte) (byte, error) {
	if len(b) == 0 {
		return 0, nil
	}
	return b[0], nil
}

func decodeSettle(b []byte) (int, error) {
	return len(b), nil
}

var _ = dispatch
var _ = wireDecoderFor
var _ = decodePing
var _ = decodeSettle
