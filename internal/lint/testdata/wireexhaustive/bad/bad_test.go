package bad

import "testing"

// FuzzDecodeSettle exists, but the CI workflow handed to the analyzer does
// not register it, so decodeSettle is still flagged.
func FuzzDecodeSettle(f *testing.F) {
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = decodeSettle(data)
	})
}
