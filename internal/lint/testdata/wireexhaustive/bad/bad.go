// Package bad violates every wireexhaustive clause: an undispatched wire
// constant, no decoder manifest, a decoder with no fuzz target, and a
// fuzzed decoder missing from the CI workflow.
package bad

const (
	msgPing uint8 = iota + 1 // want "no wireDecoderFor manifest"
	msgPong                  // want "never matched"
)

func dispatch(kind uint8) bool {
	switch kind {
	case msgPing:
		return true
	}
	return false
}

func decodePing(b []byte) (byte, error) { // want "no FuzzDecodePing fuzz target"
	if len(b) == 0 {
		return 0, nil
	}
	return b[0], nil
}

func decodeSettle(b []byte) (int, error) { // want "not registered in the CI workflow"
	return len(b), nil
}

var _ = dispatch
var _ = decodePing
var _ = decodeSettle
