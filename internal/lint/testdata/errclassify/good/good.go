// Package good classifies transport errors before they escape: either by
// discriminating with errors.Is against the sentinels, or by routing the
// error through a classifier. Unexported helpers are exempt — the
// classification duty sits on the exported boundary.
package good

import (
	"errors"
	"io"
)

type conn interface {
	Send(v any) error
	Recv() (any, error)
}

// errQuarantined stands in for the grid package's ErrConnQuarantined.
var errQuarantined = errors.New("connection quarantined")

// quarantineWrap classifies a transport fault.
func quarantineWrap(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, io.EOF) {
		return errQuarantined
	}
	return err
}

func Pull(c conn) (any, error) {
	v, err := c.Recv()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, errQuarantined
		}
		return nil, err
	}
	return v, nil
}

func Push(c conn, v any) error {
	if err := c.Send(v); err != nil {
		return quarantineWrap(err)
	}
	return nil
}

// pull is unexported: raw errors are fine below the exported boundary.
func pull(c conn) error {
	_, err := c.Recv()
	return err
}

var _ = pull
