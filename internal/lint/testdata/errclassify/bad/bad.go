// Package bad returns raw transport errors from exported entry points,
// stripping callers of the quarantine/resume/fatal decision.
package bad

type conn interface {
	Send(v any) error
	Recv() (any, error)
}

func Pull(c conn) (any, error) {
	v, err := c.Recv() // want "unclassified"
	if err != nil {
		return nil, err
	}
	return v, nil
}

func Push(c conn, v any) error {
	return c.Send(v) // want "unclassified"
}
