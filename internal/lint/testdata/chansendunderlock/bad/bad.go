// Package bad blocks while holding a mutex in every way the analyzer
// recognizes: channel send, channel receive, blocking select, WaitGroup
// wait, transport I/O, and ranging over a channel.
package bad

import "sync"

type conn interface {
	Send(v any) error
	Recv() (any, error)
}

type hub struct {
	mu    sync.Mutex
	ch    chan int
	wg    sync.WaitGroup
	ready bool
}

func (h *hub) sendLocked() {
	h.mu.Lock()
	h.ch <- 1 // want "channel send while mutex h.mu is held"
	h.mu.Unlock()
}

func (h *hub) recvDeferred() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return <-h.ch // want "channel receive while mutex h.mu is held"
}

func (h *hub) waitLocked() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.wg.Wait() // want "WaitGroup.Wait while mutex h.mu is held"
}

func (h *hub) selectLocked() {
	h.mu.Lock()
	select { // want "blocking select while mutex h.mu is held"
	case v := <-h.ch:
		_ = v
	}
	h.mu.Unlock()
}

func (h *hub) drainLocked() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	total := 0
	for v := range h.ch { // want "range over channel while mutex h.mu is held"
		total += v
	}
	return total
}

func pump(c conn, mu *sync.Mutex) error {
	mu.Lock()
	defer mu.Unlock()
	_, err := c.Recv() // want "blocking transport Recv while mutex mu is held"
	return err
}
