// Package good shows the sanctioned shapes: copy state out under the lock
// and block after releasing it, condition-variable waits, non-blocking
// selects, goroutines with their own lock discipline, and an explicit
// ignore for a send the author can prove non-blocking.
package good

import "sync"

type conn interface {
	Send(v any) error
	Recv() (any, error)
}

type hub struct {
	mu      sync.Mutex
	cond    *sync.Cond
	ch      chan int
	pending int
	ready   bool
}

func (h *hub) sendUnlocked() {
	h.mu.Lock()
	v := h.pending
	h.mu.Unlock()
	h.ch <- v
}

func (h *hub) condWait() {
	h.mu.Lock()
	for !h.ready {
		h.cond.Wait()
	}
	h.mu.Unlock()
}

func (h *hub) tryHandoff() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	select {
	case h.ch <- h.pending:
		return true
	default:
		return false
	}
}

func (h *hub) spawn(c conn) {
	h.mu.Lock()
	h.pending++
	h.mu.Unlock()
	go func() {
		_, _ = c.Recv()
		h.ch <- 1
	}()
}

func (h *hub) relockThenBlock(c conn) error {
	h.mu.Lock()
	v := h.pending
	h.mu.Unlock()
	err := c.Send(v)
	h.mu.Lock()
	h.ready = err == nil
	h.mu.Unlock()
	return err
}

func (h *hub) provenNonBlocking() {
	h.mu.Lock()
	//gridlint:ignore chansendunderlock capacity-1 channel drained by the sole receiver before this point
	h.ch <- 1
	h.mu.Unlock()
}
