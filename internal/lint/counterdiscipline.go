package lint

// counterdiscipline protects the byte/frame/message accounting that the
// double-check scheme's billing depends on. PR 4 moved byte crediting from
// enqueue time to flush time precisely because scattered `x.sent += n`
// sites drifted out of agreement with what actually hit the wire. The rule:
// accounting fields may only be accumulated inside functions explicitly
// annotated as crediting sites with a
//
//	//gridlint:credit <reason>
//
// doc comment (for FuncDecls) or a directive on the line directly above a
// func literal. Everything else that touches a counter — a new feature
// incrementing sent bytes at enqueue time, a retry path double-crediting —
// is flagged.
//
// "Accumulation" means compound assignment (+=, -=, ...), ++/--, and
// atomic Add/Store calls on a matching field. Plain `=` assignments are
// allowed: building a stats snapshot or zeroing a struct is assembly, not
// crediting.

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// CounterDiscipline is the accounting-mutation analyzer.
var CounterDiscipline = &Analyzer{
	Name: "counterdiscipline",
	Doc:  "accounting counters (bytes, msgs, frames, evals, ...) may only be accumulated in //gridlint:credit functions",
	Run:  runCounterDiscipline,
}

// counterFieldRx matches accounting field names by substring.
var counterFieldRx = regexp.MustCompile(`(?i)(bytes|msgs|frames|overhead|evals)`)

// counterFieldExact lists short accounting names matched exactly.
var counterFieldExact = map[string]bool{
	"sent":     true,
	"recv":     true,
	"tasks":    true,
	"accepted": true,
	"rejected": true,
	"binds":    true,
	"credited": true,
}

func isCounterField(name string) bool {
	return counterFieldExact[name] || counterFieldRx.MatchString(name)
}

func runCounterDiscipline(pass *Pass) error {
	creditLines := directiveLines(pass.Fset, pass.Files, "credit")
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			cw := &creditWalker{pass: pass, creditLines: creditLines}
			cw.walk(fd.Body, hasDirective(fd.Doc, "credit"))
		}
	}
	return nil
}

// creditWalker tracks whether any enclosing function is an annotated
// crediting site while scanning for counter mutations.
type creditWalker struct {
	pass        *Pass
	creditLines map[string]map[int]bool
}

func (cw *creditWalker) walk(body *ast.BlockStmt, credited bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A credit directive on the line above (or line of) the literal
			// marks the closure itself as a crediting site; otherwise it
			// inherits the enclosing function's status — a closure written
			// inside a crediting function is part of that crediting site
			// (the batchWriter settle callbacks are exactly this shape).
			cw.walk(n.Body, credited || cw.litCredited(n))
			return false
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				if sel, name, ok := cw.counterSelector(lhs); ok && !credited {
					cw.report(sel.Pos(), name)
				}
			}
		case *ast.IncDecStmt:
			if sel, name, ok := cw.counterSelector(n.X); ok && !credited {
				cw.report(sel.Pos(), name)
			}
		case *ast.CallExpr:
			// field.Add(n) / field.Store(n) on an accounting field.
			fun, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if fun.Sel.Name != "Add" && fun.Sel.Name != "Store" {
				return true
			}
			if sel, name, ok := cw.counterSelector(fun.X); ok && !credited {
				cw.report(sel.Pos(), name)
			}
		}
		return true
	})
}

// litCredited reports whether a //gridlint:credit directive sits on the
// func literal's own line or the line directly above it.
func (cw *creditWalker) litCredited(lit *ast.FuncLit) bool {
	pos := cw.pass.Fset.Position(lit.Pos())
	lines := cw.creditLines[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line] || lines[pos.Line-1]
}

func (cw *creditWalker) report(pos token.Pos, field string) {
	cw.pass.Reportf(pos, "accounting field %s accumulated outside a crediting function; annotate the enclosing function with //gridlint:credit <reason> if this is a legitimate crediting site", field)
}

// counterSelector reports whether e is a selector onto an accounting field
// and returns the selector and field name. Package-qualified names
// (pkg.SomeBytesVar) are not field accesses and are skipped.
func (cw *creditWalker) counterSelector(e ast.Expr) (*ast.SelectorExpr, string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	if !isCounterField(sel.Sel.Name) {
		return nil, "", false
	}
	if id, ok := sel.X.(*ast.Ident); ok && cw.pass.TypesInfo != nil {
		if _, isPkg := cw.pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
			return nil, "", false
		}
	}
	return sel, sel.Sel.Name, true
}
