package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// RunConfig parameterizes one gridlint run.
type RunConfig struct {
	// Config is handed to every pass (e.g. the CI workflow text under
	// "ci-workflow").
	Config map[string]string
	// Analyzers defaults to the full suite.
	Analyzers []*Analyzer
}

// Run executes the analyzers over the loaded packages and returns the
// surviving (non-suppressed) diagnostics, deterministically ordered.
func Run(pkgs []*CheckedPackage, cfg RunConfig) ([]Diagnostic, error) {
	analyzers := cfg.Analyzers
	if analyzers == nil {
		analyzers = Analyzers()
	}
	var diags []Diagnostic
	for _, cp := range pkgs {
		ignores := collectIgnores(cp.Fset, append(append([]*ast.File(nil), cp.Files...), cp.TestFiles...))
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      cp.Fset,
				Path:      cp.Path,
				Pkg:       cp.Pkg,
				TypesInfo: cp.TypesInfo,
				Files:     cp.Files,
				TestFiles: cp.TestFiles,
				Config:    cfg.Config,
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
			for _, d := range pass.diags {
				if !ignores.suppressed(d) {
					diags = append(diags, d)
				}
			}
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// ignoreDirective marks one //gridlint:ignore comment.
type ignoreDirective struct {
	file      string
	line      int
	analyzers map[string]bool // nil means all analyzers
}

// ignoreSet indexes ignore directives by file and line.
type ignoreSet map[string]map[int]*ignoreDirective

// suppressed reports whether a directive on the diagnostic's line or the
// line directly above covers it.
func (s ignoreSet) suppressed(d Diagnostic) bool {
	lines := s[d.Position.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Position.Line, d.Position.Line - 1} {
		if dir := lines[line]; dir != nil {
			if dir.analyzers == nil || dir.analyzers[d.Analyzer] {
				return true
			}
		}
	}
	return false
}

// collectIgnores scans every comment for //gridlint:ignore directives. The
// directive form is
//
//	//gridlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// An analyzer list of "*" covers the whole suite.
func collectIgnores(fset *token.FileSet, files []*ast.File) ignoreSet {
	set := make(ignoreSet)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//gridlint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				dir := &ignoreDirective{}
				if len(fields) > 0 && fields[0] != "*" {
					dir.analyzers = make(map[string]bool)
					for _, name := range strings.Split(fields[0], ",") {
						dir.analyzers[name] = true
					}
				}
				pos := fset.Position(c.Pos())
				dir.file, dir.line = pos.Filename, pos.Line
				if set[dir.file] == nil {
					set[dir.file] = make(map[int]*ignoreDirective)
				}
				set[dir.file][dir.line] = dir
			}
		}
	}
	return set
}

// hasDirective reports whether the comment group contains the given
// //gridlint:<name> directive (e.g. "credit").
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	prefix := "//gridlint:" + name
	for _, c := range doc.List {
		if rest, ok := strings.CutPrefix(c.Text, prefix); ok {
			if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
				return true
			}
		}
	}
	return false
}

// directiveLines indexes, per file and line, every //gridlint:<name>
// directive so directives attached to func literals (which carry no Doc
// comment) can be found by the line preceding the literal.
func directiveLines(fset *token.FileSet, files []*ast.File, name string) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	prefix := "//gridlint:" + name
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, prefix)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				pos := fset.Position(c.Pos())
				if out[pos.Filename] == nil {
					out[pos.Filename] = make(map[int]bool)
				}
				out[pos.Filename][pos.Line] = true
			}
		}
	}
	return out
}
