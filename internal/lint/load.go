package lint

// Package loading without golang.org/x/tools: `go list -json` discovers the
// module's packages and their file sets, go/parser parses them, and go/types
// checks them in dependency order. Standard-library imports resolve through
// the source importer (go/importer "source" mode), which works offline; the
// module's own packages resolve from the packages checked earlier in the
// same run.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"strings"
)

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath  string
	Dir         string
	Name        string
	GoFiles     []string
	TestGoFiles []string
	Imports     []string
	Standard    bool
}

// CheckedPackage is one loaded, type-checked package ready for analysis.
type CheckedPackage struct {
	Path      string
	Dir       string
	Fset      *token.FileSet
	Pkg       *types.Package
	TypesInfo *types.Info
	Files     []*ast.File
	TestFiles []*ast.File
	// CheckErrors collects soft type-checking problems; analysis proceeds
	// with partial information.
	CheckErrors []error
}

// goList runs `go list -json` in dir and decodes the package stream.
func goList(dir string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json"}, args...)...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&out)
	for dec.More() {
		p := new(listedPackage)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load lists the packages matching patterns under dir, type-checks them (and
// their in-module dependencies) in dependency order, and returns the
// packages matching the patterns, sorted by import path.
func Load(dir string, patterns ...string) ([]*CheckedPackage, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	roots, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	all, err := goList(dir, append([]string{"-deps"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*listedPackage, len(all))
	for _, p := range all {
		byPath[p.ImportPath] = p
	}

	l := &loader{
		fset:    token.NewFileSet(),
		listed:  byPath,
		checked: make(map[string]*CheckedPackage),
		std:     importer.ForCompiler(token.NewFileSet(), "source", nil),
	}

	var out []*CheckedPackage
	for _, root := range roots {
		if root.Standard || root.Name == "" {
			continue
		}
		cp, err := l.check(root.ImportPath)
		if err != nil {
			return nil, err
		}
		out = append(out, cp)
	}
	return out, nil
}

// loader memoizes type-checked packages for one Load call.
type loader struct {
	fset    *token.FileSet
	listed  map[string]*listedPackage
	checked map[string]*CheckedPackage
	std     types.Importer
}

// Import implements types.Importer: module-local packages come from this
// run's checked set, everything else falls back to the offline source
// importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if lp, ok := l.listed[path]; ok && !lp.Standard {
		cp, err := l.check(path)
		if err != nil {
			return nil, err
		}
		return cp.Pkg, nil
	}
	return l.std.Import(path)
}

// check parses and type-checks one module-local package, memoized.
func (l *loader) check(path string) (*CheckedPackage, error) {
	if cp, ok := l.checked[path]; ok {
		return cp, nil
	}
	lp, ok := l.listed[path]
	if !ok {
		return nil, fmt.Errorf("lint: package %s not listed", path)
	}
	cp := &CheckedPackage{Path: path, Dir: lp.Dir, Fset: l.fset}
	// Install the entry before recursing so an import cycle (illegal in Go,
	// but possible in a broken tree) cannot loop forever; the type checker
	// reports the nil package as an error instead.
	l.checked[path] = cp

	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %v", name, err)
		}
		cp.Files = append(cp.Files, f)
	}
	for _, name := range lp.TestGoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %v", name, err)
		}
		cp.TestFiles = append(cp.TestFiles, f)
	}

	cp.TypesInfo = newTypesInfo()
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { cp.CheckErrors = append(cp.CheckErrors, err) },
	}
	pkg, err := conf.Check(path, l.fset, cp.Files, cp.TypesInfo)
	if err != nil && pkg == nil {
		return nil, fmt.Errorf("lint: type-check %s: %v", path, err)
	}
	cp.Pkg = pkg
	return cp, nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}
