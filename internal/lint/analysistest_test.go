package lint

// A miniature analysistest: fixtures under testdata/<analyzer>/{bad,good}
// are standalone packages annotated with
//
//	// want "substr" ["substr" ...]
//
// comments. Each diagnostic an analyzer reports must match (by substring) a
// want on its line, and every want must be matched by a diagnostic — so the
// fixtures pin both the positives and the silences. _test.go files in a
// fixture are parsed but not type-checked, mirroring the real loader.

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

var wantRx = regexp.MustCompile(`//\s*want\s+(.*)`)
var wantStrRx = regexp.MustCompile(`"([^"]*)"`)

// fixtureWant is one expectation at a file:line.
type fixtureWant struct {
	file    string
	line    int
	substr  string
	matched bool
}

// runFixture loads one fixture directory, runs the analyzer, applies
// //gridlint:ignore suppression, and reconciles diagnostics against want
// comments.
func runFixture(t *testing.T, a *Analyzer, dir string, config map[string]string) {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("fixture %s: no files (%v)", dir, err)
	}
	sort.Strings(names)

	fset := token.NewFileSet()
	var files, testFiles []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		if strings.HasSuffix(name, "_test.go") {
			testFiles = append(testFiles, f)
		} else {
			files = append(files, f)
		}
	}

	info := newTypesInfo()
	conf := types.Config{
		Importer: importer.ForCompiler(token.NewFileSet(), "source", nil),
		Error:    func(error) {},
	}
	pkg, err := conf.Check("fixture/"+filepath.Base(dir), fset, files, info)
	if err != nil {
		t.Fatalf("fixture %s does not type-check: %v", dir, err)
	}

	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Path:      "fixture/" + filepath.Base(dir),
		Pkg:       pkg,
		TypesInfo: info,
		Files:     files,
		TestFiles: testFiles,
		Config:    config,
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s on %s: %v", a.Name, dir, err)
	}

	ignores := collectIgnores(fset, append(append([]*ast.File(nil), files...), testFiles...))
	var diags []Diagnostic
	for _, d := range pass.diags {
		if !ignores.suppressed(d) {
			diags = append(diags, d)
		}
	}
	sortDiagnostics(diags)

	wants := collectWants(t, names)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Position.Filename && w.line == d.Position.Line && strings.Contains(d.Message, w.substr) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic containing %q, got none", w.file, w.line, w.substr)
		}
	}
}

// collectWants scans fixture sources for want comments.
func collectWants(t *testing.T, names []string) []*fixtureWant {
	t.Helper()
	var out []*fixtureWant
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRx.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, s := range wantStrRx.FindAllStringSubmatch(m[1], -1) {
				out = append(out, &fixtureWant{file: name, line: i + 1, substr: s[1]})
			}
		}
	}
	return out
}

func TestWireExhaustiveFixtures(t *testing.T) {
	runFixture(t, WireExhaustive, filepath.Join("testdata", "wireexhaustive", "bad"),
		map[string]string{"ci-workflow": "go test -fuzz FuzzDecodeOther ./..."})
	runFixture(t, WireExhaustive, filepath.Join("testdata", "wireexhaustive", "good"),
		map[string]string{"ci-workflow": "go test -fuzz FuzzDecodePing -fuzz FuzzDecodeSettle ./..."})
}

func TestChanSendUnderLockFixtures(t *testing.T) {
	runFixture(t, ChanSendUnderLock, filepath.Join("testdata", "chansendunderlock", "bad"), nil)
	runFixture(t, ChanSendUnderLock, filepath.Join("testdata", "chansendunderlock", "good"), nil)
}

func TestCounterDisciplineFixtures(t *testing.T) {
	runFixture(t, CounterDiscipline, filepath.Join("testdata", "counterdiscipline", "bad"), nil)
	runFixture(t, CounterDiscipline, filepath.Join("testdata", "counterdiscipline", "good"), nil)
}

func TestErrClassifyFixtures(t *testing.T) {
	runFixture(t, ErrClassify, filepath.Join("testdata", "errclassify", "bad"), nil)
	runFixture(t, ErrClassify, filepath.Join("testdata", "errclassify", "good"), nil)
}
