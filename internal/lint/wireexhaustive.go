package lint

// wireexhaustive guards the wire-protocol surface. PR 4 and PR 5 both
// extended the wire (header CRCs, hello handshakes) and each time the fuzz
// targets and dispatch switches were extended by hand, with review as the
// only check. This analyzer closes that loop mechanically. For every
// package that declares msgXxx wire constants it enforces:
//
//  1. Every msgXxx constant is matched somewhere in non-test code — as a
//     switch case or in an ==/!= comparison — so an unhandled kind cannot
//     reach a default: branch as a silent protocol violation.
//  2. The package declares a wireDecoderFor manifest mapping every msgXxx
//     constant to the in-package decoder that parses its payload ("" for
//     kinds whose payload is empty or decoded by another package), and the
//     manifest is total.
//  3. Every declared decode function (decodeXxx) has a FuzzDecode* fuzz
//     target declared in the package's test files AND registered in the CI
//     workflow, so a new decoder cannot ship unfuzzed.

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// WireExhaustive is the wire-protocol exhaustiveness analyzer.
var WireExhaustive = &Analyzer{
	Name: "wireexhaustive",
	Doc:  "wire message constants must be dispatched, listed in the decoder manifest, and their decoders fuzzed in CI",
	Run:  runWireExhaustive,
}

// wireConstRx matches wire message kind constants.
var wireConstRx = regexp.MustCompile(`^msg[A-Z]`)

// decoderRx matches payload decode entry points.
var decoderRx = regexp.MustCompile(`^decode[A-Z]`)

// wireManifestName is the required decoder manifest variable.
const wireManifestName = "wireDecoderFor"

func runWireExhaustive(pass *Pass) error {
	consts := wireConstants(pass.Files)
	decoders := declaredFuncs(pass.Files, decoderRx)
	if len(consts) == 0 && len(decoders) == 0 {
		return nil
	}

	dispatched := dispatchedIdents(pass.Files)
	manifest, manifestPos := wireManifest(pass.Files)

	for _, c := range consts {
		if !dispatched[c.Name] {
			pass.Reportf(c.Pos, "wire constant %s is never matched in a dispatch switch or comparison; an incoming frame of this kind would hit a default branch", c.Name)
		}
	}
	if len(consts) > 0 {
		if manifest == nil {
			pass.Reportf(consts[0].Pos, "package declares wire message constants but no %s manifest mapping each kind to its payload decoder", wireManifestName)
		} else {
			for _, c := range consts {
				if _, ok := manifest[c.Name]; !ok {
					pass.Reportf(manifestPos, "%s manifest is missing wire constant %s", wireManifestName, c.Name)
				}
			}
			for name, entry := range manifest {
				if entry.decoder != "" {
					if _, ok := decoders[entry.decoder]; !ok {
						pass.Reportf(entry.pos, "%s names decoder %q for %s, but no such function is declared in this package", wireManifestName, entry.decoder, name)
					}
				}
			}
		}
	}

	// Every decoder must be fuzzed: a FuzzDecodeXxx target in the package's
	// test files, registered in the CI workflow's fuzz step.
	fuzzDecls := declaredFuncs(pass.TestFiles, regexp.MustCompile(`^FuzzDecode`))
	ci, haveCI := pass.Config["ci-workflow"]
	for name, pos := range decoders {
		target := "FuzzDecode" + strings.TrimPrefix(name, "decode")
		if _, ok := fuzzDecls[target]; !ok {
			pass.Reportf(pos, "decoder %s has no %s fuzz target; wire decoders face attacker-controlled bytes and must be fuzzed", name, target)
			continue
		}
		if haveCI && !fuzzTargetRegistered(ci, target) {
			pass.Reportf(pos, "fuzz target %s exists but is not registered in the CI workflow's fuzz step", target)
		}
	}
	return nil
}

// wireConst is one msgXxx constant declaration.
type wireConst struct {
	Name string
	Pos  token.Pos
}

func wireConstants(files []*ast.File) []wireConst {
	var out []wireConst
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if wireConstRx.MatchString(name.Name) {
						out = append(out, wireConst{Name: name.Name, Pos: name.Pos()})
					}
				}
			}
		}
	}
	return out
}

// declaredFuncs maps names of top-level functions matching rx to their
// positions.
func declaredFuncs(files []*ast.File, rx *regexp.Regexp) map[string]token.Pos {
	out := make(map[string]token.Pos)
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil {
				continue
			}
			if rx.MatchString(fd.Name.Name) {
				out[fd.Name.Name] = fd.Name.Pos()
			}
		}
	}
	return out
}

// dispatchedIdents collects identifiers appearing in dispatch positions:
// switch case expressions and ==/!= comparisons. Both forms occur in this
// codebase — tag switches over msg.Type and boolean switches whose cases
// compare phase and type.
func dispatchedIdents(files []*ast.File) map[string]bool {
	out := make(map[string]bool)
	record := func(e ast.Expr) {
		// A dispatch expression may itself be a comparison (boolean switch
		// cases); collect idents from comparisons at any depth.
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				out[id.Name] = true
			}
			return true
		})
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CaseClause:
				for _, e := range n.List {
					record(e)
				}
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					record(n.X)
					record(n.Y)
				}
			}
			return true
		})
	}
	return out
}

// manifestEntry is one wireDecoderFor key/value pair.
type manifestEntry struct {
	decoder string
	pos     token.Pos
}

// wireManifest locates the wireDecoderFor map literal and decodes its
// entries: keys must be msgXxx identifiers, values string literals naming
// in-package decoders (or "" for kinds without one).
func wireManifest(files []*ast.File) (map[string]manifestEntry, token.Pos) {
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != wireManifestName || i >= len(vs.Values) {
						continue
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					out := make(map[string]manifestEntry)
					for _, elt := range cl.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						key, ok := kv.Key.(*ast.Ident)
						if !ok {
							continue
						}
						entry := manifestEntry{pos: kv.Pos()}
						if lit, ok := kv.Value.(*ast.BasicLit); ok && lit.Kind == token.STRING {
							if s, err := strconv.Unquote(lit.Value); err == nil {
								entry.decoder = s
							}
						}
						out[key.Name] = entry
					}
					return out, name.Pos()
				}
			}
		}
	}
	return nil, token.NoPos
}

// fuzzTargetRegistered reports whether the CI workflow text invokes the
// given fuzz target (e.g. `-fuzz FuzzDecodeHello`).
func fuzzTargetRegistered(workflow, target string) bool {
	rx := regexp.MustCompile(`\b` + regexp.QuoteMeta(target) + `\b`)
	return rx.MatchString(workflow)
}
