package lint

// chansendunderlock guards against the PR 4 rendezvous deadlock shape: a
// goroutine that blocks — on a channel send or receive, a WaitGroup, a
// select without default, or transport I/O — while still holding a
// sync.Mutex/RWMutex it acquired in the same function. Every such wait can
// deadlock the whole process the moment the unblocking party needs the same
// lock (the window=1 replica rendezvous did exactly that), and even when it
// cannot deadlock it serializes everything behind the lock for the duration
// of the wait (the broker pump hazard).
//
// The analysis is intra-function and control-flow conservative: the held
// set is tracked linearly through each block, branches are analyzed with a
// copy (an unlock inside a branch does not clear the outer held set — the
// usual shape is unlock-then-return), and function literals start with an
// empty held set of their own. sync.Cond.Wait is exempt: calling it with
// the mutex held is the condition-variable contract, not a hazard.

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// ChanSendUnderLock is the blocking-under-mutex analyzer.
var ChanSendUnderLock = &Analyzer{
	Name: "chansendunderlock",
	Doc:  "no channel operations, Wait()s, or blocking transport I/O while a mutex acquired in the same function is held",
	Run:  runChanSendUnderLock,
}

func runChanSendUnderLock(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &lockWalker{pass: pass}
			w.walkStmts(fd.Body.List, map[string]token.Pos{})
		}
	}
	return nil
}

// lockWalker tracks the set of mutexes held at each point of one function.
type lockWalker struct {
	pass *Pass
}

// walkStmts analyzes a statement sequence, mutating held as locks are
// acquired and released in straight-line flow.
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held map[string]token.Pos) {
	for _, s := range stmts {
		w.walkStmt(s, held)
	}
}

// copyHeld snapshots the held set for a branch.
func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (w *lockWalker) walkStmt(s ast.Stmt, held map[string]token.Pos) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.scanExpr(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scanExpr(e, held)
		}
		for _, e := range s.Lhs {
			w.scanExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.scanExpr(e, held)
					}
				}
			}
		}
	case *ast.SendStmt:
		if len(held) > 0 {
			w.reportBlocked(s.Pos(), "channel send", held)
		}
		w.scanExpr(s.Chan, held)
		w.scanExpr(s.Value, held)
	case *ast.IncDecStmt:
		w.scanExpr(s.X, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scanExpr(e, held)
		}
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held for the rest of the
		// function, so held is deliberately unchanged. A deferred function
		// literal runs after the function's own locks are (normally)
		// released; analyze it with a fresh held set.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.walkStmts(lit.Body.List, map[string]token.Pos{})
		}
	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.walkStmts(lit.Body.List, map[string]token.Pos{})
		}
		for _, e := range s.Call.Args {
			w.scanExpr(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.scanExpr(s.Cond, held)
		w.walkStmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			w.walkStmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond, held)
		}
		body := copyHeld(held)
		w.walkStmts(s.Body.List, body)
		if s.Post != nil {
			w.walkStmt(s.Post, body)
		}
	case *ast.RangeStmt:
		// Ranging over a channel is a blocking receive per iteration.
		if len(held) > 0 && w.isChannel(s.X) {
			w.reportBlocked(s.Pos(), "range over channel", held)
		}
		w.scanExpr(s.X, held)
		w.walkStmts(s.Body.List, copyHeld(held))
	case *ast.BlockStmt:
		w.walkStmts(s.List, held)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag, held)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				branch := copyHeld(held)
				for _, e := range cc.List {
					w.scanExpr(e, branch)
				}
				w.walkStmts(cc.Body, branch)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && len(held) > 0 {
			w.reportBlocked(s.Pos(), "blocking select", held)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				w.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, held)
	}
}

// scanExpr inspects one expression in evaluation position: lock/unlock
// calls mutate held, blocking operations are reported, and function
// literals are analyzed independently with an empty held set.
func (w *lockWalker) scanExpr(e ast.Expr, held map[string]token.Pos) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.walkStmts(n.Body.List, map[string]token.Pos{})
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && len(held) > 0 {
				w.reportBlocked(n.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			w.scanCall(n, held)
		}
		return true
	})
}

// scanCall classifies one call: mutex transitions, exempt cond waits, and
// blocking calls under a held lock.
func (w *lockWalker) scanCall(call *ast.CallExpr, held map[string]token.Pos) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		if w.isMutex(sel) {
			held[exprString(sel.X)] = call.Pos()
		}
	case "Unlock", "RUnlock":
		if w.isMutex(sel) {
			delete(held, exprString(sel.X))
		}
	case "Wait":
		if len(held) == 0 {
			return
		}
		// sync.Cond.Wait is the condition-variable idiom and requires the
		// lock; sync.WaitGroup.Wait under a lock is the deadlock shape.
		if w.receiverNamed(sel, "sync", "WaitGroup") {
			w.reportBlocked(call.Pos(), "WaitGroup.Wait", held)
		}
	case "Recv", "Send":
		if len(held) > 0 && w.isConnLike(sel.X) {
			w.reportBlocked(call.Pos(), "blocking transport "+sel.Sel.Name, held)
		}
	case "Sleep":
		if len(held) > 0 && w.receiverIsPackage(sel, "time") {
			w.reportBlocked(call.Pos(), "time.Sleep", held)
		}
	}
}

func (w *lockWalker) reportBlocked(pos token.Pos, what string, held map[string]token.Pos) {
	for lock := range held {
		w.pass.Reportf(pos, "%s while mutex %s is held (deadlock hazard: release the lock before blocking)", what, lock)
		return // one representative lock per finding keeps the output readable
	}
}

// isMutex reports whether the selector's Lock/Unlock resolves to
// sync.Mutex or sync.RWMutex (directly or through embedding).
func (w *lockWalker) isMutex(sel *ast.SelectorExpr) bool {
	return w.receiverNamed(sel, "sync", "Mutex") || w.receiverNamed(sel, "sync", "RWMutex")
}

// receiverNamed reports whether the method selection's receiver is the
// named type pkg.name, looking through pointers and embedded fields.
func (w *lockWalker) receiverNamed(sel *ast.SelectorExpr, pkg, name string) bool {
	if w.pass.TypesInfo != nil {
		if s, ok := w.pass.TypesInfo.Selections[sel]; ok {
			if fn, ok := s.Obj().(*types.Func); ok {
				if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
					return typeNamed(recv.Type(), pkg, name)
				}
			}
		}
		if t := w.pass.TypeOf(sel.X); t != nil {
			return typeNamed(t, pkg, name)
		}
	}
	return false
}

// receiverIsPackage reports whether sel.X names the given imported package
// (e.g. time.Sleep).
func (w *lockWalker) receiverIsPackage(sel *ast.SelectorExpr, pkg string) bool {
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == pkg
}

// isConnLike reports whether e's static type is a connection-shaped
// interface: one declaring both Send and Recv methods (transport.Conn and
// the grid package's protoConn both match structurally).
func (w *lockWalker) isConnLike(e ast.Expr) bool {
	return connLikeType(w.pass.TypeOf(e))
}

func (w *lockWalker) isChannel(e ast.Expr) bool {
	t := w.pass.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// connLikeType reports whether t is (or points to) an interface with both
// Send and Recv methods.
func connLikeType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	hasSend, hasRecv := false, false
	for i := 0; i < iface.NumMethods(); i++ {
		switch iface.Method(i).Name() {
		case "Send":
			hasSend = true
		case "Recv":
			hasRecv = true
		}
	}
	return hasSend && hasRecv
}

// typeNamed reports whether t (or its pointee) is the named type pkg.name.
func typeNamed(t types.Type, pkg, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Name() == pkg
}

// exprString renders an expression as source text for use as a held-set
// key and in diagnostics.
func exprString(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return "?"
	}
	return buf.String()
}
