// Package lint is gridlint: a suite of project-specific static analyzers
// that mechanically enforce the wire, locking, and accounting invariants
// this codebase otherwise relies on review and stress runs to hold.
//
// The paper's guarantee — cheat detection with probability driven by the
// sample rate q — only holds if the implementation invariants hold: every
// wire message is decodable under fuzz and handled exhaustively, byte
// accounting reconciles exactly with connection counters, and the
// session/replica/broker concurrency never blocks while holding a lock.
// Each analyzer guards one of those invariants:
//
//   - wireexhaustive: every msgXxx wire constant is dispatched somewhere,
//     appears in the wire decoder manifest, and every payload decoder has a
//     FuzzDecode* target registered in CI.
//   - chansendunderlock: no channel send, WaitGroup wait, or blocking
//     transport I/O while a sync.Mutex/RWMutex acquired in the same
//     function is still held (the PR 4 rendezvous-deadlock shape).
//   - counterdiscipline: byte/frame/message accounting fields are only
//     mutated inside functions annotated //gridlint:credit, so flush-time
//     crediting cannot silently regress to enqueue-time.
//   - errclassify: exported functions that perform transport I/O classify
//     transport errors (quarantine vs. resume vs. fatal) instead of
//     returning them raw.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic) but is built on the standard library alone — go/parser,
// go/types, and a `go list` package loader — so the tree stays free of
// external dependencies.
//
// Suppression: a comment of the form
//
//	//gridlint:ignore <analyzer> <reason>
//
// on the flagged line, or alone on the line above it, suppresses that
// analyzer's diagnostics for the line. The reason is mandatory by
// convention: an ignore without a why does not survive review.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check, the stdlib-only analogue of
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-line description of the invariant the analyzer guards.
	Doc string
	// Run inspects one package and reports findings via Pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps positions for every file in the pass.
	Fset *token.FileSet
	// Path is the package's import path.
	Path string
	// Pkg is the type-checked package. It may be partially checked when an
	// import could not be resolved; analyzers must tolerate missing type
	// information.
	Pkg *types.Package
	// TypesInfo holds the type-checker's results for Files.
	TypesInfo *types.Info
	// Files are the package's non-test files, type-checked.
	Files []*ast.File
	// TestFiles are the package's _test.go files, parsed but not
	// type-checked. wireexhaustive reads fuzz target declarations here.
	TestFiles []*ast.File
	// Config carries driver-supplied inputs keyed by name (for example the
	// CI workflow text under "ci-workflow").
	Config map[string]string

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Analyzer names the check that fired.
	Analyzer string
	// Pos is the finding's location.
	Pos token.Pos
	// Position is Pos resolved through the pass's FileSet.
	Position token.Position
	// Message states the violated invariant.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Position, d.Message, d.Analyzer)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when the checker could not resolve
// it.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.TypesInfo == nil {
		return nil
	}
	return p.TypesInfo.TypeOf(e)
}

// Analyzers returns the full gridlint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		WireExhaustive,
		ChanSendUnderLock,
		CounterDiscipline,
		ErrClassify,
	}
}

// sortDiagnostics orders findings by file, line, column, then analyzer so
// output is deterministic.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
