// Package leakcheck fails a test binary that exits with stray goroutines —
// the same job as go.uber.org/goleak, rebuilt on the standard library so
// the tree keeps zero external dependencies. The grid layer spawns
// goroutines aggressively (session pullers, broker pumps, bind waiters,
// stream workers); every one of them is supposed to be joined by a Close or
// a WaitGroup, and a leak means a teardown path lost track of one.
//
// Usage, from a package's TestMain:
//
//	func TestMain(m *testing.M) { leakcheck.VerifyTestMain(m) }
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// maxStackBytes bounds the runtime.Stack snapshot. 16 MiB holds thousands
// of goroutine records; a test binary with more than that has bigger
// problems than truncated diagnostics.
const maxStackBytes = 16 << 20

// ignorePrefixes lists function-name prefixes of goroutines that are
// expected to outlive tests: the runtime's own workers, the testing
// framework, and the fuzz coordinator.
var ignorePrefixes = []string{
	"testing.",
	"runtime.goexit",
	"runtime.MHeap_Scavenger",
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"runtime.forcegchelper",
	"runtime.gcBgMarkWorker",
	"runtime/trace.Start",
	"internal/fuzz.",
	"os/signal.signal_recv",
	"os/signal.loop",
}

// goroutine is one parsed stack record.
type goroutine struct {
	header string // "goroutine 7 [chan receive]:"
	stack  string // full record text
}

// snapshot parses runtime.Stack(all=true) into per-goroutine records,
// excluding the caller's own goroutine (the first record) and anything
// matching ignorePrefixes.
func snapshot() []goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		if len(buf) >= maxStackBytes {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	records := strings.Split(string(buf), "\n\n")
	var out []goroutine
	for i, rec := range records {
		if i == 0 {
			continue // the goroutine running the check
		}
		rec = strings.TrimSpace(rec)
		if rec == "" {
			continue
		}
		lines := strings.SplitN(rec, "\n", 2)
		g := goroutine{header: lines[0], stack: rec}
		if ignored(g) {
			continue
		}
		out = append(out, g)
	}
	return out
}

// ignored reports whether the record belongs to the allowlist of benign
// background goroutines.
func ignored(g goroutine) bool {
	body := g.stack
	for _, p := range ignorePrefixes {
		// Match the prefix at the top frame (first function line after the
		// header) or anywhere a created-by line names it.
		if strings.Contains(body, "\n"+p) || strings.Contains(body, "created by "+p) {
			return true
		}
	}
	return false
}

// Check returns an error describing goroutines still alive after deadline.
// Goroutines legitimately mid-teardown get time to exit: the snapshot is
// retried with backoff until it comes back empty or the deadline passes.
func Check(deadline time.Duration) error {
	var stale []goroutine
	backoff := time.Millisecond
	start := time.Now()
	for {
		stale = snapshot()
		if len(stale) == 0 {
			return nil
		}
		if time.Since(start) > deadline {
			break
		}
		time.Sleep(backoff)
		if backoff < 100*time.Millisecond {
			backoff *= 2
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "leakcheck: %d goroutine(s) still running after %v:\n", len(stale), deadline)
	for _, g := range stale {
		b.WriteString("\n")
		b.WriteString(g.stack)
		b.WriteString("\n")
	}
	return fmt.Errorf("%s", b.String())
}

// VerifyTestMain runs the package's tests and fails the binary when
// goroutines leak past the last test. Call it from TestMain.
func VerifyTestMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if err := Check(5 * time.Second); err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
		}
	}
	os.Exit(code)
}
