package leakcheck

import (
	"strings"
	"testing"
	"time"
)

func TestCheckCleanState(t *testing.T) {
	if err := Check(2 * time.Second); err != nil {
		t.Fatalf("clean state reported as leaking: %v", err)
	}
}

func TestCheckCatchesLeak(t *testing.T) {
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-release
	}()
	err := Check(50 * time.Millisecond)
	if err == nil {
		t.Fatal("blocked goroutine not reported")
	}
	if !strings.Contains(err.Error(), "leakcheck:") {
		t.Fatalf("unexpected error text: %v", err)
	}
	close(release)
	<-done
}

func TestMain(m *testing.M) { VerifyTestMain(m) }
