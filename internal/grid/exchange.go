package grid

// Supervisor-side per-task protocol state machine.
//
// PR 2 split a task's lifecycle into prepare/exchange/settle but kept the
// wire phase implicit in a goroutine's call stack: a transport error unwound
// the stack and the task — challenge randomness already consumed, messages
// already received — was lost with it. This file makes the exchange a
// first-class, resumable state: an explicit phase plus every payload
// received and every challenge issued so far. The state lives on the heap
// (in preparedTask), detaches from a dead protoConn, and re-attaches to a
// fresh connection through the msgResume handshake, which tells the
// participant exactly which messages to replay or re-derive from its
// deterministic prover state.
//
// Determinism contract: the task's private randomness stream (taskRun.rng)
// advances exactly once per protocol point — ringers at prepare, the
// interactive challenge when the commitment arrives, the naive sample at
// decide — regardless of how many connections the exchange spans. A faulty
// run that resumes mid-protocol therefore reaches the same verdict, byte
// for byte, as a clean run with equal seeds.

import (
	"errors"
	"fmt"

	"uncheatgrid/internal/baseline"
	"uncheatgrid/internal/core"
	"uncheatgrid/internal/hashchain"
	"uncheatgrid/internal/transport"
)

// exchangePhase is the supervisor's position in one task's wire protocol.
type exchangePhase uint8

const (
	// phaseAwaitCommit waits for the CBS commitment.
	phaseAwaitCommit exchangePhase = iota + 1
	// phaseAwaitUpload waits for the full-result upload (single frame or
	// chunk stream) of the naive and double-check schemes.
	phaseAwaitUpload
	// phaseAwaitHits waits for the ringer scheme's hit list.
	phaseAwaitHits
	// phaseAwaitReports waits for the screened-result report list every
	// scheme sends after its primary payload.
	phaseAwaitReports
	// phaseSendChallenge owes the participant an interactive CBS challenge.
	phaseSendChallenge
	// phaseAwaitProofs waits for the CBS audit-path response.
	phaseAwaitProofs
	// phaseDecide has every input; verification runs without touching the
	// wire — except in replica mode, where it blocks on the cross-connection
	// rendezvous that compares the group's uploads.
	phaseDecide
	// phaseVerdict owes the participant the verdict.
	phaseVerdict
	// phaseAwaitVerdictAck waits for the participant to acknowledge the
	// verdict; an unacked verdict is re-delivered after a resume, so a
	// delivery frame lost to a fault cannot leave the worker's counters
	// stale.
	phaseAwaitVerdictAck
	// phaseDone is terminal.
	phaseDone
)

// exchangeState is the serializable wire-phase record of one task: the
// current phase, the payloads received, and the challenge issued. Everything
// a replacement connection needs to resume is derived from it.
type exchangeState struct {
	phase exchangePhase
	// announced is set once an assignment reached a connection; later
	// (re-)attachments announce with msgResume instead.
	announced bool
	// suppressAnnounce skips the next announce entirely: the attempt is
	// re-attaching to the same live session it parked on (replica barrier),
	// where the participant still holds the task in flight and a resume
	// handshake would collide with it.
	suppressAnnounce bool
	// received is set on the first ingested participant message: from then
	// on the attempt is bound to the peer that produced it and must resume
	// on a connection to the same participant.
	received bool

	// CBS / NI-CBS.
	commitment core.Commitment
	haveCommit bool
	verifier   *core.Verifier
	challenge  core.Challenge
	// challengePayload holds the marshaled interactive challenge once
	// drawn; resumes replay these exact bytes instead of redrawing.
	challengePayload []byte
	proofs           *core.Response
	haveProofs       bool

	// Naive / double-check uploads.
	chunkBuf    []byte
	chunks      uint64
	results     [][]byte
	resultsDone bool
	// submitted records that the upload reached the replica rendezvous, so
	// a resume after the barrier re-waits instead of re-voting.
	submitted bool

	// Ringer.
	hits     []uint64
	haveHits bool

	haveReports bool
}

// initialPhase maps a scheme to the first participant message it expects.
func initialPhase(kind SchemeKind) exchangePhase {
	switch kind {
	case SchemeNaive, SchemeDoubleCheck:
		return phaseAwaitUpload
	case SchemeRinger:
		return phaseAwaitHits
	default:
		return phaseAwaitCommit
	}
}

// resumeState summarizes the exchange for the msgResume handshake.
func (st *exchangeState) resumeState(a assignment) resumeMsg {
	return resumeMsg{
		Assignment:  a,
		HaveCommit:  st.haveCommit,
		HaveReports: st.haveReports,
		HaveProofs:  st.haveProofs,
		HaveHits:    st.haveHits,
		Chunks:      st.chunks,
		ResultsDone: st.resultsDone,
		Challenge:   st.challengePayload,
	}
}

// runExchange drives pt's wire phases on conn: announce the task (a fresh
// assignment or a resume handshake), ingest participant messages, and emit
// the challenge and verdict when due. It returns nil once the task reaches
// its terminal phase. On error the state survives in pt; calling runExchange
// again with a fresh connection resumes mid-protocol instead of restarting.
// replicaResults selects RunReplicated's serial double-check mode, which
// collects the upload here and compares after its own barrier; pipelined
// replica exchanges instead carry a rendezvous in pt and block at decide.
func (s *Supervisor) runExchange(conn protoConn, pt *preparedTask, replicaResults *[][]byte) error {
	st := pt.st
	if err := pt.announce(conn); err != nil {
		return err
	}
	for {
		switch st.phase {
		case phaseSendChallenge:
			if err := pt.issueChallenge(conn); err != nil {
				return err
			}
		case phaseDecide:
			if err := pt.decide(replicaResults); err != nil {
				return err
			}
		case phaseVerdict:
			if err := s.sendVerdict(conn, pt.outcome); err != nil {
				return err
			}
			st.phase = phaseAwaitVerdictAck
		case phaseDone:
			return nil
		default:
			msg, err := conn.Recv()
			if err != nil {
				return err
			}
			if err := pt.ingest(msg); err != nil {
				return err
			}
		}
	}
}

// announce (re-)introduces the task on conn: a fresh msgAssign the first
// time, a msgResume replaying the supervisor's position on every later
// connection.
func (pt *preparedTask) announce(conn protoConn) error {
	st := pt.st
	if st.suppressAnnounce {
		st.suppressAnnounce = false
		return nil
	}
	if !st.announced {
		if err := conn.Send(transport.Message{Type: msgAssign, Payload: encodeAssignment(pt.assign)}); err != nil {
			return err
		}
		st.announced = true
		return nil
	}
	if err := conn.Send(transport.Message{Type: msgResume, Payload: encodeResume(st.resumeState(pt.assign))}); err != nil {
		return err
	}
	// The resume payload replays any challenge already issued, so a pending
	// challenge send is satisfied by the handshake itself.
	if st.phase == phaseSendChallenge && st.challengePayload != nil {
		st.phase = phaseAwaitProofs
	}
	// A verdict sent but never acknowledged may have been lost with the old
	// connection; re-deliver it. The participant counts each task's verdict
	// at most once, so a redundant re-delivery is harmless.
	if st.phase == phaseAwaitVerdictAck {
		st.phase = phaseVerdict
	}
	return nil
}

// issueChallenge draws the interactive CBS challenge exactly once and sends
// it. A resumed task that already drew its challenge replays the same bytes,
// keeping the randomness stream — and with it the verdict — identical to a
// clean run.
func (pt *preparedTask) issueChallenge(conn protoConn) error {
	st := pt.st
	if st.challengePayload == nil {
		ch, err := st.verifier.Challenge(pt.tr.sup.cfg.Spec.M)
		if err != nil {
			return err
		}
		payload, err := ch.MarshalBinary()
		if err != nil {
			return err
		}
		st.challenge = ch
		st.challengePayload = payload
	}
	if err := conn.Send(transport.Message{Type: msgChallenge, Payload: st.challengePayload}); err != nil {
		return err
	}
	st.phase = phaseAwaitProofs
	return nil
}

// ingest advances the state machine with one participant message. Only the
// message kind the current phase expects is legal — the same strict ordering
// the dialogue protocol always had.
func (pt *preparedTask) ingest(msg transport.Message) error {
	st := pt.st
	var err error
	switch {
	case st.phase == phaseAwaitCommit && msg.Type == msgCommit:
		err = pt.ingestCommit(msg.Payload)
	case st.phase == phaseAwaitUpload && msg.Type == msgResults:
		err = pt.ingestResults(msg.Payload)
	case st.phase == phaseAwaitUpload && msg.Type == msgResultChunk:
		err = pt.ingestChunk(msg.Payload)
	case st.phase == phaseAwaitHits && msg.Type == msgRingerHits:
		err = pt.ingestHits(msg.Payload)
	case st.phase == phaseAwaitReports && msg.Type == msgReports:
		err = pt.ingestReports(msg.Payload)
	case st.phase == phaseAwaitProofs && msg.Type == msgProofs:
		err = pt.ingestProofs(msg.Payload)
	case st.phase == phaseAwaitVerdictAck && msg.Type == msgVerdictAck:
		if len(msg.Payload) != 0 {
			return fmt.Errorf("%w: verdict ack with %d payload bytes", ErrBadPayload, len(msg.Payload))
		}
		st.phase = phaseDone
	default:
		return fmt.Errorf("%w: got type %d in exchange phase %d",
			ErrUnexpectedMessage, msg.Type, st.phase)
	}
	if err == nil {
		st.received = true
	}
	return err
}

func (pt *preparedTask) ingestCommit(payload []byte) error {
	st := pt.st
	if err := st.commitment.UnmarshalBinary(payload); err != nil {
		return fmt.Errorf("%w: commitment: %v", ErrBadPayload, err)
	}
	st.haveCommit = true
	st.phase = phaseAwaitReports
	return nil
}

func (pt *preparedTask) ingestResults(payload []byte) error {
	st := pt.st
	if st.chunks > 0 {
		return fmt.Errorf("%w: whole-frame upload after %d chunks", ErrUnexpectedMessage, st.chunks)
	}
	results, err := decodeResults(payload)
	if err != nil {
		return err
	}
	st.results = results
	st.resultsDone = true
	st.phase = phaseAwaitReports
	return nil
}

func (pt *preparedTask) ingestChunk(payload []byte) error {
	st := pt.st
	c, err := decodeChunk(payload)
	if err != nil {
		return err
	}
	if c.Seq != st.chunks {
		return fmt.Errorf("%w: upload chunk %d, want %d", ErrUnexpectedMessage, c.Seq, st.chunks)
	}
	if int64(len(st.chunkBuf))+int64(len(c.Data)) > maxUploadBytes {
		return fmt.Errorf("%w: chunked upload exceeds %d bytes", ErrBadPayload, maxUploadBytes)
	}
	st.chunkBuf = append(st.chunkBuf, c.Data...)
	st.chunks++
	if !c.Final {
		return nil
	}
	results, err := decodeResults(st.chunkBuf)
	if err != nil {
		return err
	}
	st.results = results
	st.chunkBuf = nil
	st.resultsDone = true
	st.phase = phaseAwaitReports
	return nil
}

func (pt *preparedTask) ingestHits(payload []byte) error {
	st := pt.st
	hits, err := decodeIndices(payload)
	if err != nil {
		return err
	}
	st.hits = hits
	st.haveHits = true
	st.phase = phaseAwaitReports
	return nil
}

func (pt *preparedTask) ingestReports(payload []byte) error {
	st := pt.st
	reports, err := decodeReports(payload)
	if err != nil {
		return err
	}
	pt.outcome.Reports = reports
	st.haveReports = true
	return pt.afterReports()
}

// afterReports routes the exchange onward once the report list is in: CBS
// validates the commitment and resolves its challenge; the upload and ringer
// schemes have everything and move to the decision.
func (pt *preparedTask) afterReports() error {
	st := pt.st
	spec := pt.tr.sup.cfg.Spec
	task := pt.assign.Task
	switch spec.Kind {
	case SchemeCBS, SchemeNICBS:
		if st.commitment.N != task.N {
			pt.outcome.Verdict = Verdict{Reason: fmt.Sprintf("committed %d leaves for a task of %d", st.commitment.N, task.N)}
			st.phase = phaseVerdict
			return nil
		}
		verifier, err := core.NewVerifier(st.commitment, core.WithRand(pt.tr.rng))
		if err != nil {
			return err
		}
		st.verifier = verifier
		if spec.Kind == SchemeNICBS {
			chain, err := hashchain.New(spec.ChainIters)
			if err != nil {
				return err
			}
			st.challenge.Indices, err = chain.SampleIndices(st.commitment.Root, spec.M, st.commitment.N)
			if err != nil {
				return err
			}
			st.phase = phaseAwaitProofs
			return nil
		}
		st.phase = phaseSendChallenge
		return nil
	default:
		st.phase = phaseDecide
		return nil
	}
}

func (pt *preparedTask) ingestProofs(payload []byte) error {
	st := pt.st
	st.haveProofs = true
	var resp core.Response
	if err := resp.UnmarshalBinary(payload); err != nil {
		pt.outcome.Verdict = Verdict{Reason: fmt.Sprintf("undecodable proofs: %v", err)}
		st.phase = phaseVerdict
		return nil
	}
	st.proofs = &resp
	st.phase = phaseDecide
	return nil
}

// decide runs the scheme's verification over the collected inputs. It
// sends nothing, runs its verification exactly once per task (the phase
// moves on), and charges its evaluations to the task's budget — all of
// which keeps resumed verdicts identical to clean ones. In replica mode
// the decision is the group rendezvous: parkable attempts detach while it
// is unready, others block for it.
func (pt *preparedTask) decide(replicaResults *[][]byte) error {
	pt.recordStreamDigest()
	st := pt.st
	tr := pt.tr
	task := pt.assign.Task
	switch tr.sup.cfg.Spec.Kind {
	case SchemeCBS, SchemeNICBS:
		verifyErr := st.verifier.Verify(st.challenge, st.proofs, tr.checkFuncFor(task, pt.f))
		var cheatErr *core.CheatError
		switch {
		case verifyErr == nil:
			pt.outcome.Verdict = Verdict{Accepted: true}
		case errors.As(verifyErr, &cheatErr):
			pt.outcome.Verdict = Verdict{Reason: verifyErr.Error()}
			pt.outcome.CheatIndex = int64(cheatErr.Index)
			st.phase = phaseVerdict
			return nil
		default:
			pt.outcome.Verdict = Verdict{Reason: fmt.Sprintf("protocol violation: %v", verifyErr)}
			st.phase = phaseVerdict
			return nil
		}
		if tr.sup.cfg.CrossCheckReports {
			if reason := tr.crossCheckReports(task, pt.f, st.challenge.Indices, pt.outcome.Reports); reason != "" {
				pt.outcome.Verdict = Verdict{Reason: reason}
			}
		}
		st.phase = phaseVerdict
		return nil

	case SchemeNaive:
		sampler, err := baseline.NewNaiveSampling(tr.sup.cfg.Spec.M, tr.rng)
		if err != nil {
			return err
		}
		check := tr.checkFuncFor(task, pt.f)
		verifyErr := sampler.Verify(int(task.N), st.results, func(index uint64, output []byte) error {
			return check(index, output)
		})
		var sampleErr *baseline.SampleError
		switch {
		case verifyErr == nil:
			pt.outcome.Verdict = Verdict{Accepted: true}
		case errors.As(verifyErr, &sampleErr):
			pt.outcome.Verdict = Verdict{Reason: verifyErr.Error()}
			pt.outcome.CheatIndex = int64(sampleErr.Index)
		default:
			pt.outcome.Verdict = Verdict{Reason: fmt.Sprintf("protocol violation: %v", verifyErr)}
		}
		st.phase = phaseVerdict
		return nil

	case SchemeDoubleCheck:
		if replicaResults != nil {
			// Verdict decided by RunReplicated after its serial barrier.
			*replicaResults = st.results
			st.phase = phaseDone
			return nil
		}
		if pt.rdv == nil {
			return fmt.Errorf("%w: double-check requires replication (RunReplicated or a replicated stream)", ErrBadConfig)
		}
		// The pipelined replica barrier: bank the upload, then block until
		// every sibling delivered (or was lost) and the comparison ran. The
		// submission is recorded so a post-fault resume re-waits instead of
		// voting twice.
		if !st.submitted {
			pt.rdv.submit(pt.repIdx, st.results)
			st.submitted = true
		}
		// Dispatcher-run replicas must not block holding a window slot and
		// a worker: if the group is still incomplete, detach and let the
		// scheduler re-claim the attempt once the rendezvous settles.
		if pt.parkable && !pt.rdv.ready() {
			return errReplicaParked
		}
		v, err := pt.rdv.await(pt.repIdx)
		if err != nil {
			return err
		}
		pt.outcome.Verdict = v
		st.phase = phaseVerdict
		return nil

	case SchemeRinger:
		// Hits arrive as absolute inputs; secrets are domain-relative.
		relative := make([]uint64, 0, len(st.hits))
		for _, x := range st.hits {
			if x >= task.Start {
				relative = append(relative, x-task.Start)
			}
		}
		verifyErr := pt.ringers.Verify(relative)
		var sampleErr *baseline.SampleError
		switch {
		case verifyErr == nil:
			pt.outcome.Verdict = Verdict{Accepted: true}
		case errors.As(verifyErr, &sampleErr):
			pt.outcome.Verdict = Verdict{Reason: verifyErr.Error()}
			pt.outcome.CheatIndex = int64(sampleErr.Index)
		default:
			pt.outcome.Verdict = Verdict{Reason: fmt.Sprintf("protocol violation: %v", verifyErr)}
		}
		st.phase = phaseVerdict
		return nil
	}
	return fmt.Errorf("%w: scheme %v", ErrBadConfig, tr.sup.cfg.Spec.Kind)
}
