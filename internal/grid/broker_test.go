package grid

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"uncheatgrid/internal/transport"
)

// brokerTestWorker wires one participant to a hub the way a deployment
// harness would: every dial registers a fresh worker link under the
// participant's identity and opens a supervisor link whose hello names it.
// The optional garble plan applies to the supervisor→hub leg only, so
// corrupt frames surface at the hub — crossing the relay — rather than at
// an endpoint.
type brokerTestWorker struct {
	t      *testing.T
	name   string
	p      *Participant
	hub    *BrokerHub
	garble float64
	seed   int64

	mu        sync.Mutex
	dials     int
	supConns  []transport.Conn
	partConns []transport.Conn
	hubEnds   []transport.Conn
	serveErrs []chan error
}

func newBrokerTestWorker(t *testing.T, hub *BrokerHub, name string, factory ProducerFactory, garble float64, seed int64) *brokerTestWorker {
	t.Helper()
	p, err := NewParticipant(name, factory)
	if err != nil {
		t.Fatalf("NewParticipant(%s): %v", name, err)
	}
	return &brokerTestWorker{t: t, name: name, p: p, hub: hub, garble: garble, seed: seed}
}

// dial opens one identity-routed path through the hub and returns the
// supervisor-side endpoint. Safe to call from the stream's redial callback.
func (w *brokerTestWorker) dial() transport.Conn {
	hubDown, partConn := transport.Pipe(transport.WithBuffer(8))
	if err := HelloWorker(partConn, w.name); err != nil {
		w.t.Errorf("HelloWorker(%s): %v", w.name, err)
	}
	if err := w.hub.Attach(hubDown); err != nil {
		w.t.Errorf("Attach worker %s: %v", w.name, err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- w.p.Serve(partConn) }()

	supConn, hubUp := transport.Pipe(transport.WithBuffer(8))
	var sup transport.Conn = supConn
	w.mu.Lock()
	attempt := w.dials
	w.dials++
	w.mu.Unlock()
	if w.garble > 0 {
		sup = transport.WithFaults(sup, transport.FaultPlan{
			GarbleProb: w.garble,
			Seed:       w.seed + int64(attempt),
		})
	}
	go func() { _ = w.hub.Attach(hubUp) }()
	if err := HelloSupervisor(sup, w.name); err != nil {
		w.t.Errorf("HelloSupervisor(%s): %v", w.name, err)
	}
	w.mu.Lock()
	w.supConns = append(w.supConns, sup)
	w.partConns = append(w.partConns, partConn)
	w.hubEnds = append(w.hubEnds, hubDown, hubUp)
	w.serveErrs = append(w.serveErrs, serveErr)
	w.mu.Unlock()
	return sup
}

func (w *brokerTestWorker) shutdown() {
	w.mu.Lock()
	conns := append([]transport.Conn(nil), w.supConns...)
	errs := append([]chan error(nil), w.serveErrs...)
	w.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
	for _, ch := range errs {
		if err := <-ch; err != nil {
			w.t.Errorf("participant %s serve: %v", w.name, err)
		}
	}
}

// TestBrokerHubRoutesByIdentity pins the multiplexing contract: one hub
// carries several supervisor↔worker routes at once, and each supervisor
// link reaches exactly the worker its hello named — proven by personas
// (the honest worker's task is accepted, the always-cheating worker's
// rejected, over interactive CBS so both relay directions are exercised).
func TestBrokerHubRoutesByIdentity(t *testing.T) {
	hub := NewBrokerHub()
	defer hub.Close()
	honest := newBrokerTestWorker(t, hub, "honest", HonestFactory, 0, 0)
	cheat := newBrokerTestWorker(t, hub, "cheat", SemiHonestFactory(0, 7), 0, 0)
	honestConn, cheatConn := honest.dial(), cheat.dial()

	sup, err := NewSupervisor(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeCBS, M: 8}, Seed: 3})
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	var wg sync.WaitGroup
	outcomes := make([]*TaskOutcome, 2)
	errs := make([]error, 2)
	for i, conn := range []transport.Conn{honestConn, cheatConn} {
		wg.Add(1)
		go func(i int, conn transport.Conn) {
			defer wg.Done()
			task := syntheticTask(128)
			task.ID = uint64(i)
			outcomes[i], errs[i] = sup.RunTask(conn, task)
		}(i, conn)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("RunTask %d: %v", i, err)
		}
	}
	if !outcomes[0].Verdict.Accepted {
		t.Errorf("honest worker rejected: %s", outcomes[0].Verdict.Reason)
	}
	if outcomes[1].Verdict.Accepted {
		t.Error("always-cheating worker accepted — supervisor link routed to the wrong worker?")
	}
	for _, name := range []string{"honest", "cheat"} {
		st, ok := hub.WorkerStats(name)
		if !ok || st.Binds != 1 || st.ToWorker.EgressMsgs == 0 || st.ToSupervisor.EgressMsgs == 0 {
			t.Errorf("route stats for %s: %+v (ok=%v)", name, st, ok)
		}
	}
	honest.shutdown()
	cheat.shutdown()
}

// TestBrokerUnknownWorkerBindTimesOut pins the bind contract: a supervisor
// hello naming a worker that never registers is refused after the bind
// timeout — Attach itself returns as soon as the hello is consumed (the
// bind waits in the background), and the refusal surfaces to the dialing
// peer as a closed link.
func TestBrokerUnknownWorkerBindTimesOut(t *testing.T) {
	hub := NewBrokerHub(WithBindTimeout(50 * time.Millisecond))
	defer hub.Close()
	supConn, hubUp := transport.Pipe(transport.WithBuffer(8))
	if err := HelloSupervisor(supConn, "nobody"); err != nil {
		t.Fatalf("HelloSupervisor: %v", err)
	}
	start := time.Now()
	if err := hub.Attach(hubUp); err != nil {
		t.Fatalf("Attach must not report the background bind: %v", err)
	}
	if waited := time.Since(start); waited > 40*time.Millisecond {
		t.Errorf("Attach blocked %v for the bind; it must return after the hello", waited)
	}
	if _, err := supConn.Recv(); err == nil {
		t.Fatal("refused supervisor link left open")
	}
}

// TestBrokerSilentHandshakeTimesOut pins the accept-loop safety contract:
// a peer that connects and never sends its hello must not wedge a
// synchronous Attach — the handshake watchdog closes the link after the
// bind timeout and Attach returns a rejection.
func TestBrokerSilentHandshakeTimesOut(t *testing.T) {
	hub := NewBrokerHub(WithBindTimeout(50 * time.Millisecond))
	defer hub.Close()
	peer, hubSide := transport.Pipe()
	defer peer.Close()
	start := time.Now()
	if err := hub.Attach(hubSide); err == nil {
		t.Fatal("silent peer attached successfully")
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("handshake watchdog let Attach block %v", waited)
	}
	if hub.RejectedHandshakes() == 0 {
		t.Fatal("silent handshake not counted as rejected")
	}
}

// TestBrokerIdentityCapRefusesNewWorkers pins the hub's memory bound:
// identities are never evicted (their counters are the accounting record),
// so handshakes naming fresh identities past maxBrokerIdentities are
// refused — known identities keep working.
func TestBrokerIdentityCapRefusesNewWorkers(t *testing.T) {
	old := maxBrokerIdentities
	maxBrokerIdentities = 2
	defer func() { maxBrokerIdentities = old }()

	hub := NewBrokerHub()
	defer hub.Close()
	attach := func(name string) error {
		hubDown, partConn := transport.Pipe(transport.WithBuffer(8))
		if err := HelloWorker(partConn, name); err != nil {
			t.Fatalf("HelloWorker(%s): %v", name, err)
		}
		return hub.Attach(hubDown)
	}
	for _, name := range []string{"w1", "w2"} {
		if err := attach(name); err != nil {
			t.Fatalf("register %s under the cap: %v", name, err)
		}
	}
	if err := attach("w3"); err == nil {
		t.Fatal("third identity registered past a cap of 2")
	}
	if err := attach("w1"); err != nil { // known identity re-registers fine
		t.Fatalf("re-register known identity: %v", err)
	}
	if got := len(hub.Workers()); got > 2 {
		t.Fatalf("hub tracks %d identities, cap 2", got)
	}
	if hub.RejectedHandshakes() == 0 {
		t.Fatal("over-cap handshake not counted as rejected")
	}
}

// TestBrokerRelayBatchingCoalesces pins the relay-hop batching mechanics:
// batch frames queued behind a slow downstream send are merged into fewer,
// larger batch frames, with the tagged sub-messages delivered complete and
// in order.
func TestBrokerRelayBatchingCoalesces(t *testing.T) {
	hub := NewBrokerHub()
	defer hub.Close()

	// Worker link with a depth-1 queue so the hub's forwarder blocks on the
	// second send while the consumer sleeps, forcing later frames to queue.
	hubDown, partConn := transport.Pipe(transport.WithBuffer(1))
	if err := HelloWorker(partConn, "w"); err != nil {
		t.Fatalf("HelloWorker: %v", err)
	}
	if err := hub.Attach(hubDown); err != nil {
		t.Fatalf("Attach worker: %v", err)
	}
	supConn, hubUp := transport.Pipe(transport.WithBuffer(16))
	if err := HelloSupervisor(supConn, "w"); err != nil {
		t.Fatalf("HelloSupervisor: %v", err)
	}
	if err := hub.Attach(hubUp); err != nil {
		t.Fatalf("Attach supervisor: %v", err)
	}

	const frames = 8
	for i := 0; i < frames; i++ {
		payload := encodeBatch([]taggedMsg{{TaskID: uint64(i), Type: msgCommit, Payload: []byte{byte(i)}}})
		if err := supConn.Send(transport.Message{Type: msgBatch, Payload: payload}); err != nil {
			t.Fatalf("send frame %d: %v", i, err)
		}
	}
	time.Sleep(150 * time.Millisecond) // let everything queue behind the blocked forwarder

	var got []taggedMsg
	recvFrames := 0
	for len(got) < frames {
		msg, err := partConn.Recv()
		if err != nil {
			t.Fatalf("participant recv after %d messages: %v", len(got), err)
		}
		if msg.Type != msgBatch {
			t.Fatalf("frame type %d, want batch", msg.Type)
		}
		msgs, err := decodeBatch(msg.Payload)
		if err != nil {
			t.Fatalf("merged frame undecodable: %v", err)
		}
		got = append(got, msgs...)
		recvFrames++
	}
	if recvFrames >= frames {
		t.Errorf("received %d frames for %d sent — no relay-hop coalescing happened", recvFrames, frames)
	}
	for i, tm := range got {
		if tm.TaskID != uint64(i) || tm.Type != msgCommit || len(tm.Payload) != 1 || tm.Payload[0] != byte(i) {
			t.Fatalf("message %d out of order or damaged: %+v", i, tm)
		}
	}
	_ = supConn.Close()
	_ = hub.Close()
	st, _ := hub.WorkerStats("w")
	if st.ToWorker.EgressMsgs >= st.ToWorker.IngressMsgs {
		t.Errorf("egress %d frames not below ingress %d despite coalescing", st.ToWorker.EgressMsgs, st.ToWorker.IngressMsgs)
	}
}

// TestBrokerDeliversQueuedFramesOnCleanClose pins the relay's delivery
// guarantee: frames the hub accepted before a peer's clean close must
// still reach the other endpoint (the direct transport drains queued
// messages after a close, and the old synchronous relay never read ahead
// of its sends), not be dropped with the route.
func TestBrokerDeliversQueuedFramesOnCleanClose(t *testing.T) {
	hub := NewBrokerHub(WithRelayBatching(false))
	defer hub.Close()
	hubDown, partConn := transport.Pipe(transport.WithBuffer(1))
	if err := HelloWorker(partConn, "w"); err != nil {
		t.Fatalf("HelloWorker: %v", err)
	}
	if err := hub.Attach(hubDown); err != nil {
		t.Fatalf("Attach worker: %v", err)
	}
	supConn, hubUp := transport.Pipe(transport.WithBuffer(16))
	if err := HelloSupervisor(supConn, "w"); err != nil {
		t.Fatalf("HelloSupervisor: %v", err)
	}
	if err := hub.Attach(hubUp); err != nil {
		t.Fatalf("Attach supervisor: %v", err)
	}

	const frames = 12
	for i := 0; i < frames; i++ {
		if err := supConn.Send(transport.Message{Type: msgVerdict, Payload: []byte{byte(i)}}); err != nil {
			t.Fatalf("send frame %d: %v", i, err)
		}
	}
	_ = supConn.Close() // clean close with most frames still queued at the hub
	time.Sleep(50 * time.Millisecond)

	for i := 0; i < frames; i++ {
		msg, err := partConn.Recv()
		if err != nil {
			t.Fatalf("frame %d lost to the route teardown: %v", i, err)
		}
		if len(msg.Payload) != 1 || msg.Payload[0] != byte(i) {
			t.Fatalf("frame %d out of order or damaged: %+v", i, msg)
		}
	}
	if _, err := partConn.Recv(); err == nil {
		t.Fatal("route not torn down after the drain")
	}
}

// TestBrokerCorruptFrameQuarantinesRouteNotHub is the fault-transparency
// regression test: a CRC-corrupt frame crossing the relay must quarantine
// only the affected route — the supervisor redials through the hub, the
// resume handshake is re-bound to the same worker, and every task still
// completes with an accepted verdict — while an unrelated worker's route
// keeps relaying untouched. It also pins the accounting contract under
// faults: the hub's counters reconcile exactly with its endpoint byte
// counters, and total egress equals RelayedBytes.
func TestBrokerCorruptFrameQuarantinesRouteNotHub(t *testing.T) {
	hub := NewBrokerHub()
	defer hub.Close()
	faulty := newBrokerTestWorker(t, hub, "faulty", HonestFactory, 0.25, 1000)
	clean := newBrokerTestWorker(t, hub, "clean", HonestFactory, 0, 0)
	workers := map[string]*brokerTestWorker{"faulty": faulty, "clean": clean}

	var mu sync.Mutex
	byConn := make(map[transport.Conn]*brokerTestWorker)
	dial := func(w *brokerTestWorker) transport.Conn {
		conn := w.dial()
		mu.Lock()
		byConn[conn] = w
		mu.Unlock()
		return conn
	}
	conns := []transport.Conn{dial(faulty), dial(clean)}

	const window = 2
	pool, err := NewSupervisorPool(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeCBS, M: 6}, Seed: 11}, len(conns)*window)
	if err != nil {
		t.Fatalf("NewSupervisorPool: %v", err)
	}
	tasks := make([]Task, 8)
	for i := range tasks {
		tasks[i] = Task{ID: uint64(i), Start: uint64(i) * 64, N: 64, Workload: "synthetic", Seed: 9}
	}
	stream, err := pool.RunTasksStream(context.Background(), conns, tasks, window,
		WithStreamRecvTimeout(2*time.Second),
		WithMaxReconnects(200),
		WithRedial(func(old transport.Conn) (transport.Conn, error) {
			mu.Lock()
			w := byConn[old]
			mu.Unlock()
			return dial(w), nil
		}))
	if err != nil {
		t.Fatalf("RunTasksStream: %v", err)
	}
	count := 0
	for so := range stream.Outcomes() {
		count++
		if !so.Outcome.Verdict.Accepted {
			t.Errorf("honest task %d rejected through broker: %s", so.Outcome.Task.ID, so.Outcome.Verdict.Reason)
		}
	}
	if err := stream.Err(); err != nil {
		t.Fatalf("stream: %v", err)
	}
	if count != len(tasks) {
		t.Fatalf("completed %d of %d tasks through the faulty broker route", count, len(tasks))
	}

	// Close the hub before joining the serve loops: a redial whose garbled
	// hello was rejected leaves an orphaned registered worker link whose
	// serve goroutine only ends when the hub releases it.
	if err := hub.Close(); err != nil {
		t.Fatalf("hub close: %v", err)
	}
	faulty.shutdown()
	clean.shutdown()

	fst, _ := hub.WorkerStats("faulty")
	if fst.CorruptFrames == 0 {
		t.Fatal("no corrupt frame ever crossed the relay; the test proves nothing")
	}
	if fst.Binds < 2 {
		t.Errorf("faulty worker bound %d times, want >= 2 (resume-through-relay)", fst.Binds)
	}
	cst, _ := hub.WorkerStats("clean")
	if cst.CorruptFrames != 0 || cst.Binds != 1 {
		t.Errorf("clean worker's route was disturbed: %+v", cst)
	}
	clean.mu.Lock()
	cleanDials := clean.dials
	clean.mu.Unlock()
	if cleanDials != 1 {
		t.Errorf("clean worker redialed %d times; its route should have survived", cleanDials-1)
	}

	// Exact accounting: everything the hub-side endpoints ever received is
	// either a consumed hello, relayed ingress, a counted corrupt frame, or
	// a rejected handshake; everything they sent is relayed egress.
	var endRecv, endSent int64
	for _, w := range workers {
		w.mu.Lock()
		for _, c := range w.hubEnds {
			endRecv += c.Stats().BytesRecv()
			endSent += c.Stats().BytesSent()
		}
		w.mu.Unlock()
	}
	var acct int64
	for name := range workers {
		st, _ := hub.WorkerStats(name)
		acct += st.WorkerHelloBytes + st.SupervisorHelloBytes + st.CorruptBytes +
			st.ToWorker.IngressBytes + st.ToSupervisor.IngressBytes
	}
	acct += hub.RejectedHandshakeBytes()
	if endRecv != acct {
		t.Errorf("hub ingress accounting drifted: endpoints received %dB, counters account %dB", endRecv, acct)
	}
	if endSent != hub.RelayedBytes() {
		t.Errorf("hub egress accounting drifted: endpoints sent %dB, RelayedBytes %dB", endSent, hub.RelayedBytes())
	}
}

// TestBrokeredPipelinedSessionAccounting runs a pipelined NI-CBS session
// through the hub on a clean link and pins exact byte accounting across the
// relay hop: per-task outcome bytes plus session overhead plus the hello
// equal the supervisor endpoint's counters even though the hub re-batched
// the frames in between, and each hub direction reconciles with its
// endpoints.
func TestBrokeredPipelinedSessionAccounting(t *testing.T) {
	hub := NewBrokerHub()
	defer hub.Close()

	p, err := NewParticipant("p", HonestFactory)
	if err != nil {
		t.Fatalf("NewParticipant: %v", err)
	}
	hubDown, partConn := transport.Pipe(transport.WithBuffer(8))
	if err := HelloWorker(partConn, "p"); err != nil {
		t.Fatalf("HelloWorker: %v", err)
	}
	if err := hub.Attach(hubDown); err != nil {
		t.Fatalf("Attach worker: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- p.Serve(partConn) }()

	supConn, hubUp := transport.Pipe(transport.WithBuffer(8))
	if err := HelloSupervisor(supConn, "p"); err != nil {
		t.Fatalf("HelloSupervisor: %v", err)
	}
	// A small send delay on the hub→supervisor leg queues return frames
	// behind the forwarder so the re-batching path actually runs.
	if err := hub.Attach(transport.WithLatency(hubUp, 200*time.Microsecond)); err != nil {
		t.Fatalf("Attach supervisor: %v", err)
	}

	sup, err := NewSupervisor(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeNICBS, M: 8, ChainIters: 1}, Seed: 17})
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	sess, err := sup.OpenSession(supConn, 4)
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	const tasks = 6
	outcomes := make([]*TaskOutcome, tasks)
	var wg sync.WaitGroup
	for i := 0; i < tasks; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			task := Task{ID: uint64(i), Start: uint64(i) * 256, N: 256, Workload: "synthetic", Seed: 5}
			outcome, err := sess.RunTask(task)
			if err != nil {
				t.Errorf("session task %d: %v", i, err)
				return
			}
			outcomes[i] = outcome
		}(i)
	}
	wg.Wait()
	if err := sess.Close(); err != nil {
		t.Fatalf("session close: %v", err)
	}
	_ = supConn.Close()
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if err := hub.Close(); err != nil {
		t.Fatalf("hub close: %v", err)
	}

	var taskSent, taskRecv int64
	for i, o := range outcomes {
		if o == nil {
			t.Fatalf("task %d has no outcome", i)
		}
		if !o.Verdict.Accepted {
			t.Errorf("honest task %d rejected: %s", i, o.Verdict.Reason)
		}
		taskSent += o.BytesSent
		taskRecv += o.BytesRecv
	}
	ovSent, ovRecv := sess.OverheadBytes()
	helloSize := transport.Message{Type: msgHello, Payload: encodeHello(helloMsg{Role: helloRoleSupervisor, Worker: "p"})}.FrameSize()
	if got, want := supConn.Stats().BytesSent(), taskSent+ovSent+helloSize; got != want {
		t.Errorf("supervisor sent %dB; tasks+overhead+hello = %dB", got, want)
	}
	if got, want := supConn.Stats().BytesRecv(), taskRecv+ovRecv; got != want {
		t.Errorf("supervisor received %dB; tasks+overhead = %dB", got, want)
	}

	st, _ := hub.WorkerStats("p")
	if got, want := supConn.Stats().BytesSent(), st.SupervisorHelloBytes+st.ToWorker.IngressBytes; got != want {
		t.Errorf("hub up-ingress %dB does not reconcile with supervisor sent %dB", want, got)
	}
	if got, want := partConn.Stats().BytesRecv(), st.ToWorker.EgressBytes; got != want {
		t.Errorf("hub down-egress %dB does not reconcile with participant received %dB", want, got)
	}
	if got, want := partConn.Stats().BytesSent(), st.WorkerHelloBytes+st.ToSupervisor.IngressBytes; got != want {
		t.Errorf("hub down-ingress %dB does not reconcile with participant sent %dB", want, got)
	}
	if got, want := supConn.Stats().BytesRecv(), st.ToSupervisor.EgressBytes; got != want {
		t.Errorf("hub up-egress %dB does not reconcile with supervisor received %dB", want, got)
	}
	if st.ToSupervisor.EgressMsgs > st.ToSupervisor.IngressMsgs {
		t.Errorf("re-batching grew the frame count: %d egress for %d ingress", st.ToSupervisor.EgressMsgs, st.ToSupervisor.IngressMsgs)
	}
}

// TestReplaceReplicaAllowsDeadMembersOwnWorker pins identity-keyed
// re-placement: a replica vacating its dead slot must be allowed onto a
// different route to that same worker — the dead member's own identity is
// not a sibling — instead of being declared lost while a pairwise-distinct
// placement exists.
func TestReplaceReplicaAllowsDeadMembersOwnWorker(t *testing.T) {
	pool, err := NewSupervisorPool(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeDoubleCheck, M: 1}}, 4)
	if err != nil {
		t.Fatalf("NewSupervisorPool: %v", err)
	}
	_, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Four routes to three workers: two of them reach worker A.
	ids := make(map[transport.Conn]string)
	slots := make([]*connSlot, 4)
	for i, worker := range []string{"A", "B", "C", "A"} {
		conn, _ := transport.Pipe()
		ids[conn] = worker
		slots[i] = newConnSlot(conn, nil)
	}
	cfg := streamConfig{identity: func(c transport.Conn) string { return ids[c] }}
	d := newDispatcher(pool, &cfg, cancel)
	d.allSlots = slots

	grp := &replicaGroup{
		task: poolTasks(1, 64)[0],
		rdv:  newReplicaRendezvous(3),
		// Pre-placed on the first route to each worker: A, B, C.
		slots: []*connSlot{slots[0], slots[1], slots[2]},
	}
	d.groups = append(d.groups, grp)

	d.mu.Lock()
	d.dead[slots[0]] = true
	d.replaceReplicaLocked(ticket{task: grp.task, grp: grp, repIdx: 0}, slots[0])
	pinned := len(d.pinned[slots[3]])
	d.mu.Unlock()

	if grp.rdv.ready() {
		t.Fatal("replica declared lost although the second route to worker A was free")
	}
	if grp.slots[0] != slots[3] {
		t.Fatalf("replica re-placed on slot %v, want the surviving route to worker A", grp.slots[0])
	}
	if pinned != 1 {
		t.Fatalf("replacement ticket not pinned to the new slot (%d pinned)", pinned)
	}
	// A worker that IS still a live sibling must stay vetoed: kill B's
	// slot too. The only live candidates route to A (now hosting replica
	// 0) and C (hosting replica 2), so replica 1 must be declared lost —
	// its slot entry untouched — rather than placed on a sibling's worker.
	d.mu.Lock()
	d.dead[slots[1]] = true
	d.replaceReplicaLocked(ticket{task: grp.task, grp: grp, repIdx: 1}, slots[1])
	moved := grp.slots[1]
	d.mu.Unlock()
	if moved != slots[1] {
		t.Fatalf("replica 1 re-placed onto a sibling's worker: %v", moved)
	}
}

// TestRunSimBrokeredFaultyMatchesClean is the resume-through-relay
// acceptance test: a pipelined run routed through the broker hub over a
// faulty supervisor↔hub leg (drops and garbles forcing redials) must
// produce verdicts and reports byte-identical to a clean direct run with
// the same seeds.
func TestRunSimBrokeredFaultyMatchesClean(t *testing.T) {
	base := SimConfig{
		Spec:              SchemeSpec{Kind: SchemeCBS, M: 14},
		Workload:          "synthetic",
		Seed:              21,
		TaskSize:          128,
		Tasks:             8,
		SemiHonest:        1,
		HonestyRatio:      0.5,
		CrossCheckReports: true,
		PipelineWindow:    3,
	}
	clean, err := RunSim(base)
	if err != nil {
		t.Fatalf("clean direct RunSim: %v", err)
	}

	faulty := base
	faulty.Broker = true
	faulty.DropProb = 0.03
	faulty.GarbleProb = 0.12
	faulty.ReconnectLimit = 200
	faulty.FaultRecvTimeout = 250 * time.Millisecond
	report, err := RunSim(faulty)
	if err != nil {
		t.Fatalf("faulty brokered RunSim: %v", err)
	}

	if report.Participants[0].Reconnects < 1 {
		t.Fatalf("no redial-through-broker was forced; the test proves nothing")
	}
	if !report.Brokered || report.BrokerRelayedMsgs == 0 || report.BrokerRelayedBytes == 0 {
		t.Fatalf("broker accounting empty: %+v", report)
	}
	if report.TasksAssigned != base.Tasks {
		t.Errorf("brokered faulty run completed %d tasks, want %d", report.TasksAssigned, base.Tasks)
	}
	if !reflect.DeepEqual(clean.TaskVerdicts, report.TaskVerdicts) {
		t.Errorf("verdicts diverge through the relay:\nclean:    %+v\nbrokered: %+v", clean.TaskVerdicts, report.TaskVerdicts)
	}
	if !reflect.DeepEqual(clean.Reports, report.Reports) {
		t.Errorf("report streams diverge: clean %d reports, brokered %d", len(clean.Reports), len(report.Reports))
	}
	if clean.HonestAccused != report.HonestAccused {
		t.Errorf("accusations diverge: clean %d, brokered %d", clean.HonestAccused, report.HonestAccused)
	}
}

// TestRunSimBrokeredReplicatedFaultyMatchesClean is the issue's acceptance
// bar: a pipelined double-check run through the broker with drops, garbles,
// and reconnects produces verdicts byte-identical to the clean direct
// serial run, and the verdict-ack machinery still converges the
// participants' own counters through the relay.
func TestRunSimBrokeredReplicatedFaultyMatchesClean(t *testing.T) {
	base := SimConfig{
		Spec:         SchemeSpec{Kind: SchemeDoubleCheck, M: 1},
		Workload:     "synthetic",
		Seed:         29,
		TaskSize:     96,
		Tasks:        6,
		Honest:       2,
		SemiHonest:   2,
		HonestyRatio: 0.4,
		Replicas:     3,
	}
	clean, err := RunSim(base)
	if err != nil {
		t.Fatalf("clean direct serial RunSim: %v", err)
	}

	faulty := base
	faulty.Broker = true
	faulty.PipelineWindow = 3
	faulty.DropProb = 0.03
	faulty.GarbleProb = 0.1
	faulty.ReconnectLimit = 200
	faulty.FaultRecvTimeout = 250 * time.Millisecond
	report, err := RunSim(faulty)
	if err != nil {
		t.Fatalf("faulty brokered pipelined RunSim: %v", err)
	}

	reconnects := 0
	for _, p := range report.Participants {
		reconnects += p.Reconnects
	}
	if reconnects == 0 {
		t.Fatalf("no redial-through-broker was forced; the test proves nothing")
	}
	if report.TasksAssigned != clean.TasksAssigned {
		t.Errorf("brokered run assigned %d replica executions, clean %d", report.TasksAssigned, clean.TasksAssigned)
	}
	if !reflect.DeepEqual(clean.TaskVerdicts, report.TaskVerdicts) {
		t.Errorf("verdicts diverge through the relay:\nclean:    %+v\nbrokered: %+v", clean.TaskVerdicts, report.TaskVerdicts)
	}
	if !reflect.DeepEqual(clean.Reports, report.Reports) {
		t.Errorf("report streams diverge: clean %d reports, brokered %d", len(clean.Reports), len(report.Reports))
	}
	for i := range clean.Participants {
		c, f := clean.Participants[i], report.Participants[i]
		if c.Tasks != f.Tasks || c.Accepted != f.Accepted || c.Rejected != f.Rejected {
			t.Errorf("participant %s counters lag through the relay: clean tasks/acc/rej %d/%d/%d, brokered %d/%d/%d",
				c.ID, c.Tasks, c.Accepted, c.Rejected, f.Tasks, f.Accepted, f.Rejected)
		}
	}
}

// TestRunSimBrokeredCleanMatchesDirect pins relay transparency without
// faults, including the dialogue (non-pipelined) wire mode: routing a run
// through the hub changes no verdict, report, or participant counter.
func TestRunSimBrokeredCleanMatchesDirect(t *testing.T) {
	for _, window := range []int{0, 3} {
		base := SimConfig{
			Spec:           SchemeSpec{Kind: SchemeNICBS, M: 12, ChainIters: 1},
			Workload:       "synthetic",
			Seed:           13,
			TaskSize:       128,
			Tasks:          6,
			Honest:         2,
			SemiHonest:     1,
			HonestyRatio:   0.4,
			PipelineWindow: window,
		}
		if window > 0 {
			// Work stealing makes the task→participant pairing scheduling-
			// dependent; a single participant pins it so the full reports
			// can be compared byte for byte.
			base.Honest, base.SemiHonest = 0, 1
		}
		direct, err := RunSim(base)
		if err != nil {
			t.Fatalf("direct RunSim (window %d): %v", window, err)
		}
		brokered := base
		brokered.Broker = true
		report, err := RunSim(brokered)
		if err != nil {
			t.Fatalf("brokered RunSim (window %d): %v", window, err)
		}
		if !reflect.DeepEqual(direct.TaskVerdicts, report.TaskVerdicts) {
			t.Errorf("window %d: verdicts diverge through the relay", window)
		}
		if !reflect.DeepEqual(direct.Reports, report.Reports) {
			t.Errorf("window %d: reports diverge through the relay", window)
		}
		for i := range direct.Participants {
			d, b := direct.Participants[i], report.Participants[i]
			if d.Tasks != b.Tasks || d.Accepted != b.Accepted || d.Rejected != b.Rejected {
				t.Errorf("window %d: participant %s counters diverge: direct %d/%d/%d, brokered %d/%d/%d",
					window, d.ID, d.Tasks, d.Accepted, d.Rejected, b.Tasks, b.Accepted, b.Rejected)
			}
		}
		if !report.Brokered || report.BrokerRelayedMsgs == 0 {
			t.Errorf("window %d: broker accounting empty", window)
		}
	}
}

// TestBrokerEvictsDeadRegisteredWorker pins the eager-eviction behaviour: a
// worker link that dies while registered and unbound is evicted by its
// monitor as soon as the read error surfaces, so a supervisor arriving
// later waits for a live registration (and times out) instead of binding a
// corpse and failing mid-exchange.
func TestBrokerEvictsDeadRegisteredWorker(t *testing.T) {
	hub := NewBrokerHub(WithBindTimeout(300 * time.Millisecond))
	defer func() {
		if err := hub.Close(); err != nil {
			t.Errorf("hub close: %v", err)
		}
	}()

	hubDown, partConn := transport.Pipe(transport.WithBuffer(8))
	if err := HelloWorker(partConn, "w1"); err != nil {
		t.Fatalf("HelloWorker: %v", err)
	}
	if err := hub.Attach(hubDown); err != nil {
		t.Fatalf("Attach worker: %v", err)
	}

	// Kill the worker endpoint while its link sits parked in the registry.
	_ = partConn.Close()

	deadline := time.Now().Add(2 * time.Second)
	for hub.EvictedWorkerLinks() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("dead registered link was never evicted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := hub.EvictedWorkerLinks(); got != 1 {
		t.Fatalf("EvictedWorkerLinks = %d, want 1", got)
	}

	// A supervisor naming the evicted identity must not bind: the hub waits
	// out the bind timeout and closes the supervisor link, which is how the
	// failure reaches the dialing peer.
	supConn, hubUp := transport.Pipe(transport.WithBuffer(8))
	if err := HelloSupervisor(supConn, "w1"); err != nil {
		t.Fatalf("HelloSupervisor: %v", err)
	}
	if err := hub.Attach(hubUp); err != nil {
		t.Fatalf("Attach supervisor: %v", err)
	}
	if _, err := supConn.Recv(); err == nil {
		t.Fatal("supervisor bound to an evicted worker link")
	}
}
