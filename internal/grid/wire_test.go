package grid

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestWireDecoderManifestTotal pins the manifest's totality at runtime too:
// every message kind from msgAssign through msgCredit has an entry. The
// static side — each named decoder existing and being fuzzed — is enforced
// by gridlint's wireexhaustive analyzer.
func TestWireDecoderManifestTotal(t *testing.T) {
	for kind := msgAssign; kind <= msgCheckpointAck; kind++ {
		if _, ok := wireDecoderFor[kind]; !ok {
			t.Errorf("wireDecoderFor has no entry for message kind %d", kind)
		}
	}
	if len(wireDecoderFor) != int(msgCheckpointAck-msgAssign)+1 {
		t.Errorf("wireDecoderFor has %d entries, want %d", len(wireDecoderFor), int(msgCheckpointAck-msgAssign)+1)
	}
}

// wireCorpusSeeds returns the committed seed corpus for every FuzzDecode*
// target: real encoder output plus truncated/overflowed adversarial bytes,
// so `go test -fuzz` (and CI's fuzz smoke) starts from structured inputs
// instead of rediscovering the wire format from zero each run.
func wireCorpusSeeds() map[string][][]byte {
	return map[string][][]byte{
		"FuzzDecodeAssignment": {
			encodeAssignment(assignment{
				Task: Task{ID: 3, Start: 64, N: 128, Workload: "synthetic", Seed: 9},
				Spec: SchemeSpec{Kind: SchemeCBS, M: 20},
			}),
			encodeAssignment(assignment{
				Task:         Task{ID: 1, N: 16, Workload: "password", Seed: 2},
				Spec:         SchemeSpec{Kind: SchemeRinger, M: 2},
				RingerImages: [][]byte{{0xde, 0xad}, {}, {0xbe}},
			}),
			{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		},
		"FuzzDecodeReports": {
			encodeReports(nil),
			encodeReports([]Report{{X: 7, S: "hit"}, {X: 0, S: ""}}),
			{0x01},
		},
		"FuzzDecodeChunk": {
			encodeChunk(resultChunk{Seq: 0, Final: false, Data: []byte{1, 2, 3}}),
			encodeChunk(resultChunk{Seq: 17, Final: true, Data: nil}),
			{0x03, 0x02, 0xff},
		},
		"FuzzDecodeResume": {
			encodeResume(resumeMsg{
				Assignment: assignment{
					Task: Task{ID: 5, N: 32, Workload: "synthetic", Seed: 1},
					Spec: SchemeSpec{Kind: SchemeCBS, M: 4},
				},
				HaveCommit: true,
				Chunks:     2,
			}),
			{0x01, 0x00, 0xff},
		},
		"FuzzDecodeVerdict": {
			encodeVerdict(Verdict{Accepted: true}),
			encodeVerdict(Verdict{Reason: "disagrees with replica majority"}),
			{0x01, 0x05, 'a'},
		},
		"FuzzDecodeResults": {
			encodeResults(nil),
			encodeResults([][]byte{{1, 2}, {}, {3}}),
			{0xff, 0xff, 0xff, 0xff, 0x0f},
		},
		"FuzzDecodeHello": {
			encodeHello(helloMsg{Role: helloRoleWorker, Worker: "participant-7"}),
			encodeHello(helloMsg{Role: helloRoleSupervisor, Worker: "p"}),
			encodeHello(helloMsg{Role: helloRoleMux, Worker: "supervisor-0", Route: 0}),
			encodeHello(helloMsg{Role: helloRoleOpen, Worker: "participant-7", Route: 41}),
			encodeHello(helloMsg{Role: helloRoleClose, Worker: "participant-7", Route: 1 << 40}),
			{0x02, 0xff, 0xff, 0x7f},
			{0x05, 0x01, 'w'},
		},
		"FuzzDecodeRouted": {
			encodeRouted([]routedEntry{{Route: 0, Type: msgCommit, Payload: []byte{0xaa, 0xbb}}}),
			encodeRouted([]routedEntry{
				{Route: 3, Type: msgBatch, Payload: nil},
				{Route: 1 << 33, Type: msgVerdict, Payload: []byte{0x01}},
				{Route: 3, Type: msgReports, Payload: []byte{0x00}},
			}),
			{0x01, 0x00, 0x07, 0xff, 0xff, 0xff, 0x0f},
		},
		"FuzzDecodeCredit": {
			encodeCredit(creditMsg{Route: 0, Bytes: 1, Window: 1}),
			encodeCredit(creditMsg{Route: 999, Bytes: 256 << 10, Window: 256 << 10}),
			encodeCredit(creditMsg{Route: 3, Bytes: 32 << 10, Window: maxCreditGrant}),
			{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01, 0x00},
			{0x00, 0x01, 0x00},
		},
		"FuzzDecodeBatch": {
			encodeBatch(nil),
			encodeBatch([]taggedMsg{
				{TaskID: 1, Type: msgCommit, Payload: []byte{0xaa, 0xbb}},
				{TaskID: 2, Type: msgReports, Payload: nil},
			}),
			{0x02, 0x00},
		},
		"FuzzDecodeIndices": {
			encodeIndices(nil),
			encodeIndices([]uint64{0, 1, 1<<63 - 1}),
			{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		},
		"FuzzDecodeWindowCommit": {
			encodeWindowCommit(windowCommitMsg{
				Window:  0,
				Root:    []byte{0xaa, 0xbb, 0xcc, 0xdd},
				TaskIDs: []uint64{0, 1, 2, 3},
				Proofs:  [][]byte{{0x01, 0x02}, nil},
			}),
			encodeWindowCommit(windowCommitMsg{
				Window:  41,
				Root:    make([]byte, 32),
				TaskIDs: []uint64{328, 329},
			}),
			{0x00, 0x00},
			{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		},
		"FuzzDecodeCheckpoint": {
			encodeCheckpoint(checkpointMsg{Seq: 0}),
			encodeCheckpoint(checkpointMsg{Seq: 1 << 40}),
			{0x07, 0x07},
		},
	}
}

// corpusEntry renders one []byte seed in the `go test fuzz v1` file format.
func corpusEntry(seed []byte) string {
	return "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
}

// TestWriteSeedCorpus regenerates the committed corpus files. Gated so a
// plain `go test` never rewrites testdata:
//
//	GRIDCORPUS_WRITE=1 go test ./internal/grid -run TestWriteSeedCorpus
func TestWriteSeedCorpus(t *testing.T) {
	if os.Getenv("GRIDCORPUS_WRITE") == "" {
		t.Skip("set GRIDCORPUS_WRITE=1 to regenerate the seed corpus")
	}
	for target, seeds := range wireCorpusSeeds() {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			name := filepath.Join(dir, fmt.Sprintf("seed-%03d", i))
			if err := os.WriteFile(name, []byte(corpusEntry(seed)), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestSeedCorpusCommitted fails when a fuzz target's committed corpus is
// missing or stale relative to wireCorpusSeeds, so the corpus cannot rot as
// the wire format evolves.
func TestSeedCorpusCommitted(t *testing.T) {
	for target, seeds := range wireCorpusSeeds() {
		dir := filepath.Join("testdata", "fuzz", target)
		for i, seed := range seeds {
			name := filepath.Join(dir, fmt.Sprintf("seed-%03d", i))
			data, err := os.ReadFile(name)
			if err != nil {
				t.Errorf("%s: missing committed corpus file (run GRIDCORPUS_WRITE=1 go test -run TestWriteSeedCorpus): %v", target, err)
				continue
			}
			if string(data) != corpusEntry(seed) {
				t.Errorf("%s: %s is stale; regenerate with GRIDCORPUS_WRITE=1 go test -run TestWriteSeedCorpus", target, name)
			}
		}
	}
}
