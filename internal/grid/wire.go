package grid

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Message kinds on the supervisor↔participant wire. One byte each, carried
// in transport.Message.Type.
const (
	// msgAssign carries a Task, a SchemeSpec, and (ringer scheme only) the
	// planted images. Supervisor → participant.
	msgAssign uint8 = iota + 1
	// msgCommit carries the core.Commitment. Participant → supervisor.
	msgCommit
	// msgChallenge carries the core.Challenge. Supervisor → participant.
	msgChallenge
	// msgProofs carries the core.Response. Participant → supervisor.
	msgProofs
	// msgReports carries the screened results. Participant → supervisor.
	msgReports
	// msgResults carries a full result upload (naive and double-check
	// schemes). Participant → supervisor.
	msgResults
	// msgRingerHits carries the inputs matching planted ringer images.
	// Participant → supervisor.
	msgRingerHits
	// msgVerdict carries the supervisor's ruling. Supervisor → participant.
	msgVerdict
	// msgBatch carries several task-tagged sub-messages in one frame so
	// pipelined sessions can interleave tasks on one connection and coalesce
	// small messages (multi-assignment and multi-proof frames are both just
	// batches of the corresponding tagged kinds). Either direction.
	msgBatch
	// msgResultChunk carries one slice of a chunked full-result upload:
	// uploads whose encoding exceeds uploadChunkBytes travel as an ordered
	// chunk sequence instead of a single frame, so arbitrarily large tasks
	// fit under transport.MaxFrameBytes and the session batch writer can
	// interleave other tasks' messages between chunks. Participant →
	// supervisor.
	msgResultChunk
	// msgResume re-announces a task on a replacement connection: it carries
	// the original assignment plus the supervisor's per-task protocol
	// position (which participant messages it already holds, how many upload
	// chunks arrived, and the challenge it already issued) so the
	// participant can re-derive its deterministic state and replay only what
	// is missing. Supervisor → participant.
	msgResume
	// msgVerdictAck acknowledges a delivered verdict (empty payload). A
	// verdict frame lost to a transport fault would otherwise leave the
	// participant's accepted/rejected counters stale forever — the
	// supervisor treats a task as finished only once the verdict is acked,
	// and re-delivers unacked verdicts during the msgResume handshake.
	// Participant → supervisor.
	msgVerdictAck
	// msgHello is the broker-hub identity handshake: the first frame on any
	// link attached to a BrokerHub names the link's role and worker. A
	// worker-role hello registers the participant link under that identity;
	// a supervisor-role hello asks the hub to bind the link to the named
	// registered worker, which is what makes routing sticky across redials
	// (a replacement supervisor connection reaches the same participant, so
	// the msgResume machinery works through the relay). The mux/open/close
	// roles ride the same frame kind: a mux-role hello attaches a
	// multiplexed supervisor link, and open/close hellos manage that link's
	// routes dynamically. Consumed by the hub, never relayed. Either
	// endpoint → hub (close notices also hub → supervisor).
	msgHello
	// msgRouted is the mux envelope of a multiplexed supervisor↔hub link:
	// one physical frame carrying one or more route-tagged inner frames, so
	// all of a supervisor's worker routes share a single connection and the
	// hub's writer can coalesce traffic across workers, not just tasks.
	// Either direction on a muxed link.
	msgRouted
	// msgCredit grants receive-window bytes back to a route's sender: the
	// receiver returns credit as a route's queued frames drain toward its
	// consumer, so one slow consumer exerts backpressure on its own route
	// instead of ballooning receiver memory or head-of-line-blocking the
	// shared link. Flows in both directions of a muxed link — hub →
	// supervisor as the worker-side writer drains a route's toWorker queue,
	// and supervisor → hub as the route consumer drains its inbox. Each
	// grant also advertises the granter's current adaptive window so the
	// peer can surface it in stats.
	msgCredit
	// msgWindowCommit carries a participant's rolling commitment for one
	// settled window of a long-horizon stream: the Merkle root over the
	// window's per-task digests, the task IDs in commitment order, and the
	// membership proofs for the hash-chain-derived sample indices. Travels
	// as a ctrl-tagged batch sub-message (TaskID == ctrlTaskID).
	// Participant → supervisor.
	msgWindowCommit
	// msgCheckpoint orders the participant to write its durable state
	// (counters, window buffer, chain cursor, stream frontier) to its
	// checkpoint file. Sent only at a quiesced stream boundary, as a
	// ctrl-tagged batch sub-message. Supervisor → participant.
	msgCheckpoint
	// msgCheckpointAck confirms the checkpoint file hit disk (empty
	// payload, ctrl-tagged). Participant → supervisor.
	msgCheckpointAck
)

// ctrlTaskID is the reserved task ID that tags session-scoped control
// messages (window commits, checkpoint orders) inside a pipelined batch
// frame. No real task can use it: task IDs are dense indices far below it.
const ctrlTaskID = ^uint64(0)

// wireDecoderFor is the wire manifest: every message kind mapped to the
// function that decodes its payload, "" for kinds whose payload is empty
// (msgVerdictAck) or raw bytes routed without decoding here (msgCommit,
// msgChallenge, msgProofs carry core-layer encodings; msgResultChunk data
// is reassembled before decodeResults sees it — decodeChunk parses the
// chunk envelope). gridlint's wireexhaustive analyzer checks the manifest
// is total and that every named decoder exists and is fuzzed, so adding a
// message kind without wiring up (and fuzzing) its decoder fails CI.
var wireDecoderFor = map[uint8]string{
	msgAssign:        "decodeAssignment",
	msgCommit:        "",
	msgChallenge:     "",
	msgProofs:        "",
	msgReports:       "decodeReports",
	msgResults:       "decodeResults",
	msgRingerHits:    "decodeIndices",
	msgVerdict:       "decodeVerdict",
	msgBatch:         "decodeBatch",
	msgResultChunk:   "decodeChunk",
	msgResume:        "decodeResume",
	msgVerdictAck:    "",
	msgHello:         "decodeHello",
	msgRouted:        "decodeRouted",
	msgCredit:        "decodeCredit",
	msgWindowCommit:  "decodeWindowCommit",
	msgCheckpoint:    "decodeCheckpoint",
	msgCheckpointAck: "",
}

// Hello roles carried in the msgHello payload.
const (
	// helloRoleWorker registers the sending link as the named participant.
	helloRoleWorker uint8 = 1
	// helloRoleSupervisor asks the hub to route the sending link to the
	// named registered participant.
	helloRoleSupervisor uint8 = 2
	// helloRoleMux attaches the sending link as a multiplexed supervisor
	// link carrying many routes; Worker names the supervisor for stats.
	helloRoleMux uint8 = 3
	// helloRoleOpen opens route Route → registered participant Worker on an
	// already-attached muxed link.
	helloRoleOpen uint8 = 4
	// helloRoleClose announces that route Route (bound to Worker) is done:
	// supervisor → hub it means "no more frames for this route", hub →
	// supervisor it means "this route is finished or failed at the hub".
	helloRoleClose uint8 = 5
)

// maxWorkerNameLen bounds the identity string of a hub handshake.
const maxWorkerNameLen = 256

// helloMsg is the decoded msgHello payload. Route is meaningful only for
// the mux-family roles (mux/open/close); the worker and supervisor role
// encodings are byte-identical to the pre-mux wire format.
type helloMsg struct {
	Role   uint8
	Worker string
	Route  uint64
}

func encodeHello(m helloMsg) []byte {
	var buf bytes.Buffer
	buf.WriteByte(m.Role)
	putString(&buf, m.Worker)
	if m.Role >= helloRoleMux {
		putUvarint(&buf, m.Route)
	}
	return buf.Bytes()
}

func decodeHello(payload []byte) (helloMsg, error) {
	var m helloMsg
	r := bytes.NewReader(payload)
	role, err := r.ReadByte()
	if err != nil {
		return m, fmt.Errorf("%w: hello role: %v", ErrBadPayload, err)
	}
	if role < helloRoleWorker || role > helloRoleClose {
		return m, fmt.Errorf("%w: hello role %d", ErrBadPayload, role)
	}
	m.Role = role
	if m.Worker, err = getString(r); err != nil {
		return m, fmt.Errorf("%w: hello worker: %v", ErrBadPayload, err)
	}
	if m.Worker == "" {
		return m, fmt.Errorf("%w: empty hello worker identity", ErrBadPayload)
	}
	if len(m.Worker) > maxWorkerNameLen {
		return m, fmt.Errorf("%w: hello worker identity of %d bytes (max %d)",
			ErrBadPayload, len(m.Worker), maxWorkerNameLen)
	}
	if role >= helloRoleMux {
		if m.Route, err = binary.ReadUvarint(r); err != nil {
			return m, fmt.Errorf("%w: hello route: %v", ErrBadPayload, err)
		}
	}
	if r.Len() != 0 {
		return m, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, r.Len())
	}
	return m, nil
}

// routedEntry is one route-tagged inner frame inside a msgRouted envelope:
// the frame that would have traveled alone on a dedicated per-route link,
// prefixed with the route it belongs to. Envelopes carry no checksum of
// their own — the transport CRC covers the physical frame, and batch inner
// frames keep their session-layer CRC.
type routedEntry struct {
	Route   uint64
	Type    uint8
	Payload []byte
}

// innerFrameSize reports what the inner frame would have cost as a physical
// frame on a dedicated link (transport header + payload). Per-route
// ingress/egress accounting and credit grants on muxed links are all
// denominated in this size so RouteStats stay comparable with legacy
// per-route links and both mux endpoints debit/credit identical amounts.
func (e routedEntry) innerFrameSize() int64 {
	return frameOverheadBytes + int64(len(e.Payload))
}

// frameOverheadBytes mirrors transport.frameOverhead (type byte + length +
// CRC) for inner-frame accounting without exporting transport internals.
const frameOverheadBytes = 9

// maxRoutedEntries bounds the entry count of one envelope, mirroring
// maxBatchMsgs for the same attacker-controlled-count reason.
const maxRoutedEntries = maxBatchMsgs

// encodeRouted writes the envelope in one exact-size allocation; like
// encodeBatch it sits on the relay hot path of every muxed link.
func encodeRouted(entries []routedEntry) []byte {
	size := uvarintLen(uint64(len(entries)))
	for _, e := range entries {
		size += uvarintLen(e.Route) + 1 + uvarintLen(uint64(len(e.Payload))) + len(e.Payload)
	}
	out := make([]byte, size)
	off := binary.PutUvarint(out, uint64(len(entries)))
	for _, e := range entries {
		off += binary.PutUvarint(out[off:], e.Route)
		out[off] = e.Type
		off++
		off += binary.PutUvarint(out[off:], uint64(len(e.Payload)))
		off += copy(out[off:], e.Payload)
	}
	return out
}

// decodeRouted parses a msgRouted envelope. Inner payloads are copied out
// of the envelope (getBytes allocates), so the caller may recycle the
// envelope buffer through the transport payload pool as soon as decode
// returns.
func decodeRouted(payload []byte) ([]routedEntry, error) {
	r := bytes.NewReader(payload)
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("%w: routed count: %v", ErrBadPayload, err)
	}
	if count > maxRoutedEntries {
		return nil, fmt.Errorf("%w: %d routed entries", ErrBadPayload, count)
	}
	if count == 0 {
		return nil, fmt.Errorf("%w: empty routed envelope", ErrBadPayload)
	}
	entries := make([]routedEntry, 0, count)
	for i := uint64(0); i < count; i++ {
		var e routedEntry
		if e.Route, err = binary.ReadUvarint(r); err != nil {
			return nil, fmt.Errorf("%w: routed entry %d route: %v", ErrBadPayload, i, err)
		}
		if e.Type, err = r.ReadByte(); err != nil {
			return nil, fmt.Errorf("%w: routed entry %d type: %v", ErrBadPayload, i, err)
		}
		if e.Payload, err = getBytes(r); err != nil {
			return nil, fmt.Errorf("%w: routed entry %d payload: %v", ErrBadPayload, i, err)
		}
		entries = append(entries, e)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, r.Len())
	}
	return entries, nil
}

// maxCreditGrant bounds a single credit grant so a hostile peer cannot
// overflow the receiver's signed credit balance with a handful of frames.
const maxCreditGrant = 1 << 40

// creditMsg is the decoded msgCredit payload: Bytes of receive window
// granted back to route Route's sender, plus the granter's current
// adaptive Window target. Window is advisory — the receiver of the grant
// surfaces it in stats but never spends it — yet it is still validated,
// because it crosses the trust boundary like every other field.
type creditMsg struct {
	Route  uint64
	Bytes  uint64
	Window uint64
}

func encodeCredit(m creditMsg) []byte {
	var buf bytes.Buffer
	putUvarint(&buf, m.Route)
	putUvarint(&buf, m.Bytes)
	putUvarint(&buf, m.Window)
	return buf.Bytes()
}

func decodeCredit(payload []byte) (creditMsg, error) {
	var m creditMsg
	r := bytes.NewReader(payload)
	var err error
	if m.Route, err = binary.ReadUvarint(r); err != nil {
		return m, fmt.Errorf("%w: credit route: %v", ErrBadPayload, err)
	}
	if m.Bytes, err = binary.ReadUvarint(r); err != nil {
		return m, fmt.Errorf("%w: credit bytes: %v", ErrBadPayload, err)
	}
	if m.Bytes == 0 || m.Bytes > maxCreditGrant {
		return m, fmt.Errorf("%w: credit grant of %d bytes", ErrBadPayload, m.Bytes)
	}
	if m.Window, err = binary.ReadUvarint(r); err != nil {
		return m, fmt.Errorf("%w: credit window: %v", ErrBadPayload, err)
	}
	if m.Window == 0 || m.Window > maxCreditGrant {
		return m, fmt.Errorf("%w: credit window of %d bytes", ErrBadPayload, m.Window)
	}
	if r.Len() != 0 {
		return m, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, r.Len())
	}
	return m, nil
}

// Bounds on a window commit's attacker-controlled counts: a window never
// spans more tasks than one batch frame carries messages, a root is one
// digest, and the proof count is the per-window sample count m.
const (
	maxWindowCommitTasks  = 1 << 16
	maxWindowCommitProofs = 1 << 12
	maxWindowRootLen      = 64
)

// windowCommitMsg is the decoded msgWindowCommit payload: window number,
// the Merkle root over the window's per-task stream digests, the task IDs
// whose digests form the leaves (in leaf order), and the marshaled
// merkle.Proof blobs for the chain-derived sample indices.
type windowCommitMsg struct {
	Window  uint64
	Root    []byte
	TaskIDs []uint64
	Proofs  [][]byte
}

func encodeWindowCommit(m windowCommitMsg) []byte {
	var buf bytes.Buffer
	putUvarint(&buf, m.Window)
	putBytes(&buf, m.Root)
	putUvarint(&buf, uint64(len(m.TaskIDs)))
	for _, id := range m.TaskIDs {
		putUvarint(&buf, id)
	}
	putUvarint(&buf, uint64(len(m.Proofs)))
	for _, p := range m.Proofs {
		putBytes(&buf, p)
	}
	return buf.Bytes()
}

func decodeWindowCommit(payload []byte) (windowCommitMsg, error) {
	var m windowCommitMsg
	r := bytes.NewReader(payload)
	var err error
	if m.Window, err = binary.ReadUvarint(r); err != nil {
		return m, fmt.Errorf("%w: window number: %v", ErrBadPayload, err)
	}
	if m.Root, err = getBytes(r); err != nil {
		return m, fmt.Errorf("%w: window root: %v", ErrBadPayload, err)
	}
	if len(m.Root) == 0 || len(m.Root) > maxWindowRootLen {
		return m, fmt.Errorf("%w: window root of %d bytes", ErrBadPayload, len(m.Root))
	}
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return m, fmt.Errorf("%w: window task count: %v", ErrBadPayload, err)
	}
	if count == 0 || count > maxWindowCommitTasks {
		return m, fmt.Errorf("%w: %d window tasks", ErrBadPayload, count)
	}
	m.TaskIDs = make([]uint64, 0, count)
	for i := uint64(0); i < count; i++ {
		id, err := binary.ReadUvarint(r)
		if err != nil {
			return m, fmt.Errorf("%w: window task %d: %v", ErrBadPayload, i, err)
		}
		m.TaskIDs = append(m.TaskIDs, id)
	}
	proofs, err := binary.ReadUvarint(r)
	if err != nil {
		return m, fmt.Errorf("%w: window proof count: %v", ErrBadPayload, err)
	}
	if proofs > maxWindowCommitProofs {
		return m, fmt.Errorf("%w: %d window proofs", ErrBadPayload, proofs)
	}
	for i := uint64(0); i < proofs; i++ {
		p, err := getBytes(r)
		if err != nil {
			return m, fmt.Errorf("%w: window proof %d: %v", ErrBadPayload, i, err)
		}
		m.Proofs = append(m.Proofs, p)
	}
	if r.Len() != 0 {
		return m, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, r.Len())
	}
	return m, nil
}

// checkpointMsg is the decoded msgCheckpoint payload: the sequence number
// of the checkpoint being ordered, echoed nowhere (the ack is empty) but
// kept on the wire so a misrouted or replayed order is detectable.
type checkpointMsg struct {
	Seq uint64
}

func encodeCheckpoint(m checkpointMsg) []byte {
	var buf bytes.Buffer
	putUvarint(&buf, m.Seq)
	return buf.Bytes()
}

func decodeCheckpoint(payload []byte) (checkpointMsg, error) {
	var m checkpointMsg
	r := bytes.NewReader(payload)
	var err error
	if m.Seq, err = binary.ReadUvarint(r); err != nil {
		return m, fmt.Errorf("%w: checkpoint seq: %v", ErrBadPayload, err)
	}
	if r.Len() != 0 {
		return m, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, r.Len())
	}
	return m, nil
}

// taggedMsg is one task-scoped protocol message inside a pipelined session:
// an ordinary message kind plus the ID of the task that owns it, so both
// endpoints can demultiplex interleaved exchanges.
type taggedMsg struct {
	TaskID  uint64
	Type    uint8
	Payload []byte
}

// wireSize reports the encoded size of the tagged message inside a batch
// frame — the unit of per-task byte accounting in pipelined sessions.
func (t taggedMsg) wireSize() int64 {
	return int64(uvarintLen(t.TaskID)) + 1 +
		int64(uvarintLen(uint64(len(t.Payload)))) + int64(len(t.Payload))
}

// maxBatchMsgs bounds the sub-message count of one batch frame.
const maxBatchMsgs = 1 << 16

// batchChecksumLen is the size of the CRC-32 prefix on every batch frame.
// Sessions are the layer that survives lossy links, so their frames carry an
// integrity check: a garbled frame fails the checksum and is handled as a
// connection-level fault (quarantine and resume) instead of masquerading as
// a peer protocol violation.
const batchChecksumLen = 4

// encodeBatch writes the frame in one exact-size allocation: wireSize is an
// exact encoder-length oracle, so no bytes.Buffer growth, no checksum
// placeholder, and no copy-out are needed. Batch encoding sits on the flush
// hot path of every pipelined session.
func encodeBatch(msgs []taggedMsg) []byte {
	size := batchChecksumLen + uvarintLen(uint64(len(msgs)))
	for _, m := range msgs {
		size += int(m.wireSize())
	}
	out := make([]byte, size)
	off := batchChecksumLen
	off += binary.PutUvarint(out[off:], uint64(len(msgs)))
	for _, m := range msgs {
		off += binary.PutUvarint(out[off:], m.TaskID)
		out[off] = m.Type
		off++
		off += binary.PutUvarint(out[off:], uint64(len(m.Payload)))
		off += copy(out[off:], m.Payload)
	}
	binary.LittleEndian.PutUint32(out[:batchChecksumLen], crc32.ChecksumIEEE(out[batchChecksumLen:]))
	return out
}

func decodeBatch(payload []byte) ([]taggedMsg, error) {
	if len(payload) < batchChecksumLen {
		return nil, fmt.Errorf("%w: batch frame of %d bytes", ErrFrameCorrupt, len(payload))
	}
	want := binary.LittleEndian.Uint32(payload[:batchChecksumLen])
	if got := crc32.ChecksumIEEE(payload[batchChecksumLen:]); got != want {
		return nil, fmt.Errorf("%w: batch checksum %08x, want %08x", ErrFrameCorrupt, got, want)
	}
	r := bytes.NewReader(payload[batchChecksumLen:])
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("%w: batch count: %v", ErrBadPayload, err)
	}
	if count > maxBatchMsgs {
		return nil, fmt.Errorf("%w: %d batched messages", ErrBadPayload, count)
	}
	if count == 0 {
		if r.Len() != 0 {
			return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, r.Len())
		}
		return nil, nil
	}
	msgs := make([]taggedMsg, 0, count)
	for i := uint64(0); i < count; i++ {
		id, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("%w: batch message %d task id: %v", ErrBadPayload, i, err)
		}
		typ, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: batch message %d type: %v", ErrBadPayload, i, err)
		}
		inner, err := getBytes(r)
		if err != nil {
			return nil, fmt.Errorf("%w: batch message %d payload: %v", ErrBadPayload, i, err)
		}
		msgs = append(msgs, taggedMsg{TaskID: id, Type: typ, Payload: inner})
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, r.Len())
	}
	return msgs, nil
}

// assignment is the decoded msgAssign payload.
type assignment struct {
	Task         Task
	Spec         SchemeSpec
	RingerImages [][]byte
}

func encodeAssignment(a assignment) []byte {
	var buf bytes.Buffer
	putUvarint(&buf, a.Task.ID)
	putUvarint(&buf, a.Task.Start)
	putUvarint(&buf, a.Task.N)
	putString(&buf, a.Task.Workload)
	putUvarint(&buf, a.Task.Seed)
	buf.WriteByte(byte(a.Spec.Kind))
	putUvarint(&buf, uint64(a.Spec.M))
	putUvarint(&buf, uint64(a.Spec.ChainIters))
	putUvarint(&buf, uint64(a.Spec.SubtreeHeight))
	putUvarint(&buf, uint64(a.Spec.WindowTasks))
	putUvarint(&buf, uint64(a.Spec.WindowSamples))
	putUvarint(&buf, uint64(len(a.RingerImages)))
	for _, img := range a.RingerImages {
		putBytes(&buf, img)
	}
	return buf.Bytes()
}

func decodeAssignment(payload []byte) (assignment, error) {
	var a assignment
	r := bytes.NewReader(payload)
	var err error
	if a.Task.ID, err = binary.ReadUvarint(r); err != nil {
		return a, fmt.Errorf("%w: task id: %v", ErrBadPayload, err)
	}
	if a.Task.Start, err = binary.ReadUvarint(r); err != nil {
		return a, fmt.Errorf("%w: task start: %v", ErrBadPayload, err)
	}
	if a.Task.N, err = binary.ReadUvarint(r); err != nil {
		return a, fmt.Errorf("%w: task n: %v", ErrBadPayload, err)
	}
	if a.Task.Workload, err = getString(r); err != nil {
		return a, fmt.Errorf("%w: workload: %v", ErrBadPayload, err)
	}
	if a.Task.Seed, err = binary.ReadUvarint(r); err != nil {
		return a, fmt.Errorf("%w: seed: %v", ErrBadPayload, err)
	}
	kind, err := r.ReadByte()
	if err != nil {
		return a, fmt.Errorf("%w: scheme kind: %v", ErrBadPayload, err)
	}
	a.Spec.Kind = SchemeKind(kind)
	m, err := binary.ReadUvarint(r)
	if err != nil {
		return a, fmt.Errorf("%w: m: %v", ErrBadPayload, err)
	}
	a.Spec.M = int(m)
	iters, err := binary.ReadUvarint(r)
	if err != nil {
		return a, fmt.Errorf("%w: chain iters: %v", ErrBadPayload, err)
	}
	a.Spec.ChainIters = int(iters)
	ell, err := binary.ReadUvarint(r)
	if err != nil {
		return a, fmt.Errorf("%w: subtree height: %v", ErrBadPayload, err)
	}
	a.Spec.SubtreeHeight = int(ell)
	wt, err := binary.ReadUvarint(r)
	if err != nil {
		return a, fmt.Errorf("%w: window tasks: %v", ErrBadPayload, err)
	}
	if wt > maxWindowCommitTasks {
		return a, fmt.Errorf("%w: window of %d tasks", ErrBadPayload, wt)
	}
	a.Spec.WindowTasks = int(wt)
	ws, err := binary.ReadUvarint(r)
	if err != nil {
		return a, fmt.Errorf("%w: window samples: %v", ErrBadPayload, err)
	}
	if ws > maxWindowCommitProofs {
		return a, fmt.Errorf("%w: %d window samples", ErrBadPayload, ws)
	}
	a.Spec.WindowSamples = int(ws)
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return a, fmt.Errorf("%w: ringer count: %v", ErrBadPayload, err)
	}
	if count > 1<<20 {
		return a, fmt.Errorf("%w: %d ringer images", ErrBadPayload, count)
	}
	for i := uint64(0); i < count; i++ {
		img, err := getBytes(r)
		if err != nil {
			return a, fmt.Errorf("%w: ringer image %d: %v", ErrBadPayload, i, err)
		}
		a.RingerImages = append(a.RingerImages, img)
	}
	if r.Len() != 0 {
		return a, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, r.Len())
	}
	return a, nil
}

func encodeReports(reports []Report) []byte {
	var buf bytes.Buffer
	putUvarint(&buf, uint64(len(reports)))
	for _, rep := range reports {
		putUvarint(&buf, rep.X)
		putString(&buf, rep.S)
	}
	return buf.Bytes()
}

func decodeReports(payload []byte) ([]Report, error) {
	r := bytes.NewReader(payload)
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("%w: report count: %v", ErrBadPayload, err)
	}
	if count > 1<<24 {
		return nil, fmt.Errorf("%w: %d reports", ErrBadPayload, count)
	}
	reports := make([]Report, 0, count)
	for i := uint64(0); i < count; i++ {
		x, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("%w: report %d input: %v", ErrBadPayload, i, err)
		}
		s, err := getString(r)
		if err != nil {
			return nil, fmt.Errorf("%w: report %d string: %v", ErrBadPayload, i, err)
		}
		reports = append(reports, Report{X: x, S: s})
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, r.Len())
	}
	return reports, nil
}

func encodeResults(results [][]byte) []byte {
	var buf bytes.Buffer
	putUvarint(&buf, uint64(len(results)))
	for _, v := range results {
		putBytes(&buf, v)
	}
	return buf.Bytes()
}

func decodeResults(payload []byte) ([][]byte, error) {
	r := bytes.NewReader(payload)
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("%w: result count: %v", ErrBadPayload, err)
	}
	if count > maxTaskSize {
		return nil, fmt.Errorf("%w: %d results", ErrBadPayload, count)
	}
	results := make([][]byte, 0, count)
	for i := uint64(0); i < count; i++ {
		v, err := getBytes(r)
		if err != nil {
			return nil, fmt.Errorf("%w: result %d: %v", ErrBadPayload, i, err)
		}
		results = append(results, v)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, r.Len())
	}
	return results, nil
}

// uploadChunkBytes is both the threshold above which a full-result upload
// is chunked and the data size of each chunk. It is far below
// transport.MaxFrameBytes so arbitrarily large result sets fit, and small
// enough that the session batch writer can interleave other tasks' messages
// between chunks instead of stalling the link behind one huge frame. A
// variable so tests can exercise the chunk path without gigabyte uploads.
var uploadChunkBytes = 4 << 20

// maxUploadBytes bounds the reassembled size of a chunked upload, the
// analogue of the per-payload decode limits for attacker-controlled chunk
// streams.
const maxUploadBytes int64 = 1 << 31

// resultChunk is one decoded msgResultChunk: the Seq-th slice of the encoded
// result vector, with Final marking the last chunk.
type resultChunk struct {
	Seq   uint64
	Final bool
	Data  []byte
}

func encodeChunk(c resultChunk) []byte {
	var buf bytes.Buffer
	putUvarint(&buf, c.Seq)
	if c.Final {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
	putBytes(&buf, c.Data)
	return buf.Bytes()
}

func decodeChunk(payload []byte) (resultChunk, error) {
	var c resultChunk
	r := bytes.NewReader(payload)
	var err error
	if c.Seq, err = binary.ReadUvarint(r); err != nil {
		return c, fmt.Errorf("%w: chunk seq: %v", ErrBadPayload, err)
	}
	flag, err := r.ReadByte()
	if err != nil {
		return c, fmt.Errorf("%w: chunk final flag: %v", ErrBadPayload, err)
	}
	if flag > 1 {
		return c, fmt.Errorf("%w: chunk final flag %d", ErrBadPayload, flag)
	}
	c.Final = flag == 1
	if c.Data, err = getBytes(r); err != nil {
		return c, fmt.Errorf("%w: chunk data: %v", ErrBadPayload, err)
	}
	if r.Len() != 0 {
		return c, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, r.Len())
	}
	return c, nil
}

// resumeMsg is the decoded msgResume payload: the original assignment plus
// the supervisor's record of the exchange so far, from which a participant
// re-derives its deterministic state and replays only what is missing.
type resumeMsg struct {
	Assignment assignment
	// HaveCommit/HaveReports/HaveProofs/HaveHits record which
	// participant→supervisor messages the supervisor already holds.
	HaveCommit, HaveReports, HaveProofs, HaveHits bool
	// Chunks counts upload chunks already received; ResultsDone marks a
	// complete upload (chunked or single-frame).
	Chunks      uint64
	ResultsDone bool
	// Challenge replays the marshaled challenge the supervisor already
	// issued (interactive CBS); nil when none was sent.
	Challenge []byte
}

// Flag bits of the resumeMsg wire encoding.
const (
	resumeHaveCommit = 1 << iota
	resumeHaveReports
	resumeHaveProofs
	resumeHaveHits
	resumeResultsDone
	resumeHasChallenge
)

func encodeResume(m resumeMsg) []byte {
	var buf bytes.Buffer
	putBytes(&buf, encodeAssignment(m.Assignment))
	var flags byte
	if m.HaveCommit {
		flags |= resumeHaveCommit
	}
	if m.HaveReports {
		flags |= resumeHaveReports
	}
	if m.HaveProofs {
		flags |= resumeHaveProofs
	}
	if m.HaveHits {
		flags |= resumeHaveHits
	}
	if m.ResultsDone {
		flags |= resumeResultsDone
	}
	if m.Challenge != nil {
		flags |= resumeHasChallenge
	}
	buf.WriteByte(flags)
	putUvarint(&buf, m.Chunks)
	if m.Challenge != nil {
		putBytes(&buf, m.Challenge)
	}
	return buf.Bytes()
}

func decodeResume(payload []byte) (resumeMsg, error) {
	var m resumeMsg
	r := bytes.NewReader(payload)
	assignRaw, err := getBytes(r)
	if err != nil {
		return m, fmt.Errorf("%w: resume assignment: %v", ErrBadPayload, err)
	}
	if m.Assignment, err = decodeAssignment(assignRaw); err != nil {
		return m, err
	}
	flags, err := r.ReadByte()
	if err != nil {
		return m, fmt.Errorf("%w: resume flags: %v", ErrBadPayload, err)
	}
	if flags >= resumeHasChallenge<<1 {
		return m, fmt.Errorf("%w: resume flags %#x", ErrBadPayload, flags)
	}
	m.HaveCommit = flags&resumeHaveCommit != 0
	m.HaveReports = flags&resumeHaveReports != 0
	m.HaveProofs = flags&resumeHaveProofs != 0
	m.HaveHits = flags&resumeHaveHits != 0
	m.ResultsDone = flags&resumeResultsDone != 0
	if m.Chunks, err = binary.ReadUvarint(r); err != nil {
		return m, fmt.Errorf("%w: resume chunk count: %v", ErrBadPayload, err)
	}
	if flags&resumeHasChallenge != 0 {
		if m.Challenge, err = getBytes(r); err != nil {
			return m, fmt.Errorf("%w: resume challenge: %v", ErrBadPayload, err)
		}
	}
	if r.Len() != 0 {
		return m, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, r.Len())
	}
	return m, nil
}

func encodeIndices(indices []uint64) []byte {
	var buf bytes.Buffer
	putUvarint(&buf, uint64(len(indices)))
	for _, idx := range indices {
		putUvarint(&buf, idx)
	}
	return buf.Bytes()
}

func decodeIndices(payload []byte) ([]uint64, error) {
	r := bytes.NewReader(payload)
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("%w: index count: %v", ErrBadPayload, err)
	}
	if count > maxTaskSize {
		return nil, fmt.Errorf("%w: %d indices", ErrBadPayload, count)
	}
	indices := make([]uint64, 0, count)
	for i := uint64(0); i < count; i++ {
		idx, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("%w: index %d: %v", ErrBadPayload, i, err)
		}
		indices = append(indices, idx)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, r.Len())
	}
	return indices, nil
}

func encodeVerdict(v Verdict) []byte {
	var buf bytes.Buffer
	if v.Accepted {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
	putString(&buf, v.Reason)
	return buf.Bytes()
}

func decodeVerdict(payload []byte) (Verdict, error) {
	r := bytes.NewReader(payload)
	flag, err := r.ReadByte()
	if err != nil {
		return Verdict{}, fmt.Errorf("%w: verdict flag: %v", ErrBadPayload, err)
	}
	reason, err := getString(r)
	if err != nil {
		return Verdict{}, fmt.Errorf("%w: verdict reason: %v", ErrBadPayload, err)
	}
	if r.Len() != 0 {
		return Verdict{}, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, r.Len())
	}
	return Verdict{Accepted: flag == 1, Reason: reason}, nil
}

func putUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	buf.Write(tmp[:n])
}

func putBytes(buf *bytes.Buffer, b []byte) {
	putUvarint(buf, uint64(len(b)))
	buf.Write(b)
}

func putString(buf *bytes.Buffer, s string) {
	putUvarint(buf, uint64(len(s)))
	buf.WriteString(s)
}

func getBytes(r *bytes.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Len()) {
		return nil, fmt.Errorf("declared %d bytes, %d remain", n, r.Len())
	}
	out := make([]byte, n)
	// io.ReadFull, unlike a single Read call, loops over short reads and is
	// a no-op for zero-length fields, so this stays correct for any
	// io.Reader-backed source, not just bytes.Reader.
	if _, err := io.ReadFull(r, out); err != nil {
		return nil, err
	}
	return out, nil
}

// uvarintLen reports how many bytes v occupies in uvarint encoding.
func uvarintLen(v uint64) int {
	var tmp [binary.MaxVarintLen64]byte
	return binary.PutUvarint(tmp[:], v)
}

func getString(r *bytes.Reader) (string, error) {
	b, err := getBytes(r)
	if err != nil {
		return "", err
	}
	return string(b), nil
}
