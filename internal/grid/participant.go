package grid

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"uncheatgrid/internal/cheat"
	"uncheatgrid/internal/core"
	"uncheatgrid/internal/hashchain"
	"uncheatgrid/internal/merkle"
	"uncheatgrid/internal/transport"
	"uncheatgrid/internal/workload"
)

// ProducerFactory builds a participant behaviour around the (counted)
// workload of an assigned task. The grid layer supplies the factory so one
// Participant can execute many tasks with a consistent persona.
type ProducerFactory func(f workload.Function) (cheat.Producer, error)

// HonestFactory returns the fully honest behaviour.
func HonestFactory(f workload.Function) (cheat.Producer, error) {
	return cheat.NewHonest(f), nil
}

// SemiHonestFactory returns a factory producing cheaters with honesty ratio
// r seeded by seed.
func SemiHonestFactory(r float64, seed uint64) ProducerFactory {
	return func(f workload.Function) (cheat.Producer, error) {
		return cheat.NewSemiHonest(f, r, seed)
	}
}

// MaliciousFactory returns a factory producing report saboteurs.
func MaliciousFactory(corruptProb float64, seed uint64) ProducerFactory {
	return func(f workload.Function) (cheat.Producer, error) {
		return cheat.NewMalicious(f, corruptProb, seed)
	}
}

// participantConfig collects construction options.
type participantConfig struct {
	proverParallelism int
	checkpointDir     string
}

// ParticipantOption customizes a participant.
type ParticipantOption interface {
	applyParticipant(*participantConfig)
}

type proverParallelismOption int

func (o proverParallelismOption) applyParticipant(c *participantConfig) {
	c.proverParallelism = int(o)
}

// WithProverParallelism makes the participant hash its CBS commitment tree
// with p parallel workers (merkle.WithParallelism). Claimed values are still
// evaluated and screened serially in index order — the committed root and
// the report stream are identical to a sequential participant's; only the
// tree construction fans out. p <= 1, non-CBS schemes, and storage-bounded
// (SubtreeHeight > 0) assignments build sequentially.
func WithProverParallelism(p int) ParticipantOption { return proverParallelismOption(p) }

type checkpointDirOption string

func (o checkpointDirOption) applyParticipant(c *participantConfig) {
	c.checkpointDir = string(o)
}

// WithCheckpointDir makes the participant durable: on every checkpoint
// request (msgCheckpoint) it serializes its counters and rolling-window
// state to a versioned, CRC-guarded file under dir before acknowledging,
// and RestoreCheckpoint resurrects that state after a crash. Without a
// directory, checkpoint requests are acknowledged without persisting.
func WithCheckpointDir(dir string) ParticipantOption { return checkpointDirOption(dir) }

// Participant is a grid worker: it receives task assignments over a
// connection, evaluates its (possibly cheating) results, and speaks the
// verification protocol named in each assignment. It serves both wire
// modes: the classic one-dialogue-per-task exchange and pipelined sessions
// with many interleaved tasks per connection.
type Participant struct {
	id      string
	factory ProducerFactory
	cfg     participantConfig

	mu       sync.Mutex
	evals    int64
	tasks    int
	accepted int
	rejected int
	behavior string
	// counted guards the per-task verdict counters against double counting:
	// a verdict whose acknowledgement was lost to a fault is re-delivered on
	// the resumed connection, and the re-run must not count it twice. Each
	// entry maps a counted task ID to the insertion sequence of its
	// tombstone; countedOrder keeps those tombstones in insertion order so
	// the memory can be capped (maxVerdictTombstones) by evicting the
	// oldest — a long-lived worker serving unboundedly many distinct tasks
	// stays bounded. A fresh (non-resume) assignment reusing an ID clears
	// its tombstone (the order entry goes stale and is skipped or
	// compacted away).
	counted      map[uint64]uint64
	countedOrder []countedTombstone
	countedSeq   uint64
	// windows holds the rolling-commitment state once the first windowed
	// assignment arrives; all windowed tasks of one participant must share
	// a spec, since the commitment chain is a single history.
	windows *participantWindows
}

// countedTombstone is one entry of the participant's verdict-tombstone
// queue: a task ID plus the insertion sequence that distinguishes it from a
// stale entry for the same ID.
type countedTombstone struct {
	id  uint64
	seq uint64
}

// maxVerdictTombstones caps how many counted-verdict tombstones a
// participant retains. A tombstone is only needed while its verdict could
// still be re-delivered — the window between delivery and the supervisor
// observing the ack, which spans at most one resume round trip — so
// evicting a tombstone after thousands of newer tasks completed cannot
// realistically double-count. A variable so tests can exercise eviction
// without running thousands of tasks.
var maxVerdictTombstones = 4096

// NewParticipant creates a worker. id labels it in reports; factory decides
// its honesty.
func NewParticipant(id string, factory ProducerFactory, opts ...ParticipantOption) (*Participant, error) {
	if id == "" {
		return nil, fmt.Errorf("%w: empty participant id", ErrBadConfig)
	}
	if factory == nil {
		return nil, fmt.Errorf("%w: nil producer factory", ErrBadConfig)
	}
	p := &Participant{id: id, factory: factory, counted: make(map[uint64]uint64)}
	for _, opt := range opts {
		opt.applyParticipant(&p.cfg)
	}
	return p, nil
}

// ID reports the participant's label.
func (p *Participant) ID() string { return p.id }

// Totals summarizes a participant's lifetime activity.
type Totals struct {
	// Behavior is the persona name from the last executed task.
	Behavior string
	// Tasks counts completed task executions.
	Tasks int
	// Accepted and Rejected count supervisor verdicts.
	Accepted, Rejected int
	// FEvals counts evaluations of f across all tasks.
	FEvals int64
}

// Totals returns a snapshot of the participant's counters.
func (p *Participant) Totals() Totals {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Totals{
		Behavior: p.behavior,
		Tasks:    p.tasks,
		Accepted: p.accepted,
		Rejected: p.rejected,
		FEvals:   p.evals,
	}
}

// Serve processes assignments from conn until the peer closes (io.EOF). Any
// other transport or protocol error is returned.
//
// Bare msgAssign frames run the classic one-dialogue-per-task exchange.
// The first msgBatch frame switches the connection into pipelined-session
// mode: tagged messages are demultiplexed by task ID and the assigned
// tasks execute concurrently until the peer closes.
func (p *Participant) Serve(conn transport.Conn) error {
	for {
		msg, err := conn.Recv()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if errors.Is(err, transport.ErrFrameCorrupt) {
			// Link damage, not peer misbehavior: kill the connection so the
			// peer observes a dead link (and, in session mode, quarantines
			// and resumes elsewhere) instead of a wedged exchange.
			_ = conn.Close()
			return nil
		}
		if err != nil {
			return fmt.Errorf("grid: participant %s recv: %w", p.id, err)
		}
		switch msg.Type {
		case msgAssign:
			a, err := decodeAssignment(msg.Payload)
			if err != nil {
				return fmt.Errorf("grid: participant %s: %w", p.id, err)
			}
			if err := p.executeTask(conn, a, nil); err != nil {
				return fmt.Errorf("grid: participant %s task %d: %w", p.id, a.Task.ID, err)
			}
		case msgBatch:
			return p.servePipelined(conn, msg)
		default:
			return fmt.Errorf("%w: participant %s got type %d, want assignment",
				ErrUnexpectedMessage, p.id, msg.Type)
		}
	}
}

// sessionInboxCap bounds undelivered messages per in-flight pipelined task.
// No scheme sends more than two supervisor→participant messages per task
// after the assignment (challenge and verdict), so exceeding the bound
// means the peer is violating the protocol.
const sessionInboxCap = 8

// participantSession is the worker-side end of a pipelined session: the
// serve loop demultiplexes tagged messages by task ID and executes the
// assigned tasks concurrently, reusing taskExecution per task. Outgoing
// messages funnel through a coalescing batch writer.
type participantSession struct {
	p      *Participant
	conn   transport.Conn
	writer *batchWriter
	wg     sync.WaitGroup

	mu      sync.Mutex
	inboxes map[uint64]chan transport.Message
	done    bool
	taskErr error
}

// servePipelined owns the connection from the first batch frame until the
// peer closes. It returns the first receive, dispatch, task, or send error.
func (p *Participant) servePipelined(conn transport.Conn, first transport.Message) error {
	ps := &participantSession{
		p:       p,
		conn:    conn,
		inboxes: make(map[uint64]chan transport.Message),
	}
	// A writer failure aborts the session: closing the connection fails
	// the serve loop, which tears the inboxes down so blocked tasks (and
	// the peer) cannot wait forever on frames that were discarded.
	ps.writer = newBatchWriter(conn, func(error) { _ = conn.Close() })
	err := ps.handleFrame(first)
	for err == nil {
		var msg transport.Message
		msg, err = conn.Recv()
		if errors.Is(err, io.EOF) {
			err = nil
			break
		}
		if err != nil {
			err = fmt.Errorf("grid: participant %s recv: %w", p.id, err)
			break
		}
		err = ps.handleFrame(msg)
	}
	if errors.Is(err, ErrFrameCorrupt) || errors.Is(err, transport.ErrFrameCorrupt) {
		// Link damage, not peer misbehavior: kill the connection so the
		// supervisor quarantines it and resumes elsewhere, and end this
		// serve cleanly — the replacement connection gets its own loop.
		_ = conn.Close()
		err = nil
	}
	if err != nil {
		// A protocol error leaves the peer's session waiting on a half-dead
		// exchange; closing the connection unblocks its puller.
		_ = conn.Close()
	}
	// Stop routing. Tasks still blocked on a message observe EOF once they
	// drain what was queued before shutdown; messages already routed (the
	// peer sends every verdict before closing) complete normally.
	ps.mu.Lock()
	ps.done = true
	for _, inbox := range ps.inboxes {
		close(inbox)
	}
	ps.mu.Unlock()
	ps.wg.Wait()
	werr := ps.writer.close()
	ps.mu.Lock()
	taskErr := ps.taskErr
	ps.mu.Unlock()
	// Task and writer failures abort the session by closing the connection,
	// so a resulting ErrClosed on the serve loop is a symptom — prefer the
	// root cause. With no root cause, a closed connection is the session's
	// normal end: the writer may observe the peer's close first (e.g. a
	// final verdict-ack flush racing the supervisor's teardown) and close
	// our endpoint, turning the loop's EOF into ErrClosed.
	if err == nil || errors.Is(err, transport.ErrClosed) {
		switch {
		case taskErr != nil:
			err = taskErr
		case werr != nil && !errors.Is(werr, transport.ErrClosed):
			err = fmt.Errorf("grid: participant %s send: %w", p.id, werr)
		default:
			err = nil
		}
	}
	return err
}

// handleFrame validates and dispatches one incoming session frame.
func (ps *participantSession) handleFrame(frame transport.Message) error {
	if frame.Type != msgBatch {
		return fmt.Errorf("%w: participant %s got frame type %d during a pipelined session, want batch",
			ErrUnexpectedMessage, ps.p.id, frame.Type)
	}
	msgs, err := decodeBatch(frame.Payload)
	// decodeBatch copies every sub-payload out of the frame buffer, so the
	// buffer is dead on both outcomes and goes back to the receive pool.
	transport.RecyclePayload(frame.Payload)
	if err != nil {
		return fmt.Errorf("grid: participant %s: %w", ps.p.id, err)
	}
	for _, tm := range msgs {
		if err := ps.dispatch(tm); err != nil {
			return err
		}
	}
	return nil
}

// dispatch routes one tagged message: assignments and resume handshakes
// start a new concurrent task execution, everything else lands in the owning
// task's inbox.
func (ps *participantSession) dispatch(tm taggedMsg) error {
	if tm.TaskID == ctrlTaskID {
		return ps.handleCtrl(tm)
	}
	switch tm.Type {
	case msgAssign:
		a, err := decodeAssignment(tm.Payload)
		if err != nil {
			return fmt.Errorf("grid: participant %s: %w", ps.p.id, err)
		}
		if a.Task.ID != tm.TaskID {
			return fmt.Errorf("%w: assignment for task %d tagged %d",
				ErrBadPayload, a.Task.ID, tm.TaskID)
		}
		return ps.startTask(a, nil)
	case msgResume:
		m, err := decodeResume(tm.Payload)
		if err != nil {
			return fmt.Errorf("grid: participant %s: %w", ps.p.id, err)
		}
		if m.Assignment.Task.ID != tm.TaskID {
			return fmt.Errorf("%w: resume for task %d tagged %d",
				ErrBadPayload, m.Assignment.Task.ID, tm.TaskID)
		}
		return ps.startTask(m.Assignment, &m)
	}
	ps.mu.Lock()
	inbox, ok := ps.inboxes[tm.TaskID]
	ps.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: message type %d for unknown task %d",
			ErrUnexpectedMessage, tm.Type, tm.TaskID)
	}
	select {
	case inbox <- transport.Message{Type: tm.Type, Payload: tm.Payload}:
		return nil
	default:
		return fmt.Errorf("%w: task %d inbox overflow", ErrUnexpectedMessage, tm.TaskID)
	}
}

// sendCtrl enqueues one session-scoped control message through the batch
// writer, FIFO with the per-task traffic already queued there.
func (ps *participantSession) sendCtrl(typ uint8, payload []byte) error {
	return ps.writer.enqueue(taggedMsg{TaskID: ctrlTaskID, Type: typ, Payload: payload}, nil)
}

// handleCtrl serves one session-scoped control message. A checkpoint
// request persists the participant's durable state (when a checkpoint
// directory is configured) and is always acknowledged — the ack is the
// supervisor's barrier, so it must not depend on local configuration.
func (ps *participantSession) handleCtrl(tm taggedMsg) error {
	switch tm.Type {
	case msgCheckpoint:
		cp, err := decodeCheckpoint(tm.Payload)
		if err != nil {
			return fmt.Errorf("grid: participant %s: %w", ps.p.id, err)
		}
		if err := ps.p.WriteCheckpoint(cp.Seq); err != nil {
			return fmt.Errorf("grid: participant %s checkpoint: %w", ps.p.id, err)
		}
		return ps.sendCtrl(msgCheckpointAck, nil)
	default:
		return fmt.Errorf("%w: participant %s got ctrl message type %d",
			ErrUnexpectedMessage, ps.p.id, tm.Type)
	}
}

// startTask registers the task's inbox and executes the assignment on its
// own goroutine over a virtual per-task connection. res carries the
// supervisor's resume handshake when the task is re-announced on a
// replacement connection; the execution then re-derives its deterministic
// state and replays only what the supervisor is missing.
func (ps *participantSession) startTask(a assignment, res *resumeMsg) error {
	ps.mu.Lock()
	if _, dup := ps.inboxes[a.Task.ID]; dup {
		ps.mu.Unlock()
		return fmt.Errorf("%w: duplicate in-flight task %d", ErrUnexpectedMessage, a.Task.ID)
	}
	inbox := make(chan transport.Message, sessionInboxCap)
	ps.inboxes[a.Task.ID] = inbox
	ps.mu.Unlock()

	conn := &participantTaskConn{ps: ps, id: a.Task.ID, inbox: inbox}
	ps.wg.Add(1)
	go func() {
		defer ps.wg.Done()
		err := ps.p.executeTask(conn, a, res)
		if errors.Is(err, io.EOF) || errors.Is(err, transport.ErrClosed) {
			// The connection died under the task. The supervisor holds
			// resumable state and will re-announce on a replacement
			// connection, so this is a clean per-task abort, not a session
			// error.
			err = nil
		}
		ps.mu.Lock()
		if !ps.done {
			delete(ps.inboxes, a.Task.ID)
		}
		if err != nil && ps.taskErr == nil {
			ps.taskErr = fmt.Errorf("grid: participant %s task %d: %w", ps.p.id, a.Task.ID, err)
		}
		ps.mu.Unlock()
		if err != nil {
			// A failed task cannot answer its supervisor-side exchange, which
			// would otherwise wait forever. Abort the whole session: closing
			// the connection unblocks both the peer and our own serve loop.
			_ = ps.conn.Close()
		}
	}()
	return nil
}

// participantTaskConn is the virtual protoConn of one pipelined task on the
// participant side.
type participantTaskConn struct {
	ps    *participantSession
	id    uint64
	inbox chan transport.Message
}

// Send implements protoConn.
func (c *participantTaskConn) Send(m transport.Message) error {
	return c.ps.writer.enqueue(taggedMsg{TaskID: c.id, Type: m.Type, Payload: m.Payload}, nil)
}

// Recv implements protoConn.
func (c *participantTaskConn) Recv() (transport.Message, error) {
	m, ok := <-c.inbox
	if !ok {
		return transport.Message{}, io.EOF
	}
	return m, nil
}

// executeTask runs one assignment end to end, including the verification
// dialogue the scheme requires. conn is either a whole connection (dialogue
// mode) or a per-task session endpoint (pipelined mode). A non-nil res means
// the supervisor is resuming the task on a replacement connection: the
// execution recomputes its deterministic state (producers decide per input,
// so a re-run claims identical values) and replays only the messages the
// supervisor does not already hold.
func (p *Participant) executeTask(conn protoConn, a assignment, res *resumeMsg) error {
	if err := a.Task.validate(); err != nil {
		return err
	}
	if res == nil {
		// A fresh assignment supersedes any earlier task that used this ID
		// (a later run numbering its tasks from zero, say): drop the stale
		// counted tombstone so the new task's verdict is tallied. Only a
		// resume can re-deliver an already-counted verdict.
		p.mu.Lock()
		delete(p.counted, a.Task.ID)
		p.mu.Unlock()
	}
	if err := a.Spec.validate(); err != nil {
		return err
	}
	base, err := workload.New(a.Task.Workload, a.Task.Seed)
	if err != nil {
		return err
	}
	counted := workload.Count(base)
	producer, err := p.factory(counted)
	if err != nil {
		return err
	}
	screener := base.Screener()

	exec := &taskExecution{
		task:        a.Task,
		spec:        a.Spec,
		producer:    producer,
		screener:    screener,
		parallelism: p.cfg.proverParallelism,
	}
	switch a.Spec.Kind {
	case SchemeCBS:
		err = exec.runCBS(conn, false, nil, res)
	case SchemeNICBS:
		chain, chainErr := hashchain.New(a.Spec.ChainIters)
		if chainErr != nil {
			return chainErr
		}
		err = exec.runCBS(conn, true, chain, res)
	case SchemeNaive, SchemeDoubleCheck:
		err = exec.runUpload(conn, res)
	case SchemeRinger:
		err = exec.runRinger(conn, a.RingerImages, res)
	default:
		return fmt.Errorf("%w: scheme %v", ErrBadConfig, a.Spec.Kind)
	}
	if err != nil {
		return err
	}

	verdict, err := recvVerdict(conn)
	if err != nil {
		return err
	}
	first := p.recordVerdict(a.Task.ID, producer.Name(), verdict, counted.Evals())
	// A windowed task joins the rolling commitment exactly when its verdict
	// first counts, and the window commit (if this task fills one) must be
	// enqueued before the verdict ack: the batch writer is FIFO, so the
	// supervisor always processes the commit before it settles the task.
	if first && a.Spec.WindowTasks > 0 && exec.digest != nil {
		if tc, ok := conn.(*participantTaskConn); ok {
			pw, err := p.windowsFor(a.Spec)
			if err != nil {
				return err
			}
			digest := streamDigest(a.Task.ID, a.Spec.Kind, exec.digest)
			if err := pw.settle(a.Task.ID, digest, tc.ps.sendCtrl); err != nil {
				return err
			}
		}
	}
	// Acknowledge so the supervisor knows the ruling landed; a verdict
	// frame lost to a fault is re-delivered on the resumed connection until
	// acked (recordVerdict keeps the counters exactly-once under
	// re-delivery).
	return conn.Send(transport.Message{Type: msgVerdictAck})
}

// windowsFor returns the participant's rolling-commitment state, creating
// it from the first windowed spec seen. One participant runs one window
// history; a conflicting spec is a configuration error.
func (p *Participant) windowsFor(spec SchemeSpec) (*participantWindows, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.windows == nil {
		pw, err := newParticipantWindows(spec)
		if err != nil {
			return nil, err
		}
		p.windows = pw
		return pw, nil
	}
	if p.windows.w != spec.WindowTasks || p.windows.m != spec.WindowSamples {
		return nil, fmt.Errorf("%w: participant %s saw window spec %d/%d after %d/%d",
			ErrBadConfig, p.id, spec.WindowTasks, spec.WindowSamples, p.windows.w, p.windows.m)
	}
	return p.windows, nil
}

// recordVerdict folds one task's outcome into the participant's counters.
// Evaluation effort is real work and accrues per execution; the per-task
// verdict tallies count each task at most once, however many times a fault
// forces its verdict to be re-delivered.
//
// It reports whether this is the first time the task's verdict counted —
// the signal that downstream exactly-once work (the rolling window append)
// should run.
//
//gridlint:credit the participant's only tally point; exactly-once under verdict re-delivery
func (p *Participant) recordVerdict(taskID uint64, behavior string, verdict Verdict, evals int64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.behavior = behavior
	p.evals += evals
	if _, done := p.counted[taskID]; done {
		return false
	}
	p.countedSeq++
	p.counted[taskID] = p.countedSeq
	p.countedOrder = append(p.countedOrder, countedTombstone{id: taskID, seq: p.countedSeq})
	p.pruneTombstonesLocked()
	p.tasks++
	if verdict.Accepted {
		p.accepted++
	} else {
		p.rejected++
	}
	return true
}

// pruneTombstonesLocked bounds the verdict-tombstone memory: the oldest
// tombstones are released once more than maxVerdictTombstones distinct
// counted tasks are retained, and the order queue is compacted when stale
// entries (tombstones cleared by fresh-assignment ID reuse, or superseded
// re-insertions) pile up. Caller holds p.mu.
func (p *Participant) pruneTombstonesLocked() {
	for len(p.counted) > maxVerdictTombstones && len(p.countedOrder) > 0 {
		e := p.countedOrder[0]
		p.countedOrder = p.countedOrder[1:]
		if p.counted[e.id] == e.seq {
			delete(p.counted, e.id)
		}
	}
	if len(p.countedOrder) >= 2*maxVerdictTombstones {
		live := p.countedOrder[:0]
		for _, e := range p.countedOrder {
			if p.counted[e.id] == e.seq {
				live = append(live, e)
			}
		}
		p.countedOrder = live
	}
}

// taskExecution carries the state of one assignment.
type taskExecution struct {
	task        Task
	spec        SchemeSpec
	producer    cheat.Producer
	screener    workload.Screener
	parallelism int
	// digest is the scheme's primary payload reduced for the rolling window
	// commitment (commitment root, hashed upload, or hashed hit list), set
	// by the scheme runner once that payload is fixed.
	digest []byte
}

// claimAndScreen evaluates the participant's claimed value for domain index
// i, feeding the screener and the behaviour's report filter.
func (e *taskExecution) claimAndScreen(i uint64, reports *[]Report) []byte {
	x := e.task.Start + i
	value := e.producer.Claim(x)
	s, interesting := e.screener.Screen(x, value)
	s, interesting = e.producer.Report(x, s, interesting)
	if interesting {
		*reports = append(*reports, Report{X: x, S: s})
	}
	return value
}

// runCBS executes Steps 1-3 of (NI-)CBS: build the tree over claimed values
// while screening, send commitment and reports, then answer the challenge
// (interactive) or self-derive it (non-interactive). On resume the tree is
// rebuilt — bit-identical, since claims are deterministic — and only the
// messages the supervisor lacks are sent; a challenge the supervisor already
// issued arrives replayed inside res instead of over the wire.
func (e *taskExecution) runCBS(conn protoConn, nonInteractive bool, chain *hashchain.Chain, res *resumeMsg) error {
	var reports []Report
	// Screening happens once per input on the first (tree-building) pass.
	screened := make(map[uint64]bool, e.task.N)
	claim := func(i uint64) []byte {
		if !screened[i] {
			screened[i] = true
			return e.claimAndScreen(i, &reports)
		}
		return e.producer.Claim(e.task.Start + i)
	}

	var opts []core.Option
	if e.spec.SubtreeHeight > 0 {
		opts = append(opts, core.WithSubtreeHeight(e.spec.SubtreeHeight))
	}
	if e.parallelism > 1 && e.spec.SubtreeHeight == 0 {
		// Parallel tree build: the prover calls claim from many goroutines,
		// but screening must stay a serial in-order pass (report order and
		// producer state are part of the protocol contract). Materialize the
		// claimed values first, then hash the tree in parallel over the
		// frozen slice — the root is bit-identical to the sequential build.
		values := make([][]byte, e.task.N)
		for i := uint64(0); i < e.task.N; i++ {
			values[i] = claim(i)
		}
		claim = func(i uint64) []byte { return values[i] }
		opts = append(opts, core.WithTreeOptions(merkle.WithParallelism(e.parallelism)))
	}
	prover, err := core.NewProver(int(e.task.N), claim, opts...)
	if err != nil {
		return err
	}
	e.digest = prover.Commitment().Root
	commitPayload, err := prover.Commitment().MarshalBinary()
	if err != nil {
		return err
	}
	if res == nil || !res.HaveCommit {
		if err := conn.Send(transport.Message{Type: msgCommit, Payload: commitPayload}); err != nil {
			return err
		}
	}
	if res == nil || !res.HaveReports {
		if err := conn.Send(transport.Message{Type: msgReports, Payload: encodeReports(reports)}); err != nil {
			return err
		}
	}
	if res != nil && res.HaveProofs {
		return nil // the supervisor holds everything; it only owes the verdict
	}

	var resp *core.Response
	if nonInteractive {
		resp, err = prover.RespondNonInteractive(chain, e.spec.M)
		if err != nil {
			return err
		}
	} else {
		var ch core.Challenge
		if res != nil && res.Challenge != nil {
			if err := ch.UnmarshalBinary(res.Challenge); err != nil {
				return fmt.Errorf("%w: resumed challenge: %v", ErrBadPayload, err)
			}
		} else {
			msg, err := conn.Recv()
			if err != nil {
				return err
			}
			if msg.Type != msgChallenge {
				return fmt.Errorf("%w: got type %d, want challenge", ErrUnexpectedMessage, msg.Type)
			}
			if err := ch.UnmarshalBinary(msg.Payload); err != nil {
				return fmt.Errorf("%w: challenge: %v", ErrBadPayload, err)
			}
		}
		resp, err = prover.Respond(ch.Indices)
		if err != nil {
			return err
		}
	}
	respPayload, err := resp.MarshalBinary()
	if err != nil {
		return err
	}
	return conn.Send(transport.Message{Type: msgProofs, Payload: respPayload})
}

// runUpload executes the naive-sampling / double-check participant side:
// compute (or fabricate) everything and upload the full result vector —
// in one frame when it fits, as an ordered chunk stream otherwise. On
// resume, the upload restarts at the first chunk the supervisor is missing
// (chunk boundaries are deterministic, so the stream splices exactly).
func (e *taskExecution) runUpload(conn protoConn, res *resumeMsg) error {
	var reports []Report
	results := make([][]byte, e.task.N)
	for i := uint64(0); i < e.task.N; i++ {
		results[i] = e.claimAndScreen(i, &reports)
	}
	e.digest = hashResults(results)
	if res == nil || !res.ResultsDone {
		var from uint64
		if res != nil {
			from = res.Chunks
		}
		if err := sendResults(conn, results, from); err != nil {
			return err
		}
	}
	if res == nil || !res.HaveReports {
		return conn.Send(transport.Message{Type: msgReports, Payload: encodeReports(reports)})
	}
	return nil
}

// sendResults uploads the encoded result vector: a single msgResults frame
// when it fits under uploadChunkBytes, an ordered msgResultChunk stream
// otherwise. from skips chunks a previous connection already delivered.
func sendResults(conn protoConn, results [][]byte, from uint64) error {
	payload := encodeResults(results)
	if len(payload) <= uploadChunkBytes {
		if from > 0 {
			return fmt.Errorf("%w: resume at chunk %d of an unchunked upload", ErrUnexpectedMessage, from)
		}
		return conn.Send(transport.Message{Type: msgResults, Payload: payload})
	}
	chunks := uint64((len(payload) + uploadChunkBytes - 1) / uploadChunkBytes)
	if from >= chunks {
		return fmt.Errorf("%w: resume at chunk %d of %d", ErrUnexpectedMessage, from, chunks)
	}
	for seq := from; seq < chunks; seq++ {
		lo := int(seq) * uploadChunkBytes
		hi := lo + uploadChunkBytes
		if hi > len(payload) {
			hi = len(payload)
		}
		c := resultChunk{Seq: seq, Final: seq == chunks-1, Data: payload[lo:hi]}
		if err := conn.Send(transport.Message{Type: msgResultChunk, Payload: encodeChunk(c)}); err != nil {
			return err
		}
	}
	return nil
}

// runRinger executes the Golle-Mironov participant side: scan the domain,
// reporting both screened results and inputs whose value matches a planted
// image.
func (e *taskExecution) runRinger(conn protoConn, images [][]byte, res *resumeMsg) error {
	imageSet := make(map[string]struct{}, len(images))
	for _, img := range images {
		imageSet[string(img)] = struct{}{}
	}
	var reports []Report
	var hits []uint64
	for i := uint64(0); i < e.task.N; i++ {
		value := e.claimAndScreen(i, &reports)
		if _, ok := imageSet[string(value)]; ok {
			hits = append(hits, e.task.Start+i)
		}
	}
	e.digest = hashIndices(hits)
	if res == nil || !res.HaveHits {
		if err := conn.Send(transport.Message{Type: msgRingerHits, Payload: encodeIndices(hits)}); err != nil {
			return err
		}
	}
	if res == nil || !res.HaveReports {
		return conn.Send(transport.Message{Type: msgReports, Payload: encodeReports(reports)})
	}
	return nil
}

func recvVerdict(conn protoConn) (Verdict, error) {
	msg, err := conn.Recv()
	if err != nil {
		return Verdict{}, err
	}
	if msg.Type != msgVerdict {
		return Verdict{}, fmt.Errorf("%w: got type %d, want verdict", ErrUnexpectedMessage, msg.Type)
	}
	return decodeVerdict(msg.Payload)
}
