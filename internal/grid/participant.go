package grid

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"uncheatgrid/internal/cheat"
	"uncheatgrid/internal/core"
	"uncheatgrid/internal/hashchain"
	"uncheatgrid/internal/transport"
	"uncheatgrid/internal/workload"
)

// ProducerFactory builds a participant behaviour around the (counted)
// workload of an assigned task. The grid layer supplies the factory so one
// Participant can execute many tasks with a consistent persona.
type ProducerFactory func(f workload.Function) (cheat.Producer, error)

// HonestFactory returns the fully honest behaviour.
func HonestFactory(f workload.Function) (cheat.Producer, error) {
	return cheat.NewHonest(f), nil
}

// SemiHonestFactory returns a factory producing cheaters with honesty ratio
// r seeded by seed.
func SemiHonestFactory(r float64, seed uint64) ProducerFactory {
	return func(f workload.Function) (cheat.Producer, error) {
		return cheat.NewSemiHonest(f, r, seed)
	}
}

// MaliciousFactory returns a factory producing report saboteurs.
func MaliciousFactory(corruptProb float64, seed uint64) ProducerFactory {
	return func(f workload.Function) (cheat.Producer, error) {
		return cheat.NewMalicious(f, corruptProb, seed)
	}
}

// Participant is a grid worker: it receives task assignments over a
// connection, evaluates its (possibly cheating) results, and speaks the
// verification protocol named in each assignment.
type Participant struct {
	id      string
	factory ProducerFactory

	mu       sync.Mutex
	evals    int64
	tasks    int
	accepted int
	rejected int
	behavior string
}

// NewParticipant creates a worker. id labels it in reports; factory decides
// its honesty.
func NewParticipant(id string, factory ProducerFactory) (*Participant, error) {
	if id == "" {
		return nil, fmt.Errorf("%w: empty participant id", ErrBadConfig)
	}
	if factory == nil {
		return nil, fmt.Errorf("%w: nil producer factory", ErrBadConfig)
	}
	return &Participant{id: id, factory: factory}, nil
}

// ID reports the participant's label.
func (p *Participant) ID() string { return p.id }

// Totals summarizes a participant's lifetime activity.
type Totals struct {
	// Behavior is the persona name from the last executed task.
	Behavior string
	// Tasks counts completed task executions.
	Tasks int
	// Accepted and Rejected count supervisor verdicts.
	Accepted, Rejected int
	// FEvals counts evaluations of f across all tasks.
	FEvals int64
}

// Totals returns a snapshot of the participant's counters.
func (p *Participant) Totals() Totals {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Totals{
		Behavior: p.behavior,
		Tasks:    p.tasks,
		Accepted: p.accepted,
		Rejected: p.rejected,
		FEvals:   p.evals,
	}
}

// Serve processes assignments from conn until the peer closes (io.EOF). Any
// other transport or protocol error is returned.
func (p *Participant) Serve(conn transport.Conn) error {
	for {
		msg, err := conn.Recv()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("grid: participant %s recv: %w", p.id, err)
		}
		if msg.Type != msgAssign {
			return fmt.Errorf("%w: participant %s got type %d, want assignment",
				ErrUnexpectedMessage, p.id, msg.Type)
		}
		a, err := decodeAssignment(msg.Payload)
		if err != nil {
			return fmt.Errorf("grid: participant %s: %w", p.id, err)
		}
		if err := p.executeTask(conn, a); err != nil {
			return fmt.Errorf("grid: participant %s task %d: %w", p.id, a.Task.ID, err)
		}
	}
}

// executeTask runs one assignment end to end, including the verification
// dialogue the scheme requires.
func (p *Participant) executeTask(conn transport.Conn, a assignment) error {
	if err := a.Task.validate(); err != nil {
		return err
	}
	if err := a.Spec.validate(); err != nil {
		return err
	}
	base, err := workload.New(a.Task.Workload, a.Task.Seed)
	if err != nil {
		return err
	}
	counted := workload.Count(base)
	producer, err := p.factory(counted)
	if err != nil {
		return err
	}
	screener := base.Screener()

	exec := &taskExecution{
		task:     a.Task,
		spec:     a.Spec,
		producer: producer,
		screener: screener,
	}
	switch a.Spec.Kind {
	case SchemeCBS:
		err = exec.runCBS(conn, false, nil)
	case SchemeNICBS:
		chain, chainErr := hashchain.New(a.Spec.ChainIters)
		if chainErr != nil {
			return chainErr
		}
		err = exec.runCBS(conn, true, chain)
	case SchemeNaive, SchemeDoubleCheck:
		err = exec.runUpload(conn)
	case SchemeRinger:
		err = exec.runRinger(conn, a.RingerImages)
	default:
		return fmt.Errorf("%w: scheme %v", ErrBadConfig, a.Spec.Kind)
	}
	if err != nil {
		return err
	}

	verdict, err := recvVerdict(conn)
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.behavior = producer.Name()
	p.tasks++
	if verdict.Accepted {
		p.accepted++
	} else {
		p.rejected++
	}
	p.evals += counted.Evals()
	p.mu.Unlock()
	return nil
}

// taskExecution carries the state of one assignment.
type taskExecution struct {
	task     Task
	spec     SchemeSpec
	producer cheat.Producer
	screener workload.Screener
}

// claimAndScreen evaluates the participant's claimed value for domain index
// i, feeding the screener and the behaviour's report filter.
func (e *taskExecution) claimAndScreen(i uint64, reports *[]Report) []byte {
	x := e.task.Start + i
	value := e.producer.Claim(x)
	s, interesting := e.screener.Screen(x, value)
	s, interesting = e.producer.Report(x, s, interesting)
	if interesting {
		*reports = append(*reports, Report{X: x, S: s})
	}
	return value
}

// runCBS executes Steps 1-3 of (NI-)CBS: build the tree over claimed values
// while screening, send commitment and reports, then answer the challenge
// (interactive) or self-derive it (non-interactive).
func (e *taskExecution) runCBS(conn transport.Conn, nonInteractive bool, chain *hashchain.Chain) error {
	var reports []Report
	// Screening happens once per input on the first (tree-building) pass.
	screened := make(map[uint64]bool, e.task.N)
	claim := func(i uint64) []byte {
		if !screened[i] {
			screened[i] = true
			return e.claimAndScreen(i, &reports)
		}
		return e.producer.Claim(e.task.Start + i)
	}

	var opts []core.Option
	if e.spec.SubtreeHeight > 0 {
		opts = append(opts, core.WithSubtreeHeight(e.spec.SubtreeHeight))
	}
	prover, err := core.NewProver(int(e.task.N), claim, opts...)
	if err != nil {
		return err
	}
	commitPayload, err := prover.Commitment().MarshalBinary()
	if err != nil {
		return err
	}
	if err := conn.Send(transport.Message{Type: msgCommit, Payload: commitPayload}); err != nil {
		return err
	}
	if err := conn.Send(transport.Message{Type: msgReports, Payload: encodeReports(reports)}); err != nil {
		return err
	}

	var resp *core.Response
	if nonInteractive {
		resp, err = prover.RespondNonInteractive(chain, e.spec.M)
		if err != nil {
			return err
		}
	} else {
		msg, err := conn.Recv()
		if err != nil {
			return err
		}
		if msg.Type != msgChallenge {
			return fmt.Errorf("%w: got type %d, want challenge", ErrUnexpectedMessage, msg.Type)
		}
		var ch core.Challenge
		if err := ch.UnmarshalBinary(msg.Payload); err != nil {
			return fmt.Errorf("%w: challenge: %v", ErrBadPayload, err)
		}
		resp, err = prover.Respond(ch.Indices)
		if err != nil {
			return err
		}
	}
	respPayload, err := resp.MarshalBinary()
	if err != nil {
		return err
	}
	return conn.Send(transport.Message{Type: msgProofs, Payload: respPayload})
}

// runUpload executes the naive-sampling / double-check participant side:
// compute (or fabricate) everything and upload the full result vector.
func (e *taskExecution) runUpload(conn transport.Conn) error {
	var reports []Report
	results := make([][]byte, e.task.N)
	for i := uint64(0); i < e.task.N; i++ {
		results[i] = e.claimAndScreen(i, &reports)
	}
	if err := conn.Send(transport.Message{Type: msgResults, Payload: encodeResults(results)}); err != nil {
		return err
	}
	return conn.Send(transport.Message{Type: msgReports, Payload: encodeReports(reports)})
}

// runRinger executes the Golle-Mironov participant side: scan the domain,
// reporting both screened results and inputs whose value matches a planted
// image.
func (e *taskExecution) runRinger(conn transport.Conn, images [][]byte) error {
	imageSet := make(map[string]struct{}, len(images))
	for _, img := range images {
		imageSet[string(img)] = struct{}{}
	}
	var reports []Report
	var hits []uint64
	for i := uint64(0); i < e.task.N; i++ {
		value := e.claimAndScreen(i, &reports)
		if _, ok := imageSet[string(value)]; ok {
			hits = append(hits, e.task.Start+i)
		}
	}
	if err := conn.Send(transport.Message{Type: msgRingerHits, Payload: encodeIndices(hits)}); err != nil {
		return err
	}
	return conn.Send(transport.Message{Type: msgReports, Payload: encodeReports(reports)})
}

func recvVerdict(conn transport.Conn) (Verdict, error) {
	msg, err := conn.Recv()
	if err != nil {
		return Verdict{}, err
	}
	if msg.Type != msgVerdict {
		return Verdict{}, fmt.Errorf("%w: got type %d, want verdict", ErrUnexpectedMessage, msg.Type)
	}
	return decodeVerdict(msg.Payload)
}
