package grid

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestCheckpointFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.ckpt")
	payload := []byte("durable state")
	if err := writeCheckpointFile(path, payload); err != nil {
		t.Fatalf("writeCheckpointFile: %v", err)
	}
	got, err := readCheckpointFile(path)
	if err != nil {
		t.Fatalf("readCheckpointFile: %v", err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload = %q, want %q", got, payload)
	}
	// The temp file was renamed away, not left behind.
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file survived the rename: %v", err)
	}
}

func TestCheckpointFileCorruptionDetected(t *testing.T) {
	clean := encodeCheckpointFile([]byte("state"))
	mutations := map[string]func([]byte) []byte{
		"empty":      func([]byte) []byte { return nil },
		"truncated":  func(d []byte) []byte { return d[:len(d)-3] },
		"bad magic":  func(d []byte) []byte { c := append([]byte(nil), d...); c[0] ^= 0xff; return c },
		"wrong ver":  func(d []byte) []byte { c := append([]byte(nil), d...); c[4] = 0x02; return c },
		"bit flip":   func(d []byte) []byte { c := append([]byte(nil), d...); c[len(c)/2] ^= 0x01; return c },
		"appended":   func(d []byte) []byte { return append(append([]byte(nil), d...), 0x00) },
		"crc forged": func(d []byte) []byte { c := append([]byte(nil), d...); c[len(c)-1] ^= 0x01; return c },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			if _, err := parseCheckpointFile(mutate(clean)); !errors.Is(err, ErrCheckpointCorrupt) {
				t.Fatalf("got %v, want ErrCheckpointCorrupt", err)
			}
		})
	}
}

func TestParticipantCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p, err := NewParticipant("worker-1", HonestFactory, WithCheckpointDir(dir))
	if err != nil {
		t.Fatalf("NewParticipant: %v", err)
	}
	spec := windowSpec(4, 2)
	pw, err := p.windowsFor(spec)
	if err != nil {
		t.Fatalf("windowsFor: %v", err)
	}
	for id := uint64(0); id < 6; id++ {
		if err := pw.settle(id, streamDigest(id, spec.Kind, []byte{byte(id)}),
			func(uint8, []byte) error { return nil }); err != nil {
			t.Fatalf("settle: %v", err)
		}
	}
	if err := p.WriteCheckpoint(9); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}

	restored, err := NewParticipant("worker-1", HonestFactory, WithCheckpointDir(dir))
	if err != nil {
		t.Fatalf("NewParticipant: %v", err)
	}
	seq, ok, err := restored.RestoreCheckpoint()
	if err != nil || !ok || seq != 9 {
		t.Fatalf("RestoreCheckpoint = (%d, %v, %v), want (9, true, nil)", seq, ok, err)
	}
	rw, err := restored.windowsFor(spec)
	if err != nil {
		t.Fatalf("windowsFor after restore: %v", err)
	}
	rw.mu.Lock()
	commits, pending := rw.commits, len(rw.ids)
	rw.mu.Unlock()
	if commits != 1 || pending != 2 {
		t.Fatalf("restored windows: commits = %d, pending = %d; want 1, 2", commits, pending)
	}
}

func TestParticipantCheckpointMissingIsFreshStart(t *testing.T) {
	p, err := NewParticipant("worker-2", HonestFactory, WithCheckpointDir(t.TempDir()))
	if err != nil {
		t.Fatalf("NewParticipant: %v", err)
	}
	if seq, ok, err := p.RestoreCheckpoint(); seq != 0 || ok || err != nil {
		t.Fatalf("RestoreCheckpoint = (%d, %v, %v), want fresh start", seq, ok, err)
	}
}

func TestParticipantCheckpointIdentityMismatch(t *testing.T) {
	dir := t.TempDir()
	p, err := NewParticipant("worker-a", HonestFactory, WithCheckpointDir(dir))
	if err != nil {
		t.Fatalf("NewParticipant: %v", err)
	}
	if err := p.WriteCheckpoint(1); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	// Rename a's file onto b's slot: the payload-embedded identity catches
	// the swap even though the envelope checksum is intact.
	if err := os.Rename(participantCheckpointPath(dir, "worker-a"),
		participantCheckpointPath(dir, "worker-b")); err != nil {
		t.Fatalf("rename: %v", err)
	}
	q, err := NewParticipant("worker-b", HonestFactory, WithCheckpointDir(dir))
	if err != nil {
		t.Fatalf("NewParticipant: %v", err)
	}
	if _, _, err := q.RestoreCheckpoint(); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("got %v, want ErrCheckpointCorrupt", err)
	}
}

// FuzzCheckpointFile hammers the envelope parser and, when the envelope
// survives, the participant payload decoder — both consume attacker-visible
// bytes from disk after a crash, where torn writes make any prefix possible.
func FuzzCheckpointFile(f *testing.F) {
	f.Add(encodeCheckpointFile(nil))
	f.Add(encodeCheckpointFile([]byte("state")))
	p, err := NewParticipant("fuzz-seed", HonestFactory)
	if err == nil {
		if payload, perr := p.encodeCheckpointPayload(3); perr == nil {
			f.Add(encodeCheckpointFile(payload))
		}
	}
	f.Add([]byte{})
	f.Add([]byte{'U', 'G', 'C', 'P', 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := parseCheckpointFile(data)
		if err != nil {
			return
		}
		again, err := parseCheckpointFile(encodeCheckpointFile(payload))
		if err != nil {
			t.Fatalf("re-parse of re-encoded envelope failed: %v", err)
		}
		if string(again) != string(payload) {
			t.Fatal("round trip changed the payload")
		}
		q, err := NewParticipant("fuzz-seed", HonestFactory)
		if err != nil {
			t.Fatalf("NewParticipant: %v", err)
		}
		_, _ = q.decodeCheckpointPayload(payload) // must not panic
	})
}

// FuzzDecodeParticipantWindows hammers the rolling-window state decoder
// in isolation: it consumes the checkpoint payload after the envelope
// CRC, where a version skew or an encoder bug can still present any byte
// sequence. Whatever decodes must re-encode to a stable fixed point.
func FuzzDecodeParticipantWindows(f *testing.F) {
	spec := SchemeSpec{Kind: SchemeCBS, M: 4, WindowTasks: 4, WindowSamples: 2}
	if pw, err := newParticipantWindows(spec); err == nil {
		var fresh bytes.Buffer
		if err := pw.encodeState(&fresh); err == nil {
			f.Add(fresh.Bytes())
		}
		sink := func(uint8, []byte) error { return nil }
		for i := uint64(0); i < 6; i++ {
			_ = pw.settle(i, []byte{byte(i), 0xab}, sink)
		}
		var settled bytes.Buffer
		if err := pw.encodeState(&settled); err == nil {
			f.Add(settled.Bytes())
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0x04, 0x02, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		pw, err := decodeParticipantWindows(bytes.NewReader(data))
		if err != nil {
			return
		}
		var once bytes.Buffer
		if err := pw.encodeState(&once); err != nil {
			t.Fatalf("re-encode of decoded windows failed: %v", err)
		}
		again, err := decodeParticipantWindows(bytes.NewReader(once.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of re-encoded windows failed: %v", err)
		}
		var twice bytes.Buffer
		if err := again.encodeState(&twice); err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(once.Bytes(), twice.Bytes()) {
			t.Fatal("round trip is not a fixed point")
		}
	})
}
