package grid

// Work-stealing stream scheduler with revocable claims and
// reconnect-and-resume.
//
// PR 2's scheduler parked every worker on one task channel and re-checked
// eligibility at claim time; a connection retired between that re-check and
// the first send could still start a task, and any transport error killed
// the whole run. This scheduler makes both first-class:
//
//   - Claims are leases. A lease is claimed under the dispatcher lock,
//     started under the same lock (where eligibility is re-checked), and
//     can be revoked in between — retirement recalls unstarted leases and
//     reroutes their tickets, so no exchange ever starts on a connection
//     retired before the start. That closes the ROADMAP's "blacklist claim
//     race" completely.
//
//   - Each connection lives in a connSlot that owns the current
//     (connection, session) generation. A quarantined session returns its
//     in-flight attempts to the dispatcher pinned to the slot, the first
//     failing worker redials, and the attempts resume mid-protocol on the
//     replacement session. A slot that exhausts its reconnect budget is
//     dead: its pinned tickets restart from scratch (fresh attempt, fresh
//     per-task randomness — identical to a clean first run) on surviving
//     connections.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"uncheatgrid/internal/transport"
)

// defaultMaxReconnects bounds replacement connections per slot when
// WithRedial is set without WithMaxReconnects.
const defaultMaxReconnects = 4

// ticket is the dispatcher's unit of work: a task, plus — once an attempt
// exists — its resumable supervisor state. pin binds a mid-protocol attempt
// to the slot whose participant holds the matching prover state. grp and
// repIdx are set on double-check replica tickets: the ticket is one member
// of a replicated group, pre-placed on its slot and settling through the
// group rendezvous.
type ticket struct {
	task   Task
	at     *taskAttempt
	pin    *connSlot
	grp    *replicaGroup
	repIdx int
	// parked marks a replica ticket waiting for its rendezvous to settle:
	// it occupies no worker and no window slot, and claim passes over it
	// until the group's comparison has run. This is what keeps replica
	// barriers deadlock-free — a blocked barrier never holds the scheduler
	// resources its missing sibling needs.
	parked bool
}

// replicaGroup is the dispatcher's view of one replicated task: the shared
// rendezvous plus which slot currently hosts each replica, so placement and
// re-placement keep the group on pairwise-distinct connections. slots is
// guarded by dispatcher.mu after the workers start.
type replicaGroup struct {
	task  Task
	rdv   *replicaRendezvous
	slots []*connSlot
}

// Lease lifecycle (all transitions under dispatcher.mu).
const (
	leaseClaimed int32 = iota
	leaseStarted
	leaseRevoked
)

// lease is one worker's revocable hold on a ticket.
type lease struct {
	ticket
	slot  *connSlot
	state int32
	// banked marks a lease over a banked replica ticket (see
	// dispatcher.banked): the worker synthesizes the outcome from the
	// settled rendezvous instead of running an exchange.
	banked bool
}

// connSlot owns the live (connection, session) pair of one participant link
// and coordinates its replacement after a quarantine. Scheduling state for
// the slot (retirement, pinned tickets) lives in the dispatcher; this struct
// only manages the link itself.
type connSlot struct {
	mu           sync.Mutex
	cond         *sync.Cond
	conn         transport.Conn
	sess         *Session
	gen          int
	reconnecting bool
	dead         bool
	reconnects   int

	// ledger verifies this link's rolling window commits (WithWindowSettle);
	// ctrlAck latches the participant's checkpoint acknowledgement during a
	// drain barrier. Both belong to the slot, not the session — they survive
	// reconnects.
	ledger  *WindowLedger
	ctrlAck atomic.Bool
}

func newConnSlot(conn transport.Conn, sess *Session) *connSlot {
	sl := &connSlot{conn: conn, sess: sess}
	sl.cond = sync.NewCond(&sl.mu)
	return sl
}

// installCtrl wires the slot's session-scoped ctrl demux onto sess: window
// commits feed the slot's ledger, checkpoint acks latch the drain barrier.
// Installed on every session generation the slot owns, so commits keep
// flowing across reconnects.
func (sl *connSlot) installCtrl(sess *Session) {
	sess.setCtrl(func(tm taggedMsg) error {
		switch tm.Type {
		case msgWindowCommit:
			if sl.ledger == nil {
				return fmt.Errorf("%w: window commit on a stream without window settling", ErrUnexpectedMessage)
			}
			return sl.ledger.onCommit(tm.Payload)
		case msgCheckpointAck:
			if len(tm.Payload) != 0 {
				return fmt.Errorf("%w: checkpoint ack carries %d bytes", ErrBadPayload, len(tm.Payload))
			}
			sl.ctrlAck.Store(true)
			return nil
		default:
			return fmt.Errorf("%w: ctrl message type %d", ErrUnexpectedMessage, tm.Type)
		}
	})
}

// current returns the live session, its generation, and its connection.
func (sl *connSlot) current() (*Session, int, transport.Conn) {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.sess, sl.gen, sl.conn
}

// currentConn returns the live connection. Safe to call with dispatcher.mu
// held — the lock order is dispatcher.mu before connSlot.mu, never the
// reverse.
func (sl *connSlot) currentConn() transport.Conn {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.conn
}

// dispatcher is the shared scheduling state: pending (unpinned) tickets,
// per-slot pinned resume tickets, and the outstanding leases. Everything —
// claims, starts, retirements, revocations — serializes on mu, which is what
// makes retire-before-start a real happens-before edge.
type dispatcher struct {
	mu   sync.Mutex
	cond *sync.Cond

	pending []ticket
	pinned  map[*connSlot][]ticket
	leases  map[*lease]struct{}
	retired map[*connSlot]bool
	dead    map[*connSlot]bool
	// banked holds replica tickets whose upload already reached the group
	// rendezvous when their slot died: the upload still votes, the exchange
	// cannot resume anywhere (the participant's prover state died with it),
	// and the outcome is synthesized from the group verdict once it settles.
	banked []ticket
	// source feeds tickets lazily (RunTaskSource): refillLocked materializes
	// at most highWater tickets ahead of execution, consuming source at
	// sourceNext until it reports exhaustion (sourceDone). pinnedRR places
	// source task i on slot i mod len(allSlots) instead of the shared queue.
	source     TaskSource
	sourceNext uint64
	sourceDone bool
	highWater  int
	pinnedRR   bool
	// slots maps every connection a slot has owned (original and
	// replacements) back to it, for Retire.
	slots map[transport.Conn]*connSlot
	// allSlots lists every slot in connection order, for replica
	// re-placement; groups lists every replica rendezvous so a failing or
	// cancelled run can release blocked barriers.
	allSlots []*connSlot
	groups   []*replicaGroup

	eligible func(transport.Conn) bool
	// identity, when set (WithWorkerIdentity), maps a connection to the
	// participant behind it; replica distinctness is then per worker, not
	// per connection slot. Consulted under mu — it must be fast and must
	// not call back into the dispatcher.
	identity  func(transport.Conn) string
	pool      *SupervisorPool
	cancelled bool
	err       error
	cancel    context.CancelFunc
	// wake carries rendezvous-settled nudges from notifyReady to the waker
	// goroutine, which re-broadcasts under mu so claim waiters re-scan for
	// parked tickets that became claimable.
	wake chan struct{}
}

func newDispatcher(pool *SupervisorPool, cfg *streamConfig, cancel context.CancelFunc) *dispatcher {
	d := &dispatcher{
		pinned:   make(map[*connSlot][]ticket),
		leases:   make(map[*lease]struct{}),
		retired:  make(map[*connSlot]bool),
		dead:     make(map[*connSlot]bool),
		slots:    make(map[transport.Conn]*connSlot),
		eligible: cfg.eligible,
		identity: cfg.identity,
		pool:     pool,
		cancel:   cancel,
		wake:     make(chan struct{}, 1),
	}
	d.cond = sync.NewCond(&d.mu)
	return d
}

// groupHosts reports whether sl already carries a member of g — directly,
// or (with a WithWorkerIdentity mapping) through any connection routed to
// the same worker. Pairwise-distinct placement keyed this way keeps replica
// groups on distinct participants even when several connections (broker
// routes, say) reach one worker. skip names a member index to ignore: a
// replica being re-placed vacates its own position, so its dead slot's
// worker must not veto a replacement route to that same worker (pass -1 to
// consider every member).
func (d *dispatcher) groupHosts(g *replicaGroup, sl *connSlot, skip int) bool {
	for i, member := range g.slots {
		if i == skip || member == nil {
			continue
		}
		if member == sl {
			return true
		}
	}
	if d.identity == nil {
		return false
	}
	id := d.identity(sl.currentConn())
	if id == "" {
		return false
	}
	for i, member := range g.slots {
		if i == skip || member == nil {
			continue
		}
		if d.identity(member.currentConn()) == id {
			return true
		}
	}
	return false
}

// notifyReady is the rendezvous onReady hook: a non-blocking nudge that a
// parked replica may have become claimable. It takes no locks, so a
// rendezvous may settle from any lock context (including under d.mu, as
// quorum failure during markDead does); the waker goroutine converts the
// nudge into a cond.Broadcast under the dispatcher lock.
func (d *dispatcher) notifyReady() {
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// abandonAttempt closes the accounting of an attempt that will never reach
// an outcome: settle its verification evals into the supervisor totals and
// credit the tagged bytes that really crossed the wire on its (now dead)
// connections to the pool counters — the only place that traffic can still
// be reported. Settling is idempotent, so an attempt abandoned twice is
// counted once.
//
//gridlint:credit last-resort crediting for traffic whose attempt cannot report an outcome
func (d *dispatcher) abandonAttempt(at *taskAttempt) {
	if at == nil || at.settled {
		return
	}
	at.settle(d.pool.sup)
	d.pool.bytesSent.Add(at.bytesSent)
	d.pool.bytesRecv.Add(at.bytesRecv)
}

// settleOutstanding abandons every ticket left behind at teardown — pending
// or pinned work stranded by cancellation or mass retirement — so eval and
// byte accounting stay complete even on runs that do not finish their task
// list.
func (d *dispatcher) settleOutstanding() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, t := range d.pending {
		d.abandonAttempt(t.at)
	}
	for _, ts := range d.pinned {
		for _, t := range ts {
			d.abandonAttempt(t.at)
		}
	}
	for _, t := range d.banked {
		d.abandonAttempt(t.at)
	}
}

// fail records the run's first error and cancels everything.
func (d *dispatcher) fail(err error) {
	d.mu.Lock()
	if d.err == nil {
		d.err = err
	}
	d.cancelled = true
	d.abortGroupsLocked(err)
	d.cond.Broadcast()
	d.mu.Unlock()
	d.cancel()
}

// stop ends scheduling without an error (context cancelled upstream).
func (d *dispatcher) stop() {
	d.mu.Lock()
	d.cancelled = true
	d.abortGroupsLocked(context.Canceled)
	d.cond.Broadcast()
	d.mu.Unlock()
}

// abortGroupsLocked releases every replica barrier so no exchange stays
// blocked waiting for siblings that will never arrive. Completed groups are
// untouched (abort is a no-op once a rendezvous settled).
func (d *dispatcher) abortGroupsLocked(err error) {
	for _, g := range d.groups {
		g.rdv.abort(err)
	}
}

// firstErr returns the recorded failure, if any.
func (d *dispatcher) firstErr() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}

func (d *dispatcher) registerConn(conn transport.Conn, sl *connSlot) {
	d.mu.Lock()
	d.slots[conn] = sl
	d.mu.Unlock()
}

// retireConn implements TaskStream.Retire.
func (d *dispatcher) retireConn(conn transport.Conn) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if sl, ok := d.slots[conn]; ok {
		d.retireLocked(sl)
	}
}

// retireLocked stops fresh claims on the slot and recalls its revocable
// (claimed, unstarted, unpinned) leases, rerouting their tickets to the
// pending queue for other connections. Pinned leases — resumed work already
// in flight before retirement — are left to finish.
func (d *dispatcher) retireLocked(sl *connSlot) {
	if d.retired[sl] {
		return
	}
	d.retired[sl] = true
	for l := range d.leases {
		if l.slot == sl && l.state == leaseClaimed && l.pin == nil {
			l.state = leaseRevoked
			delete(d.leases, l)
			d.pending = append(d.pending, l.ticket)
		}
	}
	d.cond.Broadcast()
}

// markDead declares the slot's link permanently gone: retire it and restart
// everything still bound to it — queued pinned tickets and claimed pinned
// leases — from scratch on the pending queue (replica tickets are instead
// re-placed on a connection free of their siblings, or declared lost).
func (d *dispatcher) markDead(sl *connSlot) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dead[sl] = true
	d.retireLocked(sl)
	for l := range d.leases {
		if l.slot == sl && l.state == leaseClaimed {
			l.state = leaseRevoked
			delete(d.leases, l)
			d.restartTicketLocked(l.ticket)
		}
	}
	for _, t := range d.pinned[sl] {
		d.restartTicketLocked(t)
	}
	delete(d.pinned, sl)
	d.cond.Broadcast()
}

// restartTicketLocked abandons a ticket's attempt (settling its eval and
// byte accounting) and requeues the bare task. The fresh attempt created on
// the next claim re-derives its randomness from the task seed, so the
// retried verdict is identical to a clean first run on whichever participant
// picks it up. Replica tickets keep their group identity and route through
// re-placement instead of the shared queue.
func (d *dispatcher) restartTicketLocked(t ticket) {
	if t.grp != nil {
		d.replaceReplicaLocked(t, t.grp.slots[t.repIdx])
		return
	}
	d.abandonAttempt(t.at)
	d.pending = append(d.pending, ticket{task: t.task})
}

// replaceReplicaLocked moves a replica whose slot died onto a live,
// non-retired connection that hosts none of its siblings, restarting it
// from scratch there (the dead participant's protocol state is gone). A
// replica whose upload already reached the rendezvous is not restarted: the
// banked upload still votes in the group comparison, and re-running the
// task elsewhere would burn a full execution only to submit a second,
// ignored upload — the ticket is banked instead and its outcome synthesized
// from the group verdict once it settles. When no replacement connection
// exists the replica is declared lost and the group's comparison degrades
// to a quorum over the remaining uploads.
func (d *dispatcher) replaceReplicaLocked(t ticket, dead *connSlot) {
	if t.at != nil && t.at.pt.st.submitted {
		t.pin = dead
		t.parked = false
		d.banked = append(d.banked, t)
		return
	}
	d.abandonAttempt(t.at)
	grp := t.grp
	var repl *connSlot
	for _, cand := range d.allSlots {
		if cand == dead || d.dead[cand] || d.retired[cand] || d.groupHosts(grp, cand, t.repIdx) {
			continue
		}
		repl = cand
		break
	}
	if repl == nil {
		grp.rdv.fail(t.repIdx)
		return
	}
	grp.slots[t.repIdx] = repl
	d.pinned[repl] = append(d.pinned[repl], ticket{task: t.task, grp: grp, repIdx: t.repIdx, pin: repl})
}

// claim blocks until the slot has work: banked outcomes ready to settle,
// its own pinned resume tickets, then the shared pending queue (refilled
// from the task source when one is set). It returns false when the worker
// should exit — run cancelled, slot retired with no pinned work left, or
// all work globally drained.
func (d *dispatcher) claim(sl *connSlot) (*lease, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.cancelled {
			return nil, false
		}
		if l, ok := d.takeBankedLocked(sl); ok {
			return l, true
		}
		if ts := d.pinned[sl]; len(ts) > 0 {
			// FIFO over the claimable tickets; replicas parked at an
			// unready rendezvous are passed over (they need no worker until
			// the group settles — the waker re-broadcasts when it does).
			for i, t := range ts {
				if t.parked && !t.grp.rdv.ready() {
					continue
				}
				d.pinned[sl] = append(append(make([]ticket, 0, len(ts)-1), ts[:i]...), ts[i+1:]...)
				return d.leaseLocked(t, sl), true
			}
		}
		if !d.retired[sl] && d.eligible != nil && !d.eligible(sl.currentConn()) {
			d.retireLocked(sl)
		}
		if d.retired[sl] {
			// A retired slot claims nothing fresh, but its workers must
			// outlive any tickets still pinned to it — a replica parked at
			// an unready barrier becomes claimable only when the group
			// settles, and exiting now would strand it.
			if len(d.pinned[sl]) == 0 {
				return nil, false
			}
			d.cond.Wait()
			continue
		}
		if refilled := d.refillLocked(); refilled && len(d.pinned[sl]) > 0 {
			continue // the refill pinned work to this very slot
		}
		if len(d.pending) > 0 {
			t := d.pending[0]
			d.pending = d.pending[1:]
			return d.leaseLocked(t, sl), true
		}
		if d.sourceDrainedLocked() && len(d.leases) == 0 && d.pinnedEmptyLocked() && len(d.banked) == 0 {
			return nil, false
		}
		d.cond.Wait()
	}
}

// takeBankedLocked claims the first banked replica ticket whose rendezvous
// has settled. Any slot's worker may settle a banked outcome — no exchange
// runs, the verdict is read from the rendezvous.
func (d *dispatcher) takeBankedLocked(sl *connSlot) (*lease, bool) {
	for i, t := range d.banked {
		if !t.grp.rdv.ready() {
			continue
		}
		d.banked = append(d.banked[:i], d.banked[i+1:]...)
		l := d.leaseLocked(t, sl)
		l.banked = true
		return l, true
	}
	return nil, false
}

// sourceDrainedLocked reports whether no further tickets can appear from
// the task source (trivially true without one).
func (d *dispatcher) sourceDrainedLocked() bool {
	return d.source == nil || d.sourceDone
}

// refillLocked tops the scheduler up from the task source: tickets are
// materialized until highWater of them are outstanding (queued, pinned, or
// leased), so an unbounded stream holds a bounded working set. Reports
// whether any ticket was added; waiters are woken so every slot sees the
// new work.
func (d *dispatcher) refillLocked() bool {
	if d.sourceDrainedLocked() {
		return false
	}
	outstanding := len(d.pending) + len(d.leases) + len(d.banked)
	for _, ts := range d.pinned {
		outstanding += len(ts)
	}
	added := false
	for outstanding < d.highWater {
		task, ok := d.source(d.sourceNext)
		if !ok {
			d.sourceDone = true
			break
		}
		idx := d.sourceNext
		d.sourceNext++
		if d.pinnedRR {
			// Deterministic placement: task i belongs to slot i mod conns. A
			// dead slot's share falls back to the shared queue — determinism
			// is only promised while every link lives.
			sl := d.allSlots[int(idx)%len(d.allSlots)]
			if d.dead[sl] {
				d.pending = append(d.pending, ticket{task: task})
			} else {
				d.pinned[sl] = append(d.pinned[sl], ticket{task: task, pin: sl})
			}
		} else {
			d.pending = append(d.pending, ticket{task: task})
		}
		outstanding++
		added = true
	}
	if added {
		d.cond.Broadcast()
	}
	return added
}

func (d *dispatcher) pinnedEmptyLocked() bool {
	for _, ts := range d.pinned {
		if len(ts) > 0 {
			return false
		}
	}
	return true
}

func (d *dispatcher) leaseLocked(t ticket, sl *connSlot) *lease {
	l := &lease{ticket: t, slot: sl, state: leaseClaimed}
	d.leases[l] = struct{}{}
	return l
}

// start atomically re-checks eligibility and transitions the lease to
// started. A fresh lease whose connection was retired between claim and this
// call is revoked here and its ticket rerouted — the recall that closes the
// claim/start race. Pinned tickets bypass the gate: they are in-flight work
// finishing on the participant that holds their state.
func (d *dispatcher) start(l *lease) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if l.state == leaseRevoked {
		return false
	}
	if d.cancelled {
		l.state = leaseRevoked
		delete(d.leases, l)
		d.cond.Broadcast()
		return false
	}
	if l.pin == nil {
		if !d.retired[l.slot] && d.eligible != nil && !d.eligible(l.slot.currentConn()) {
			d.retireLocked(l.slot)
		}
		if d.retired[l.slot] {
			l.state = leaseRevoked
			delete(d.leases, l)
			d.pending = append(d.pending, l.ticket)
			d.cond.Broadcast()
			return false
		}
	}
	l.state = leaseStarted
	return true
}

// complete releases a finished lease.
func (d *dispatcher) complete(l *lease) {
	d.mu.Lock()
	delete(d.leases, l)
	d.cond.Broadcast()
	d.mu.Unlock()
}

// parkAtBarrier shelves a replica whose exchange reached an incomplete
// rendezvous: the ticket keeps its attempt (upload submitted, protocol
// state live on the participant) and waits, claimable again once the
// group settles and the waker broadcasts.
func (d *dispatcher) parkAtBarrier(l *lease) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.leases, l)
	t := l.ticket
	t.pin = l.slot
	t.parked = true
	d.pinned[l.slot] = append(d.pinned[l.slot], t)
	d.cond.Broadcast()
}

// parkForResume returns a quarantined lease's ticket to the scheduler: bound
// mid-protocol attempts pin to their slot (to resume on the replacement
// connection), unbound ones rejoin the shared queue for any connection, and
// tickets whose slot is already dead restart from scratch. Replica tickets
// always stay with their slot — sibling distinctness is per slot — unless
// the slot is dead, in which case they are re-placed.
func (d *dispatcher) parkForResume(l *lease) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.leases, l)
	t := l.ticket
	switch {
	case t.grp != nil && d.dead[l.slot]:
		d.replaceReplicaLocked(t, l.slot)
	case t.grp != nil:
		t.pin = l.slot
		d.pinned[l.slot] = append(d.pinned[l.slot], t)
	case t.at != nil && t.at.started() && d.dead[l.slot]:
		d.restartTicketLocked(t)
	case t.at != nil && t.at.started():
		t.pin = l.slot
		d.pinned[l.slot] = append(d.pinned[l.slot], t)
	default:
		t.pin = nil
		d.pending = append(d.pending, t)
	}
	d.cond.Broadcast()
}

// recover re-establishes the slot's link after generation gen died. The
// first worker in becomes the leader: it quarantines the old connection
// (closing it and banking the dead session's framing overhead), redials, and
// opens a replacement session; late arrivals wait for the outcome. It
// returns false when the slot is permanently dead.
//
//gridlint:credit banks the dead session's framing overhead before the slot moves on
func (sl *connSlot) recover(gen int, d *dispatcher, p *SupervisorPool, cfg *streamConfig, window int) bool {
	sl.mu.Lock()
	for {
		if sl.dead {
			sl.mu.Unlock()
			return false
		}
		if sl.gen > gen {
			sl.mu.Unlock()
			return true // another worker already replaced the link
		}
		if !sl.reconnecting {
			sl.reconnecting = true
			break
		}
		sl.cond.Wait()
	}
	oldConn, oldSess := sl.conn, sl.sess
	canRetry := cfg.redial != nil && sl.reconnects < cfg.maxReconnects
	sl.mu.Unlock()

	// Quarantine: the connection is gone either way, and the dead session's
	// shared framing overhead must survive into the pool counters.
	_ = oldConn.Close()
	oldSess.abandon()
	ovSent, ovRecv := oldSess.OverheadBytes()
	p.bytesSent.Add(ovSent)
	p.bytesRecv.Add(ovRecv)

	var newConn transport.Conn
	var newSess *Session
	if canRetry {
		if conn, err := cfg.redial(oldConn); err == nil && conn != nil {
			if sess, err := p.sup.OpenSession(conn, window, WithSessionRecvTimeout(cfg.recvTimeout)); err == nil {
				newConn, newSess = conn, sess
			} else {
				_ = conn.Close()
			}
		}
	}

	// Register before publishing: the moment the swap below makes newConn
	// visible through sl.current(), outcomes can carry it and
	// TaskStream.Retire(newConn) must already resolve to this slot.
	if newSess != nil {
		d.registerConn(newConn, sl)
	}

	sl.mu.Lock()
	sl.reconnecting = false
	if newSess == nil {
		sl.dead = true
		sl.cond.Broadcast()
		sl.mu.Unlock()
		d.markDead(sl)
		return false
	}
	sl.installCtrl(newSess)
	sl.conn, sl.sess = newConn, newSess
	sl.gen++
	sl.reconnects++
	sl.cond.Broadcast()
	sl.mu.Unlock()
	return true
}

// settleBanked closes out a banked replica: read the settled group verdict,
// fold the attempt's accounting into the pool, and report the outcome the
// dead link's exchange would have produced. A rendezvous error (quorum
// lost) leaves no verdict to report; the attempt still settles.
//
//gridlint:credit a banked replica's bytes reach the pool here, its exchange being unfinishable
func (p *SupervisorPool) settleBanked(l *lease) (*TaskOutcome, error) {
	at := l.at
	v, err := l.grp.rdv.await(l.repIdx)
	at.settle(p.sup)
	p.bytesSent.Add(at.bytesSent)
	p.bytesRecv.Add(at.bytesRecv)
	if err != nil {
		return nil, err
	}
	pt := at.pt
	pt.outcome.Verdict = v
	pt.outcome.BytesSent = at.bytesSent
	pt.outcome.BytesRecv = at.bytesRecv
	return pt.outcome, nil
}

// RunTasksStream verifies tasks over pipelined sessions with work stealing:
// every connection opens a session holding up to `window` concurrent task
// exchanges, and all sessions claim tasks from one shared queue — fast
// participants take more work instead of idling behind static per-conn
// groups. Outcomes stream out as they complete.
//
// Claims are revocable leases: a connection retired (TaskStream.Retire or
// the WithEligibility gate) between claiming a task and starting its
// exchange has the claim recalled and the task rerouted, so no exchange ever
// starts on a retired connection. With WithRedial, a transport fault
// quarantines the connection and its in-flight tasks resume mid-protocol on
// a replacement connection to the same participant — verdicts and the
// per-task randomness stream are unaffected, so a faulty run's verdicts are
// byte-identical to a clean run's with equal seeds. Tasks stranded on a dead
// slot restart from scratch elsewhere; work is only dropped, cleanly, when
// every connection is retired (callers detect the shortfall by counting
// outcomes).
//
// Which connection runs which task is scheduling-dependent; the verdict of a
// given (task, connection) pair is not. The pool's worker bound applies
// across sessions: at most `workers` exchanges execute at once. The first
// protocol-level error cancels the run and surfaces on TaskStream.Err.
//
// With the double-check scheme the stream runs replicated: every task fans
// out to WithReplicas(R) pairwise-distinct connections (placed round-robin
// over conns), each replica's upload phase pipelines freely inside its
// session window, and the settle phase meets a cross-connection rendezvous
// that compares the group's uploads and issues one verdict per replica — R
// outcomes per task, ordered by (Task.ID, Replica) like the serial
// RunReplicated slice, with verdicts byte-identical to it for equal seeds.
// A replica reaching an incomplete rendezvous parks — holding no worker
// and no window slot — and is re-claimed when the group settles, so
// barriers can never deadlock the scheduler however tasks interleave.
//
//gridlint:credit teardown folds each surviving session's framing overhead into the pool totals
func (p *SupervisorPool) RunTasksStream(ctx context.Context, conns []transport.Conn, tasks []Task, window int, opts ...StreamOption) (*TaskStream, error) {
	if len(conns) == 0 {
		return nil, fmt.Errorf("%w: no connections", ErrBadConfig)
	}
	cfg := streamConfig{maxReconnects: defaultMaxReconnects}
	for _, opt := range opts {
		opt.applyStream(&cfg)
	}
	replicated := p.sup.cfg.Spec.Kind == SchemeDoubleCheck
	replicas := cfg.replicas
	switch {
	case replicated && replicas == 0:
		replicas = 2
	case replicated && replicas < 2:
		return nil, fmt.Errorf("%w: double-check needs >= 2 replicas, got %d", ErrBadConfig, replicas)
	case !replicated && replicas != 0:
		return nil, fmt.Errorf("%w: WithReplicas requires the double-check scheme", ErrBadConfig)
	}
	if replicated && len(conns) < replicas {
		return nil, fmt.Errorf("%w: %d replicas need as many distinct connections, got %d",
			ErrBadConfig, replicas, len(conns))
	}
	if replicated && cfg.identity != nil {
		// With identity-keyed distinctness the guarantee that pre-placement
		// always finds a sibling-free connection needs as many distinct
		// workers as replicas, not just connections.
		distinct := make(map[string]struct{}, len(conns))
		for i, conn := range conns {
			id := cfg.identity(conn)
			if id == "" {
				id = fmt.Sprintf("\x00conn-%d", i) // unknown: distinct by connection
			}
			distinct[id] = struct{}{}
		}
		if len(distinct) < replicas {
			return nil, fmt.Errorf("%w: %d replicas need as many distinct workers, got %d",
				ErrBadConfig, replicas, len(distinct))
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	d := newDispatcher(p, &cfg, cancel)
	slots, err := p.openStreamSlots(d, conns, window, &cfg)
	if err != nil {
		cancel()
		return nil, err
	}
	if replicated {
		// Pre-place every group round-robin with a single cursor, skipping
		// connections already holding a sibling — the same walk the serial
		// simulator's scheduler performs, so the task→replica→connection
		// pairing (and with it every verdict) matches the dialogue run.
		// Per-slot FIFO claiming then works all slots through the groups in
		// the same global order, which keeps the barriers deadlock-free.
		cursor := 0
		for _, t := range tasks {
			rdv := newReplicaRendezvous(replicas)
			rdv.onReady = d.notifyReady
			grp := &replicaGroup{task: t, rdv: rdv, slots: make([]*connSlot, replicas)}
			d.groups = append(d.groups, grp)
			for j := 0; j < replicas; j++ {
				var sl *connSlot
				for tries := 0; tries < len(slots); tries++ {
					cand := slots[cursor%len(slots)]
					cursor++
					if !d.groupHosts(grp, cand, -1) {
						sl = cand
						break
					}
				}
				// len(conns) >= replicas distinct workers guarantees a
				// sibling-free connection within len(slots) candidates.
				grp.slots[j] = sl
				d.pinned[sl] = append(d.pinned[sl], ticket{task: t, grp: grp, repIdx: j, pin: sl})
			}
		}
	} else {
		for _, t := range tasks {
			d.pending = append(d.pending, ticket{task: t})
		}
	}

	return p.launchStream(ctx, cancel, d, &cfg, slots, window), nil
}

// RunTaskSource verifies an unbounded (or very long) task stream over
// pipelined sessions: tasks are drawn lazily from source under a bounded
// look-ahead (WithHighWater), so scheduler memory is O(high water +
// in-flight) regardless of stream length. Everything RunTasksStream
// documents — revocable claims, quarantine/resume, retirement — applies;
// the double-check scheme is not supported (replica groups need the full
// task list for pre-placement; use RunTasksStream).
//
// With WithWindowSettle the run carries rolling window commitments, and
// with WithDrainCheckpoint it ends with a durable checkpoint barrier —
// together the machinery behind kill-and-restart long-horizon runs.
func (p *SupervisorPool) RunTaskSource(ctx context.Context, conns []transport.Conn, source TaskSource, window int, opts ...StreamOption) (*TaskStream, error) {
	if len(conns) == 0 {
		return nil, fmt.Errorf("%w: no connections", ErrBadConfig)
	}
	if source == nil {
		return nil, fmt.Errorf("%w: nil task source", ErrBadConfig)
	}
	cfg := streamConfig{maxReconnects: defaultMaxReconnects}
	for _, opt := range opts {
		opt.applyStream(&cfg)
	}
	if p.sup.cfg.Spec.Kind == SchemeDoubleCheck || cfg.replicas != 0 {
		return nil, fmt.Errorf("%w: RunTaskSource does not support replicated double-check; use RunTasksStream", ErrBadConfig)
	}
	if cfg.highWater <= 0 {
		cfg.highWater = 2 * window * len(conns)
	}

	ctx, cancel := context.WithCancel(ctx)
	d := newDispatcher(p, &cfg, cancel)
	slots, err := p.openStreamSlots(d, conns, window, &cfg)
	if err != nil {
		cancel()
		return nil, err
	}
	d.source = source
	d.sourceNext = cfg.sourceBase
	d.highWater = cfg.highWater
	d.pinnedRR = cfg.pinned

	return p.launchStream(ctx, cancel, d, &cfg, slots, window), nil
}

// openStreamSlots opens one pipelined session per connection and wraps each
// in a registered connSlot, attaching window ledgers (WithWindowSettle) and
// the ctrl demux. On error every session already opened is closed.
func (p *SupervisorPool) openStreamSlots(d *dispatcher, conns []transport.Conn, window int, cfg *streamConfig) ([]*connSlot, error) {
	if cfg.ledgers != nil && len(cfg.ledgers) != len(conns) {
		return nil, fmt.Errorf("%w: %d window ledgers for %d connections", ErrBadConfig, len(cfg.ledgers), len(conns))
	}
	slots := make([]*connSlot, len(conns))
	for i, conn := range conns {
		sess, err := p.sup.OpenSession(conn, window, WithSessionRecvTimeout(cfg.recvTimeout))
		if err != nil {
			for _, sl := range slots[:i] {
				_ = sl.sess.Close()
			}
			return nil, err
		}
		slots[i] = newConnSlot(conn, sess)
		if cfg.ledgers != nil {
			slots[i].ledger = cfg.ledgers[i]
		}
		slots[i].installCtrl(sess)
		d.registerConn(conn, slots[i])
	}
	d.allSlots = slots
	return slots, nil
}

// launchStream starts the shared machinery of a streaming run: the
// cancellation watcher, the rendezvous waker, the per-slot exchange
// workers, and the finisher that drains, optionally checkpoints, closes the
// sessions, and publishes the terminal error.
//
//gridlint:credit teardown folds each surviving session's framing overhead into the pool totals
func (p *SupervisorPool) launchStream(ctx context.Context, cancel context.CancelFunc, d *dispatcher, cfg *streamConfig, slots []*connSlot, window int) *TaskStream {
	stream := &TaskStream{
		outcomes: make(chan StreamedOutcome),
		done:     make(chan struct{}),
		d:        d,
	}

	// Wake parked workers when the caller cancels.
	go func() {
		<-ctx.Done()
		d.stop()
	}()
	// The waker: rendezvous settle from arbitrary goroutines (and lock
	// contexts); this loop turns their lock-free nudges into dispatcher
	// broadcasts so claim waiters re-scan parked tickets. It ends with the
	// run — d.stop's own broadcast covers the shutdown races.
	go func() {
		for {
			select {
			case <-d.wake:
				d.mu.Lock()
				d.cond.Broadcast()
				d.mu.Unlock()
			case <-ctx.Done():
				return
			}
		}
	}()

	// The pool's worker bound applies across all sessions, exactly as in
	// RunTasks: sessions hold up to `window` claims each, but at most
	// p.workers exchanges execute at once.
	sem := make(chan struct{}, p.workers)

	var workers sync.WaitGroup
	for _, sl := range slots {
		sl := sl
		for w := 0; w < window; w++ {
			workers.Add(1)
			go func() {
				defer workers.Done()
				p.streamWorker(ctx, d, sl, cfg, window, sem, stream)
			}()
		}
	}

	workersDone := make(chan struct{})
	go func() {
		workers.Wait()
		close(workersDone)
	}()

	// Finisher: settle stranded work, run the drain checkpoint barrier if
	// one was requested, close the surviving sessions (flushing their
	// writers) and bank their framing overhead — dead sessions were banked
	// at quarantine — then publish the terminal error and close the stream.
	go func() {
		<-workersDone
		d.settleOutstanding()
		var closeErr error
		if cfg.doDrainCkpt && d.firstErr() == nil && ctx.Err() == nil {
			if err := checkpointSlots(slots, cfg.drainCkpt); err != nil {
				closeErr = fmt.Errorf("grid: drain checkpoint: %w", err)
			}
		}
		for _, sl := range slots {
			sl.mu.Lock()
			dead, sess := sl.dead, sl.sess
			sl.mu.Unlock()
			if dead {
				continue
			}
			if err := sess.Close(); err != nil && closeErr == nil {
				closeErr = fmt.Errorf("grid: session close: %w", err)
			}
			ovSent, ovRecv := sess.OverheadBytes()
			p.bytesSent.Add(ovSent)
			p.bytesRecv.Add(ovRecv)
		}
		cancel()
		d.mu.Lock()
		if d.err == nil && closeErr != nil {
			d.err = closeErr
		}
		stream.err = d.err
		d.mu.Unlock()
		close(stream.outcomes)
		close(stream.done)
	}()

	return stream
}

// checkpointSlots runs the drain-time checkpoint barrier: each live link is
// asked to persist its durable state (msgCheckpoint) and the barrier holds
// until the participant acknowledges. Links are visited serially — the
// barrier runs once per segment, its cost is a round trip per link.
func checkpointSlots(slots []*connSlot, seq uint64) error {
	payload := encodeCheckpoint(checkpointMsg{Seq: seq})
	for _, sl := range slots {
		sl.mu.Lock()
		dead, sess := sl.dead, sl.sess
		sl.mu.Unlock()
		if dead {
			continue
		}
		sl.ctrlAck.Store(false)
		if err := sess.sendCtrl(msgCheckpoint, payload); err != nil {
			return err
		}
		if err := sess.pullCtrl(func() bool { return sl.ctrlAck.Load() }); err != nil {
			return err
		}
	}
	return nil
}

// streamWorker is one of a slot's `window` exchange drivers: claim, start
// (or yield to a revocation), run the attempt, and either stream the
// outcome, park the attempt for resume, or fail the run.
//
//gridlint:credit pool totals fold in each streamed outcome's settled bytes
func (p *SupervisorPool) streamWorker(ctx context.Context, d *dispatcher, sl *connSlot, cfg *streamConfig, window int, sem chan struct{}, stream *TaskStream) {
	for {
		l, ok := d.claim(sl)
		if !ok {
			return
		}
		if !d.start(l) {
			continue
		}
		if l.banked {
			// The dead replica's upload already votes at the rendezvous
			// (which is ready, or this lease would not exist); synthesize its
			// outcome without an exchange. The outcome's connection is the
			// dead link that carried the upload, so per-worker attribution
			// stays truthful.
			outcome, err := p.settleBanked(l)
			if err == nil {
				select {
				case stream.outcomes <- StreamedOutcome{Outcome: outcome, Conn: l.pin.currentConn()}:
				case <-ctx.Done():
				}
			}
			d.complete(l)
			continue
		}
		if l.at == nil {
			var at *taskAttempt
			var err error
			if l.grp != nil {
				at, err = p.sup.newReplicaAttempt(l.task, l.grp.rdv, l.repIdx)
			} else {
				at, err = p.sup.NewAttempt(l.task)
			}
			if err != nil {
				d.complete(l)
				d.fail(fmt.Errorf("grid: task %d: %w", l.task.ID, err))
				return
			}
			l.at = at
		}
		// Bind the attempt to this slot's window ledger (nil without window
		// settling) so decide() banks the task's stream digest on the link
		// whose commits will cover it. Re-bound on every claim: a replica
		// re-placed after a slot death must report to its new link's ledger.
		l.at.pt.ledger = sl.ledger
		sess, gen, conn := sl.current()

		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			// Hand the ticket back so accounting settles at teardown.
			d.parkForResume(l)
			return
		}
		// Replica exchanges share the worker bound safely because they
		// never hold it across their group barrier: an unready rendezvous
		// parks the attempt (errReplicaParked) instead of blocking.
		outcome, err := sess.RunAttempt(l.at)
		<-sem

		if err != nil {
			if errors.Is(err, errReplicaParked) {
				// The replica reached its rendezvous before the group was
				// complete; shelve it (no worker, no window slot) until the
				// comparison runs, and claim other work meanwhile.
				d.parkAtBarrier(l)
				continue
			}
			if errors.Is(err, ErrConnQuarantined) {
				d.parkForResume(l)
				sl.recover(gen, d, p, cfg, window)
				continue
			}
			if l.grp != nil && ctx.Err() != nil {
				// The barrier was released by cancellation, not by a fault of
				// this replica; park so accounting settles at teardown.
				d.parkForResume(l)
				return
			}
			// Terminal failure: the attempt never reaches an outcome, so
			// close its eval and byte accounting here.
			d.abandonAttempt(l.at)
			d.complete(l)
			d.fail(fmt.Errorf("grid: task %d: %w", l.task.ID, err))
			return
		}
		p.bytesSent.Add(outcome.BytesSent)
		p.bytesRecv.Add(outcome.BytesRecv)
		select {
		case stream.outcomes <- StreamedOutcome{Outcome: outcome, Conn: conn}:
		case <-ctx.Done():
		}
		d.complete(l)
	}
}
