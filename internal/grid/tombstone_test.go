package grid

import (
	"testing"

	"uncheatgrid/internal/transport"
)

// TestVerdictTombstonesBounded pins the ROADMAP follow-on: a long-lived
// worker serving unboundedly many distinct tasks must not grow its
// counted-verdict tombstone map without bound. With the cap lowered, a run
// far past it keeps the map at the cap (and the order queue within its
// compaction bound) while still counting every task exactly once — and an
// ID reused by a fresh assignment still clears its tombstone so the new
// task is tallied.
func TestVerdictTombstonesBounded(t *testing.T) {
	old := maxVerdictTombstones
	maxVerdictTombstones = 8
	defer func() { maxVerdictTombstones = old }()

	participant, err := NewParticipant("long-lived", HonestFactory)
	if err != nil {
		t.Fatalf("NewParticipant: %v", err)
	}
	supConn, partConn := transport.Pipe(transport.WithBuffer(8))
	serveErr := make(chan error, 1)
	go func() { serveErr <- participant.Serve(partConn) }()
	sup, err := NewSupervisor(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeCBS, M: 2}, Seed: 3})
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}

	const tasks = 40
	for i := 0; i < tasks; i++ {
		outcome, err := sup.RunTask(supConn, Task{
			ID: uint64(i), Start: uint64(i) * 16, N: 16, Workload: "synthetic", Seed: 2,
		})
		if err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
		if !outcome.Verdict.Accepted {
			t.Fatalf("honest task %d rejected: %s", i, outcome.Verdict.Reason)
		}
	}
	if got := participant.Totals().Tasks; got != tasks {
		t.Fatalf("counted %d tasks, want %d", got, tasks)
	}
	participant.mu.Lock()
	mapLen, orderLen := len(participant.counted), len(participant.countedOrder)
	participant.mu.Unlock()
	if mapLen > maxVerdictTombstones {
		t.Errorf("tombstone map holds %d entries, cap %d", mapLen, maxVerdictTombstones)
	}
	if orderLen >= 2*maxVerdictTombstones {
		t.Errorf("tombstone order queue holds %d entries, compaction bound %d", orderLen, 2*maxVerdictTombstones)
	}

	// A fresh assignment reusing task ID 0 supersedes the old task: its
	// tombstone (evicted or not) must not suppress the new tally.
	outcome, err := sup.RunTask(supConn, Task{ID: 0, Start: 0, N: 16, Workload: "synthetic", Seed: 2})
	if err != nil {
		t.Fatalf("reused task: %v", err)
	}
	if !outcome.Verdict.Accepted {
		t.Fatalf("reused honest task rejected: %s", outcome.Verdict.Reason)
	}
	if got := participant.Totals().Tasks; got != tasks+1 {
		t.Fatalf("reused ID not re-counted: %d tasks, want %d", got, tasks+1)
	}

	_ = supConn.Close()
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestVerdictTombstoneChurnBoundsOrderQueue drives the worst case for the
// order queue: the same ID counted, cleared by fresh-assignment reuse, and
// counted again, over and over — the map stays tiny, so eviction never
// runs, and only compaction keeps the queue from growing without bound.
func TestVerdictTombstoneChurnBoundsOrderQueue(t *testing.T) {
	old := maxVerdictTombstones
	maxVerdictTombstones = 4
	defer func() { maxVerdictTombstones = old }()

	participant, err := NewParticipant("churn", HonestFactory)
	if err != nil {
		t.Fatalf("NewParticipant: %v", err)
	}
	for i := 0; i < 100; i++ {
		participant.mu.Lock()
		delete(participant.counted, 1) // what a fresh assignment reusing ID 1 does
		participant.mu.Unlock()
		participant.recordVerdict(1, "honest", Verdict{Accepted: true}, 1)
	}
	participant.mu.Lock()
	mapLen, orderLen := len(participant.counted), len(participant.countedOrder)
	participant.mu.Unlock()
	if mapLen != 1 {
		t.Errorf("churned map holds %d entries, want 1", mapLen)
	}
	if orderLen >= 2*maxVerdictTombstones {
		t.Errorf("order queue grew to %d entries under churn, bound %d", orderLen, 2*maxVerdictTombstones)
	}
}
