package grid

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync/atomic"

	"uncheatgrid/internal/baseline"
	"uncheatgrid/internal/core"
	"uncheatgrid/internal/transport"
	"uncheatgrid/internal/workload"
)

// SupervisorConfig configures a supervisor.
type SupervisorConfig struct {
	// Spec selects and parameterizes the verification scheme.
	Spec SchemeSpec
	// Seed drives challenge and ringer randomness. Each task draws from a
	// private generator seeded by hash(Seed, task ID), so runs with equal
	// seeds and inputs are reproducible regardless of how tasks are
	// scheduled across goroutines.
	Seed int64
	// CrossCheckReports enables the screener cross-check on sampled
	// indices, which catches malicious (report-corrupting) participants in
	// the schemes that audit samples.
	CrossCheckReports bool
}

// Supervisor organizes the computation (Section 2.1): it assigns tasks,
// collects screened results, and verifies participants with the configured
// scheme. A Supervisor is safe for concurrent RunTask calls on distinct
// connections; a single connection must not carry two tasks at once (the
// protocol is ordered). SupervisorPool schedules exactly that way.
type Supervisor struct {
	cfg SupervisorConfig

	// evals counts supervisor-side evaluations of f spent on verification,
	// aggregated across all (possibly concurrent) tasks.
	evals atomic.Int64
}

// NewSupervisor validates the configuration and creates a supervisor.
func NewSupervisor(cfg SupervisorConfig) (*Supervisor, error) {
	if err := cfg.Spec.validate(); err != nil {
		return nil, err
	}
	return &Supervisor{cfg: cfg}, nil
}

// VerifyEvals reports how many f evaluations the supervisor has spent
// verifying results since construction.
func (s *Supervisor) VerifyEvals() int64 { return s.evals.Load() }

// taskSeed mixes the supervisor seed with the task ID through SHA-256 so
// every task gets an independent, scheduling-order-free randomness stream.
func taskSeed(seed int64, taskID uint64) int64 {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(seed))
	binary.LittleEndian.PutUint64(buf[8:], taskID)
	sum := sha256.Sum256(buf[:])
	return int64(binary.LittleEndian.Uint64(sum[:8]))
}

// taskRun carries the mutable state of one task execution — its randomness
// stream and verification-eval counter — so concurrent tasks never contend
// on supervisor fields.
type taskRun struct {
	sup   *Supervisor
	rng   *rand.Rand
	evals int64
}

func (s *Supervisor) newTaskRun(task Task) *taskRun {
	return &taskRun{
		sup: s,
		rng: rand.New(rand.NewSource(taskSeed(s.cfg.Seed, task.ID))),
	}
}

// TaskOutcome summarizes one verified task execution.
type TaskOutcome struct {
	// Task is the assignment.
	Task Task
	// Verdict is the ruling sent to the participant.
	Verdict Verdict
	// Reports are the screened results received.
	Reports []Report
	// BytesSent and BytesRecv are the supervisor-side traffic for this
	// task, frame headers included.
	BytesSent, BytesRecv int64
	// VerifyEvals counts supervisor-side f evaluations for this task.
	VerifyEvals int64
	// CheatIndex is the convicting sample when Verdict rejects due to a
	// detected cheat; -1 otherwise.
	CheatIndex int64
	// Replica is this execution's position in its double-check group; 0 for
	// unreplicated schemes. Replicated runs emit one outcome per replica
	// (same task ID), and (Task.ID, Replica) orders them like the serial
	// RunReplicated outcome slice.
	Replica int
}

// protoConn is the one-task view of a connection: ordered Send/Recv of a
// single task's protocol messages. transport.Conn implements it directly
// (the classic one-dialogue-per-connection mode); pipelined sessions hand
// each in-flight task a virtual protoConn multiplexed over one shared
// transport.Conn. The per-phase supervisor and participant state machines
// are written against this interface so both modes share one protocol
// implementation.
type protoConn interface {
	Send(m transport.Message) error
	Recv() (transport.Message, error)
}

// RunTask assigns the task over conn and runs the configured verification
// scheme to completion (assignment through verdict). Protocol and transport
// failures are returned as errors; a detected cheat is not an error — it is
// recorded in the outcome's Verdict.
func (s *Supervisor) RunTask(conn transport.Conn, task Task) (*TaskOutcome, error) {
	if s.cfg.Spec.Kind == SchemeDoubleCheck {
		return nil, fmt.Errorf("%w: double-check requires RunReplicated", ErrBadConfig)
	}
	outcomes, err := s.run(conn, task, nil)
	if err != nil {
		return nil, err
	}
	return outcomes, nil
}

// preparedTask is the output of the assignment phase: everything the
// supervisor needs to drive one task's verification, independent of the
// connection (real or session-virtual) the exchange will run on. Its st
// field is the task's resumable wire-phase state machine (see exchange.go):
// the exchange can detach from a dead connection and re-attach elsewhere.
type preparedTask struct {
	assign  assignment
	f       workload.Function
	tr      *taskRun
	ringers *baseline.RingerSet
	outcome *TaskOutcome
	st      *exchangeState

	// rdv and repIdx are set on replica attempts (pipelined double-check):
	// the settle phase submits the upload to the rendezvous as replica
	// repIdx and takes the group verdict instead of deciding locally.
	// parkable attempts detach from an unready rendezvous (errReplicaParked)
	// so the dispatcher can reuse their worker; non-parkable ones block.
	rdv      *replicaRendezvous
	repIdx   int
	parkable bool

	// ledger, when the task rides a window-settling stream, receives the
	// task's stream digest at decision time; digested makes that exactly
	// once even when decide re-enters after a replica park.
	ledger   *WindowLedger
	digested bool
}

// prepareTask runs the assignment phase: validate the task, instantiate the
// workload and the task's private randomness stream, and (ringer scheme)
// plant the secrets. No traffic is generated; ringer evaluations are charged
// to the task's verification budget.
//
//gridlint:credit ringer planting charges its evaluations to the task's verify budget
func (s *Supervisor) prepareTask(task Task) (*preparedTask, error) {
	if err := task.validate(); err != nil {
		return nil, err
	}
	f, err := workload.New(task.Workload, task.Seed)
	if err != nil {
		return nil, err
	}
	tr := s.newTaskRun(task)
	pt := &preparedTask{
		assign:  assignment{Task: task, Spec: s.cfg.Spec},
		f:       f,
		tr:      tr,
		outcome: &TaskOutcome{Task: task, CheatIndex: -1},
		st:      &exchangeState{phase: initialPhase(s.cfg.Spec.Kind)},
	}
	if s.cfg.Spec.Kind == SchemeRinger {
		// Secrets are domain-relative; f is evaluated at absolute inputs.
		pt.ringers, err = baseline.PlantRingers(
			func(x uint64) []byte { tr.evals++; return f.Eval(task.Start + x) },
			task.N, s.cfg.Spec.M, tr.rng)
		if err != nil {
			return nil, err
		}
		pt.assign.RingerImages = pt.ringers.Images
	}
	return pt, nil
}

// taskAttempt is the supervisor's detachable handle on one in-flight task:
// the prepared state machine plus byte totals accumulated across every
// connection that carried it. An attempt is created once per task, survives
// connection quarantine, and re-attaches to a replacement session through
// Session.RunAttempt. Retransmitted announcements are counted, so faulty
// runs report what actually crossed the wire.
type taskAttempt struct {
	task                 Task
	pt                   *preparedTask
	bytesSent, bytesRecv int64
	settled              bool
	// attachedTo remembers the session the attempt last ran on. Re-running
	// on the same live session (a replica re-claimed after parking at its
	// barrier) must not re-announce: the participant still holds the task.
	attachedTo *Session
}

// NewAttempt validates and prepares a task for execution without touching
// any connection.
func (s *Supervisor) NewAttempt(task Task) (*taskAttempt, error) {
	pt, err := s.prepareTask(task)
	if err != nil {
		return nil, err
	}
	return &taskAttempt{task: task, pt: pt}, nil
}

// newReplicaAttempt prepares one replica of a double-check group: an
// ordinary attempt whose settle phase reports to the group rendezvous as
// replica idx, parking (not blocking) while the group is incomplete. Each
// replica draws its own task-seeded randomness stream, exactly like the
// serial RunReplicated's per-connection runs.
func (s *Supervisor) newReplicaAttempt(task Task, rdv *replicaRendezvous, idx int) (*taskAttempt, error) {
	at, err := s.NewAttempt(task)
	if err != nil {
		return nil, err
	}
	at.pt.rdv, at.pt.repIdx = rdv, idx
	at.pt.parkable = true
	at.pt.outcome.Replica = idx
	return at, nil
}

// started reports whether participant state binds this attempt to its
// current peer. An attempt that has received nothing can attach to any
// participant (its randomness so far is derived purely from the task seed);
// one mid-protocol must resume where its commitment lives.
func (at *taskAttempt) started() bool { return at.pt.st.received }

// settle closes the attempt's verification-eval accounting exactly once,
// however many connections (or restarts) the task consumed.
func (at *taskAttempt) settle(s *Supervisor) {
	if at.settled {
		return
	}
	at.settled = true
	s.settle(at.pt)
}

// settle closes the task's verification-eval accounting into its outcome
// and the supervisor totals. Called exactly once per prepared task.
//
//gridlint:credit the single settle point for a task's verification evals
func (s *Supervisor) settle(pt *preparedTask) {
	pt.outcome.VerifyEvals = pt.tr.evals
	s.evals.Add(pt.tr.evals)
}

// run executes one supervisor-side task exchange in dialogue mode, where
// the task owns the connection and per-task traffic is the connection's
// stats delta.
func (s *Supervisor) run(conn transport.Conn, task Task, replicaResults *[][]byte) (*TaskOutcome, error) {
	pt, err := s.prepareTask(task)
	if err != nil {
		return nil, err
	}
	startSent := conn.Stats().BytesSent()
	startRecv := conn.Stats().BytesRecv()
	defer func() {
		pt.outcome.BytesSent = conn.Stats().BytesSent() - startSent
		pt.outcome.BytesRecv = conn.Stats().BytesRecv() - startRecv
		s.settle(pt)
	}()
	if err := s.runExchange(conn, pt, replicaResults); err != nil {
		return nil, err
	}
	return pt.outcome, nil
}

func (s *Supervisor) sendVerdict(conn protoConn, outcome *TaskOutcome) error {
	return conn.Send(transport.Message{Type: msgVerdict, Payload: encodeVerdict(outcome.Verdict)})
}

// checkFuncFor builds the Step 4 output check: a cheap verifier when the
// workload supports one, otherwise recomputation. Evaluations are charged
// to the task's verification budget.
//
//gridlint:credit recomputation checks charge the task's verify budget per evaluation
func (tr *taskRun) checkFuncFor(task Task, f workload.Function) core.CheckFunc {
	if verifier, ok := workload.AsOutputVerifier(f); ok {
		return func(index uint64, output []byte) error {
			if !verifier.VerifyOutput(task.Start+index, output) {
				return core.ErrWrongOutput
			}
			return nil
		}
	}
	return core.RecomputeCheck(func(index uint64) []byte {
		tr.evals++
		return f.Eval(task.Start + index)
	})
}

// crossCheckReports recomputes the screener on the sampled inputs and
// confirms the participant's report list agrees — the sampled-index defense
// against the malicious model of Section 2.2.
//
//gridlint:credit sampled-index recomputation charges the task's verify budget
func (tr *taskRun) crossCheckReports(task Task, f workload.Function, indices []uint64, reports []Report) string {
	screener := f.Screener()
	reported := make(map[uint64]string, len(reports))
	for _, rep := range reports {
		reported[rep.X] = rep.S
	}
	for _, idx := range indices {
		x := task.Start + idx
		tr.evals++
		value := f.Eval(x)
		wantS, interesting := screener.Screen(x, value)
		gotS, gotReported := reported[x]
		if interesting && (!gotReported || gotS != wantS) {
			return fmt.Sprintf("screener report missing or wrong for sampled input %d", x)
		}
		if !interesting && gotReported {
			return fmt.Sprintf("fabricated report for sampled input %d", x)
		}
	}
	return ""
}

// RunReplicated assigns the same task to every connection and compares the
// uploads index-wise (the double-check baseline). The i-th outcome carries
// the verdict for the i-th replica. An ErrNoConsensus comparison rejects
// every replica.
//
//gridlint:credit verdict-phase bytes are attributed per replica from connection deltas
func (s *Supervisor) RunReplicated(conns []transport.Conn, task Task) ([]*TaskOutcome, error) {
	if s.cfg.Spec.Kind != SchemeDoubleCheck {
		return nil, fmt.Errorf("%w: RunReplicated requires the double-check scheme", ErrBadConfig)
	}
	if len(conns) < 2 {
		return nil, fmt.Errorf("%w: double-check needs >= 2 replicas, got %d", ErrBadConfig, len(conns))
	}

	outcomes := make([]*TaskOutcome, len(conns))
	uploads := make([][][]byte, len(conns))
	for i, conn := range conns {
		var results [][]byte
		outcome, err := s.run(conn, task, &results)
		if err != nil {
			return nil, fmt.Errorf("grid: replica %d: %w", i, err)
		}
		outcome.Replica = i
		outcomes[i] = outcome
		uploads[i] = results
	}

	verdicts, err := compareReplicas(uploads)
	if err != nil {
		return nil, err
	}
	for i := range outcomes {
		outcomes[i].Verdict = verdicts[i]
	}

	for i, conn := range conns {
		beforeSent := conn.Stats().BytesSent()
		beforeRecv := conn.Stats().BytesRecv()
		if err := s.sendVerdict(conn, outcomes[i]); err != nil {
			return nil, fmt.Errorf("grid: replica %d verdict: %w", i, err)
		}
		if _, err := expectMsg(conn, msgVerdictAck); err != nil {
			return nil, fmt.Errorf("grid: replica %d verdict ack: %w", i, err)
		}
		outcomes[i].BytesSent += conn.Stats().BytesSent() - beforeSent
		outcomes[i].BytesRecv += conn.Stats().BytesRecv() - beforeRecv
	}
	return outcomes, nil
}

// expectMsg receives the next message and checks its type.
func expectMsg(conn protoConn, wantType uint8) (transport.Message, error) {
	msg, err := conn.Recv()
	if err != nil {
		return transport.Message{}, err
	}
	if msg.Type != wantType {
		return transport.Message{}, fmt.Errorf("%w: got type %d, want %d",
			ErrUnexpectedMessage, msg.Type, wantType)
	}
	return msg, nil
}
