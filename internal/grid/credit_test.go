package grid

import (
	"testing"
	"time"

	"uncheatgrid/internal/transport"
)

// TestCreditLedgerClampBounds pins the adaptive window's [floor, ceiling]
// band: every ledger starts at the floor, a hot drain rate grows the window
// no further than the ceiling, and an idle ledger decays back to the floor
// and never below it.
func TestCreditLedgerClampBounds(t *testing.T) {
	const ceiling = int64(1 << 20)
	led := newCreditLedger(ceiling)
	if led.win != minRouteCreditWindowBytes {
		t.Fatalf("initial window %d, want the %d floor", led.win, minRouteCreditWindowBytes)
	}
	if led.outstanding != led.win {
		t.Fatalf("initial outstanding %d, want the full %d window", led.outstanding, led.win)
	}

	// A ceiling below the floor pins the window to the ceiling.
	if small := newCreditLedger(4096); small.win != 4096 {
		t.Fatalf("sub-floor ceiling: window %d, want 4096", small.win)
	}

	// Hot route: a huge drain observed over a tiny interval targets a window
	// far beyond the ceiling; the clamp must hold it there.
	led.drain(1 << 30)
	led.lastRate = time.Now().Add(-time.Microsecond)
	led.resizeLocked()
	if led.win != ceiling {
		t.Fatalf("hot-route window %d, want clamped to the %d ceiling", led.win, ceiling)
	}

	// Idle route: repeated zero-drain observations decay the EWMA; the
	// window must settle on the floor, never below.
	for i := 0; i < 64; i++ {
		led.lastRate = time.Now().Add(-time.Hour)
		led.resizeLocked()
		if led.win < minRouteCreditWindowBytes {
			t.Fatalf("idle decay drove the window to %d, below the %d floor", led.win, minRouteCreditWindowBytes)
		}
	}
	if led.win != minRouteCreditWindowBytes {
		t.Fatalf("idle window %d, want decayed to the %d floor", led.win, minRouteCreditWindowBytes)
	}
}

// TestCreditLedgerGrantRestoresWindow pins the grant batching rule and the
// invariant every grant restores: outstanding + queued == win, so the
// sender can always fill the window and never more.
func TestCreditLedgerGrantRestoresWindow(t *testing.T) {
	led := newCreditLedger(1 << 20)
	// A deficit below half a window is batched, not granted.
	if !led.arrive(100) {
		t.Fatal("arrival within the window flagged as violation")
	}
	led.drain(100)
	if g := led.grantDue(0); g != 0 {
		t.Fatalf("sub-half-window deficit granted %d bytes early", g)
	}
	// The sender spends its whole balance and the consumer drains it all:
	// the grant must re-open the full window.
	led.arrive(led.outstanding)
	led.drain(led.win - 100)
	if g := led.grantDue(0); g <= 0 {
		t.Fatal("fully-drained sender got no grant")
	}
	if led.outstanding != led.win {
		t.Fatalf("after grant: outstanding %d != window %d with an empty queue", led.outstanding, led.win)
	}
	// With bytes still queued, the grant must stop short of the window.
	led.arrive(led.outstanding) // sender spends everything again
	led.drain(led.win - 1000)
	if g := led.grantDue(1000); g <= 0 {
		t.Fatal("mostly-drained sender got no grant")
	}
	if led.outstanding+1000 != led.win {
		t.Fatalf("grant broke outstanding(%d) + queued(1000) == win(%d)", led.outstanding, led.win)
	}
}

// TestHubRejectsZeroCreditGrant masquerades as a supervisor mux endpoint
// and sends the hub a zero-byte credit grant: the decoder classifies it as
// malformed, the hub charges the bytes to mux overhead, and the whole link
// is failed — grants that cannot make progress are a protocol violation,
// not a no-op.
func TestHubRejectsZeroCreditGrant(t *testing.T) {
	hub := NewBrokerHub()
	defer hub.Close()
	raw, hubUp := transport.Pipe(transport.WithBuffer(8), transport.WithRecvTimeout(5*time.Second))
	// Attach's handshake is synchronous; the buffered pipe lets the hello be
	// queued first.
	if err := sendHello(raw, helloMsg{Role: helloRoleMux, Worker: "fake-sup"}); err != nil {
		t.Fatalf("mux hello: %v", err)
	}
	if err := hub.Attach(hubUp); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if err := raw.Send(transport.Message{
		Type:    msgCredit,
		Payload: encodeCredit(creditMsg{Route: 0, Bytes: 0, Window: 1}),
	}); err != nil {
		t.Fatalf("send zero grant: %v", err)
	}
	// The hub kills the link: our next receive observes the close.
	if _, err := raw.Recv(); err == nil {
		t.Fatal("hub kept the link alive after a zero-byte credit grant")
	}
	if got := hub.MuxOverheadIngressBytes(); got == 0 {
		t.Error("malformed grant bytes were not charged to mux ingress overhead")
	}
	_ = raw.Close()
}

// TestMuxRejectsZeroCreditGrant is the mirror direction: a peer posing as
// the hub grants a route zero bytes, and the supervisor mux must fail the
// link on the malformed grant.
func TestMuxRejectsZeroCreditGrant(t *testing.T) {
	sup, hubSide := transport.Pipe(transport.WithBuffer(8), transport.WithRecvTimeout(5*time.Second))
	m, err := OpenMux(sup, "sup")
	if err != nil {
		t.Fatalf("OpenMux: %v", err)
	}
	defer m.Close()
	if _, err := hubSide.Recv(); err != nil { // the mux hello
		t.Fatalf("recv mux hello: %v", err)
	}
	r, err := m.OpenRoute("w")
	if err != nil {
		t.Fatalf("OpenRoute: %v", err)
	}
	if _, err := hubSide.Recv(); err != nil { // the open hello
		t.Fatalf("recv open hello: %v", err)
	}
	if err := hubSide.Send(transport.Message{
		Type:    msgCredit,
		Payload: encodeCredit(creditMsg{Route: 0, Bytes: 0, Window: 1}),
	}); err != nil {
		t.Fatalf("send zero grant: %v", err)
	}
	if _, err := r.Recv(); err == nil {
		t.Fatal("route outlived a zero-byte credit grant on its link")
	}
	if !m.Failed() {
		t.Error("mux did not classify the zero-byte grant as a link failure")
	}
	_ = hubSide.Close()
}

// TestMuxFailsCreditIgnoringHub pins the tentpole's violation rule on the
// hub→supervisor leg: a peer posing as the hub keeps pushing routed frames
// long after the route's extended receive credit (plus the one-frame
// protocol slack) is spent. The mux must classify the overrun as a link
// violation and kill the whole link, exactly as the hub classifies a
// credit-ignoring supervisor.
func TestMuxFailsCreditIgnoringHub(t *testing.T) {
	oldSlack := creditSlackBytes
	creditSlackBytes = 1024 // tighten so the test need not push MaxFrameBytes
	defer func() { creditSlackBytes = oldSlack }()

	sup, hubSide := transport.Pipe(transport.WithBuffer(8), transport.WithRecvTimeout(5*time.Second))
	m, err := OpenMux(sup, "sup", WithRouteCreditWindow(4096))
	if err != nil {
		t.Fatalf("OpenMux: %v", err)
	}
	defer m.Close()
	if _, err := hubSide.Recv(); err != nil { // the mux hello
		t.Fatalf("recv mux hello: %v", err)
	}
	r, err := m.OpenRoute("w")
	if err != nil {
		t.Fatalf("OpenRoute: %v", err)
	}
	if _, err := hubSide.Recv(); err != nil { // the open hello
		t.Fatalf("recv open hello: %v", err)
	}

	// Nobody drains r's inbox, so the 4096-byte initial window plus the
	// tightened slack is spent within a few frames; keep sending past it.
	payload := make([]byte, 2048)
	for i := 0; i < 10; i++ {
		if err := hubSide.Send(transport.Message{
			Type: msgRouted,
			Payload: encodeRouted([]routedEntry{
				{Route: 0, Type: msgResultChunk, Payload: payload},
			}),
		}); err != nil {
			break // link already failed under us — that is the expected end state
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for !m.Failed() {
		if time.Now().After(deadline) {
			t.Fatal("mux never classified the credit overrun as a link violation")
		}
		time.Sleep(time.Millisecond)
	}
	// Frames delivered before the violation drain normally; the queue must
	// end in the link error, not keep delivering past it.
	drained := 0
	for ; ; drained++ {
		if _, err := r.Recv(); err != nil {
			break
		}
		if drained > 16 {
			t.Fatal("route still delivering after its link was failed for a credit overrun")
		}
	}
	_ = hubSide.Close()
}
