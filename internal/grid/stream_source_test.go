package grid

import (
	"context"
	"fmt"
	"testing"

	"uncheatgrid/internal/transport"
)

// syntheticSource builds a lazy task source of `total` fixed-size tasks: no
// task exists before the scheduler asks for it, which is the whole point of
// source-driven streaming — O(high water + in-flight) supervisor memory no
// matter how long the horizon.
func syntheticSource(total, size uint64) TaskSource {
	return func(i uint64) (Task, bool) {
		if i >= total {
			return Task{}, false
		}
		return Task{ID: i, Start: i * size, N: size, Workload: "synthetic", Seed: 7}, true
	}
}

// TestRunTaskSourceLongHorizonWindows streams a task horizon an order of
// magnitude past the old batch sizes through lazily-sourced scheduling with
// rolling window commitments: every task must be verified and every settled
// window's commitment must check out, with full coverage across the links.
func TestRunTaskSourceLongHorizonWindows(t *testing.T) {
	const total, size = 400, 32
	spec := SchemeSpec{Kind: SchemeCBS, M: 8, ChainIters: 1, WindowTasks: 8, WindowSamples: 2}
	conns, shutdown := poolFixture(t, 3, func(int) ProducerFactory { return HonestFactory })
	defer shutdown()

	pool, err := NewSupervisorPool(SupervisorConfig{Spec: spec, Seed: 9}, 6)
	if err != nil {
		t.Fatalf("NewSupervisorPool: %v", err)
	}
	ledgers := make([]*WindowLedger, len(conns))
	for i := range ledgers {
		if ledgers[i], err = NewWindowLedger(spec); err != nil {
			t.Fatalf("NewWindowLedger: %v", err)
		}
	}
	stream, err := pool.RunTaskSource(context.Background(), conns, syntheticSource(total, size), 2,
		WithWindowSettle(ledgers))
	if err != nil {
		t.Fatalf("RunTaskSource: %v", err)
	}
	count := 0
	for so := range stream.Outcomes() {
		count++
		if !so.Outcome.Verdict.Accepted {
			t.Errorf("honest task %d rejected: %s", so.Outcome.Task.ID, so.Outcome.Verdict.Reason)
		}
	}
	if err := stream.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	if count != total {
		t.Fatalf("streamed %d outcomes, want %d", count, total)
	}
	var covered, violations uint64
	for _, led := range ledgers {
		stats := led.Stats()
		covered += stats.Settled*uint64(spec.WindowTasks) + uint64(stats.Pending)
		violations += stats.Violations
	}
	if covered != total {
		t.Errorf("window ledgers cover %d tasks, want %d", covered, total)
	}
	if violations != 0 {
		t.Errorf("%d window violations in a faithful run", violations)
	}
}

// TestRunTaskSourceDrainCheckpointBarrier ends a source-driven run with the
// drain barrier: after the stream closes cleanly, every participant must
// hold a durable checkpoint at the barrier's sequence number.
func TestRunTaskSourceDrainCheckpointBarrier(t *testing.T) {
	const total, size, participants = 24, 32, 2
	dir := t.TempDir()
	spec := SchemeSpec{Kind: SchemeCBS, M: 8, ChainIters: 1, WindowTasks: 4, WindowSamples: 2}

	conns := make([]transport.Conn, participants)
	serveErrs := make([]chan error, participants)
	for i := range conns {
		p, err := NewParticipant(fmt.Sprintf("ckpt-%d", i), HonestFactory, WithCheckpointDir(dir))
		if err != nil {
			t.Fatalf("NewParticipant: %v", err)
		}
		supConn, partConn := transport.Pipe(transport.WithBuffer(8))
		conns[i] = supConn
		serveErrs[i] = make(chan error, 1)
		go func(ch chan error) { ch <- p.Serve(partConn) }(serveErrs[i])
	}
	defer func() {
		for _, c := range conns {
			_ = c.Close()
		}
		for i, ch := range serveErrs {
			if err := <-ch; err != nil {
				t.Errorf("participant %d serve: %v", i, err)
			}
		}
	}()

	pool, err := NewSupervisorPool(SupervisorConfig{Spec: spec, Seed: 9}, 4)
	if err != nil {
		t.Fatalf("NewSupervisorPool: %v", err)
	}
	ledgers := make([]*WindowLedger, participants)
	for i := range ledgers {
		if ledgers[i], err = NewWindowLedger(spec); err != nil {
			t.Fatalf("NewWindowLedger: %v", err)
		}
	}
	stream, err := pool.RunTaskSource(context.Background(), conns, syntheticSource(total, size), 2,
		WithWindowSettle(ledgers), WithDrainCheckpoint(total))
	if err != nil {
		t.Fatalf("RunTaskSource: %v", err)
	}
	count := 0
	for range stream.Outcomes() {
		count++
	}
	if err := stream.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	if count != total {
		t.Fatalf("streamed %d outcomes, want %d", count, total)
	}
	for i := 0; i < participants; i++ {
		restored, err := NewParticipant(fmt.Sprintf("ckpt-%d", i), HonestFactory, WithCheckpointDir(dir))
		if err != nil {
			t.Fatalf("NewParticipant: %v", err)
		}
		seq, ok, err := restored.RestoreCheckpoint()
		if err != nil || !ok || seq != total {
			t.Errorf("participant %d checkpoint = (%d, %v, %v), want (%d, true, nil)", i, seq, ok, err, total)
		}
	}
}

// BenchmarkStreamSourceTasks measures the steady-state per-task cost of a
// source-driven streaming run with rolling window commitments — the
// long-horizon hot path. Allocations per op must stay flat as b.N grows:
// scheduler memory is O(high water + in-flight + window), never O(stream).
func BenchmarkStreamSourceTasks(b *testing.B) {
	const participants, size = 4, 32
	spec := SchemeSpec{Kind: SchemeCBS, M: 8, ChainIters: 1, WindowTasks: 16, WindowSamples: 2}

	conns := make([]transport.Conn, participants)
	for i := range conns {
		p, err := NewParticipant(fmt.Sprintf("b%d", i), HonestFactory)
		if err != nil {
			b.Fatalf("NewParticipant: %v", err)
		}
		supConn, partConn := transport.Pipe(transport.WithBuffer(8))
		conns[i] = supConn
		go func() { _ = p.Serve(partConn) }()
	}
	defer func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}()

	pool, err := NewSupervisorPool(SupervisorConfig{Spec: spec, Seed: 9}, participants*2)
	if err != nil {
		b.Fatalf("NewSupervisorPool: %v", err)
	}
	ledgers := make([]*WindowLedger, participants)
	for i := range ledgers {
		if ledgers[i], err = NewWindowLedger(spec); err != nil {
			b.Fatalf("NewWindowLedger: %v", err)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	stream, err := pool.RunTaskSource(context.Background(), conns, syntheticSource(uint64(b.N), size), 4,
		WithWindowSettle(ledgers))
	if err != nil {
		b.Fatalf("RunTaskSource: %v", err)
	}
	count := 0
	for range stream.Outcomes() {
		count++
	}
	if err := stream.Err(); err != nil {
		b.Fatalf("stream error: %v", err)
	}
	if count != b.N {
		b.Fatalf("streamed %d outcomes, want %d", count, b.N)
	}
}
