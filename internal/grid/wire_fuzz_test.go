package grid

import (
	"reflect"
	"testing"
)

// The wire decoders face attacker-controlled bytes: a malicious participant
// can send anything inside a frame. These native fuzz targets assert the
// decoders never panic and that whatever decodes successfully survives an
// encode∘decode round trip unchanged.

func fuzzAssignmentSeeds(f *testing.F) {
	f.Add(encodeAssignment(assignment{
		Task: Task{ID: 3, Start: 64, N: 128, Workload: "synthetic", Seed: 9},
		Spec: SchemeSpec{Kind: SchemeCBS, M: 20},
	}))
	f.Add(encodeAssignment(assignment{
		Task:         Task{ID: 1, N: 16, Workload: "password", Seed: 2},
		Spec:         SchemeSpec{Kind: SchemeRinger, M: 2},
		RingerImages: [][]byte{{0xde, 0xad}, {}, {0xbe}},
	}))
	f.Add(encodeAssignment(assignment{
		Task: Task{ID: 0, N: 1, Workload: "", Seed: 0},
		Spec: SchemeSpec{Kind: SchemeNICBS, M: 1, ChainIters: 4, SubtreeHeight: 3},
	}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
}

func FuzzDecodeAssignment(f *testing.F) {
	fuzzAssignmentSeeds(f)
	f.Fuzz(func(t *testing.T, payload []byte) {
		a, err := decodeAssignment(payload)
		if err != nil {
			return
		}
		again, err := decodeAssignment(encodeAssignment(a))
		if err != nil {
			t.Fatalf("re-decode of re-encoded assignment failed: %v", err)
		}
		if !reflect.DeepEqual(a, again) {
			t.Fatalf("round trip changed assignment: %+v != %+v", a, again)
		}
	})
}

func FuzzDecodeReports(f *testing.F) {
	f.Add(encodeReports(nil))
	f.Add(encodeReports([]Report{{X: 7, S: "hit"}, {X: 0, S: ""}}))
	f.Add([]byte{0x01})
	f.Fuzz(func(t *testing.T, payload []byte) {
		reports, err := decodeReports(payload)
		if err != nil {
			return
		}
		again, err := decodeReports(encodeReports(reports))
		if err != nil {
			t.Fatalf("re-decode of re-encoded reports failed: %v", err)
		}
		if !reflect.DeepEqual(reports, again) {
			t.Fatalf("round trip changed reports: %+v != %+v", reports, again)
		}
	})
}

func FuzzDecodeChunk(f *testing.F) {
	f.Add(encodeChunk(resultChunk{Seq: 0, Final: false, Data: []byte{1, 2, 3}}))
	f.Add(encodeChunk(resultChunk{Seq: 17, Final: true, Data: nil}))
	f.Add([]byte{0x00})
	f.Add([]byte{0x03, 0x02, 0xff})
	f.Fuzz(func(t *testing.T, payload []byte) {
		c, err := decodeChunk(payload)
		if err != nil {
			return
		}
		again, err := decodeChunk(encodeChunk(c))
		if err != nil {
			t.Fatalf("re-decode of re-encoded chunk failed: %v", err)
		}
		if c.Seq != again.Seq || c.Final != again.Final || !reflect.DeepEqual(c.Data, again.Data) {
			t.Fatalf("round trip changed chunk: %+v != %+v", c, again)
		}
	})
}

func FuzzDecodeResume(f *testing.F) {
	f.Add(encodeResume(resumeMsg{
		Assignment: assignment{
			Task: Task{ID: 3, Start: 64, N: 128, Workload: "synthetic", Seed: 9},
			Spec: SchemeSpec{Kind: SchemeCBS, M: 20},
		},
		HaveCommit:  true,
		HaveReports: true,
		Challenge:   []byte{1, 2, 3, 4},
	}))
	f.Add(encodeResume(resumeMsg{
		Assignment: assignment{
			Task: Task{ID: 7, N: 32, Workload: "password", Seed: 1},
			Spec: SchemeSpec{Kind: SchemeNaive, M: 4},
		},
		Chunks: 5,
	}))
	f.Add(encodeResume(resumeMsg{
		Assignment: assignment{
			Task:         Task{ID: 1, N: 16, Workload: "synthetic", Seed: 2},
			Spec:         SchemeSpec{Kind: SchemeRinger, M: 2},
			RingerImages: [][]byte{{0xde}, {}},
		},
		HaveHits:    true,
		ResultsDone: true,
	}))
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x00, 0xff})
	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := decodeResume(payload)
		if err != nil {
			return
		}
		again, err := decodeResume(encodeResume(m))
		if err != nil {
			t.Fatalf("re-decode of re-encoded resume failed: %v", err)
		}
		if !reflect.DeepEqual(m, again) {
			t.Fatalf("round trip changed resume: %+v != %+v", m, again)
		}
	})
}

// FuzzDecodeVerdict covers the ruling decoder the participant applies to
// supervisor frames. (The verdict acknowledgement introduced alongside it
// carries an empty payload — the supervisor rejects any non-empty ack — so
// there is no ack codec to fuzz.)
func FuzzDecodeVerdict(f *testing.F) {
	f.Add(encodeVerdict(Verdict{Accepted: true}))
	f.Add(encodeVerdict(Verdict{Reason: "disagrees with replica majority"}))
	f.Add([]byte{0x02})
	f.Add([]byte{0x01, 0x05, 'a'})
	f.Fuzz(func(t *testing.T, payload []byte) {
		v, err := decodeVerdict(payload)
		if err != nil {
			return
		}
		again, err := decodeVerdict(encodeVerdict(v))
		if err != nil {
			t.Fatalf("re-decode of re-encoded verdict failed: %v", err)
		}
		if v != again {
			t.Fatalf("round trip changed verdict: %+v != %+v", v, again)
		}
	})
}

// FuzzDecodeResults covers the full-upload decoder the replica comparison
// consumes — attacker-controlled in every double-check run.
func FuzzDecodeResults(f *testing.F) {
	f.Add(encodeResults(nil))
	f.Add(encodeResults([][]byte{{1, 2}, {}, {3}}))
	f.Add([]byte{0x01})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Fuzz(func(t *testing.T, payload []byte) {
		results, err := decodeResults(payload)
		if err != nil {
			return
		}
		again, err := decodeResults(encodeResults(results))
		if err != nil {
			t.Fatalf("re-decode of re-encoded results failed: %v", err)
		}
		if len(results) != len(again) || (len(results) > 0 && !reflect.DeepEqual(results, again)) {
			t.Fatalf("round trip changed results: %+v != %+v", results, again)
		}
	})
}

// FuzzDecodeHello covers the broker hub's identity handshake — the one
// frame the hub itself decodes from every attached link, so it faces
// whatever a misbehaving endpoint dials in with.
func FuzzDecodeHello(f *testing.F) {
	f.Add(encodeHello(helloMsg{Role: helloRoleWorker, Worker: "participant-7"}))
	f.Add(encodeHello(helloMsg{Role: helloRoleSupervisor, Worker: "p"}))
	f.Add(encodeHello(helloMsg{Role: helloRoleMux, Worker: "supervisor-0", Route: 0}))
	f.Add(encodeHello(helloMsg{Role: helloRoleOpen, Worker: "participant-7", Route: 41}))
	f.Add(encodeHello(helloMsg{Role: helloRoleClose, Worker: "participant-7", Route: 1 << 40}))
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0x03, 0x01, 'x'})
	f.Add([]byte{0x02, 0xff, 0xff, 0x7f})
	f.Add([]byte{0x05, 0x01, 'w'})
	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := decodeHello(payload)
		if err != nil {
			return
		}
		if m.Worker == "" || len(m.Worker) > maxWorkerNameLen {
			t.Fatalf("decode accepted an invalid worker identity: %+v", m)
		}
		again, err := decodeHello(encodeHello(m))
		if err != nil {
			t.Fatalf("re-decode of re-encoded hello failed: %v", err)
		}
		if m != again {
			t.Fatalf("round trip changed hello: %+v != %+v", m, again)
		}
	})
}

func FuzzDecodeBatch(f *testing.F) {
	f.Add(encodeBatch(nil))
	f.Add(encodeBatch([]taggedMsg{
		{TaskID: 1, Type: msgCommit, Payload: []byte{1, 2, 3}},
		{TaskID: 2, Type: msgReports, Payload: nil},
	}))
	f.Add(encodeBatch([]taggedMsg{{
		TaskID: 9,
		Type:   msgAssign,
		Payload: encodeAssignment(assignment{
			Task: Task{ID: 9, N: 8, Workload: "synthetic"},
			Spec: SchemeSpec{Kind: SchemeCBS, M: 1},
		}),
	}}))
	f.Add([]byte{0x02, 0x00})
	f.Fuzz(func(t *testing.T, payload []byte) {
		msgs, err := decodeBatch(payload)
		if err != nil {
			return
		}
		again, err := decodeBatch(encodeBatch(msgs))
		if err != nil {
			t.Fatalf("re-decode of re-encoded batch failed: %v", err)
		}
		if len(msgs) != len(again) || (len(msgs) > 0 && !reflect.DeepEqual(msgs, again)) {
			t.Fatalf("round trip changed batch: %+v != %+v", msgs, again)
		}
	})
}

// FuzzDecodeRouted covers the multiplexed-link envelope both the hub and
// the supervisor mux decode from their shared physical link — every muxed
// data frame crosses it, in both directions.
func FuzzDecodeRouted(f *testing.F) {
	f.Add(encodeRouted([]routedEntry{{Route: 0, Type: msgCommit, Payload: []byte{0xaa, 0xbb}}}))
	f.Add(encodeRouted([]routedEntry{
		{Route: 3, Type: msgBatch, Payload: nil},
		{Route: 1 << 33, Type: msgVerdict, Payload: []byte{0x01}},
		{Route: 3, Type: msgReports, Payload: []byte{0x00}},
	}))
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x01, 0x00, 0x07, 0xff, 0xff, 0xff, 0x0f})
	f.Fuzz(func(t *testing.T, payload []byte) {
		entries, err := decodeRouted(payload)
		if err != nil {
			return
		}
		if len(entries) == 0 {
			t.Fatal("decode accepted an empty envelope")
		}
		again, err := decodeRouted(encodeRouted(entries))
		if err != nil {
			t.Fatalf("re-decode of re-encoded envelope failed: %v", err)
		}
		if !reflect.DeepEqual(entries, again) {
			t.Fatalf("round trip changed envelope: %+v != %+v", entries, again)
		}
	})
}

// FuzzDecodeCredit covers the flow-control grant both muxed-link endpoints
// decode: hub→supervisor for toWorker credit and supervisor→hub for toSup
// credit, each carrying the granter's advertised adaptive window.
func FuzzDecodeCredit(f *testing.F) {
	f.Add(encodeCredit(creditMsg{Route: 0, Bytes: 1, Window: 1}))
	f.Add(encodeCredit(creditMsg{Route: 999, Bytes: 256 << 10, Window: 256 << 10}))
	f.Add(encodeCredit(creditMsg{Route: 3, Bytes: 32 << 10, Window: maxCreditGrant}))
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x00, 0x01})
	f.Add([]byte{0x00, 0x01, 0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01, 0x00})
	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := decodeCredit(payload)
		if err != nil {
			return
		}
		if m.Bytes == 0 || m.Bytes > maxCreditGrant {
			t.Fatalf("decode accepted an out-of-range grant: %+v", m)
		}
		if m.Window == 0 || m.Window > maxCreditGrant {
			t.Fatalf("decode accepted an out-of-range window: %+v", m)
		}
		again, err := decodeCredit(encodeCredit(m))
		if err != nil {
			t.Fatalf("re-decode of re-encoded credit failed: %v", err)
		}
		if m != again {
			t.Fatalf("round trip changed credit: %+v != %+v", m, again)
		}
	})
}

// FuzzDecodeWindowCommit covers the rolling-commitment decoder the
// supervisor applies to ctrl frames from long-horizon participants — the
// one place a cheating participant can try to forge a settled window.
func FuzzDecodeWindowCommit(f *testing.F) {
	f.Add(encodeWindowCommit(windowCommitMsg{
		Window:  0,
		Root:    []byte{0xaa, 0xbb, 0xcc, 0xdd},
		TaskIDs: []uint64{0, 1, 2, 3},
		Proofs:  [][]byte{{0x01, 0x02}, nil},
	}))
	f.Add(encodeWindowCommit(windowCommitMsg{
		Window:  41,
		Root:    make([]byte, 32),
		TaskIDs: []uint64{328, 329},
	}))
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := decodeWindowCommit(payload)
		if err != nil {
			return
		}
		if len(m.Root) == 0 || len(m.Root) > maxWindowRootLen {
			t.Fatalf("decode accepted an out-of-range root: %d bytes", len(m.Root))
		}
		if len(m.TaskIDs) == 0 || len(m.TaskIDs) > maxWindowCommitTasks {
			t.Fatalf("decode accepted an out-of-range task count: %d", len(m.TaskIDs))
		}
		again, err := decodeWindowCommit(encodeWindowCommit(m))
		if err != nil {
			t.Fatalf("re-decode of re-encoded window commit failed: %v", err)
		}
		if !reflect.DeepEqual(m, again) {
			t.Fatalf("round trip changed window commit: %+v != %+v", m, again)
		}
	})
}

// FuzzDecodeCheckpoint covers the checkpoint-order decoder. (The matching
// ack carries an empty payload, like the verdict ack, so there is no ack
// codec to fuzz.)
func FuzzDecodeCheckpoint(f *testing.F) {
	f.Add(encodeCheckpoint(checkpointMsg{Seq: 0}))
	f.Add(encodeCheckpoint(checkpointMsg{Seq: 1 << 40}))
	f.Add([]byte{})
	f.Add([]byte{0x07, 0x07})
	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := decodeCheckpoint(payload)
		if err != nil {
			return
		}
		again, err := decodeCheckpoint(encodeCheckpoint(m))
		if err != nil {
			t.Fatalf("re-decode of re-encoded checkpoint failed: %v", err)
		}
		if m != again {
			t.Fatalf("round trip changed checkpoint: %+v != %+v", m, again)
		}
	})
}

func FuzzDecodeIndices(f *testing.F) {
	f.Add(encodeIndices(nil))
	f.Add(encodeIndices([]uint64{0, 1, 1<<63 - 1}))
	f.Add(encodeIndices([]uint64{42}))
	f.Add([]byte{0x01})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, payload []byte) {
		indices, err := decodeIndices(payload)
		if err != nil {
			return
		}
		again, err := decodeIndices(encodeIndices(indices))
		if err != nil {
			t.Fatalf("re-decode of re-encoded indices failed: %v", err)
		}
		if len(indices) != len(again) || (len(indices) > 0 && !reflect.DeepEqual(indices, again)) {
			t.Fatalf("round trip changed indices: %+v != %+v", indices, again)
		}
	})
}
