package grid

import (
	"errors"
	"strings"
	"testing"

	"uncheatgrid/internal/transport"
)

func runOneTask(t *testing.T, spec SchemeSpec, factory ProducerFactory, task Task) *TaskOutcome {
	t.Helper()
	supervisor, err := NewSupervisor(SupervisorConfig{Spec: spec, Seed: 42, CrossCheckReports: true})
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	participant, err := NewParticipant("p0", factory)
	if err != nil {
		t.Fatalf("NewParticipant: %v", err)
	}
	supConn, partConn := transport.Pipe(transport.WithBuffer(8))
	serveErr := make(chan error, 1)
	go func() { serveErr <- participant.Serve(partConn) }()

	outcome, err := supervisor.RunTask(supConn, task)
	if err != nil {
		t.Fatalf("RunTask: %v", err)
	}
	if err := supConn.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	return outcome
}

// passwordTask uses seed 247, whose hidden key (507) falls inside the first
// 4096 inputs, so windows of n >= 512 contain the screener hit.
func passwordTask(n uint64) Task {
	return Task{ID: 1, Start: 0, N: n, Workload: "password", Seed: 247}
}

func syntheticTask(n uint64) Task {
	return Task{ID: 2, Start: 0, N: n, Workload: "synthetic", Seed: 7}
}

func TestSchemeStringRoundTrip(t *testing.T) {
	for _, k := range []SchemeKind{SchemeCBS, SchemeNICBS, SchemeNaive, SchemeDoubleCheck, SchemeRinger} {
		parsed, err := ParseScheme(k.String())
		if err != nil {
			t.Fatalf("ParseScheme(%q): %v", k.String(), err)
		}
		if parsed != k {
			t.Fatalf("ParseScheme(%q) = %v", k.String(), parsed)
		}
	}
	if _, err := ParseScheme("nope"); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("ParseScheme(nope): err = %v, want ErrBadConfig", err)
	}
}

func TestCBSHonestParticipantAccepted(t *testing.T) {
	outcome := runOneTask(t,
		SchemeSpec{Kind: SchemeCBS, M: 10},
		HonestFactory, syntheticTask(256))
	if !outcome.Verdict.Accepted {
		t.Fatalf("honest participant rejected: %s", outcome.Verdict.Reason)
	}
	if outcome.BytesRecv == 0 || outcome.BytesSent == 0 {
		t.Fatal("no traffic accounted")
	}
}

func TestCBSCheaterRejected(t *testing.T) {
	// r = 0.3, m = 20: survival probability 0.3^20 ≈ 3e-11.
	outcome := runOneTask(t,
		SchemeSpec{Kind: SchemeCBS, M: 20},
		SemiHonestFactory(0.3, 99), syntheticTask(256))
	if outcome.Verdict.Accepted {
		t.Fatal("blatant cheater accepted")
	}
	if outcome.CheatIndex < 0 {
		t.Fatal("no convicting sample recorded")
	}
}

func TestCBSStorageBoundedProver(t *testing.T) {
	outcome := runOneTask(t,
		SchemeSpec{Kind: SchemeCBS, M: 5, SubtreeHeight: 4},
		HonestFactory, syntheticTask(256))
	if !outcome.Verdict.Accepted {
		t.Fatalf("storage-bounded honest participant rejected: %s", outcome.Verdict.Reason)
	}
}

func TestNICBSHonestAndCheater(t *testing.T) {
	spec := SchemeSpec{Kind: SchemeNICBS, M: 20, ChainIters: 2}
	honest := runOneTask(t, spec, HonestFactory, syntheticTask(128))
	if !honest.Verdict.Accepted {
		t.Fatalf("honest NI-CBS rejected: %s", honest.Verdict.Reason)
	}
	cheater := runOneTask(t, spec, SemiHonestFactory(0.3, 3), syntheticTask(128))
	if cheater.Verdict.Accepted {
		t.Fatal("naive cheater passed NI-CBS")
	}
}

func TestNaiveSchemeAndCommunicationGap(t *testing.T) {
	naive := runOneTask(t,
		SchemeSpec{Kind: SchemeNaive, M: 10},
		HonestFactory, syntheticTask(1024))
	if !naive.Verdict.Accepted {
		t.Fatalf("honest naive rejected: %s", naive.Verdict.Reason)
	}
	cbs := runOneTask(t,
		SchemeSpec{Kind: SchemeCBS, M: 10},
		HonestFactory, syntheticTask(1024))
	// The heart of the paper: participant upload shrinks from O(n) to
	// O(m log n). At n=1024, m=10 the gap is already >2x.
	if cbs.BytesRecv*2 > naive.BytesRecv {
		t.Fatalf("CBS upload %dB not well below naive %dB", cbs.BytesRecv, naive.BytesRecv)
	}
	naiveCheat := runOneTask(t,
		SchemeSpec{Kind: SchemeNaive, M: 20},
		SemiHonestFactory(0.3, 5), syntheticTask(1024))
	if naiveCheat.Verdict.Accepted {
		t.Fatal("cheater passed naive sampling")
	}
}

func TestRingerScheme(t *testing.T) {
	honest := runOneTask(t,
		SchemeSpec{Kind: SchemeRinger, M: 8},
		HonestFactory, passwordTask(512))
	if !honest.Verdict.Accepted {
		t.Fatalf("honest ringer rejected: %s", honest.Verdict.Reason)
	}
	cheater := runOneTask(t,
		SchemeSpec{Kind: SchemeRinger, M: 8},
		SemiHonestFactory(0.25, 9), passwordTask(512))
	if cheater.Verdict.Accepted {
		t.Fatal("lazy participant passed the ringer check (p = 0.25^8)")
	}
	if !strings.Contains(cheater.Verdict.Reason, "ringer") {
		t.Fatalf("reason %q does not mention ringers", cheater.Verdict.Reason)
	}
}

func TestMaliciousCaughtByCrossCheck(t *testing.T) {
	// The saboteur computes f correctly (commitment passes) but fabricates
	// reports. With cross-checking on m sampled indices and a high corrupt
	// probability, fabricated reports on sampled inputs convict it.
	outcome := runOneTask(t,
		SchemeSpec{Kind: SchemeCBS, M: 30},
		MaliciousFactory(0.9, 13), syntheticTask(256))
	if outcome.Verdict.Accepted {
		t.Fatal("malicious reporter accepted despite cross-check")
	}
	if !strings.Contains(outcome.Verdict.Reason, "report") {
		t.Fatalf("reason %q does not mention reports", outcome.Verdict.Reason)
	}
}

func TestReportsReachSupervisor(t *testing.T) {
	// The password search has exactly one interesting input; its report
	// must arrive regardless of scheme.
	for _, spec := range []SchemeSpec{
		{Kind: SchemeCBS, M: 5},
		{Kind: SchemeNICBS, M: 5, ChainIters: 1},
		{Kind: SchemeNaive, M: 5},
		{Kind: SchemeRinger, M: 5},
	} {
		t.Run(spec.Kind.String(), func(t *testing.T) {
			outcome := runOneTask(t, spec, HonestFactory, passwordTask(1<<12))
			if len(outcome.Reports) != 1 {
				t.Fatalf("%d reports, want exactly 1 (the found password)", len(outcome.Reports))
			}
			if !strings.Contains(outcome.Reports[0].S, "password found") {
				t.Fatalf("unexpected report %q", outcome.Reports[0].S)
			}
		})
	}
}

func TestDoubleCheckReplication(t *testing.T) {
	supervisor, err := NewSupervisor(SupervisorConfig{
		Spec: SchemeSpec{Kind: SchemeDoubleCheck, M: 1},
		Seed: 7,
	})
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}

	honest, err := NewParticipant("honest", HonestFactory)
	if err != nil {
		t.Fatalf("NewParticipant: %v", err)
	}
	cheater, err := NewParticipant("cheater", SemiHonestFactory(0.5, 21))
	if err != nil {
		t.Fatalf("NewParticipant: %v", err)
	}
	honest2, err := NewParticipant("honest2", HonestFactory)
	if err != nil {
		t.Fatalf("NewParticipant: %v", err)
	}

	type endpoint struct {
		sup, part transport.Conn
		errs      chan error
	}
	var endpoints []endpoint
	for _, p := range []*Participant{honest, cheater, honest2} {
		sup, part := transport.Pipe(transport.WithBuffer(8))
		ep := endpoint{sup: sup, part: part, errs: make(chan error, 1)}
		p := p
		go func() { ep.errs <- p.Serve(ep.part) }()
		endpoints = append(endpoints, ep)
	}

	outcomes, err := supervisor.RunReplicated(
		[]transport.Conn{endpoints[0].sup, endpoints[1].sup, endpoints[2].sup},
		syntheticTask(64))
	if err != nil {
		t.Fatalf("RunReplicated: %v", err)
	}
	if !outcomes[0].Verdict.Accepted || !outcomes[2].Verdict.Accepted {
		t.Fatal("honest replicas rejected")
	}
	if outcomes[1].Verdict.Accepted {
		t.Fatal("cheating replica accepted")
	}

	for _, ep := range endpoints {
		_ = ep.sup.Close()
		if err := <-ep.errs; err != nil {
			t.Fatalf("Serve: %v", err)
		}
	}
}

func TestParticipantTotals(t *testing.T) {
	supervisor, err := NewSupervisor(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeCBS, M: 4}, Seed: 1})
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	participant, err := NewParticipant("p", HonestFactory)
	if err != nil {
		t.Fatalf("NewParticipant: %v", err)
	}
	supConn, partConn := transport.Pipe(transport.WithBuffer(8))
	serveErr := make(chan error, 1)
	go func() { serveErr <- participant.Serve(partConn) }()

	const taskSize = 64
	for i := 0; i < 3; i++ {
		task := syntheticTask(taskSize)
		task.ID = uint64(i)
		task.Start = uint64(i * taskSize)
		if _, err := supervisor.RunTask(supConn, task); err != nil {
			t.Fatalf("RunTask %d: %v", i, err)
		}
	}
	_ = supConn.Close()
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}

	totals := participant.Totals()
	if totals.Tasks != 3 || totals.Accepted != 3 || totals.Rejected != 0 {
		t.Fatalf("Totals = %+v", totals)
	}
	if totals.FEvals < 3*taskSize {
		t.Fatalf("FEvals = %d, want >= %d (honest work)", totals.FEvals, 3*taskSize)
	}
	if totals.Behavior != "honest" {
		t.Fatalf("Behavior = %q", totals.Behavior)
	}
}

func TestCheaterSavesWork(t *testing.T) {
	// The economics of cheating: a semi-honest participant with r=0.5
	// evaluates f about half as often as an honest one.
	run := func(factory ProducerFactory) int64 {
		participant, err := NewParticipant("p", factory)
		if err != nil {
			t.Fatalf("NewParticipant: %v", err)
		}
		supervisor, err := NewSupervisor(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeCBS, M: 2}, Seed: 3})
		if err != nil {
			t.Fatalf("NewSupervisor: %v", err)
		}
		supConn, partConn := transport.Pipe(transport.WithBuffer(8))
		serveErr := make(chan error, 1)
		go func() { serveErr <- participant.Serve(partConn) }()
		if _, err := supervisor.RunTask(supConn, syntheticTask(1024)); err != nil {
			t.Fatalf("RunTask: %v", err)
		}
		_ = supConn.Close()
		if err := <-serveErr; err != nil {
			t.Fatalf("Serve: %v", err)
		}
		return participant.Totals().FEvals
	}
	honestEvals := run(HonestFactory)
	cheaterEvals := run(SemiHonestFactory(0.5, 77))
	if cheaterEvals >= honestEvals*3/4 {
		t.Fatalf("cheater evals %d not well below honest %d", cheaterEvals, honestEvals)
	}
}

func TestBrokeredNICBS(t *testing.T) {
	// GRACE deployment (Section 4): supervisor ↔ broker hub ↔ participant.
	// NI-CBS completes through the identity-routed relay.
	supervisor, err := NewSupervisor(SupervisorConfig{
		Spec: SchemeSpec{Kind: SchemeNICBS, M: 8, ChainIters: 2},
		Seed: 5,
	})
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	participant, err := NewParticipant("p", HonestFactory)
	if err != nil {
		t.Fatalf("NewParticipant: %v", err)
	}

	hub := NewBrokerHub()
	defer hub.Close()
	brokerDown, partConn := transport.Pipe(transport.WithBuffer(8))
	if err := HelloWorker(partConn, "p"); err != nil {
		t.Fatalf("HelloWorker: %v", err)
	}
	if err := hub.Attach(brokerDown); err != nil {
		t.Fatalf("Attach(worker): %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- participant.Serve(partConn) }()

	supConn, brokerUp := transport.Pipe(transport.WithBuffer(8))
	if err := HelloSupervisor(supConn, "p"); err != nil {
		t.Fatalf("HelloSupervisor: %v", err)
	}
	if err := hub.Attach(brokerUp); err != nil {
		t.Fatalf("Attach(supervisor): %v", err)
	}

	outcome, err := supervisor.RunTask(supConn, syntheticTask(128))
	if err != nil {
		t.Fatalf("RunTask through broker: %v", err)
	}
	if !outcome.Verdict.Accepted {
		t.Fatalf("honest brokered participant rejected: %s", outcome.Verdict.Reason)
	}

	_ = supConn.Close()
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if err := hub.Close(); err != nil {
		t.Fatalf("hub Close: %v", err)
	}
	if hub.RelayedMessages() == 0 || hub.RelayedBytes() == 0 {
		t.Fatal("broker relayed nothing")
	}
	st, ok := hub.WorkerStats("p")
	if !ok {
		t.Fatal("no route stats for worker p")
	}
	if st.Binds != 1 {
		t.Fatalf("Binds = %d, want 1", st.Binds)
	}
	if st.ToWorker.EgressMsgs == 0 || st.ToSupervisor.EgressMsgs == 0 {
		t.Fatalf("one-way relay: %+v", st)
	}
	// The dialogue exchange crossed a clean relay frame for frame: both
	// directions' ingress must equal their egress, and each side of the hub
	// reconciles exactly with its endpoint counters (hello included).
	if st.ToWorker.IngressBytes != st.ToWorker.EgressBytes ||
		st.ToSupervisor.IngressBytes != st.ToSupervisor.EgressBytes {
		t.Fatalf("clean dialogue relay not byte-preserving: %+v", st)
	}
	if got, want := supConn.Stats().BytesSent(), st.SupervisorHelloBytes+st.ToWorker.IngressBytes; got != want {
		t.Fatalf("supervisor sent %dB, hub accounted %dB", got, want)
	}
	if got, want := partConn.Stats().BytesRecv(), st.ToWorker.EgressBytes; got != want {
		t.Fatalf("participant received %dB, hub forwarded %dB", got, want)
	}
	if got, want := partConn.Stats().BytesSent(), st.WorkerHelloBytes+st.ToSupervisor.IngressBytes; got != want {
		t.Fatalf("participant sent %dB, hub accounted %dB", got, want)
	}
	if got, want := supConn.Stats().BytesRecv(), st.ToSupervisor.EgressBytes; got != want {
		t.Fatalf("supervisor received %dB, hub forwarded %dB", got, want)
	}
}

func TestGridOverTCP(t *testing.T) {
	// The same protocol over real sockets.
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()

	participant, err := NewParticipant("tcp-worker", HonestFactory)
	if err != nil {
		t.Fatalf("NewParticipant: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			serveErr <- err
			return
		}
		serveErr <- participant.Serve(conn)
	}()

	supConn, err := transport.Dial(l.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	supervisor, err := NewSupervisor(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeCBS, M: 8}, Seed: 9})
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	outcome, err := supervisor.RunTask(supConn, syntheticTask(256))
	if err != nil {
		t.Fatalf("RunTask over TCP: %v", err)
	}
	if !outcome.Verdict.Accepted {
		t.Fatalf("rejected over TCP: %s", outcome.Verdict.Reason)
	}
	_ = supConn.Close()
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

func TestGarbledProofIsRejectedNotAccepted(t *testing.T) {
	// Fault injection: a corrupted proof must yield a rejection or a
	// protocol error — never a false acceptance.
	supervisor, err := NewSupervisor(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeCBS, M: 6}, Seed: 2})
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	participant, err := NewParticipant("p", HonestFactory)
	if err != nil {
		t.Fatalf("NewParticipant: %v", err)
	}
	supConn, partConn := transport.Pipe(transport.WithBuffer(8))
	lossy := transport.WithFaults(partConn, transport.FaultPlan{GarbleProb: 1, Seed: 4})
	serveErr := make(chan error, 1)
	go func() { serveErr <- participant.Serve(lossy) }()

	outcome, err := supervisor.RunTask(supConn, syntheticTask(64))
	if err == nil && outcome.Verdict.Accepted {
		t.Fatal("garbled traffic led to acceptance")
	}
	_ = supConn.Close()
	<-serveErr // error expected; any is fine as long as no acceptance
}

func TestTaskValidation(t *testing.T) {
	supervisor, err := NewSupervisor(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeCBS, M: 4}, Seed: 1})
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	supConn, partConn := transport.Pipe()
	defer supConn.Close()
	defer partConn.Close()

	if _, err := supervisor.RunTask(supConn, Task{Workload: "synthetic", N: 0}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty task: err = %v, want ErrBadConfig", err)
	}
	if _, err := supervisor.RunTask(supConn, Task{Workload: "", N: 4}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("no workload: err = %v, want ErrBadConfig", err)
	}
	if _, err := supervisor.RunTask(supConn, Task{Workload: "synthetic", N: maxTaskSize + 1}); !errors.Is(err, ErrTaskTooLarge) {
		t.Errorf("huge task: err = %v, want ErrTaskTooLarge", err)
	}
	if _, err := supervisor.RunTask(supConn, Task{Workload: "unknown", N: 4}); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestSupervisorConfigValidation(t *testing.T) {
	if _, err := NewSupervisor(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeCBS, M: 0}}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("m=0: err = %v, want ErrBadConfig", err)
	}
	if _, err := NewSupervisor(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeNICBS, M: 4}}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("NI-CBS without chain iters: err = %v, want ErrBadConfig", err)
	}
	if _, err := NewSupervisor(SupervisorConfig{Spec: SchemeSpec{Kind: 99, M: 4}}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("unknown scheme: err = %v, want ErrBadConfig", err)
	}
	// Double-check via RunTask is a config error.
	s, err := NewSupervisor(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeDoubleCheck, M: 1}})
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	supConn, partConn := transport.Pipe()
	defer supConn.Close()
	defer partConn.Close()
	if _, err := s.RunTask(supConn, syntheticTask(4)); !errors.Is(err, ErrBadConfig) {
		t.Errorf("double-check RunTask: err = %v, want ErrBadConfig", err)
	}
}

func TestParticipantValidation(t *testing.T) {
	if _, err := NewParticipant("", HonestFactory); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty id: err = %v, want ErrBadConfig", err)
	}
	if _, err := NewParticipant("x", nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil factory: err = %v, want ErrBadConfig", err)
	}
}
