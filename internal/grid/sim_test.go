package grid

import (
	"errors"
	"strings"
	"testing"
)

func baseSimConfig(kind SchemeKind) SimConfig {
	cfg := SimConfig{
		Spec:         SchemeSpec{Kind: kind, M: 20, ChainIters: 1},
		Workload:     "synthetic",
		Seed:         1,
		TaskSize:     128,
		Tasks:        12,
		Honest:       3,
		SemiHonest:   3,
		HonestyRatio: 0.3,
	}
	return cfg
}

func TestSimCBSDetectsCheatersNoFalsePositives(t *testing.T) {
	report, err := RunSim(baseSimConfig(SchemeCBS))
	if err != nil {
		t.Fatalf("RunSim: %v", err)
	}
	if report.CheatersTotal != 3 {
		t.Fatalf("CheatersTotal = %d, want 3", report.CheatersTotal)
	}
	// r=0.3, m=20 → survival 0.3^20 ≈ 3e-11 per task; every cheater that
	// got a task is caught.
	if report.CheatersDetected != report.CheatersTotal {
		t.Fatalf("detected %d of %d cheaters", report.CheatersDetected, report.CheatersTotal)
	}
	if report.HonestAccused != 0 {
		t.Fatalf("HonestAccused = %d, want 0 (Theorem 1)", report.HonestAccused)
	}
	if report.DetectionRate() != 1 {
		t.Fatalf("DetectionRate = %v", report.DetectionRate())
	}
}

func TestSimAllSchemesRun(t *testing.T) {
	for _, kind := range []SchemeKind{SchemeCBS, SchemeNICBS, SchemeNaive, SchemeDoubleCheck, SchemeRinger} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := baseSimConfig(kind)
			if kind == SchemeRinger {
				cfg.Workload = "password" // ringers need a one-way f
			}
			if kind == SchemeDoubleCheck {
				cfg.Replicas = 3 // a pair cannot attribute blame
			}
			report, err := RunSim(cfg)
			if err != nil {
				t.Fatalf("RunSim: %v", err)
			}
			if report.TasksAssigned == 0 {
				t.Fatal("no tasks ran")
			}
			if report.Scheme != kind.String() {
				t.Fatalf("Scheme = %q", report.Scheme)
			}
			if report.HonestAccused != 0 {
				t.Fatalf("%d honest participants accused", report.HonestAccused)
			}
			if report.CheatersDetected == 0 {
				t.Fatal("no cheaters detected at r=0.3")
			}
		})
	}
}

func TestSimCommunicationOrdering(t *testing.T) {
	// Per-participant upload: CBS ≪ naive for the same tasks.
	cbsCfg := baseSimConfig(SchemeCBS)
	cbsCfg.SemiHonest = 0
	cbsCfg.Honest = 2
	cbsCfg.TaskSize = 8192 // the O(n)/O(m log n) gap needs n ≫ m
	cbsCfg.Tasks = 2
	naiveCfg := cbsCfg
	naiveCfg.Spec = SchemeSpec{Kind: SchemeNaive, M: 20}

	cbsReport, err := RunSim(cbsCfg)
	if err != nil {
		t.Fatalf("RunSim(cbs): %v", err)
	}
	naiveReport, err := RunSim(naiveCfg)
	if err != nil {
		t.Fatalf("RunSim(naive): %v", err)
	}
	if cbsReport.SupervisorBytesRecv*4 > naiveReport.SupervisorBytesRecv {
		t.Fatalf("CBS supervisor download %dB not ≪ naive %dB",
			cbsReport.SupervisorBytesRecv, naiveReport.SupervisorBytesRecv)
	}
}

func TestSimBlacklistStopsAssigningToCheats(t *testing.T) {
	cfg := baseSimConfig(SchemeCBS)
	cfg.Blacklist = true
	cfg.Tasks = 24
	report, err := RunSim(cfg)
	if err != nil {
		t.Fatalf("RunSim: %v", err)
	}
	for _, p := range report.Participants {
		if p.Cheater && p.Rejected > 1 {
			t.Fatalf("blacklisted cheater %s still received %d rejections", p.ID, p.Rejected)
		}
		if p.Cheater && p.Rejected == 1 && !p.Blacklisted {
			t.Fatalf("rejected cheater %s not blacklisted", p.ID)
		}
	}
}

func TestSimMaliciousPopulation(t *testing.T) {
	cfg := SimConfig{
		Spec:              SchemeSpec{Kind: SchemeCBS, M: 30},
		Workload:          "synthetic",
		Seed:              3,
		TaskSize:          256,
		Tasks:             8,
		Honest:            2,
		Malicious:         2,
		CorruptProb:       0.9,
		CrossCheckReports: true,
	}
	report, err := RunSim(cfg)
	if err != nil {
		t.Fatalf("RunSim: %v", err)
	}
	if report.CheatersDetected == 0 {
		t.Fatal("no malicious participant detected despite cross-checking")
	}
	if report.HonestAccused != 0 {
		t.Fatalf("HonestAccused = %d", report.HonestAccused)
	}
}

func TestSimPasswordWorkloadFindsSecret(t *testing.T) {
	cfg := SimConfig{
		Spec:     SchemeSpec{Kind: SchemeCBS, M: 10},
		Workload: "password",
		Seed:     11,
		TaskSize: 1 << 10,
		Tasks:    1 << 20 >> 10 / 16, // cover 1/16 of a 2^20 keyspace... keep small
		Honest:   2,
	}
	cfg.Tasks = 8
	report, err := RunSim(cfg)
	if err != nil {
		t.Fatalf("RunSim: %v", err)
	}
	// The hidden key may or may not fall in the covered prefix; reports,
	// when present, must mention the password.
	for _, rep := range report.Reports {
		if !strings.Contains(rep.S, "password found") {
			t.Fatalf("unexpected report %q", rep.S)
		}
	}
}

func TestSimValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*SimConfig)
	}{
		{name: "no workload", mutate: func(c *SimConfig) { c.Workload = "" }},
		{name: "no tasks", mutate: func(c *SimConfig) { c.Tasks = 0 }},
		{name: "no task size", mutate: func(c *SimConfig) { c.TaskSize = 0 }},
		{name: "empty pool", mutate: func(c *SimConfig) { c.Honest, c.SemiHonest, c.Malicious = 0, 0, 0 }},
		{name: "bad spec", mutate: func(c *SimConfig) { c.Spec.M = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := baseSimConfig(SchemeCBS)
			tt.mutate(&cfg)
			if _, err := RunSim(cfg); !errors.Is(err, ErrBadConfig) {
				t.Fatalf("err = %v, want ErrBadConfig", err)
			}
		})
	}

	dc := baseSimConfig(SchemeDoubleCheck)
	dc.Honest, dc.SemiHonest = 1, 0
	if _, err := RunSim(dc); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("double-check with one participant: err = %v, want ErrBadConfig", err)
	}
}

func TestSimHonestEffortAccounting(t *testing.T) {
	cfg := baseSimConfig(SchemeCBS)
	cfg.SemiHonest = 0
	cfg.Honest = 1
	cfg.Tasks = 2
	cfg.TaskSize = 100
	report, err := RunSim(cfg)
	if err != nil {
		t.Fatalf("RunSim: %v", err)
	}
	p := report.Participants[0]
	if p.FEvals < int64(cfg.Tasks*cfg.TaskSize) {
		t.Fatalf("FEvals = %d, want >= %d", p.FEvals, cfg.Tasks*cfg.TaskSize)
	}
	if p.Tasks != 2 || p.Accepted != 2 {
		t.Fatalf("participant summary %+v", p)
	}
	if report.SupervisorEvals == 0 {
		t.Fatal("supervisor spent no verification effort")
	}
}
