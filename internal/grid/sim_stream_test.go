package grid

import (
	"errors"
	"os"
	"reflect"
	"testing"
)

func baseStreamConfig(t *testing.T) SimConfig {
	t.Helper()
	return SimConfig{
		Spec:           SchemeSpec{Kind: SchemeCBS, M: 8, ChainIters: 1, WindowTasks: 4, WindowSamples: 2},
		Workload:       "synthetic",
		Seed:           7,
		TaskSize:       64,
		Tasks:          24,
		Honest:         2,
		SemiHonest:     1,
		HonestyRatio:   0.3,
		PipelineWindow: 2,
		Stream:         true,
	}
}

// scrubStreamReport zeroes the fields that legitimately vary between a clean
// run and a kill-and-restart run: byte counters depend on frame coalescing
// timing, and broker counters cover only the final attempt's hub.
func scrubStreamReport(r *SimReport) *SimReport {
	c := *r
	c.SupervisorBytesSent, c.SupervisorBytesRecv = 0, 0
	c.BrokerRelayedMsgs, c.BrokerRelayedBytes = 0, 0
	c.BrokerMuxLinks, c.BrokerRoutesOpened = 0, 0
	c.BrokerControlMsgs, c.BrokerControlBytes = 0, 0
	c.BrokerControlInMsgs, c.BrokerControlInBytes = 0, 0
	c.BrokerMuxOverheadIngress, c.BrokerMuxOverheadEgress = 0, 0
	c.BrokerRoutes = nil
	c.Participants = append([]ParticipantSummary(nil), r.Participants...)
	for i := range c.Participants {
		c.Participants[i].BytesSent, c.Participants[i].BytesRecv = 0, 0
	}
	return &c
}

func TestRunSimStreamWindows(t *testing.T) {
	cfg := baseStreamConfig(t)
	report, err := RunSim(cfg)
	if err != nil {
		t.Fatalf("RunSim: %v", err)
	}
	if len(report.TaskVerdicts) != cfg.Tasks {
		t.Fatalf("got %d verdicts, want %d", len(report.TaskVerdicts), cfg.Tasks)
	}
	if report.CheatersDetected != 1 || report.HonestAccused != 0 {
		t.Fatalf("detected %d cheaters, accused %d honest", report.CheatersDetected, report.HonestAccused)
	}
	if report.WindowsSettled == 0 {
		t.Fatal("no windows settled")
	}
	if report.WindowViolations != 0 {
		t.Fatalf("%d window violations in a faithful-commitment run", report.WindowViolations)
	}
	// Every decided task is either inside a settled window or pending.
	covered := report.WindowsSettled*uint64(cfg.Spec.WindowTasks) + uint64(report.WindowsPending)
	if covered != uint64(cfg.Tasks) {
		t.Fatalf("windows cover %d tasks, want %d", covered, cfg.Tasks)
	}
}

func TestRunSimCheckpointRestoreMatchesClean(t *testing.T) {
	for _, broker := range []bool{false, true} {
		name := "direct"
		if broker {
			name = "broker"
		}
		t.Run(name, func(t *testing.T) {
			clean := baseStreamConfig(t)
			clean.Broker = broker
			clean.CheckpointEvery = 8
			clean.CheckpointDir = t.TempDir()
			cleanReport, err := RunSim(clean)
			if err != nil {
				t.Fatalf("clean RunSim: %v", err)
			}

			killed := clean
			killed.CheckpointDir = t.TempDir()
			killed.KillAfter = 13 // mid-segment: restart re-runs tasks 8..12
			killedReport, err := RunSim(killed)
			if err != nil {
				t.Fatalf("killed RunSim: %v", err)
			}

			if !reflect.DeepEqual(scrubStreamReport(cleanReport), scrubStreamReport(killedReport)) {
				t.Fatalf("kill-and-restart report diverged from clean run:\nclean:  %+v\nkilled: %+v",
					scrubStreamReport(cleanReport), scrubStreamReport(killedReport))
			}
			if killedReport.WindowsSettled != cleanReport.WindowsSettled {
				t.Fatalf("windows settled: killed %d, clean %d",
					killedReport.WindowsSettled, cleanReport.WindowsSettled)
			}
		})
	}
}

func TestRunSimParticipantCrashRestoreMatchesClean(t *testing.T) {
	for _, broker := range []bool{false, true} {
		name := "direct"
		if broker {
			name = "broker"
		}
		t.Run(name, func(t *testing.T) {
			clean := baseStreamConfig(t)
			clean.Broker = broker
			clean.CheckpointEvery = 8
			clean.CheckpointDir = t.TempDir()
			cleanReport, err := RunSim(clean)
			if err != nil {
				t.Fatalf("clean RunSim: %v", err)
			}

			killed := clean
			killed.CheckpointDir = t.TempDir()
			killed.KillAfter = 13 // mid-segment: restored pool re-runs tasks 8..12
			killed.KillTarget = KillTargetParticipant
			killedReport, err := RunSim(killed)
			if err != nil {
				t.Fatalf("killed RunSim: %v", err)
			}

			// The supervisor survives a participant crash and honestly pays
			// for re-verifying the aborted segment, so its eval counter may
			// exceed the clean run's; everything else — verdicts, reports,
			// window accounting, participant totals — must match exactly.
			if killedReport.SupervisorEvals < cleanReport.SupervisorEvals {
				t.Fatalf("crashed run verified less than clean: %d < %d evals",
					killedReport.SupervisorEvals, cleanReport.SupervisorEvals)
			}
			cs, ks := scrubStreamReport(cleanReport), scrubStreamReport(killedReport)
			cs.SupervisorEvals, ks.SupervisorEvals = 0, 0
			if !reflect.DeepEqual(cs, ks) {
				t.Fatalf("participant crash-and-restore report diverged from clean run:\nclean:  %+v\ncrashed: %+v", cs, ks)
			}
		})
	}
}

func TestRunSimParticipantCrashAtSegmentBoundary(t *testing.T) {
	clean := baseStreamConfig(t)
	clean.CheckpointEvery = 8
	clean.CheckpointDir = t.TempDir()
	cleanReport, err := RunSim(clean)
	if err != nil {
		t.Fatalf("clean RunSim: %v", err)
	}
	killed := clean
	killed.CheckpointDir = t.TempDir()
	killed.KillAfter = 16 // exactly a boundary: the pool dies freshly checkpointed
	killed.KillTarget = KillTargetParticipant
	killedReport, err := RunSim(killed)
	if err != nil {
		t.Fatalf("killed RunSim: %v", err)
	}
	cs, ks := scrubStreamReport(cleanReport), scrubStreamReport(killedReport)
	cs.SupervisorEvals, ks.SupervisorEvals = 0, 0
	if !reflect.DeepEqual(cs, ks) {
		t.Fatal("boundary participant crash-and-restore report diverged from clean run")
	}
}

func TestRunSimCheckpointKillAtSegmentBoundary(t *testing.T) {
	clean := baseStreamConfig(t)
	clean.CheckpointEvery = 8
	clean.CheckpointDir = t.TempDir()
	cleanReport, err := RunSim(clean)
	if err != nil {
		t.Fatalf("clean RunSim: %v", err)
	}
	killed := clean
	killed.CheckpointDir = t.TempDir()
	killed.KillAfter = 16 // exactly a segment boundary: kill after the barrier
	killedReport, err := RunSim(killed)
	if err != nil {
		t.Fatalf("killed RunSim: %v", err)
	}
	if !reflect.DeepEqual(scrubStreamReport(cleanReport), scrubStreamReport(killedReport)) {
		t.Fatal("boundary kill-and-restart report diverged from clean run")
	}
}

func TestRunSimStreamResumesFromCheckpointDir(t *testing.T) {
	cfg := baseStreamConfig(t)
	cfg.CheckpointEvery = 8
	cfg.CheckpointDir = t.TempDir()
	first, err := RunSim(cfg)
	if err != nil {
		t.Fatalf("first RunSim: %v", err)
	}
	// A second run over the same directory finds the run complete and
	// reassembles the identical report from durable state alone.
	second, err := RunSim(cfg)
	if err != nil {
		t.Fatalf("second RunSim: %v", err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("resumed report differs:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}

func TestRunSimStreamRejectsCorruptParticipantCheckpoint(t *testing.T) {
	cfg := baseStreamConfig(t)
	cfg.CheckpointEvery = 8
	cfg.CheckpointDir = t.TempDir()
	if _, err := RunSim(cfg); err != nil {
		t.Fatalf("RunSim: %v", err)
	}
	path := participantCheckpointPath(cfg.CheckpointDir, "honest-0")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write checkpoint: %v", err)
	}
	if _, err := RunSim(cfg); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("corrupt checkpoint: got %v, want ErrCheckpointCorrupt", err)
	}
}

func TestRunSimStreamValidation(t *testing.T) {
	cases := map[string]func(*SimConfig){
		"needs pipeline":         func(c *SimConfig) { c.PipelineWindow = 0 },
		"no double-check":        func(c *SimConfig) { c.Spec = SchemeSpec{Kind: SchemeDoubleCheck, WindowTasks: 0} },
		"no faults":              func(c *SimConfig) { c.DropProb = 0.1 },
		"no routes":              func(c *SimConfig) { c.Broker = true; c.Routes = 3 },
		"no blacklist":           func(c *SimConfig) { c.Blacklist = true },
		"checkpoint needs dir":   func(c *SimConfig) { c.CheckpointEvery = 4; c.CheckpointDir = "" },
		"kill needs checkpoints": func(c *SimConfig) { c.KillAfter = 5; c.CheckpointDir = "" },
		"unknown kill target": func(c *SimConfig) {
			c.KillAfter = 5
			c.CheckpointEvery = 4
			c.CheckpointDir = "x"
			c.KillTarget = "hub"
		},
		"kill target needs kill": func(c *SimConfig) { c.KillTarget = KillTargetParticipant },
		"windows require stream": func(c *SimConfig) { c.Stream = false },
		"checkpoints require stream": func(c *SimConfig) {
			c.Stream = false
			c.Spec.WindowTasks, c.Spec.WindowSamples = 0, 0
			c.CheckpointDir = "x"
		},
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			cfg := baseStreamConfig(t)
			mutate(&cfg)
			if _, err := RunSim(cfg); !errors.Is(err, ErrBadConfig) {
				t.Fatalf("got %v, want ErrBadConfig", err)
			}
		})
	}
}
