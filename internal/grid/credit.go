package grid

// Adaptive per-route credit windows for the muxed supervisor↔hub path.
//
// Both directions of a muxed link run the same receiver-driven protocol:
// the receiver extends byte credit to the sender, the sender charges every
// routed inner frame against its balance and stops when it runs dry, and
// the receiver grants fresh credit as its consumer drains the queue. The
// window — how much credit the receiver keeps outstanding — is not static:
// each route sizes it from an EWMA of its observed drain rate, clamped to
// [minRouteCreditWindowBytes, WithRouteCreditWindow]. Busy routes grow
// toward the ceiling; idle routes decay toward the floor simply by having
// grants withheld (credit already extended is never revoked), so a
// 1k-route hub exposes Σ windows ≪ routes × ceiling of queued-byte memory.

import (
	"time"

	"uncheatgrid/internal/transport"
)

// minRouteCreditWindowBytes is the adaptive window floor, and every
// route's initial window: large enough that a route ramping from idle can
// keep a few frames in flight, small enough that idle routes are nearly
// free. A ceiling below the floor (WithRouteCreditWindow smaller than
// 32 KiB) wins — the window is then pinned to the ceiling.
const minRouteCreditWindowBytes int64 = 32 << 10

// creditDrainHorizon is how much drain time one window is sized to cover:
// window = drain-rate × horizon, so a route draining D bytes/s is granted
// enough credit to keep its sender busy for ~25ms between grants.
const creditDrainHorizon = 25 * time.Millisecond

// creditEWMAAlpha weights the newest drain-rate observation when updating
// the EWMA at grant time.
const creditEWMAAlpha = 0.5

// creditSlackBytes is how far past its extended credit a sender may
// overshoot before the receiver classifies it as a link violation. One
// maximum frame of slack is inherent to the protocol: the sender checks
// its balance before sending and debits after, so a positive balance of
// one byte still permits one full frame. A variable so violation tests
// can tighten it without pushing 64 MiB through a pipe.
var creditSlackBytes = int64(transport.MaxFrameBytes)

// initialCreditWindow is the window every route starts at: the floor,
// pinned to the ceiling when the ceiling is smaller. Both endpoints of a
// muxed link compute initial credit this way, which is why they must be
// configured with the same ceiling.
func initialCreditWindow(ceiling int64) int64 {
	if ceiling < minRouteCreditWindowBytes {
		return ceiling
	}
	return minRouteCreditWindowBytes
}

// creditLedger is the receiver side of one route direction's flow control.
// It tracks how much credit is outstanding (extended to the sender and not
// yet consumed by an arrival), observes the drain rate, and decides when
// and how much to grant. Not self-locking: every method must be called
// under the owning route's mutex.
type creditLedger struct {
	// win is the current adaptive window target; ceiling its clamp.
	win     int64
	ceiling int64
	// outstanding is credit extended to the sender that no arrival has
	// consumed yet. It goes negative transiently — the sender may overshoot
	// its balance by one frame — but beyond creditSlackBytes negative the
	// sender is ignoring credit and the link is violating.
	outstanding int64
	// granted accumulates every grant's bytes (stats identity: initial
	// window + granted − arrivals == outstanding).
	granted int64
	// drainedSince and lastRate feed the EWMA: bytes drained since the
	// last rate sample, and when that sample was taken.
	drainedSince int64
	lastRate     time.Time
	// rate is the EWMA drain-rate estimate in bytes/second.
	rate float64
}

func newCreditLedger(ceiling int64) creditLedger {
	win := initialCreditWindow(ceiling)
	return creditLedger{
		win:         win,
		ceiling:     ceiling,
		outstanding: win,
		lastRate:    time.Now(),
	}
}

// arrive charges one inner frame against the credit the ledger has
// extended. It reports false when the sender has overshot its credit by
// more than the protocol-inherent slack — a credit-ignoring peer, which
// the caller must treat as a link violation.
func (c *creditLedger) arrive(size int64) bool {
	c.outstanding -= size
	return c.outstanding >= -creditSlackBytes
}

// drain records that the route's consumer drained size queued bytes.
func (c *creditLedger) drain(size int64) {
	c.drainedSince += size
}

// grantDue decides whether a grant is owed given the route's current queue
// occupancy, resizes the window from the drain EWMA when one is, and
// returns the grant size (0 when nothing is due). The invariant a grant
// restores is outstanding + queued == win: the sender can always fill the
// window, never more. Granting only at drain time is deadlock-free — credit
// is consumed only by arrivals, arrivals are drained by the consumer, and
// a full drain always re-opens the window (grantable = win − outstanding
// ≥ win − 0 > 0 via the starvation guard below).
func (c *creditLedger) grantDue(queued int64) int64 {
	grantable := c.win - queued - c.outstanding
	// Batch grants into half-window chunks; the starvation guard covers the
	// fully-drained sender whose deficit never reaches half of a window.
	if grantable < c.win/2 && !(queued == 0 && c.outstanding <= 0 && grantable > 0) {
		return 0
	}
	c.resizeLocked()
	grantable = c.win - queued - c.outstanding
	if grantable <= 0 {
		return 0
	}
	c.outstanding += grantable
	c.granted += grantable
	return grantable
}

// resizeLocked folds the drain observed since the last grant into the rate
// EWMA and retargets the window to rate × horizon, clamped to the
// [floor, ceiling] band. Called only at grant time, so idle routes — which
// never grant — simply keep their last (small) window.
func (c *creditLedger) resizeLocked() {
	now := time.Now()
	dt := now.Sub(c.lastRate).Seconds()
	if dt <= 0 {
		return
	}
	inst := float64(c.drainedSince) / dt
	c.rate = creditEWMAAlpha*inst + (1-creditEWMAAlpha)*c.rate
	c.drainedSince = 0
	c.lastRate = now
	target := int64(c.rate * creditDrainHorizon.Seconds())
	floor := initialCreditWindow(c.ceiling)
	if target < floor {
		target = floor
	}
	if target > c.ceiling {
		target = c.ceiling
	}
	c.win = target
}
