package grid

import (
	"testing"

	"uncheatgrid/internal/leakcheck"
)

// TestMain fails the package when any test leaves a goroutine behind:
// session pullers, batch writers, broker pumps and monitors, bind waiters,
// and stream workers must all be joined by the teardown paths they belong
// to.
func TestMain(m *testing.M) { leakcheck.VerifyTestMain(m) }
