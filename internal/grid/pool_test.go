package grid

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"uncheatgrid/internal/transport"
)

// poolFixture wires n participants (serving on their own goroutines) and
// returns their supervisor-side connections plus a shutdown func.
func poolFixture(t *testing.T, n int, factory func(i int) ProducerFactory) ([]transport.Conn, func()) {
	t.Helper()
	conns := make([]transport.Conn, n)
	serveErrs := make([]chan error, n)
	for i := 0; i < n; i++ {
		p, err := NewParticipant(fmt.Sprintf("p%d", i), factory(i))
		if err != nil {
			t.Fatalf("NewParticipant: %v", err)
		}
		supConn, partConn := transport.Pipe(transport.WithBuffer(8))
		conns[i] = supConn
		serveErrs[i] = make(chan error, 1)
		go func(ch chan error) { ch <- p.Serve(partConn) }(serveErrs[i])
	}
	shutdown := func() {
		t.Helper()
		for _, c := range conns {
			_ = c.Close()
		}
		for i, ch := range serveErrs {
			if err := <-ch; err != nil {
				t.Errorf("participant %d serve: %v", i, err)
			}
		}
	}
	return conns, shutdown
}

// poolTasks builds one synthetic task per index with distinct IDs/windows.
func poolTasks(n int, size uint64) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{
			ID:       uint64(i),
			Start:    uint64(i) * size,
			N:        size,
			Workload: "synthetic",
			Seed:     7,
		}
	}
	return tasks
}

// TestPoolRunsManyParticipantsConcurrently is the headline concurrency
// test: 12 participants verified at once, honest ones accepted, cheaters
// caught, eval/byte aggregation consistent. Run under -race it also proves
// the engine clean of data races.
func TestPoolRunsManyParticipantsConcurrently(t *testing.T) {
	const participants = 12
	cheaterAt := func(i int) bool { return i%3 == 2 }
	conns, shutdown := poolFixture(t, participants, func(i int) ProducerFactory {
		if cheaterAt(i) {
			// r = 0.3, m = 20: survival probability ~3e-11.
			return SemiHonestFactory(0.3, uint64(100+i))
		}
		return HonestFactory
	})

	pool, err := NewSupervisorPool(SupervisorConfig{
		Spec: SchemeSpec{Kind: SchemeCBS, M: 20},
		Seed: 42,
	}, participants)
	if err != nil {
		t.Fatalf("NewSupervisorPool: %v", err)
	}

	tasks := poolTasks(participants, 256)
	assignments := make([]Assignment, participants)
	for i := range assignments {
		assignments[i] = Assignment{Conn: conns[i], Task: tasks[i]}
	}
	outcomes, err := pool.RunTasks(context.Background(), assignments)
	shutdown()
	if err != nil {
		t.Fatalf("RunTasks: %v", err)
	}

	var sent, recv, evals int64
	for i, outcome := range outcomes {
		if outcome == nil {
			t.Fatalf("outcome %d is nil", i)
		}
		if outcome.Task.ID != tasks[i].ID {
			t.Fatalf("outcome %d carries task %d; order not preserved", i, outcome.Task.ID)
		}
		if cheaterAt(i) == outcome.Verdict.Accepted {
			t.Errorf("participant %d (cheater=%v): accepted=%v, reason=%q",
				i, cheaterAt(i), outcome.Verdict.Accepted, outcome.Verdict.Reason)
		}
		sent += outcome.BytesSent
		recv += outcome.BytesRecv
		evals += outcome.VerifyEvals
	}
	if pool.BytesSent() != sent || pool.BytesRecv() != recv {
		t.Errorf("pool counters sent=%d recv=%d, outcome sums sent=%d recv=%d",
			pool.BytesSent(), pool.BytesRecv(), sent, recv)
	}
	if pool.VerifyEvals() != evals {
		t.Errorf("pool VerifyEvals = %d, outcome sum = %d", pool.VerifyEvals(), evals)
	}
	if evals == 0 {
		t.Error("no verification evaluations recorded")
	}
}

// TestPoolSerializesSharedConnection gives one participant several tasks:
// the pool must keep that connection's protocol exchanges ordered.
func TestPoolSerializesSharedConnection(t *testing.T) {
	conns, shutdown := poolFixture(t, 1, func(int) ProducerFactory { return HonestFactory })
	pool, err := NewSupervisorPool(SupervisorConfig{
		Spec: SchemeSpec{Kind: SchemeCBS, M: 5},
		Seed: 1,
	}, 8)
	if err != nil {
		t.Fatalf("NewSupervisorPool: %v", err)
	}
	tasks := poolTasks(6, 64)
	assignments := make([]Assignment, len(tasks))
	for i, task := range tasks {
		assignments[i] = Assignment{Conn: conns[0], Task: task}
	}
	outcomes, err := pool.RunTasks(context.Background(), assignments)
	shutdown()
	if err != nil {
		t.Fatalf("RunTasks on shared conn: %v", err)
	}
	for i, outcome := range outcomes {
		if !outcome.Verdict.Accepted {
			t.Fatalf("task %d rejected on shared conn: %s", i, outcome.Verdict.Reason)
		}
	}
}

// TestPoolMatchesSerialSupervisor runs the same assignments serially and
// pooled: per-task seed derivation must make verdicts, traffic, and eval
// counts identical.
func TestPoolMatchesSerialSupervisor(t *testing.T) {
	const participants = 8
	factory := func(i int) ProducerFactory {
		if i%2 == 1 {
			return SemiHonestFactory(0.5, uint64(i))
		}
		return HonestFactory
	}
	cfg := SupervisorConfig{Spec: SchemeSpec{Kind: SchemeCBS, M: 16}, Seed: 9}
	tasks := poolTasks(participants, 128)

	type digest struct {
		Verdict     Verdict
		BytesSent   int64
		BytesRecv   int64
		VerifyEvals int64
		CheatIndex  int64
	}
	digestOf := func(o *TaskOutcome) digest {
		return digest{o.Verdict, o.BytesSent, o.BytesRecv, o.VerifyEvals, o.CheatIndex}
	}

	// Serial reference.
	serial := make([]digest, participants)
	{
		conns, shutdown := poolFixture(t, participants, factory)
		sup, err := NewSupervisor(cfg)
		if err != nil {
			t.Fatalf("NewSupervisor: %v", err)
		}
		for i := range tasks {
			outcome, err := sup.RunTask(conns[i], tasks[i])
			if err != nil {
				t.Fatalf("serial RunTask %d: %v", i, err)
			}
			serial[i] = digestOf(outcome)
		}
		shutdown()
	}

	// Pooled run over a fresh, identically-seeded population.
	conns, shutdown := poolFixture(t, participants, factory)
	pool, err := NewSupervisorPool(cfg, 4)
	if err != nil {
		t.Fatalf("NewSupervisorPool: %v", err)
	}
	assignments := make([]Assignment, participants)
	for i := range assignments {
		assignments[i] = Assignment{Conn: conns[i], Task: tasks[i]}
	}
	outcomes, err := pool.RunTasks(context.Background(), assignments)
	shutdown()
	if err != nil {
		t.Fatalf("pooled RunTasks: %v", err)
	}
	for i, outcome := range outcomes {
		if got := digestOf(outcome); !reflect.DeepEqual(got, serial[i]) {
			t.Errorf("task %d: pooled %+v != serial %+v", i, got, serial[i])
		}
	}
}

// TestPoolRejectsBadConfig covers constructor and input validation.
func TestPoolRejectsBadConfig(t *testing.T) {
	// Double-check pools are legal (RunTasksStream replicates them), but
	// the per-connection RunTasks batch API cannot express the replica
	// barrier and refuses the scheme.
	dcPool, err := NewSupervisorPool(SupervisorConfig{
		Spec: SchemeSpec{Kind: SchemeDoubleCheck, M: 1},
	}, 4)
	if err != nil {
		t.Fatalf("double-check pool: %v", err)
	}
	dcConn, _ := transport.Pipe()
	if _, err := dcPool.RunTasks(context.Background(),
		[]Assignment{{Conn: dcConn, Task: poolTasks(1, 64)[0]}}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("double-check RunTasks: err = %v, want ErrBadConfig", err)
	}
	pool, err := NewSupervisorPool(SupervisorConfig{
		Spec: SchemeSpec{Kind: SchemeCBS, M: 5},
	}, 0) // 0 workers defaults to NumCPU
	if err != nil {
		t.Fatalf("NewSupervisorPool: %v", err)
	}
	if _, err := pool.RunTasks(context.Background(),
		[]Assignment{{Conn: nil, Task: poolTasks(1, 64)[0]}}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nil conn: err = %v, want ErrBadConfig", err)
	}
	outcomes, err := pool.RunTasks(context.Background(), nil)
	if err != nil || outcomes != nil {
		t.Fatalf("empty assignments: outcomes=%v err=%v, want nil/nil", outcomes, err)
	}
}

// TestPoolHonorsCancelledContext starts with an already-cancelled context:
// no task may run and the context error must surface.
func TestPoolHonorsCancelledContext(t *testing.T) {
	conns, shutdown := poolFixture(t, 2, func(int) ProducerFactory { return HonestFactory })
	defer shutdown()
	pool, err := NewSupervisorPool(SupervisorConfig{
		Spec: SchemeSpec{Kind: SchemeCBS, M: 5},
	}, 2)
	if err != nil {
		t.Fatalf("NewSupervisorPool: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tasks := poolTasks(2, 64)
	_, err = pool.RunTasks(ctx, []Assignment{
		{Conn: conns[0], Task: tasks[0]},
		{Conn: conns[1], Task: tasks[1]},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// TestPoolPropagatesTransportErrors closes a connection mid-pool: the
// failure must come back as an error, not a verdict.
func TestPoolPropagatesTransportErrors(t *testing.T) {
	conns, shutdown := poolFixture(t, 2, func(int) ProducerFactory { return HonestFactory })
	pool, err := NewSupervisorPool(SupervisorConfig{
		Spec: SchemeSpec{Kind: SchemeCBS, M: 5},
	}, 2)
	if err != nil {
		t.Fatalf("NewSupervisorPool: %v", err)
	}
	_ = conns[1].Close()
	tasks := poolTasks(2, 64)
	_, err = pool.RunTasks(context.Background(), []Assignment{
		{Conn: conns[0], Task: tasks[0]},
		{Conn: conns[1], Task: tasks[1]},
	})
	if err == nil {
		t.Fatal("RunTasks succeeded over a closed connection")
	}
	_ = conns[0].Close()
	// Participant 1's serve loop sees its peer closed and exits cleanly;
	// only drain participant 0 via the fixture's shutdown.
	shutdown()
}

// TestTaskSeedIndependence pins the per-task derivation: distinct task IDs
// yield distinct streams, and the same ID always yields the same stream.
func TestTaskSeedIndependence(t *testing.T) {
	if taskSeed(1, 1) == taskSeed(1, 2) {
		t.Error("tasks 1 and 2 share a seed")
	}
	if taskSeed(1, 1) == taskSeed(2, 1) {
		t.Error("supervisor seeds 1 and 2 collide on task 1")
	}
	if taskSeed(5, 9) != taskSeed(5, 9) {
		t.Error("taskSeed is not deterministic")
	}
}
