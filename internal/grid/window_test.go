package grid

import (
	"bytes"
	"strings"
	"testing"
)

func windowSpec(w, m int) SchemeSpec {
	return SchemeSpec{Kind: SchemeCBS, M: 8, ChainIters: 1, WindowTasks: w, WindowSamples: m}
}

// windowPair builds both protocol sides of one link, sharing a spec.
func windowPair(t *testing.T, spec SchemeSpec) (*participantWindows, *WindowLedger) {
	t.Helper()
	pw, err := newParticipantWindows(spec)
	if err != nil {
		t.Fatalf("newParticipantWindows: %v", err)
	}
	led, err := NewWindowLedger(spec)
	if err != nil {
		t.Fatalf("NewWindowLedger: %v", err)
	}
	return pw, led
}

// settleTask runs one task through both sides: the ledger banks the digest at
// decision time, then the participant settles it, forwarding any emitted
// commit into the ledger.
func settleTask(t *testing.T, pw *participantWindows, led *WindowLedger, id uint64, digest []byte) {
	t.Helper()
	led.record(id, digest)
	err := pw.settle(id, digest, func(typ uint8, payload []byte) error {
		if typ != msgWindowCommit {
			t.Fatalf("settle emitted type %d, want msgWindowCommit", typ)
		}
		return led.onCommit(payload)
	})
	if err != nil {
		t.Fatalf("settle(%d): %v", id, err)
	}
}

func TestWindowCommitRoundTrip(t *testing.T) {
	spec := windowSpec(4, 2)
	pw, led := windowPair(t, spec)
	for id := uint64(0); id < 10; id++ {
		settleTask(t, pw, led, id, streamDigest(id, spec.Kind, []byte{byte(id)}))
	}
	stats := led.Stats()
	if stats.Settled != 2 || stats.Violations != 0 {
		t.Fatalf("Stats = %+v, want 2 settled, 0 violations", stats)
	}
	if stats.Pending != 2 {
		t.Fatalf("Pending = %d, want 2 (tasks 8, 9 uncovered)", stats.Pending)
	}
}

func TestWindowCommitDetectsDivergedDigest(t *testing.T) {
	spec := windowSpec(3, 3)
	pw, led := windowPair(t, spec)
	// Task 1's committed digest disagrees with what the supervisor decided —
	// the participant rewriting history after the fact.
	for id := uint64(0); id < 3; id++ {
		digest := streamDigest(id, spec.Kind, []byte{byte(id)})
		led.record(id, digest)
		if id == 1 {
			digest = streamDigest(id, spec.Kind, []byte("forged"))
		}
		if err := pw.settle(id, digest, func(_ uint8, payload []byte) error {
			return led.onCommit(payload)
		}); err != nil {
			t.Fatalf("settle(%d): %v", id, err)
		}
	}
	stats := led.Stats()
	if stats.Violations != 1 || stats.Settled != 0 {
		t.Fatalf("Stats = %+v, want the forged window flagged", stats)
	}
	if !strings.Contains(stats.LastViolation, "disagrees") {
		t.Fatalf("LastViolation = %q", stats.LastViolation)
	}
	if stats.Pending != 0 {
		t.Fatalf("Pending = %d: a violating window must still evict its tasks", stats.Pending)
	}
	// Cursors stayed in lockstep: the next window settles cleanly.
	for id := uint64(3); id < 6; id++ {
		settleTask(t, pw, led, id, streamDigest(id, spec.Kind, []byte{byte(id)}))
	}
	if stats := led.Stats(); stats.Settled != 1 || stats.Violations != 1 {
		t.Fatalf("after recovery Stats = %+v, want 1 settled, 1 violation", stats)
	}
}

func TestWindowCommitDetectsReplayedWindow(t *testing.T) {
	spec := windowSpec(2, 1)
	pw, led := windowPair(t, spec)
	var lastCommit []byte
	for id := uint64(0); id < 2; id++ {
		led.record(id, streamDigest(id, spec.Kind, []byte{byte(id)}))
		if err := pw.settle(id, streamDigest(id, spec.Kind, []byte{byte(id)}), func(_ uint8, payload []byte) error {
			lastCommit = payload
			return led.onCommit(payload)
		}); err != nil {
			t.Fatalf("settle(%d): %v", id, err)
		}
	}
	if err := led.onCommit(lastCommit); err != nil {
		t.Fatalf("replayed onCommit: %v", err)
	}
	stats := led.Stats()
	if stats.Violations != 1 {
		t.Fatalf("Stats = %+v, want the replay counted as a violation", stats)
	}
	if !strings.Contains(stats.LastViolation, "out of order") {
		t.Fatalf("LastViolation = %q", stats.LastViolation)
	}
}

func TestWindowCommitRejectsUndecodablePayload(t *testing.T) {
	_, led := windowPair(t, windowSpec(2, 1))
	if err := led.onCommit([]byte{0xff}); err == nil {
		t.Fatal("onCommit accepted garbage")
	}
	if stats := led.Stats(); stats.Violations != 0 {
		t.Fatalf("garbage counted as a violation: %+v", stats)
	}
}

func TestWindowCommitUndecidedTaskIsViolation(t *testing.T) {
	spec := windowSpec(2, 2)
	pw, led := windowPair(t, spec)
	// The participant commits task 1 the supervisor never decided.
	led.record(0, streamDigest(0, spec.Kind, []byte{0}))
	for id := uint64(0); id < 2; id++ {
		if err := pw.settle(id, streamDigest(id, spec.Kind, []byte{byte(id)}), func(_ uint8, payload []byte) error {
			return led.onCommit(payload)
		}); err != nil {
			t.Fatalf("settle(%d): %v", id, err)
		}
	}
	stats := led.Stats()
	if stats.Violations != 1 || !strings.Contains(stats.LastViolation, "never decided") {
		t.Fatalf("Stats = %+v", stats)
	}
}

// TestWindowStateCheckpointRoundTrip kills both sides mid-window and
// restores them from their serialized state: the next windows must settle as
// if nothing happened — the property kill-and-restart runs rest on.
func TestWindowStateCheckpointRoundTrip(t *testing.T) {
	spec := windowSpec(4, 2)
	pw, led := windowPair(t, spec)
	for id := uint64(0); id < 6; id++ { // one full window plus two pending
		settleTask(t, pw, led, id, streamDigest(id, spec.Kind, []byte{byte(id)}))
	}

	var buf bytes.Buffer
	if err := pw.encodeState(&buf); err != nil {
		t.Fatalf("encodeState: %v", err)
	}
	restoredPW, err := decodeParticipantWindows(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decodeParticipantWindows: %v", err)
	}
	restoredLed, err := restoreWindowLedger(spec, led.encodeState())
	if err != nil {
		t.Fatalf("restoreWindowLedger: %v", err)
	}

	for id := uint64(6); id < 12; id++ {
		settleTask(t, restoredPW, restoredLed, id, streamDigest(id, spec.Kind, []byte{byte(id)}))
	}
	stats := restoredLed.Stats()
	if stats.Settled != 3 || stats.Violations != 0 {
		t.Fatalf("restored Stats = %+v, want 3 settled windows", stats)
	}
}

func TestWindowLedgerRequiresWindow(t *testing.T) {
	if _, err := NewWindowLedger(SchemeSpec{Kind: SchemeCBS, M: 8}); err == nil {
		t.Fatal("NewWindowLedger accepted a spec without windows")
	}
}
