package grid

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"uncheatgrid/internal/cheat"
	"uncheatgrid/internal/core"
	"uncheatgrid/internal/transport"
	"uncheatgrid/internal/workload"
)

// sessionFixture wires one participant serving on its own goroutine and
// returns the supervisor-side connection plus a shutdown func.
func sessionFixture(t *testing.T, factory ProducerFactory, opts ...ParticipantOption) (transport.Conn, func()) {
	t.Helper()
	p, err := NewParticipant("p", factory, opts...)
	if err != nil {
		t.Fatalf("NewParticipant: %v", err)
	}
	supConn, partConn := transport.Pipe(transport.WithBuffer(8))
	serveErr := make(chan error, 1)
	go func() { serveErr <- p.Serve(partConn) }()
	shutdown := func() {
		t.Helper()
		_ = supConn.Close()
		if err := <-serveErr; err != nil {
			t.Errorf("participant serve: %v", err)
		}
	}
	return supConn, shutdown
}

// runSessionTasks runs every task through one session with the given window
// and returns the outcomes indexed like tasks.
func runSessionTasks(t *testing.T, sess *Session, tasks []Task) []*TaskOutcome {
	t.Helper()
	outcomes := make([]*TaskOutcome, len(tasks))
	errs := make([]error, len(tasks))
	var wg sync.WaitGroup
	for i, task := range tasks {
		wg.Add(1)
		go func(i int, task Task) {
			defer wg.Done()
			outcomes[i], errs[i] = sess.RunTask(task)
		}(i, task)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session task %d: %v", i, err)
		}
	}
	return outcomes
}

// TestSessionMatchesDialogue is the pipelining acceptance test: a session
// with window 4 over a single connection must produce byte-identical
// verdicts and reports to the serial one-dialogue-per-task run for equal
// seeds, however the in-flight exchanges interleave.
func TestSessionMatchesDialogue(t *testing.T) {
	// A half-lazy cheater makes the comparison meaningful: verdicts hinge
	// on the per-task challenge randomness and the cheater's claimed set.
	factory := func() ProducerFactory { return SemiHonestFactory(0.6, 77) }
	cfg := SupervisorConfig{Spec: SchemeSpec{Kind: SchemeCBS, M: 12}, Seed: 5, CrossCheckReports: true}
	tasks := poolTasks(8, 128)

	type digest struct {
		Verdict     Verdict
		Reports     []Report
		VerifyEvals int64
		CheatIndex  int64
	}
	digestOf := func(o *TaskOutcome) digest {
		return digest{o.Verdict, o.Reports, o.VerifyEvals, o.CheatIndex}
	}

	serial := make([]digest, len(tasks))
	{
		conn, shutdown := sessionFixture(t, factory())
		sup, err := NewSupervisor(cfg)
		if err != nil {
			t.Fatalf("NewSupervisor: %v", err)
		}
		for i, task := range tasks {
			outcome, err := sup.RunTask(conn, task)
			if err != nil {
				t.Fatalf("serial RunTask %d: %v", i, err)
			}
			serial[i] = digestOf(outcome)
		}
		shutdown()
	}

	conn, shutdown := sessionFixture(t, factory())
	sup, err := NewSupervisor(cfg)
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	sess, err := sup.OpenSession(conn, 4)
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	outcomes := runSessionTasks(t, sess, tasks)
	if err := sess.Close(); err != nil {
		t.Fatalf("session close: %v", err)
	}
	shutdown()

	for i, outcome := range outcomes {
		if got := digestOf(outcome); !reflect.DeepEqual(got, serial[i]) {
			t.Errorf("task %d: pipelined %+v != serial %+v", i, got, serial[i])
		}
	}
}

// TestSessionByteAccountingExact pins the session accounting invariant: the
// connection's exact frame-level counters decompose into per-task tagged
// bytes plus session framing overhead, with nothing lost or double-counted.
func TestSessionByteAccountingExact(t *testing.T) {
	conn, shutdown := sessionFixture(t, HonestFactory)
	sup, err := NewSupervisor(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeCBS, M: 8}, Seed: 3})
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	sess, err := sup.OpenSession(conn, 4)
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	outcomes := runSessionTasks(t, sess, poolTasks(6, 128))
	if err := sess.Close(); err != nil {
		t.Fatalf("session close: %v", err)
	}

	var taskSent, taskRecv int64
	for _, o := range outcomes {
		if o.BytesSent <= 0 || o.BytesRecv <= 0 {
			t.Fatalf("task %d has non-positive traffic: sent=%d recv=%d", o.Task.ID, o.BytesSent, o.BytesRecv)
		}
		taskSent += o.BytesSent
		taskRecv += o.BytesRecv
	}
	ovSent, ovRecv := sess.OverheadBytes()
	if ovSent <= 0 || ovRecv <= 0 {
		t.Fatalf("no framing overhead recorded: sent=%d recv=%d", ovSent, ovRecv)
	}
	if got, want := conn.Stats().BytesSent(), taskSent+ovSent; got != want {
		t.Errorf("BytesSent = %d, task sum + overhead = %d", got, want)
	}
	if got, want := conn.Stats().BytesRecv(), taskRecv+ovRecv; got != want {
		t.Errorf("BytesRecv = %d, task sum + overhead = %d", got, want)
	}
	shutdown()
}

// TestSessionBatchingSavesFrames verifies the coalescing actually batches:
// a pipelined run of n tasks must use fewer frames than the dialogue run's
// fixed per-task message count.
func TestSessionBatchingSavesFrames(t *testing.T) {
	const tasks = 8

	dialogue := func() int64 {
		conn, shutdown := sessionFixture(t, HonestFactory)
		defer shutdown()
		sup, err := NewSupervisor(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeCBS, M: 6}, Seed: 2})
		if err != nil {
			t.Fatalf("NewSupervisor: %v", err)
		}
		for _, task := range poolTasks(tasks, 64) {
			if _, err := sup.RunTask(conn, task); err != nil {
				t.Fatalf("RunTask: %v", err)
			}
		}
		return conn.Stats().MsgsSent() + conn.Stats().MsgsRecv()
	}()

	// A small link delay holds the writers in Send long enough for the
	// concurrent tasks' messages to pile up and coalesce deterministically.
	supConn, partConn := transport.Pipe(transport.WithBuffer(8))
	p, err := NewParticipant("p", HonestFactory)
	if err != nil {
		t.Fatalf("NewParticipant: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- p.Serve(transport.WithLatency(partConn, 500*time.Microsecond)) }()

	sup, err := NewSupervisor(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeCBS, M: 6}, Seed: 2})
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	sess, err := sup.OpenSession(transport.WithLatency(supConn, 500*time.Microsecond), tasks)
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	runSessionTasks(t, sess, poolTasks(tasks, 64))
	if err := sess.Close(); err != nil {
		t.Fatalf("session close: %v", err)
	}
	pipelined := supConn.Stats().MsgsSent() + supConn.Stats().MsgsRecv()
	_ = supConn.Close()
	if err := <-serveErr; err != nil {
		t.Errorf("participant serve: %v", err)
	}

	if pipelined >= dialogue {
		t.Errorf("pipelined run used %d frames, dialogue %d — no coalescing", pipelined, dialogue)
	}
}

// TestSessionAllSchemes drives every pipelinable scheme through a session:
// the batched codecs must carry commitments, uploads, ringer hits, and
// verdicts alike.
func TestSessionAllSchemes(t *testing.T) {
	specs := []SchemeSpec{
		{Kind: SchemeCBS, M: 6},
		{Kind: SchemeNICBS, M: 6, ChainIters: 2},
		{Kind: SchemeCBS, M: 6, SubtreeHeight: 3},
		{Kind: SchemeNaive, M: 6},
		{Kind: SchemeRinger, M: 4},
	}
	for _, spec := range specs {
		t.Run(fmt.Sprintf("%v-ell%d", spec.Kind, spec.SubtreeHeight), func(t *testing.T) {
			conn, shutdown := sessionFixture(t, HonestFactory)
			defer shutdown()
			sup, err := NewSupervisor(SupervisorConfig{Spec: spec, Seed: 11})
			if err != nil {
				t.Fatalf("NewSupervisor: %v", err)
			}
			sess, err := sup.OpenSession(conn, 3)
			if err != nil {
				t.Fatalf("OpenSession: %v", err)
			}
			outcomes := runSessionTasks(t, sess, poolTasks(5, 64))
			if err := sess.Close(); err != nil {
				t.Fatalf("session close: %v", err)
			}
			for _, o := range outcomes {
				if !o.Verdict.Accepted {
					t.Errorf("honest task %d rejected: %s", o.Task.ID, o.Verdict.Reason)
				}
			}
		})
	}
}

// TestSessionRejectsBadConfig covers session construction and lifecycle
// validation.
func TestSessionRejectsBadConfig(t *testing.T) {
	sup, err := NewSupervisor(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeCBS, M: 4}})
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	if _, err := sup.OpenSession(nil, 4); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil conn: err = %v, want ErrBadConfig", err)
	}
	supConn, _ := transport.Pipe()
	if _, err := sup.OpenSession(supConn, 0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("window 0: err = %v, want ErrBadConfig", err)
	}

	// Double-check sessions exist (RunTasksStream drives replica exchanges
	// through them), but a lone RunTask has no sibling replicas to compare
	// against and is refused.
	dc, err := NewSupervisor(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeDoubleCheck, M: 1}})
	if err != nil {
		t.Fatalf("NewSupervisor(double-check): %v", err)
	}
	dcSess, err := dc.OpenSession(supConn, 4)
	if err != nil {
		t.Fatalf("double-check OpenSession: %v", err)
	}
	if _, err := dcSess.RunTask(poolTasks(1, 64)[0]); !errors.Is(err, ErrBadConfig) {
		t.Errorf("double-check session RunTask: err = %v, want ErrBadConfig", err)
	}
	_ = dcSess.Close()

	sess, err := sup.OpenSession(supConn, 2)
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := sess.RunTask(poolTasks(1, 64)[0]); !errors.Is(err, ErrBadConfig) {
		t.Errorf("RunTask after Close: err = %v, want ErrBadConfig", err)
	}
}

// TestSessionRejectsTaskIDReuse pins the routing-key contract: a task ID
// may be used once per session, and reuse fails deterministically instead
// of racing the participant-side teardown of the finished task.
func TestSessionRejectsTaskIDReuse(t *testing.T) {
	conn, shutdown := sessionFixture(t, HonestFactory)
	defer shutdown()
	sup, err := NewSupervisor(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeCBS, M: 4}, Seed: 1})
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	sess, err := sup.OpenSession(conn, 2)
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	task := poolTasks(1, 64)[0]
	if _, err := sess.RunTask(task); err != nil {
		t.Fatalf("first RunTask: %v", err)
	}
	if _, err := sess.RunTask(task); !errors.Is(err, ErrBadConfig) {
		t.Errorf("task ID reuse: err = %v, want ErrBadConfig", err)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestServePipelinedProtocolErrorClosesConn covers the participant-side
// protocol-error path: a message for an unknown task must fail the serve
// loop AND close the connection so the supervisor's session cannot block
// forever on a half-dead exchange.
func TestServePipelinedProtocolErrorClosesConn(t *testing.T) {
	p, err := NewParticipant("p", HonestFactory)
	if err != nil {
		t.Fatalf("NewParticipant: %v", err)
	}
	supConn, partConn := transport.Pipe(transport.WithBuffer(4))
	serveErr := make(chan error, 1)
	go func() { serveErr <- p.Serve(partConn) }()

	batch := encodeBatch([]taggedMsg{{TaskID: 7, Type: msgCommit, Payload: []byte{1}}})
	if err := supConn.Send(transport.Message{Type: msgBatch, Payload: batch}); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, ErrUnexpectedMessage) {
		t.Errorf("serve error = %v, want ErrUnexpectedMessage", err)
	}
	// The participant must have closed its side; our next receive returns
	// promptly instead of hanging.
	if _, err := supConn.Recv(); err == nil {
		t.Error("connection still delivering after participant protocol error")
	}
	_ = supConn.Close()
}

// TestSessionTransportError closes the connection out from under an open
// session: in-flight tasks must fail with an error, not hang.
func TestSessionTransportError(t *testing.T) {
	supConn, partConn := transport.Pipe(transport.WithBuffer(8))
	_ = partConn.Close()
	sup, err := NewSupervisor(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeCBS, M: 4}})
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	sess, err := sup.OpenSession(supConn, 2)
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	if _, err := sess.RunTask(poolTasks(1, 64)[0]); err == nil {
		t.Error("RunTask over a closed connection succeeded")
	}
	_ = sess.Close()
	_ = supConn.Close()
}

// TestSessionParticipantTaskFailureAborts covers the failure path of a
// pipelined task on the worker side: a producer factory that errors cannot
// answer the exchange, so the participant must abort the session (closing
// the connection) and the supervisor's RunTask must fail instead of
// waiting forever for a commitment.
func TestSessionParticipantTaskFailureAborts(t *testing.T) {
	boom := errors.New("factory boom")
	p, err := NewParticipant("p", func(workload.Function) (cheat.Producer, error) { return nil, boom })
	if err != nil {
		t.Fatalf("NewParticipant: %v", err)
	}
	supConn, partConn := transport.Pipe(transport.WithBuffer(8))
	serveErr := make(chan error, 1)
	go func() { serveErr <- p.Serve(partConn) }()

	sup, err := NewSupervisor(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeCBS, M: 4}})
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	sess, err := sup.OpenSession(supConn, 2)
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	if _, err := sess.RunTask(poolTasks(1, 64)[0]); err == nil {
		t.Error("RunTask succeeded against a participant whose task failed")
	}
	_ = sess.Close()
	_ = supConn.Close()
	if err := <-serveErr; !errors.Is(err, boom) {
		t.Errorf("Serve error = %v, want the task failure cause", err)
	}
}

// failSendConn delivers receives normally but fails every send — the shape
// of a broken write half with a healthy read half.
type failSendConn struct {
	transport.Conn
}

func (c *failSendConn) Send(transport.Message) error {
	return errors.New("send boom")
}

// TestSessionWriterFailurePoisonsSession pins the asynchronous-send failure
// path: enqueue returns before the frame hits the wire, so a send error
// must poison the whole session and fail blocked RunTask calls instead of
// leaving them waiting for a reply to a frame that was discarded.
func TestSessionWriterFailurePoisonsSession(t *testing.T) {
	supConn, partConn := transport.Pipe(transport.WithBuffer(8))
	sup, err := NewSupervisor(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeCBS, M: 4}})
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	sess, err := sup.OpenSession(&failSendConn{Conn: supConn}, 2)
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := sess.RunTask(poolTasks(1, 64)[0])
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("RunTask succeeded although every send fails")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunTask hung after a writer send failure")
	}
	_ = sess.Close()
	_ = supConn.Close()
	_ = partConn.Close()
}

// TestRunTasksStreamWorkStealing runs many tasks over fewer connections
// than tasks: all outcomes must stream out, verdicts must be correct per
// executing participant, and the pool byte counters must match the
// outcome sums.
func TestRunTasksStreamWorkStealing(t *testing.T) {
	const participants, tasks = 4, 16
	cheaterAt := func(i int) bool { return i == 3 }
	conns, shutdown := poolFixture(t, participants, func(i int) ProducerFactory {
		if cheaterAt(i) {
			return SemiHonestFactory(0.3, uint64(100+i))
		}
		return HonestFactory
	})
	cheaterConn := conns[3]

	pool, err := NewSupervisorPool(SupervisorConfig{
		Spec: SchemeSpec{Kind: SchemeCBS, M: 20},
		Seed: 42,
	}, participants*2)
	if err != nil {
		t.Fatalf("NewSupervisorPool: %v", err)
	}
	stream, err := pool.RunTasksStream(context.Background(), conns, poolTasks(tasks, 128), 2)
	if err != nil {
		t.Fatalf("RunTasksStream: %v", err)
	}

	seen := make(map[uint64]bool)
	var sent, recv int64
	for so := range stream.Outcomes() {
		if seen[so.Outcome.Task.ID] {
			t.Errorf("task %d delivered twice", so.Outcome.Task.ID)
		}
		seen[so.Outcome.Task.ID] = true
		if want := so.Conn == cheaterConn; want == so.Outcome.Verdict.Accepted {
			t.Errorf("task %d on cheater-conn=%v: accepted=%v, reason=%q",
				so.Outcome.Task.ID, want, so.Outcome.Verdict.Accepted, so.Outcome.Verdict.Reason)
		}
		sent += so.Outcome.BytesSent
		recv += so.Outcome.BytesRecv
	}
	if err := stream.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	var wireSent, wireRecv int64
	for _, conn := range conns {
		wireSent += conn.Stats().BytesSent()
		wireRecv += conn.Stats().BytesRecv()
	}
	shutdown()

	if len(seen) != tasks {
		t.Errorf("streamed %d outcomes, want %d", len(seen), tasks)
	}
	// Pool counters mean wire traffic: per-task tagged bytes plus the
	// sessions' shared batch framing, matching the connections exactly.
	if pool.BytesSent() != wireSent || pool.BytesRecv() != wireRecv {
		t.Errorf("pool counters sent=%d recv=%d, wire totals sent=%d recv=%d",
			pool.BytesSent(), pool.BytesRecv(), wireSent, wireRecv)
	}
	if sent <= 0 || sent >= pool.BytesSent() || recv <= 0 || recv >= pool.BytesRecv() {
		t.Errorf("outcome byte sums (sent=%d recv=%d) should be positive and below the wire totals", sent, recv)
	}
}

// TestRunTasksStreamEligibilityRetiresConn retires every connection via the
// eligibility gate after the first outcome: the stream must end cleanly
// with fewer outcomes than tasks instead of deadlocking.
func TestRunTasksStreamEligibilityRetiresConn(t *testing.T) {
	conns, shutdown := poolFixture(t, 2, func(int) ProducerFactory { return HonestFactory })
	defer shutdown()
	pool, err := NewSupervisorPool(SupervisorConfig{
		Spec: SchemeSpec{Kind: SchemeCBS, M: 4},
		Seed: 1,
	}, 4)
	if err != nil {
		t.Fatalf("NewSupervisorPool: %v", err)
	}
	var mu sync.Mutex
	retired := false
	stream, err := pool.RunTasksStream(context.Background(), conns, poolTasks(32, 64), 1,
		WithEligibility(func(transport.Conn) bool {
			mu.Lock()
			defer mu.Unlock()
			return !retired
		}))
	if err != nil {
		t.Fatalf("RunTasksStream: %v", err)
	}
	count := 0
	for range stream.Outcomes() {
		count++
		mu.Lock()
		retired = true
		mu.Unlock()
	}
	if err := stream.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	if count == 0 || count == 32 {
		t.Errorf("streamed %d outcomes; retirement should land strictly between 0 and 32", count)
	}
}

// TestRunTasksStreamSurvivesDeadConn closes one connection before the run:
// a transport failure is no longer a run-killing error — the dead
// connection's tasks restart on the healthy one and every outcome arrives.
func TestRunTasksStreamSurvivesDeadConn(t *testing.T) {
	conns, shutdown := poolFixture(t, 2, func(int) ProducerFactory { return HonestFactory })
	pool, err := NewSupervisorPool(SupervisorConfig{
		Spec: SchemeSpec{Kind: SchemeCBS, M: 4},
	}, 2)
	if err != nil {
		t.Fatalf("NewSupervisorPool: %v", err)
	}
	_ = conns[1].Close()
	stream, err := pool.RunTasksStream(context.Background(), conns, poolTasks(8, 64), 2)
	if err != nil {
		t.Fatalf("RunTasksStream: %v", err)
	}
	count := 0
	for so := range stream.Outcomes() {
		count++
		if so.Conn != conns[0] {
			t.Error("outcome attributed to the dead connection")
		}
	}
	if err := stream.Err(); err != nil {
		t.Errorf("stream error: %v (dead connections should be survivable)", err)
	}
	if count != 8 {
		t.Errorf("streamed %d outcomes, want 8", count)
	}
	_ = conns[0].Close()
	shutdown()
}

// commitmentRootVia runs one manual CBS exchange against a serving
// participant and returns the root it committed to.
func commitmentRootVia(t *testing.T, opts ...ParticipantOption) []byte {
	t.Helper()
	conn, shutdown := sessionFixture(t, HonestFactory, opts...)
	defer shutdown()

	task := Task{ID: 9, Start: 64, N: 512, Workload: "synthetic", Seed: 13}
	a := assignment{Task: task, Spec: SchemeSpec{Kind: SchemeCBS, M: 2}}
	if err := conn.Send(transport.Message{Type: msgAssign, Payload: encodeAssignment(a)}); err != nil {
		t.Fatalf("send assignment: %v", err)
	}
	commitMsg, err := expectMsg(conn, msgCommit)
	if err != nil {
		t.Fatalf("recv commitment: %v", err)
	}
	var commitment core.Commitment
	if err := commitment.UnmarshalBinary(commitMsg.Payload); err != nil {
		t.Fatalf("decode commitment: %v", err)
	}
	if _, err := expectMsg(conn, msgReports); err != nil {
		t.Fatalf("recv reports: %v", err)
	}
	challenge := core.Challenge{Indices: []uint64{0, 511}}
	payload, err := challenge.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal challenge: %v", err)
	}
	if err := conn.Send(transport.Message{Type: msgChallenge, Payload: payload}); err != nil {
		t.Fatalf("send challenge: %v", err)
	}
	if _, err := expectMsg(conn, msgProofs); err != nil {
		t.Fatalf("recv proofs: %v", err)
	}
	if err := conn.Send(transport.Message{Type: msgVerdict, Payload: encodeVerdict(Verdict{Accepted: true})}); err != nil {
		t.Fatalf("send verdict: %v", err)
	}
	if _, err := expectMsg(conn, msgVerdictAck); err != nil {
		t.Fatalf("recv verdict ack: %v", err)
	}
	return commitment.Root
}

// TestParallelProverRootMatchesSequential pins the satellite guarantee of
// WithProverParallelism: the parallel-built commitment root is bit-identical
// to the sequential participant's for the same task.
func TestParallelProverRootMatchesSequential(t *testing.T) {
	sequential := commitmentRootVia(t)
	parallel := commitmentRootVia(t, WithProverParallelism(4))
	if !reflect.DeepEqual(sequential, parallel) {
		t.Errorf("parallel root %x != sequential root %x", parallel, sequential)
	}
	if len(sequential) == 0 {
		t.Error("empty commitment root")
	}
}

// TestRunSimPipelinedMatchesSerialSingleParticipant compares a pipelined
// simulation against the serial dialogue for a single-participant pool,
// where work stealing cannot change the task→participant pairing: detection
// stats and the report stream must be identical.
func TestRunSimPipelinedMatchesSerialSingleParticipant(t *testing.T) {
	base := SimConfig{
		Spec:         SchemeSpec{Kind: SchemeCBS, M: 14},
		Workload:     "synthetic",
		Seed:         21,
		TaskSize:     128,
		Tasks:        6,
		SemiHonest:   1,
		HonestyRatio: 0.5,
	}
	serial, err := RunSim(base)
	if err != nil {
		t.Fatalf("serial RunSim: %v", err)
	}
	piped := base
	piped.PipelineWindow = 4
	pipelined, err := RunSim(piped)
	if err != nil {
		t.Fatalf("pipelined RunSim: %v", err)
	}

	if pipelined.PipelineWindow != 4 {
		t.Errorf("report PipelineWindow = %d, want 4", pipelined.PipelineWindow)
	}
	if serial.TasksAssigned != pipelined.TasksAssigned {
		t.Errorf("TasksAssigned: serial %d, pipelined %d", serial.TasksAssigned, pipelined.TasksAssigned)
	}
	if serial.CheatersDetected != pipelined.CheatersDetected || serial.HonestAccused != pipelined.HonestAccused {
		t.Errorf("detection: serial %d/%d accused %d, pipelined %d/%d accused %d",
			serial.CheatersDetected, serial.CheatersTotal, serial.HonestAccused,
			pipelined.CheatersDetected, pipelined.CheatersTotal, pipelined.HonestAccused)
	}
	if !reflect.DeepEqual(serial.Reports, pipelined.Reports) {
		t.Errorf("report streams differ: serial %d reports, pipelined %d", len(serial.Reports), len(pipelined.Reports))
	}
	s, p := serial.Participants[0], pipelined.Participants[0]
	if s.Tasks != p.Tasks || s.Accepted != p.Accepted || s.Rejected != p.Rejected || s.FEvals != p.FEvals {
		t.Errorf("participant counters: serial %+v, pipelined %+v", s, p)
	}
}

// TestRunSimPipelinedPopulation sanity-checks a mixed pipelined population:
// every task assigned, cheaters caught, honest participants untouched.
func TestRunSimPipelinedPopulation(t *testing.T) {
	report, err := RunSim(SimConfig{
		Spec:           SchemeSpec{Kind: SchemeCBS, M: 20},
		Workload:       "synthetic",
		Seed:           8,
		TaskSize:       128,
		Tasks:          12,
		Honest:         3,
		SemiHonest:     2,
		HonestyRatio:   0.3,
		PipelineWindow: 3,
	})
	if err != nil {
		t.Fatalf("RunSim: %v", err)
	}
	if report.TasksAssigned != 12 {
		t.Errorf("TasksAssigned = %d, want 12", report.TasksAssigned)
	}
	// Work stealing makes the task→participant pairing scheduling-dependent,
	// so a cheater that never claimed a task legitimately goes undetected;
	// every cheater that DID execute must be caught, every honest
	// participant must sail through.
	executedCheaters := 0
	total := 0
	for _, p := range report.Participants {
		total += p.Tasks
		switch {
		case p.Cheater && p.Tasks > 0:
			executedCheaters++
			if p.Rejected == 0 {
				t.Errorf("cheater %s executed %d tasks, none rejected", p.ID, p.Tasks)
			}
		case !p.Cheater && p.Rejected > 0:
			t.Errorf("honest participant %s rejected %d times", p.ID, p.Rejected)
		}
	}
	if report.CheatersDetected != executedCheaters {
		t.Errorf("CheatersDetected = %d, want %d (cheaters that executed)", report.CheatersDetected, executedCheaters)
	}
	if report.HonestAccused != 0 {
		t.Errorf("%d honest participants accused", report.HonestAccused)
	}
	if total != 12 {
		t.Errorf("participants executed %d tasks in total, want 12", total)
	}
}

// TestRunSimPipelinedBlacklist checks the blacklist gate under pipelining:
// a rejected participant stops claiming, and the run still terminates.
func TestRunSimPipelinedBlacklist(t *testing.T) {
	report, err := RunSim(SimConfig{
		Spec:           SchemeSpec{Kind: SchemeCBS, M: 20},
		Workload:       "synthetic",
		Seed:           31,
		TaskSize:       128,
		Tasks:          10,
		Honest:         2,
		SemiHonest:     1,
		HonestyRatio:   0.2,
		Blacklist:      true,
		PipelineWindow: 2,
	})
	if err != nil {
		t.Fatalf("RunSim: %v", err)
	}
	// The cheater is only guaranteed to be caught (and blacklisted) if the
	// scheduler ever handed it a task; either way the run must terminate
	// and honest participants must stay clean.
	for _, p := range report.Participants {
		if p.Cheater && p.Tasks > 0 && !p.Blacklisted {
			t.Errorf("rejected cheater %s not blacklisted", p.ID)
		}
		if !p.Cheater && p.Rejected > 0 {
			t.Errorf("honest participant %s rejected", p.ID)
		}
	}
	if report.HonestAccused != 0 {
		t.Errorf("%d honest participants accused", report.HonestAccused)
	}
}
