package grid

// Pipelined double-check: the replica rendezvous.
//
// The double-check scheme replicates one task across R participants and
// compares their uploads, so it needs a barrier that spans connections —
// the reason PR 2/3 left it locked out of the session layer. This file
// supplies that barrier as its own synchronization object: each replica's
// exchange runs as an ordinary pipelined session task on its own
// connection (upload phase fully overlapped with other tasks in the
// window), and the settle phase meets a rendezvous that collects all R
// uploads, runs the index-wise majority comparison exactly once, and hands
// every replica its own verdict to deliver on its own connection. An
// exchange that arrives before its group is complete parks — releasing its
// worker and window slot back to the scheduler — and resumes when the
// comparison has run.
//
// Faults: a replica whose connection is quarantined resumes on the slot's
// replacement connection like any other task (the rendezvous submission is
// idempotent, so a resume after the barrier re-waits instead of
// re-voting). A replica stranded on a permanently dead slot is re-placed
// on a connection that holds no sibling replica, or — when none exists —
// declared lost, and the comparison degrades to a quorum over the uploads
// that survived. Fewer than two surviving uploads cannot vote at all and
// fail the group.

import (
	"errors"
	"fmt"
	"sync"

	"uncheatgrid/internal/baseline"
)

// ErrReplicaLost marks a replica group that lost too many members to
// faults for a majority comparison to mean anything.
var ErrReplicaLost = errors.New("grid: replica group lost its comparison quorum")

// errReplicaParked is the internal signal that a replica exchange reached
// its rendezvous before the group was complete: the attempt detaches —
// releasing its window slot and worker — and is re-claimed when the
// rendezvous settles. Holding scheduler resources across the barrier
// instead would deadlock (all of a window's slots blocked on barriers
// whose missing siblings are queued behind them).
var errReplicaParked = errors.New("grid: replica parked at its rendezvous")

// compareReplicas maps the index-wise majority comparison onto per-replica
// verdicts. uploads[i] is the i-th replica's full result vector; the i-th
// verdict rules on it. Both the serial RunReplicated barrier and the
// pipelined rendezvous go through here, so their verdicts — reason strings
// included — are byte-identical for equal uploads.
func compareReplicas(uploads [][][]byte) ([]Verdict, error) {
	comparator, err := baseline.NewDoubleCheck(len(uploads))
	if err != nil {
		return nil, err
	}
	verdicts := make([]Verdict, len(uploads))
	verdict, cmpErr := comparator.Compare(uploads)
	switch {
	case cmpErr == nil:
		dissent := make(map[int]bool, len(verdict.Dissenters))
		for _, r := range verdict.Dissenters {
			dissent[r] = true
		}
		for i := range verdicts {
			if dissent[i] {
				verdicts[i] = Verdict{Reason: "disagrees with replica majority"}
			} else {
				verdicts[i] = Verdict{Accepted: true}
			}
		}
	case errors.Is(cmpErr, baseline.ErrNoConsensus):
		for i := range verdicts {
			verdicts[i] = Verdict{Reason: cmpErr.Error()}
		}
	default:
		return nil, cmpErr
	}
	return verdicts, nil
}

// replicaRendezvous is the cross-connection barrier of one replicated
// task. Replicas submit their uploads as their exchanges reach the settle
// phase; the arrival that completes the group (every replica submitted or
// lost) runs the comparison once and publishes one verdict per surviving
// replica.
//
// Waiting at the barrier must not hold a scheduler resource: an exchange
// that finds the rendezvous unready parks (its window slot and worker go
// back to other tasks) and is re-claimed when onReady fires. Blocking in
// await is reserved for callers outside the dispatcher.
type replicaRendezvous struct {
	r int
	// onReady, when set, is invoked once as the rendezvous settles
	// (comparison ran, quorum failed, or abort). It must not block and must
	// not take locks — the dispatcher passes a non-blocking wakeup so
	// settling from any lock context is safe.
	onReady func()

	mu       sync.Mutex
	uploads  map[int][][]byte
	lost     map[int]bool
	verdicts map[int]Verdict
	err      error
	done     chan struct{}
}

func newReplicaRendezvous(r int) *replicaRendezvous {
	return &replicaRendezvous{
		r:       r,
		uploads: make(map[int][][]byte, r),
		lost:    make(map[int]bool, r),
		done:    make(chan struct{}),
	}
}

// submit banks replica idx's upload and completes the barrier when it is
// the last arrival. Idempotent: a replica that resumes after a connection
// fault re-submits and the first upload wins (it is the one a concurrent
// comparison may already have voted with).
func (rv *replicaRendezvous) submit(idx int, results [][]byte) {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	if rv.settledLocked() {
		return
	}
	if _, dup := rv.uploads[idx]; dup {
		return
	}
	rv.uploads[idx] = results
	delete(rv.lost, idx)
	rv.maybeCompleteLocked()
}

// fail declares replica idx lost — its participant is unreachable and no
// eligible connection remains to re-place it. An upload the replica
// already banked still votes; only a replica that never delivered shrinks
// the quorum.
func (rv *replicaRendezvous) fail(idx int) {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	if rv.settledLocked() {
		return
	}
	if _, have := rv.uploads[idx]; !have {
		rv.lost[idx] = true
	}
	rv.maybeCompleteLocked()
}

// abort poisons the barrier so blocked replicas fail instead of waiting on
// siblings that will never arrive (run cancelled or failed elsewhere).
func (rv *replicaRendezvous) abort(err error) {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	if rv.settledLocked() {
		return
	}
	rv.err = err
	close(rv.done)
	if rv.onReady != nil {
		rv.onReady()
	}
}

// ready reports whether the rendezvous has settled (await will not block).
func (rv *replicaRendezvous) ready() bool {
	select {
	case <-rv.done:
		return true
	default:
		return false
	}
}

// await blocks until the comparison ran (or the barrier aborted) and
// returns replica idx's verdict. Dispatcher-run replicas never block here
// — they park while the rendezvous is unready and are re-claimed on
// onReady — so a blocking await only happens for callers that drive
// attempts by hand.
func (rv *replicaRendezvous) await(idx int) (Verdict, error) {
	<-rv.done
	rv.mu.Lock()
	defer rv.mu.Unlock()
	if rv.err != nil {
		return Verdict{}, rv.err
	}
	v, ok := rv.verdicts[idx]
	if !ok {
		return Verdict{}, fmt.Errorf("%w: replica %d has no verdict", ErrReplicaLost, idx)
	}
	return v, nil
}

func (rv *replicaRendezvous) settledLocked() bool {
	select {
	case <-rv.done:
		return true
	default:
		return false
	}
}

// maybeCompleteLocked runs the comparison once every replica has either
// delivered or been declared lost. With losses the vote degrades to a
// quorum over the survivors; below two uploads no majority exists and the
// group fails.
func (rv *replicaRendezvous) maybeCompleteLocked() {
	if len(rv.uploads)+len(rv.lost) < rv.r {
		return
	}
	defer func() {
		close(rv.done)
		if rv.onReady != nil {
			rv.onReady()
		}
	}()
	if len(rv.uploads) < 2 {
		rv.err = fmt.Errorf("%w: %d of %d uploads survived", ErrReplicaLost, len(rv.uploads), rv.r)
		return
	}
	// Compare in replica-index order so the quorum case is deterministic
	// and the full-group case is positionally identical to RunReplicated.
	members := make([]int, 0, len(rv.uploads))
	for idx := 0; idx < rv.r; idx++ {
		if _, ok := rv.uploads[idx]; ok {
			members = append(members, idx)
		}
	}
	uploads := make([][][]byte, len(members))
	for i, idx := range members {
		uploads[i] = rv.uploads[idx]
	}
	verdicts, err := compareReplicas(uploads)
	if err != nil {
		rv.err = err
		return
	}
	rv.verdicts = make(map[int]Verdict, len(members))
	for i, idx := range members {
		rv.verdicts[idx] = verdicts[i]
	}
}
