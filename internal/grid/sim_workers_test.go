package grid

import (
	"reflect"
	"testing"
)

// workersSimConfig is a mixed population large enough to keep 8 workers
// busy: 6 honest, 3 semi-honest, 1 malicious over 20 CBS tasks.
func workersSimConfig(workers int) SimConfig {
	return SimConfig{
		Spec:              SchemeSpec{Kind: SchemeCBS, M: 20},
		Workload:          "synthetic",
		Seed:              11,
		TaskSize:          256,
		Tasks:             20,
		Honest:            6,
		SemiHonest:        3,
		Malicious:         1,
		HonestyRatio:      0.3,
		CorruptProb:       1,
		CrossCheckReports: true,
		Workers:           workers,
	}
}

// TestSimPooledMatchesSerial is the end-to-end determinism check: the same
// simulation run serially and with 8 workers must produce byte-identical
// reports — participants, verdicts, traffic, reports, eval counts.
func TestSimPooledMatchesSerial(t *testing.T) {
	serial, err := RunSim(workersSimConfig(1))
	if err != nil {
		t.Fatalf("serial RunSim: %v", err)
	}
	pooled, err := RunSim(workersSimConfig(8))
	if err != nil {
		t.Fatalf("pooled RunSim: %v", err)
	}
	if !reflect.DeepEqual(serial, pooled) {
		t.Fatalf("pooled report differs from serial:\nserial: %+v\npooled: %+v", serial, pooled)
	}
	if serial.CheatersDetected != serial.CheatersTotal {
		t.Errorf("detection %d/%d; expected all cheaters caught at m=20",
			serial.CheatersDetected, serial.CheatersTotal)
	}
	if serial.HonestAccused != 0 {
		t.Errorf("%d honest participants accused", serial.HonestAccused)
	}
}

// TestSimPooledBlacklistMatchesSerial pins the stronger guarantee: even
// with blacklisting (where scheduling depends on verdicts), the pooled
// wave scheduler assigns tasks to exactly the same participants as the
// serial scheduler, because a wave closes precisely where the serial
// round-robin would wrap.
func TestSimPooledBlacklistMatchesSerial(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := workersSimConfig(1)
		cfg.Seed = seed
		cfg.Blacklist = true
		serial, err := RunSim(cfg)
		if err != nil {
			t.Fatalf("serial RunSim(seed=%d): %v", seed, err)
		}
		cfg.Workers = 8
		pooled, err := RunSim(cfg)
		if err != nil {
			t.Fatalf("pooled RunSim(seed=%d): %v", seed, err)
		}
		if !reflect.DeepEqual(serial, pooled) {
			t.Fatalf("seed %d: blacklisted pooled report differs from serial:\nserial: %+v\npooled: %+v",
				seed, serial, pooled)
		}
	}
}

// TestSimPooledBlacklist checks the wave scheduler still blacklists and
// terminates cleanly when the whole pool ends up dropped.
func TestSimPooledBlacklist(t *testing.T) {
	cfg := workersSimConfig(4)
	cfg.Honest = 0
	cfg.Malicious = 0
	cfg.SemiHonest = 4
	cfg.Blacklist = true
	report, err := RunSim(cfg)
	if err != nil {
		t.Fatalf("RunSim: %v", err)
	}
	if report.CheatersDetected != 4 {
		t.Fatalf("detected %d/4 cheaters", report.CheatersDetected)
	}
	for _, p := range report.Participants {
		if !p.Blacklisted {
			t.Errorf("participant %s not blacklisted", p.ID)
		}
	}
	// Every wave assigns at most one task per eligible participant, so at
	// most 2 waves × 4 participants can run before the pool is empty.
	if report.TasksAssigned > 8 {
		t.Errorf("assigned %d tasks to an all-cheater pool; blacklisting ineffective", report.TasksAssigned)
	}
}

// TestSimPooledAllSchemes exercises the pooled scheduler under every
// non-replicated scheme.
func TestSimPooledAllSchemes(t *testing.T) {
	for _, kind := range []SchemeKind{SchemeCBS, SchemeNICBS, SchemeNaive, SchemeRinger} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := workersSimConfig(8)
			cfg.Spec.Kind = kind
			cfg.Spec.ChainIters = 1
			report, err := RunSim(cfg)
			if err != nil {
				t.Fatalf("RunSim(%v): %v", kind, err)
			}
			if report.TasksAssigned != cfg.Tasks {
				t.Fatalf("assigned %d tasks, want %d", report.TasksAssigned, cfg.Tasks)
			}
		})
	}
}

// TestSimWorkersValidation rejects negative worker counts and routes
// double-check (a replication barrier) through the serial scheduler even
// when workers are requested.
func TestSimWorkersValidation(t *testing.T) {
	cfg := workersSimConfig(-1)
	if _, err := RunSim(cfg); err == nil {
		t.Fatal("RunSim accepted negative Workers")
	}
	dc := workersSimConfig(8)
	dc.Spec.Kind = SchemeDoubleCheck
	dc.Replicas = 2
	report, err := RunSim(dc)
	if err != nil {
		t.Fatalf("double-check with Workers: %v", err)
	}
	if report.TasksAssigned == 0 {
		t.Fatal("double-check assigned no tasks")
	}
}
