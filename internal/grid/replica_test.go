package grid

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"uncheatgrid/internal/transport"
)

// replicaDigest is the comparable core of one replica outcome.
type replicaDigest struct {
	TaskID  uint64
	Replica int
	Verdict Verdict
}

// TestRunTasksStreamReplicatedMatchesRunReplicated is the pipelined
// double-check acceptance test at the pool level: the same tasks, seeds,
// and participant personas run once through the serial RunReplicated
// dialogue and once through a replicated RunTasksStream must yield
// byte-identical verdicts per (task, replica). Using exactly R connections
// pins the group placement to the identity walk in both modes.
func TestRunTasksStreamReplicatedMatchesRunReplicated(t *testing.T) {
	const replicas = 3
	const tasks = 4
	factories := func(i int) ProducerFactory {
		if i == 1 {
			return SemiHonestFactory(0.5, 99) // a real dissenter keeps the comparison honest
		}
		return HonestFactory
	}
	cfg := SupervisorConfig{Spec: SchemeSpec{Kind: SchemeDoubleCheck, M: 1}, Seed: 11}
	taskList := poolTasks(tasks, 64)

	var serial []replicaDigest
	{
		conns, shutdown := poolFixture(t, replicas, factories)
		sup, err := NewSupervisor(cfg)
		if err != nil {
			t.Fatalf("NewSupervisor: %v", err)
		}
		for _, task := range taskList {
			outcomes, err := sup.RunReplicated(conns, task)
			if err != nil {
				t.Fatalf("RunReplicated(%d): %v", task.ID, err)
			}
			for _, o := range outcomes {
				serial = append(serial, replicaDigest{o.Task.ID, o.Replica, o.Verdict})
			}
		}
		shutdown()
	}

	conns, shutdown := poolFixture(t, replicas, factories)
	pool, err := NewSupervisorPool(cfg, replicas*4)
	if err != nil {
		t.Fatalf("NewSupervisorPool: %v", err)
	}
	stream, err := pool.RunTasksStream(context.Background(), conns, taskList, 3, WithReplicas(replicas))
	if err != nil {
		t.Fatalf("RunTasksStream: %v", err)
	}
	var piped []replicaDigest
	for so := range stream.Outcomes() {
		piped = append(piped, replicaDigest{so.Outcome.Task.ID, so.Outcome.Replica, so.Outcome.Verdict})
	}
	if err := stream.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	var wireSent, wireRecv int64
	for _, conn := range conns {
		wireSent += conn.Stats().BytesSent()
		wireRecv += conn.Stats().BytesRecv()
	}
	shutdown()

	if len(piped) != tasks*replicas {
		t.Fatalf("streamed %d replica outcomes, want %d", len(piped), tasks*replicas)
	}
	sortDigests(piped)
	if !reflect.DeepEqual(piped, serial) {
		t.Errorf("replicated verdicts diverge:\nserial:    %+v\npipelined: %+v", serial, piped)
	}
	// The session layer's exact accounting holds through replica barriers:
	// pool counters mean wire bytes.
	if pool.BytesSent() != wireSent || pool.BytesRecv() != wireRecv {
		t.Errorf("pool counters sent=%d recv=%d, wire totals sent=%d recv=%d",
			pool.BytesSent(), pool.BytesRecv(), wireSent, wireRecv)
	}
}

func sortDigests(ds []replicaDigest) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0; j-- {
			a, b := ds[j-1], ds[j]
			if a.TaskID < b.TaskID || (a.TaskID == b.TaskID && a.Replica <= b.Replica) {
				break
			}
			ds[j-1], ds[j] = b, a
		}
	}
}

// TestRunTasksStreamReplicatedThroughput sanity-checks the pipelining
// claim cheaply: with more connections than replicas, distinct groups
// proceed concurrently and all outcomes arrive. (The latency-quantified
// comparison lives in BenchmarkReplicatedDoubleCheck.)
func TestRunTasksStreamReplicatedManyConns(t *testing.T) {
	const participants, replicas, tasks = 5, 2, 12
	conns, shutdown := poolFixture(t, participants, func(int) ProducerFactory { return HonestFactory })
	defer shutdown()
	pool, err := NewSupervisorPool(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeDoubleCheck, M: 1}, Seed: 2}, 0)
	if err != nil {
		t.Fatalf("NewSupervisorPool: %v", err)
	}
	stream, err := pool.RunTasksStream(context.Background(), conns, poolTasks(tasks, 64), 4, WithReplicas(replicas))
	if err != nil {
		t.Fatalf("RunTasksStream: %v", err)
	}
	seen := make(map[replicaDigest]bool)
	for so := range stream.Outcomes() {
		d := replicaDigest{so.Outcome.Task.ID, so.Outcome.Replica, so.Outcome.Verdict}
		if seen[d] {
			t.Errorf("replica outcome delivered twice: %+v", d)
		}
		seen[d] = true
		if !so.Outcome.Verdict.Accepted {
			t.Errorf("honest replica rejected: task %d replica %d: %s",
				so.Outcome.Task.ID, so.Outcome.Replica, so.Outcome.Verdict.Reason)
		}
	}
	if err := stream.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	if len(seen) != tasks*replicas {
		t.Errorf("streamed %d replica outcomes, want %d", len(seen), tasks*replicas)
	}
}

// TestRunTasksStreamReplicatedValidation covers the replica plumbing's
// configuration errors.
func TestRunTasksStreamReplicatedValidation(t *testing.T) {
	conns, shutdown := poolFixture(t, 2, func(int) ProducerFactory { return HonestFactory })
	defer shutdown()

	dc, err := NewSupervisorPool(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeDoubleCheck, M: 1}}, 2)
	if err != nil {
		t.Fatalf("NewSupervisorPool(double-check): %v", err)
	}
	if _, err := dc.RunTasksStream(context.Background(), conns, poolTasks(1, 64), 2, WithReplicas(3)); !errors.Is(err, ErrBadConfig) {
		t.Errorf("3 replicas on 2 conns: err = %v, want ErrBadConfig", err)
	}
	if _, err := dc.RunTasksStream(context.Background(), conns, poolTasks(1, 64), 2, WithReplicas(1)); !errors.Is(err, ErrBadConfig) {
		t.Errorf("1 replica: err = %v, want ErrBadConfig", err)
	}

	cbs, err := NewSupervisorPool(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeCBS, M: 4}}, 2)
	if err != nil {
		t.Fatalf("NewSupervisorPool(cbs): %v", err)
	}
	if _, err := cbs.RunTasksStream(context.Background(), conns, poolTasks(1, 64), 2, WithReplicas(2)); !errors.Is(err, ErrBadConfig) {
		t.Errorf("WithReplicas on cbs: err = %v, want ErrBadConfig", err)
	}
}

// TestStreamReplicaResumesAfterCut forces a mid-protocol quarantine on one
// replica of every group (the first connection dies after one reply and is
// redialed): the replicas must resume on the replacement connection and
// every verdict must still accept the honest participants.
func TestStreamReplicaResumesAfterCut(t *testing.T) {
	const replicas = 2
	r := newRedialableParticipant(t, HonestFactory)
	defer r.shutdown()
	other := newRedialableParticipant(t, HonestFactory)
	defer other.shutdown()

	conns := []transport.Conn{cutAfterRecv(r.dial(), 1), other.dial()}
	pool, err := NewSupervisorPool(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeDoubleCheck, M: 1}, Seed: 5}, 4)
	if err != nil {
		t.Fatalf("NewSupervisorPool: %v", err)
	}
	stream, err := pool.RunTasksStream(context.Background(), conns, poolTasks(3, 64), 2,
		WithReplicas(replicas),
		WithRedial(func(transport.Conn) (transport.Conn, error) { return r.dial(), nil }))
	if err != nil {
		t.Fatalf("RunTasksStream: %v", err)
	}
	count := 0
	for so := range stream.Outcomes() {
		count++
		if !so.Outcome.Verdict.Accepted {
			t.Errorf("honest replica rejected after resume: task %d replica %d: %s",
				so.Outcome.Task.ID, so.Outcome.Replica, so.Outcome.Verdict.Reason)
		}
	}
	if err := stream.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	if count != 3*replicas {
		t.Errorf("streamed %d replica outcomes, want %d", count, 3*replicas)
	}
	if r.dials() < 2 {
		t.Errorf("no reconnect happened (dials = %d); the cut never forced a resume", r.dials())
	}
}

// TestStreamReplicaReplacedWhenSlotDies kills one of three connections with
// no redial available: its replicas must be re-placed on a connection that
// holds no sibling, and every group must still produce a full verdict set.
func TestStreamReplicaReplacedWhenSlotDies(t *testing.T) {
	const participants, replicas, tasks = 3, 2, 4
	doomed := newRedialableParticipant(t, HonestFactory)
	defer doomed.shutdown()
	h1 := newRedialableParticipant(t, HonestFactory)
	defer h1.shutdown()
	h2 := newRedialableParticipant(t, HonestFactory)
	defer h2.shutdown()

	conns := []transport.Conn{cutAfterRecv(doomed.dial(), 1), h1.dial(), h2.dial()}
	pool, err := NewSupervisorPool(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeDoubleCheck, M: 1}, Seed: 3}, 6)
	if err != nil {
		t.Fatalf("NewSupervisorPool: %v", err)
	}
	stream, err := pool.RunTasksStream(context.Background(), conns, poolTasks(tasks, 64), 2, WithReplicas(replicas))
	if err != nil {
		t.Fatalf("RunTasksStream: %v", err)
	}
	seen := make(map[uint64]map[int]bool)
	for so := range stream.Outcomes() {
		id, rep := so.Outcome.Task.ID, so.Outcome.Replica
		if seen[id] == nil {
			seen[id] = make(map[int]bool)
		}
		if seen[id][rep] {
			t.Errorf("task %d replica %d delivered twice", id, rep)
		}
		seen[id][rep] = true
		if !so.Outcome.Verdict.Accepted {
			t.Errorf("honest replica rejected: task %d replica %d: %s", id, rep, so.Outcome.Verdict.Reason)
		}
	}
	if err := stream.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	for _, task := range poolTasks(tasks, 64) {
		if len(seen[task.ID]) != replicas {
			t.Errorf("task %d delivered %d replica outcomes, want %d", task.ID, len(seen[task.ID]), replicas)
		}
	}
}

// gatedAssignConn holds back the first frame carrying a task assignment
// until release is closed, so the test controls which replica reaches the
// rendezvous first. Session handshaking and verdict traffic pass freely.
type gatedAssignConn struct {
	transport.Conn
	release <-chan struct{}
}

func (c *gatedAssignConn) Send(msg transport.Message) error {
	if msg.Type == msgBatch {
		if msgs, err := decodeBatch(msg.Payload); err == nil {
			for _, tm := range msgs {
				if tm.Type == msgAssign {
					<-c.release
					break
				}
			}
		}
	}
	return c.Conn.Send(msg)
}

// uploadSignalConn closes uploaded the first time a result upload passes
// through Recv — the moment the replica's submission is in the supervisor's
// hands and killing the link can no longer lose it.
type uploadSignalConn struct {
	transport.Conn
	uploaded chan struct{}
	once     sync.Once
}

func (c *uploadSignalConn) Recv() (transport.Message, error) {
	msg, err := c.Conn.Recv()
	if err == nil && msg.Type == msgBatch {
		if msgs, derr := decodeBatch(msg.Payload); derr == nil {
			for _, tm := range msgs {
				if tm.Type == msgResults || tm.Type == msgResultChunk {
					c.once.Do(func() { close(c.uploaded) })
				}
			}
		}
	}
	return msg, err
}

// TestStreamReplicaBankedWhenSlotDiesAfterUpload kills a replica's link
// after its upload reached the supervisor but before the group settled. The
// banked upload must still vote and yield a synthesized outcome attributed
// to the dead link — not be re-run (with only two connections a re-run is
// impossible: the sole survivor hosts the sibling), and not be dropped.
func TestStreamReplicaBankedWhenSlotDiesAfterUpload(t *testing.T) {
	const replicas = 2
	doomed := newRedialableParticipant(t, HonestFactory)
	defer doomed.shutdown()
	partner := newRedialableParticipant(t, HonestFactory)
	defer partner.shutdown()

	uploaded := make(chan struct{})
	release := make(chan struct{})
	doomedConn := &uploadSignalConn{Conn: doomed.dial(), uploaded: uploaded}
	partnerConn := &gatedAssignConn{Conn: partner.dial(), release: release}

	pool, err := NewSupervisorPool(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeDoubleCheck, M: 1}, Seed: 11}, 4)
	if err != nil {
		t.Fatalf("NewSupervisorPool: %v", err)
	}
	stream, err := pool.RunTasksStream(context.Background(),
		[]transport.Conn{doomedConn, partnerConn}, poolTasks(1, 64), 2, WithReplicas(replicas))
	if err != nil {
		t.Fatalf("RunTasksStream: %v", err)
	}
	// Replica 0 uploads while replica 1 is still gated, then its link dies;
	// only then may replica 1 proceed and complete the rendezvous.
	go func() {
		<-uploaded
		_ = doomedConn.Conn.Close()
		close(release)
	}()

	outcomes := make(map[int]StreamedOutcome)
	for so := range stream.Outcomes() {
		if _, dup := outcomes[so.Outcome.Replica]; dup {
			t.Errorf("replica %d delivered twice", so.Outcome.Replica)
		}
		outcomes[so.Outcome.Replica] = so
	}
	if err := stream.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	if len(outcomes) != replicas {
		t.Fatalf("streamed %d outcomes, want %d: the banked upload's outcome was dropped", len(outcomes), replicas)
	}
	for rep, so := range outcomes {
		if !so.Outcome.Verdict.Accepted {
			t.Errorf("honest replica %d rejected: %s", rep, so.Outcome.Verdict.Reason)
		}
	}
	if got := outcomes[0].Conn; got != transport.Conn(doomedConn) {
		t.Errorf("banked outcome attributed to the wrong connection (re-run instead of banked?)")
	}
	if doomed.dials() != 1 {
		t.Errorf("doomed participant dialed %d times, want 1 (no redial configured)", doomed.dials())
	}
}

// TestReplicaRendezvousQuorum pins the degraded-comparison rules directly:
// a lost replica shrinks the vote to the survivors; fewer than two
// survivors cannot vote at all.
func TestReplicaRendezvousQuorum(t *testing.T) {
	good := [][]byte{[]byte("a"), []byte("b")}
	bad := [][]byte{[]byte("a"), []byte("x")}

	rv := newReplicaRendezvous(3)
	rv.submit(0, good)
	rv.submit(2, bad)
	rv.fail(1)
	if _, err := rv.await(1); !errors.Is(err, ErrReplicaLost) {
		t.Errorf("lost replica verdict: err = %v, want ErrReplicaLost", err)
	}
	// With two survivors no strict majority exists on the disputed index:
	// both sides are rejected, mirroring RunReplicated's pair semantics.
	v0, err := rv.await(0)
	if err != nil {
		t.Fatalf("await(0): %v", err)
	}
	v2, err := rv.await(2)
	if err != nil {
		t.Fatalf("await(2): %v", err)
	}
	if v0.Accepted || v2.Accepted {
		t.Errorf("disputed pair produced an acceptance: %+v / %+v", v0, v2)
	}

	under := newReplicaRendezvous(2)
	under.submit(0, good)
	under.fail(1)
	if _, err := under.await(0); !errors.Is(err, ErrReplicaLost) {
		t.Errorf("below-quorum group: err = %v, want ErrReplicaLost", err)
	}

	// Majority with a quorum of 3 of 4: the dissenter is convicted, the
	// agreeing survivors accepted, idempotent re-submission ignored.
	q := newReplicaRendezvous(4)
	q.submit(0, good)
	q.submit(1, good)
	q.fail(3)
	q.submit(2, bad)
	q.submit(2, good) // late duplicate must not flip the vote
	for idx, wantAccept := range map[int]bool{0: true, 1: true, 2: false} {
		v, err := q.await(idx)
		if err != nil {
			t.Fatalf("await(%d): %v", idx, err)
		}
		if v.Accepted != wantAccept {
			t.Errorf("replica %d accepted=%v, want %v (%s)", idx, v.Accepted, wantAccept, v.Reason)
		}
	}
}

// TestRunSimReplicatedPipelinedMatchesSerial compares a clean pipelined
// double-check population against the serial scheduler: identical group
// placement plus the shared comparator must give byte-identical reports.
func TestRunSimReplicatedPipelinedMatchesSerial(t *testing.T) {
	base := SimConfig{
		Spec:         SchemeSpec{Kind: SchemeDoubleCheck, M: 1},
		Workload:     "synthetic",
		Seed:         23,
		TaskSize:     96,
		Tasks:        6,
		Honest:       2,
		SemiHonest:   2,
		HonestyRatio: 0.4,
		Replicas:     3,
	}
	serial, err := RunSim(base)
	if err != nil {
		t.Fatalf("serial RunSim: %v", err)
	}
	piped := base
	piped.PipelineWindow = 3
	pipelined, err := RunSim(piped)
	if err != nil {
		t.Fatalf("pipelined RunSim: %v", err)
	}

	if pipelined.PipelineWindow != 3 {
		t.Errorf("report PipelineWindow = %d, want 3", pipelined.PipelineWindow)
	}
	if serial.TasksAssigned != pipelined.TasksAssigned {
		t.Errorf("TasksAssigned: serial %d, pipelined %d", serial.TasksAssigned, pipelined.TasksAssigned)
	}
	if !reflect.DeepEqual(serial.TaskVerdicts, pipelined.TaskVerdicts) {
		t.Errorf("verdicts diverge:\nserial:    %+v\npipelined: %+v", serial.TaskVerdicts, pipelined.TaskVerdicts)
	}
	if !reflect.DeepEqual(serial.Reports, pipelined.Reports) {
		t.Errorf("report streams diverge: serial %d, pipelined %d", len(serial.Reports), len(pipelined.Reports))
	}
	for i := range serial.Participants {
		s, p := serial.Participants[i], pipelined.Participants[i]
		if s.Tasks != p.Tasks || s.Accepted != p.Accepted || s.Rejected != p.Rejected {
			t.Errorf("participant %s counters: serial %+v, pipelined %+v", s.ID, s, p)
		}
	}
}

// TestRunSimReplicatedFaultyMatchesClean is the replicated fault-injection
// acceptance test: pipelined double-check under drops, garbles, and
// reconnects must produce verdicts and reports byte-identical to the clean
// serial dialogue run for equal seeds, with no replica execution lost, and
// — thanks to verdict acknowledgement — participant-side counters that
// converge to the clean run's.
func TestRunSimReplicatedFaultyMatchesClean(t *testing.T) {
	base := SimConfig{
		Spec:         SchemeSpec{Kind: SchemeDoubleCheck, M: 1},
		Workload:     "synthetic",
		Seed:         29,
		TaskSize:     96,
		Tasks:        6,
		Honest:       2,
		SemiHonest:   2,
		HonestyRatio: 0.4,
		Replicas:     3,
	}
	clean, err := RunSim(base)
	if err != nil {
		t.Fatalf("clean serial RunSim: %v", err)
	}

	faulty := base
	faulty.PipelineWindow = 3
	faulty.DropProb = 0.03
	faulty.GarbleProb = 0.1
	faulty.ReconnectLimit = 200
	faulty.FaultRecvTimeout = 250 * time.Millisecond
	report, err := RunSim(faulty)
	if err != nil {
		t.Fatalf("faulty pipelined RunSim: %v", err)
	}

	reconnects := 0
	for _, p := range report.Participants {
		reconnects += p.Reconnects
	}
	if reconnects == 0 {
		t.Fatalf("no reconnect-and-resume was forced; the test proves nothing")
	}
	if report.TasksAssigned != clean.TasksAssigned {
		t.Errorf("faulty run assigned %d replica executions, clean %d", report.TasksAssigned, clean.TasksAssigned)
	}
	if !reflect.DeepEqual(clean.TaskVerdicts, report.TaskVerdicts) {
		t.Errorf("verdicts diverge:\nclean:  %+v\nfaulty: %+v", clean.TaskVerdicts, report.TaskVerdicts)
	}
	if !reflect.DeepEqual(clean.Reports, report.Reports) {
		t.Errorf("report streams diverge: clean %d reports, faulty %d", len(clean.Reports), len(report.Reports))
	}
	if clean.HonestAccused != report.HonestAccused || clean.CheatersDetected != report.CheatersDetected {
		t.Errorf("detection diverges: clean %d/%d, faulty %d/%d",
			clean.CheatersDetected, clean.HonestAccused, report.CheatersDetected, report.HonestAccused)
	}
	// Verdict acknowledgement closes the worker-side gap: lost deliveries
	// are re-sent on resume, so the participants' own counters converge to
	// the clean run's instead of lagging.
	for i := range clean.Participants {
		c, f := clean.Participants[i], report.Participants[i]
		if c.Tasks != f.Tasks || c.Accepted != f.Accepted || c.Rejected != f.Rejected {
			t.Errorf("participant %s counters lag: clean tasks/acc/rej %d/%d/%d, faulty %d/%d/%d",
				c.ID, c.Tasks, c.Accepted, c.Rejected, f.Tasks, f.Accepted, f.Rejected)
		}
	}
}

// TestReplicaParksAtIncompleteRendezvous pins the barrier-liveness design:
// a replica whose group is incomplete must NOT block holding its window
// slot and worker — RunAttempt detaches with errReplicaParked — and a
// re-claimed attempt finishes the exchange, on the same live session
// (without re-announcing) or on a replacement one (with a resume).
func TestReplicaParksAtIncompleteRendezvous(t *testing.T) {
	r := newRedialableParticipant(t, HonestFactory)
	defer r.shutdown()

	sup, err := NewSupervisor(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeDoubleCheck, M: 1}, Seed: 4})
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	for _, sameSession := range []bool{true, false} {
		name := "same-session"
		task := poolTasks(1, 64)[0]
		if !sameSession {
			name = "replacement-session"
			task.ID = 1 // a fresh task for the second scenario
		}
		t.Run(name, func(t *testing.T) {
			rdv := newReplicaRendezvous(2)
			at, err := sup.newReplicaAttempt(task, rdv, 0)
			if err != nil {
				t.Fatalf("newReplicaAttempt: %v", err)
			}
			sess, err := sup.OpenSession(r.dial(), 1)
			if err != nil {
				t.Fatalf("OpenSession: %v", err)
			}
			// The sibling never arrived: the attempt must detach promptly
			// instead of blocking the window slot.
			if _, err := sess.RunAttempt(at); !errors.Is(err, errReplicaParked) {
				t.Fatalf("RunAttempt error = %v, want errReplicaParked", err)
			}
			upload := func() [][]byte {
				rdv.mu.Lock()
				defer rdv.mu.Unlock()
				return rdv.uploads[0]
			}()
			if upload == nil {
				t.Fatal("parked replica never submitted its upload")
			}

			resume := sess
			if !sameSession {
				// The first session dies while the replica is parked; the
				// re-claimed attempt must announce a resume on the new one.
				sess.abandon()
				if resume, err = sup.OpenSession(r.dial(), 1); err != nil {
					t.Fatalf("OpenSession 2: %v", err)
				}
			}
			rdv.submit(1, append([][]byte(nil), upload...))
			outcome, err := resume.RunAttempt(at)
			if err != nil {
				t.Fatalf("re-claimed RunAttempt: %v", err)
			}
			if !outcome.Verdict.Accepted {
				t.Errorf("honest replica rejected after parking: %s", outcome.Verdict.Reason)
			}
			if err := resume.Close(); err != nil {
				t.Fatalf("session close: %v", err)
			}
		})
	}
}

// TestStreamReplicatedWindowOneSurvivesQuarantine is the regression test
// for the scheduler deadlock a code review confirmed: with window 1, a
// quarantined replica used to be re-queued behind the next group, whose
// exchange then filled the only window slot at a barrier waiting for a
// sibling queued behind another barrier-blocked exchange — a permanent
// cross-connection cycle. With barrier parking no exchange can hold a slot
// at a rendezvous, so the run must converge.
func TestStreamReplicatedWindowOneSurvivesQuarantine(t *testing.T) {
	const replicas = 2
	const tasks = 2
	r := newRedialableParticipant(t, HonestFactory)
	defer r.shutdown()
	other := newRedialableParticipant(t, HonestFactory)
	defer other.shutdown()

	conns := []transport.Conn{cutAfterRecv(r.dial(), 1), other.dial()}
	pool, err := NewSupervisorPool(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeDoubleCheck, M: 1}, Seed: 6}, 4)
	if err != nil {
		t.Fatalf("NewSupervisorPool: %v", err)
	}
	stream, err := pool.RunTasksStream(context.Background(), conns, poolTasks(tasks, 64), 1,
		WithReplicas(replicas),
		WithRedial(func(transport.Conn) (transport.Conn, error) { return r.dial(), nil }))
	if err != nil {
		t.Fatalf("RunTasksStream: %v", err)
	}
	done := make(chan int, 1)
	go func() {
		count := 0
		for so := range stream.Outcomes() {
			count++
			if !so.Outcome.Verdict.Accepted {
				t.Errorf("honest replica rejected: task %d replica %d: %s",
					so.Outcome.Task.ID, so.Outcome.Replica, so.Outcome.Verdict.Reason)
			}
		}
		done <- count
	}()
	select {
	case count := <-done:
		if err := stream.Err(); err != nil {
			t.Fatalf("stream error: %v", err)
		}
		if count != tasks*replicas {
			t.Errorf("streamed %d replica outcomes, want %d", count, tasks*replicas)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("window-1 replicated stream deadlocked after a quarantine")
	}
}
