package grid

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"uncheatgrid/internal/transport"
)

// Assignment pairs a task with the connection to the participant that
// should execute it. It is the unit of work of SupervisorPool.RunTasks.
type Assignment struct {
	// Conn is the supervisor-side endpoint to the participant.
	Conn transport.Conn
	// Task is the domain window to assign.
	Task Task
}

// SupervisorPool verifies many participants concurrently: it schedules
// assignments across a bounded worker pool, keeping each connection's
// protocol exchange strictly serial (distinct connections proceed in
// parallel). Because the supervisor derives per-task randomness from
// hash(seed, task ID), a pooled run produces the same outcomes as a serial
// one for equal seeds and inputs, regardless of scheduling.
//
// The double-check scheme replicates one task across several connections
// and compares uploads at a barrier; RunTasksStream runs it pipelined with
// a cross-connection rendezvous per task (see WithReplicas), while the
// per-connection RunTasks batch API cannot express replication and rejects
// it.
type SupervisorPool struct {
	sup     *Supervisor
	workers int

	// bytesSent and bytesRecv aggregate supervisor-side traffic across all
	// pooled tasks.
	bytesSent atomic.Int64
	bytesRecv atomic.Int64
}

// NewSupervisorPool creates a pool around a fresh supervisor. workers
// bounds how many task exchanges run at once; values below 1 select
// runtime.NumCPU().
func NewSupervisorPool(cfg SupervisorConfig, workers int) (*SupervisorPool, error) {
	sup, err := NewSupervisor(cfg)
	if err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	return &SupervisorPool{sup: sup, workers: workers}, nil
}

// Supervisor exposes the underlying supervisor (for VerifyEvals etc.).
func (p *SupervisorPool) Supervisor() *Supervisor { return p.sup }

// VerifyEvals reports the aggregated supervisor-side f evaluations across
// all tasks run through the pool.
func (p *SupervisorPool) VerifyEvals() int64 { return p.sup.VerifyEvals() }

// BytesSent reports the aggregated supervisor-side bytes sent across all
// completed pooled tasks.
func (p *SupervisorPool) BytesSent() int64 { return p.bytesSent.Load() }

// BytesRecv reports the aggregated supervisor-side bytes received across
// all completed pooled tasks.
func (p *SupervisorPool) BytesRecv() int64 { return p.bytesRecv.Load() }

// RunTasks runs every assignment to completion and returns the outcomes in
// input order. Assignments sharing a connection are executed serially in
// input order (the wire protocol is strictly request/response); assignments
// on distinct connections run concurrently, at most `workers` at a time.
//
// The first transport or protocol error cancels all unstarted work and is
// returned; outcomes already completed are lost with it, as in the serial
// API. Detected cheats are not errors — they land in the outcome verdicts.
// Cancelling ctx stops the pool before the next task on each connection;
// in-flight exchanges finish first.
//
//gridlint:credit pool totals fold in each outcome's settled bytes as it completes
func (p *SupervisorPool) RunTasks(ctx context.Context, assignments []Assignment) ([]*TaskOutcome, error) {
	if p.sup.cfg.Spec.Kind == SchemeDoubleCheck {
		return nil, fmt.Errorf("%w: double-check needs a replica barrier; use RunReplicated or a replicated RunTasksStream", ErrBadConfig)
	}
	if len(assignments) == 0 {
		return nil, nil
	}
	outcomes := make([]*TaskOutcome, len(assignments))

	// Group assignment indices by connection, preserving input order both
	// across groups and within each group.
	groups := make(map[transport.Conn][]int)
	order := make([]transport.Conn, 0, len(assignments))
	for i, a := range assignments {
		if a.Conn == nil {
			return nil, fmt.Errorf("%w: assignment %d has nil connection", ErrBadConfig, i)
		}
		if _, seen := groups[a.Conn]; !seen {
			order = append(order, a.Conn)
		}
		groups[a.Conn] = append(groups[a.Conn], i)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	sem := make(chan struct{}, p.workers)
	var wg sync.WaitGroup
	for _, conn := range order {
		wg.Add(1)
		go func(conn transport.Conn, idxs []int) {
			defer wg.Done()
			for _, i := range idxs {
				// Give up before starting the next task if the run is
				// already cancelled; the select alone is not enough, since
				// it chooses randomly when a worker slot is also free.
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				// Acquire a worker slot; give up if the run is cancelled
				// while waiting.
				select {
				case sem <- struct{}{}:
				case <-ctx.Done():
					fail(ctx.Err())
					return
				}
				outcome, err := p.sup.RunTask(conn, assignments[i].Task)
				<-sem
				if err != nil {
					fail(fmt.Errorf("grid: task %d: %w", assignments[i].Task.ID, err))
					return
				}
				outcomes[i] = outcome
				p.bytesSent.Add(outcome.BytesSent)
				p.bytesRecv.Add(outcome.BytesRecv)
			}
		}(conn, groups[conn])
	}
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	return outcomes, nil
}

// StreamedOutcome pairs a completed task outcome with the connection (and
// thus the participant) that executed it — needed because work stealing
// makes the task→connection pairing scheduling-dependent.
type StreamedOutcome struct {
	Outcome *TaskOutcome
	Conn    transport.Conn
}

// TaskStream is the handle of a streaming pooled run. Consumers must drain
// Outcomes; the channel closes when the run finishes, after which Err
// reports the run's terminal error (nil on success).
type TaskStream struct {
	outcomes chan StreamedOutcome
	done     chan struct{}
	err      error
	d        *dispatcher
}

// Outcomes returns the stream of completed tasks in completion order.
func (s *TaskStream) Outcomes() <-chan StreamedOutcome { return s.outcomes }

// Err blocks until the run finishes and reports its first error.
func (s *TaskStream) Err() error {
	<-s.done
	return s.err
}

// Retire permanently retires a connection (and every replacement dialed for
// it) from claiming fresh tasks. Claims the connection holds but has not
// started — its revocable leases — are recalled and rerouted to other
// connections; exchanges already started, including resumed ones, still
// finish. Because retirement and exchange starts serialize on the
// dispatcher's lock, a Retire call happens-before every later start: no task
// can begin on a connection retired between claim re-check and exchange
// start, which fully closes the race the polling eligibility gate leaves
// open. The simulator's blacklist calls this on the rejected outcome's
// connection.
func (s *TaskStream) Retire(conn transport.Conn) {
	s.d.retireConn(conn)
}

// TaskSource feeds a streaming run one task at a time: it returns the i-th
// task of the run (i counts from 0) and reports false once the stream is
// exhausted. Sources are consulted lazily under the dispatcher lock — only
// a bounded look-ahead of tickets is ever materialized, so a source backed
// by a generator can describe runs far larger than memory. A source must be
// deterministic in i: checkpoint restore re-reads the same indices.
type TaskSource func(i uint64) (Task, bool)

// SliceTaskSource adapts a finite task slice to a TaskSource.
func SliceTaskSource(tasks []Task) TaskSource {
	return func(i uint64) (Task, bool) {
		if i >= uint64(len(tasks)) {
			return Task{}, false
		}
		return tasks[i], true
	}
}

// streamConfig collects RunTasksStream options.
type streamConfig struct {
	eligible      func(transport.Conn) bool
	redial        func(old transport.Conn) (transport.Conn, error)
	maxReconnects int
	recvTimeout   time.Duration
	replicas      int
	identity      func(transport.Conn) string
	ledgers       []*WindowLedger
	highWater     int
	pinned        bool
	sourceBase    uint64
	drainCkpt     uint64
	doDrainCkpt   bool
}

// StreamOption configures RunTasksStream.
type StreamOption interface {
	applyStream(*streamConfig)
}

type eligibleOption struct {
	fn func(transport.Conn) bool
}

func (o eligibleOption) applyStream(c *streamConfig) { c.eligible = o.fn }

// WithEligibility gates scheduling: the function is consulted — under the
// dispatcher lock, so it must be fast and must not call back into the pool —
// each time a connection is about to claim or start a task, and returning
// false retires that connection (tasks already in flight on it still
// finish). The simulator's blacklist used this before TaskStream.Retire
// existed; Retire is the stronger, synchronous form.
func WithEligibility(fn func(transport.Conn) bool) StreamOption { return eligibleOption{fn} }

type redialOption struct {
	fn func(old transport.Conn) (transport.Conn, error)
}

func (o redialOption) applyStream(c *streamConfig) { c.redial = o.fn }

// WithRedial enables reconnect-and-resume: when a session's connection is
// quarantined after a transport fault, fn is asked for a replacement
// connection to the same participant. In-flight tasks re-attach to the
// replacement mid-protocol via the resume handshake instead of restarting.
// Without a redial function (the default), tasks that had received nothing
// restart on other connections and tasks bound mid-protocol are restarted
// from scratch elsewhere.
func WithRedial(fn func(old transport.Conn) (transport.Conn, error)) StreamOption {
	return redialOption{fn}
}

type maxReconnectsOption int

func (o maxReconnectsOption) applyStream(c *streamConfig) { c.maxReconnects = int(o) }

// WithMaxReconnects bounds how many replacement connections one
// participant's slot may consume before it is declared permanently dead
// (default 4). Tasks stranded on a dead slot are restarted from scratch on
// the surviving connections — with a fresh per-task randomness stream, so
// the retried verdict is identical to a clean first run on the new
// participant.
func WithMaxReconnects(n int) StreamOption { return maxReconnectsOption(n) }

type streamRecvTimeoutOption time.Duration

func (o streamRecvTimeoutOption) applyStream(c *streamConfig) {
	c.recvTimeout = time.Duration(o)
}

// WithStreamRecvTimeout forwards a receive watchdog to every session the
// stream opens (see WithSessionRecvTimeout): silently dropped frames become
// quarantines, and with WithRedial, resumes.
func WithStreamRecvTimeout(d time.Duration) StreamOption { return streamRecvTimeoutOption(d) }

type workerIdentityOption struct {
	fn func(transport.Conn) string
}

func (o workerIdentityOption) applyStream(c *streamConfig) { c.identity = o.fn }

// WithWorkerIdentity names the participant behind each connection. A
// replicated stream then places replica groups on pairwise-distinct
// *workers* rather than distinct connections — the distinction matters when
// connections are routes through a relay (a BrokerHub) and two of them
// could reach the same participant, which would void the double-check
// comparison. The function is consulted under the dispatcher lock, so it
// must be fast, must not call back into the pool, and must resolve
// replacement (redialed) connections to the same identity as the originals.
// An empty string means "unknown" and falls back to per-connection
// distinctness for that connection.
func WithWorkerIdentity(fn func(transport.Conn) string) StreamOption {
	return workerIdentityOption{fn}
}

type replicasOption int

func (o replicasOption) applyStream(c *streamConfig) { c.replicas = int(o) }

// WithReplicas sets the double-check group size of a replicated
// RunTasksStream: every task fans out to n pairwise-distinct connections
// whose uploads meet at a comparison rendezvous (default 2 for the
// double-check scheme). Only valid with the double-check scheme, which in
// turn requires at least n connections. The stream emits n outcomes per
// task, one per replica.
func WithReplicas(n int) StreamOption { return replicasOption(n) }

type windowSettleOption struct {
	ledgers []*WindowLedger
}

func (o windowSettleOption) applyStream(c *streamConfig) { c.ledgers = o.ledgers }

// WithWindowSettle arms rolling-window verification on a stream: ledgers[i]
// (nil entries allowed) verifies the window commits arriving on conns[i],
// banking each task's stream digest at decision time and auditing the
// sampled Merkle paths of every commit against them. Ledgers outlive the
// stream — pass the same ledger for the same participant across successive
// streams (checkpoint segments) and the commitment chain continues
// seamlessly. Requires a spec with WindowTasks > 0.
func WithWindowSettle(ledgers []*WindowLedger) StreamOption {
	return windowSettleOption{ledgers}
}

type highWaterOption int

func (o highWaterOption) applyStream(c *streamConfig) { c.highWater = int(o) }

// WithHighWater bounds how many tasks a source-fed stream materializes as
// tickets ahead of execution (default 2 × window × connections). Memory for
// an unbounded run is O(high water + in-flight), independent of stream
// length.
func WithHighWater(n int) StreamOption { return highWaterOption(n) }

type pinnedPlacementOption struct{}

func (o pinnedPlacementOption) applyStream(c *streamConfig) { c.pinned = true }

// WithPinnedPlacement replaces work stealing with deterministic placement:
// task i runs on connection i mod len(conns), independent of scheduling
// timing. Checkpoint/restore runs use this so a restarted run re-executes
// each task on the same participant the clean run would have used, keeping
// verdicts and per-participant tallies byte-identical.
func WithPinnedPlacement() StreamOption { return pinnedPlacementOption{} }

type sourceBaseOption uint64

func (o sourceBaseOption) applyStream(c *streamConfig) { c.sourceBase = uint64(o) }

// WithSourceBase starts the task source's index walk at base instead of 0:
// the source is consulted with absolute indices base, base+1, … — and, under
// WithPinnedPlacement, task index i maps to connection i mod len(conns)
// using that absolute index. Segmented runs (checkpoint/restore) pass each
// segment's first task index here so placement is a pure function of the
// task's position in the whole stream, not of where segment boundaries fall.
func WithSourceBase(base uint64) StreamOption { return sourceBaseOption(base) }

type drainCheckpointOption uint64

func (o drainCheckpointOption) applyStream(c *streamConfig) {
	c.drainCkpt = uint64(o)
	c.doDrainCkpt = true
}

// WithDrainCheckpoint makes the stream end with a checkpoint barrier: after
// every task settles and before the sessions close, each surviving
// connection receives a msgCheckpoint carrying seq and the stream completes
// only after all of them acknowledge (having persisted their durable state,
// see WithCheckpointDir). Dead connections are skipped — their participants
// restore from the previous checkpoint.
func WithDrainCheckpoint(seq uint64) StreamOption { return drainCheckpointOption(seq) }
