package grid

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"uncheatgrid/internal/transport"
)

// Assignment pairs a task with the connection to the participant that
// should execute it. It is the unit of work of SupervisorPool.RunTasks.
type Assignment struct {
	// Conn is the supervisor-side endpoint to the participant.
	Conn transport.Conn
	// Task is the domain window to assign.
	Task Task
}

// SupervisorPool verifies many participants concurrently: it schedules
// assignments across a bounded worker pool, keeping each connection's
// protocol exchange strictly serial (distinct connections proceed in
// parallel). Because the supervisor derives per-task randomness from
// hash(seed, task ID), a pooled run produces the same outcomes as a serial
// one for equal seeds and inputs, regardless of scheduling.
//
// The double-check scheme replicates one task across several connections
// and compares uploads at a barrier; it stays on Supervisor.RunReplicated.
type SupervisorPool struct {
	sup     *Supervisor
	workers int

	// bytesSent and bytesRecv aggregate supervisor-side traffic across all
	// pooled tasks.
	bytesSent atomic.Int64
	bytesRecv atomic.Int64
}

// NewSupervisorPool creates a pool around a fresh supervisor. workers
// bounds how many task exchanges run at once; values below 1 select
// runtime.NumCPU().
func NewSupervisorPool(cfg SupervisorConfig, workers int) (*SupervisorPool, error) {
	if cfg.Spec.Kind == SchemeDoubleCheck {
		return nil, fmt.Errorf("%w: double-check requires RunReplicated, not a pool", ErrBadConfig)
	}
	sup, err := NewSupervisor(cfg)
	if err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	return &SupervisorPool{sup: sup, workers: workers}, nil
}

// Supervisor exposes the underlying supervisor (for VerifyEvals etc.).
func (p *SupervisorPool) Supervisor() *Supervisor { return p.sup }

// VerifyEvals reports the aggregated supervisor-side f evaluations across
// all tasks run through the pool.
func (p *SupervisorPool) VerifyEvals() int64 { return p.sup.VerifyEvals() }

// BytesSent reports the aggregated supervisor-side bytes sent across all
// completed pooled tasks.
func (p *SupervisorPool) BytesSent() int64 { return p.bytesSent.Load() }

// BytesRecv reports the aggregated supervisor-side bytes received across
// all completed pooled tasks.
func (p *SupervisorPool) BytesRecv() int64 { return p.bytesRecv.Load() }

// RunTasks runs every assignment to completion and returns the outcomes in
// input order. Assignments sharing a connection are executed serially in
// input order (the wire protocol is strictly request/response); assignments
// on distinct connections run concurrently, at most `workers` at a time.
//
// The first transport or protocol error cancels all unstarted work and is
// returned; outcomes already completed are lost with it, as in the serial
// API. Detected cheats are not errors — they land in the outcome verdicts.
// Cancelling ctx stops the pool before the next task on each connection;
// in-flight exchanges finish first.
func (p *SupervisorPool) RunTasks(ctx context.Context, assignments []Assignment) ([]*TaskOutcome, error) {
	if len(assignments) == 0 {
		return nil, nil
	}
	outcomes := make([]*TaskOutcome, len(assignments))

	// Group assignment indices by connection, preserving input order both
	// across groups and within each group.
	groups := make(map[transport.Conn][]int)
	order := make([]transport.Conn, 0, len(assignments))
	for i, a := range assignments {
		if a.Conn == nil {
			return nil, fmt.Errorf("%w: assignment %d has nil connection", ErrBadConfig, i)
		}
		if _, seen := groups[a.Conn]; !seen {
			order = append(order, a.Conn)
		}
		groups[a.Conn] = append(groups[a.Conn], i)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	sem := make(chan struct{}, p.workers)
	var wg sync.WaitGroup
	for _, conn := range order {
		wg.Add(1)
		go func(conn transport.Conn, idxs []int) {
			defer wg.Done()
			for _, i := range idxs {
				// Give up before starting the next task if the run is
				// already cancelled; the select alone is not enough, since
				// it chooses randomly when a worker slot is also free.
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				// Acquire a worker slot; give up if the run is cancelled
				// while waiting.
				select {
				case sem <- struct{}{}:
				case <-ctx.Done():
					fail(ctx.Err())
					return
				}
				outcome, err := p.sup.RunTask(conn, assignments[i].Task)
				<-sem
				if err != nil {
					fail(fmt.Errorf("grid: task %d: %w", assignments[i].Task.ID, err))
					return
				}
				outcomes[i] = outcome
				p.bytesSent.Add(outcome.BytesSent)
				p.bytesRecv.Add(outcome.BytesRecv)
			}
		}(conn, groups[conn])
	}
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	return outcomes, nil
}

// StreamedOutcome pairs a completed task outcome with the connection (and
// thus the participant) that executed it — needed because work stealing
// makes the task→connection pairing scheduling-dependent.
type StreamedOutcome struct {
	Outcome *TaskOutcome
	Conn    transport.Conn
}

// TaskStream is the handle of a streaming pooled run. Consumers must drain
// Outcomes; the channel closes when the run finishes, after which Err
// reports the run's terminal error (nil on success).
type TaskStream struct {
	outcomes chan StreamedOutcome
	done     chan struct{}
	err      error
}

// Outcomes returns the stream of completed tasks in completion order.
func (s *TaskStream) Outcomes() <-chan StreamedOutcome { return s.outcomes }

// Err blocks until the run finishes and reports its first error.
func (s *TaskStream) Err() error {
	<-s.done
	return s.err
}

// streamConfig collects RunTasksStream options.
type streamConfig struct {
	eligible func(transport.Conn) bool
}

// StreamOption configures RunTasksStream.
type StreamOption interface {
	applyStream(*streamConfig)
}

type eligibleOption struct {
	fn func(transport.Conn) bool
}

func (o eligibleOption) applyStream(c *streamConfig) { c.eligible = o.fn }

// WithEligibility gates scheduling: the function is consulted each time a
// connection is about to claim its next task, and returning false retires
// that connection (tasks already in flight on it still finish). The
// simulator's blacklist uses this. fn is called from many goroutines.
func WithEligibility(fn func(transport.Conn) bool) StreamOption { return eligibleOption{fn} }

// strayTracker coordinates task hand-off when the eligibility gate retires
// a connection after one of its workers has already claimed a task. claims
// counts workers that might still produce or consume a stray — parked on
// the queue, executing, or holding a task — so a drainer knows the strays
// list is final only once claims reaches zero.
type strayTracker struct {
	mu     sync.Mutex
	cond   *sync.Cond
	strays []Task
	claims int
}

// park registers a claim before the worker blocks on the queue; the claim
// then covers whatever task the queue delivers.
func (s *strayTracker) park() {
	s.mu.Lock()
	s.claims++
	s.mu.Unlock()
}

// release drops a claim (task finished, abandoned to cancellation, or the
// queue closed without delivering one).
func (s *strayTracker) release() {
	s.mu.Lock()
	s.claims--
	s.cond.Broadcast()
	s.mu.Unlock()
}

// take claims a stray if one is available.
func (s *strayTracker) take() (Task, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.strays) == 0 {
		return Task{}, false
	}
	task := s.strays[len(s.strays)-1]
	s.strays = s.strays[:len(s.strays)-1]
	s.claims++
	return task, true
}

// deposit hands a claimed task back for still-eligible workers to adopt.
func (s *strayTracker) deposit(task Task) {
	s.mu.Lock()
	s.strays = append(s.strays, task)
	s.claims--
	s.cond.Broadcast()
	s.mu.Unlock()
}

// drain blocks until a stray is available (claiming it), no outstanding
// claim can produce one, or ctx is cancelled.
func (s *strayTracker) drain(ctx context.Context) (Task, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if ctx.Err() != nil {
			return Task{}, false
		}
		if len(s.strays) > 0 {
			task := s.strays[len(s.strays)-1]
			s.strays = s.strays[:len(s.strays)-1]
			s.claims++
			return task, true
		}
		if s.claims == 0 {
			return Task{}, false
		}
		s.cond.Wait()
	}
}

// RunTasksStream verifies tasks over pipelined sessions with work stealing:
// every connection opens a session holding up to `window` concurrent task
// exchanges, and all sessions claim tasks from one shared queue — fast
// participants take more work instead of idling behind static per-conn
// groups. Outcomes stream out as they complete.
//
// Which connection runs which task is scheduling-dependent; the verdict of
// a given (task, connection) pair is not, thanks to per-task seed
// derivation. The pool's worker bound still applies: sessions hold up to
// `window` claims each, but at most `workers` exchanges execute at once.
// The first error cancels the run: unclaimed tasks are dropped and the
// error surfaces on TaskStream.Err. If every connection is retired by the
// eligibility gate, remaining tasks are dropped and the stream ends
// cleanly — callers detect the shortfall by counting outcomes.
func (p *SupervisorPool) RunTasksStream(ctx context.Context, conns []transport.Conn, tasks []Task, window int, opts ...StreamOption) (*TaskStream, error) {
	if len(conns) == 0 {
		return nil, fmt.Errorf("%w: no connections", ErrBadConfig)
	}
	var cfg streamConfig
	for _, opt := range opts {
		opt.applyStream(&cfg)
	}

	sessions := make([]*Session, len(conns))
	for i, conn := range conns {
		sess, err := p.sup.OpenSession(conn, window)
		if err != nil {
			for _, open := range sessions[:i] {
				_ = open.Close()
			}
			return nil, err
		}
		sessions[i] = sess
	}

	stream := &TaskStream{
		outcomes: make(chan StreamedOutcome),
		done:     make(chan struct{}),
	}
	ctx, cancel := context.WithCancel(ctx)
	queue := make(chan Task)

	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	// strays redistributes tasks claimed by a worker whose connection was
	// retired by the eligibility gate after claiming: still-eligible
	// workers adopt them, so a late blacklist cannot silently drop work
	// while eligible connections remain (serial-mode blacklist reassigns
	// the task the same way). The claim count covers every worker from the
	// moment it parks on the queue, so drainers cannot exit while a
	// deposit is still possible.
	strays := &strayTracker{}
	strays.cond = sync.NewCond(&strays.mu)
	go func() {
		<-ctx.Done()
		strays.cond.Broadcast()
	}()

	// The pool's worker bound applies across all sessions, exactly as in
	// RunTasks: sessions hold up to `window` claims each, but at most
	// p.workers exchanges execute at once.
	sem := make(chan struct{}, p.workers)

	var workers sync.WaitGroup
	for i := range sessions {
		sess, conn := sessions[i], conns[i]
		for w := 0; w < window; w++ {
			workers.Add(1)
			go func() {
				defer workers.Done()
				for {
					if cfg.eligible != nil && !cfg.eligible(conn) {
						return
					}
					task, ok := strays.take()
					if !ok {
						strays.park()
						select {
						case <-ctx.Done():
							strays.release()
							return
						case task, ok = <-queue:
						}
						if !ok {
							strays.release()
							// Queue exhausted: drain strays until no parked
							// or executing worker can deposit another.
							if task, ok = strays.drain(ctx); !ok {
								return
							}
						}
					}
					// Re-check at claim time: the connection may have been
					// retired while this worker was parked on the queue.
					if cfg.eligible != nil && !cfg.eligible(conn) {
						strays.deposit(task)
						return
					}
					select {
					case sem <- struct{}{}:
					case <-ctx.Done():
						strays.release()
						return
					}
					outcome, err := sess.RunTask(task)
					<-sem
					if err != nil {
						strays.release()
						fail(err)
						return
					}
					p.bytesSent.Add(outcome.BytesSent)
					p.bytesRecv.Add(outcome.BytesRecv)
					select {
					case stream.outcomes <- StreamedOutcome{Outcome: outcome, Conn: conn}:
						strays.release()
					case <-ctx.Done():
						strays.release()
						return
					}
				}
			}()
		}
	}

	workersDone := make(chan struct{})
	go func() {
		workers.Wait()
		close(workersDone)
	}()

	// Feeder: offer tasks until the list is exhausted, the run is
	// cancelled, or every worker has retired.
	go func() {
		defer close(queue)
		for _, task := range tasks {
			select {
			case queue <- task:
			case <-ctx.Done():
				return
			case <-workersDone:
				return
			}
		}
	}()

	// Finisher: close sessions (flushing their writers), then publish the
	// terminal error and close the stream.
	go func() {
		<-workersDone
		for _, sess := range sessions {
			if err := sess.Close(); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("grid: session close: %w", err)
				}
				mu.Unlock()
			}
			// Outcomes carry only their own tagged bytes; fold the shared
			// batch framing in so the pool counters keep meaning "wire
			// traffic" in both run modes.
			ovSent, ovRecv := sess.OverheadBytes()
			p.bytesSent.Add(ovSent)
			p.bytesRecv.Add(ovRecv)
		}
		cancel()
		mu.Lock()
		stream.err = firstErr
		mu.Unlock()
		close(stream.outcomes)
		close(stream.done)
	}()

	return stream, nil
}
