package grid

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"uncheatgrid/internal/transport"
)

// Assignment pairs a task with the connection to the participant that
// should execute it. It is the unit of work of SupervisorPool.RunTasks.
type Assignment struct {
	// Conn is the supervisor-side endpoint to the participant.
	Conn transport.Conn
	// Task is the domain window to assign.
	Task Task
}

// SupervisorPool verifies many participants concurrently: it schedules
// assignments across a bounded worker pool, keeping each connection's
// protocol exchange strictly serial (distinct connections proceed in
// parallel). Because the supervisor derives per-task randomness from
// hash(seed, task ID), a pooled run produces the same outcomes as a serial
// one for equal seeds and inputs, regardless of scheduling.
//
// The double-check scheme replicates one task across several connections
// and compares uploads at a barrier; it stays on Supervisor.RunReplicated.
type SupervisorPool struct {
	sup     *Supervisor
	workers int

	// bytesSent and bytesRecv aggregate supervisor-side traffic across all
	// pooled tasks.
	bytesSent atomic.Int64
	bytesRecv atomic.Int64
}

// NewSupervisorPool creates a pool around a fresh supervisor. workers
// bounds how many task exchanges run at once; values below 1 select
// runtime.NumCPU().
func NewSupervisorPool(cfg SupervisorConfig, workers int) (*SupervisorPool, error) {
	if cfg.Spec.Kind == SchemeDoubleCheck {
		return nil, fmt.Errorf("%w: double-check requires RunReplicated, not a pool", ErrBadConfig)
	}
	sup, err := NewSupervisor(cfg)
	if err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	return &SupervisorPool{sup: sup, workers: workers}, nil
}

// Supervisor exposes the underlying supervisor (for VerifyEvals etc.).
func (p *SupervisorPool) Supervisor() *Supervisor { return p.sup }

// VerifyEvals reports the aggregated supervisor-side f evaluations across
// all tasks run through the pool.
func (p *SupervisorPool) VerifyEvals() int64 { return p.sup.VerifyEvals() }

// BytesSent reports the aggregated supervisor-side bytes sent across all
// completed pooled tasks.
func (p *SupervisorPool) BytesSent() int64 { return p.bytesSent.Load() }

// BytesRecv reports the aggregated supervisor-side bytes received across
// all completed pooled tasks.
func (p *SupervisorPool) BytesRecv() int64 { return p.bytesRecv.Load() }

// RunTasks runs every assignment to completion and returns the outcomes in
// input order. Assignments sharing a connection are executed serially in
// input order (the wire protocol is strictly request/response); assignments
// on distinct connections run concurrently, at most `workers` at a time.
//
// The first transport or protocol error cancels all unstarted work and is
// returned; outcomes already completed are lost with it, as in the serial
// API. Detected cheats are not errors — they land in the outcome verdicts.
// Cancelling ctx stops the pool before the next task on each connection;
// in-flight exchanges finish first.
func (p *SupervisorPool) RunTasks(ctx context.Context, assignments []Assignment) ([]*TaskOutcome, error) {
	if len(assignments) == 0 {
		return nil, nil
	}
	outcomes := make([]*TaskOutcome, len(assignments))

	// Group assignment indices by connection, preserving input order both
	// across groups and within each group.
	groups := make(map[transport.Conn][]int)
	order := make([]transport.Conn, 0, len(assignments))
	for i, a := range assignments {
		if a.Conn == nil {
			return nil, fmt.Errorf("%w: assignment %d has nil connection", ErrBadConfig, i)
		}
		if _, seen := groups[a.Conn]; !seen {
			order = append(order, a.Conn)
		}
		groups[a.Conn] = append(groups[a.Conn], i)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	sem := make(chan struct{}, p.workers)
	var wg sync.WaitGroup
	for _, conn := range order {
		wg.Add(1)
		go func(conn transport.Conn, idxs []int) {
			defer wg.Done()
			for _, i := range idxs {
				// Give up before starting the next task if the run is
				// already cancelled; the select alone is not enough, since
				// it chooses randomly when a worker slot is also free.
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				// Acquire a worker slot; give up if the run is cancelled
				// while waiting.
				select {
				case sem <- struct{}{}:
				case <-ctx.Done():
					fail(ctx.Err())
					return
				}
				outcome, err := p.sup.RunTask(conn, assignments[i].Task)
				<-sem
				if err != nil {
					fail(fmt.Errorf("grid: task %d: %w", assignments[i].Task.ID, err))
					return
				}
				outcomes[i] = outcome
				p.bytesSent.Add(outcome.BytesSent)
				p.bytesRecv.Add(outcome.BytesRecv)
			}
		}(conn, groups[conn])
	}
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	return outcomes, nil
}
