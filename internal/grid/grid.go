// Package grid simulates the grid-computing environment of Section 2.1 of
// "Uncheatable Grid Computing" (Du et al., ICDCS 2004): a supervisor that
// partitions the input domain X into tasks, participants that evaluate f and
// screen results, and the verification schemes — CBS, non-interactive CBS,
// and the baselines — wired over a byte-accounted message transport.
//
// The package also provides the GRACE-style broker of Section 4 (a relay
// between supervisor and participants that precludes interactive
// challenges) and a simulation engine that runs mixed honest/cheating
// populations and reports detection and communication metrics.
package grid

import (
	"errors"
	"fmt"
)

// Errors reported by this package.
var (
	// ErrBadConfig is returned for invalid configuration.
	ErrBadConfig = errors.New("grid: invalid configuration")
	// ErrUnexpectedMessage indicates a protocol message arrived out of
	// order or with an unknown type.
	ErrUnexpectedMessage = errors.New("grid: unexpected message")
	// ErrBadPayload indicates an undecodable message payload.
	ErrBadPayload = errors.New("grid: malformed payload")
	// ErrFrameCorrupt indicates a session frame failed its integrity check —
	// link damage rather than peer misbehavior. Sessions treat it like any
	// other transport fault: quarantine the connection and resume elsewhere.
	ErrFrameCorrupt = errors.New("grid: frame failed integrity check")
	// ErrConnQuarantined wraps the transport fault that killed a session
	// connection; tasks failing with it hold resumable state and can
	// re-attach to a replacement connection.
	ErrConnQuarantined = errors.New("grid: connection quarantined")
	// ErrTaskTooLarge is returned when a task exceeds the in-memory
	// simulation bound.
	ErrTaskTooLarge = errors.New("grid: task domain too large")
)

// SchemeKind enumerates the verification schemes.
type SchemeKind uint8

// The verification schemes compared by the experiments.
const (
	// SchemeCBS is the interactive Commitment-Based Sampling scheme
	// (Section 3.1) — the paper's contribution.
	SchemeCBS SchemeKind = iota + 1
	// SchemeNICBS is the non-interactive variant (Section 4.1).
	SchemeNICBS
	// SchemeNaive is naive sampling over a full result upload (Section 1).
	SchemeNaive
	// SchemeDoubleCheck is k-way redundant assignment (Section 1).
	SchemeDoubleCheck
	// SchemeRinger is the Golle-Mironov ringer scheme (Section 1.1).
	SchemeRinger
)

// String implements fmt.Stringer.
func (k SchemeKind) String() string {
	switch k {
	case SchemeCBS:
		return "cbs"
	case SchemeNICBS:
		return "ni-cbs"
	case SchemeNaive:
		return "naive"
	case SchemeDoubleCheck:
		return "double-check"
	case SchemeRinger:
		return "ringer"
	default:
		return fmt.Sprintf("scheme(%d)", uint8(k))
	}
}

// ParseScheme maps a scheme name (as printed by String) to its kind.
func ParseScheme(name string) (SchemeKind, error) {
	for _, k := range []SchemeKind{SchemeCBS, SchemeNICBS, SchemeNaive, SchemeDoubleCheck, SchemeRinger} {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("%w: unknown scheme %q", ErrBadConfig, name)
}

// SchemeSpec parameterizes a verification scheme for one task assignment.
// The supervisor embeds it in the assignment so the participant knows which
// protocol to speak.
type SchemeSpec struct {
	// Kind selects the scheme.
	Kind SchemeKind
	// M is the sample count (CBS/NI-CBS/naive) or planted-ringer count.
	M int
	// ChainIters is the per-step base-hash count of g for NI-CBS (the
	// Eq. 5 cost dial); ignored elsewhere. Minimum 1.
	ChainIters int
	// SubtreeHeight enables the Section 3.3 storage-bounded prover when
	// positive (CBS/NI-CBS only).
	SubtreeHeight int
	// WindowTasks, when positive, enables rolling window commitments on a
	// long-horizon stream: every WindowTasks settled tasks the participant
	// commits a Merkle root over the window's per-task stream digests and
	// answers the hash-chain-derived challenge for it.
	WindowTasks int
	// WindowSamples is the per-window sample count m of the rolling
	// commitment challenge. Required (>= 1) when WindowTasks > 0.
	WindowSamples int
}

// validate checks the spec ahead of a run.
func (s SchemeSpec) validate() error {
	switch s.Kind {
	case SchemeCBS, SchemeNICBS, SchemeNaive, SchemeDoubleCheck, SchemeRinger:
	default:
		return fmt.Errorf("%w: unknown scheme kind %d", ErrBadConfig, s.Kind)
	}
	if s.M < 1 {
		return fmt.Errorf("%w: sample count %d", ErrBadConfig, s.M)
	}
	if s.Kind == SchemeNICBS && s.ChainIters < 1 {
		return fmt.Errorf("%w: NI-CBS needs ChainIters >= 1, got %d", ErrBadConfig, s.ChainIters)
	}
	if s.SubtreeHeight < 0 {
		return fmt.Errorf("%w: negative subtree height", ErrBadConfig)
	}
	if s.WindowTasks < 0 || s.WindowTasks > maxWindowCommitTasks {
		return fmt.Errorf("%w: window of %d tasks (max %d)", ErrBadConfig, s.WindowTasks, maxWindowCommitTasks)
	}
	if s.WindowTasks > 0 {
		if s.WindowSamples < 1 || s.WindowSamples > s.WindowTasks {
			return fmt.Errorf("%w: %d window samples for a %d-task window",
				ErrBadConfig, s.WindowSamples, s.WindowTasks)
		}
		if s.WindowSamples > maxWindowCommitProofs {
			return fmt.Errorf("%w: %d window samples (max %d)", ErrBadConfig, s.WindowSamples, maxWindowCommitProofs)
		}
	} else if s.WindowSamples != 0 {
		return fmt.Errorf("%w: window samples without a window", ErrBadConfig)
	}
	return nil
}

// Task is one unit of assigned work: evaluate f on the absolute inputs
// [Start, Start+N).
type Task struct {
	// ID identifies the task in reports.
	ID uint64
	// Start is the first absolute input of the window.
	Start uint64
	// N is the window length |D|.
	N uint64
	// Workload names the registered function f.
	Workload string
	// Seed instantiates the workload.
	Seed uint64
}

// maxTaskSize bounds in-memory simulation tasks.
const maxTaskSize = 1 << 26

func (t Task) validate() error {
	if t.N < 1 {
		return fmt.Errorf("%w: empty task domain", ErrBadConfig)
	}
	if t.N > maxTaskSize {
		return fmt.Errorf("%w: %d inputs (max %d)", ErrTaskTooLarge, t.N, maxTaskSize)
	}
	if t.Workload == "" {
		return fmt.Errorf("%w: task without workload", ErrBadConfig)
	}
	return nil
}

// Report is one screened result: the string s = S(x, f(x)) the participant
// sends for a "valuable" output.
type Report struct {
	// X is the absolute input.
	X uint64
	// S is the screener string.
	S string
}

// Verdict is the supervisor's final ruling on a task execution.
type Verdict struct {
	// Accepted is true when verification passed.
	Accepted bool
	// Reason explains a rejection; empty when accepted.
	Reason string
}
