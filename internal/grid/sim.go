package grid

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"uncheatgrid/internal/transport"
)

// SimConfig describes a population run: a supervisor distributing tasks
// over a mixed honest/cheating participant pool, verified with one scheme.
type SimConfig struct {
	// Spec selects the verification scheme.
	Spec SchemeSpec
	// Workload names the registered function f; Seed instantiates it.
	Workload string
	Seed     uint64
	// TaskSize is |D| per task; Tasks is how many windows to assign.
	TaskSize int
	Tasks    int
	// Honest, SemiHonest, and Malicious size the participant pool.
	Honest     int
	SemiHonest int
	Malicious  int
	// HonestyRatio is r for the semi-honest participants.
	HonestyRatio float64
	// CorruptProb is the report-corruption probability for malicious
	// participants.
	CorruptProb float64
	// Replicas is the double-check group size (default 2). With 2
	// replicas a disagreement cannot be attributed, so both sides are
	// rejected; 3 or more lets the majority convict the dissenter.
	Replicas int
	// Blacklist removes a participant from scheduling after its first
	// rejected task — the supervisor's natural response to detection.
	Blacklist bool
	// CrossCheckReports enables the sampled-index screener cross-check.
	CrossCheckReports bool
	// Workers sets how many participants are verified concurrently.
	// Values <= 1 run the legacy serial scheduler; larger values drive a
	// SupervisorPool. The report is identical for equal seeds whatever the
	// worker count — task randomness is derived per task ID, and the
	// pooled scheduler preserves the serial round-robin assignment
	// (including blacklisting, which both schedulers apply before any
	// participant can be picked twice). The double-check scheme runs
	// serially under Workers (its barrier spans connections); use
	// PipelineWindow to pipeline it.
	Workers int
	// PipelineWindow, when > 0, replaces the per-task dialogue with
	// pipelined multi-task sessions: every participant connection carries up
	// to PipelineWindow concurrent task exchanges in batched frames, and
	// connections claim tasks from a shared queue (work stealing). Unlike
	// Workers, the task→participant pairing then depends on scheduling;
	// each (task, participant) verdict is still deterministic, and the
	// report is recorded in task order. Blacklisting retires a participant
	// from claiming after its first rejection, but tasks already in flight
	// on it still finish. PipelineWindow takes precedence over Workers.
	//
	// The double-check scheme pipelines too: replica groups are pre-placed
	// round-robin exactly like the serial scheduler picks them (so verdicts
	// are byte-identical to the dialogue run for equal seeds), each
	// replica's upload overlaps other tasks inside its connection's window,
	// and only the comparison waits at a cross-connection rendezvous. Since
	// groups are placed up front, Blacklist cannot recall a rejected
	// participant's pre-placed replicas — replication itself is the defense
	// there — so replicated pipelined runs with Blacklist diverge from the
	// serial scheduler's pairing.
	PipelineWindow int
	// Broker routes every supervisor↔participant link through one
	// GRACE-style BrokerHub (Section 4): each participant registers a
	// hub link under its identity, each supervisor connection carries a
	// hello naming its worker, and the hub binds the pair and relays —
	// re-coalescing batch frames at the relay hop. Faults (DropProb /
	// GarbleProb) then apply to the supervisor↔hub leg, the WAN hop of the
	// GRACE deployment: a quarantined route is recovered by redialing
	// through the hub, whose identity routing re-binds the resumed
	// exchange to the same participant, so verdicts remain byte-identical
	// to a clean direct run.
	Broker bool
	// Routes, when > 0, sets how many concurrent supervisor routes a
	// brokered pipelined run opens — at least one per participant, with any
	// surplus distributed round-robin as extra routes to the same
	// participants, all multiplexed over the supervisor's physical hub
	// link(s) and fed from the shared work-stealing queue. 0 keeps the
	// default of exactly one route per participant. Requires Broker and
	// PipelineWindow > 0; values below the participant count are rejected.
	Routes int
	// DropProb and GarbleProb inject transport faults on every connection
	// (send side, both directions, seeded deterministically from Seed):
	// frames silently vanish or have one bit flipped in transit. Faults
	// require PipelineWindow > 0 — only pipelined sessions carry the
	// integrity checks, receive watchdog, and reconnect-and-resume machinery
	// that recover from them. Each (task, participant) verdict is unaffected
	// by injected faults: resumed exchanges replay their protocol position
	// and restarted ones re-derive their randomness from the task seed.
	DropProb, GarbleProb float64
	// ReconnectLimit bounds replacement connections per participant under
	// fault injection; 0 selects the default (8).
	ReconnectLimit int
	// FaultRecvTimeout is the session receive watchdog that turns silently
	// dropped frames into reconnects; 0 selects the default (2s). It must
	// exceed the worst-case per-task participant compute time.
	FaultRecvTimeout time.Duration
	// Stream switches the run to long-horizon streaming mode: tasks are
	// drawn lazily from a source (memory stays O(window) however large
	// Tasks is), placement is pinned round-robin for determinism, and —
	// with Spec.WindowTasks > 0 — every participant carries hash-chained
	// rolling window commitments verified per link. Requires
	// PipelineWindow > 0; incompatible with fault injection, Routes,
	// Blacklist, and the double-check scheme. Broker is supported.
	Stream bool
	// CheckpointEvery, in stream mode, splits the run into segments of
	// that many tasks; each segment ends with a checkpoint barrier where
	// every participant persists its durable state under CheckpointDir and
	// the supervisor writes its own progress file. 0 disables periodic
	// checkpoints (a single segment).
	CheckpointEvery int
	// CheckpointDir roots the checkpoint files of a stream run. A run
	// started over a directory holding a matching supervisor checkpoint
	// resumes from it instead of starting over.
	CheckpointDir string
	// KillAfter, in stream mode, injects a crash: after that many settled
	// tasks the whole run — supervisor pool, sessions, participants — is
	// torn down mid-segment and restarted from the last durable
	// checkpoint. The final report must be byte-identical to an
	// uninterrupted run's (the checkpoint/restore acceptance criterion).
	// Requires CheckpointEvery > 0 and CheckpointDir.
	KillAfter int
	// KillTarget selects the KillAfter crash's victim.
	// KillTargetSupervisor (or empty) is the classic drill: the whole
	// attempt dies and restarts from the checkpoint files.
	// KillTargetParticipant crashes the participant pool mid-segment while
	// the supervisor survives: participants are rebuilt from their durable
	// checkpoints via RestoreCheckpoint, the supervisor rolls its window
	// ledgers back to the matching barrier from in-memory Snapshot copies,
	// and the aborted segment re-runs. Verdicts and window accounting must
	// match an uninterrupted run's either way; only the supervisor's eval
	// counter differs under a participant crash, because the surviving
	// supervisor honestly pays for re-verifying the aborted segment.
	// Requires KillAfter.
	KillTarget string
}

// KillTarget values for SimConfig: which side the kill drill takes down.
const (
	KillTargetSupervisor  = "supervisor"
	KillTargetParticipant = "participant"
)

// faulty reports whether fault injection is enabled.
func (c SimConfig) faulty() bool { return c.DropProb > 0 || c.GarbleProb > 0 }

func (c SimConfig) participants() int { return c.Honest + c.SemiHonest + c.Malicious }

func (c SimConfig) validate() error {
	if err := c.Spec.validate(); err != nil {
		return err
	}
	if c.Workload == "" {
		return fmt.Errorf("%w: no workload", ErrBadConfig)
	}
	if c.TaskSize < 1 || c.Tasks < 1 {
		return fmt.Errorf("%w: need TaskSize >= 1 and Tasks >= 1", ErrBadConfig)
	}
	if c.participants() < 1 {
		return fmt.Errorf("%w: empty participant pool", ErrBadConfig)
	}
	if c.Workers < 0 {
		return fmt.Errorf("%w: negative worker count %d", ErrBadConfig, c.Workers)
	}
	if c.PipelineWindow < 0 {
		return fmt.Errorf("%w: negative pipeline window %d", ErrBadConfig, c.PipelineWindow)
	}
	if c.DropProb < 0 || c.DropProb >= 1 || c.GarbleProb < 0 || c.GarbleProb >= 1 {
		return fmt.Errorf("%w: fault probabilities must lie in [0, 1)", ErrBadConfig)
	}
	if c.faulty() && c.PipelineWindow < 1 {
		return fmt.Errorf("%w: fault injection requires pipelined sessions (PipelineWindow > 0)", ErrBadConfig)
	}
	if c.Routes < 0 {
		return fmt.Errorf("%w: negative route count %d", ErrBadConfig, c.Routes)
	}
	if c.Routes > 0 {
		if !c.Broker || c.PipelineWindow < 1 {
			return fmt.Errorf("%w: Routes requires Broker and PipelineWindow > 0", ErrBadConfig)
		}
		if c.Routes < c.participants() {
			return fmt.Errorf("%w: Routes = %d below the %d-participant pool (need one route each)",
				ErrBadConfig, c.Routes, c.participants())
		}
	}
	if c.ReconnectLimit < 0 {
		return fmt.Errorf("%w: negative reconnect limit %d", ErrBadConfig, c.ReconnectLimit)
	}
	if c.FaultRecvTimeout < 0 {
		return fmt.Errorf("%w: negative fault receive timeout %v", ErrBadConfig, c.FaultRecvTimeout)
	}
	if c.Spec.Kind == SchemeDoubleCheck {
		if c.Replicas != 0 && c.Replicas < 2 {
			return fmt.Errorf("%w: double-check needs >= 2 replicas", ErrBadConfig)
		}
		if c.participants() < c.replicaCount() {
			return fmt.Errorf("%w: double-check needs >= %d participants", ErrBadConfig, c.replicaCount())
		}
	}
	if c.CheckpointEvery < 0 || c.KillAfter < 0 {
		return fmt.Errorf("%w: negative checkpoint interval or kill point", ErrBadConfig)
	}
	switch c.KillTarget {
	case "", KillTargetSupervisor, KillTargetParticipant:
	default:
		return fmt.Errorf("%w: unknown KillTarget %q", ErrBadConfig, c.KillTarget)
	}
	if c.KillTarget != "" && c.KillAfter == 0 {
		return fmt.Errorf("%w: KillTarget requires KillAfter", ErrBadConfig)
	}
	if c.Stream {
		if c.PipelineWindow < 1 {
			return fmt.Errorf("%w: Stream requires pipelined sessions (PipelineWindow > 0)", ErrBadConfig)
		}
		if c.Spec.Kind == SchemeDoubleCheck {
			return fmt.Errorf("%w: Stream does not support the double-check scheme", ErrBadConfig)
		}
		if c.faulty() {
			return fmt.Errorf("%w: Stream is incompatible with fault injection", ErrBadConfig)
		}
		if c.Routes > 0 {
			return fmt.Errorf("%w: Stream is incompatible with extra Routes", ErrBadConfig)
		}
		if c.Blacklist {
			return fmt.Errorf("%w: Stream is incompatible with Blacklist", ErrBadConfig)
		}
		if c.CheckpointEvery > 0 && c.CheckpointDir == "" {
			return fmt.Errorf("%w: CheckpointEvery requires CheckpointDir", ErrBadConfig)
		}
		if c.KillAfter > 0 && (c.CheckpointEvery < 1 || c.CheckpointDir == "") {
			return fmt.Errorf("%w: KillAfter requires CheckpointEvery and CheckpointDir", ErrBadConfig)
		}
	} else {
		if c.Spec.WindowTasks > 0 {
			return fmt.Errorf("%w: window commitments (Spec.WindowTasks) require Stream", ErrBadConfig)
		}
		if c.CheckpointEvery != 0 || c.CheckpointDir != "" || c.KillAfter != 0 {
			return fmt.Errorf("%w: checkpoint options require Stream", ErrBadConfig)
		}
	}
	return nil
}

// replicaCount returns the effective double-check group size.
func (c SimConfig) replicaCount() int {
	if c.Replicas < 2 {
		return 2
	}
	return c.Replicas
}

// ParticipantSummary is one pool member's line in the simulation report.
type ParticipantSummary struct {
	// ID labels the participant; Behavior names its persona.
	ID       string
	Behavior string
	// Cheater records ground truth (semi-honest or malicious).
	Cheater bool
	// Tasks, Accepted, Rejected count assignments and verdicts.
	Tasks, Accepted, Rejected int
	// FEvals counts the participant's evaluations of f.
	FEvals int64
	// BytesSent and BytesRecv are measured at the participant endpoint,
	// summed across every connection (reconnects included).
	BytesSent, BytesRecv int64
	// Blacklisted reports whether scheduling dropped this participant.
	Blacklisted bool
	// Reconnects counts replacement connections dialed to this participant
	// after transport faults quarantined earlier ones.
	Reconnects int
}

// TaskVerdict pairs a task with the supervisor's ruling on it — the
// authoritative per-task record (a participant may never learn its verdict
// when the delivery frame is lost to a fault; the supervisor's ruling
// stands regardless).
type TaskVerdict struct {
	TaskID  uint64
	Verdict Verdict
}

// SimReport aggregates a simulation run.
type SimReport struct {
	// Scheme names the verification scheme used.
	Scheme string
	// PipelineWindow echoes the session window of a pipelined run; 0 means
	// the per-task dialogue was used.
	PipelineWindow int
	// Participants summarizes each pool member.
	Participants []ParticipantSummary
	// TaskVerdicts records the supervisor's ruling per executed task, in
	// task order (replicas repeat the ID).
	TaskVerdicts []TaskVerdict
	// Reports collects every screened result received by the supervisor.
	Reports []Report
	// TasksAssigned counts task executions (replicas count individually).
	TasksAssigned int
	// CheatersDetected counts cheating participants with >= 1 rejection;
	// CheatersTotal counts cheating participants in the pool.
	CheatersDetected, CheatersTotal int
	// HonestAccused counts honest participants with >= 1 rejection —
	// the false positives.
	HonestAccused int
	// SupervisorBytesSent/Recv total the supervisor-side traffic.
	SupervisorBytesSent, SupervisorBytesRecv int64
	// SupervisorEvals counts supervisor-side f evaluations spent verifying.
	SupervisorEvals int64
	// Brokered reports whether the run was relayed through a BrokerHub;
	// BrokerRelayedMsgs and BrokerRelayedBytes then total the frames the
	// hub forwarded (egress, after relay-hop re-batching).
	Brokered                              bool
	BrokerRelayedMsgs, BrokerRelayedBytes int64
	// BrokerMuxLinks counts physical multiplexed supervisor links the hub
	// accepted over the run; BrokerRoutesOpened counts the routes carried on
	// them. A clean brokered run shows every route sharing one link; a
	// faulty run adds one link per quarantine-and-redial.
	BrokerMuxLinks, BrokerRoutesOpened int64
	// BrokerControlMsgs/Bytes total the hub's outgoing mux control traffic
	// (credit grants and route-close notices); BrokerControlInMsgs/Bytes
	// the incoming mirror (supervisor credit grants — the hub→supervisor
	// flow-control loop); BrokerMuxOverheadIngress/Egress are the signed
	// envelope-framing ledgers. None of these bytes appear in
	// BrokerRelayedBytes or any RouteStats direction.
	BrokerControlMsgs, BrokerControlBytes             int64
	BrokerControlInMsgs, BrokerControlInBytes         int64
	BrokerMuxOverheadIngress, BrokerMuxOverheadEgress int64
	// BrokerRoutes snapshots the hub's per-worker relay accounting at
	// shutdown, keyed by participant identity.
	BrokerRoutes map[string]RouteStats
	// WindowsSettled and WindowViolations total the rolling-window
	// commitment verification of a streaming run (Spec.WindowTasks > 0):
	// windows whose sampled audit paths all verified against the committed
	// per-task digests, and windows that failed verification. Restarted
	// runs carry the counts across the restore.
	WindowsSettled, WindowViolations uint64
	// WindowsPending counts decided tasks not yet covered by a full window
	// commitment when the run shut down (the ragged tail of the stream).
	WindowsPending int
}

// DetectionRate is CheatersDetected / CheatersTotal (1 when no cheaters).
func (r *SimReport) DetectionRate() float64 {
	if r.CheatersTotal == 0 {
		return 1
	}
	return float64(r.CheatersDetected) / float64(r.CheatersTotal)
}

// simWorker pairs a participant with its connection endpoints. Under fault
// injection a worker accumulates connections: the original dial plus one per
// reconnect, each serving on its own goroutine. Summaries aggregate traffic
// across all of them.
type simWorker struct {
	participant *Participant
	idx         int
	cheater     bool
	rejections  int
	blacklisted bool
	// hub, when set, routes every dial through the broker instead of a
	// direct pipe; muxes then owns the supervisor-side physical link(s) the
	// routes are multiplexed over.
	hub   *BrokerHub
	muxes *muxManager

	mu        sync.Mutex
	supConns  []transport.Conn // supervisor-side endpoints, in dial order
	partConns []transport.Conn // participant-side endpoints, in dial order
	serveErrs []chan error
	// extraRoutes counts dials made to widen the route fan-out (SimConfig
	// Routes) rather than to replace a quarantined connection, so the
	// reconnect tally stays honest.
	extraRoutes int
}

// muxManager owns the supervisor-side physical hub links of a brokered run.
// Every supervisor route is multiplexed: a clean run shares ONE physical
// link — the tentpole topology, all routes riding one reader/writer pair at
// each end — while a faulty run opens one muxed link per dial so each dial
// keeps its own deterministic fault plan and its own quarantine-and-redial
// lifecycle, exactly like the dedicated links it replaces.
type muxManager struct {
	hub *BrokerHub

	mu     sync.Mutex
	shared *SupervisorMux
	muxes  []*SupervisorMux
}

func newMuxManager(hub *BrokerHub) *muxManager { return &muxManager{hub: hub} }

// sharedMux lazily dials the run's single clean physical link.
func (mm *muxManager) sharedMux() *SupervisorMux {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if mm.shared == nil {
		supConn, hubUp := transport.Pipe(transport.WithBuffer(8))
		go func() { _ = mm.hub.Attach(hubUp) }()
		m, err := OpenMux(supConn, "supervisor")
		if err != nil {
			_ = supConn.Close()
			return nil
		}
		mm.shared = m
		mm.muxes = append(mm.muxes, m)
	}
	return mm.shared
}

// openRoute opens one supervisor route to the named worker. Clean runs open
// it on the shared link; faulty runs dial a fresh muxed link wrapped with
// the (worker, attempt)-seeded fault plan on both ends, preserving the
// per-dial fault determinism and reconnect budgets of the pre-mux topology.
// Dial-time failures yield a dead connection — the session layer's
// quarantine machinery treats it like any lost link and redials.
func (mm *muxManager) openRoute(cfg SimConfig, w *simWorker, attempt int, worker string) transport.Conn {
	if !cfg.faulty() {
		if m := mm.sharedMux(); m != nil {
			if conn, err := m.OpenRoute(worker); err == nil {
				return conn
			}
		}
		return deadConn()
	}
	supConn, hubUp := transport.Pipe(transport.WithBuffer(8))
	sup := transport.WithFaults(supConn, transport.FaultPlan{
		DropProb:   cfg.DropProb,
		GarbleProb: cfg.GarbleProb,
		Seed:       faultSeed(cfg.Seed, w.idx, attempt, 0),
	})
	hubSide := transport.WithFaults(hubUp, transport.FaultPlan{
		DropProb:   cfg.DropProb,
		GarbleProb: cfg.GarbleProb,
		Seed:       faultSeed(cfg.Seed, w.idx, attempt, 1),
	})
	// The hub-side attach runs on its own goroutine: a dropped or garbled
	// mux hello legitimately strands the handshake until the hub's bind
	// watchdog (or the supervisor's receive watchdog) kills the link.
	go func() { _ = mm.hub.Attach(hubSide) }()
	m, err := OpenMux(sup, fmt.Sprintf("sup-%s-%d", worker, attempt))
	if err != nil {
		_ = sup.Close()
		return deadConn()
	}
	mm.mu.Lock()
	mm.muxes = append(mm.muxes, m)
	mm.mu.Unlock()
	conn, err := m.OpenRoute(worker)
	if err != nil {
		return deadConn()
	}
	return conn
}

// close tears down every physical link the run opened, joining the mux
// readers so no goroutine outlives the simulation.
func (mm *muxManager) close() {
	mm.mu.Lock()
	muxes := mm.muxes
	mm.muxes, mm.shared = nil, nil
	mm.mu.Unlock()
	for _, m := range muxes {
		_ = m.Close()
	}
}

// deadConn returns a connection that is already closed, for dial paths that
// failed before producing a usable endpoint.
func deadConn() transport.Conn {
	a, b := transport.Pipe()
	_ = b.Close()
	_ = a.Close()
	return a
}

// faultSeed derives a distinct, reproducible fault-plan seed per (run,
// worker, dial, direction).
func faultSeed(seed uint64, worker, dial, direction int) int64 {
	var buf [32]byte
	binary.LittleEndian.PutUint64(buf[:8], seed)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(worker))
	binary.LittleEndian.PutUint64(buf[16:24], uint64(dial))
	binary.LittleEndian.PutUint64(buf[24:], uint64(direction))
	sum := sha256.Sum256(buf[:])
	return int64(binary.LittleEndian.Uint64(sum[:8]))
}

// dial opens a fresh connection to the worker's participant — direct, or
// routed through the broker hub when the run is brokered — wraps the
// supervisor-facing leg with the configured fault plan, and starts a serve
// goroutine on the participant side. It returns the supervisor-side
// endpoint.
func (w *simWorker) dial(cfg SimConfig) transport.Conn {
	if w.hub != nil {
		return w.dialBrokered(cfg)
	}
	supConn, partConn := transport.Pipe(transport.WithBuffer(8))
	var sup, part transport.Conn = supConn, partConn
	w.mu.Lock()
	attempt := len(w.supConns)
	w.mu.Unlock()
	if cfg.faulty() {
		sup = transport.WithFaults(sup, transport.FaultPlan{
			DropProb:   cfg.DropProb,
			GarbleProb: cfg.GarbleProb,
			Seed:       faultSeed(cfg.Seed, w.idx, attempt, 0),
		})
		part = transport.WithFaults(part, transport.FaultPlan{
			DropProb:   cfg.DropProb,
			GarbleProb: cfg.GarbleProb,
			Seed:       faultSeed(cfg.Seed, w.idx, attempt, 1),
		})
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- w.participant.Serve(part) }()
	w.mu.Lock()
	w.supConns = append(w.supConns, sup)
	w.partConns = append(w.partConns, part)
	w.serveErrs = append(w.serveErrs, serveErr)
	w.mu.Unlock()
	return sup
}

// dialBrokered opens a fresh identity-routed path through the broker hub:
// a clean hub↔participant link registered under the participant's ID (the
// LAN leg of the GRACE deployment) and a supervisor route multiplexed over
// a physical supervisor↔hub link — the WAN leg, where the fault plan
// applies — whose open hello asks the hub to bind it to that worker.
// Registration is synchronous, so the subsequent bind never waits. It
// returns the supervisor-side route endpoint.
func (w *simWorker) dialBrokered(cfg SimConfig) transport.Conn {
	name := w.participant.ID()
	hubDown, partConn := transport.Pipe(transport.WithBuffer(8))
	_ = HelloWorker(partConn, name)
	_ = w.hub.Attach(hubDown)
	serveErr := make(chan error, 1)
	go func() { serveErr <- w.participant.Serve(partConn) }()

	w.mu.Lock()
	attempt := len(w.supConns)
	w.mu.Unlock()
	sup := w.muxes.openRoute(cfg, w, attempt, name)
	w.mu.Lock()
	w.supConns = append(w.supConns, sup)
	w.partConns = append(w.partConns, partConn)
	w.serveErrs = append(w.serveErrs, serveErr)
	w.mu.Unlock()
	return sup
}

// crash abruptly severs every connection the worker holds, both ends, the
// way a process death would: serve loops exit with transport errors rather
// than a clean EOF, and any in-flight exchange is lost. The worker's durable
// checkpoint files are untouched — that is what a restarted participant
// recovers from.
func (w *simWorker) crash() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, c := range w.partConns {
		_ = c.Close()
	}
	for _, c := range w.supConns {
		_ = c.Close()
	}
}

// supConn returns the first (and in fault-free runs, only) supervisor-side
// endpoint.
func (w *simWorker) supConn() transport.Conn {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.supConns[0]
}

// dials reports how many connections were opened to this participant.
func (w *simWorker) dials() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.supConns)
}

// trafficTotals sums the byte counters across every connection the worker
// ever held, at the given side's endpoints.
func (w *simWorker) trafficTotals(participantSide bool) (sent, recv int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	conns := w.supConns
	if participantSide {
		conns = w.partConns
	}
	for _, c := range conns {
		sent += c.Stats().BytesSent()
		recv += c.Stats().BytesRecv()
	}
	return sent, recv
}

// RunSim executes the configured population run over in-memory pipes and
// returns the aggregated report. The supervisor assigns tasks round-robin
// over the (non-blacklisted) pool; double-check groups consecutive workers.
// With Workers > 1 the non-replicated schemes verify participants
// concurrently through a SupervisorPool; per-task seed derivation keeps the
// report identical to the serial run. With PipelineWindow > 0 tasks flow
// through pipelined multi-task sessions with work stealing instead (see
// SimConfig.PipelineWindow for the reproducibility trade-off).
//
//gridlint:credit report assembly sums per-worker traffic totals once, at shutdown
func RunSim(cfg SimConfig) (*SimReport, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	supCfg := SupervisorConfig{
		Spec:              cfg.Spec,
		Seed:              int64(cfg.Seed) ^ 0x5c4ed,
		CrossCheckReports: cfg.CrossCheckReports,
	}
	if cfg.Stream {
		return runStreamSim(cfg, supCfg)
	}

	var hub *BrokerHub
	var muxes *muxManager
	if cfg.Broker {
		hub = NewBrokerHub()
		muxes = newMuxManager(hub)
	}
	workers, err := buildPool(cfg, hub, muxes)
	if err != nil {
		if muxes != nil {
			muxes.close()
		}
		if hub != nil {
			_ = hub.Close()
		}
		return nil, err
	}
	// Closing the hub first tears down every route (and any orphaned
	// registered link a faulty handshake left behind), so the participants'
	// serve loops — which shutdownPool joins — always observe EOF; the mux
	// links close next, joining their readers before the serve joins.
	cleanup := func() error {
		if hub != nil {
			_ = hub.Close()
		}
		if muxes != nil {
			muxes.close()
		}
		return shutdownPool(workers)
	}

	report := &SimReport{Scheme: cfg.Spec.Kind.String()}
	var scheduleErr error
	var supervisorEvals func() int64
	if cfg.PipelineWindow > 0 {
		report.PipelineWindow = cfg.PipelineWindow
		pool, err := NewSupervisorPool(supCfg, cfg.participants()*cfg.PipelineWindow)
		if err != nil {
			_ = cleanup()
			return nil, err
		}
		scheduleErr = scheduleTasksPipelined(cfg, pool, workers, report)
		supervisorEvals = pool.VerifyEvals
	} else if cfg.Workers > 1 && cfg.Spec.Kind != SchemeDoubleCheck {
		pool, err := NewSupervisorPool(supCfg, cfg.Workers)
		if err != nil {
			_ = cleanup()
			return nil, err
		}
		scheduleErr = scheduleTasksPooled(cfg, pool, workers, report)
		supervisorEvals = pool.VerifyEvals
	} else {
		supervisor, err := NewSupervisor(supCfg)
		if err != nil {
			_ = cleanup()
			return nil, err
		}
		scheduleErr = scheduleTasks(cfg, supervisor, workers, report)
		supervisorEvals = supervisor.VerifyEvals
	}
	if scheduleErr != nil {
		_ = cleanup()
		return nil, scheduleErr
	}
	if err := cleanup(); err != nil {
		return nil, err
	}
	if hub != nil {
		// Close blocked until every relay pump exited, so these are final.
		report.Brokered = true
		report.BrokerRelayedMsgs = hub.RelayedMessages()
		report.BrokerRelayedBytes = hub.RelayedBytes()
		report.BrokerMuxLinks = hub.MuxLinks()
		report.BrokerRoutesOpened = hub.RoutesOpened()
		report.BrokerControlMsgs = hub.ControlMessages()
		report.BrokerControlBytes = hub.ControlBytes()
		report.BrokerControlInMsgs = hub.ControlIngressMessages()
		report.BrokerControlInBytes = hub.ControlIngressBytes()
		report.BrokerMuxOverheadIngress = hub.MuxOverheadIngressBytes()
		report.BrokerMuxOverheadEgress = hub.MuxOverheadEgressBytes()
		names := hub.Workers()
		sort.Strings(names)
		report.BrokerRoutes = make(map[string]RouteStats, len(names))
		for _, name := range names {
			if rs, ok := hub.WorkerStats(name); ok {
				report.BrokerRoutes[name] = rs
			}
		}
	}

	for _, w := range workers {
		totals := w.participant.Totals()
		partSent, partRecv := w.trafficTotals(true)
		summary := ParticipantSummary{
			ID:          w.participant.ID(),
			Behavior:    totals.Behavior,
			Cheater:     w.cheater,
			Tasks:       totals.Tasks,
			Accepted:    totals.Accepted,
			Rejected:    totals.Rejected,
			FEvals:      totals.FEvals,
			BytesSent:   partSent,
			BytesRecv:   partRecv,
			Blacklisted: w.blacklisted,
			Reconnects:  w.dials() - 1 - w.extraRoutes,
		}
		report.Participants = append(report.Participants, summary)
		if w.cheater {
			report.CheatersTotal++
			if totals.Rejected > 0 {
				report.CheatersDetected++
			}
		} else if totals.Rejected > 0 {
			report.HonestAccused++
		}
		supSent, supRecv := w.trafficTotals(false)
		report.SupervisorBytesSent += supSent
		report.SupervisorBytesRecv += supRecv
	}
	report.SupervisorEvals = supervisorEvals()
	return report, nil
}

// buildPool constructs the participant pool — semi-honest cheaters first,
// then malicious, then honest workers — and dials each worker's first
// connection (starting its serve goroutine). A non-nil hub routes every
// connection through the broker as a multiplexed route on muxes.
func buildPool(cfg SimConfig, hub *BrokerHub, muxes *muxManager) ([]*simWorker, error) {
	var workers []*simWorker
	var popts []ParticipantOption
	if cfg.CheckpointDir != "" {
		popts = append(popts, WithCheckpointDir(cfg.CheckpointDir))
	}
	add := func(id string, factory ProducerFactory, cheater bool) error {
		p, err := NewParticipant(id, factory, popts...)
		if err != nil {
			return err
		}
		w := &simWorker{participant: p, idx: len(workers), cheater: cheater, hub: hub, muxes: muxes}
		w.dial(cfg)
		workers = append(workers, w)
		return nil
	}
	for i := 0; i < cfg.SemiHonest; i++ {
		seed := cfg.Seed*1000 + uint64(i)
		if err := add(fmt.Sprintf("semihonest-%d", i),
			SemiHonestFactory(cfg.HonestyRatio, seed), true); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Malicious; i++ {
		seed := cfg.Seed*2000 + uint64(i)
		if err := add(fmt.Sprintf("malicious-%d", i),
			MaliciousFactory(cfg.CorruptProb, seed), true); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Honest; i++ {
		if err := add(fmt.Sprintf("honest-%d", i), HonestFactory, false); err != nil {
			return nil, err
		}
	}
	return workers, nil
}

// nextEligible returns the next non-blacklisted worker in round-robin
// order starting at *next (which it advances), or nil when the whole pool
// is blacklisted. Both schedulers share it so their assignment order stays
// in lockstep — the basis of the serial/pooled reproducibility guarantee.
func nextEligible(workers []*simWorker, next *int) *simWorker {
	for tries := 0; tries < len(workers); tries++ {
		w := workers[*next%len(workers)]
		*next++
		if !w.blacklisted {
			return w
		}
	}
	return nil
}

// taskFor builds the taskNum-th domain window of the run.
func taskFor(cfg SimConfig, taskNum int) Task {
	return Task{
		ID:       uint64(taskNum),
		Start:    uint64(taskNum) * uint64(cfg.TaskSize),
		N:        uint64(cfg.TaskSize),
		Workload: cfg.Workload,
		Seed:     cfg.Seed,
	}
}

// scheduleTasks drives the supervisor across the task list.
func scheduleTasks(cfg SimConfig, supervisor *Supervisor, workers []*simWorker, report *SimReport) error {
	next := 0
	pick := func() *simWorker { return nextEligible(workers, &next) }

	for taskNum := 0; taskNum < cfg.Tasks; taskNum++ {
		task := taskFor(cfg, taskNum)
		if cfg.Spec.Kind == SchemeDoubleCheck {
			k := cfg.replicaCount()
			group := make([]*simWorker, 0, k)
			conns := make([]transport.Conn, 0, k)
			for tries := 0; len(group) < k && tries < 2*len(workers); tries++ {
				w := pick()
				if w == nil {
					return nil // everyone blacklisted
				}
				if containsWorker(group, w) {
					continue
				}
				group = append(group, w)
				conns = append(conns, w.supConn())
			}
			if len(group) < k {
				return nil // pool too small for distinct replicas; stop cleanly
			}
			outcomes, err := supervisor.RunReplicated(conns, task)
			if err != nil {
				return err
			}
			report.TasksAssigned += len(outcomes)
			for i, outcome := range outcomes {
				recordOutcome(cfg, group[i], outcome, report)
			}
			continue
		}

		w := pick()
		if w == nil {
			return nil // everyone blacklisted
		}
		outcome, err := supervisor.RunTask(w.supConn(), task)
		if err != nil {
			return err
		}
		report.TasksAssigned++
		recordOutcome(cfg, w, outcome, report)
	}
	return nil
}

// scheduleTasksPooled drives the task list through a SupervisorPool.
//
// Without Blacklist, eligibility never changes mid-run: the whole task list
// is assigned round-robin up front and submitted as one batch, so workers
// never idle at artificial barriers (the pool serializes per connection).
//
// With Blacklist, tasks go out in waves: each wave assigns at most one task
// per eligible (distinct, non-blacklisted) participant, runs concurrently,
// then applies verdicts — and with them blacklisting — before the next
// wave. A wave ends exactly where the serial round-robin would wrap, which
// is also the first point the serial scheduler could re-pick a blacklisted
// worker, so task-to-worker pairing is identical to the serial run in both
// modes; only wall-clock time changes.
func scheduleTasksPooled(cfg SimConfig, pool *SupervisorPool, workers []*simWorker, report *SimReport) error {
	ctx := context.Background()
	next := 0
	taskNum := 0
	for taskNum < cfg.Tasks {
		batch := make([]Assignment, 0, cfg.Tasks-taskNum)
		batchWorkers := make([]*simWorker, 0, cfg.Tasks-taskNum)
		for taskNum < cfg.Tasks {
			w := nextEligible(workers, &next)
			if w == nil {
				break
			}
			if cfg.Blacklist && containsWorker(batchWorkers, w) {
				// Wrapped around the pool: close the wave so verdicts can
				// blacklist before this worker is assigned again.
				next--
				break
			}
			batch = append(batch, Assignment{Conn: w.supConn(), Task: taskFor(cfg, taskNum)})
			batchWorkers = append(batchWorkers, w)
			taskNum++
		}
		if len(batch) == 0 {
			return nil // everyone blacklisted
		}
		outcomes, err := pool.RunTasks(ctx, batch)
		if err != nil {
			return err
		}
		report.TasksAssigned += len(outcomes)
		for i, outcome := range outcomes {
			recordOutcome(cfg, batchWorkers[i], outcome, report)
		}
	}
	return nil
}

// scheduleTasksPipelined drives the whole task list through pipelined
// sessions with work stealing (SupervisorPool.RunTasksStream): every
// participant connection holds up to cfg.PipelineWindow tasks in flight and
// claims work from a shared queue. Outcomes are consumed as they stream in
// but recorded into the report in (task, replica) order, so the report
// layout does not depend on completion interleaving. Blacklisting retires a
// participant via TaskStream.Retire, which synchronously recalls its
// unstarted claims. Under fault injection the stream redials replacement
// connections to the same participant so quarantined exchanges resume
// mid-protocol. The double-check scheme runs replicated: groups are
// pre-placed round-robin (matching the serial scheduler's walk), uploads
// pipeline inside each window, and comparisons meet at per-task rendezvous
// barriers.
func scheduleTasksPipelined(cfg SimConfig, pool *SupervisorPool, workers []*simWorker, report *SimReport) error {
	// byConn maps every connection — original dials and fault-mode redials —
	// to its worker; mu guards it against concurrent redial registration.
	var mu sync.Mutex
	byConn := make(map[transport.Conn]*simWorker, len(workers))
	conns := make([]transport.Conn, len(workers))
	for i, w := range workers {
		conns[i] = w.supConn()
		byConn[w.supConn()] = w
	}
	// Routes beyond one-per-participant widen the fan-out round-robin: each
	// extra dial is another multiplexed route (plus a fresh participant-side
	// serve link) claiming tasks from the same work-stealing queue. The hub
	// parks only ONE registration per identity, and every dial re-registers
	// the worker — so before dialing an identity again, wait for its earlier
	// routes to bind and consume their registrations, or the new one would
	// replace (and close) a parked link and starve a pending route until the
	// bind timeout. Faulty runs skip the wait: their hellos may legitimately
	// be lost, and the stream's redial machinery recovers.
	binds := make(map[string]int64, len(workers))
	for j := len(workers); j < cfg.Routes; j++ {
		w := workers[j%len(workers)]
		name := w.participant.ID()
		if binds[name] == 0 {
			binds[name] = 1 // buildPool's initial dial
		}
		if !cfg.faulty() {
			deadline := time.Now().Add(5 * time.Second)
			for {
				st, ok := w.hub.WorkerStats(name)
				if ok && st.Binds >= binds[name] {
					break
				}
				if time.Now().After(deadline) {
					break // surface as a dead route, not a hang
				}
				time.Sleep(100 * time.Microsecond)
			}
		}
		c := w.dial(cfg)
		binds[name]++
		w.mu.Lock()
		w.extraRoutes++
		w.mu.Unlock()
		conns = append(conns, c)
		byConn[c] = w
	}
	tasks := make([]Task, cfg.Tasks)
	for i := range tasks {
		tasks[i] = taskFor(cfg, i)
	}

	var opts []StreamOption
	perTask := 1
	if cfg.Spec.Kind == SchemeDoubleCheck {
		perTask = cfg.replicaCount()
		opts = append(opts, WithReplicas(perTask))
	}
	if cfg.Broker {
		// Connections are broker routes, not participants: key replica
		// distinctness (and any future identity-aware scheduling) by the
		// worker each route is bound to, redials included.
		opts = append(opts, WithWorkerIdentity(func(c transport.Conn) string {
			mu.Lock()
			defer mu.Unlock()
			if w := byConn[c]; w != nil {
				return w.participant.ID()
			}
			return ""
		}))
	}
	if cfg.faulty() {
		reconnects := cfg.ReconnectLimit
		if reconnects == 0 {
			reconnects = 8
		}
		recvTimeout := cfg.FaultRecvTimeout
		if recvTimeout == 0 {
			recvTimeout = 2 * time.Second
		}
		opts = append(opts,
			WithStreamRecvTimeout(recvTimeout),
			WithMaxReconnects(reconnects),
			WithRedial(func(old transport.Conn) (transport.Conn, error) {
				mu.Lock()
				w := byConn[old]
				mu.Unlock()
				if w == nil {
					return nil, fmt.Errorf("%w: redial for unknown connection", ErrBadConfig)
				}
				conn := w.dial(cfg)
				mu.Lock()
				byConn[conn] = w
				mu.Unlock()
				return conn, nil
			}))
	}
	stream, err := pool.RunTasksStream(context.Background(), conns, tasks, cfg.PipelineWindow, opts...)
	if err != nil {
		return err
	}

	type completion struct {
		w       *simWorker
		outcome *TaskOutcome
	}
	var completed []completion
	for so := range stream.Outcomes() {
		mu.Lock()
		w := byConn[so.Conn]
		mu.Unlock()
		if cfg.Blacklist && !so.Outcome.Verdict.Accepted {
			w.blacklisted = true
			stream.Retire(so.Conn)
		}
		completed = append(completed, completion{w, so.Outcome})
	}
	if err := stream.Err(); err != nil {
		return err
	}

	// A shortfall is legitimate only when blacklisting retired the whole
	// pool (the serial scheduler stops cleanly there too); anything else
	// means connections were lost beyond the reconnect budget, which must
	// surface as a failure rather than a silently short report.
	if len(completed) < cfg.Tasks*perTask {
		blacklistedAll := true
		for _, w := range workers {
			if !w.blacklisted {
				blacklistedAll = false
				break
			}
		}
		if !blacklistedAll {
			return fmt.Errorf("grid: pipelined run completed %d of %d task executions: participant connections lost beyond recovery",
				len(completed), cfg.Tasks*perTask)
		}
	}

	// Record in (task, replica) order — the serial schedulers' layout.
	sort.Slice(completed, func(i, j int) bool {
		a, b := completed[i].outcome, completed[j].outcome
		if a.Task.ID != b.Task.ID {
			return a.Task.ID < b.Task.ID
		}
		return a.Replica < b.Replica
	})
	report.TasksAssigned = len(completed)
	for _, c := range completed {
		recordOutcome(cfg, c.w, c.outcome, report)
	}
	return nil
}

func recordOutcome(cfg SimConfig, w *simWorker, outcome *TaskOutcome, report *SimReport) {
	report.TaskVerdicts = append(report.TaskVerdicts, TaskVerdict{TaskID: outcome.Task.ID, Verdict: outcome.Verdict})
	report.Reports = append(report.Reports, outcome.Reports...)
	if !outcome.Verdict.Accepted {
		w.rejections++
		if cfg.Blacklist {
			w.blacklisted = true
		}
	}
}

func containsWorker(group []*simWorker, w *simWorker) bool {
	for _, g := range group {
		if g == w {
			return true
		}
	}
	return false
}

// shutdownPool closes every supervisor-side connection a worker ever held
// and waits for all its serve goroutines to exit, returning the first serve
// error.
func shutdownPool(workers []*simWorker) error {
	for _, w := range workers {
		w.mu.Lock()
		for _, c := range w.supConns {
			_ = c.Close()
		}
		w.mu.Unlock()
	}
	var firstErr error
	for _, w := range workers {
		w.mu.Lock()
		serveErrs := append([]chan error(nil), w.serveErrs...)
		w.mu.Unlock()
		for _, ch := range serveErrs {
			if err := <-ch; err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}
