package grid

import (
	"fmt"

	"uncheatgrid/internal/transport"
)

// SimConfig describes a population run: a supervisor distributing tasks
// over a mixed honest/cheating participant pool, verified with one scheme.
type SimConfig struct {
	// Spec selects the verification scheme.
	Spec SchemeSpec
	// Workload names the registered function f; Seed instantiates it.
	Workload string
	Seed     uint64
	// TaskSize is |D| per task; Tasks is how many windows to assign.
	TaskSize int
	Tasks    int
	// Honest, SemiHonest, and Malicious size the participant pool.
	Honest     int
	SemiHonest int
	Malicious  int
	// HonestyRatio is r for the semi-honest participants.
	HonestyRatio float64
	// CorruptProb is the report-corruption probability for malicious
	// participants.
	CorruptProb float64
	// Replicas is the double-check group size (default 2). With 2
	// replicas a disagreement cannot be attributed, so both sides are
	// rejected; 3 or more lets the majority convict the dissenter.
	Replicas int
	// Blacklist removes a participant from scheduling after its first
	// rejected task — the supervisor's natural response to detection.
	Blacklist bool
	// CrossCheckReports enables the sampled-index screener cross-check.
	CrossCheckReports bool
}

func (c SimConfig) participants() int { return c.Honest + c.SemiHonest + c.Malicious }

func (c SimConfig) validate() error {
	if err := c.Spec.validate(); err != nil {
		return err
	}
	if c.Workload == "" {
		return fmt.Errorf("%w: no workload", ErrBadConfig)
	}
	if c.TaskSize < 1 || c.Tasks < 1 {
		return fmt.Errorf("%w: need TaskSize >= 1 and Tasks >= 1", ErrBadConfig)
	}
	if c.participants() < 1 {
		return fmt.Errorf("%w: empty participant pool", ErrBadConfig)
	}
	if c.Spec.Kind == SchemeDoubleCheck {
		if c.Replicas != 0 && c.Replicas < 2 {
			return fmt.Errorf("%w: double-check needs >= 2 replicas", ErrBadConfig)
		}
		if c.participants() < c.replicaCount() {
			return fmt.Errorf("%w: double-check needs >= %d participants", ErrBadConfig, c.replicaCount())
		}
	}
	return nil
}

// replicaCount returns the effective double-check group size.
func (c SimConfig) replicaCount() int {
	if c.Replicas < 2 {
		return 2
	}
	return c.Replicas
}

// ParticipantSummary is one pool member's line in the simulation report.
type ParticipantSummary struct {
	// ID labels the participant; Behavior names its persona.
	ID       string
	Behavior string
	// Cheater records ground truth (semi-honest or malicious).
	Cheater bool
	// Tasks, Accepted, Rejected count assignments and verdicts.
	Tasks, Accepted, Rejected int
	// FEvals counts the participant's evaluations of f.
	FEvals int64
	// BytesSent and BytesRecv are measured at the participant endpoint.
	BytesSent, BytesRecv int64
	// Blacklisted reports whether scheduling dropped this participant.
	Blacklisted bool
}

// SimReport aggregates a simulation run.
type SimReport struct {
	// Scheme names the verification scheme used.
	Scheme string
	// Participants summarizes each pool member.
	Participants []ParticipantSummary
	// Reports collects every screened result received by the supervisor.
	Reports []Report
	// TasksAssigned counts task executions (replicas count individually).
	TasksAssigned int
	// CheatersDetected counts cheating participants with >= 1 rejection;
	// CheatersTotal counts cheating participants in the pool.
	CheatersDetected, CheatersTotal int
	// HonestAccused counts honest participants with >= 1 rejection —
	// the false positives.
	HonestAccused int
	// SupervisorBytesSent/Recv total the supervisor-side traffic.
	SupervisorBytesSent, SupervisorBytesRecv int64
	// SupervisorEvals counts supervisor-side f evaluations spent verifying.
	SupervisorEvals int64
}

// DetectionRate is CheatersDetected / CheatersTotal (1 when no cheaters).
func (r *SimReport) DetectionRate() float64 {
	if r.CheatersTotal == 0 {
		return 1
	}
	return float64(r.CheatersDetected) / float64(r.CheatersTotal)
}

// simWorker pairs a participant with its connection endpoints.
type simWorker struct {
	participant *Participant
	supConn     transport.Conn // supervisor-side endpoint
	partConn    transport.Conn // participant-side endpoint
	serveErr    chan error
	cheater     bool
	rejections  int
	blacklisted bool
}

// RunSim executes the configured population run over in-memory pipes and
// returns the aggregated report. The supervisor assigns tasks round-robin
// over the (non-blacklisted) pool; double-check groups consecutive workers.
func RunSim(cfg SimConfig) (*SimReport, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	supervisor, err := NewSupervisor(SupervisorConfig{
		Spec:              cfg.Spec,
		Seed:              int64(cfg.Seed) ^ 0x5c4ed,
		CrossCheckReports: cfg.CrossCheckReports,
	})
	if err != nil {
		return nil, err
	}

	workers, err := buildPool(cfg)
	if err != nil {
		return nil, err
	}
	for _, w := range workers {
		w := w
		go func() { w.serveErr <- w.participant.Serve(w.partConn) }()
	}

	report := &SimReport{Scheme: cfg.Spec.Kind.String()}
	if err := scheduleTasks(cfg, supervisor, workers, report); err != nil {
		shutdownPool(workers)
		return nil, err
	}
	if err := shutdownPool(workers); err != nil {
		return nil, err
	}

	for _, w := range workers {
		totals := w.participant.Totals()
		summary := ParticipantSummary{
			ID:          w.participant.ID(),
			Behavior:    totals.Behavior,
			Cheater:     w.cheater,
			Tasks:       totals.Tasks,
			Accepted:    totals.Accepted,
			Rejected:    totals.Rejected,
			FEvals:      totals.FEvals,
			BytesSent:   w.partConn.Stats().BytesSent(),
			BytesRecv:   w.partConn.Stats().BytesRecv(),
			Blacklisted: w.blacklisted,
		}
		report.Participants = append(report.Participants, summary)
		if w.cheater {
			report.CheatersTotal++
			if totals.Rejected > 0 {
				report.CheatersDetected++
			}
		} else if totals.Rejected > 0 {
			report.HonestAccused++
		}
		report.SupervisorBytesSent += w.supConn.Stats().BytesSent()
		report.SupervisorBytesRecv += w.supConn.Stats().BytesRecv()
	}
	report.SupervisorEvals = supervisor.VerifyEvals()
	return report, nil
}

// buildPool constructs the participant pool: semi-honest cheaters first,
// then malicious, then honest workers.
func buildPool(cfg SimConfig) ([]*simWorker, error) {
	var workers []*simWorker
	add := func(id string, factory ProducerFactory, cheater bool) error {
		p, err := NewParticipant(id, factory)
		if err != nil {
			return err
		}
		supConn, partConn := transport.Pipe(transport.WithBuffer(8))
		workers = append(workers, &simWorker{
			participant: p,
			supConn:     supConn,
			partConn:    partConn,
			serveErr:    make(chan error, 1),
			cheater:     cheater,
		})
		return nil
	}
	for i := 0; i < cfg.SemiHonest; i++ {
		seed := cfg.Seed*1000 + uint64(i)
		if err := add(fmt.Sprintf("semihonest-%d", i),
			SemiHonestFactory(cfg.HonestyRatio, seed), true); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Malicious; i++ {
		seed := cfg.Seed*2000 + uint64(i)
		if err := add(fmt.Sprintf("malicious-%d", i),
			MaliciousFactory(cfg.CorruptProb, seed), true); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Honest; i++ {
		if err := add(fmt.Sprintf("honest-%d", i), HonestFactory, false); err != nil {
			return nil, err
		}
	}
	return workers, nil
}

// scheduleTasks drives the supervisor across the task list.
func scheduleTasks(cfg SimConfig, supervisor *Supervisor, workers []*simWorker, report *SimReport) error {
	next := 0
	pick := func() *simWorker {
		for tries := 0; tries < len(workers); tries++ {
			w := workers[next%len(workers)]
			next++
			if !w.blacklisted {
				return w
			}
		}
		return nil
	}

	for taskNum := 0; taskNum < cfg.Tasks; taskNum++ {
		task := Task{
			ID:       uint64(taskNum),
			Start:    uint64(taskNum) * uint64(cfg.TaskSize),
			N:        uint64(cfg.TaskSize),
			Workload: cfg.Workload,
			Seed:     cfg.Seed,
		}
		if cfg.Spec.Kind == SchemeDoubleCheck {
			k := cfg.replicaCount()
			group := make([]*simWorker, 0, k)
			conns := make([]transport.Conn, 0, k)
			for tries := 0; len(group) < k && tries < 2*len(workers); tries++ {
				w := pick()
				if w == nil {
					return nil // everyone blacklisted
				}
				if containsWorker(group, w) {
					continue
				}
				group = append(group, w)
				conns = append(conns, w.supConn)
			}
			if len(group) < k {
				return nil // pool too small for distinct replicas; stop cleanly
			}
			outcomes, err := supervisor.RunReplicated(conns, task)
			if err != nil {
				return err
			}
			report.TasksAssigned += len(outcomes)
			for i, outcome := range outcomes {
				recordOutcome(cfg, group[i], outcome, report)
			}
			continue
		}

		w := pick()
		if w == nil {
			return nil // everyone blacklisted
		}
		outcome, err := supervisor.RunTask(w.supConn, task)
		if err != nil {
			return err
		}
		report.TasksAssigned++
		recordOutcome(cfg, w, outcome, report)
	}
	return nil
}

func recordOutcome(cfg SimConfig, w *simWorker, outcome *TaskOutcome, report *SimReport) {
	report.Reports = append(report.Reports, outcome.Reports...)
	if !outcome.Verdict.Accepted {
		w.rejections++
		if cfg.Blacklist {
			w.blacklisted = true
		}
	}
}

func containsWorker(group []*simWorker, w *simWorker) bool {
	for _, g := range group {
		if g == w {
			return true
		}
	}
	return false
}

// shutdownPool closes all supervisor-side connections and waits for every
// participant goroutine to exit, returning the first serve error.
func shutdownPool(workers []*simWorker) error {
	for _, w := range workers {
		_ = w.supConn.Close()
	}
	var firstErr error
	for _, w := range workers {
		if err := <-w.serveErr; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
