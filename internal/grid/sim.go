package grid

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"uncheatgrid/internal/transport"
)

// SimConfig describes a population run: a supervisor distributing tasks
// over a mixed honest/cheating participant pool, verified with one scheme.
type SimConfig struct {
	// Spec selects the verification scheme.
	Spec SchemeSpec
	// Workload names the registered function f; Seed instantiates it.
	Workload string
	Seed     uint64
	// TaskSize is |D| per task; Tasks is how many windows to assign.
	TaskSize int
	Tasks    int
	// Honest, SemiHonest, and Malicious size the participant pool.
	Honest     int
	SemiHonest int
	Malicious  int
	// HonestyRatio is r for the semi-honest participants.
	HonestyRatio float64
	// CorruptProb is the report-corruption probability for malicious
	// participants.
	CorruptProb float64
	// Replicas is the double-check group size (default 2). With 2
	// replicas a disagreement cannot be attributed, so both sides are
	// rejected; 3 or more lets the majority convict the dissenter.
	Replicas int
	// Blacklist removes a participant from scheduling after its first
	// rejected task — the supervisor's natural response to detection.
	Blacklist bool
	// CrossCheckReports enables the sampled-index screener cross-check.
	CrossCheckReports bool
	// Workers sets how many participants are verified concurrently.
	// Values <= 1 run the legacy serial scheduler; larger values drive a
	// SupervisorPool. The report is identical for equal seeds whatever the
	// worker count — task randomness is derived per task ID, and the
	// pooled scheduler preserves the serial round-robin assignment
	// (including blacklisting, which both schedulers apply before any
	// participant can be picked twice). The double-check scheme is a
	// replication barrier and always runs serially.
	Workers int
	// PipelineWindow, when > 0, replaces the per-task dialogue with
	// pipelined multi-task sessions: every participant connection carries up
	// to PipelineWindow concurrent task exchanges in batched frames, and
	// connections claim tasks from a shared queue (work stealing). Unlike
	// Workers, the task→participant pairing then depends on scheduling;
	// each (task, participant) verdict is still deterministic, and the
	// report is recorded in task order. Blacklisting retires a participant
	// from claiming after its first rejection, but tasks already in flight
	// on it still finish. Double-check ignores this field (replication
	// barrier). PipelineWindow takes precedence over Workers.
	PipelineWindow int
}

func (c SimConfig) participants() int { return c.Honest + c.SemiHonest + c.Malicious }

func (c SimConfig) validate() error {
	if err := c.Spec.validate(); err != nil {
		return err
	}
	if c.Workload == "" {
		return fmt.Errorf("%w: no workload", ErrBadConfig)
	}
	if c.TaskSize < 1 || c.Tasks < 1 {
		return fmt.Errorf("%w: need TaskSize >= 1 and Tasks >= 1", ErrBadConfig)
	}
	if c.participants() < 1 {
		return fmt.Errorf("%w: empty participant pool", ErrBadConfig)
	}
	if c.Workers < 0 {
		return fmt.Errorf("%w: negative worker count %d", ErrBadConfig, c.Workers)
	}
	if c.PipelineWindow < 0 {
		return fmt.Errorf("%w: negative pipeline window %d", ErrBadConfig, c.PipelineWindow)
	}
	if c.Spec.Kind == SchemeDoubleCheck {
		if c.Replicas != 0 && c.Replicas < 2 {
			return fmt.Errorf("%w: double-check needs >= 2 replicas", ErrBadConfig)
		}
		if c.participants() < c.replicaCount() {
			return fmt.Errorf("%w: double-check needs >= %d participants", ErrBadConfig, c.replicaCount())
		}
	}
	return nil
}

// replicaCount returns the effective double-check group size.
func (c SimConfig) replicaCount() int {
	if c.Replicas < 2 {
		return 2
	}
	return c.Replicas
}

// ParticipantSummary is one pool member's line in the simulation report.
type ParticipantSummary struct {
	// ID labels the participant; Behavior names its persona.
	ID       string
	Behavior string
	// Cheater records ground truth (semi-honest or malicious).
	Cheater bool
	// Tasks, Accepted, Rejected count assignments and verdicts.
	Tasks, Accepted, Rejected int
	// FEvals counts the participant's evaluations of f.
	FEvals int64
	// BytesSent and BytesRecv are measured at the participant endpoint.
	BytesSent, BytesRecv int64
	// Blacklisted reports whether scheduling dropped this participant.
	Blacklisted bool
}

// SimReport aggregates a simulation run.
type SimReport struct {
	// Scheme names the verification scheme used.
	Scheme string
	// PipelineWindow echoes the session window of a pipelined run; 0 means
	// the per-task dialogue was used.
	PipelineWindow int
	// Participants summarizes each pool member.
	Participants []ParticipantSummary
	// Reports collects every screened result received by the supervisor.
	Reports []Report
	// TasksAssigned counts task executions (replicas count individually).
	TasksAssigned int
	// CheatersDetected counts cheating participants with >= 1 rejection;
	// CheatersTotal counts cheating participants in the pool.
	CheatersDetected, CheatersTotal int
	// HonestAccused counts honest participants with >= 1 rejection —
	// the false positives.
	HonestAccused int
	// SupervisorBytesSent/Recv total the supervisor-side traffic.
	SupervisorBytesSent, SupervisorBytesRecv int64
	// SupervisorEvals counts supervisor-side f evaluations spent verifying.
	SupervisorEvals int64
}

// DetectionRate is CheatersDetected / CheatersTotal (1 when no cheaters).
func (r *SimReport) DetectionRate() float64 {
	if r.CheatersTotal == 0 {
		return 1
	}
	return float64(r.CheatersDetected) / float64(r.CheatersTotal)
}

// simWorker pairs a participant with its connection endpoints.
type simWorker struct {
	participant *Participant
	supConn     transport.Conn // supervisor-side endpoint
	partConn    transport.Conn // participant-side endpoint
	serveErr    chan error
	cheater     bool
	rejections  int
	blacklisted bool
}

// RunSim executes the configured population run over in-memory pipes and
// returns the aggregated report. The supervisor assigns tasks round-robin
// over the (non-blacklisted) pool; double-check groups consecutive workers.
// With Workers > 1 the non-replicated schemes verify participants
// concurrently through a SupervisorPool; per-task seed derivation keeps the
// report identical to the serial run. With PipelineWindow > 0 tasks flow
// through pipelined multi-task sessions with work stealing instead (see
// SimConfig.PipelineWindow for the reproducibility trade-off).
func RunSim(cfg SimConfig) (*SimReport, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	supCfg := SupervisorConfig{
		Spec:              cfg.Spec,
		Seed:              int64(cfg.Seed) ^ 0x5c4ed,
		CrossCheckReports: cfg.CrossCheckReports,
	}

	workers, err := buildPool(cfg)
	if err != nil {
		return nil, err
	}
	for _, w := range workers {
		w := w
		go func() { w.serveErr <- w.participant.Serve(w.partConn) }()
	}

	report := &SimReport{Scheme: cfg.Spec.Kind.String()}
	var scheduleErr error
	var supervisorEvals func() int64
	if cfg.PipelineWindow > 0 && cfg.Spec.Kind != SchemeDoubleCheck {
		report.PipelineWindow = cfg.PipelineWindow
		pool, err := NewSupervisorPool(supCfg, cfg.participants()*cfg.PipelineWindow)
		if err != nil {
			shutdownPool(workers)
			return nil, err
		}
		scheduleErr = scheduleTasksPipelined(cfg, pool, workers, report)
		supervisorEvals = pool.VerifyEvals
	} else if cfg.Workers > 1 && cfg.Spec.Kind != SchemeDoubleCheck {
		pool, err := NewSupervisorPool(supCfg, cfg.Workers)
		if err != nil {
			shutdownPool(workers)
			return nil, err
		}
		scheduleErr = scheduleTasksPooled(cfg, pool, workers, report)
		supervisorEvals = pool.VerifyEvals
	} else {
		supervisor, err := NewSupervisor(supCfg)
		if err != nil {
			shutdownPool(workers)
			return nil, err
		}
		scheduleErr = scheduleTasks(cfg, supervisor, workers, report)
		supervisorEvals = supervisor.VerifyEvals
	}
	if scheduleErr != nil {
		shutdownPool(workers)
		return nil, scheduleErr
	}
	if err := shutdownPool(workers); err != nil {
		return nil, err
	}

	for _, w := range workers {
		totals := w.participant.Totals()
		summary := ParticipantSummary{
			ID:          w.participant.ID(),
			Behavior:    totals.Behavior,
			Cheater:     w.cheater,
			Tasks:       totals.Tasks,
			Accepted:    totals.Accepted,
			Rejected:    totals.Rejected,
			FEvals:      totals.FEvals,
			BytesSent:   w.partConn.Stats().BytesSent(),
			BytesRecv:   w.partConn.Stats().BytesRecv(),
			Blacklisted: w.blacklisted,
		}
		report.Participants = append(report.Participants, summary)
		if w.cheater {
			report.CheatersTotal++
			if totals.Rejected > 0 {
				report.CheatersDetected++
			}
		} else if totals.Rejected > 0 {
			report.HonestAccused++
		}
		report.SupervisorBytesSent += w.supConn.Stats().BytesSent()
		report.SupervisorBytesRecv += w.supConn.Stats().BytesRecv()
	}
	report.SupervisorEvals = supervisorEvals()
	return report, nil
}

// buildPool constructs the participant pool: semi-honest cheaters first,
// then malicious, then honest workers.
func buildPool(cfg SimConfig) ([]*simWorker, error) {
	var workers []*simWorker
	add := func(id string, factory ProducerFactory, cheater bool) error {
		p, err := NewParticipant(id, factory)
		if err != nil {
			return err
		}
		supConn, partConn := transport.Pipe(transport.WithBuffer(8))
		workers = append(workers, &simWorker{
			participant: p,
			supConn:     supConn,
			partConn:    partConn,
			serveErr:    make(chan error, 1),
			cheater:     cheater,
		})
		return nil
	}
	for i := 0; i < cfg.SemiHonest; i++ {
		seed := cfg.Seed*1000 + uint64(i)
		if err := add(fmt.Sprintf("semihonest-%d", i),
			SemiHonestFactory(cfg.HonestyRatio, seed), true); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Malicious; i++ {
		seed := cfg.Seed*2000 + uint64(i)
		if err := add(fmt.Sprintf("malicious-%d", i),
			MaliciousFactory(cfg.CorruptProb, seed), true); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Honest; i++ {
		if err := add(fmt.Sprintf("honest-%d", i), HonestFactory, false); err != nil {
			return nil, err
		}
	}
	return workers, nil
}

// nextEligible returns the next non-blacklisted worker in round-robin
// order starting at *next (which it advances), or nil when the whole pool
// is blacklisted. Both schedulers share it so their assignment order stays
// in lockstep — the basis of the serial/pooled reproducibility guarantee.
func nextEligible(workers []*simWorker, next *int) *simWorker {
	for tries := 0; tries < len(workers); tries++ {
		w := workers[*next%len(workers)]
		*next++
		if !w.blacklisted {
			return w
		}
	}
	return nil
}

// taskFor builds the taskNum-th domain window of the run.
func taskFor(cfg SimConfig, taskNum int) Task {
	return Task{
		ID:       uint64(taskNum),
		Start:    uint64(taskNum) * uint64(cfg.TaskSize),
		N:        uint64(cfg.TaskSize),
		Workload: cfg.Workload,
		Seed:     cfg.Seed,
	}
}

// scheduleTasks drives the supervisor across the task list.
func scheduleTasks(cfg SimConfig, supervisor *Supervisor, workers []*simWorker, report *SimReport) error {
	next := 0
	pick := func() *simWorker { return nextEligible(workers, &next) }

	for taskNum := 0; taskNum < cfg.Tasks; taskNum++ {
		task := taskFor(cfg, taskNum)
		if cfg.Spec.Kind == SchemeDoubleCheck {
			k := cfg.replicaCount()
			group := make([]*simWorker, 0, k)
			conns := make([]transport.Conn, 0, k)
			for tries := 0; len(group) < k && tries < 2*len(workers); tries++ {
				w := pick()
				if w == nil {
					return nil // everyone blacklisted
				}
				if containsWorker(group, w) {
					continue
				}
				group = append(group, w)
				conns = append(conns, w.supConn)
			}
			if len(group) < k {
				return nil // pool too small for distinct replicas; stop cleanly
			}
			outcomes, err := supervisor.RunReplicated(conns, task)
			if err != nil {
				return err
			}
			report.TasksAssigned += len(outcomes)
			for i, outcome := range outcomes {
				recordOutcome(cfg, group[i], outcome, report)
			}
			continue
		}

		w := pick()
		if w == nil {
			return nil // everyone blacklisted
		}
		outcome, err := supervisor.RunTask(w.supConn, task)
		if err != nil {
			return err
		}
		report.TasksAssigned++
		recordOutcome(cfg, w, outcome, report)
	}
	return nil
}

// scheduleTasksPooled drives the task list through a SupervisorPool.
//
// Without Blacklist, eligibility never changes mid-run: the whole task list
// is assigned round-robin up front and submitted as one batch, so workers
// never idle at artificial barriers (the pool serializes per connection).
//
// With Blacklist, tasks go out in waves: each wave assigns at most one task
// per eligible (distinct, non-blacklisted) participant, runs concurrently,
// then applies verdicts — and with them blacklisting — before the next
// wave. A wave ends exactly where the serial round-robin would wrap, which
// is also the first point the serial scheduler could re-pick a blacklisted
// worker, so task-to-worker pairing is identical to the serial run in both
// modes; only wall-clock time changes.
func scheduleTasksPooled(cfg SimConfig, pool *SupervisorPool, workers []*simWorker, report *SimReport) error {
	ctx := context.Background()
	next := 0
	taskNum := 0
	for taskNum < cfg.Tasks {
		batch := make([]Assignment, 0, cfg.Tasks-taskNum)
		batchWorkers := make([]*simWorker, 0, cfg.Tasks-taskNum)
		for taskNum < cfg.Tasks {
			w := nextEligible(workers, &next)
			if w == nil {
				break
			}
			if cfg.Blacklist && containsWorker(batchWorkers, w) {
				// Wrapped around the pool: close the wave so verdicts can
				// blacklist before this worker is assigned again.
				next--
				break
			}
			batch = append(batch, Assignment{Conn: w.supConn, Task: taskFor(cfg, taskNum)})
			batchWorkers = append(batchWorkers, w)
			taskNum++
		}
		if len(batch) == 0 {
			return nil // everyone blacklisted
		}
		outcomes, err := pool.RunTasks(ctx, batch)
		if err != nil {
			return err
		}
		report.TasksAssigned += len(outcomes)
		for i, outcome := range outcomes {
			recordOutcome(cfg, batchWorkers[i], outcome, report)
		}
	}
	return nil
}

// scheduleTasksPipelined drives the whole task list through pipelined
// sessions with work stealing (SupervisorPool.RunTasksStream): every
// participant connection holds up to cfg.PipelineWindow tasks in flight and
// claims work from a shared queue. Outcomes are consumed as they stream in
// (blacklisting retires a participant from further claims immediately) but
// recorded into the report in task order, so the report layout does not
// depend on completion interleaving.
func scheduleTasksPipelined(cfg SimConfig, pool *SupervisorPool, workers []*simWorker, report *SimReport) error {
	byConn := make(map[transport.Conn]*simWorker, len(workers))
	conns := make([]transport.Conn, len(workers))
	for i, w := range workers {
		conns[i] = w.supConn
		byConn[w.supConn] = w
	}
	tasks := make([]Task, cfg.Tasks)
	for i := range tasks {
		tasks[i] = taskFor(cfg, i)
	}

	// Blacklist flags are written by this consumer and read by the pool's
	// claim-time eligibility checks on other goroutines.
	var mu sync.Mutex
	var opts []StreamOption
	if cfg.Blacklist {
		opts = append(opts, WithEligibility(func(conn transport.Conn) bool {
			mu.Lock()
			defer mu.Unlock()
			return !byConn[conn].blacklisted
		}))
	}
	stream, err := pool.RunTasksStream(context.Background(), conns, tasks, cfg.PipelineWindow, opts...)
	if err != nil {
		return err
	}

	type completion struct {
		w       *simWorker
		outcome *TaskOutcome
	}
	var completed []completion
	for so := range stream.Outcomes() {
		w := byConn[so.Conn]
		if cfg.Blacklist && !so.Outcome.Verdict.Accepted {
			mu.Lock()
			w.blacklisted = true
			mu.Unlock()
		}
		completed = append(completed, completion{w, so.Outcome})
	}
	if err := stream.Err(); err != nil {
		return err
	}

	sort.Slice(completed, func(i, j int) bool {
		return completed[i].outcome.Task.ID < completed[j].outcome.Task.ID
	})
	report.TasksAssigned = len(completed)
	for _, c := range completed {
		recordOutcome(cfg, c.w, c.outcome, report)
	}
	return nil
}

func recordOutcome(cfg SimConfig, w *simWorker, outcome *TaskOutcome, report *SimReport) {
	report.Reports = append(report.Reports, outcome.Reports...)
	if !outcome.Verdict.Accepted {
		w.rejections++
		if cfg.Blacklist {
			w.blacklisted = true
		}
	}
}

func containsWorker(group []*simWorker, w *simWorker) bool {
	for _, g := range group {
		if g == w {
			return true
		}
	}
	return false
}

// shutdownPool closes all supervisor-side connections and waits for every
// participant goroutine to exit, returning the first serve error.
func shutdownPool(workers []*simWorker) error {
	for _, w := range workers {
		_ = w.supConn.Close()
	}
	var firstErr error
	for _, w := range workers {
		if err := <-w.serveErr; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
