package grid

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"uncheatgrid/internal/transport"
	"uncheatgrid/internal/workload"
)

// withChunkSize shrinks the chunk threshold so tests exercise the chunked
// upload path without gigabyte result sets, restoring it afterwards.
func withChunkSize(t *testing.T, n int) {
	t.Helper()
	old := uploadChunkBytes
	uploadChunkBytes = n
	t.Cleanup(func() { uploadChunkBytes = old })
}

// expectedUpload recomputes the encoded result vector an honest participant
// uploads for the task.
func expectedUpload(t *testing.T, task Task) []byte {
	t.Helper()
	f, err := workload.New(task.Workload, task.Seed)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	results := make([][]byte, task.N)
	for i := uint64(0); i < task.N; i++ {
		results[i] = f.Eval(task.Start + i)
	}
	return encodeResults(results)
}

// TestChunkedUploadDialogue pins the dialogue-mode chunk path: an upload
// larger than the chunk threshold travels as an ordered chunk stream — one
// frame per chunk, observable in the message counters — reassembles exactly,
// and is byte-accounted like any other traffic.
func TestChunkedUploadDialogue(t *testing.T) {
	withChunkSize(t, 512)
	conn, shutdown := sessionFixture(t, HonestFactory)
	defer shutdown()

	sup, err := NewSupervisor(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeNaive, M: 6}, Seed: 4})
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	task := Task{ID: 1, Start: 0, N: 256, Workload: "synthetic", Seed: 7}
	payload := expectedUpload(t, task)
	if len(payload) <= uploadChunkBytes {
		t.Fatalf("test upload of %d bytes does not exceed the %d-byte chunk threshold", len(payload), uploadChunkBytes)
	}
	wantChunks := (len(payload) + uploadChunkBytes - 1) / uploadChunkBytes

	outcome, err := sup.RunTask(conn, task)
	if err != nil {
		t.Fatalf("RunTask: %v", err)
	}
	if !outcome.Verdict.Accepted {
		t.Errorf("honest chunked upload rejected: %s", outcome.Verdict.Reason)
	}
	// Dialogue mode is one frame per message: chunks + the report list +
	// the verdict acknowledgement.
	if got, want := conn.Stats().MsgsRecv(), int64(wantChunks+2); got != want {
		t.Errorf("supervisor received %d frames, want %d (%d chunks + reports + verdict ack)", got, want, wantChunks)
	}
	if outcome.BytesRecv != conn.Stats().BytesRecv() {
		t.Errorf("outcome BytesRecv = %d, connection counted %d", outcome.BytesRecv, conn.Stats().BytesRecv())
	}
	if outcome.BytesSent != conn.Stats().BytesSent() {
		t.Errorf("outcome BytesSent = %d, connection counted %d", outcome.BytesSent, conn.Stats().BytesSent())
	}
}

// TestChunkedUploadSessionExactAccounting runs chunked naive uploads through
// a pipelined session: the connection's frame-level counters must decompose
// into per-task tagged bytes plus session framing overhead exactly — chunk
// framing is counted like batch-tag framing, nothing lost or double-counted.
func TestChunkedUploadSessionExactAccounting(t *testing.T) {
	withChunkSize(t, 512)
	conn, shutdown := sessionFixture(t, HonestFactory)
	sup, err := NewSupervisor(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeNaive, M: 6}, Seed: 5})
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	sess, err := sup.OpenSession(conn, 3)
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	outcomes := runSessionTasks(t, sess, poolTasks(5, 256))
	if err := sess.Close(); err != nil {
		t.Fatalf("session close: %v", err)
	}

	var taskSent, taskRecv int64
	for _, o := range outcomes {
		if !o.Verdict.Accepted {
			t.Errorf("honest task %d rejected: %s", o.Task.ID, o.Verdict.Reason)
		}
		taskSent += o.BytesSent
		taskRecv += o.BytesRecv
	}
	ovSent, ovRecv := sess.OverheadBytes()
	if got, want := conn.Stats().BytesSent(), taskSent+ovSent; got != want {
		t.Errorf("BytesSent = %d, task sum + overhead = %d", got, want)
	}
	if got, want := conn.Stats().BytesRecv(), taskRecv+ovRecv; got != want {
		t.Errorf("BytesRecv = %d, task sum + overhead = %d", got, want)
	}
	shutdown()
}

// TestChunkedUploadResumesMidStream cuts the link after exactly two chunks
// of a chunked upload reached the supervisor, then re-attaches the attempt
// to a fresh connection: the resume handshake must announce the two banked
// chunks, the stream must splice at chunk 2 (nothing re-sent, nothing lost),
// and the task must finish with an accepting verdict. The test plays the
// participant at the wire level to make the cut deterministic.
func TestChunkedUploadResumesMidStream(t *testing.T) {
	withChunkSize(t, 512)
	task := Task{ID: 4, Start: 0, N: 256, Workload: "synthetic", Seed: 7}
	payload := expectedUpload(t, task)
	chunkCount := (len(payload) + uploadChunkBytes - 1) / uploadChunkBytes
	if chunkCount < 3 {
		t.Fatalf("test upload yields %d chunks; need >= 3", chunkCount)
	}
	chunkAt := func(seq int) taggedMsg {
		lo := seq * uploadChunkBytes
		hi := lo + uploadChunkBytes
		if hi > len(payload) {
			hi = len(payload)
		}
		c := resultChunk{Seq: uint64(seq), Final: seq == chunkCount-1, Data: payload[lo:hi]}
		return taggedMsg{TaskID: task.ID, Type: msgResultChunk, Payload: encodeChunk(c)}
	}

	sup, err := NewSupervisor(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeNaive, M: 6}, Seed: 6})
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	at, err := sup.NewAttempt(task)
	if err != nil {
		t.Fatalf("NewAttempt: %v", err)
	}

	// First connection: swallow the assignment, deliver chunks 0 and 1,
	// then cut the link.
	supSide, partSide := transport.Pipe(transport.WithBuffer(8))
	sess, err := sup.OpenSession(supSide, 1)
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := sess.RunAttempt(at)
		errCh <- err
	}()
	if _, err := partSide.Recv(); err != nil { // the assignment batch
		t.Fatalf("recv assignment: %v", err)
	}
	batch := encodeBatch([]taggedMsg{chunkAt(0), chunkAt(1)})
	if err := partSide.Send(transport.Message{Type: msgBatch, Payload: batch}); err != nil {
		t.Fatalf("send chunks: %v", err)
	}
	_ = partSide.Close() // queued frames drain before EOF, so both chunks land
	if err := <-errCh; !errors.Is(err, ErrConnQuarantined) {
		t.Fatalf("RunAttempt error = %v, want ErrConnQuarantined", err)
	}
	_ = sess.Close()
	if got := at.pt.st.chunks; got != 2 {
		t.Fatalf("attempt banked %d chunks, want 2", got)
	}

	// Replacement connection: the resume must announce 2 chunks, accept the
	// spliced remainder, and deliver the verdict.
	supSide2, partSide2 := transport.Pipe(transport.WithBuffer(8))
	sess2, err := sup.OpenSession(supSide2, 1)
	if err != nil {
		t.Fatalf("OpenSession 2: %v", err)
	}
	go func() {
		outcome, err := sess2.RunAttempt(at)
		if err == nil && !outcome.Verdict.Accepted {
			err = fmt.Errorf("honest chunked upload rejected: %s", outcome.Verdict.Reason)
		}
		errCh <- err
	}()
	frame, err := partSide2.Recv()
	if err != nil {
		t.Fatalf("recv resume: %v", err)
	}
	msgs, err := decodeBatch(frame.Payload)
	if err != nil {
		t.Fatalf("decode resume batch: %v", err)
	}
	if len(msgs) != 1 || msgs[0].Type != msgResume {
		t.Fatalf("replacement connection got %+v, want one msgResume", msgs)
	}
	resume, err := decodeResume(msgs[0].Payload)
	if err != nil {
		t.Fatalf("decode resume: %v", err)
	}
	if resume.Chunks != 2 || resume.ResultsDone {
		t.Fatalf("resume announced chunks=%d resultsDone=%v, want 2/false", resume.Chunks, resume.ResultsDone)
	}
	rest := make([]taggedMsg, 0, chunkCount-2+1)
	for seq := 2; seq < chunkCount; seq++ {
		rest = append(rest, chunkAt(seq))
	}
	rest = append(rest, taggedMsg{TaskID: task.ID, Type: msgReports, Payload: encodeReports(nil)})
	if err := partSide2.Send(transport.Message{Type: msgBatch, Payload: encodeBatch(rest)}); err != nil {
		t.Fatalf("send remainder: %v", err)
	}
	if _, err := partSide2.Recv(); err != nil { // the verdict batch
		t.Fatalf("recv verdict: %v", err)
	}
	ack := encodeBatch([]taggedMsg{{TaskID: task.ID, Type: msgVerdictAck}})
	if err := partSide2.Send(transport.Message{Type: msgBatch, Payload: ack}); err != nil {
		t.Fatalf("send verdict ack: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("resumed RunAttempt: %v", err)
	}
	_ = sess2.Close()
	_ = supSide2.Close()
}

// TestParticipantResumesChunkStreamAtOffset drives the participant session
// at the wire level: a resume handshake claiming k chunks received must make
// the participant replay the upload starting exactly at chunk k, and the
// spliced stream must reassemble to the full encoding.
func TestParticipantResumesChunkStreamAtOffset(t *testing.T) {
	withChunkSize(t, 512)
	task := Task{ID: 3, Start: 0, N: 256, Workload: "synthetic", Seed: 7}
	payload := expectedUpload(t, task)
	chunkCount := uint64((len(payload) + uploadChunkBytes - 1) / uploadChunkBytes)
	if chunkCount < 3 {
		t.Fatalf("test upload yields %d chunks; need >= 3", chunkCount)
	}
	const skip = 2

	p, err := NewParticipant("p", HonestFactory)
	if err != nil {
		t.Fatalf("NewParticipant: %v", err)
	}
	supConn, partConn := transport.Pipe(transport.WithBuffer(8))
	serveErr := make(chan error, 1)
	go func() { serveErr <- p.Serve(partConn) }()

	resume := resumeMsg{
		Assignment: assignment{Task: task, Spec: SchemeSpec{Kind: SchemeNaive, M: 6}},
		Chunks:     skip,
	}
	batch := encodeBatch([]taggedMsg{{TaskID: task.ID, Type: msgResume, Payload: encodeResume(resume)}})
	if err := supConn.Send(transport.Message{Type: msgBatch, Payload: batch}); err != nil {
		t.Fatalf("send resume: %v", err)
	}

	var got []byte
	next := uint64(skip)
	sawReports := false
	for !sawReports {
		frame, err := supConn.Recv()
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		msgs, err := decodeBatch(frame.Payload)
		if err != nil {
			t.Fatalf("decode batch: %v", err)
		}
		for _, tm := range msgs {
			switch tm.Type {
			case msgResultChunk:
				c, err := decodeChunk(tm.Payload)
				if err != nil {
					t.Fatalf("decode chunk: %v", err)
				}
				if c.Seq != next {
					t.Fatalf("chunk seq %d, want %d — resume did not splice at the offset", c.Seq, next)
				}
				next++
				got = append(got, c.Data...)
				if c.Final && next != chunkCount {
					t.Fatalf("final chunk at seq %d, want %d", c.Seq, chunkCount-1)
				}
			case msgReports:
				sawReports = true
			default:
				t.Fatalf("unexpected message type %d", tm.Type)
			}
		}
	}
	if want := payload[skip*uploadChunkBytes:]; !bytes.Equal(got, want) {
		t.Errorf("resumed chunk stream carried %d bytes, want %d, or content mismatch", len(got), len(want))
	}
	// Let the task's verdict wait resolve via connection close.
	_ = supConn.Close()
	if err := <-serveErr; err != nil {
		t.Errorf("participant serve: %v", err)
	}
}
