package grid

// Rolling window commitments for long-horizon task streams.
//
// A bounded batch ends and takes its accountability with it: every task's
// commitment was checked while the task was in flight, and nothing binds the
// participant to the *history* of what it executed. An unbounded stream
// needs exactly that binding — a worker that served honestly for a million
// tasks and then starts replaying old roots should be caught without the
// supervisor retaining a million digests.
//
// Both sides therefore reduce every settled task to a fixed-size stream
// digest (taskID, scheme, and the task's primary payload — commitment root,
// upload, or hit list). Every WindowTasks settled tasks the participant
// builds a Merkle tree over the window's digests, absorbs its root into a
// hash-chain cursor shared with the supervisor (the per-window Eq. 4 of the
// paper, see hashchain.Cursor), and answers the cursor-derived challenge by
// sending audit paths for the sampled leaves. The supervisor holds only the
// digests of tasks not yet covered by a window (O(W + in-flight) memory),
// verifies each commit against them, and advances its own cursor in
// lockstep — so the k-th window's challenge depends on every window root up
// to and including k, and a participant cannot predict it without fixing
// its entire history first.

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"

	"uncheatgrid/internal/hashchain"
	"uncheatgrid/internal/merkle"
)

// streamDigestPrefix domain-separates per-task stream digests from every
// other hash in the protocol.
const streamDigestPrefix = "uncheatgrid/stream-digest/v1"

// windowCursorPrefix domain-separates the window cursor's shared seed.
const windowCursorPrefix = "uncheatgrid/window-cursor/v1"

// streamCapacity is the leaf capacity of the full-stream Merkle builder a
// participant maintains alongside its windows: 2^40 tasks is unreachable in
// practice, and the builder's frontier stays O(log capacity) regardless.
const streamCapacity = 1 << 40

// streamDigest reduces one settled task to the fixed-size leaf value of its
// window commitment. body is the scheme's primary payload reduced by
// hashResults/hashIndices, or the commitment root directly.
func streamDigest(taskID uint64, kind SchemeKind, body []byte) []byte {
	h := sha256.New()
	h.Write([]byte(streamDigestPrefix))
	var buf [9]byte
	binary.LittleEndian.PutUint64(buf[:8], taskID)
	buf[8] = byte(kind)
	h.Write(buf[:])
	h.Write(body)
	return h.Sum(nil)
}

// hashResults condenses a full-result upload into one digest. Lengths are
// folded in so no two distinct uploads share an image by concatenation.
func hashResults(results [][]byte) []byte {
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(results)))
	h.Write(buf[:n])
	for _, r := range results {
		n = binary.PutUvarint(buf[:], uint64(len(r)))
		h.Write(buf[:n])
		h.Write(r)
	}
	return h.Sum(nil)
}

// hashIndices condenses a ringer hit list into one digest.
func hashIndices(indices []uint64) []byte {
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(indices)))
	h.Write(buf[:n])
	for _, x := range indices {
		binary.LittleEndian.PutUint64(buf[:8], x)
		h.Write(buf[:8])
	}
	return h.Sum(nil)
}

// windowCursorSeed derives the shared cursor seed from the scheme spec.
// Both protocol sides hold the spec (it travels in every assignment), so
// both start their cursors from the same state; the chains diverge per
// participant from window 0 on, as each absorbs that participant's roots.
func windowCursorSeed(spec SchemeSpec) []byte {
	h := sha256.New()
	h.Write([]byte(windowCursorPrefix))
	var buf [17]byte
	buf[0] = byte(spec.Kind)
	binary.LittleEndian.PutUint64(buf[1:9], uint64(spec.WindowTasks))
	binary.LittleEndian.PutUint64(buf[9:17], uint64(spec.WindowSamples))
	h.Write(buf[:])
	return h.Sum(nil)
}

// windowChain builds the hash chain the window cursors run on. One base
// hash per step: the per-window chain is a retention check, not the Eq. 5
// cost dial (that stays with the per-task NI-CBS challenges).
func windowChain() *hashchain.Chain {
	c, err := hashchain.New(1)
	if err != nil {
		panic("grid: hashchain.New(1): " + err.Error()) // 1 iteration is always valid
	}
	return c
}

// recordStreamDigest banks the task's stream digest into the ledger of the
// connection that carried it, exactly once per attempt, at the decision
// point — the last moment the supervisor touches the task before sending the
// verdict. The participant appends its matching digest when the verdict is
// counted, so by the time a window commit covering this task arrives, the
// ledger entry is already in place (the commit travels in front of the final
// task's verdict ack, never ahead of this call).
func (pt *preparedTask) recordStreamDigest() {
	if pt.ledger == nil || pt.digested {
		return
	}
	pt.digested = true
	st := pt.st
	var body []byte
	kind := pt.assign.Spec.Kind
	switch kind {
	case SchemeCBS, SchemeNICBS:
		body = st.commitment.Root
	case SchemeNaive, SchemeDoubleCheck:
		body = hashResults(st.results)
	case SchemeRinger:
		body = hashIndices(st.hits)
	default:
		return
	}
	id := pt.assign.Task.ID
	pt.ledger.record(id, streamDigest(id, kind, body))
}

// participantWindows is a participant's rolling-commitment state: the
// digests of settled-but-uncommitted tasks, the shared challenge cursor, and
// a full-stream Merkle builder whose O(log n) frontier binds the entire
// history into every checkpoint.
type participantWindows struct {
	mu      sync.Mutex
	w, m    int
	cursor  *hashchain.Cursor
	commits uint64
	ids     []uint64
	digests [][]byte
	stream  *merkle.StreamBuilder
}

// newParticipantWindows starts rolling-commitment tracking for spec.
func newParticipantWindows(spec SchemeSpec) (*participantWindows, error) {
	cursor, err := windowChain().NewCursor(windowCursorSeed(spec))
	if err != nil {
		return nil, err
	}
	stream, err := merkle.NewStreamBuilder(streamCapacity)
	if err != nil {
		return nil, err
	}
	return &participantWindows{
		w:      spec.WindowTasks,
		m:      spec.WindowSamples,
		cursor: cursor,
		stream: stream,
	}, nil
}

// settle appends one counted task and, when the window fills, commits it:
// build the tree over the window's digests, absorb the root into the cursor,
// derive the challenge from the advanced state (so it depends on this very
// root — the pre-commitment argument), and emit the commit with audit paths
// for the sampled leaves via send. The lock is held across build and send so
// commit order on the wire matches cursor order.
func (pw *participantWindows) settle(taskID uint64, digest []byte, send func(typ uint8, payload []byte) error) error {
	pw.mu.Lock()
	defer pw.mu.Unlock()
	if err := pw.stream.Add(digest); err != nil {
		return fmt.Errorf("grid: window stream: %w", err)
	}
	pw.ids = append(pw.ids, taskID)
	pw.digests = append(pw.digests, digest)
	if len(pw.ids) < pw.w {
		return nil
	}

	tree, err := merkle.Build(pw.digests)
	if err != nil {
		return fmt.Errorf("grid: window tree: %w", err)
	}
	root := tree.Root()
	if err := pw.cursor.Advance(root); err != nil {
		return fmt.Errorf("grid: window cursor: %w", err)
	}
	idxs, err := pw.cursor.Indices(pw.m, uint64(pw.w))
	if err != nil {
		return fmt.Errorf("grid: window challenge: %w", err)
	}
	proofs := make([][]byte, len(idxs))
	for j, idx := range idxs {
		proof, err := tree.Prove(int(idx))
		if err != nil {
			return fmt.Errorf("grid: window proof: %w", err)
		}
		if proofs[j], err = proof.MarshalBinary(); err != nil {
			return fmt.Errorf("grid: window proof: %w", err)
		}
	}
	msg := windowCommitMsg{
		Window:  pw.commits,
		Root:    root,
		TaskIDs: pw.ids,
		Proofs:  proofs,
	}
	payload := encodeWindowCommit(msg)
	pw.commits++
	pw.ids = nil
	pw.digests = nil
	return send(msgWindowCommit, payload)
}

// WindowLedger is the supervisor's per-link verifier of a participant's
// rolling commitments. It banks the stream digest of every decided task and,
// on each window commit, checks the sampled audit paths against its own
// digests before advancing the shared cursor. Verification failures are
// violations — counted, never terminal — because a cheating window is
// evidence to report, not a protocol breakdown; only an undecodable payload
// kills the session. Memory stays O(W + in-flight): digests leave the pend
// map as windows cover them.
type WindowLedger struct {
	mu         sync.Mutex
	w, m       int
	cursor     *hashchain.Cursor
	settled    uint64
	violations uint64
	lastReason string
	pend       map[uint64][]byte
}

// NewWindowLedger builds the verifier for one participant link.
func NewWindowLedger(spec SchemeSpec) (*WindowLedger, error) {
	if spec.WindowTasks < 1 {
		return nil, fmt.Errorf("%w: window ledger without a window", ErrBadConfig)
	}
	cursor, err := windowChain().NewCursor(windowCursorSeed(spec))
	if err != nil {
		return nil, err
	}
	return &WindowLedger{
		w:      spec.WindowTasks,
		m:      spec.WindowSamples,
		cursor: cursor,
		pend:   make(map[uint64][]byte),
	}, nil
}

// record banks one decided task's expected stream digest.
func (led *WindowLedger) record(taskID uint64, digest []byte) {
	led.mu.Lock()
	led.pend[taskID] = digest
	led.mu.Unlock()
}

// onCommit verifies one window commit. The cursor always advances with the
// received root — an honest participant's cursor did, and staying in
// lockstep is what lets verification resume after a counted violation.
func (led *WindowLedger) onCommit(payload []byte) error {
	m, err := decodeWindowCommit(payload)
	if err != nil {
		return err
	}
	led.mu.Lock()
	defer led.mu.Unlock()

	wantWindow := led.cursor.Window()
	if err := led.cursor.Advance(m.Root); err != nil {
		return fmt.Errorf("%w: window root: %v", ErrBadPayload, err)
	}
	reason := led.verifyLocked(m, wantWindow)
	// Covered tasks leave the pend map whatever the outcome: their retention
	// evidence has been spent, and an unbounded stream must not hoard it.
	for _, id := range m.TaskIDs {
		delete(led.pend, id)
	}
	if reason != "" {
		led.violations++
		led.lastReason = reason
		return nil
	}
	led.settled++
	return nil
}

// verifyLocked checks one commit against the banked digests and the
// cursor-derived challenge, returning a violation reason or "".
func (led *WindowLedger) verifyLocked(m windowCommitMsg, wantWindow uint64) string {
	if m.Window != wantWindow {
		return fmt.Sprintf("window %d committed out of order (want %d)", m.Window, wantWindow)
	}
	if len(m.TaskIDs) != led.w {
		return fmt.Sprintf("window %d covers %d tasks, want %d", m.Window, len(m.TaskIDs), led.w)
	}
	idxs, err := led.cursor.Indices(led.m, uint64(led.w))
	if err != nil {
		return fmt.Sprintf("window %d challenge: %v", m.Window, err)
	}
	if len(m.Proofs) != len(idxs) {
		return fmt.Sprintf("window %d answers %d of %d challenged leaves", m.Window, len(m.Proofs), len(idxs))
	}
	for j, idx := range idxs {
		var proof merkle.Proof
		if err := proof.UnmarshalBinary(m.Proofs[j]); err != nil {
			return fmt.Sprintf("window %d proof %d undecodable: %v", m.Window, j, err)
		}
		if proof.Index != int(idx) || proof.N != led.w {
			return fmt.Sprintf("window %d proof %d proves leaf %d/%d, want %d/%d",
				m.Window, j, proof.Index, proof.N, idx, led.w)
		}
		if err := merkle.Verify(m.Root, &proof); err != nil {
			return fmt.Sprintf("window %d proof %d: %v", m.Window, j, err)
		}
		want, ok := led.pend[m.TaskIDs[proof.Index]]
		if !ok {
			return fmt.Sprintf("window %d commits task %d the supervisor never decided", m.Window, m.TaskIDs[proof.Index])
		}
		if string(proof.Value) != string(want) {
			return fmt.Sprintf("window %d leaf %d disagrees with the decided digest of task %d",
				m.Window, idx, m.TaskIDs[proof.Index])
		}
	}
	return ""
}

// WindowStats summarizes a link's rolling-commitment verification.
type WindowStats struct {
	// Settled counts windows whose sampled audit paths all verified.
	Settled uint64
	// Violations counts windows that failed verification; LastViolation
	// explains the most recent one.
	Violations    uint64
	LastViolation string
	// Pending counts decided tasks not yet covered by a window.
	Pending int
}

// Stats snapshots the ledger's counters.
func (led *WindowLedger) Stats() WindowStats {
	led.mu.Lock()
	defer led.mu.Unlock()
	return WindowStats{
		Settled:       led.settled,
		Violations:    led.violations,
		LastViolation: led.lastReason,
		Pending:       len(led.pend),
	}
}
