package grid

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"uncheatgrid/internal/transport"
)

// This file implements pipelined multi-task sessions: instead of one
// request/response dialogue per task, a supervisor opens a Session on a
// connection and keeps up to `window` tasks in flight at once. Every
// protocol message is tagged with its task ID and travels inside msgBatch
// frames, so small messages from concurrent tasks coalesce and share frame
// headers — the audit-pipeline shape of Goodrich (arXiv:0906.1225) applied
// to the CBS schemes.

// batchTargetBytes is the soft cap on how much tagged payload one coalesced
// frame carries before the writer stops gathering more. A single oversized
// sub-message still travels alone, exactly as it would have in dialogue
// mode.
const batchTargetBytes = 1 << 20

// maxBatchPayload is the hard cap: a coalesced frame's payload must stay a
// legal transport frame, with headroom for the batch count prefix. A batch
// always carries at least one message, so tag framing shaves ~20 bytes off
// the largest single payload a session can carry versus dialogue mode;
// payloads that close to transport.MaxFrameBytes must be chunked by the
// caller in either mode (see ROADMAP "Chunked uploads").
const maxBatchPayload = transport.MaxFrameBytes - 16

// outMsg is one queued tagged message plus its sender's flush callback:
// settle reports whether the message actually entered the wire, which is
// when — and only when — its bytes are credited to the owning task.
// Crediting at enqueue time would count frames a quarantined writer later
// discards, overstating a faulty run's per-task sent bytes against the
// connection counters.
type outMsg struct {
	tm     taggedMsg
	settle func(sent bool)
}

func (m outMsg) done(sent bool) {
	if m.settle != nil {
		m.settle(sent)
	}
}

// batchWriter serializes task-tagged messages from many goroutines onto one
// connection, coalescing whatever is queued into msgBatch frames. After a
// send error the writer keeps draining (and discarding) its queue so
// enqueuers can never wedge; the error fires the onFail hook once (enqueue
// is asynchronous, so a task that already queued its message may otherwise
// be blocked waiting for a reply to a frame that was discarded), is
// reported on the next enqueue, and by close. Every queued message has its
// settle callback invoked exactly once — flushed or discarded — so senders
// can await exact accounting.
//
// close must not race enqueue: both endpoints guarantee their task
// goroutines have finished (window slots / WaitGroup) before closing.
type batchWriter struct {
	conn   transport.Conn
	in     chan outMsg
	done   chan struct{}
	onFail func(error)

	// mu guards err and overhead only and is never held across a blocking
	// operation.
	mu       sync.Mutex
	err      error
	overhead int64

	// batchScratch and msgScratch are reused across loop iterations and
	// flushes. Only the writer goroutine touches them, and flush copies
	// every byte into the encoded frame before returning, so reuse is safe.
	batchScratch []outMsg
	msgScratch   []taggedMsg
}

func newBatchWriter(conn transport.Conn, onFail func(error)) *batchWriter {
	w := &batchWriter{
		conn:   conn,
		in:     make(chan outMsg, 64),
		done:   make(chan struct{}),
		onFail: onFail,
	}
	go w.loop()
	return w
}

func (w *batchWriter) loop() {
	defer close(w.done)
	var carry *outMsg // next frame's first message when a batch hits the hard cap
	for {
		var first outMsg
		if carry != nil {
			first, carry = *carry, nil
		} else {
			var ok bool
			if first, ok = <-w.in; !ok {
				return
			}
		}
		batch := append(w.batchScratch[:0], first)
		size := first.tm.wireSize()
	coalesce:
		for len(batch) < maxBatchMsgs && size < batchTargetBytes {
			select {
			case m, ok := <-w.in:
				if !ok {
					w.flush(batch)
					return
				}
				if size+m.tm.wireSize() > maxBatchPayload {
					// Adding m would overflow a legal frame; it opens the
					// next one instead.
					carry = &m
					break coalesce
				}
				batch = append(batch, m)
				size += m.tm.wireSize()
			default:
				break coalesce
			}
		}
		w.flush(batch)
		w.batchScratch = batch[:0]
	}
}

// flush writes one coalesced batch frame and settles its messages: each
// enqueue callback learns whether its bytes reached the wire, and the frame
// overhead beyond the tagged payloads accrues to the writer.
//
//gridlint:credit flush time is the only point where sent bytes are real wire bytes
func (w *batchWriter) flush(batch []outMsg) {
	if w.failed() != nil {
		// Drain mode: consume without sending so enqueuers never block. The
		// discarded messages settle uncredited — they never hit the wire.
		for _, m := range batch {
			m.done(false)
		}
		return
	}
	msgs := w.msgScratch[:0]
	for _, m := range batch {
		msgs = append(msgs, m.tm)
	}
	w.msgScratch = msgs[:0]
	frame := transport.Message{Type: msgBatch, Payload: encodeBatch(msgs)}
	if err := w.conn.Send(frame); err != nil {
		w.fail(err)
		for _, m := range batch {
			m.done(false)
		}
		return
	}
	var tagged int64
	for _, m := range batch {
		tagged += m.tm.wireSize()
		m.done(true)
	}
	w.mu.Lock()
	w.overhead += frame.FrameSize() - tagged
	w.mu.Unlock()
}

func (w *batchWriter) fail(err error) {
	w.mu.Lock()
	first := w.err == nil
	if first {
		w.err = err
	}
	w.mu.Unlock()
	if first && w.onFail != nil {
		w.onFail(err)
	}
}

func (w *batchWriter) failed() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// overheadBytes reports sent frame bytes not attributable to any one task:
// batch headers and count prefixes.
func (w *batchWriter) overheadBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.overhead
}

// creditOverhead folds flushed bytes that belong to no task — ctrl-tagged
// messages — into the writer's overhead ledger, keeping the connection
// total exactly Σ task bytes + overhead.
//
//gridlint:credit ctrl messages have no owning task; their flushed bytes are session overhead
func (w *batchWriter) creditOverhead(n int64) {
	w.mu.Lock()
	w.overhead += n
	w.mu.Unlock()
}

// enqueue queues one tagged message for (possibly coalesced) sending. It
// returns quickly; transmission errors surface on later calls and at close.
// settle, if non-nil, is called exactly once when the message is flushed
// (true) or discarded (false) — unless enqueue itself returns an error, in
// which case the message was never queued and settle is never called.
func (w *batchWriter) enqueue(tm taggedMsg, settle func(sent bool)) error {
	if err := w.failed(); err != nil {
		return err
	}
	w.in <- outMsg{tm: tm, settle: settle}
	return nil
}

// close flushes queued messages, stops the writer, and reports any send
// error. No enqueue may be concurrent with or follow close.
func (w *batchWriter) close() error {
	close(w.in)
	<-w.done
	return w.failed()
}

// sessionConfig collects OpenSession options.
type sessionConfig struct {
	recvTimeout time.Duration
}

// SessionOption configures OpenSession.
type SessionOption interface {
	applySession(*sessionConfig)
}

type sessionRecvTimeoutOption time.Duration

func (o sessionRecvTimeoutOption) applySession(c *sessionConfig) {
	c.recvTimeout = time.Duration(o)
}

// WithSessionRecvTimeout arms a receive watchdog: whenever the session waits
// longer than d for the next frame, the connection is declared dead and
// closed, surfacing as ErrConnQuarantined on every in-flight attempt. This
// is how silently dropped frames on a lossy link become reconnects instead
// of hangs. d must comfortably exceed the participant's worst-case per-task
// compute time — a spurious trip costs a resume, never a wrong verdict. The
// default (0) disables the watchdog.
func WithSessionRecvTimeout(d time.Duration) SessionOption {
	return sessionRecvTimeoutOption(d)
}

// Session is a pipelined multi-task exchange owned by a supervisor: up to
// `window` tasks proceed concurrently over one connection, their messages
// tagged by task ID and coalesced into batch frames. The peer participant
// enters pipelined mode automatically on the first batch frame.
//
// A Session must be the connection's only user while open. Close flushes
// and shuts the session down but leaves the connection open.
type Session struct {
	sup    *Supervisor
	conn   transport.Conn
	window int
	cfg    sessionConfig

	slots       chan struct{} // window permits; Close acquires all
	closing     chan struct{}
	closeOnce   sync.Once
	closeErr    error
	quarantined atomic.Bool
	writer      *batchWriter

	// mu guards the demultiplexer: per-task inboxes, the elected-puller
	// flag, the ctrl handler, the terminal error, and receive-side overhead
	// accounting.
	mu           sync.Mutex
	cond         *sync.Cond
	tasks        map[uint64]*sessionTaskConn
	used         map[uint64]struct{}
	ctrl         func(taggedMsg) error
	pulling      bool
	err          error
	recvOverhead int64
}

// OpenSession starts a pipelined session on conn with the given in-flight
// window. Double-check sessions carry replica exchanges whose settle phase
// reports to a cross-connection rendezvous; they are driven by
// SupervisorPool.RunTasksStream, and RunTask refuses them (a lone session
// has no sibling replicas to compare against).
func (s *Supervisor) OpenSession(conn transport.Conn, window int, opts ...SessionOption) (*Session, error) {
	if conn == nil {
		return nil, fmt.Errorf("%w: nil connection", ErrBadConfig)
	}
	if window < 1 {
		return nil, fmt.Errorf("%w: session window %d", ErrBadConfig, window)
	}
	var cfg sessionConfig
	for _, opt := range opts {
		opt.applySession(&cfg)
	}
	sess := &Session{
		sup:     s,
		conn:    conn,
		window:  window,
		cfg:     cfg,
		slots:   make(chan struct{}, window),
		closing: make(chan struct{}),
		tasks:   make(map[uint64]*sessionTaskConn),
		used:    make(map[uint64]struct{}),
	}
	sess.cond = sync.NewCond(&sess.mu)
	// A writer failure must poison the session, not just drain: tasks that
	// already enqueued a message would otherwise wait forever for a reply
	// to a frame that was never sent. Closing the connection unblocks the
	// elected puller (and the peer).
	sess.writer = newBatchWriter(conn, func(err error) {
		sess.fail(fmt.Errorf("grid: session send: %w", err))
		_ = conn.Close()
	})
	return sess, nil
}

// fail records the session's terminal error and wakes every waiter.
func (s *Session) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// sessionTaskConn is the virtual protoConn of one in-flight task: sends are
// tagged with the task ID and coalesced by the session writer; receives are
// demultiplexed by ID from the shared connection.
type sessionTaskConn struct {
	sess *Session
	id   uint64
	// inbox holds routed-but-unconsumed messages; guarded by sess.mu.
	inbox []transport.Message
	// sent counts this task's tagged bytes that actually entered the wire —
	// credited by the batch writer at flush time, not at enqueue, so frames
	// discarded by a quarantined writer never inflate it. recv is guarded by
	// sess.mu.
	sent     atomic.Int64
	recv     int64
	inflight sync.WaitGroup
}

// Send implements protoConn. The message's bytes are credited when the
// writer flushes it; awaitSends synchronizes with that before the task's
// totals are read.
//
//gridlint:credit the settle callback runs at writer flush time, the sanctioned crediting point
func (c *sessionTaskConn) Send(m transport.Message) error {
	tm := taggedMsg{TaskID: c.id, Type: m.Type, Payload: m.Payload}
	size := tm.wireSize()
	c.inflight.Add(1)
	err := c.sess.writer.enqueue(tm, func(sent bool) {
		if sent {
			c.sent.Add(size)
		}
		c.inflight.Done()
	})
	if err != nil {
		c.inflight.Done() // never queued; the callback will not fire
		return err
	}
	return nil
}

// awaitSends blocks until every message this task enqueued has been
// flushed or discarded, making c.sent final. The writer always drains —
// even after a failure — so this cannot wedge.
func (c *sessionTaskConn) awaitSends() { c.inflight.Wait() }

// Recv implements protoConn.
func (c *sessionTaskConn) Recv() (transport.Message, error) {
	return c.sess.recvFor(c)
}

// recvFor returns the next message routed to c. The session has no
// dedicated reader goroutine: among the task goroutines blocked here, one
// is elected to pull from the connection and route what arrives; the rest
// wait on the condition variable. A session error wakes and fails everyone.
//
//gridlint:credit the elected puller attributes receive-side deltas as frames arrive
func (s *Session) recvFor(c *sessionTaskConn) (transport.Message, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if len(c.inbox) > 0 {
			m := c.inbox[0]
			c.inbox = c.inbox[1:]
			return m, nil
		}
		if s.err != nil {
			return transport.Message{}, s.err
		}
		if !s.pulling {
			s.pullOnceLocked(s.cfg.recvTimeout)
			continue
		}
		s.cond.Wait()
	}
}

// pullOnceLocked performs one elected pull: release the lock, receive one
// frame (with a watchdog when timeout > 0), re-acquire, route, record any
// terminal error, and wake the waiters. Caller holds s.mu and has observed
// s.pulling == false.
//
//gridlint:credit bytes that arrive without yielding a routable frame (CRC-rejected damage) are credited to session overhead at the single receive site
func (s *Session) pullOnceLocked(timeout time.Duration) {
	s.pulling = true
	s.mu.Unlock()
	// The watchdog converts a silently dropped frame (the peer will
	// never answer) into a dead connection the quarantine machinery
	// already handles. Closing the connection is the only way to
	// unblock a pending Recv on every transport.
	var watchdog *time.Timer
	if timeout > 0 {
		watchdog = time.AfterFunc(timeout, func() { _ = s.conn.Close() })
	}
	// Receive-side attribution works on the connection counter's
	// delta rather than the frame header math, so bytes that arrive
	// but never yield a routable frame — a corrupt frame the
	// transport CRC rejected — still land in session overhead and
	// the counters stay exact.
	before := s.conn.Stats().BytesRecv()
	frame, err := s.conn.Recv()
	if watchdog != nil {
		watchdog.Stop()
	}
	s.mu.Lock()
	s.pulling = false
	arrived := s.conn.Stats().BytesRecv() - before
	if err != nil {
		s.recvOverhead += arrived
		err = fmt.Errorf("grid: session recv: %w", err)
	} else {
		err = s.routeLocked(frame, arrived)
	}
	if err != nil && s.err == nil {
		s.err = err
	}
	s.cond.Broadcast()
}

// ctrlPullTimeout bounds each pull of a drain-time ctrl exchange (the
// checkpoint barrier): with no task Recv pending, nobody else would notice
// a peer that went silent, so the ctrl puller carries its own watchdog when
// the session has none. A variable so tests can shorten it.
var ctrlPullTimeout = 30 * time.Second

// pullCtrl drives the session's receive loop outside any task exchange
// until stop() reports true. Used at the stream drain barrier, where ctrl
// replies (checkpoint acks) are expected but no task is in flight to elect
// a puller. stop is evaluated with s.mu held; a session error (including
// one raised by routing the ctrl reply itself) is returned.
func (s *Session) pullCtrl(stop func() bool) error {
	timeout := s.cfg.recvTimeout
	if timeout <= 0 {
		timeout = ctrlPullTimeout
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if stop() {
			return nil
		}
		if s.err != nil {
			return s.err
		}
		if !s.pulling {
			s.pullOnceLocked(timeout)
			continue
		}
		s.cond.Wait()
	}
}

// routeLocked demultiplexes one incoming batch frame into per-task inboxes
// and attributes its bytes: tagged sub-messages to their tasks, the rest of
// the arrived bytes (framing, and everything in frames that cannot be
// routed) to session overhead, so receive-side accounting stays exact even
// when the connection is about to be quarantined. arrived is the connection
// counter's delta for this frame. Caller holds s.mu.
//
//gridlint:credit receive-side attribution: tagged bytes to tasks, the remainder to overhead
func (s *Session) routeLocked(frame transport.Message, arrived int64) error {
	if frame.Type != msgBatch {
		s.recvOverhead += arrived
		return fmt.Errorf("%w: session got frame type %d, want batch", ErrUnexpectedMessage, frame.Type)
	}
	msgs, err := decodeBatch(frame.Payload)
	// decodeBatch copies every sub-payload out of the frame buffer, so the
	// buffer is dead on both outcomes and goes back to the receive pool.
	// The arrived bytes were credited from the connection counter before
	// this point; recycling never touches accounting.
	transport.RecyclePayload(frame.Payload)
	if err != nil {
		s.recvOverhead += arrived
		return err
	}
	var tagged int64
	for _, tm := range msgs {
		if tm.TaskID == ctrlTaskID {
			// Session-scoped control traffic (window commits, checkpoint
			// acks): handled inline so ctrl messages keep their frame order
			// relative to task messages, with the bytes staying in session
			// overhead — ctrl messages belong to no task.
			if s.ctrl == nil {
				s.recvOverhead += arrived - tagged
				return fmt.Errorf("%w: ctrl message type %d on a session without a ctrl handler",
					ErrUnexpectedMessage, tm.Type)
			}
			if err := s.ctrl(tm); err != nil {
				s.recvOverhead += arrived - tagged
				return err
			}
			continue
		}
		tc, ok := s.tasks[tm.TaskID]
		if !ok {
			s.recvOverhead += arrived - tagged
			return fmt.Errorf("%w: message type %d for unknown task %d",
				ErrUnexpectedMessage, tm.Type, tm.TaskID)
		}
		tc.inbox = append(tc.inbox, transport.Message{Type: tm.Type, Payload: tm.Payload})
		tc.recv += tm.wireSize()
		tagged += tm.wireSize()
	}
	s.recvOverhead += arrived - tagged
	return nil
}

// setCtrl installs the handler for ctrl-tagged messages (TaskID ==
// ctrlTaskID). The handler runs on the elected puller with s.mu held and
// must not block or call back into the session; an error it returns is
// terminal for the session.
func (s *Session) setCtrl(fn func(taggedMsg) error) {
	s.mu.Lock()
	s.ctrl = fn
	s.mu.Unlock()
}

// sendCtrl queues one ctrl-tagged message. Its bytes land in the writer's
// overhead ledger at flush time — ctrl traffic belongs to no task.
func (s *Session) sendCtrl(typ uint8, payload []byte) error {
	tm := taggedMsg{TaskID: ctrlTaskID, Type: typ, Payload: payload}
	size := tm.wireSize()
	return s.writer.enqueue(tm, func(sent bool) {
		if sent {
			s.writer.creditOverhead(size)
		}
	})
}

// register adds a task to the demultiplexer. Task IDs are the wire-level
// routing key and must be unique for the whole life of the session, not
// just among in-flight tasks: the participant tears its side of a finished
// task down asynchronously, so immediate reuse would race it.
func (s *Session) register(taskID uint64) (*sessionTaskConn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.err; err != nil {
		return nil, err
	}
	if _, dup := s.used[taskID]; dup {
		return nil, fmt.Errorf("%w: task %d already run on this session (IDs must be unique per session)", ErrBadConfig, taskID)
	}
	s.used[taskID] = struct{}{}
	c := &sessionTaskConn{sess: s, id: taskID}
	s.tasks[taskID] = c
	return c, nil
}

func (s *Session) unregister(taskID uint64) {
	s.mu.Lock()
	delete(s.tasks, taskID)
	s.mu.Unlock()
}

// release removes a parked task from the demultiplexer AND frees its ID
// for re-registration: the task is not finished — the participant still
// holds it in flight awaiting the verdict — so the same ID returning to
// this session is the same task re-attaching, not a reuse race.
func (s *Session) release(taskID uint64) {
	s.mu.Lock()
	delete(s.tasks, taskID)
	delete(s.used, taskID)
	s.mu.Unlock()
}

// RunTask runs one task through the session, from assignment to verdict.
// It is safe for concurrent use; at most `window` calls proceed at once and
// further callers block for a slot. Task IDs must be unique across the
// session's lifetime. Detected cheats land in the outcome verdict, exactly
// as in dialogue mode — equal seeds and task IDs produce identical
// verdicts however the exchanges interleave.
//
// The outcome's byte counts cover the task's tagged messages on the wire;
// shared batch framing is reported by OverheadBytes. A failed RunTask is
// terminal for the task; callers that want reconnect-and-resume drive
// RunAttempt themselves (SupervisorPool.RunTasksStream does).
func (sess *Session) RunTask(task Task) (*TaskOutcome, error) {
	if sess.sup.cfg.Spec.Kind == SchemeDoubleCheck {
		return nil, fmt.Errorf("%w: double-check needs a replica barrier; use RunReplicated or a replicated RunTasksStream", ErrBadConfig)
	}
	at, err := sess.sup.NewAttempt(task)
	if err != nil {
		return nil, err
	}
	outcome, err := sess.RunAttempt(at)
	if err != nil {
		at.settle(sess.sup)
		return nil, fmt.Errorf("grid: session task %d: %w", task.ID, err)
	}
	return outcome, nil
}

// RunAttempt attaches a prepared task attempt to this session and drives its
// exchange as far as the connection allows. On success the outcome carries
// the attempt's cumulative byte totals across every connection it touched.
// An error wrapping ErrConnQuarantined means the connection died under the
// task: the attempt keeps its protocol state and may be re-attached to a
// session on a replacement connection (to the same participant once any
// reply was received — see taskAttempt.started). Any other error is a
// protocol-level failure and terminal.
//
//gridlint:credit folds the flushed per-connection totals into the attempt after awaitSends
func (sess *Session) RunAttempt(at *taskAttempt) (*TaskOutcome, error) {
	select {
	case sess.slots <- struct{}{}:
	case <-sess.closing:
		if sess.quarantined.Load() {
			// The session was torn down by a transport fault while this
			// attempt was on its way in; the attempt is untouched and can
			// attach to the replacement session instead.
			return nil, fmt.Errorf("%w: session closed by quarantine", ErrConnQuarantined)
		}
		return nil, fmt.Errorf("%w: session closed", ErrBadConfig)
	}
	defer func() { <-sess.slots }()

	c, err := sess.register(at.task.ID)
	if err != nil {
		return nil, quarantineWrap(err)
	}

	// A re-attach to the same live session (a replica re-claimed after
	// parking at its barrier) must not re-announce: the participant still
	// holds the task in flight on this very connection.
	at.pt.st.suppressAnnounce = at.attachedTo == sess
	at.attachedTo = sess

	err = sess.sup.runExchange(c, at.pt, nil)
	// Settle the attempt's byte totals only after the writer has flushed or
	// discarded everything this task enqueued — sent bytes mean wire bytes.
	c.awaitSends()
	sess.mu.Lock()
	at.bytesSent += c.sent.Load()
	at.bytesRecv += c.recv
	sess.mu.Unlock()
	if errors.Is(err, errReplicaParked) {
		// Not finished and not failed: the task stays live on the
		// participant; free the ID so the re-claimed attempt can register
		// here again.
		sess.release(at.task.ID)
		return nil, err
	}
	sess.unregister(at.task.ID)
	if err != nil {
		return nil, quarantineWrap(err)
	}
	at.pt.outcome.BytesSent = at.bytesSent
	at.pt.outcome.BytesRecv = at.bytesRecv
	at.settle(sess.sup)
	return at.pt.outcome, nil
}

// quarantineWrap classifies an exchange failure: transport-level faults —
// closed or timed-out connections, EOF, integrity-check failures — leave the
// attempt resumable and are wrapped in ErrConnQuarantined; anything else
// (malformed payloads, protocol violations) passes through as a terminal
// error.
func quarantineWrap(err error) error {
	if errors.Is(err, ErrConnQuarantined) {
		return err // already classified (e.g. a released replica barrier)
	}
	if errors.Is(err, transport.ErrClosed) || errors.Is(err, transport.ErrTimeout) ||
		errors.Is(err, io.EOF) || errors.Is(err, ErrFrameCorrupt) ||
		errors.Is(err, transport.ErrFrameCorrupt) {
		return fmt.Errorf("%w: %w", ErrConnQuarantined, err)
	}
	return err
}

// OverheadBytes reports session framing traffic not attributed to any task:
// batch frame headers and count prefixes, per direction. Once the session
// is closed, conn.Stats().BytesSent() == Σ outcome.BytesSent + sent exactly
// (and likewise for receive) when the session was the connection's only
// user.
func (sess *Session) OverheadBytes() (sent, recv int64) {
	sess.mu.Lock()
	recv = sess.recvOverhead
	sess.mu.Unlock()
	return sess.writer.overheadBytes(), recv
}

// abandon closes a session whose connection died: late RunAttempt arrivals
// observe a quarantine (resumable) instead of a configuration error, and the
// writer's failure to flush is expected rather than reported. No exchange
// can be blocked at a replica barrier here — parkable attempts detach from
// unready rendezvous — so waiting out the window slots cannot deadlock.
func (sess *Session) abandon() {
	sess.quarantined.Store(true)
	_ = sess.Close()
}

// Close waits for in-flight tasks, flushes pending frames, and shuts the
// session down. The connection stays open — the participant's session loop
// ends when the connection closes. Close reports any writer send error.
func (sess *Session) Close() error {
	sess.closeOnce.Do(func() {
		close(sess.closing)
		// Acquiring every window slot proves no RunTask is in flight, so
		// closing the writer cannot race an enqueue.
		for i := 0; i < sess.window; i++ {
			sess.slots <- struct{}{}
		}
		sess.closeErr = sess.writer.close()
	})
	return sess.closeErr
}
