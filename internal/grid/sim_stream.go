package grid

// Long-horizon streaming simulation.
//
// A stream run replaces the fixed task list with a lazily-consulted source
// and splits the horizon into segments of CheckpointEvery tasks. Each
// segment is one RunTaskSource call with pinned round-robin placement (so
// the task→participant pairing is a pure function of the task index) and,
// when Spec.WindowTasks > 0, per-link rolling window commitments verified
// against persistent ledgers. A segment ends at the stream's drain
// barrier: every participant persists its durable state, then the
// coordinator writes its own checkpoint — progress cursor, verdicts,
// ledgers, and the cumulative counters of connections about to be torn
// down. KillAfter exercises the recovery path: the whole attempt is torn
// down mid-segment and rebuilt purely from the checkpoint files, and the
// final report must match an uninterrupted run's.
//
// Recovery discards, never reconciles: a restart reloads BOTH sides from
// their files (in-memory state of the killed attempt is dropped on the
// floor), and a mid-segment kill is only triggered while at least one
// segment task is unsettled — the drain barrier cannot have started, so
// participant files provably sit at the same sequence as the supervisor's.

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"

	"uncheatgrid/internal/transport"
)

// supervisorCheckpointPath names the coordinator's checkpoint file.
func supervisorCheckpointPath(dir string) string {
	return filepath.Join(dir, "supervisor.ckpt")
}

// streamSimState is the coordinator's durable progress: everything a
// restart needs that is not derivable from SimConfig. Byte counters are
// cumulative across attempts (each attempt's connections die with it), so
// the final report's totals cover the whole logical run.
type streamSimState struct {
	seq                uint64
	nextTask           int
	supEvals           int64
	supSent, supRecv   int64
	partSent, partRecv []int64
	ledgers            []*WindowLedger // nil when Spec.WindowTasks == 0
	verdicts           map[uint64]Verdict
	reports            map[uint64][]Report
}

func newStreamSimState(cfg SimConfig) (*streamSimState, error) {
	n := cfg.participants()
	st := &streamSimState{
		partSent: make([]int64, n),
		partRecv: make([]int64, n),
		verdicts: make(map[uint64]Verdict),
		reports:  make(map[uint64][]Report),
	}
	if cfg.Spec.WindowTasks > 0 {
		st.ledgers = make([]*WindowLedger, n)
		for i := range st.ledgers {
			led, err := NewWindowLedger(cfg.Spec)
			if err != nil {
				return nil, err
			}
			st.ledgers[i] = led
		}
	}
	return st, nil
}

// loadStreamState returns the checkpointed coordinator state, or a fresh
// one when no checkpoint directory is configured or no file exists yet.
func loadStreamState(cfg SimConfig) (*streamSimState, error) {
	st, err := newStreamSimState(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.CheckpointDir == "" {
		return st, nil
	}
	payload, err := readCheckpointFile(supervisorCheckpointPath(cfg.CheckpointDir))
	if errors.Is(err, fs.ErrNotExist) {
		return st, nil
	}
	if err != nil {
		return nil, err
	}
	if err := st.decode(cfg, payload); err != nil {
		return nil, err
	}
	return st, nil
}

func (st *streamSimState) save(cfg SimConfig) error {
	payload, err := st.encode()
	if err != nil {
		return err
	}
	return writeCheckpointFile(supervisorCheckpointPath(cfg.CheckpointDir), payload)
}

func (st *streamSimState) encode() ([]byte, error) {
	var buf bytes.Buffer
	putUvarint(&buf, st.seq)
	putUvarint(&buf, uint64(st.nextTask))
	putUvarint(&buf, uint64(st.supEvals))
	putUvarint(&buf, uint64(st.supSent))
	putUvarint(&buf, uint64(st.supRecv))
	putUvarint(&buf, uint64(len(st.partSent)))
	for i := range st.partSent {
		putUvarint(&buf, uint64(st.partSent[i]))
		putUvarint(&buf, uint64(st.partRecv[i]))
		if st.ledgers == nil {
			buf.WriteByte(0)
			continue
		}
		buf.WriteByte(1)
		putBytes(&buf, st.ledgers[i].encodeState())
	}
	// Settled tasks are exactly [0, nextTask): segments complete in full
	// before a checkpoint is taken.
	for id := 0; id < st.nextTask; id++ {
		v, ok := st.verdicts[uint64(id)]
		if !ok {
			return nil, fmt.Errorf("grid: stream checkpoint: no verdict for settled task %d", id)
		}
		putBytes(&buf, encodeVerdict(v))
		putBytes(&buf, encodeReports(st.reports[uint64(id)]))
	}
	return buf.Bytes(), nil
}

func (st *streamSimState) decode(cfg SimConfig, payload []byte) error {
	bad := func(field string, err error) error {
		return fmt.Errorf("%w: supervisor %s: %v", ErrCheckpointCorrupt, field, err)
	}
	r := bytes.NewReader(payload)
	var err error
	if st.seq, err = binary.ReadUvarint(r); err != nil {
		return bad("seq", err)
	}
	var scalars [4]uint64
	for i, name := range []string{"next task", "evals", "bytes sent", "bytes recv"} {
		if scalars[i], err = binary.ReadUvarint(r); err != nil {
			return bad(name, err)
		}
	}
	st.nextTask = int(scalars[0])
	st.supEvals = int64(scalars[1])
	st.supSent = int64(scalars[2])
	st.supRecv = int64(scalars[3])
	n, err := binary.ReadUvarint(r)
	if err != nil || int(n) != len(st.partSent) {
		return fmt.Errorf("%w: checkpoint covers %d participants, pool has %d",
			ErrCheckpointCorrupt, n, len(st.partSent))
	}
	for i := 0; i < int(n); i++ {
		var counters [2]uint64
		for j, name := range []string{"participant sent", "participant recv"} {
			if counters[j], err = binary.ReadUvarint(r); err != nil {
				return bad(name, err)
			}
		}
		st.partSent[i], st.partRecv[i] = int64(counters[0]), int64(counters[1])
		hasLedger, err := r.ReadByte()
		if err != nil || hasLedger > 1 {
			return bad("ledger flag", err)
		}
		if (hasLedger == 1) != (st.ledgers != nil) {
			return fmt.Errorf("%w: checkpoint and config disagree on window commitments", ErrCheckpointCorrupt)
		}
		if hasLedger == 1 {
			data, err := getBytes(r)
			if err != nil {
				return bad("ledger", err)
			}
			if st.ledgers[i], err = restoreWindowLedger(cfg.Spec, data); err != nil {
				return err
			}
		}
	}
	if st.nextTask > cfg.Tasks {
		return fmt.Errorf("%w: checkpoint at task %d beyond the %d-task run", ErrCheckpointCorrupt, st.nextTask, cfg.Tasks)
	}
	for id := 0; id < st.nextTask; id++ {
		vb, err := getBytes(r)
		if err != nil {
			return bad("verdict", err)
		}
		v, err := decodeVerdict(vb)
		if err != nil {
			return bad("verdict", err)
		}
		rb, err := getBytes(r)
		if err != nil {
			return bad("reports", err)
		}
		reports, err := decodeReports(rb)
		if err != nil {
			return bad("reports", err)
		}
		st.verdicts[uint64(id)] = v
		if len(reports) > 0 {
			st.reports[uint64(id)] = reports
		}
	}
	if r.Len() != 0 {
		return fmt.Errorf("%w: supervisor checkpoint: %d trailing bytes", ErrCheckpointCorrupt, r.Len())
	}
	return nil
}

// runStreamSim drives a streaming run to completion, restarting from the
// last durable checkpoint if the configured kill fires.
func runStreamSim(cfg SimConfig, supCfg SupervisorConfig) (*SimReport, error) {
	killAfter := cfg.KillAfter
	for {
		report, killed, err := runStreamAttempt(cfg, supCfg, killAfter)
		if err != nil {
			return nil, err
		}
		if !killed {
			return report, nil
		}
		killAfter = 0 // the crash happened; the restart runs to completion
	}
}

// restorePool restores every participant from its durable checkpoint and
// holds the pool to one consistent sequence: a file from a different point
// in time than the coordinator's would desynchronize the window cursors.
func restorePool(workers []*simWorker, seq uint64) error {
	for _, w := range workers {
		got, ok, err := w.participant.RestoreCheckpoint()
		if err != nil {
			return err
		}
		if !ok && seq != 0 {
			return fmt.Errorf("%w: supervisor checkpoint at seq %d but participant %s has none",
				ErrCheckpointCorrupt, seq, w.participant.ID())
		}
		if ok && got != seq {
			return fmt.Errorf("%w: participant %s checkpoint at seq %d, supervisor at %d",
				ErrCheckpointCorrupt, w.participant.ID(), got, seq)
		}
	}
	return nil
}

// runStreamAttempt executes one attempt: restore, run segments, and either
// finish (killed == false, report set) or die at the kill point
// (killed == true) leaving only the checkpoint files behind.
//
//gridlint:credit report assembly sums per-worker traffic totals once, at shutdown
func runStreamAttempt(cfg SimConfig, supCfg SupervisorConfig, killAfter int) (report *SimReport, killed bool, err error) {
	st, err := loadStreamState(cfg)
	if err != nil {
		return nil, false, err
	}

	var hub *BrokerHub
	var muxes *muxManager
	if cfg.Broker {
		hub = NewBrokerHub()
		muxes = newMuxManager(hub)
	}
	workers, err := buildPool(cfg, hub, muxes)
	if err != nil {
		if hub != nil {
			_ = hub.Close()
		}
		if muxes != nil {
			muxes.close()
		}
		return nil, false, err
	}
	cleanup := func() error {
		if hub != nil {
			_ = hub.Close()
		}
		if muxes != nil {
			muxes.close()
		}
		return shutdownPool(workers)
	}
	fail := func(ferr error) (*SimReport, bool, error) {
		_ = cleanup()
		return nil, false, ferr
	}

	// Restore every participant and hold the pool to one consistent
	// sequence: a file from a different point in time than the
	// coordinator's would desynchronize the window cursors.
	if rerr := restorePool(workers, st.seq); rerr != nil {
		return fail(rerr)
	}

	pool, err := NewSupervisorPool(supCfg, cfg.participants()*cfg.PipelineWindow)
	if err != nil {
		return fail(err)
	}
	evalsBase := st.supEvals
	supSentBase, supRecvBase := st.supSent, st.supRecv
	partSentBase := append([]int64(nil), st.partSent...)
	partRecvBase := append([]int64(nil), st.partRecv...)
	// syncTotals folds the attempt's live connection counters onto the
	// restored bases, making st's totals cover the whole logical run.
	syncTotals := func() {
		st.supEvals = evalsBase + pool.VerifyEvals()
		var sSent, sRecv int64
		for i, w := range workers {
			ps, pr := w.trafficTotals(true)
			st.partSent[i] = partSentBase[i] + ps
			st.partRecv[i] = partRecvBase[i] + pr
			ws, wr := w.trafficTotals(false)
			sSent += ws
			sRecv += wr
		}
		st.supSent = supSentBase + sSent
		st.supRecv = supRecvBase + sRecv
	}

	total := cfg.Tasks
	segSize := cfg.CheckpointEvery
	if segSize <= 0 {
		segSize = total
	}
	settled := st.nextTask
	firstSegment := true

	// A participant-crash drill keeps the supervisor alive across the kill,
	// so the attempt must be able to roll its OWN window ledgers back to the
	// last durable barrier: snapshot them (via the exported codec) whenever
	// st.seq advances, and restore from the copies on recovery.
	participantKill := cfg.KillTarget == KillTargetParticipant && killAfter > 0
	var ledgerSnaps [][]byte
	snapLedgers := func() {
		if !participantKill || st.ledgers == nil {
			return
		}
		ledgerSnaps = make([][]byte, len(st.ledgers))
		for i, led := range st.ledgers {
			ledgerSnaps[i] = led.Snapshot()
		}
	}
	snapLedgers()
	// recoverParticipants rebuilds the participant pool from its durable
	// checkpoint files after a crash. The aborted segment left every
	// participant's in-memory commitment chain ahead of the barrier, so the
	// whole pool rolls back together — exactly like a deployment restarting
	// its worker processes — while the surviving supervisor only rewinds its
	// ledgers. Byte counters rebase onto the checkpointed totals (the dead
	// pool's partial-segment traffic died with it); the eval base is NOT
	// rebased, because the supervisor genuinely re-pays verification of the
	// re-run tasks.
	recoverParticipants := func() error {
		_ = shutdownPool(workers) // serve errors from the crash are the point
		var rerr error
		if workers, rerr = buildPool(cfg, hub, muxes); rerr != nil {
			workers = nil
			return rerr
		}
		if rerr := restorePool(workers, st.seq); rerr != nil {
			return rerr
		}
		for i := range st.ledgers {
			led, rerr := RestoreWindowLedger(cfg.Spec, ledgerSnaps[i])
			if rerr != nil {
				return rerr
			}
			st.ledgers[i] = led
		}
		partSentBase = append(partSentBase[:0], st.partSent...)
		partRecvBase = append(partRecvBase[:0], st.partRecv...)
		supSentBase, supRecvBase = st.supSent, st.supRecv
		return nil
	}

	for st.nextTask < total {
		from := st.nextTask
		to := from + segSize
		if to > total {
			to = total
		}
		// Each segment runs over fresh connections: a participant's serve
		// loop exits with its pipelined session, and a restarted attempt
		// could not reuse a dead process's sockets anyway. buildPool already
		// dialed the first set.
		conns := make([]transport.Conn, len(workers))
		for i, w := range workers {
			if firstSegment {
				conns[i] = w.supConn()
			} else {
				conns[i] = w.dial(cfg)
			}
		}
		firstSegment = false

		// The source walks absolute task indices (WithSourceBase) so pinned
		// placement assigns task i to worker i mod n regardless of where the
		// segment boundaries fall — a checkpointed run pairs tasks and
		// participants exactly like an unsegmented one.
		end := uint64(to)
		source := func(i uint64) (Task, bool) {
			if i >= end {
				return Task{}, false
			}
			return taskFor(cfg, int(i)), true
		}
		opts := []StreamOption{WithPinnedPlacement(), WithSourceBase(uint64(from))}
		if st.ledgers != nil {
			opts = append(opts, WithWindowSettle(st.ledgers))
		}
		seq := uint64(to)
		if cfg.CheckpointDir != "" {
			opts = append(opts, WithDrainCheckpoint(seq))
		}

		ctx, cancel := context.WithCancel(context.Background())
		stream, serr := pool.RunTaskSource(ctx, conns, source, cfg.PipelineWindow, opts...)
		if serr != nil {
			cancel()
			return fail(serr)
		}
		segCount := 0
		for so := range stream.Outcomes() {
			st.verdicts[so.Outcome.Task.ID] = so.Outcome.Verdict
			if len(so.Outcome.Reports) > 0 {
				st.reports[so.Outcome.Task.ID] = so.Outcome.Reports
			}
			segCount++
			settled++
			// Kill only while at least one segment task is still unsettled:
			// the outcome channel is unbuffered, so an unsettled task means a
			// live worker, meaning the drain barrier has not started and
			// cannot leave participant files ahead of the coordinator's. A
			// kill point landing on a segment boundary fires after the
			// checkpoint below instead.
			if killAfter > 0 && settled >= killAfter && settled < to && !killed {
				killed = true
				if participantKill {
					// The victim dies first, abruptly; the cancel then reaps
					// the segment the dead participant can no longer finish.
					workers[0].crash()
				}
				cancel()
			}
		}
		streamErr := stream.Err()
		cancel()
		if killed {
			if !participantKill {
				_ = cleanup() // serve errors from the abrupt teardown are the point
				return nil, true, nil
			}
			if rerr := recoverParticipants(); rerr != nil {
				return fail(rerr)
			}
			killed = false
			killAfter = 0
			settled = st.nextTask
			firstSegment = true
			continue
		}
		if streamErr != nil {
			return fail(streamErr)
		}
		if segCount != to-from {
			return fail(fmt.Errorf("grid: stream segment [%d,%d) settled %d of %d tasks",
				from, to, segCount, to-from))
		}
		st.nextTask = to
		st.seq = seq
		if cfg.CheckpointDir != "" {
			syncTotals()
			if err := st.save(cfg); err != nil {
				return fail(err)
			}
			snapLedgers()
		}
		if killAfter > 0 && settled >= killAfter {
			if participantKill {
				// A kill point on a segment boundary fires after the barrier:
				// the pool dies freshly checkpointed and restarts from it.
				workers[0].crash()
				if rerr := recoverParticipants(); rerr != nil {
					return fail(rerr)
				}
				killAfter = 0
				firstSegment = true
				continue
			}
			_ = cleanup()
			return nil, true, nil
		}
	}

	if err := cleanup(); err != nil {
		return nil, false, err
	}
	syncTotals()

	report = &SimReport{Scheme: cfg.Spec.Kind.String(), PipelineWindow: cfg.PipelineWindow}
	if hub != nil {
		// Only the final attempt's hub is reported: a restart rebuilds the
		// broker, so relay counters cover the post-restore portion of the run
		// (unlike the checkpointed task and traffic totals).
		report.Brokered = true
		report.BrokerRelayedMsgs = hub.RelayedMessages()
		report.BrokerRelayedBytes = hub.RelayedBytes()
		report.BrokerMuxLinks = hub.MuxLinks()
		report.BrokerRoutesOpened = hub.RoutesOpened()
		report.BrokerControlMsgs = hub.ControlMessages()
		report.BrokerControlBytes = hub.ControlBytes()
		report.BrokerControlInMsgs = hub.ControlIngressMessages()
		report.BrokerControlInBytes = hub.ControlIngressBytes()
		report.BrokerMuxOverheadIngress = hub.MuxOverheadIngressBytes()
		report.BrokerMuxOverheadEgress = hub.MuxOverheadEgressBytes()
	}
	for id := 0; id < total; id++ {
		v, ok := st.verdicts[uint64(id)]
		if !ok {
			return nil, false, fmt.Errorf("grid: stream run has no verdict for task %d", id)
		}
		report.TaskVerdicts = append(report.TaskVerdicts, TaskVerdict{TaskID: uint64(id), Verdict: v})
		report.Reports = append(report.Reports, st.reports[uint64(id)]...)
	}
	report.TasksAssigned = total
	for i, w := range workers {
		totals := w.participant.Totals()
		report.Participants = append(report.Participants, ParticipantSummary{
			ID:        w.participant.ID(),
			Behavior:  totals.Behavior,
			Cheater:   w.cheater,
			Tasks:     totals.Tasks,
			Accepted:  totals.Accepted,
			Rejected:  totals.Rejected,
			FEvals:    totals.FEvals,
			BytesSent: st.partSent[i],
			BytesRecv: st.partRecv[i],
		})
		if w.cheater {
			report.CheatersTotal++
			if totals.Rejected > 0 {
				report.CheatersDetected++
			}
		} else if totals.Rejected > 0 {
			report.HonestAccused++
		}
	}
	report.SupervisorBytesSent = st.supSent
	report.SupervisorBytesRecv = st.supRecv
	report.SupervisorEvals = st.supEvals
	for _, led := range st.ledgers {
		s := led.Stats()
		report.WindowsSettled += s.Settled
		report.WindowViolations += s.Violations
		report.WindowsPending += s.Pending
	}
	return report, false, nil
}
