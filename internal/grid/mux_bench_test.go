package grid

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"uncheatgrid/internal/transport"
)

// BenchmarkMuxSlowRoute pins the head-of-line isolation the bidirectional
// credit protocol buys on the worker→supervisor leg: 64 workers flood
// frames toward their routes on ONE shared physical link, and in the
// one-stalled variant route 0's supervisor-side consumer never drains its
// inbox. With hub→supervisor credits the hub simply parks the stalled
// route once its grant is spent — the 63 fast routes' aggregate throughput
// must stay within 10% of the all-drained baseline. Before this protocol
// the mux reader blocked on the full inbox and delivery to every sibling
// route froze (the "reader-blocking collapse" recorded in BENCHMARKS.md).
// One benchmark op is one drained fast-route frame.
func BenchmarkMuxSlowRoute(b *testing.B) {
	const routes = 64
	const payload = 4 << 10
	for _, stall := range []bool{false, true} {
		name := "all-drained"
		if stall {
			name = "one-stalled"
		}
		b.Run(name, func(b *testing.B) {
			hub := NewBrokerHub()
			workerConns := make([]transport.Conn, routes)
			for j := range workerConns {
				down, wc := transport.Pipe(transport.WithBuffer(8))
				if err := HelloWorker(wc, fmt.Sprintf("w-%d", j)); err != nil {
					b.Fatalf("HelloWorker: %v", err)
				}
				if err := hub.Attach(down); err != nil {
					b.Fatalf("Attach worker: %v", err)
				}
				workerConns[j] = wc
			}
			sc, hubUp := transport.Pipe(transport.WithBuffer(8))
			m, err := OpenMux(sc, "bench-sup")
			if err != nil {
				b.Fatalf("OpenMux: %v", err)
			}
			if err := hub.Attach(hubUp); err != nil {
				b.Fatalf("Attach mux link: %v", err)
			}
			conns := make([]transport.Conn, routes)
			for j := range conns {
				if conns[j], err = m.OpenRoute(fmt.Sprintf("w-%d", j)); err != nil {
					b.Fatalf("OpenRoute(w-%d): %v", j, err)
				}
			}
			for j := 0; j < routes; j++ {
				waitBinds(b, hub, fmt.Sprintf("w-%d", j), 1)
			}

			// Every worker floods frames upward until its link dies at
			// teardown. The stalled route's pusher wedges early — worker
			// pipe buffer plus the hub's bounded toSup queue plus the spent
			// credit grant — and that is the point: bounded memory, parked
			// route, fast siblings unaffected.
			var pushers sync.WaitGroup
			for _, wc := range workerConns {
				pushers.Add(1)
				go func(c transport.Conn) {
					defer pushers.Done()
					msg := transport.Message{Type: msgResultChunk, Payload: make([]byte, payload)}
					for c.Send(msg) == nil {
					}
				}(wc)
			}

			first := 0
			if stall {
				first = 1 // route 0's inbox is never drained
			}
			target := int64(b.N)
			var drained atomic.Int64
			done := make(chan struct{})
			var once sync.Once
			var consumers sync.WaitGroup
			for j := first; j < routes; j++ {
				consumers.Add(1)
				go func(c transport.Conn) {
					defer consumers.Done()
					for {
						if _, err := c.Recv(); err != nil {
							return
						}
						if drained.Add(1) == target {
							once.Do(func() { close(done) })
						}
					}
				}(conns[j])
			}

			b.ResetTimer()
			b.SetBytes(payload)
			<-done
			b.StopTimer()

			for _, wc := range workerConns {
				_ = wc.Close()
			}
			pushers.Wait()
			_ = m.Close()
			consumers.Wait()
			_ = hub.Close()
		})
	}
}
