package grid

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"uncheatgrid/internal/transport"
)

// cutConn delivers frames normally until `after` receives have happened,
// then fails every further operation with ErrClosed — a deterministic link
// cut at a known protocol point.
type cutConn struct {
	transport.Conn
	remaining atomic.Int64
}

func cutAfterRecv(conn transport.Conn, after int64) *cutConn {
	c := &cutConn{Conn: conn}
	c.remaining.Store(after)
	return c
}

func (c *cutConn) Recv() (transport.Message, error) {
	if c.remaining.Add(-1) < 0 {
		return transport.Message{}, transport.ErrClosed
	}
	return c.Conn.Recv()
}

// redialableParticipant serves a participant that can be dialed repeatedly:
// each dial opens a fresh pipe and serve goroutine, the model of a worker
// that reconnects after a link failure.
type redialableParticipant struct {
	t *testing.T
	p *Participant

	mu        sync.Mutex
	serveErrs []chan error
	supConns  []transport.Conn
}

func newRedialableParticipant(t *testing.T, factory ProducerFactory) *redialableParticipant {
	t.Helper()
	p, err := NewParticipant("p", factory)
	if err != nil {
		t.Fatalf("NewParticipant: %v", err)
	}
	return &redialableParticipant{t: t, p: p}
}

func (r *redialableParticipant) dial() transport.Conn {
	supConn, partConn := transport.Pipe(transport.WithBuffer(8))
	ch := make(chan error, 1)
	go func() { ch <- r.p.Serve(partConn) }()
	r.mu.Lock()
	r.serveErrs = append(r.serveErrs, ch)
	r.supConns = append(r.supConns, supConn)
	r.mu.Unlock()
	return supConn
}

func (r *redialableParticipant) dials() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.supConns)
}

func (r *redialableParticipant) shutdown() {
	r.t.Helper()
	r.mu.Lock()
	conns := append([]transport.Conn(nil), r.supConns...)
	errs := append([]chan error(nil), r.serveErrs...)
	r.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
	for i, ch := range errs {
		if err := <-ch; err != nil {
			r.t.Errorf("participant serve %d: %v", i, err)
		}
	}
}

// TestStreamResumesMidProtocol cuts the connection after the first reply
// frame of every scheme — guaranteeing the attempt is bound mid-protocol —
// and checks the stream reconnects, resumes, and completes every task with
// an accepting verdict for an honest participant.
func TestStreamResumesMidProtocol(t *testing.T) {
	specs := []SchemeSpec{
		{Kind: SchemeCBS, M: 6},
		{Kind: SchemeNICBS, M: 6, ChainIters: 2},
		{Kind: SchemeCBS, M: 6, SubtreeHeight: 3},
		{Kind: SchemeNaive, M: 6},
		{Kind: SchemeRinger, M: 4},
	}
	for _, spec := range specs {
		t.Run(fmt.Sprintf("%v-ell%d", spec.Kind, spec.SubtreeHeight), func(t *testing.T) {
			r := newRedialableParticipant(t, HonestFactory)
			defer r.shutdown()
			first := cutAfterRecv(r.dial(), 1)

			pool, err := NewSupervisorPool(SupervisorConfig{Spec: spec, Seed: 9}, 4)
			if err != nil {
				t.Fatalf("NewSupervisorPool: %v", err)
			}
			stream, err := pool.RunTasksStream(context.Background(),
				[]transport.Conn{first}, poolTasks(3, 64), 2,
				WithRedial(func(transport.Conn) (transport.Conn, error) { return r.dial(), nil }))
			if err != nil {
				t.Fatalf("RunTasksStream: %v", err)
			}
			count := 0
			for so := range stream.Outcomes() {
				count++
				if !so.Outcome.Verdict.Accepted {
					t.Errorf("honest task %d rejected after resume: %s", so.Outcome.Task.ID, so.Outcome.Verdict.Reason)
				}
			}
			if err := stream.Err(); err != nil {
				t.Fatalf("stream error: %v", err)
			}
			if count != 3 {
				t.Errorf("completed %d tasks, want 3", count)
			}
			if r.dials() < 2 {
				t.Errorf("no reconnect happened (dials = %d); the cut never forced a resume", r.dials())
			}
		})
	}
}

// TestStreamRestartsWhenRedialFails kills one of two connections mid-run
// with no redial available: the stranded tasks must restart from scratch on
// the surviving connection and none may be lost.
func TestStreamRestartsWhenRedialFails(t *testing.T) {
	doomed := newRedialableParticipant(t, HonestFactory)
	defer doomed.shutdown()
	healthy := newRedialableParticipant(t, HonestFactory)
	defer healthy.shutdown()

	conns := []transport.Conn{cutAfterRecv(doomed.dial(), 1), healthy.dial()}
	pool, err := NewSupervisorPool(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeCBS, M: 6}, Seed: 3}, 4)
	if err != nil {
		t.Fatalf("NewSupervisorPool: %v", err)
	}
	const tasks = 8
	stream, err := pool.RunTasksStream(context.Background(), conns, poolTasks(tasks, 64), 2)
	if err != nil {
		t.Fatalf("RunTasksStream: %v", err)
	}
	seen := make(map[uint64]bool)
	for so := range stream.Outcomes() {
		if seen[so.Outcome.Task.ID] {
			t.Errorf("task %d delivered twice", so.Outcome.Task.ID)
		}
		seen[so.Outcome.Task.ID] = true
		if !so.Outcome.Verdict.Accepted {
			t.Errorf("honest task %d rejected: %s", so.Outcome.Task.ID, so.Outcome.Verdict.Reason)
		}
	}
	if err := stream.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	if len(seen) != tasks {
		t.Errorf("completed %d tasks, want %d — tasks were silently dropped", len(seen), tasks)
	}
}

// TestDispatcherRevokesClaimOnRetire pins the revocable-claim protocol at
// the dispatcher level: a lease claimed before its connection is retired
// must fail to start, and its ticket must be rerouted to the shared queue —
// no instant survives between retirement and exchange start.
func TestDispatcherRevokesClaimOnRetire(t *testing.T) {
	pool, err := NewSupervisorPool(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeCBS, M: 4}}, 2)
	if err != nil {
		t.Fatalf("NewSupervisorPool: %v", err)
	}
	_, cancel := context.WithCancel(context.Background())
	defer cancel()
	d := newDispatcher(pool, &streamConfig{}, cancel)
	connA, _ := transport.Pipe()
	slotA := newConnSlot(connA, nil)
	d.registerConn(connA, slotA)
	d.pending = append(d.pending, ticket{task: poolTasks(1, 64)[0]})

	l, ok := d.claim(slotA)
	if !ok {
		t.Fatal("claim failed with pending work available")
	}
	// The connection is retired between claim and start — the exact window
	// the old polling gate left open.
	d.retireConn(connA)
	if d.start(l) {
		t.Fatal("lease started on a connection retired before exchange start")
	}
	d.mu.Lock()
	requeued := len(d.pending) == 1 && d.pending[0].task.ID == l.task.ID
	leaseGone := len(d.leases) == 0
	d.mu.Unlock()
	if !requeued {
		t.Error("revoked ticket was not rerouted to the shared queue")
	}
	if !leaseGone {
		t.Error("revoked lease still outstanding")
	}
}

// TestRunSimFaultyMatchesClean is the fault-injection acceptance test: a
// single-participant population (pinning the task→participant pairing) run
// with drops and garbles aggressive enough to force reconnect-and-resume
// must produce byte-identical verdicts and reports to the clean run with the
// same seeds, and no task may be lost.
func TestRunSimFaultyMatchesClean(t *testing.T) {
	base := SimConfig{
		Spec:              SchemeSpec{Kind: SchemeCBS, M: 14},
		Workload:          "synthetic",
		Seed:              21,
		TaskSize:          128,
		Tasks:             8,
		SemiHonest:        1,
		HonestyRatio:      0.5,
		CrossCheckReports: true,
		PipelineWindow:    3,
	}
	clean, err := RunSim(base)
	if err != nil {
		t.Fatalf("clean RunSim: %v", err)
	}

	faulty := base
	faulty.DropProb = 0.03
	faulty.GarbleProb = 0.12
	faulty.ReconnectLimit = 200
	faulty.FaultRecvTimeout = 250 * time.Millisecond
	report, err := RunSim(faulty)
	if err != nil {
		t.Fatalf("faulty RunSim: %v", err)
	}

	if report.Participants[0].Reconnects < 1 {
		t.Fatalf("no reconnect-and-resume was forced (reconnects = 0); the test proves nothing")
	}
	if report.TasksAssigned != base.Tasks {
		t.Errorf("faulty run completed %d tasks, want %d", report.TasksAssigned, base.Tasks)
	}
	// The supervisor's per-task rulings are the verdicts that must be
	// byte-identical; a participant's own accepted/rejected bookkeeping may
	// lag when a verdict-delivery frame is lost to a fault.
	if !reflect.DeepEqual(clean.TaskVerdicts, report.TaskVerdicts) {
		t.Errorf("verdicts diverge:\nclean:  %+v\nfaulty: %+v", clean.TaskVerdicts, report.TaskVerdicts)
	}
	if !reflect.DeepEqual(clean.Reports, report.Reports) {
		t.Errorf("report streams diverge: clean %d reports, faulty %d", len(clean.Reports), len(report.Reports))
	}
	if clean.HonestAccused != report.HonestAccused {
		t.Errorf("accusations diverge: clean %d, faulty %d", clean.HonestAccused, report.HonestAccused)
	}
}

// TestRunSimFaultyPopulation runs a mixed honest/cheating population over a
// lossy link: the stream must converge, no task may be silently dropped, and
// verdicts must match each executor's class (r=0 cheaters fabricate every
// value, so any sampled index convicts them — verdicts are deterministic per
// class regardless of which participant work stealing picked).
func TestRunSimFaultyPopulation(t *testing.T) {
	const tasks = 12
	report, err := RunSim(SimConfig{
		Spec:             SchemeSpec{Kind: SchemeCBS, M: 10},
		Workload:         "synthetic",
		Seed:             5,
		TaskSize:         96,
		Tasks:            tasks,
		Honest:           3,
		SemiHonest:       2,
		HonestyRatio:     0, // every claimed value is a guess: rejection certain
		PipelineWindow:   2,
		DropProb:         0.02,
		GarbleProb:       0.08,
		ReconnectLimit:   200,
		FaultRecvTimeout: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("RunSim: %v", err)
	}
	if report.TasksAssigned != tasks {
		t.Errorf("TasksAssigned = %d, want %d — tasks lost to faults", report.TasksAssigned, tasks)
	}
	if len(report.TaskVerdicts) != tasks {
		t.Errorf("recorded %d task verdicts, want %d", len(report.TaskVerdicts), tasks)
	}
	seen := make(map[uint64]bool)
	for _, tv := range report.TaskVerdicts {
		if seen[tv.TaskID] {
			t.Errorf("task %d ruled twice", tv.TaskID)
		}
		seen[tv.TaskID] = true
	}
	// Participant-side counters only reflect verdicts that were delivered
	// (a delivery frame can be lost to a fault), so the per-class check is
	// one-sided: no cheater may ever be accepted, no honest worker rejected.
	for _, p := range report.Participants {
		switch {
		case p.Cheater && p.Accepted > 0:
			t.Errorf("cheater %s had %d tasks accepted", p.ID, p.Accepted)
		case !p.Cheater && p.Rejected > 0:
			t.Errorf("honest participant %s rejected %d times", p.ID, p.Rejected)
		}
	}
	if report.HonestAccused != 0 {
		t.Errorf("%d honest participants accused", report.HonestAccused)
	}
}

// TestRunSimFaultyShortfallIsAnError drowns the link so thoroughly that the
// reconnect budget cannot save it: RunSim must fail loudly instead of
// returning a silently short report (a blacklist-emptied pool remains the
// only legitimate shortfall).
func TestRunSimFaultyShortfallIsAnError(t *testing.T) {
	_, err := RunSim(SimConfig{
		Spec:             SchemeSpec{Kind: SchemeCBS, M: 6},
		Workload:         "synthetic",
		Seed:             3,
		TaskSize:         64,
		Tasks:            3,
		Honest:           1,
		PipelineWindow:   2,
		DropProb:         0.9,
		ReconnectLimit:   1,
		FaultRecvTimeout: 100 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("RunSim returned success although the link cannot complete the task list")
	}
	if !strings.Contains(err.Error(), "completed") {
		t.Errorf("error %q does not report the task shortfall", err)
	}
}

// TestRunSimRejectsBadFaultConfig covers fault-field validation.
func TestRunSimRejectsBadFaultConfig(t *testing.T) {
	base := SimConfig{
		Spec: SchemeSpec{Kind: SchemeCBS, M: 6}, Workload: "synthetic",
		TaskSize: 64, Tasks: 1, Honest: 1, PipelineWindow: 2,
	}
	for name, mutate := range map[string]func(*SimConfig){
		"faults without pipeline": func(c *SimConfig) { c.DropProb = 0.1; c.PipelineWindow = 0 },
		"drop out of range":       func(c *SimConfig) { c.DropProb = 1.5 },
		"garble negative":         func(c *SimConfig) { c.GarbleProb = -0.1 },
		"negative reconnects":     func(c *SimConfig) { c.ReconnectLimit = -1 },
		"negative watchdog":       func(c *SimConfig) { c.FaultRecvTimeout = -time.Second },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := RunSim(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: err = %v, want ErrBadConfig", name, err)
		}
	}
}

// TestSessionWatchdogQuarantines pins the drop-detection path alone: a
// participant whose every send vanishes must trip the session receive
// watchdog, and the attempt must come back resumable (ErrConnQuarantined),
// not hang.
func TestSessionWatchdogQuarantines(t *testing.T) {
	r := newRedialableParticipant(t, HonestFactory)
	supConn, partConn := transport.Pipe(transport.WithBuffer(8))
	// Drop every participant→supervisor frame.
	lossy := transport.WithFaults(partConn, transport.FaultPlan{DropProb: 0.999999, Seed: 1})
	ch := make(chan error, 1)
	go func() { ch <- r.p.Serve(lossy) }()

	sup, err := NewSupervisor(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeCBS, M: 4}, Seed: 2})
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	sess, err := sup.OpenSession(supConn, 1, WithSessionRecvTimeout(150*time.Millisecond))
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	at, err := sup.NewAttempt(poolTasks(1, 64)[0])
	if err != nil {
		t.Fatalf("NewAttempt: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := sess.RunAttempt(at)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrConnQuarantined) {
			t.Errorf("RunAttempt error = %v, want ErrConnQuarantined", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("watchdog never fired; RunAttempt hung on the dropped frame")
	}
	_ = sess.Close()
	_ = supConn.Close()
	<-ch // the participant's serve loop exits on the closed connection
}

// verdictDropConn drops the first supervisor→participant frame carrying a
// verdict — a deterministic stand-in for a delivery frame lost to a fault.
type verdictDropConn struct {
	transport.Conn
	dropped atomic.Bool
}

func (c *verdictDropConn) Send(m transport.Message) error {
	if m.Type == msgBatch && !c.dropped.Load() {
		if msgs, err := decodeBatch(m.Payload); err == nil {
			for _, tm := range msgs {
				if tm.Type == msgVerdict && c.dropped.CompareAndSwap(false, true) {
					return nil // the verdict vanishes on the wire
				}
			}
		}
	}
	return c.Conn.Send(m)
}

// TestDroppedVerdictIsRedelivered pins the verdict-acknowledgement fix: a
// verdict frame lost in transit leaves the supervisor without its ack, the
// receive watchdog quarantines the connection, and the resume handshake
// re-delivers the verdict — so the participant's Accepted counter
// converges instead of staying stale, and the re-delivery is counted
// exactly once.
func TestDroppedVerdictIsRedelivered(t *testing.T) {
	r := newRedialableParticipant(t, HonestFactory)
	defer r.shutdown()
	const tasks = 2

	first := &verdictDropConn{Conn: r.dial()}
	pool, err := NewSupervisorPool(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeCBS, M: 4}, Seed: 8}, 2)
	if err != nil {
		t.Fatalf("NewSupervisorPool: %v", err)
	}
	stream, err := pool.RunTasksStream(context.Background(),
		[]transport.Conn{first}, poolTasks(tasks, 64), 1,
		WithRedial(func(transport.Conn) (transport.Conn, error) { return r.dial(), nil }),
		WithStreamRecvTimeout(200*time.Millisecond))
	if err != nil {
		t.Fatalf("RunTasksStream: %v", err)
	}
	count := 0
	for so := range stream.Outcomes() {
		count++
		if !so.Outcome.Verdict.Accepted {
			t.Errorf("honest task %d rejected: %s", so.Outcome.Task.ID, so.Outcome.Verdict.Reason)
		}
	}
	if err := stream.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	if count != tasks {
		t.Fatalf("completed %d tasks, want %d", count, tasks)
	}
	if !first.dropped.Load() {
		t.Fatal("no verdict was dropped; the test proves nothing")
	}
	if r.dials() < 2 {
		t.Fatal("dropped verdict never forced a reconnect")
	}
	totals := r.p.Totals()
	if totals.Tasks != tasks || totals.Accepted != tasks || totals.Rejected != 0 {
		t.Errorf("participant counters did not converge: tasks=%d accepted=%d rejected=%d, want %d/%d/0",
			totals.Tasks, totals.Accepted, totals.Rejected, tasks, tasks)
	}
}

// TestSessionSendCreditsOnlyWireFrames pins the flush-time crediting fix:
// frames a quarantined batch writer discards must not count toward the
// task's sent bytes. Every send on this connection fails, so nothing
// reaches the wire and the attempt must report zero sent bytes — crediting
// at enqueue time would have counted the assignment frame.
func TestSessionSendCreditsOnlyWireFrames(t *testing.T) {
	supConn, partConn := transport.Pipe()
	_ = partConn.Close() // every Send now fails with ErrClosed
	sup, err := NewSupervisor(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeCBS, M: 4}, Seed: 1})
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	sess, err := sup.OpenSession(supConn, 1)
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	at, err := sup.NewAttempt(poolTasks(1, 64)[0])
	if err != nil {
		t.Fatalf("NewAttempt: %v", err)
	}
	if _, err := sess.RunAttempt(at); !errors.Is(err, ErrConnQuarantined) {
		t.Fatalf("RunAttempt error = %v, want ErrConnQuarantined", err)
	}
	if supConn.Stats().BytesSent() != 0 {
		t.Fatalf("connection counted %d sent bytes; the pipe should have refused everything", supConn.Stats().BytesSent())
	}
	if at.bytesSent != 0 {
		t.Errorf("attempt credited %d sent bytes for frames that never hit the wire", at.bytesSent)
	}
	ovSent, _ := sess.OverheadBytes()
	if ovSent != 0 {
		t.Errorf("session overhead credited %d sent bytes for discarded frames", ovSent)
	}
	_ = sess.Close()
	_ = supConn.Close()
}

// TestStreamFaultyByteAccountingExact is the run-level accounting pin for
// faulty sessions: across drops, garbles, quarantines, and redials, the
// pool's aggregated byte counters must equal the sum of every
// supervisor-side connection's frame counters exactly — nothing lost to a
// discarded frame, nothing double-counted by an enqueue that never flushed.
func TestStreamFaultyByteAccountingExact(t *testing.T) {
	const tasks = 6
	p, err := NewParticipant("p", HonestFactory)
	if err != nil {
		t.Fatalf("NewParticipant: %v", err)
	}
	var mu sync.Mutex
	var supConns []transport.Conn
	var serveErrs []chan error
	dial := func() transport.Conn {
		supConn, partConn := transport.Pipe(transport.WithBuffer(8))
		mu.Lock()
		attempt := len(supConns)
		mu.Unlock()
		sup := transport.WithFaults(supConn, transport.FaultPlan{DropProb: 0.02, GarbleProb: 0.1, Seed: int64(2*attempt + 1)})
		part := transport.WithFaults(partConn, transport.FaultPlan{DropProb: 0.02, GarbleProb: 0.1, Seed: int64(2*attempt + 2)})
		ch := make(chan error, 1)
		go func() { ch <- p.Serve(part) }()
		mu.Lock()
		supConns = append(supConns, sup)
		serveErrs = append(serveErrs, ch)
		mu.Unlock()
		return sup
	}
	pool, err := NewSupervisorPool(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeCBS, M: 6}, Seed: 17}, 3)
	if err != nil {
		t.Fatalf("NewSupervisorPool: %v", err)
	}
	stream, err := pool.RunTasksStream(context.Background(),
		[]transport.Conn{dial()}, poolTasks(tasks, 64), 3,
		WithRedial(func(transport.Conn) (transport.Conn, error) { return dial(), nil }),
		WithMaxReconnects(500),
		WithStreamRecvTimeout(250*time.Millisecond))
	if err != nil {
		t.Fatalf("RunTasksStream: %v", err)
	}
	count := 0
	for range stream.Outcomes() {
		count++
	}
	if err := stream.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	if count != tasks {
		t.Fatalf("completed %d tasks, want %d", count, tasks)
	}

	mu.Lock()
	if len(supConns) < 2 {
		mu.Unlock()
		t.Fatal("no quarantine happened; the faulty accounting path was never exercised")
	}
	var wireSent, wireRecv int64
	for _, c := range supConns {
		wireSent += c.Stats().BytesSent()
		wireRecv += c.Stats().BytesRecv()
		_ = c.Close()
	}
	errs := append([]chan error(nil), serveErrs...)
	mu.Unlock()
	for _, ch := range errs {
		if err := <-ch; err != nil {
			t.Errorf("participant serve: %v", err)
		}
	}

	if pool.BytesSent() != wireSent {
		t.Errorf("pool BytesSent = %d, wire total %d — send crediting drifted under faults", pool.BytesSent(), wireSent)
	}
	if pool.BytesRecv() != wireRecv {
		t.Errorf("pool BytesRecv = %d, wire total %d — receive attribution drifted under faults", pool.BytesRecv(), wireRecv)
	}
}

// TestDialogueGarbleSurfacesAsLinkFault pins the dialogue-mode integrity
// fix: with per-frame checksums at the transport framing layer, a garbled
// frame in a plain dialogue exchange surfaces as a transport-level
// integrity failure — link damage — rather than a decode error blamed on
// the peer.
func TestDialogueGarbleSurfacesAsLinkFault(t *testing.T) {
	p, err := NewParticipant("p", HonestFactory)
	if err != nil {
		t.Fatalf("NewParticipant: %v", err)
	}
	supConn, partConn := transport.Pipe(transport.WithBuffer(8))
	// Garble every participant→supervisor frame.
	lossy := transport.WithFaults(partConn, transport.FaultPlan{GarbleProb: 1, Seed: 9})
	serveErr := make(chan error, 1)
	go func() { serveErr <- p.Serve(lossy) }()

	sup, err := NewSupervisor(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeCBS, M: 4}, Seed: 2})
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	_, err = sup.RunTask(supConn, poolTasks(1, 64)[0])
	if !errors.Is(err, transport.ErrFrameCorrupt) {
		t.Errorf("RunTask error = %v, want transport.ErrFrameCorrupt", err)
	}
	if errors.Is(err, ErrBadPayload) || errors.Is(err, ErrUnexpectedMessage) {
		t.Errorf("garble misclassified as peer misbehavior: %v", err)
	}
	_ = supConn.Close()
	<-serveErr // the aborted exchange may legitimately error; just drain it
}

// TestParticipantRecountsReusedTaskIDs pins the counted-tombstone scoping:
// only a resume may suppress a verdict tally. A long-lived participant
// serving a second run that numbers its tasks from zero again must count
// the new tasks' verdicts, not mistake them for re-deliveries.
func TestParticipantRecountsReusedTaskIDs(t *testing.T) {
	r := newRedialableParticipant(t, HonestFactory)
	defer r.shutdown()
	for run := 0; run < 2; run++ {
		sup, err := NewSupervisor(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeCBS, M: 4}, Seed: int64(run)})
		if err != nil {
			t.Fatalf("NewSupervisor: %v", err)
		}
		outcome, err := sup.RunTask(r.dial(), poolTasks(1, 64)[0]) // task ID 0 both runs
		if err != nil {
			t.Fatalf("run %d RunTask: %v", run, err)
		}
		if !outcome.Verdict.Accepted {
			t.Fatalf("run %d honest task rejected: %s", run, outcome.Verdict.Reason)
		}
	}
	totals := r.p.Totals()
	if totals.Tasks != 2 || totals.Accepted != 2 {
		t.Errorf("reused task ID tallied %d tasks / %d accepted, want 2/2 (stale tombstone suppressed the recount)",
			totals.Tasks, totals.Accepted)
	}
}
