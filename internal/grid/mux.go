package grid

// Supervisor-side route multiplexing.
//
// The hub side of PR 8 (broker.go) runs one reader and one writer per
// physical link no matter how many routes ride it; this file is the
// matching supervisor endpoint. A SupervisorMux owns one physical
// supervisor↔hub connection attached with a mux hello and opens any number
// of named routes over it. Each route is a transport.Conn — the session,
// pool, and stream layers use it exactly like a dedicated link — whose
// frames travel inside msgRouted envelopes:
//
//	supervisor                         hub
//	  session A ──┐                ┌── route A ── worker A
//	  session B ──┤ one phys link  ├── route B ── worker B
//	  session C ──┘   (msgRouted)  └── route C ── worker C
//
// Flow control is credit-based, per route, and symmetric. Sending: a
// route starts with a floor of send budget (the adaptive window's initial
// value, denominated in dedicated-link frame sizes), spends it as it
// sends, and is replenished by msgCredit grants the hub issues as the
// worker-side writer drains the route's queue — a route that outruns its
// slow worker blocks in Send while every other route keeps flowing.
// Receiving: the mux extends the same kind of credit to the hub per
// route, charges every delivered inner frame against it, and grants more
// as the route's consumer drains its inbox — so a route whose consumer
// stalls caps its own inbox at one adaptive window while the shared
// reader keeps delivering to its siblings, and the hub parks (not blocks)
// the starved route. Grants are written by a dedicated grant-writer
// goroutine so a consumer draining its inbox never contends with data
// senders for the physical link. Backpressure never idles the shared link
// in either direction.
//
// Route conns keep honest endpoint counters via Stats().CreditSend/Recv,
// denominated in the frame sizes their traffic would have cost on a
// dedicated link, so per-route accounting reconciles exactly with the hub's
// RouteStats; envelope framing differences live in the hub's mux overhead
// ledgers.

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"uncheatgrid/internal/transport"
)

// ErrMuxClosed is returned for operations on a closed SupervisorMux.
var ErrMuxClosed = errors.New("grid: supervisor mux closed")

// muxConfig collects OpenMux options.
type muxConfig struct {
	creditWindow int64
}

// MuxOption configures OpenMux. Options both link endpoints must agree on
// (see WithRouteCreditWindow) also implement BrokerOption.
type MuxOption interface {
	applyMux(*muxConfig)
}

// SupervisorMux multiplexes any number of supervisor↔worker routes over one
// physical hub link. Open routes with OpenRoute; each is an independent
// transport.Conn. Safe for concurrent use by any number of route owners.
type SupervisorMux struct {
	conn         transport.Conn
	label        string
	creditWindow int64

	// sendMu serializes writes to the shared physical link (the transport
	// contract allows one concurrent sender); it is a leaf lock — nothing
	// else is acquired under it.
	sendMu sync.Mutex

	mu      sync.Mutex
	routes  map[uint64]*muxRouteConn
	nextID  uint64
	closed  bool
	linkErr error
	// pendingGrants queues credit grants for the grant-writer goroutine;
	// grantStop tells it to exit once the queue is flushed or the link is
	// down. Guarded by mu, woken via grantCond.
	pendingGrants []creditMsg
	grantStop     bool
	grantCond     *sync.Cond

	// orphanFrames/orphanBytes count inner frames that arrived for a route
	// this endpoint no longer has (closed locally before the hub learned);
	// bytes are dedicated-link-equivalent frame sizes.
	orphanFrames atomic.Int64
	orphanBytes  atomic.Int64
	// Grant ledgers for the hub→supervisor direction: control frames sent
	// and their physical bytes, the credit bytes they granted, and — from
	// the sending side — the credit bytes the hub granted this endpoint.
	// They reconcile against the hub's per-route grant counters exactly.
	grantFrames    atomic.Int64
	grantWireBytes atomic.Int64
	creditGranted  atomic.Int64
	creditReceived atomic.Int64

	readerDone chan struct{}
	grantsDone chan struct{}
}

// OpenMux attaches conn to a BrokerHub as a multiplexed supervisor link and
// returns the mux. The label names the supervisor for diagnostics — it is
// not a worker identity and takes no slot in the hub's identity registry.
// The mux owns the connection from here on; Close it through the mux.
// Options both endpoints must agree on (WithRouteCreditWindow) must match
// what the hub was built with.
func OpenMux(conn transport.Conn, label string, opts ...MuxOption) (*SupervisorMux, error) {
	if conn == nil {
		return nil, fmt.Errorf("%w: nil connection", ErrBadConfig)
	}
	cfg := muxConfig{creditWindow: defaultCreditWindowBytes}
	for _, opt := range opts {
		opt.applyMux(&cfg)
	}
	if err := sendHello(conn, helloMsg{Role: helloRoleMux, Worker: label}); err != nil {
		return nil, err
	}
	m := &SupervisorMux{
		conn:         conn,
		label:        label,
		creditWindow: cfg.creditWindow,
		routes:       make(map[uint64]*muxRouteConn),
		readerDone:   make(chan struct{}),
		grantsDone:   make(chan struct{}),
	}
	m.grantCond = sync.NewCond(&m.mu)
	go m.readLoop()
	go m.grantLoop()
	return m, nil
}

// Label reports the supervisor label the mux attached with.
func (m *SupervisorMux) Label() string { return m.label }

// OrphanedFrames reports inner frames delivered for routes this endpoint
// had already closed.
func (m *SupervisorMux) OrphanedFrames() int64 { return m.orphanFrames.Load() }

// OrphanedBytes reports the dedicated-link-equivalent bytes of orphaned
// inner frames.
func (m *SupervisorMux) OrphanedBytes() int64 { return m.orphanBytes.Load() }

// GrantFrames reports how many credit-grant control frames this endpoint
// wrote to the link, and GrantWireBytes their physical frame bytes; the
// hub counts the same frames as ControlIngress.
func (m *SupervisorMux) GrantFrames() int64 { return m.grantFrames.Load() }

// GrantWireBytes reports the physical bytes of sent grant frames.
func (m *SupervisorMux) GrantWireBytes() int64 { return m.grantWireBytes.Load() }

// CreditGrantedBytes reports the credit this endpoint granted the hub for
// the worker→supervisor direction, summed over routes.
func (m *SupervisorMux) CreditGrantedBytes() int64 { return m.creditGranted.Load() }

// CreditReceivedBytes reports the credit the hub granted this endpoint for
// the supervisor→worker direction, summed over routes.
func (m *SupervisorMux) CreditReceivedBytes() int64 { return m.creditReceived.Load() }

// OpenRoutes reports how many routes are currently open on the mux.
func (m *SupervisorMux) OpenRoutes() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.routes)
}

// Failed reports whether the physical link has died (or the mux was
// closed); a failed mux opens no further routes and the owner must dial a
// fresh link.
func (m *SupervisorMux) Failed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed || m.linkErr != nil
}

// OpenRoute opens a new route to the named registered worker and returns
// its connection. The route behaves like a dedicated supervisor link dialed
// through the hub: it binds to the worker's registration (waiting up to the
// hub's bind timeout), relays frames both ways, and surfaces route or link
// death as a closed connection that the session layer's quarantine/resume
// machinery recovers from.
func (m *SupervisorMux) OpenRoute(worker string) (transport.Conn, error) {
	if worker == "" {
		return nil, fmt.Errorf("%w: empty worker identity", ErrBadConfig)
	}
	if len(worker) > maxWorkerNameLen {
		return nil, fmt.Errorf("%w: worker identity of %d bytes (max %d)",
			ErrBadConfig, len(worker), maxWorkerNameLen)
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrMuxClosed
	}
	if m.linkErr != nil {
		err := m.linkErr
		m.mu.Unlock()
		return nil, fmt.Errorf("grid: mux link down: %w", err)
	}
	id := m.nextID
	m.nextID++
	// Send credit starts at the adaptive floor — the hub extends the same
	// initial window from the shared ceiling — and the receive ledger
	// mirrors what this endpoint extends to the hub.
	r := &muxRouteConn{
		mux:    m,
		id:     id,
		worker: worker,
		credit: initialCreditWindow(m.creditWindow),
		led:    newCreditLedger(m.creditWindow),
	}
	r.cond = sync.NewCond(&r.mu)
	m.routes[id] = r
	m.mu.Unlock()
	if err := m.sendFrame(transport.Message{
		Type:    msgHello,
		Payload: encodeHello(helloMsg{Role: helloRoleOpen, Worker: worker, Route: id}),
	}); err != nil {
		m.mu.Lock()
		delete(m.routes, id)
		m.mu.Unlock()
		return nil, err
	}
	return r, nil
}

// sendFrame writes one frame to the shared physical link.
func (m *SupervisorMux) sendFrame(msg transport.Message) error {
	m.sendMu.Lock()
	defer m.sendMu.Unlock()
	//gridlint:ignore chansendunderlock sendMu is a leaf mutex whose only job is serializing this send; no other lock or queue is touched under it
	return m.conn.Send(msg)
}

// route looks up a live route by ID.
func (m *SupervisorMux) route(id uint64) *muxRouteConn {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.routes[id]
}

// dropRoute forgets a locally closed route; later deliveries to the ID are
// counted as orphans.
func (m *SupervisorMux) dropRoute(id uint64) {
	m.mu.Lock()
	delete(m.routes, id)
	m.mu.Unlock()
}

// readLoop is the physical link's only reader: it distributes envelope
// entries to route inboxes, applies credit grants, and marks routes the hub
// closed. Any receive failure — or a protocol-violating frame — kills the
// whole link: damage on a shared link is not attributable to one route, the
// exact mirror of the hub's quarantine rule.
//
//gridlint:credit orphaned-delivery accounting on the shared link is only observable at its single reader
func (m *SupervisorMux) readLoop() {
	defer close(m.readerDone)
	for {
		msg, err := m.conn.Recv()
		if err != nil {
			m.fail(err)
			return
		}
		switch msg.Type {
		case msgRouted:
			entries, err := decodeRouted(msg.Payload)
			if err != nil {
				m.fail(fmt.Errorf("%w: malformed mux envelope: %v", transport.ErrClosed, err))
				return
			}
			transport.RecyclePayload(msg.Payload)
			for _, e := range entries {
				r := m.route(e.Route)
				if r == nil {
					m.orphanFrames.Add(1)
					m.orphanBytes.Add(e.innerFrameSize())
					continue
				}
				ok, violation := r.deliver(transport.Message{Type: e.Type, Payload: e.Payload})
				if violation {
					// The hub is ignoring this endpoint's credit grants — a
					// link-level protocol violation, exactly as the hub
					// classifies a credit-ignoring supervisor.
					m.fail(fmt.Errorf("%w: route %d overran its receive credit", transport.ErrClosed, e.Route))
					return
				}
				if !ok {
					m.orphanFrames.Add(1)
					m.orphanBytes.Add(e.innerFrameSize())
				}
			}
		case msgCredit:
			c, err := decodeCredit(msg.Payload)
			if err != nil {
				m.fail(fmt.Errorf("%w: malformed credit grant: %v", transport.ErrClosed, err))
				return
			}
			if r := m.route(c.Route); r != nil {
				if !r.grant(int64(c.Bytes), int64(c.Window)) {
					m.fail(fmt.Errorf("%w: route %d send credit overflow", transport.ErrClosed, c.Route))
					return
				}
				m.creditReceived.Add(int64(c.Bytes))
			}
		case msgHello:
			hello, err := decodeHello(msg.Payload)
			if err != nil || hello.Role != helloRoleClose {
				m.fail(fmt.Errorf("%w: unexpected hello on mux link", transport.ErrClosed))
				return
			}
			if r := m.route(hello.Route); r != nil {
				r.remoteClosed()
			}
		default:
			m.fail(fmt.Errorf("%w: frame type %d invalid on mux link", transport.ErrClosed, msg.Type))
			return
		}
	}
}

// fail records the link-fatal error, closes the physical connection, and
// wakes every route with it.
func (m *SupervisorMux) fail(err error) {
	m.mu.Lock()
	if m.linkErr == nil {
		m.linkErr = err
	}
	m.grantStop = true
	m.pendingGrants = nil
	m.grantCond.Broadcast()
	routes := make([]*muxRouteConn, 0, len(m.routes))
	for _, r := range m.routes {
		routes = append(routes, r)
	}
	m.mu.Unlock()
	_ = m.conn.Close()
	for _, r := range routes {
		r.linkFailed(err)
	}
}

// Close tears down the mux: the physical link closes, every open route
// observes a dead connection, and Close blocks until the reader and the
// grant writer have exited so the mux holds no goroutines afterwards.
func (m *SupervisorMux) Close() error {
	m.mu.Lock()
	already := m.closed
	m.closed = true
	m.grantStop = true
	m.pendingGrants = nil
	m.grantCond.Broadcast()
	m.mu.Unlock()
	if !already {
		_ = m.conn.Close()
	}
	<-m.readerDone
	<-m.grantsDone
	return nil
}

// queueGrant hands one credit grant to the grant-writer goroutine. Called
// by routes after releasing their own mutex — route mutexes are leaves
// under m.mu, never the reverse.
func (m *SupervisorMux) queueGrant(g creditMsg) {
	m.mu.Lock()
	if m.grantStop || m.closed || m.linkErr != nil {
		m.mu.Unlock()
		return
	}
	m.pendingGrants = append(m.pendingGrants, g)
	m.grantCond.Broadcast()
	m.mu.Unlock()
}

// grantLoop is the mux's second and last goroutine: it writes queued
// credit grants to the shared link, so a route consumer draining its inbox
// never blocks on the physical send itself — symmetric to the hub's
// writeLoop carrying grants in its ctrl queue.
//
//gridlint:credit grant egress is only observable where the control frame is written
func (m *SupervisorMux) grantLoop() {
	defer close(m.grantsDone)
	for {
		m.mu.Lock()
		for len(m.pendingGrants) == 0 && !m.grantStop {
			m.grantCond.Wait()
		}
		if len(m.pendingGrants) == 0 {
			m.mu.Unlock()
			return
		}
		g := m.pendingGrants[0]
		m.pendingGrants = m.pendingGrants[1:]
		m.mu.Unlock()
		out := transport.Message{Type: msgCredit, Payload: encodeCredit(g)}
		if err := m.sendFrame(out); err != nil {
			m.fail(err)
			return
		}
		m.grantFrames.Add(1)
		m.grantWireBytes.Add(out.FrameSize())
		m.creditGranted.Add(int64(g.Bytes))
	}
}

// muxRouteConn is one route's supervisor endpoint: a transport.Conn whose
// frames ride the shared physical link. Send blocks while the route is out
// of credit; Recv drains the inbox the mux reader fills. Its Stats are
// credited in dedicated-link-equivalent frame sizes.
type muxRouteConn struct {
	mux    *SupervisorMux
	id     uint64
	worker string
	stats  transport.Stats

	mu     sync.Mutex
	cond   *sync.Cond
	inbox  []transport.Message
	credit int64
	// hubWindow mirrors the hub's advertised adaptive window for this
	// route's send direction (stats only).
	hubWindow int64
	// led is the receive side: the credit this endpoint has extended to
	// the hub for the route's inbox, and the adaptive window sizing it.
	// queued tracks inbox occupancy in dedicated-link frame sizes.
	led    creditLedger
	queued int64
	closed bool // Close called locally
	// remote is set by the hub's close notice: the worker side of the route
	// is finished. Recv drains the inbox then reports io.EOF, mirroring a
	// dedicated link's drain-after-peer-close contract.
	remote  bool
	linkErr error
}

var _ transport.Conn = (*muxRouteConn)(nil)

// Worker reports the worker identity the route was opened to.
func (r *muxRouteConn) Worker() string { return r.worker }

// Stats implements transport.Conn.
func (r *muxRouteConn) Stats() *transport.Stats { return &r.stats }

// Send implements transport.Conn: it spends route credit (blocking while
// exhausted), wraps the frame in a single-entry envelope, and writes it to
// the shared link. The debit may push the balance negative for one frame
// larger than the whole window — the hub's queue bound allows exactly that
// overshoot, so oversized-but-legal frames cannot deadlock.
func (r *muxRouteConn) Send(m transport.Message) error {
	if int64(len(m.Payload)) > muxInnerPayloadCap {
		return fmt.Errorf("%w: %d-byte payload cannot cross a multiplexed link",
			transport.ErrFrameTooLarge, len(m.Payload))
	}
	size := m.FrameSize()
	r.mu.Lock()
	for r.credit <= 0 && !r.closed && !r.remote && r.linkErr == nil {
		r.cond.Wait()
	}
	if r.closed || r.remote || r.linkErr != nil {
		r.mu.Unlock()
		return transport.ErrClosed
	}
	r.credit -= size
	r.mu.Unlock()
	payload := encodeRouted([]routedEntry{{Route: r.id, Type: m.Type, Payload: m.Payload}})
	if err := r.mux.sendFrame(transport.Message{Type: msgRouted, Payload: payload}); err != nil {
		return err
	}
	r.stats.CreditSend(size)
	return nil
}

// Recv implements transport.Conn: inbox frames first, then the route's
// terminal condition — ErrClosed after a local Close, the link error after
// a link failure, io.EOF once the hub announced the worker side finished.
// Each drain feeds the receive ledger; when a grant falls due it is handed
// to the mux's grant writer (after releasing the route mutex — the grant
// queue lives under m.mu, which is never taken under r.mu). Grants ride
// the link as control frames, not route traffic: they never touch the
// route's Stats, so per-route endpoint counters keep reconciling with the
// hub's RouteStats.
func (r *muxRouteConn) Recv() (transport.Message, error) {
	r.mu.Lock()
	for {
		if len(r.inbox) > 0 {
			m := r.inbox[0]
			r.inbox[0] = transport.Message{}
			r.inbox = r.inbox[1:]
			if len(r.inbox) == 0 {
				r.inbox = nil
			}
			size := m.FrameSize()
			r.queued -= size
			r.led.drain(size)
			var grant creditMsg
			if !r.closed && !r.remote && r.linkErr == nil {
				if g := r.led.grantDue(r.queued); g > 0 {
					grant = creditMsg{Route: r.id, Bytes: uint64(g), Window: uint64(r.led.win)}
				}
			}
			r.mu.Unlock()
			r.stats.CreditRecv(size)
			if grant.Bytes > 0 {
				r.mux.queueGrant(grant)
			}
			return m, nil
		}
		switch {
		case r.closed:
			r.mu.Unlock()
			return transport.Message{}, transport.ErrClosed
		case r.linkErr != nil:
			err := r.linkErr
			r.mu.Unlock()
			return transport.Message{}, err
		case r.remote:
			r.mu.Unlock()
			return transport.Message{}, io.EOF
		}
		r.cond.Wait()
	}
}

// Close implements transport.Conn: the route is retired locally, pending
// Send/Recv calls unblock, and — when the link is still healthy — a
// best-effort close hello tells the hub to drain and retire the route.
func (r *muxRouteConn) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	notify := r.linkErr == nil && !r.remote
	r.cond.Broadcast()
	r.mu.Unlock()
	r.mux.dropRoute(r.id)
	if notify {
		_ = r.mux.sendFrame(transport.Message{
			Type:    msgHello,
			Payload: encodeHello(helloMsg{Role: helloRoleClose, Worker: r.worker, Route: r.id}),
		})
	}
	return nil
}

// deliver appends one inner frame to the inbox, charging it against the
// credit this endpoint extended. ok=false means the route is closed and
// the frame is the caller's orphan to count; violation=true means the hub
// overran the route's credit beyond the one-frame slack — the caller must
// kill the link.
func (r *muxRouteConn) deliver(m transport.Message) (ok, violation bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false, false
	}
	if !r.led.arrive(m.FrameSize()) {
		return false, true
	}
	r.queued += m.FrameSize()
	r.inbox = append(r.inbox, m)
	r.cond.Broadcast()
	return true, false
}

// grant adds a hub credit grant to the send budget and records the hub's
// advertised window. False means the balance overflowed past any honest
// window — a link violation the caller must act on.
func (r *muxRouteConn) grant(n, window int64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.credit += n
	r.hubWindow = window
	r.cond.Broadcast()
	return r.credit <= maxCreditGrant
}

// remoteClosed records the hub's close notice for the route.
func (r *muxRouteConn) remoteClosed() {
	r.mu.Lock()
	r.remote = true
	r.cond.Broadcast()
	r.mu.Unlock()
}

// linkFailed records the shared link's death on the route.
func (r *muxRouteConn) linkFailed(err error) {
	r.mu.Lock()
	if r.linkErr == nil {
		r.linkErr = err
	}
	r.cond.Broadcast()
	r.mu.Unlock()
}
