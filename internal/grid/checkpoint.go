package grid

// Durable checkpoints for long-horizon runs.
//
// A checkpoint file is a small, self-verifying envelope:
//
//	"UGCP" | version (1 byte) | uvarint payload length | payload | CRC32
//
// The CRC (IEEE, little-endian) covers everything before it, so torn
// writes, truncation, and bit rot all surface as ErrCheckpointCorrupt
// instead of silently restoring garbage. Files are written to a temp name
// and renamed into place, so a crash mid-write leaves the previous
// checkpoint intact.
//
// Checkpoints are taken at quiesce points — the stream drain barrier —
// so neither side serializes in-flight task state: the participant saves
// its counters and rolling-window state, the supervisor (via the sim or
// embedding application) saves its window ledgers and progress cursor.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"uncheatgrid/internal/hashchain"
	"uncheatgrid/internal/merkle"
)

// ErrCheckpointCorrupt reports a checkpoint file that failed structural or
// checksum validation.
var ErrCheckpointCorrupt = errors.New("grid: checkpoint file corrupt")

// checkpointMagic opens every checkpoint file; the trailing byte is the
// format version.
var checkpointMagic = []byte{'U', 'G', 'C', 'P', 0x01}

// encodeCheckpointFile wraps payload in the checkpoint envelope.
func encodeCheckpointFile(payload []byte) []byte {
	var buf bytes.Buffer
	buf.Write(checkpointMagic)
	putUvarint(&buf, uint64(len(payload)))
	buf.Write(payload)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf.Bytes()))
	buf.Write(crc[:])
	return buf.Bytes()
}

// parseCheckpointFile validates the envelope and returns the payload.
func parseCheckpointFile(data []byte) ([]byte, error) {
	if len(data) < len(checkpointMagic)+1+4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrCheckpointCorrupt, len(data))
	}
	if !bytes.Equal(data[:len(checkpointMagic)], checkpointMagic) {
		return nil, fmt.Errorf("%w: bad magic or version", ErrCheckpointCorrupt)
	}
	body, crc := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != crc {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCheckpointCorrupt)
	}
	r := bytes.NewReader(body[len(checkpointMagic):])
	n, err := binary.ReadUvarint(r)
	if err != nil || n != uint64(r.Len()) {
		return nil, fmt.Errorf("%w: payload length", ErrCheckpointCorrupt)
	}
	payload := make([]byte, n)
	copy(payload, body[len(body)-int(n):])
	return payload, nil
}

// writeCheckpointFile atomically persists payload at path, creating the
// checkpoint directory on first use.
func writeCheckpointFile(path string, payload []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, encodeCheckpointFile(payload), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// readCheckpointFile loads and validates the checkpoint at path.
func readCheckpointFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parseCheckpointFile(data)
}

// participantCheckpointPath names a participant's checkpoint file. IDs are
// expected to be filename-safe labels (the sim uses "honest-3" style); the
// path is rooted in the configured directory either way.
func participantCheckpointPath(dir, id string) string {
	return filepath.Join(dir, "participant-"+id+".ckpt")
}

// WriteCheckpoint persists the participant's durable state — counters and
// rolling-window commitment state — under the configured checkpoint
// directory. Without one it is a no-op: the caller still acknowledges the
// checkpoint barrier, it just has nothing to restore from. Call at quiesce
// (the stream drain barrier); in-flight tasks are deliberately not saved,
// the supervisor re-runs them after a restore.
func (p *Participant) WriteCheckpoint(seq uint64) error {
	if p.cfg.checkpointDir == "" {
		return nil
	}
	payload, err := p.encodeCheckpointPayload(seq)
	if err != nil {
		return err
	}
	return writeCheckpointFile(participantCheckpointPath(p.cfg.checkpointDir, p.id), payload)
}

// RestoreCheckpoint loads the participant's durable state from the
// configured checkpoint directory. It reports the restored checkpoint
// sequence and whether a checkpoint existed; a missing file is a fresh
// start, not an error.
func (p *Participant) RestoreCheckpoint() (seq uint64, ok bool, err error) {
	if p.cfg.checkpointDir == "" {
		return 0, false, nil
	}
	payload, err := readCheckpointFile(participantCheckpointPath(p.cfg.checkpointDir, p.id))
	if errors.Is(err, fs.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	seq, err = p.decodeCheckpointPayload(payload)
	if err != nil {
		return 0, false, err
	}
	return seq, true, nil
}

func (p *Participant) encodeCheckpointPayload(seq uint64) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var buf bytes.Buffer
	putUvarint(&buf, seq)
	putString(&buf, p.id)
	putString(&buf, p.behavior)
	putUvarint(&buf, uint64(p.evals))
	putUvarint(&buf, uint64(p.tasks))
	putUvarint(&buf, uint64(p.accepted))
	putUvarint(&buf, uint64(p.rejected))
	if p.windows == nil {
		buf.WriteByte(0)
		return buf.Bytes(), nil
	}
	buf.WriteByte(1)
	if err := p.windows.encodeState(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (p *Participant) decodeCheckpointPayload(payload []byte) (uint64, error) {
	bad := func(field string, err error) error {
		return fmt.Errorf("%w: %s: %v", ErrCheckpointCorrupt, field, err)
	}
	r := bytes.NewReader(payload)
	seq, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, bad("seq", err)
	}
	id, err := getString(r)
	if err != nil {
		return 0, bad("id", err)
	}
	if id != p.id {
		return 0, fmt.Errorf("%w: checkpoint of participant %q restored into %q", ErrCheckpointCorrupt, id, p.id)
	}
	behavior, err := getString(r)
	if err != nil {
		return 0, bad("behavior", err)
	}
	var counters [4]uint64
	for i, name := range []string{"evals", "tasks", "accepted", "rejected"} {
		if counters[i], err = binary.ReadUvarint(r); err != nil {
			return 0, bad(name, err)
		}
	}
	hasWindows, err := r.ReadByte()
	if err != nil || hasWindows > 1 {
		return 0, bad("windows flag", err)
	}
	var windows *participantWindows
	if hasWindows == 1 {
		if windows, err = decodeParticipantWindows(r); err != nil {
			return 0, err
		}
	}
	if r.Len() != 0 {
		return 0, fmt.Errorf("%w: %d trailing bytes", ErrCheckpointCorrupt, r.Len())
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.behavior = behavior
	p.evals = int64(counters[0])
	p.tasks = int(counters[1])
	p.accepted = int(counters[2])
	p.rejected = int(counters[3])
	p.windows = windows
	return seq, nil
}

// encodeState serializes the rolling-window state: window geometry, cursor,
// commit count, the digests of tasks settled but not yet covered by a
// window, and the full-stream builder's frontier.
func (pw *participantWindows) encodeState(buf *bytes.Buffer) error {
	pw.mu.Lock()
	defer pw.mu.Unlock()
	putUvarint(buf, uint64(pw.w))
	putUvarint(buf, uint64(pw.m))
	putUvarint(buf, pw.commits)
	snap := pw.cursor.Snapshot()
	putBytes(buf, snap.State)
	putUvarint(buf, snap.Window)
	putUvarint(buf, uint64(len(pw.ids)))
	for i, id := range pw.ids {
		putUvarint(buf, id)
		putBytes(buf, pw.digests[i])
	}
	streamSnap, err := pw.stream.Snapshot()
	if err != nil {
		return err
	}
	streamBytes, err := streamSnap.MarshalBinary()
	if err != nil {
		return err
	}
	putBytes(buf, streamBytes)
	return nil
}

// decodeParticipantWindows reverses encodeState.
func decodeParticipantWindows(r *bytes.Reader) (*participantWindows, error) {
	bad := func(field string, err error) error {
		return fmt.Errorf("%w: windows %s: %v", ErrCheckpointCorrupt, field, err)
	}
	w, err := binary.ReadUvarint(r)
	if err != nil || w < 1 || w > maxWindowCommitTasks {
		return nil, bad("w", err)
	}
	m, err := binary.ReadUvarint(r)
	if err != nil || m < 1 || m > w {
		return nil, bad("m", err)
	}
	commits, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, bad("commits", err)
	}
	cursorState, err := getBytes(r)
	if err != nil {
		return nil, bad("cursor state", err)
	}
	cursorWindow, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, bad("cursor window", err)
	}
	cursor, err := windowChain().RestoreCursor(hashchain.CursorSnapshot{State: cursorState, Window: cursorWindow})
	if err != nil {
		return nil, bad("cursor", err)
	}
	pendN, err := binary.ReadUvarint(r)
	if err != nil || pendN >= w {
		return nil, bad("pending count", err)
	}
	ids := make([]uint64, pendN)
	digests := make([][]byte, pendN)
	for i := range ids {
		if ids[i], err = binary.ReadUvarint(r); err != nil {
			return nil, bad("pending id", err)
		}
		if digests[i], err = getBytes(r); err != nil {
			return nil, bad("pending digest", err)
		}
	}
	streamBytes, err := getBytes(r)
	if err != nil {
		return nil, bad("stream snapshot", err)
	}
	var streamSnap merkle.StreamSnapshot
	if err := streamSnap.UnmarshalBinary(streamBytes); err != nil {
		return nil, bad("stream snapshot", err)
	}
	stream, err := merkle.RestoreStreamBuilder(&streamSnap)
	if err != nil {
		return nil, bad("stream builder", err)
	}
	return &participantWindows{
		w:       int(w),
		m:       int(m),
		cursor:  cursor,
		commits: commits,
		ids:     ids,
		digests: digests,
		stream:  stream,
	}, nil
}

// encodeState serializes the supervisor-side window ledger; pending digests
// are sorted by task ID so equal ledgers serialize to equal bytes.
func (led *WindowLedger) encodeState() []byte {
	led.mu.Lock()
	defer led.mu.Unlock()
	var buf bytes.Buffer
	snap := led.cursor.Snapshot()
	putBytes(&buf, snap.State)
	putUvarint(&buf, snap.Window)
	putUvarint(&buf, led.settled)
	putUvarint(&buf, led.violations)
	putString(&buf, led.lastReason)
	ids := make([]uint64, 0, len(led.pend))
	for id := range led.pend {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	putUvarint(&buf, uint64(len(ids)))
	for _, id := range ids {
		putUvarint(&buf, id)
		putBytes(&buf, led.pend[id])
	}
	return buf.Bytes()
}

// Snapshot serializes the ledger — hash-chain cursor, settled/violation
// counters, and the pending digests of the open window — for
// RestoreWindowLedger, wrapped in the self-verifying checkpoint envelope
// (magic, version, CRC) so the bytes are durable-ready as written. Safe to
// call at any time (it locks the ledger), but a snapshot taken mid-window
// only round-trips verdict-identically when the participant side is
// restored to the same barrier; take it at a quiesced checkpoint boundary,
// as RunSim's kill drills do.
func (led *WindowLedger) Snapshot() []byte {
	return encodeCheckpointFile(led.encodeState())
}

// RestoreWindowLedger rebuilds a ledger from a Snapshot taken under the
// same spec, so library users — not just RunSim — can restart a streaming
// run with rolling-commitment continuity: the restored ledger expects
// exactly the next window the participant's restored committer will send.
// A corrupt or truncated snapshot surfaces as ErrCheckpointCorrupt — the
// envelope CRC covers every byte.
func RestoreWindowLedger(spec SchemeSpec, snap []byte) (*WindowLedger, error) {
	payload, err := parseCheckpointFile(snap)
	if err != nil {
		return nil, err
	}
	return restoreWindowLedger(spec, payload)
}

// restoreWindowLedger rebuilds a ledger for spec from encodeState output.
func restoreWindowLedger(spec SchemeSpec, data []byte) (*WindowLedger, error) {
	bad := func(field string, err error) error {
		return fmt.Errorf("%w: ledger %s: %v", ErrCheckpointCorrupt, field, err)
	}
	led, err := NewWindowLedger(spec)
	if err != nil {
		return nil, err
	}
	r := bytes.NewReader(data)
	cursorState, err := getBytes(r)
	if err != nil {
		return nil, bad("cursor state", err)
	}
	cursorWindow, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, bad("cursor window", err)
	}
	if led.cursor, err = windowChain().RestoreCursor(hashchain.CursorSnapshot{State: cursorState, Window: cursorWindow}); err != nil {
		return nil, bad("cursor", err)
	}
	if led.settled, err = binary.ReadUvarint(r); err != nil {
		return nil, bad("settled", err)
	}
	if led.violations, err = binary.ReadUvarint(r); err != nil {
		return nil, bad("violations", err)
	}
	if led.lastReason, err = getString(r); err != nil {
		return nil, bad("last reason", err)
	}
	pendN, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, bad("pending count", err)
	}
	for i := uint64(0); i < pendN; i++ {
		id, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, bad("pending id", err)
		}
		digest, err := getBytes(r)
		if err != nil {
			return nil, bad("pending digest", err)
		}
		led.pend[id] = digest
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: ledger: %d trailing bytes", ErrCheckpointCorrupt, r.Len())
	}
	return led, nil
}
