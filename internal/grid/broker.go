package grid

// The GRACE broker hub.
//
// Section 4 of the paper motivates NI-CBS with the GRACE deployment: a Grid
// Resource Broker sits between supervisor and participants, so the
// supervisor cannot open interactive challenge rounds. The first cut of
// this repo modeled that broker as a two-connection frame copier (one
// relay goroutine pair per supervisor↔participant link, no identities, no
// recovery). This file replaces it with a BrokerHub:
//
//   - Identity-routed multiplexing. Every link attached to the hub opens
//     with a msgHello handshake (wire.go): participant links register under
//     a worker identity, supervisor links name the worker they want, and
//     the hub binds the pair into a route. One hub relays any number of
//     supervisor↔worker routes concurrently.
//
//   - Resume-through-relay. Routing is by identity, not by physical link:
//     when a transport fault kills a route, a supervisor redial whose hello
//     names the same worker is re-bound to that worker's freshly registered
//     link, so the msgResume machinery of PR 3/4 (mid-protocol resume,
//     verdict re-delivery) works end-to-end through the relay. Faulty
//     brokered verdicts are byte-identical to clean direct runs (pinned by
//     TestRunSimBrokeredFaultyMatchesClean).
//
//   - Relay-hop batching. Frames bound for the same downstream link are
//     re-coalesced at the hub: consecutive msgBatch frames queued behind a
//     slow downstream send are decoded and merged into one larger batch
//     frame, so a pipelined NI-CBS session pays the downstream link delay
//     once per burst instead of once per frame — the Goodrich pipeline
//     shape (arXiv:0906.1225) applied at the relay hop. Per-task tagged
//     byte accounting is preserved exactly (a tagged message's wire size
//     is independent of which frame carries it); only shared framing
//     overhead differs between the two hops.
//
//   - Fault transparency. A CRC-corrupt frame crossing the relay
//     (transport.ErrFrameCorrupt) quarantines the affected route — both
//     endpoint links are closed, so each peer observes a dead connection
//     and the session layer's quarantine/resume machinery takes over — and
//     never kills the hub: other routes keep relaying.
//
// The hub is still protocol-oblivious where it matters: it never
// interprets task payloads and forwards frames it cannot re-batch
// untouched. It understands exactly two things — the hello handshake and
// the msgBatch envelope.

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"uncheatgrid/internal/transport"
)

// ErrBrokerClosed is returned for operations on a closed hub.
var ErrBrokerClosed = errors.New("grid: broker hub closed")

// defaultBindTimeout bounds how long a supervisor-role attach waits for the
// named worker to register before the link is refused.
const defaultBindTimeout = 10 * time.Second

// brokerConfig collects NewBrokerHub options.
type brokerConfig struct {
	batching     bool
	bindTimeout  time.Duration
	creditWindow int64
}

// BrokerOption configures NewBrokerHub.
type BrokerOption interface {
	applyBroker(*brokerConfig)
}

type relayBatchingOption bool

func (o relayBatchingOption) applyBroker(c *brokerConfig) { c.batching = bool(o) }

// WithRelayBatching toggles relay-hop batching (default on): when enabled,
// msgBatch frames queued for the same downstream link are merged into one
// larger batch frame before forwarding, so bursts pay the downstream send
// cost once. Off, the hub forwards frame for frame like the original
// oblivious relay.
func WithRelayBatching(on bool) BrokerOption { return relayBatchingOption(on) }

type bindTimeoutOption time.Duration

func (o bindTimeoutOption) applyBroker(c *brokerConfig) { c.bindTimeout = time.Duration(o) }

// WithBindTimeout bounds how long a supervisor link waits for its named
// worker to register, and how long any attached link may take to send its
// hello (default 10s for both). A timed-out bind or handshake closes the
// link, which the peer's session layer treats like any other dead
// connection.
func WithBindTimeout(d time.Duration) BrokerOption { return bindTimeoutOption(d) }

// LinkOption configures both endpoints of a multiplexed hub link: it is
// accepted by NewBrokerHub and OpenMux, so a parameter both sides must
// agree on can be passed from one value.
type LinkOption interface {
	BrokerOption
	MuxOption
}

type routeCreditWindowOption int64

func (o routeCreditWindowOption) value() (int64, bool) {
	if o <= 0 {
		return 0, false
	}
	// The wire decoders reject grants and windows above maxCreditGrant, so
	// a ceiling beyond it could never be granted anyway.
	if o > maxCreditGrant {
		return maxCreditGrant, true
	}
	return int64(o), true
}

func (o routeCreditWindowOption) applyBroker(c *brokerConfig) {
	if v, ok := o.value(); ok {
		c.creditWindow = v
	}
}

func (o routeCreditWindowOption) applyMux(c *muxConfig) {
	if v, ok := o.value(); ok {
		c.creditWindow = v
	}
}

// WithRouteCreditWindow sets the per-route credit window CEILING of a
// multiplexed link, in dedicated-link-equivalent frame bytes (default
// 256 KiB). Flow control is credit-based in both directions: each
// receiver extends byte credit per route, the sender stops when its
// balance runs dry, and the receiver grants more as the route's consumer
// drains. The window itself is adaptive — it starts at the
// minRouteCreditWindowBytes floor (32 KiB, or the ceiling if smaller),
// grows with the route's observed drain rate up to this ceiling, and
// decays toward the floor when the route idles — so a slow or idle route
// bounds its own receiver memory near the floor instead of the whole
// link's, and a 1k-route hub holds far less than routes × ceiling. Both
// endpoints must use the same ceiling — pass the option to NewBrokerHub
// and to every OpenMux on that hub — because each side computes the
// other's initial credit from it. Values below 1 select the default.
func WithRouteCreditWindow(n int64) LinkOption { return routeCreditWindowOption(n) }

// RouteDirectionStats counts one direction of a worker's relayed traffic.
// Ingress is measured as frames arrive at the hub on the direction's source
// link; egress as frames leave it, after any relay-hop re-batching — with
// batching on, egress carries the same tagged payload in fewer, larger
// frames. Corrupt frames are attributed to the direction whose source link
// they arrived on. On a multiplexed supervisor link the supervisor-side
// measurements are denominated in inner frame sizes (what the frame would
// have cost on a dedicated link): ToWorker ingress and ToSupervisor egress
// count inner frames, while the worker-link side still counts physical
// frames, so per-route numbers stay comparable across link kinds and the
// shared-envelope framing difference is carried by the hub's signed mux
// overhead ledgers instead.
type RouteDirectionStats struct {
	IngressMsgs, IngressBytes   int64
	EgressMsgs, EgressBytes     int64
	CorruptFrames, CorruptBytes int64
}

// RouteStats aggregates one worker identity's relay traffic across every
// route the hub ever bound for it (redials included). For dedicated
// (non-muxed) links the counters reconcile exactly with the hub-side
// endpoint counters per link side:
//
//	supervisor-facing endpoint bytes received ==
//	    SupervisorHelloBytes + ToWorker ingress + ToWorker corrupt bytes
//	worker-facing endpoint bytes received ==
//	    WorkerHelloBytes + ToSupervisor ingress + ToSupervisor corrupt bytes
//	each side's endpoint bytes sent == the direction's egress bytes
//
// On a muxed supervisor link the per-worker counters cover the inner
// frames and the open/close handshakes; the physical link's remaining
// bytes are the hub's link-level ledgers, so for a hub whose supervisor
// traffic all rides muxed links:
//
//	muxed endpoint bytes received at the hub ==
//	    MuxHelloBytes + Σ SupervisorHelloBytes + Σ ToWorker ingress
//	    + MuxOverheadIngressBytes + OrphanedBytes + MuxCorruptBytes
//	    + ControlIngressBytes
//	muxed endpoint bytes sent by the hub ==
//	    Σ ToSupervisor egress + MuxOverheadEgressBytes + ControlBytes
type RouteStats struct {
	// Worker is the identity the counters are keyed by.
	Worker string
	// Binds counts supervisor links bound to this worker.
	Binds int64
	// WorkerHelloBytes and SupervisorHelloBytes count handshake frames the
	// hub consumed on this worker's links (never relayed).
	WorkerHelloBytes, SupervisorHelloBytes int64
	// CorruptFrames and CorruptBytes total the frames that failed the
	// transport CRC crossing the relay, both directions; each one
	// quarantined its route. Per-side counts live in the directions.
	CorruptFrames, CorruptBytes int64
	// ToWorker covers supervisor→participant relaying, ToSupervisor the
	// reverse direction.
	ToWorker, ToSupervisor RouteDirectionStats
	// ToWorkerGrantedBytes totals the credit the hub granted back to the
	// supervisor for this worker's ToWorker direction on muxed links;
	// ToWorkerWindowBytes is the adaptive window target the latest grant
	// advertised. The grant ledger reconciles per live route as
	// initial window + granted == ToWorker ingress + outstanding.
	ToWorkerGrantedBytes, ToWorkerWindowBytes int64
	// ToSupervisorGrantedBytes totals the credit supervisors granted the
	// hub for this worker's ToSupervisor direction;
	// ToSupervisorWindowBytes is the peer's latest advertised window, and
	// ToSupervisorStalls counts the times a route was parked out of the
	// shared writer's ready ring for lack of supervisor credit — each park
	// is a slow consumer isolated instead of a link stalled.
	ToSupervisorGrantedBytes, ToSupervisorWindowBytes int64
	ToSupervisorStalls                                int64
}

// dirCounters is the mutable form of RouteDirectionStats.
type dirCounters struct {
	ingressMsgs, ingressBytes   atomic.Int64
	egressMsgs, egressBytes     atomic.Int64
	corruptFrames, corruptBytes atomic.Int64
}

func (d *dirCounters) snapshot() RouteDirectionStats {
	return RouteDirectionStats{
		IngressMsgs:   d.ingressMsgs.Load(),
		IngressBytes:  d.ingressBytes.Load(),
		EgressMsgs:    d.egressMsgs.Load(),
		EgressBytes:   d.egressBytes.Load(),
		CorruptFrames: d.corruptFrames.Load(),
		CorruptBytes:  d.corruptBytes.Load(),
	}
}

// workerCounters accumulates one worker identity's relay accounting across
// every route bound for it.
type workerCounters struct {
	binds                atomic.Int64
	workerHelloBytes     atomic.Int64
	supervisorHelloBytes atomic.Int64
	toWorker             dirCounters
	toSupervisor         dirCounters
	// Credit flow-control ledgers, muxed links only: cumulative grant
	// bytes per direction, latest advertised window per direction (gauges),
	// and ready-ring parks for lack of supervisor credit.
	toWorkerGranted atomic.Int64
	toWorkerWindow  atomic.Int64
	toSupGranted    atomic.Int64
	toSupWindow     atomic.Int64
	toSupStalls     atomic.Int64
}

// BrokerHub is the session-aware GRACE broker: an identity-routed relay
// multiplexing any number of supervisor↔worker routes, with relay-hop
// batching and per-route exact byte accounting. Attach links with Attach
// after their first frame (sent by HelloWorker / HelloSupervisor /
// OpenMux) names their role and worker. A muxed supervisor link carries
// any number of routes over one physical connection; the hub runs one
// reader and one writer goroutine per physical link, never per route.
type BrokerHub struct {
	cfg brokerConfig

	relayedMsgs  atomic.Int64
	relayedBytes atomic.Int64
	// rejected counts links (and their received bytes) whose handshake the
	// hub refused: corrupt or malformed hellos, unknown frame types.
	rejectedLinks atomic.Int64
	rejectedBytes atomic.Int64
	// evicted counts registered-but-unbound worker links whose monitor
	// observed a read error before any supervisor bound them, and the bytes
	// that died with them.
	evictedLinks atomic.Int64
	evictedBytes atomic.Int64

	// Mux-link ledgers. Data relayed on muxed links is attributed to
	// per-worker counters in inner frame sizes; everything else about the
	// shared physical link lands here so the endpoint byte counters still
	// reconcile exactly (see RouteStats).
	muxLinks      atomic.Int64 // muxed supervisor links ever attached
	routesOpened  atomic.Int64 // routes ever opened on muxed links
	muxHelloBytes atomic.Int64 // mux-attach handshake frames consumed
	// ctrlMsgs/ctrlBytes count hub-originated control frames on muxed
	// links: credit grants and close notices. Never part of RelayedBytes.
	ctrlMsgs  atomic.Int64
	ctrlBytes atomic.Int64
	// ctrlMsgsIn/ctrlBytesIn are the ingress mirror: supervisor-originated
	// credit grants arriving on muxed links (the hub→supervisor direction's
	// flow control). Never part of any route's relayed traffic.
	ctrlMsgsIn  atomic.Int64
	ctrlBytesIn atomic.Int64
	// muxOverheadIn/muxOverheadOut are signed envelope ledgers: physical
	// frame bytes minus the inner frame bytes they carried. Egress overhead
	// goes negative when cross-worker coalescing saves more in per-frame
	// headers than the route tags cost.
	muxOverheadIn  atomic.Int64
	muxOverheadOut atomic.Int64
	// orphanFrames/orphanBytes count routed entries addressed to routes the
	// hub does not know (already closed, never opened, or refused), dropped
	// on the floor; bytes are inner frame sizes.
	orphanFrames atomic.Int64
	orphanBytes  atomic.Int64
	// muxCorrupt counts CRC-corrupt frames arriving on a muxed supervisor
	// link. A corrupt frame on a shared link cannot be attributed to any
	// single route, so it quarantines the whole physical link (every route
	// on it) and is counted here instead of per worker.
	muxCorruptFrames atomic.Int64
	muxCorruptBytes  atomic.Int64

	mu           sync.Mutex
	closed       bool
	available    map[string]transport.Conn
	links        map[*supLink]struct{}
	pendingBinds map[string][]*hubRoute
	counters     map[string]*workerCounters
	pumps        sync.WaitGroup
}

// NewBrokerHub creates an empty hub with relay-hop batching enabled.
func NewBrokerHub(opts ...BrokerOption) *BrokerHub {
	cfg := brokerConfig{batching: true, bindTimeout: defaultBindTimeout, creditWindow: defaultCreditWindowBytes}
	for _, opt := range opts {
		opt.applyBroker(&cfg)
	}
	return &BrokerHub{
		cfg:          cfg,
		available:    make(map[string]transport.Conn),
		links:        make(map[*supLink]struct{}),
		pendingBinds: make(map[string][]*hubRoute),
		counters:     make(map[string]*workerCounters),
	}
}

// HelloWorker announces a participant identity on a link freshly dialed to
// a hub: send it on the participant's endpoint before Serve, then hand the
// hub's endpoint to Attach.
func HelloWorker(conn transport.Conn, worker string) error {
	return sendHello(conn, helloMsg{Role: helloRoleWorker, Worker: worker})
}

// HelloSupervisor asks the hub to route the link to the named registered
// worker: send it on the supervisor's endpoint before opening the exchange
// or session, then hand the hub's endpoint to Attach.
func HelloSupervisor(conn transport.Conn, worker string) error {
	return sendHello(conn, helloMsg{Role: helloRoleSupervisor, Worker: worker})
}

func sendHello(conn transport.Conn, m helloMsg) error {
	if conn == nil {
		return fmt.Errorf("%w: nil connection", ErrBadConfig)
	}
	if m.Worker == "" {
		return fmt.Errorf("%w: empty worker identity", ErrBadConfig)
	}
	if len(m.Worker) > maxWorkerNameLen {
		return fmt.Errorf("%w: worker identity of %d bytes (max %d)",
			ErrBadConfig, len(m.Worker), maxWorkerNameLen)
	}
	return conn.Send(transport.Message{Type: msgHello, Payload: encodeHello(m)})
}

// RelayedMessages reports how many frames the hub has forwarded in total
// (egress, both directions, all routes, after any re-batching).
func (h *BrokerHub) RelayedMessages() int64 { return h.relayedMsgs.Load() }

// RelayedBytes reports the forwarded traffic volume (egress frame bytes,
// headers included). It equals the sum of the hub-side endpoints' sent-byte
// counters exactly.
func (h *BrokerHub) RelayedBytes() int64 { return h.relayedBytes.Load() }

// RejectedHandshakes reports how many attached links the hub refused at the
// hello (corrupt or malformed handshake).
func (h *BrokerHub) RejectedHandshakes() int64 { return h.rejectedLinks.Load() }

// RejectedHandshakeBytes reports the bytes received on refused links.
func (h *BrokerHub) RejectedHandshakeBytes() int64 { return h.rejectedBytes.Load() }

// EvictedWorkerLinks reports registered worker links evicted because their
// monitor saw a read error before any supervisor bound them.
func (h *BrokerHub) EvictedWorkerLinks() int64 { return h.evictedLinks.Load() }

// EvictedWorkerBytes reports bytes received on evicted worker links.
func (h *BrokerHub) EvictedWorkerBytes() int64 { return h.evictedBytes.Load() }

// MuxLinks reports how many multiplexed supervisor links ever attached.
func (h *BrokerHub) MuxLinks() int64 { return h.muxLinks.Load() }

// RoutesOpened reports how many routes were ever opened on muxed links.
func (h *BrokerHub) RoutesOpened() int64 { return h.routesOpened.Load() }

// ControlMessages reports hub-originated control frames on muxed links
// (credit grants and close notices).
func (h *BrokerHub) ControlMessages() int64 { return h.ctrlMsgs.Load() }

// ControlBytes reports the bytes of hub-originated control frames. Control
// traffic is never part of RelayedBytes.
func (h *BrokerHub) ControlBytes() int64 { return h.ctrlBytes.Load() }

// ControlIngressMessages reports supervisor-originated control frames
// (credit grants) received on muxed links.
func (h *BrokerHub) ControlIngressMessages() int64 { return h.ctrlMsgsIn.Load() }

// ControlIngressBytes reports the physical bytes of received control
// frames; part of the muxed-link ingress identity, never of any route's
// relayed traffic.
func (h *BrokerHub) ControlIngressBytes() int64 { return h.ctrlBytesIn.Load() }

// CreditWindowBytes sums every live muxed route's current adaptive
// toWorker window — the hub's worst-case queued-byte exposure to
// supervisor traffic. With adaptive sizing this sits near
// routes × minRouteCreditWindowBytes for mostly-idle fan-out, far below
// the static routes × WithRouteCreditWindow bound.
func (h *BrokerHub) CreditWindowBytes() int64 {
	h.mu.Lock()
	links := make([]*supLink, 0, len(h.links))
	for l := range h.links {
		links = append(links, l)
	}
	h.mu.Unlock()
	var sum int64
	for _, l := range links {
		l.mu.Lock()
		if l.muxed {
			for _, r := range l.routes {
				if r.state != routeDead {
					sum += r.toWorkerCredit.win
				}
			}
		}
		l.mu.Unlock()
	}
	return sum
}

// MuxOverheadIngressBytes reports the signed difference between physical
// bytes received on muxed links and the inner-frame plus handshake bytes
// they carried.
func (h *BrokerHub) MuxOverheadIngressBytes() int64 { return h.muxOverheadIn.Load() }

// MuxOverheadEgressBytes reports the signed difference between physical
// data bytes sent on muxed links and the inner-frame bytes they carried;
// negative when cross-worker coalescing saves more than route tags cost.
func (h *BrokerHub) MuxOverheadEgressBytes() int64 { return h.muxOverheadOut.Load() }

// OrphanedFrames reports routed entries dropped because their route was
// unknown or already finished.
func (h *BrokerHub) OrphanedFrames() int64 { return h.orphanFrames.Load() }

// OrphanedBytes reports the inner-frame bytes of orphaned routed entries.
func (h *BrokerHub) OrphanedBytes() int64 { return h.orphanBytes.Load() }

// MuxCorruptFrames reports CRC-corrupt frames on muxed supervisor links;
// each one quarantined its whole physical link.
func (h *BrokerHub) MuxCorruptFrames() int64 { return h.muxCorruptFrames.Load() }

// MuxCorruptBytes reports the received bytes of mux-link corrupt frames.
func (h *BrokerHub) MuxCorruptBytes() int64 { return h.muxCorruptBytes.Load() }

// Workers lists every worker identity the hub has seen a handshake for.
func (h *BrokerHub) Workers() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	names := make([]string, 0, len(h.counters))
	for name := range h.counters {
		names = append(names, name)
	}
	return names
}

// WorkerStats snapshots one worker identity's cumulative relay accounting.
func (h *BrokerHub) WorkerStats(worker string) (RouteStats, bool) {
	h.mu.Lock()
	wc := h.counters[worker]
	h.mu.Unlock()
	if wc == nil {
		return RouteStats{}, false
	}
	st := RouteStats{
		Worker:                   worker,
		Binds:                    wc.binds.Load(),
		WorkerHelloBytes:         wc.workerHelloBytes.Load(),
		SupervisorHelloBytes:     wc.supervisorHelloBytes.Load(),
		ToWorker:                 wc.toWorker.snapshot(),
		ToSupervisor:             wc.toSupervisor.snapshot(),
		ToWorkerGrantedBytes:     wc.toWorkerGranted.Load(),
		ToWorkerWindowBytes:      wc.toWorkerWindow.Load(),
		ToSupervisorGrantedBytes: wc.toSupGranted.Load(),
		ToSupervisorWindowBytes:  wc.toSupWindow.Load(),
		ToSupervisorStalls:       wc.toSupStalls.Load(),
	}
	st.CorruptFrames = st.ToWorker.CorruptFrames + st.ToSupervisor.CorruptFrames
	st.CorruptBytes = st.ToWorker.CorruptBytes + st.ToSupervisor.CorruptBytes
	return st, true
}

// maxBrokerIdentities caps how many distinct worker identities one hub
// tracks (registry keys and per-worker counters). Identities are never
// evicted — their counters are the accounting record — so a dialer cycling
// fresh names must not grow the hub without bound: handshakes naming a new
// identity past the cap are refused. A variable so tests can exercise the
// bound.
var maxBrokerIdentities = 1 << 16

// countersFor returns the worker's cumulative counters, creating them on
// first sight, or nil when the identity cap forbids tracking a new name.
func (h *BrokerHub) countersFor(worker string) *workerCounters {
	h.mu.Lock()
	defer h.mu.Unlock()
	wc := h.counters[worker]
	if wc == nil {
		if len(h.counters) >= maxBrokerIdentities {
			return nil
		}
		wc = &workerCounters{}
		h.counters[worker] = wc
	}
	return wc
}

// Attach hands one freshly dialed link to the hub. The link's first frame
// must be a msgHello (HelloWorker / HelloSupervisor): worker links are
// registered under their identity and served once a supervisor binds them;
// supervisor links are bound to their named worker's registration — waiting
// up to the bind timeout for it — on a background goroutine, so Attach
// blocks only to read the hello frame (itself bounded by the bind timeout),
// never for a bind or a route's lifetime: an accept loop may call it
// synchronously per connection. A link whose handshake or bind is refused
// is closed, which is how the failure surfaces to the dialing peer.
//
//gridlint:credit accept boundary: hello and rejected-link bytes are only observable here
func (h *BrokerHub) Attach(conn transport.Conn) error {
	if conn == nil {
		return fmt.Errorf("%w: nil connection", ErrBadConfig)
	}
	// The handshake gets a deadline: a peer that connects and never sends
	// its hello must not wedge a synchronous accept loop, so the link is
	// closed — unblocking Recv — when the bind timeout passes without one.
	watchdog := time.AfterFunc(h.cfg.bindTimeout, func() { _ = conn.Close() })
	before := conn.Stats().BytesRecv()
	msg, err := conn.Recv()
	stopped := watchdog.Stop()
	arrived := conn.Stats().BytesRecv() - before
	reject := func(err error) error {
		h.rejectedLinks.Add(1)
		h.rejectedBytes.Add(arrived)
		_ = conn.Close()
		return err
	}
	if err != nil {
		// Classify before returning: a dropped or timed-out link is a
		// quarantine-class fault to the accept loop, not a config error.
		return reject(quarantineWrap(fmt.Errorf("grid: broker handshake: %w", err)))
	}
	if !stopped {
		// The watchdog already fired: the link is closed (or about to be),
		// so a hello that squeaked in at the deadline must not register a
		// dead link as a healthy one.
		return reject(fmt.Errorf("%w: broker handshake timed out after %v", ErrBadConfig, h.cfg.bindTimeout))
	}
	if msg.Type != msgHello {
		return reject(fmt.Errorf("%w: broker link opened with frame type %d, want hello",
			ErrUnexpectedMessage, msg.Type))
	}
	hello, err := decodeHello(msg.Payload)
	if err != nil {
		return reject(err)
	}
	switch hello.Role {
	case helloRoleWorker:
		wc := h.countersFor(hello.Worker)
		if wc == nil {
			return reject(fmt.Errorf("%w: hub is at its %d-identity capacity; refusing new worker %q",
				ErrBadConfig, maxBrokerIdentities, hello.Worker))
		}
		wc.workerHelloBytes.Add(arrived)
		return h.registerWorker(hello.Worker, conn)
	case helloRoleSupervisor:
		wc := h.countersFor(hello.Worker)
		if wc == nil {
			return reject(fmt.Errorf("%w: hub is at its %d-identity capacity; refusing new worker %q",
				ErrBadConfig, maxBrokerIdentities, hello.Worker))
		}
		wc.supervisorHelloBytes.Add(arrived)
		return h.attachSupervisorLink(conn, hello.Worker, wc, false)
	case helloRoleMux:
		// Mux labels name a supervisor, not a worker: they get link-level
		// accounting, not a slot in the per-worker identity registry.
		h.muxHelloBytes.Add(arrived)
		h.muxLinks.Add(1)
		return h.attachSupervisorLink(conn, hello.Worker, nil, true)
	default:
		// Open/close hellos are only meaningful on an attached muxed link.
		return reject(fmt.Errorf("%w: hello role %d cannot open a link",
			ErrUnexpectedMessage, hello.Role))
	}
}

// registerWorker makes the link the worker's available (unbound) endpoint,
// replacing — and closing — any stale unbound registration under the same
// identity (a redialing harness re-registers before the hub necessarily
// noticed the old link die). Every registration gets a monitor goroutine so
// a link that dies while parked is evicted eagerly instead of being handed
// to the next supervisor as a healthy worker.
func (h *BrokerHub) registerWorker(worker string, conn transport.Conn) error {
	v := &vettedWorkerConn{Conn: conn, result: make(chan vetResult, 1)}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		_ = conn.Close()
		return ErrBrokerClosed
	}
	stale := h.available[worker]
	h.available[worker] = v
	h.pumps.Add(1)
	h.mu.Unlock()
	go h.monitorWorker(worker, v)
	if stale != nil {
		_ = stale.Close()
	}
	h.matchPending(worker)
	return nil
}

// vetResult is the outcome of a monitor's single Recv, handed to the
// route's first read once the link is bound.
type vetResult struct {
	msg transport.Message
	err error
}

// vettedWorkerConn wraps a registered worker link so the hub can watch it
// while it waits unbound. The monitor goroutine owns the link's first Recv;
// the route's first Recv consumes the monitor's result instead of racing it
// with a second concurrent Recv, and later Recvs go straight through.
type vettedWorkerConn struct {
	transport.Conn
	result chan vetResult

	mu      sync.Mutex
	drained bool  // the monitor's result has been claimed by a Recv
	early   bool  // the last Recv returned the monitor's buffered result
	pending int64 // connection-counter bytes the monitor's Recv consumed
}

func (v *vettedWorkerConn) Recv() (transport.Message, error) {
	v.mu.Lock()
	first := !v.drained
	v.drained = true
	v.mu.Unlock()
	if first {
		res := <-v.result
		v.mu.Lock()
		v.early = true
		v.mu.Unlock()
		return res.msg, res.err
	}
	//gridlint:ignore errclassify transport adapter: errors pass through verbatim; the relay pump classifies them
	return v.Conn.Recv()
}

// takeEarly reports whether the last Recv returned the monitor's buffered
// result, and the connection-counter bytes that result consumed. The pump
// uses it to attribute bytes that arrived before its own counter snapshot.
func (v *vettedWorkerConn) takeEarly() (int64, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if !v.early {
		return 0, false
	}
	v.early = false
	return v.pending, true
}

// monitorWorker performs one Recv on a freshly registered link. A read
// error while the link is still unbound evicts it — a supervisor arriving
// later waits for a live registration instead of binding a corpse — and a
// result on a link that was bound (or replaced) meanwhile is delivered to
// the route through the vetted wrapper. Joined via h.pumps so Close waits
// for monitors too.
//
//gridlint:credit eviction is the last observation point for a dead parked link's bytes
func (h *BrokerHub) monitorWorker(worker string, v *vettedWorkerConn) {
	defer h.pumps.Done()
	before := v.Conn.Stats().BytesRecv()
	msg, err := v.Conn.Recv()
	delta := v.Conn.Stats().BytesRecv() - before
	v.mu.Lock()
	v.pending = delta
	v.mu.Unlock()
	if err != nil {
		h.mu.Lock()
		if !h.closed && h.available[worker] == v {
			delete(h.available, worker)
			h.mu.Unlock()
			_ = v.Conn.Close()
			h.evictedLinks.Add(1)
			h.evictedBytes.Add(delta)
			return
		}
		h.mu.Unlock()
	}
	v.result <- vetResult{msg: msg, err: err}
}

// defaultCreditWindowBytes is the per-route receive window on a muxed link
// when WithRouteCreditWindow is not given: the supervisor may have this
// many unacknowledged bytes (inner frame sizes) queued at the hub before
// it must wait for a credit grant, so one slow worker bounds its own
// route's hub memory instead of the whole link's.
const defaultCreditWindowBytes int64 = 256 << 10

// legacyRouteQueueBytes bounds the supervisor→worker queue of a dedicated
// (non-muxed) supervisor link, where backpressure is applied by blocking
// the link reader instead of by credits.
var legacyRouteQueueBytes int64 = 1 << 20

// toWorkerQueueBytes bounds the worker→supervisor queue of any route; a
// full queue blocks the worker-link reader, which is the natural
// backpressure toward the (clean, LAN-side) participant leg.
var toWorkerQueueBytes int64 = 1 << 20

// muxInnerPayloadCap bounds a single inner frame relayed through a mux
// envelope so the envelope itself stays under transport.MaxFrameBytes.
const muxInnerPayloadCap = int64(transport.MaxFrameBytes) - 64

// Route lifecycle states, guarded by the owning link's mutex.
const (
	routePending = iota // waiting for the named worker to register
	routeActive         // bound to a worker link, relaying
	routeDead           // torn down; late entries are orphans
)

// frameQ is one direction's frame queue, guarded by the owning link's
// mutex. closed means no more puts arrive but queued frames still drain
// (clean-close semantics); discard drops queued frames and refuses puts
// (fault semantics).
type frameQ struct {
	frames  []transport.Message
	bytes   int64
	closed  bool
	discard bool
}

//gridlint:credit queue-occupancy ledger: put is the single enqueue site
func (q *frameQ) put(m transport.Message) bool {
	if q.closed || q.discard {
		return false
	}
	q.frames = append(q.frames, m)
	q.bytes += m.FrameSize()
	return true
}

//gridlint:credit queue-occupancy ledger: pop is the single dequeue site
func (q *frameQ) pop() (transport.Message, bool) {
	if len(q.frames) == 0 || q.discard {
		return transport.Message{}, false
	}
	m := q.frames[0]
	q.frames[0] = transport.Message{}
	q.frames = q.frames[1:]
	q.bytes -= m.FrameSize()
	if len(q.frames) == 0 {
		q.frames = nil
	}
	return m, true
}

func (q *frameQ) peek() (transport.Message, bool) {
	if len(q.frames) == 0 || q.discard {
		return transport.Message{}, false
	}
	return q.frames[0], true
}

func (q *frameQ) empty() bool { return len(q.frames) == 0 || q.discard }

func (q *frameQ) drop() {
	q.frames = nil
	q.bytes = 0
	q.discard = true
}

// supLink is one physical supervisor↔hub connection: a dedicated link
// carrying exactly one route (the pre-mux wire protocol, preserved
// bit-for-bit), or a muxed link carrying any number of routes inside
// msgRouted envelopes. Each link runs exactly two goroutines — readLoop
// and writeLoop — regardless of route count.
type supLink struct {
	hub   *BrokerHub
	conn  transport.Conn
	muxed bool

	mu   sync.Mutex
	cond *sync.Cond // wakes writeLoop: data queued, control queued, stop
	// routes holds live routes by ID (a dedicated link uses ID 0).
	routes map[uint64]*hubRoute
	// ready is the round-robin drain order: routes with queued
	// supervisor-bound frames, each present at most once (inReady).
	ready []*hubRoute
	// ctrl queues hub-originated control frames (credits, close notices),
	// sent ahead of data.
	ctrl []transport.Message
	// failed: the link is quarantined — all queues dropped, no more sends.
	// stopWriter: writeLoop exits once set (set by failure, clean shutdown,
	// and dedicated-link completion).
	failed     bool
	stopWriter bool
}

// hubRoute is one supervisor↔worker route on a supLink. All mutable state
// is guarded by the link's mutex; the per-route cond wakes the route's
// worker-side writer and any capacity waiters.
type hubRoute struct {
	link   *supLink
	id     uint64
	worker string
	wc     *workerCounters

	wcond *sync.Cond // shares the link mutex
	down  transport.Conn
	vet   *vettedWorkerConn

	toWorker frameQ // supervisor → worker
	toSup    frameQ // worker → supervisor

	state     int
	bindTimer *time.Timer
	inReady   bool
	// noticeDue/noticeSent sequence the hub→supervisor close notice on a
	// muxed link: due once the worker side ended while the supervisor side
	// is still alive, sent after toSup drains.
	noticeDue  bool
	noticeSent bool
	// toWorkerCredit is the receiver-side ledger of the supervisor→worker
	// direction on a muxed link: the hub extends credit to the supervisor
	// and grants more as the worker-side writer drains toWorker, sizing
	// the window adaptively from the observed drain rate.
	toWorkerCredit creditLedger
	// supCredit is the hub's send budget on the worker→supervisor
	// direction, granted by the SupervisorMux as the route's consumer
	// drains its inbox; supWindow mirrors the peer's advertised window.
	supCredit int64
	supWindow int64
	// supStalled marks the route parked out of the ready ring for lack of
	// supervisor credit; re-entered when the next grant arrives.
	supStalled bool
	// loops counts the route's live worker-side goroutines; the last one to
	// exit removes the route from the link's maps.
	loops int
}

// attachSupervisorLink starts the link loops for a freshly helloed
// supervisor connection. A dedicated link opens its single route
// immediately; a muxed link waits for open hellos.
func (h *BrokerHub) attachSupervisorLink(conn transport.Conn, worker string, wc *workerCounters, muxed bool) error {
	l := &supLink{hub: h, conn: conn, muxed: muxed, routes: make(map[uint64]*hubRoute)}
	l.cond = sync.NewCond(&l.mu)
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		_ = conn.Close()
		return ErrBrokerClosed
	}
	h.links[l] = struct{}{}
	h.pumps.Add(2)
	h.mu.Unlock()
	if !muxed {
		r := l.newRouteLocked(0, worker, wc)
		l.mu.Lock()
		l.routes[0] = r
		l.mu.Unlock()
		h.scheduleBind(r)
	}
	go l.readLoop()
	go l.writeLoop()
	return nil
}

// newRouteLocked builds a pending route (callers insert it into l.routes).
// On a muxed link both credit directions start at the adaptive floor: the
// hub extends initialCreditWindow to the supervisor (toWorkerCredit) and
// assumes the mux extended the same to it (supCredit) — which holds
// because both endpoints must be configured with the same ceiling.
func (l *supLink) newRouteLocked(id uint64, worker string, wc *workerCounters) *hubRoute {
	r := &hubRoute{link: l, id: id, worker: worker, wc: wc, state: routePending}
	r.wcond = sync.NewCond(&l.mu)
	if l.muxed {
		r.toWorkerCredit = newCreditLedger(l.hub.cfg.creditWindow)
		r.supCredit = initialCreditWindow(l.hub.cfg.creditWindow)
		r.supWindow = r.supCredit
	}
	return r
}

// scheduleBind claims the route's worker if one is registered, or parks the
// route in pendingBinds with a timeout; binds are event-driven (completed
// by registerWorker), so no goroutine waits on them.
func (h *BrokerHub) scheduleBind(r *hubRoute) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		r.fail(false)
		return
	}
	if conn, ok := h.available[r.worker]; ok {
		delete(h.available, r.worker)
		h.mu.Unlock()
		if !r.tryBind(conn) {
			h.returnWorker(r.worker, conn)
		}
		return
	}
	h.pendingBinds[r.worker] = append(h.pendingBinds[r.worker], r)
	h.mu.Unlock()
	l := r.link
	l.mu.Lock()
	if r.state == routePending {
		r.bindTimer = time.AfterFunc(h.cfg.bindTimeout, func() { h.bindExpired(r) })
	}
	l.mu.Unlock()
}

// matchPending hands a fresh registration to routes waiting on the
// identity, oldest first, until one accepts it or none remain.
func (h *BrokerHub) matchPending(worker string) {
	for {
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			return
		}
		pend := h.pendingBinds[worker]
		conn, ok := h.available[worker]
		if len(pend) == 0 || !ok {
			h.mu.Unlock()
			return
		}
		r := pend[0]
		if len(pend) == 1 {
			delete(h.pendingBinds, worker)
		} else {
			h.pendingBinds[worker] = pend[1:]
		}
		delete(h.available, worker)
		h.mu.Unlock()
		if r.tryBind(conn) {
			return
		}
		// The route died while parked; put the registration back (its
		// monitor is still watching it) and try the next waiter.
		if !h.returnWorker(worker, conn) {
			return
		}
	}
}

// returnWorker re-registers a claimed-but-unused worker link. Reports false
// when the link could not be returned (hub closed or a newer registration
// took the slot), in which case the conn is closed.
func (h *BrokerHub) returnWorker(worker string, conn transport.Conn) bool {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		_ = conn.Close()
		return false
	}
	if _, exists := h.available[worker]; exists {
		h.mu.Unlock()
		_ = conn.Close()
		return false
	}
	h.available[worker] = conn
	h.mu.Unlock()
	return true
}

// bindExpired is the pending-bind watchdog: if the route is still parked
// when the bind timeout fires, it is failed exactly like a refused bind.
// Presence in pendingBinds is the claim arbiter — if matchPending already
// popped the route, the timer is a no-op. The supervisor side of the link
// is alive and well — only the bind expired — so a muxed route owes its
// supervisor the close notice that tells its session the route is dead
// (on a dedicated link the refusal closes the physical link instead).
func (h *BrokerHub) bindExpired(r *hubRoute) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	pend := h.pendingBinds[r.worker]
	found := false
	for i, cand := range pend {
		if cand == r {
			h.pendingBinds[r.worker] = append(pend[:i:i], pend[i+1:]...)
			if len(h.pendingBinds[r.worker]) == 0 {
				delete(h.pendingBinds, r.worker)
			}
			found = true
			break
		}
	}
	h.mu.Unlock()
	if found {
		r.fail(true)
	}
}

// tryBind binds a claimed worker link to the route and starts the route's
// worker-side loops. Reports false if the route is no longer pending.
//
//gridlint:credit a route starting is the bind event the binds counter measures
func (r *hubRoute) tryBind(conn transport.Conn) bool {
	l := r.link
	h := l.hub
	// The pump reservation must be ordered against Close: reserving under
	// h.mu while the hub is open guarantees Close's Wait observes it.
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return false
	}
	h.pumps.Add(2)
	h.mu.Unlock()
	l.mu.Lock()
	if r.state != routePending {
		l.mu.Unlock()
		h.pumps.Done()
		h.pumps.Done()
		return false
	}
	r.state = routeActive
	r.down = conn
	r.vet, _ = conn.(*vettedWorkerConn)
	if r.bindTimer != nil {
		r.bindTimer.Stop()
		r.bindTimer = nil
	}
	r.loops = 2
	r.wcond.Broadcast()
	l.mu.Unlock()
	if r.wc != nil {
		r.wc.binds.Add(1)
	}
	go r.workerReadLoop()
	go r.workerWriteLoop()
	return true
}

// fail quarantines one route: both queues dropped, the worker link closed,
// a close notice queued for a muxed supervisor (supAlive) — and, on a
// dedicated link, the whole link failed, because there the route IS the
// link. The hub and every other route keep running.
func (r *hubRoute) fail(supAlive bool) {
	l := r.link
	if !l.muxed {
		l.fail()
		return
	}
	l.mu.Lock()
	if r.state == routeDead {
		l.mu.Unlock()
		return
	}
	down := r.down
	r.teardownLocked()
	if supAlive && !r.noticeSent && !l.failed && !l.stopWriter {
		l.queueNoticeLocked(r)
	}
	if r.loops == 0 {
		delete(l.routes, r.id)
	}
	l.mu.Unlock()
	if down != nil {
		_ = down.Close()
	}
}

// teardownLocked marks the route dead and wakes everything parked on it.
func (r *hubRoute) teardownLocked() {
	r.state = routeDead
	r.toWorker.drop()
	r.toSup.drop()
	if r.bindTimer != nil {
		r.bindTimer.Stop()
		r.bindTimer = nil
	}
	r.wcond.Broadcast()
	r.link.cond.Broadcast()
}

// queueNoticeLocked queues the hub→supervisor close notice for a route on
// a muxed link and finalizes the route: everything the worker sent has been
// relayed, so from here on the route's ID is retired and late entries
// addressed to it are orphans.
func (l *supLink) queueNoticeLocked(r *hubRoute) {
	r.noticeSent = true
	r.noticeDue = false
	l.ctrl = append(l.ctrl, transport.Message{
		Type:    msgHello,
		Payload: encodeHello(helloMsg{Role: helloRoleClose, Worker: r.worker, Route: r.id}),
	})
	if r.state != routeDead {
		r.teardownLocked()
	}
	if r.loops == 0 {
		delete(l.routes, r.id)
	}
	l.cond.Broadcast()
}

// loopDone retires one worker-side goroutine; the last one out removes a
// dead route from the link's map so late envelope entries become orphans.
func (r *hubRoute) loopDone() {
	l := r.link
	l.mu.Lock()
	r.loops--
	if r.loops == 0 && r.state == routeDead {
		delete(l.routes, r.id)
	}
	l.mu.Unlock()
	l.hub.pumps.Done()
}

// fail quarantines the whole physical link: every route is torn down and
// every endpoint closed. Dedicated links land here for any route fault
// (preserving the pre-mux semantics); muxed links land here for faults
// that cannot be attributed to a single route — a corrupt frame on the
// shared link, a protocol violation, or a dead physical connection.
func (l *supLink) fail() {
	l.mu.Lock()
	if l.failed {
		l.mu.Unlock()
		return
	}
	l.failed = true
	l.stopWriter = true
	var downs []transport.Conn
	dead := make([]*hubRoute, 0, len(l.routes))
	for id, r := range l.routes {
		if r.down != nil {
			downs = append(downs, r.down)
		}
		dead = append(dead, r)
		r.teardownLocked()
		if r.loops == 0 {
			delete(l.routes, id)
		}
	}
	l.ready = nil
	l.ctrl = nil
	l.cond.Broadcast()
	l.mu.Unlock()
	for _, c := range downs {
		_ = c.Close()
	}
	_ = l.conn.Close()
	l.hub.unpark(dead)
}

// cleanShutdown handles the supervisor endpoint closing the physical link
// cleanly: every route drains what the hub already accepted toward its
// worker (matching the direct transport's drain-after-close delivery),
// while the supervisor-bound direction is discarded — the peer is gone.
func (l *supLink) cleanShutdown() {
	l.mu.Lock()
	if l.failed {
		l.mu.Unlock()
		return
	}
	l.stopWriter = true
	dead := make([]*hubRoute, 0, len(l.routes))
	for id, r := range l.routes {
		switch r.state {
		case routePending:
			dead = append(dead, r)
			r.teardownLocked()
			if r.loops == 0 {
				delete(l.routes, id)
			}
		case routeActive:
			r.toWorker.closed = true
			r.toSup.drop()
			r.wcond.Broadcast()
		}
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	_ = l.conn.Close()
	l.hub.unpark(dead)
}

// unpark removes failed routes from the pending-bind registry so a later
// registration is not handed to a corpse first.
func (h *BrokerHub) unpark(routes []*hubRoute) {
	if len(routes) == 0 {
		return
	}
	stale := make(map[*hubRoute]struct{}, len(routes))
	for _, r := range routes {
		stale[r] = struct{}{}
	}
	h.mu.Lock()
	for worker, pend := range h.pendingBinds {
		kept := pend[:0]
		for _, r := range pend {
			if _, dead := stale[r]; !dead {
				kept = append(kept, r)
			}
		}
		if len(kept) == 0 {
			delete(h.pendingBinds, worker)
		} else {
			h.pendingBinds[worker] = kept
		}
	}
	h.mu.Unlock()
}

// dropLink forgets a finished link.
func (h *BrokerHub) dropLink(l *supLink) {
	h.mu.Lock()
	delete(h.links, l)
	h.mu.Unlock()
}

// readLoop is the physical link's only reader: it ingests every frame the
// supervisor endpoint sends — raw route traffic on a dedicated link, mux
// envelopes and open/close hellos on a muxed one — and parks frames on
// per-route queues. It never blocks on a muxed route's queue (credits
// bound those), so one slow worker cannot head-of-line-block the link.
//
//gridlint:credit relay ingress, handshake, orphan, and corrupt-frame bytes are credited as they leave the source link
func (l *supLink) readLoop() {
	h := l.hub
	defer func() {
		h.dropLink(l)
		h.pumps.Done()
	}()
	for {
		before := l.conn.Stats().BytesRecv()
		msg, err := l.conn.Recv()
		arrived := l.conn.Stats().BytesRecv() - before
		if err != nil {
			switch {
			case errors.Is(err, io.EOF), errors.Is(err, transport.ErrClosed):
				l.cleanShutdown()
			case errors.Is(err, transport.ErrFrameCorrupt):
				if l.muxed {
					// Unattributable link damage: no route tag survived, so
					// the whole physical link is quarantined.
					h.muxCorruptFrames.Add(1)
					h.muxCorruptBytes.Add(arrived)
				} else if r := l.soleRoute(); r != nil && r.wc != nil {
					r.wc.toWorker.corruptFrames.Add(1)
					r.wc.toWorker.corruptBytes.Add(arrived)
				}
				l.fail()
			default:
				l.fail()
			}
			return
		}
		if !l.muxed {
			r := l.soleRoute()
			if r == nil {
				return // link already torn down
			}
			if r.wc != nil {
				r.wc.toWorker.ingressMsgs.Add(1)
				r.wc.toWorker.ingressBytes.Add(msg.FrameSize())
			}
			if !l.putToWorkerBlocking(r, msg) {
				return
			}
			continue
		}
		switch msg.Type {
		case msgRouted:
			if !l.ingestEnvelope(msg, arrived) {
				return
			}
		case msgHello:
			if !l.handleHello(msg, arrived) {
				return
			}
		case msgCredit:
			if !l.applyRouteGrant(msg, arrived) {
				return
			}
		default:
			// Raw data frames are not valid on a muxed link.
			l.fail()
			return
		}
	}
}

// soleRoute returns a dedicated link's single route, if still present.
func (l *supLink) soleRoute() *hubRoute {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.routes[0]
}

// putToWorkerBlocking queues one supervisor frame on a dedicated link's
// route, blocking (backpressure on the physical link) while the queue is
// over its bound. Reports false when the link is done.
func (l *supLink) putToWorkerBlocking(r *hubRoute, msg transport.Message) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for r.toWorker.bytes >= legacyRouteQueueBytes && !r.toWorker.closed && !r.toWorker.discard && !l.failed {
		r.wcond.Wait()
	}
	if !r.toWorker.put(msg) {
		return false
	}
	r.wcond.Broadcast()
	return true
}

// applyRouteGrant ingests a supervisor→hub credit grant on a muxed link:
// the mux returns credit as a route's consumer drains its inbox, and the
// hub spends it in gatherEnvelopeLocked. A stalled route re-enters the
// ready ring here. Reports false when the grant was malformed or
// overflowing and the link failed.
//
//gridlint:credit control ingress and per-route grant ledgers are only observable at the link reader
func (l *supLink) applyRouteGrant(msg transport.Message, arrived int64) bool {
	h := l.hub
	c, err := decodeCredit(msg.Payload)
	if err != nil {
		h.muxOverheadIn.Add(arrived)
		l.fail()
		return false
	}
	h.ctrlMsgsIn.Add(1)
	h.ctrlBytesIn.Add(arrived)
	l.mu.Lock()
	r := l.routes[c.Route]
	if r == nil || r.state == routeDead {
		// Grants race close notices; a grant for a finished route is stale,
		// not hostile.
		l.mu.Unlock()
		return true
	}
	r.supCredit += int64(c.Bytes)
	r.supWindow = int64(c.Window)
	if r.supCredit > maxCreditGrant {
		// More credit than any honest window can extend: the peer is
		// inflating the hub's send budget, likely probing for overflow.
		l.mu.Unlock()
		l.fail()
		return false
	}
	if r.wc != nil {
		r.wc.toSupGranted.Add(int64(c.Bytes))
		r.wc.toSupWindow.Store(int64(c.Window))
	}
	if r.supStalled {
		r.supStalled = false
		if !r.toSup.empty() {
			l.enqueueReadyLocked(r)
		}
	}
	l.mu.Unlock()
	return true
}

// ingestEnvelope distributes a mux envelope's entries onto route queues.
// Reports false when the envelope was malformed and the link failed.
//
//gridlint:credit envelope ingress is attributed inner-frame-exact as it arrives
func (l *supLink) ingestEnvelope(msg transport.Message, arrived int64) bool {
	h := l.hub
	entries, err := decodeRouted(msg.Payload)
	if err != nil {
		// The frame passed the transport CRC, so this is a peer protocol
		// violation, not line noise; the link is done either way.
		h.muxOverheadIn.Add(arrived)
		l.fail()
		return false
	}
	transport.RecyclePayload(msg.Payload)
	var inner int64
	l.mu.Lock()
	for _, e := range entries {
		size := e.innerFrameSize()
		inner += size
		r := l.routes[e.Route]
		if r == nil || r.state == routeDead {
			h.orphanFrames.Add(1)
			h.orphanBytes.Add(size)
			continue
		}
		if !r.toWorkerCredit.arrive(size) {
			// The peer is ignoring the credit protocol; that is a link-level
			// violation (the shared reader must never block on one route).
			l.mu.Unlock()
			l.fail()
			return false
		}
		if r.wc != nil {
			r.wc.toWorker.ingressMsgs.Add(1)
			r.wc.toWorker.ingressBytes.Add(size)
		}
		if r.toWorker.put(transport.Message{Type: e.Type, Payload: e.Payload}) {
			r.wcond.Broadcast()
		} else {
			h.orphanFrames.Add(1)
			h.orphanBytes.Add(size)
		}
	}
	l.mu.Unlock()
	h.muxOverheadIn.Add(arrived - inner)
	return true
}

// handleHello processes an open or close hello on a muxed link. Reports
// false when the hello was invalid and the link failed.
//
//gridlint:credit route handshake bytes are only observable at the link reader
func (l *supLink) handleHello(msg transport.Message, arrived int64) bool {
	h := l.hub
	hello, err := decodeHello(msg.Payload)
	if err != nil {
		h.muxOverheadIn.Add(arrived)
		l.fail()
		return false
	}
	switch hello.Role {
	case helloRoleOpen:
		wc := h.countersFor(hello.Worker)
		if wc == nil {
			// Identity capacity: refuse the route, keep the link.
			h.muxOverheadIn.Add(arrived)
			l.mu.Lock()
			if !l.failed && !l.stopWriter {
				l.ctrl = append(l.ctrl, transport.Message{
					Type:    msgHello,
					Payload: encodeHello(helloMsg{Role: helloRoleClose, Worker: hello.Worker, Route: hello.Route}),
				})
				l.cond.Broadcast()
			}
			l.mu.Unlock()
			return true
		}
		wc.supervisorHelloBytes.Add(arrived)
		l.mu.Lock()
		if _, dup := l.routes[hello.Route]; dup || l.failed {
			l.mu.Unlock()
			l.fail()
			return false
		}
		r := l.newRouteLocked(hello.Route, hello.Worker, wc)
		l.routes[hello.Route] = r
		l.mu.Unlock()
		h.routesOpened.Add(1)
		h.scheduleBind(r)
		return true
	case helloRoleClose:
		l.mu.Lock()
		r := l.routes[hello.Route]
		var wc *workerCounters
		if r != nil {
			wc = r.wc
		}
		if wc != nil {
			wc.supervisorHelloBytes.Add(arrived)
		} else {
			h.muxOverheadIn.Add(arrived)
		}
		if r == nil || r.state == routeDead {
			l.mu.Unlock()
			return true
		}
		if r.state == routePending {
			dead := r
			r.teardownLocked()
			if r.loops == 0 {
				delete(l.routes, r.id)
			}
			l.mu.Unlock()
			h.unpark([]*hubRoute{dead})
			return true
		}
		// Active route: the supervisor is done sending — drain what the hub
		// holds toward the worker, discard the return direction.
		r.toWorker.closed = true
		r.toSup.drop()
		r.noticeDue = false
		r.wcond.Broadcast()
		l.cond.Broadcast()
		l.mu.Unlock()
		return true
	default:
		// worker/supervisor/mux hellos are link-opening frames, invalid
		// mid-link.
		h.muxOverheadIn.Add(arrived)
		l.fail()
		return false
	}
}

// writeLoop is the physical link's only writer. Control frames (credits,
// close notices) go first; then data is drained route by route in rotating
// round-robin order, with consecutive batch frames of the same route
// coalesced and — on a muxed link — units from several routes packed into
// one envelope, so re-batching spans workers, not just tasks.
//
//gridlint:credit relay egress, control, and envelope-overhead bytes are credited after the onward send succeeds
func (l *supLink) writeLoop() {
	h := l.hub
	defer h.pumps.Done()
	for {
		l.mu.Lock()
		for !l.stopWriter && len(l.ctrl) == 0 && len(l.ready) == 0 {
			l.cond.Wait()
		}
		if l.stopWriter && (l.failed || (len(l.ctrl) == 0 && len(l.ready) == 0)) {
			l.mu.Unlock()
			return
		}
		var out transport.Message
		var isCtrl, finishLink bool
		var egress []routeEgress
		switch {
		case len(l.ctrl) > 0:
			out = l.ctrl[0]
			l.ctrl = l.ctrl[1:]
			isCtrl = true
		case !l.muxed:
			r := l.ready[0]
			unit, ok, last := l.popUnitLocked(r)
			if !ok {
				// A dedicated link is done once its single route's worker
				// side ended cleanly and the queue is fully drained — which
				// can be observed on an empty pop when the worker closed
				// without ever sending.
				if last {
					l.stopWriter = true
					l.mu.Unlock()
					_ = l.conn.Close()
					return
				}
				l.mu.Unlock()
				continue
			}
			out = unit
			egress = []routeEgress{{r: r, inner: out.FrameSize()}}
			finishLink = last
		default:
			entries, acct := l.gatherEnvelopeLocked()
			if len(entries) == 0 {
				l.mu.Unlock()
				continue
			}
			out = transport.Message{Type: msgRouted, Payload: encodeRouted(entries)}
			egress = acct
		}
		l.mu.Unlock()
		if err := l.conn.Send(out); err != nil {
			l.fail()
			return
		}
		switch {
		case isCtrl:
			h.ctrlMsgs.Add(1)
			h.ctrlBytes.Add(out.FrameSize())
		case !l.muxed:
			for _, e := range egress {
				if e.r.wc != nil {
					e.r.wc.toSupervisor.egressMsgs.Add(1)
					e.r.wc.toSupervisor.egressBytes.Add(e.inner)
				}
			}
			h.relayedMsgs.Add(1)
			h.relayedBytes.Add(out.FrameSize())
		default:
			var inner int64
			for _, e := range egress {
				inner += e.inner
				if e.r.wc != nil {
					e.r.wc.toSupervisor.egressMsgs.Add(1)
					e.r.wc.toSupervisor.egressBytes.Add(e.inner)
				}
			}
			h.relayedMsgs.Add(1)
			h.relayedBytes.Add(out.FrameSize())
			h.muxOverheadOut.Add(out.FrameSize() - inner)
		}
		if finishLink {
			l.mu.Lock()
			l.stopWriter = true
			l.mu.Unlock()
			_ = l.conn.Close()
			return
		}
	}
}

// routeEgress attributes one sent unit to its route (inner frame size).
type routeEgress struct {
	r     *hubRoute
	inner int64
}

// popUnitLocked pops the head route's next supervisor-bound unit, merging
// consecutive queued msgBatch frames when relay batching is on. Reports
// whether a unit was produced and — for dedicated links — whether it was
// the route's final frame (worker side cleanly ended, queue drained).
func (l *supLink) popUnitLocked(r *hubRoute) (transport.Message, bool, bool) {
	l.dequeueReadyLocked(r)
	first, ok := r.toSup.pop()
	if !ok {
		l.routeDrainedLocked(r)
		return transport.Message{}, false, l.legacyFinishedLocked(r)
	}
	out := first
	if l.hub.cfg.batching && first.Type == msgBatch && !r.toSup.empty() {
		out = l.coalesceLocked(r, first)
	}
	if !r.toSup.empty() {
		l.enqueueReadyLocked(r)
	} else {
		l.routeDrainedLocked(r)
	}
	r.wcond.Broadcast() // capacity waiters on toSup
	return out, true, l.legacyFinishedLocked(r)
}

// routeDrainedLocked runs the drained-queue transitions: emit a due close
// notice (muxed) once everything the worker sent has been relayed.
func (l *supLink) routeDrainedLocked(r *hubRoute) {
	if l.muxed && r.noticeDue && !r.noticeSent && r.toSup.closed && r.toSup.empty() {
		l.queueNoticeLocked(r)
	}
}

// legacyFinishedLocked reports whether a dedicated link has relayed its
// route's final supervisor-bound frame.
func (l *supLink) legacyFinishedLocked(r *hubRoute) bool {
	return !l.muxed && r.toSup.closed && r.toSup.empty() && !r.toSup.discard
}

// gatherEnvelopeLocked packs units from the ready routes, round-robin, into
// one envelope up to the batch target. A route out of supervisor credit is
// parked out of the ready ring instead of blocking the gather — the shared
// writer keeps draining its siblings, and applyRouteGrant re-enqueues the
// route when its consumer catches up. The credit check precedes the pop
// and the debit follows it, so a route may overshoot its grant by at most
// one unit — the slack the mux's ledger tolerates by design.
//
//gridlint:credit stall parks and per-route send budgets live in the gather loop
func (l *supLink) gatherEnvelopeLocked() ([]routedEntry, []routeEgress) {
	var entries []routedEntry
	var acct []routeEgress
	var total int64
	for len(l.ready) > 0 && total < batchTargetBytes && len(entries) < maxRoutedEntries {
		r := l.ready[0]
		if r.supCredit <= 0 {
			l.dequeueReadyLocked(r)
			r.supStalled = true
			if r.wc != nil {
				r.wc.toSupStalls.Add(1)
			}
			continue
		}
		unit, ok, _ := l.popUnitLocked(r)
		if !ok {
			continue
		}
		r.supCredit -= unit.FrameSize()
		entries = append(entries, routedEntry{Route: r.id, Type: unit.Type, Payload: unit.Payload})
		acct = append(acct, routeEgress{r: r, inner: unit.FrameSize()})
		total += unit.FrameSize()
	}
	return entries, acct
}

// enqueueReadyLocked appends the route to the round-robin drain order once.
func (l *supLink) enqueueReadyLocked(r *hubRoute) {
	if r.inReady || r.state == routeDead {
		return
	}
	r.inReady = true
	l.ready = append(l.ready, r)
	l.cond.Broadcast()
}

// dequeueReadyLocked removes the route from the head of the drain order.
func (l *supLink) dequeueReadyLocked(r *hubRoute) {
	if len(l.ready) > 0 && l.ready[0] == r {
		l.ready = l.ready[1:]
		r.inReady = false
	}
}

// coalesceLocked greedily merges batch frames queued behind first into one
// larger batch frame, stopping at the session layer's frame caps, at the
// first non-mergeable frame (left queued to preserve order), or when the
// queue runs dry. Frames the hub cannot decode are forwarded untouched —
// the hub is a relay, not a validator; the endpoint rules on them.
func (l *supLink) coalesceLocked(r *hubRoute, first transport.Message) transport.Message {
	msgs, err := decodeBatch(first.Payload)
	if err != nil {
		return first
	}
	var size int64
	for _, tm := range msgs {
		size += tm.wireSize()
	}
	limit := int64(maxBatchPayload)
	if l.muxed && limit > muxInnerPayloadCap {
		limit = muxInnerPayloadCap
	}
	merged := false
	for size < batchTargetBytes && len(msgs) < maxBatchMsgs {
		next, ok := r.toSup.peek()
		if !ok || next.Type != msgBatch {
			break
		}
		more, err := decodeBatch(next.Payload)
		if err != nil {
			break
		}
		var moreSize int64
		for _, tm := range more {
			moreSize += tm.wireSize()
		}
		if size+moreSize > limit || len(msgs)+len(more) > maxBatchMsgs {
			break
		}
		r.toSup.pop()
		msgs = append(msgs, more...)
		size += moreSize
		merged = true
	}
	if !merged {
		return first
	}
	return transport.Message{Type: msgBatch, Payload: encodeBatch(msgs)}
}

// workerReadLoop is the worker link's reader for one bound route: frames
// from the participant are queued for the supervisor-side writer. A full
// queue blocks here — backpressure lands on the worker's own link, never
// on the shared supervisor link.
//
//gridlint:credit worker-leg ingress and corrupt-frame bytes are credited as they leave the source link
func (r *hubRoute) workerReadLoop() {
	defer r.loopDone()
	l := r.link
	for {
		before := r.down.Stats().BytesRecv()
		msg, err := r.down.Recv()
		arrived := r.down.Stats().BytesRecv() - before
		if r.vet != nil {
			// The monitor's Recv consumed this frame's bytes, possibly
			// before this loop's counter snapshot; the monitor's own
			// measurement is the exact delta either way.
			if pending, early := r.vet.takeEarly(); early {
				arrived = pending
			}
		}
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, transport.ErrClosed) {
				r.workerSideClosed()
				return
			}
			if errors.Is(err, transport.ErrFrameCorrupt) && r.wc != nil {
				// Worker-leg damage is attributable to this route alone:
				// quarantine the route, not the link.
				r.wc.toSupervisor.corruptFrames.Add(1)
				r.wc.toSupervisor.corruptBytes.Add(arrived)
			}
			r.fail(true)
			return
		}
		if r.wc != nil {
			r.wc.toSupervisor.ingressMsgs.Add(1)
			r.wc.toSupervisor.ingressBytes.Add(msg.FrameSize())
		}
		l.mu.Lock()
		for r.toSup.bytes >= toWorkerQueueBytes && !r.toSup.closed && !r.toSup.discard {
			r.wcond.Wait()
		}
		if r.toSup.put(msg) {
			l.enqueueReadyLocked(r)
		}
		l.mu.Unlock()
	}
}

// workerSideClosed handles the participant ending its link cleanly: the
// supervisor-bound queue drains, then — on a muxed link — the supervisor
// gets a close notice; a dedicated link closes its supervisor conn after
// the drain (writeLoop's finishLink), exactly the pre-mux semantics.
func (r *hubRoute) workerSideClosed() {
	l := r.link
	l.mu.Lock()
	if r.state == routeDead {
		l.mu.Unlock()
		return
	}
	// If the supervisor side already finished (route close or link
	// shutdown), there is nothing left to relay in either direction and no
	// notice is owed — finalize the route on the spot.
	supDone := r.toWorker.closed || l.stopWriter
	r.toSup.closed = true
	// The worker is gone, so frames still queued toward it are
	// undeliverable.
	r.toWorker.drop()
	down := r.down
	if supDone {
		r.teardownLocked()
		if r.loops == 0 {
			delete(l.routes, r.id)
		}
	} else {
		r.noticeDue = true
		l.routeDrainedLocked(r)
		if !l.muxed {
			// Wake the link writer even with an empty queue so it can
			// observe the drained-and-closed route and finish the link.
			l.enqueueReadyLocked(r)
		}
	}
	r.wcond.Broadcast()
	l.cond.Broadcast()
	l.mu.Unlock()
	if down != nil {
		_ = down.Close()
	}
}

// workerWriteLoop is the worker link's writer for one bound route: it
// drains the route's supervisor→worker queue, coalescing consecutive batch
// frames, and grants credit back (muxed links) as bytes leave the queue.
//
//gridlint:credit relay egress toward the worker is credited after the onward send succeeds
func (r *hubRoute) workerWriteLoop() {
	l := r.link
	h := l.hub
	defer r.loopDone()
	for {
		l.mu.Lock()
		for r.toWorker.empty() && !r.toWorker.closed && !r.toWorker.discard {
			r.wcond.Wait()
		}
		if r.toWorker.discard {
			l.mu.Unlock()
			return
		}
		first, ok := r.toWorker.pop()
		if !ok {
			// closed && drained: the supervisor side ended cleanly and
			// everything it sent was delivered — finish the worker leg.
			l.mu.Unlock()
			if r.down != nil {
				_ = r.down.Close()
			}
			return
		}
		popped := first.FrameSize()
		out := first
		if h.cfg.batching && first.Type == msgBatch && !r.toWorker.empty() {
			before := r.toWorker.bytes
			out = l.coalesceToWorkerLocked(r, first)
			popped += before - r.toWorker.bytes
		}
		if l.muxed {
			r.toWorkerCredit.drain(popped)
			if !l.failed && !l.stopWriter && !r.toWorker.closed {
				if grant := r.toWorkerCredit.grantDue(r.toWorker.bytes); grant > 0 {
					win := r.toWorkerCredit.win
					if r.wc != nil {
						r.wc.toWorkerGranted.Add(grant)
						r.wc.toWorkerWindow.Store(win)
					}
					l.ctrl = append(l.ctrl, transport.Message{
						Type:    msgCredit,
						Payload: encodeCredit(creditMsg{Route: r.id, Bytes: uint64(grant), Window: uint64(win)}),
					})
					l.cond.Broadcast()
				}
			}
		}
		r.wcond.Broadcast() // capacity waiters (dedicated-link reader)
		l.mu.Unlock()
		if err := r.down.Send(out); err != nil {
			r.fail(true)
			return
		}
		if r.wc != nil {
			r.wc.toWorker.egressMsgs.Add(1)
			r.wc.toWorker.egressBytes.Add(out.FrameSize())
		}
		h.relayedMsgs.Add(1)
		h.relayedBytes.Add(out.FrameSize())
	}
}

// coalesceToWorkerLocked merges consecutive queued batch frames bound for
// the worker, the downstream mirror of coalesceLocked.
func (l *supLink) coalesceToWorkerLocked(r *hubRoute, first transport.Message) transport.Message {
	msgs, err := decodeBatch(first.Payload)
	if err != nil {
		return first
	}
	var size int64
	for _, tm := range msgs {
		size += tm.wireSize()
	}
	merged := false
	for size < batchTargetBytes && len(msgs) < maxBatchMsgs {
		next, ok := r.toWorker.peek()
		if !ok || next.Type != msgBatch {
			break
		}
		more, err := decodeBatch(next.Payload)
		if err != nil {
			break
		}
		var moreSize int64
		for _, tm := range more {
			moreSize += tm.wireSize()
		}
		if size+moreSize > maxBatchPayload || len(msgs)+len(more) > maxBatchMsgs {
			break
		}
		r.toWorker.pop()
		msgs = append(msgs, more...)
		size += moreSize
		merged = true
	}
	if !merged {
		return first
	}
	return transport.Message{Type: msgBatch, Payload: encodeBatch(msgs)}
}

// Close tears down every link, route, and registered worker and blocks
// until all hub goroutines have exited, so the counters are final on
// return.
func (h *BrokerHub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		h.pumps.Wait()
		return nil
	}
	h.closed = true
	avail := h.available
	h.available = make(map[string]transport.Conn)
	h.pendingBinds = make(map[string][]*hubRoute)
	links := make([]*supLink, 0, len(h.links))
	for l := range h.links {
		links = append(links, l)
	}
	h.mu.Unlock()
	for _, conn := range avail {
		_ = conn.Close()
	}
	for _, l := range links {
		l.fail()
	}
	h.pumps.Wait()
	return nil
}
