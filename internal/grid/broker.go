package grid

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"uncheatgrid/internal/transport"
)

// Broker models the Grid Resource Broker of the GRACE architecture
// (Section 4): a mediator that sits between supervisor and participant and
// forwards protocol traffic in both directions. The supervisor never talks
// to the participant directly — the deployment constraint that motivates
// the non-interactive CBS scheme.
//
// The broker is deliberately oblivious: it copies frames without
// interpreting them. The interactive CBS scheme still *works* through it
// (frames flow both ways), but each challenge costs an extra mediated round
// trip; NI-CBS completes with zero supervisor→participant messages after
// the assignment, which is what the experiments demonstrate.
type Broker struct {
	relayedMsgs  atomic.Int64
	relayedBytes atomic.Int64
}

// NewBroker creates a relay.
func NewBroker() *Broker {
	return &Broker{}
}

// RelayedMessages reports how many frames the broker has forwarded in
// total (both directions).
func (b *Broker) RelayedMessages() int64 { return b.relayedMsgs.Load() }

// RelayedBytes reports the forwarded traffic volume, frame headers
// included.
func (b *Broker) RelayedBytes() int64 { return b.relayedBytes.Load() }

// Relay copies messages between the supervisor-facing and the
// participant-facing connections until both directions reach EOF. It
// returns the first unexpected error, or nil on clean shutdown. Relay
// blocks; run it in its own goroutine.
func (b *Broker) Relay(supervisorSide, participantSide transport.Conn) error {
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	copyDir := func(src, dst transport.Conn) {
		defer wg.Done()
		for {
			msg, err := src.Recv()
			if errors.Is(err, io.EOF) || errors.Is(err, transport.ErrClosed) {
				// One side hung up: close the other so its reader drains.
				_ = dst.Close()
				return
			}
			if err != nil {
				errs <- fmt.Errorf("grid: broker recv: %w", err)
				_ = dst.Close()
				return
			}
			if err := dst.Send(msg); err != nil {
				if !errors.Is(err, transport.ErrClosed) {
					errs <- fmt.Errorf("grid: broker send: %w", err)
				}
				return
			}
			b.relayedMsgs.Add(1)
			b.relayedBytes.Add(msg.FrameSize())
		}
	}
	wg.Add(2)
	go copyDir(supervisorSide, participantSide)
	go copyDir(participantSide, supervisorSide)
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}
