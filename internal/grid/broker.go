package grid

// The GRACE broker hub.
//
// Section 4 of the paper motivates NI-CBS with the GRACE deployment: a Grid
// Resource Broker sits between supervisor and participants, so the
// supervisor cannot open interactive challenge rounds. The first cut of
// this repo modeled that broker as a two-connection frame copier (one
// relay goroutine pair per supervisor↔participant link, no identities, no
// recovery). This file replaces it with a BrokerHub:
//
//   - Identity-routed multiplexing. Every link attached to the hub opens
//     with a msgHello handshake (wire.go): participant links register under
//     a worker identity, supervisor links name the worker they want, and
//     the hub binds the pair into a route. One hub relays any number of
//     supervisor↔worker routes concurrently.
//
//   - Resume-through-relay. Routing is by identity, not by physical link:
//     when a transport fault kills a route, a supervisor redial whose hello
//     names the same worker is re-bound to that worker's freshly registered
//     link, so the msgResume machinery of PR 3/4 (mid-protocol resume,
//     verdict re-delivery) works end-to-end through the relay. Faulty
//     brokered verdicts are byte-identical to clean direct runs (pinned by
//     TestRunSimBrokeredFaultyMatchesClean).
//
//   - Relay-hop batching. Frames bound for the same downstream link are
//     re-coalesced at the hub: consecutive msgBatch frames queued behind a
//     slow downstream send are decoded and merged into one larger batch
//     frame, so a pipelined NI-CBS session pays the downstream link delay
//     once per burst instead of once per frame — the Goodrich pipeline
//     shape (arXiv:0906.1225) applied at the relay hop. Per-task tagged
//     byte accounting is preserved exactly (a tagged message's wire size
//     is independent of which frame carries it); only shared framing
//     overhead differs between the two hops.
//
//   - Fault transparency. A CRC-corrupt frame crossing the relay
//     (transport.ErrFrameCorrupt) quarantines the affected route — both
//     endpoint links are closed, so each peer observes a dead connection
//     and the session layer's quarantine/resume machinery takes over — and
//     never kills the hub: other routes keep relaying.
//
// The hub is still protocol-oblivious where it matters: it never
// interprets task payloads and forwards frames it cannot re-batch
// untouched. It understands exactly two things — the hello handshake and
// the msgBatch envelope.

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"uncheatgrid/internal/transport"
)

// ErrBrokerClosed is returned for operations on a closed hub.
var ErrBrokerClosed = errors.New("grid: broker hub closed")

// defaultBindTimeout bounds how long a supervisor-role attach waits for the
// named worker to register before the link is refused.
const defaultBindTimeout = 10 * time.Second

// brokerConfig collects NewBrokerHub options.
type brokerConfig struct {
	batching    bool
	bindTimeout time.Duration
}

// BrokerOption configures NewBrokerHub.
type BrokerOption interface {
	applyBroker(*brokerConfig)
}

type relayBatchingOption bool

func (o relayBatchingOption) applyBroker(c *brokerConfig) { c.batching = bool(o) }

// WithRelayBatching toggles relay-hop batching (default on): when enabled,
// msgBatch frames queued for the same downstream link are merged into one
// larger batch frame before forwarding, so bursts pay the downstream send
// cost once. Off, the hub forwards frame for frame like the original
// oblivious relay.
func WithRelayBatching(on bool) BrokerOption { return relayBatchingOption(on) }

type bindTimeoutOption time.Duration

func (o bindTimeoutOption) applyBroker(c *brokerConfig) { c.bindTimeout = time.Duration(o) }

// WithBindTimeout bounds how long a supervisor link waits for its named
// worker to register, and how long any attached link may take to send its
// hello (default 10s for both). A timed-out bind or handshake closes the
// link, which the peer's session layer treats like any other dead
// connection.
func WithBindTimeout(d time.Duration) BrokerOption { return bindTimeoutOption(d) }

// RouteDirectionStats counts one direction of a worker's relayed traffic.
// Ingress is measured as frames arrive at the hub on the direction's source
// link; egress as frames leave it, after any relay-hop re-batching — with
// batching on, egress carries the same tagged payload in fewer, larger
// frames. Corrupt frames are attributed to the direction whose source link
// they arrived on.
type RouteDirectionStats struct {
	IngressMsgs, IngressBytes   int64
	EgressMsgs, EgressBytes     int64
	CorruptFrames, CorruptBytes int64
}

// RouteStats aggregates one worker identity's relay traffic across every
// route the hub ever bound for it (redials included). The counters
// reconcile exactly with the hub-side endpoint counters per link side:
//
//	supervisor-facing endpoint bytes received ==
//	    SupervisorHelloBytes + ToWorker ingress + ToWorker corrupt bytes
//	worker-facing endpoint bytes received ==
//	    WorkerHelloBytes + ToSupervisor ingress + ToSupervisor corrupt bytes
//	each side's endpoint bytes sent == the direction's egress bytes
type RouteStats struct {
	// Worker is the identity the counters are keyed by.
	Worker string
	// Binds counts supervisor links bound to this worker.
	Binds int64
	// WorkerHelloBytes and SupervisorHelloBytes count handshake frames the
	// hub consumed on this worker's links (never relayed).
	WorkerHelloBytes, SupervisorHelloBytes int64
	// CorruptFrames and CorruptBytes total the frames that failed the
	// transport CRC crossing the relay, both directions; each one
	// quarantined its route. Per-side counts live in the directions.
	CorruptFrames, CorruptBytes int64
	// ToWorker covers supervisor→participant relaying, ToSupervisor the
	// reverse direction.
	ToWorker, ToSupervisor RouteDirectionStats
}

// dirCounters is the mutable form of RouteDirectionStats.
type dirCounters struct {
	ingressMsgs, ingressBytes   atomic.Int64
	egressMsgs, egressBytes     atomic.Int64
	corruptFrames, corruptBytes atomic.Int64
}

func (d *dirCounters) snapshot() RouteDirectionStats {
	return RouteDirectionStats{
		IngressMsgs:   d.ingressMsgs.Load(),
		IngressBytes:  d.ingressBytes.Load(),
		EgressMsgs:    d.egressMsgs.Load(),
		EgressBytes:   d.egressBytes.Load(),
		CorruptFrames: d.corruptFrames.Load(),
		CorruptBytes:  d.corruptBytes.Load(),
	}
}

// workerCounters accumulates one worker identity's relay accounting across
// every route bound for it.
type workerCounters struct {
	binds                atomic.Int64
	workerHelloBytes     atomic.Int64
	supervisorHelloBytes atomic.Int64
	toWorker             dirCounters
	toSupervisor         dirCounters
}

// BrokerHub is the session-aware GRACE broker: an identity-routed relay
// multiplexing any number of supervisor↔worker routes, with relay-hop
// batching and per-route exact byte accounting. Attach links with Attach
// after their first frame (sent by HelloWorker / HelloSupervisor) names
// their role and worker.
type BrokerHub struct {
	cfg brokerConfig

	relayedMsgs  atomic.Int64
	relayedBytes atomic.Int64
	// rejected counts links (and their received bytes) whose handshake the
	// hub refused: corrupt or malformed hellos, unknown frame types.
	rejectedLinks atomic.Int64
	rejectedBytes atomic.Int64
	// evicted counts registered-but-unbound worker links whose monitor
	// observed a read error before any supervisor bound them, and the bytes
	// that died with them.
	evictedLinks atomic.Int64
	evictedBytes atomic.Int64

	mu        sync.Mutex
	cond      *sync.Cond
	closed    bool
	available map[string]transport.Conn
	routes    map[*brokerRoute]struct{}
	counters  map[string]*workerCounters
	pumps     sync.WaitGroup
}

// NewBrokerHub creates an empty hub with relay-hop batching enabled.
func NewBrokerHub(opts ...BrokerOption) *BrokerHub {
	cfg := brokerConfig{batching: true, bindTimeout: defaultBindTimeout}
	for _, opt := range opts {
		opt.applyBroker(&cfg)
	}
	h := &BrokerHub{
		cfg:       cfg,
		available: make(map[string]transport.Conn),
		routes:    make(map[*brokerRoute]struct{}),
		counters:  make(map[string]*workerCounters),
	}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// HelloWorker announces a participant identity on a link freshly dialed to
// a hub: send it on the participant's endpoint before Serve, then hand the
// hub's endpoint to Attach.
func HelloWorker(conn transport.Conn, worker string) error {
	return sendHello(conn, helloMsg{Role: helloRoleWorker, Worker: worker})
}

// HelloSupervisor asks the hub to route the link to the named registered
// worker: send it on the supervisor's endpoint before opening the exchange
// or session, then hand the hub's endpoint to Attach.
func HelloSupervisor(conn transport.Conn, worker string) error {
	return sendHello(conn, helloMsg{Role: helloRoleSupervisor, Worker: worker})
}

func sendHello(conn transport.Conn, m helloMsg) error {
	if conn == nil {
		return fmt.Errorf("%w: nil connection", ErrBadConfig)
	}
	if m.Worker == "" {
		return fmt.Errorf("%w: empty worker identity", ErrBadConfig)
	}
	if len(m.Worker) > maxWorkerNameLen {
		return fmt.Errorf("%w: worker identity of %d bytes (max %d)",
			ErrBadConfig, len(m.Worker), maxWorkerNameLen)
	}
	return conn.Send(transport.Message{Type: msgHello, Payload: encodeHello(m)})
}

// RelayedMessages reports how many frames the hub has forwarded in total
// (egress, both directions, all routes, after any re-batching).
func (h *BrokerHub) RelayedMessages() int64 { return h.relayedMsgs.Load() }

// RelayedBytes reports the forwarded traffic volume (egress frame bytes,
// headers included). It equals the sum of the hub-side endpoints' sent-byte
// counters exactly.
func (h *BrokerHub) RelayedBytes() int64 { return h.relayedBytes.Load() }

// RejectedHandshakes reports how many attached links the hub refused at the
// hello (corrupt or malformed handshake).
func (h *BrokerHub) RejectedHandshakes() int64 { return h.rejectedLinks.Load() }

// RejectedHandshakeBytes reports the bytes received on refused links.
func (h *BrokerHub) RejectedHandshakeBytes() int64 { return h.rejectedBytes.Load() }

// EvictedWorkerLinks reports registered worker links evicted because their
// monitor saw a read error before any supervisor bound them.
func (h *BrokerHub) EvictedWorkerLinks() int64 { return h.evictedLinks.Load() }

// EvictedWorkerBytes reports bytes received on evicted worker links.
func (h *BrokerHub) EvictedWorkerBytes() int64 { return h.evictedBytes.Load() }

// Workers lists every worker identity the hub has seen a handshake for.
func (h *BrokerHub) Workers() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	names := make([]string, 0, len(h.counters))
	for name := range h.counters {
		names = append(names, name)
	}
	return names
}

// WorkerStats snapshots one worker identity's cumulative relay accounting.
func (h *BrokerHub) WorkerStats(worker string) (RouteStats, bool) {
	h.mu.Lock()
	wc := h.counters[worker]
	h.mu.Unlock()
	if wc == nil {
		return RouteStats{}, false
	}
	st := RouteStats{
		Worker:               worker,
		Binds:                wc.binds.Load(),
		WorkerHelloBytes:     wc.workerHelloBytes.Load(),
		SupervisorHelloBytes: wc.supervisorHelloBytes.Load(),
		ToWorker:             wc.toWorker.snapshot(),
		ToSupervisor:         wc.toSupervisor.snapshot(),
	}
	st.CorruptFrames = st.ToWorker.CorruptFrames + st.ToSupervisor.CorruptFrames
	st.CorruptBytes = st.ToWorker.CorruptBytes + st.ToSupervisor.CorruptBytes
	return st, true
}

// maxBrokerIdentities caps how many distinct worker identities one hub
// tracks (registry keys and per-worker counters). Identities are never
// evicted — their counters are the accounting record — so a dialer cycling
// fresh names must not grow the hub without bound: handshakes naming a new
// identity past the cap are refused. A variable so tests can exercise the
// bound.
var maxBrokerIdentities = 1 << 16

// countersFor returns the worker's cumulative counters, creating them on
// first sight, or nil when the identity cap forbids tracking a new name.
func (h *BrokerHub) countersFor(worker string) *workerCounters {
	h.mu.Lock()
	defer h.mu.Unlock()
	wc := h.counters[worker]
	if wc == nil {
		if len(h.counters) >= maxBrokerIdentities {
			return nil
		}
		wc = &workerCounters{}
		h.counters[worker] = wc
	}
	return wc
}

// Attach hands one freshly dialed link to the hub. The link's first frame
// must be a msgHello (HelloWorker / HelloSupervisor): worker links are
// registered under their identity and served once a supervisor binds them;
// supervisor links are bound to their named worker's registration — waiting
// up to the bind timeout for it — on a background goroutine, so Attach
// blocks only to read the hello frame (itself bounded by the bind timeout),
// never for a bind or a route's lifetime: an accept loop may call it
// synchronously per connection. A link whose handshake or bind is refused
// is closed, which is how the failure surfaces to the dialing peer.
//
//gridlint:credit accept boundary: hello and rejected-link bytes are only observable here
func (h *BrokerHub) Attach(conn transport.Conn) error {
	if conn == nil {
		return fmt.Errorf("%w: nil connection", ErrBadConfig)
	}
	// The handshake gets a deadline: a peer that connects and never sends
	// its hello must not wedge a synchronous accept loop, so the link is
	// closed — unblocking Recv — when the bind timeout passes without one.
	watchdog := time.AfterFunc(h.cfg.bindTimeout, func() { _ = conn.Close() })
	before := conn.Stats().BytesRecv()
	msg, err := conn.Recv()
	stopped := watchdog.Stop()
	arrived := conn.Stats().BytesRecv() - before
	reject := func(err error) error {
		h.rejectedLinks.Add(1)
		h.rejectedBytes.Add(arrived)
		_ = conn.Close()
		return err
	}
	if err != nil {
		// Classify before returning: a dropped or timed-out link is a
		// quarantine-class fault to the accept loop, not a config error.
		return reject(quarantineWrap(fmt.Errorf("grid: broker handshake: %w", err)))
	}
	if !stopped {
		// The watchdog already fired: the link is closed (or about to be),
		// so a hello that squeaked in at the deadline must not register a
		// dead link as a healthy one.
		return reject(fmt.Errorf("%w: broker handshake timed out after %v", ErrBadConfig, h.cfg.bindTimeout))
	}
	if msg.Type != msgHello {
		return reject(fmt.Errorf("%w: broker link opened with frame type %d, want hello",
			ErrUnexpectedMessage, msg.Type))
	}
	hello, err := decodeHello(msg.Payload)
	if err != nil {
		return reject(err)
	}
	wc := h.countersFor(hello.Worker)
	if wc == nil {
		return reject(fmt.Errorf("%w: hub is at its %d-identity capacity; refusing new worker %q",
			ErrBadConfig, maxBrokerIdentities, hello.Worker))
	}
	if hello.Role == helloRoleWorker {
		wc.workerHelloBytes.Add(arrived)
		return h.registerWorker(hello.Worker, conn)
	}
	wc.supervisorHelloBytes.Add(arrived)
	go h.bindSupervisor(hello.Worker, wc, conn)
	return nil
}

// registerWorker makes the link the worker's available (unbound) endpoint,
// replacing — and closing — any stale unbound registration under the same
// identity (a redialing harness re-registers before the hub necessarily
// noticed the old link die). Every registration gets a monitor goroutine so
// a link that dies while parked is evicted eagerly instead of being handed
// to the next supervisor as a healthy worker.
func (h *BrokerHub) registerWorker(worker string, conn transport.Conn) error {
	v := &vettedWorkerConn{Conn: conn, result: make(chan vetResult, 1)}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		_ = conn.Close()
		return ErrBrokerClosed
	}
	stale := h.available[worker]
	h.available[worker] = v
	h.pumps.Add(1)
	h.cond.Broadcast()
	h.mu.Unlock()
	go h.monitorWorker(worker, v)
	if stale != nil {
		_ = stale.Close()
	}
	return nil
}

// vetResult is the outcome of a monitor's single Recv, handed to the
// route's first read once the link is bound.
type vetResult struct {
	msg transport.Message
	err error
}

// vettedWorkerConn wraps a registered worker link so the hub can watch it
// while it waits unbound. The monitor goroutine owns the link's first Recv;
// the route's first Recv consumes the monitor's result instead of racing it
// with a second concurrent Recv, and later Recvs go straight through.
type vettedWorkerConn struct {
	transport.Conn
	result chan vetResult

	mu      sync.Mutex
	drained bool  // the monitor's result has been claimed by a Recv
	early   bool  // the last Recv returned the monitor's buffered result
	pending int64 // connection-counter bytes the monitor's Recv consumed
}

func (v *vettedWorkerConn) Recv() (transport.Message, error) {
	v.mu.Lock()
	first := !v.drained
	v.drained = true
	v.mu.Unlock()
	if first {
		res := <-v.result
		v.mu.Lock()
		v.early = true
		v.mu.Unlock()
		return res.msg, res.err
	}
	//gridlint:ignore errclassify transport adapter: errors pass through verbatim; the relay pump classifies them
	return v.Conn.Recv()
}

// takeEarly reports whether the last Recv returned the monitor's buffered
// result, and the connection-counter bytes that result consumed. The pump
// uses it to attribute bytes that arrived before its own counter snapshot.
func (v *vettedWorkerConn) takeEarly() (int64, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if !v.early {
		return 0, false
	}
	v.early = false
	return v.pending, true
}

// monitorWorker performs one Recv on a freshly registered link. A read
// error while the link is still unbound evicts it — a supervisor arriving
// later waits for a live registration instead of binding a corpse — and a
// result on a link that was bound (or replaced) meanwhile is delivered to
// the route through the vetted wrapper. Joined via h.pumps so Close waits
// for monitors too.
//
//gridlint:credit eviction is the last observation point for a dead parked link's bytes
func (h *BrokerHub) monitorWorker(worker string, v *vettedWorkerConn) {
	defer h.pumps.Done()
	before := v.Conn.Stats().BytesRecv()
	msg, err := v.Conn.Recv()
	delta := v.Conn.Stats().BytesRecv() - before
	v.mu.Lock()
	v.pending = delta
	v.mu.Unlock()
	if err != nil {
		h.mu.Lock()
		if !h.closed && h.available[worker] == v {
			delete(h.available, worker)
			h.mu.Unlock()
			_ = v.Conn.Close()
			h.evictedLinks.Add(1)
			h.evictedBytes.Add(delta)
			return
		}
		h.mu.Unlock()
	}
	v.result <- vetResult{msg: msg, err: err}
}

// bindSupervisor claims the named worker's registered link and starts the
// route's relay pumps. Run on its own goroutine by Attach; a failed bind
// closes the supervisor link, which is what its peer observes.
//
//gridlint:credit a route starting is the bind event the binds counter measures
func (h *BrokerHub) bindSupervisor(worker string, wc *workerCounters, conn transport.Conn) error {
	down, err := h.claimWorker(worker)
	if err != nil {
		_ = conn.Close()
		return err
	}
	r := &brokerRoute{hub: h, worker: worker, up: conn, down: down}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		_ = conn.Close()
		_ = down.Close()
		return ErrBrokerClosed
	}
	h.routes[r] = struct{}{}
	h.pumps.Add(2)
	h.mu.Unlock()
	wc.binds.Add(1)
	go r.pump(r.up, r.down, &wc.toWorker)
	go r.pump(r.down, r.up, &wc.toSupervisor)
	return nil
}

// claimWorker blocks until the named worker has an available registered
// link and claims it (removing it from the registry: a bound link is owned
// by its route and never re-bound — resume stickiness comes from the
// identity, not the physical link).
func (h *BrokerHub) claimWorker(worker string) (transport.Conn, error) {
	deadline := time.Now().Add(h.cfg.bindTimeout)
	// cond has no timed wait; a timer broadcast wakes the loop so it can
	// observe the deadline.
	wake := time.AfterFunc(h.cfg.bindTimeout, func() {
		h.mu.Lock()
		h.cond.Broadcast()
		h.mu.Unlock()
	})
	defer wake.Stop()
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		if h.closed {
			return nil, ErrBrokerClosed
		}
		if conn, ok := h.available[worker]; ok {
			delete(h.available, worker)
			return conn, nil
		}
		if !time.Now().Before(deadline) {
			return nil, fmt.Errorf("%w: no worker %q registered within %v",
				ErrBadConfig, worker, h.cfg.bindTimeout)
		}
		h.cond.Wait()
	}
}

func (h *BrokerHub) dropRoute(r *brokerRoute) {
	h.mu.Lock()
	delete(h.routes, r)
	h.mu.Unlock()
}

// Close tears down every route and registered link and blocks until all
// relay pumps have exited, so the hub's counters are final on return.
func (h *BrokerHub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		h.pumps.Wait()
		return nil
	}
	h.closed = true
	avail := h.available
	h.available = make(map[string]transport.Conn)
	routes := make([]*brokerRoute, 0, len(h.routes))
	for r := range h.routes {
		routes = append(routes, r)
	}
	h.cond.Broadcast()
	h.mu.Unlock()
	for _, conn := range avail {
		_ = conn.Close()
	}
	for _, r := range routes {
		r.quarantine()
	}
	h.pumps.Wait()
	return nil
}

// brokerRoute is one bound supervisor↔worker pair: two relay pumps over the
// two endpoint links, torn down as a unit.
type brokerRoute struct {
	hub      *BrokerHub
	worker   string
	up, down transport.Conn
	once     sync.Once
	done     atomic.Int32
}

// quarantine tears the route down: both endpoint links close, so each peer
// observes a dead connection — the session layer's quarantine signal — and
// recovers through its own redial machinery. The hub itself is unaffected;
// other routes keep relaying.
func (r *brokerRoute) quarantine() {
	r.once.Do(func() {
		_ = r.up.Close()
		_ = r.down.Close()
	})
}

// pump relays one direction of the route: a reader loop ingesting frames
// from src feeds a queue drained by a forwarding goroutine that re-batches
// toward dst. Any receive failure ends the route — but a clean close (EOF
// or a closed connection) lets the forwarder drain everything the hub
// already accepted before the route is torn down, matching the direct
// transport's drain-after-close delivery; a transport fault (a CRC-corrupt
// frame crossing the relay counts as link damage) quarantines immediately.
//
//gridlint:credit relay ingress and corrupt-frame bytes are credited as they leave the source link
func (r *brokerRoute) pump(src, dst transport.Conn, dir *dirCounters) {
	defer func() {
		if r.done.Add(1) == 2 {
			r.hub.dropRoute(r)
		}
		r.hub.pumps.Done()
	}()
	frames := make(chan transport.Message, 64)
	var fwd sync.WaitGroup
	fwd.Add(1)
	go func() {
		defer fwd.Done()
		r.forward(dst, dir, frames)
	}()
	clean := false
	for {
		before := src.Stats().BytesRecv()
		msg, err := src.Recv()
		arrived := src.Stats().BytesRecv() - before
		if v, ok := src.(*vettedWorkerConn); ok {
			// The monitor's Recv consumed this frame's bytes, possibly
			// before this pump's counter snapshot; the monitor's own
			// measurement is the exact delta either way.
			if pending, early := v.takeEarly(); early {
				arrived = pending
			}
		}
		if err != nil {
			switch {
			case errors.Is(err, io.EOF), errors.Is(err, transport.ErrClosed):
				clean = true
			case errors.Is(err, transport.ErrFrameCorrupt):
				// Link damage crossing the relay: the frame's bytes arrived
				// (and are counted) but its content is gone. Quarantine the
				// route; the hub's copy loops for other routes are untouched.
				dir.corruptFrames.Add(1)
				dir.corruptBytes.Add(arrived)
			}
			break
		}
		dir.ingressMsgs.Add(1)
		dir.ingressBytes.Add(msg.FrameSize())
		frames <- msg
	}
	close(frames)
	if !clean {
		r.quarantine()
	}
	fwd.Wait()
	r.quarantine()
}

// forward drains the direction's frame queue onto dst, merging consecutive
// queued msgBatch frames into one larger batch frame when relay-hop
// batching is on. After a send failure it keeps draining (and discarding)
// so the reader can never wedge on a full queue.
//
//gridlint:credit relay egress is credited only after the onward send succeeds
func (r *brokerRoute) forward(dst transport.Conn, dir *dirCounters, frames <-chan transport.Message) {
	failed := false
	var carry *transport.Message
	for {
		var out transport.Message
		if carry != nil {
			out, carry = *carry, nil
		} else {
			m, ok := <-frames
			if !ok {
				return
			}
			out = m
		}
		if failed {
			continue
		}
		if r.hub.cfg.batching && out.Type == msgBatch {
			out, carry = r.coalesce(out, frames)
		}
		if err := dst.Send(out); err != nil {
			failed = true
			r.quarantine()
			continue
		}
		dir.egressMsgs.Add(1)
		dir.egressBytes.Add(out.FrameSize())
		r.hub.relayedMsgs.Add(1)
		r.hub.relayedBytes.Add(out.FrameSize())
	}
}

// coalesce greedily merges batch frames queued behind first into one larger
// batch frame, stopping at the session layer's frame caps, at the first
// non-mergeable frame (returned as the carry to preserve order), or when
// the queue runs dry. Frames the hub cannot decode are forwarded untouched
// — the hub is a relay, not a validator; the endpoint rules on them.
func (r *brokerRoute) coalesce(first transport.Message, frames <-chan transport.Message) (transport.Message, *transport.Message) {
	if len(frames) == 0 {
		// Nothing queued behind this frame: skip the decode entirely. The
		// uncongested relay path stays as cheap as oblivious forwarding; at
		// worst a frame arriving this instant waits for the next send.
		return first, nil
	}
	msgs, err := decodeBatch(first.Payload)
	if err != nil {
		return first, nil
	}
	var size int64
	for _, tm := range msgs {
		size += tm.wireSize()
	}
	merged := false
	var carry *transport.Message
gather:
	for size < batchTargetBytes && len(msgs) < maxBatchMsgs {
		select {
		case m, ok := <-frames:
			if !ok {
				break gather
			}
			if m.Type != msgBatch {
				carry = &m
				break gather
			}
			more, err := decodeBatch(m.Payload)
			if err != nil {
				carry = &m
				break gather
			}
			var moreSize int64
			for _, tm := range more {
				moreSize += tm.wireSize()
			}
			if size+moreSize > maxBatchPayload || len(msgs)+len(more) > maxBatchMsgs {
				carry = &m
				break gather
			}
			msgs = append(msgs, more...)
			size += moreSize
			merged = true
		default:
			break gather
		}
	}
	if !merged {
		return first, carry
	}
	return transport.Message{Type: msgBatch, Payload: encodeBatch(msgs)}, carry
}
