package grid

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"uncheatgrid/internal/transport"
)

// openTestMux dials one physical supervisor link to the hub and attaches it
// as a mux, returning the hub-side endpoint too so tests can reconcile the
// physical byte counters.
func openTestMux(t *testing.T, hub *BrokerHub, label string, opts ...MuxOption) (*SupervisorMux, transport.Conn) {
	t.Helper()
	supConn, hubUp := transport.Pipe(transport.WithBuffer(8))
	m, err := OpenMux(supConn, label, opts...)
	if err != nil {
		t.Fatalf("OpenMux(%s): %v", label, err)
	}
	if err := hub.Attach(hubUp); err != nil {
		t.Fatalf("Attach mux %s: %v", label, err)
	}
	return m, hubUp
}

// serveTestWorker registers a participant link under name and serves it.
func serveTestWorker(t *testing.T, hub *BrokerHub, name string, factory ProducerFactory) (transport.Conn, chan error) {
	t.Helper()
	p, err := NewParticipant(name, factory)
	if err != nil {
		t.Fatalf("NewParticipant(%s): %v", name, err)
	}
	hubDown, partConn := transport.Pipe(transport.WithBuffer(8))
	if err := HelloWorker(partConn, name); err != nil {
		t.Fatalf("HelloWorker(%s): %v", name, err)
	}
	if err := hub.Attach(hubDown); err != nil {
		t.Fatalf("Attach worker %s: %v", name, err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- p.Serve(partConn) }()
	return partConn, serveErr
}

// waitBinds polls until the worker has been bound n times.
func waitBinds(t testing.TB, hub *BrokerHub, worker string, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st, ok := hub.WorkerStats(worker); ok && st.Binds >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker %s never reached %d binds", worker, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMuxOneLinkCarriesManyRoutes is the tentpole contract: ONE physical
// supervisor link multiplexes a route per worker, each route reaches
// exactly the worker it was opened to (proven by personas over interactive
// CBS, both relay directions), and the hub counts one mux link however many
// routes ride it.
func TestMuxOneLinkCarriesManyRoutes(t *testing.T) {
	hub := NewBrokerHub()
	defer hub.Close()
	const n = 8
	serveErrs := make([]chan error, n)
	for i := 0; i < n; i++ {
		factory := HonestFactory
		if i%2 == 1 {
			factory = SemiHonestFactory(0, uint64(i))
		}
		_, serveErrs[i] = serveTestWorker(t, hub, fmt.Sprintf("w-%d", i), factory)
	}
	m, _ := openTestMux(t, hub, "supervisor")
	routes := make([]transport.Conn, n)
	for i := range routes {
		var err error
		if routes[i], err = m.OpenRoute(fmt.Sprintf("w-%d", i)); err != nil {
			t.Fatalf("OpenRoute(w-%d): %v", i, err)
		}
	}

	sup, err := NewSupervisor(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeCBS, M: 8}, Seed: 3})
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	outcomes := make([]*TaskOutcome, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range routes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			task := syntheticTask(128)
			task.ID = uint64(i)
			outcomes[i], errs[i] = sup.RunTask(routes[i], task)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("RunTask over route %d: %v", i, err)
		}
	}
	for i, o := range outcomes {
		if cheater := i%2 == 1; o.Verdict.Accepted == cheater {
			t.Errorf("route %d (cheater=%v) got verdict %+v — routed to the wrong worker?", i, cheater, o.Verdict)
		}
	}

	for _, r := range routes {
		_ = r.Close()
	}
	for i, ch := range serveErrs {
		if err := <-ch; err != nil {
			t.Errorf("participant w-%d serve: %v", i, err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatalf("mux close: %v", err)
	}
	if err := hub.Close(); err != nil {
		t.Fatalf("hub close: %v", err)
	}

	if got := hub.MuxLinks(); got != 1 {
		t.Errorf("hub counted %d mux links for one physical connection", got)
	}
	if got := hub.RoutesOpened(); got != n {
		t.Errorf("hub counted %d routes opened, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		st, ok := hub.WorkerStats(fmt.Sprintf("w-%d", i))
		if !ok || st.Binds != 1 || st.ToWorker.EgressMsgs == 0 || st.ToSupervisor.EgressMsgs == 0 {
			t.Errorf("route stats for w-%d: %+v (ok=%v)", i, st, ok)
		}
	}
}

// TestMuxHubGoroutineBudget is the scaling regression test: routes on a
// multiplexed link must not cost the hub goroutines — one reader and one
// writer per PHYSICAL link, never per route. 256 pending routes on one
// link leave the hub's goroutine count where two goroutines plus the mux's
// own reader put it; before the mux rewrite the same shape cost two pump
// goroutines per route.
func TestMuxHubGoroutineBudget(t *testing.T) {
	base := runtime.NumGoroutine()
	hub := NewBrokerHub(WithBindTimeout(time.Minute))
	m, _ := openTestMux(t, hub, "supervisor")
	const routes = 256
	conns := make([]transport.Conn, routes)
	for i := range conns {
		var err error
		if conns[i], err = m.OpenRoute(fmt.Sprintf("pending-%d", i)); err != nil {
			t.Fatalf("OpenRoute %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for hub.RoutesOpened() < routes {
		if time.Now().After(deadline) {
			t.Fatalf("hub registered %d of %d routes", hub.RoutesOpened(), routes)
		}
		time.Sleep(time.Millisecond)
	}
	if grown := runtime.NumGoroutine() - base; grown > 10 {
		t.Errorf("%d routes on one physical link grew the goroutine count by %d; the hub must run O(physical links) goroutines", routes, grown)
	}
	for _, c := range conns {
		_ = c.Close()
	}
	if err := m.Close(); err != nil {
		t.Fatalf("mux close: %v", err)
	}
	if err := hub.Close(); err != nil {
		t.Fatalf("hub close: %v", err)
	}
}

// TestMuxAccountingReconcilesExactly pins the muxed-link ledger identities
// from the RouteStats contract: per-route conn counters (dedicated-link-
// equivalent sizes) equal the hub's per-worker ingress/egress exactly, and
// the physical endpoint's byte counters decompose into hellos + inner
// frames + envelope overhead + control traffic with nothing unaccounted.
// The credit window is shrunk so grants actually flow.
func TestMuxAccountingReconcilesExactly(t *testing.T) {
	window := WithRouteCreditWindow(128)
	hub := NewBrokerHub(window)
	defer hub.Close()
	const nw = 3
	serveErrs := make([]chan error, nw)
	for i := 0; i < nw; i++ {
		_, serveErrs[i] = serveTestWorker(t, hub, fmt.Sprintf("w-%d", i), HonestFactory)
	}
	m, hubUp := openTestMux(t, hub, "supervisor", window)
	routes := make([]transport.Conn, nw)
	for i := range routes {
		var err error
		if routes[i], err = m.OpenRoute(fmt.Sprintf("w-%d", i)); err != nil {
			t.Fatalf("OpenRoute(w-%d): %v", i, err)
		}
	}

	sup, err := NewSupervisor(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeNICBS, M: 8, ChainIters: 1}, Seed: 17})
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	for i, route := range routes {
		sess, err := sup.OpenSession(route, 2)
		if err != nil {
			t.Fatalf("OpenSession route %d: %v", i, err)
		}
		var taskSent, taskRecv int64
		for j := 0; j < 3; j++ {
			task := Task{ID: uint64(i*10 + j), Start: uint64(j) * 256, N: 256, Workload: "synthetic", Seed: 5}
			outcome, err := sess.RunTask(task)
			if err != nil {
				t.Fatalf("route %d task %d: %v", i, j, err)
			}
			if !outcome.Verdict.Accepted {
				t.Errorf("honest route %d task %d rejected: %s", i, j, outcome.Verdict.Reason)
			}
			taskSent += outcome.BytesSent
			taskRecv += outcome.BytesRecv
		}
		if err := sess.Close(); err != nil {
			t.Fatalf("route %d session close: %v", i, err)
		}
		// No hello rides the route conn — the open handshake is physical-
		// link traffic — so task + overhead bytes alone must equal the
		// virtual endpoint counters.
		ovSent, ovRecv := sess.OverheadBytes()
		if got, want := route.Stats().BytesSent(), taskSent+ovSent; got != want {
			t.Errorf("route %d sent %dB; tasks+overhead = %dB", i, got, want)
		}
		if got, want := route.Stats().BytesRecv(), taskRecv+ovRecv; got != want {
			t.Errorf("route %d received %dB; tasks+overhead = %dB", i, got, want)
		}
	}
	for _, route := range routes {
		_ = route.Close()
	}
	for i, ch := range serveErrs {
		if err := <-ch; err != nil {
			t.Errorf("participant w-%d serve: %v", i, err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatalf("mux close: %v", err)
	}
	if err := hub.Close(); err != nil {
		t.Fatalf("hub close: %v", err)
	}
	if m.OrphanedFrames() != 0 {
		t.Fatalf("clean run orphaned %d frames at the supervisor mux", m.OrphanedFrames())
	}

	var supHello, toWorkerIn, toSupEgress int64
	var toWorkerGranted, toSupGranted int64
	for i := 0; i < nw; i++ {
		name := fmt.Sprintf("w-%d", i)
		st, ok := hub.WorkerStats(name)
		if !ok {
			t.Fatalf("no route stats for %s", name)
		}
		supHello += st.SupervisorHelloBytes
		toWorkerIn += st.ToWorker.IngressBytes
		toSupEgress += st.ToSupervisor.EgressBytes
		toWorkerGranted += st.ToWorkerGrantedBytes
		toSupGranted += st.ToSupervisorGrantedBytes
		// Per-route exactness: the virtual endpoints and the hub agree to
		// the byte even though every frame crossed a shared envelope.
		if got := routes[i].Stats().BytesSent(); got != st.ToWorker.IngressBytes {
			t.Errorf("%s: route sent %dB, hub ToWorker ingress %dB", name, got, st.ToWorker.IngressBytes)
		}
		if got := routes[i].Stats().BytesRecv(); got != st.ToSupervisor.EgressBytes {
			t.Errorf("%s: route received %dB, hub ToSupervisor egress %dB", name, got, st.ToSupervisor.EgressBytes)
		}
		// The advertised windows stay inside the documented adaptive band.
		ceiling := int64(128)
		for dir, win := range map[string]int64{"toWorker": st.ToWorkerWindowBytes, "toSupervisor": st.ToSupervisorWindowBytes} {
			if win != 0 && (win < initialCreditWindow(ceiling) || win > ceiling) {
				t.Errorf("%s: %s window %dB outside [%d, %d]", name, dir, win, initialCreditWindow(ceiling), ceiling)
			}
		}
	}
	if hub.ControlBytes() == 0 {
		t.Error("no credit grants flowed under a 128-byte window; the flow-control path went unexercised")
	}
	if hub.ControlIngressBytes() == 0 {
		t.Error("no supervisor→hub credit grants flowed; the bidirectional flow-control path went unexercised")
	}
	// Grant ledgers obey conservation endpoint-to-endpoint: neither side
	// ever receives credit (or control frames) the other did not send.
	// Teardown can strand a final queued grant in flight, so the receive
	// side is bounded by — not equal to — the grant side.
	if got := m.CreditReceivedBytes(); got == 0 || got > toWorkerGranted {
		t.Errorf("hub granted %dB toWorker credit, mux received %dB", toWorkerGranted, got)
	}
	if sent := m.CreditGrantedBytes(); toSupGranted == 0 || toSupGranted > sent {
		t.Errorf("mux granted %dB toSup credit, hub received %dB", sent, toSupGranted)
	}
	if got, sent := hub.ControlIngressMessages(), m.GrantFrames(); got == 0 || got > sent {
		t.Errorf("hub saw %d control frames in, mux sent %d", got, sent)
	}
	if got, sent := hub.ControlIngressBytes(), m.GrantWireBytes(); got == 0 || got > sent {
		t.Errorf("hub counted %dB control ingress, mux sent %dB of grant frames", got, sent)
	}
	muxHello := transport.Message{Type: msgHello, Payload: encodeHello(helloMsg{Role: helloRoleMux, Worker: "supervisor"})}.FrameSize()
	physRecv := hubUp.Stats().BytesRecv()
	if want := muxHello + supHello + toWorkerIn + hub.MuxOverheadIngressBytes() + hub.OrphanedBytes() + hub.MuxCorruptBytes() + hub.ControlIngressBytes(); physRecv != want {
		t.Errorf("physical ingress %dB does not decompose: hellos %d+%d, inner %d, overhead %d, orphans %d, corrupt %d, control-in %d",
			physRecv, muxHello, supHello, toWorkerIn, hub.MuxOverheadIngressBytes(), hub.OrphanedBytes(), hub.MuxCorruptBytes(), hub.ControlIngressBytes())
	}
	physSent := hubUp.Stats().BytesSent()
	if want := toSupEgress + hub.MuxOverheadEgressBytes() + hub.ControlBytes(); physSent != want {
		t.Errorf("physical egress %dB does not decompose: inner %d, overhead %d, control %d",
			physSent, toSupEgress, hub.MuxOverheadEgressBytes(), hub.ControlBytes())
	}
}

// TestMuxCorruptLinkQuarantinesLinkNotHub pins the shared-link fault rule:
// a CRC-corrupt frame on a multiplexed link is unattributable to any one
// route, so the whole physical link — every route on it — is quarantined
// and counted in the hub's mux-corrupt ledger, never against a worker; an
// unrelated physical link keeps relaying and the hub survives.
func TestMuxCorruptLinkQuarantinesLinkNotHub(t *testing.T) {
	hub := NewBrokerHub()
	defer hub.Close()

	// Worker a: a raw registered link this test holds.
	aDown, aConn := transport.Pipe(transport.WithBuffer(8))
	if err := HelloWorker(aConn, "a"); err != nil {
		t.Fatalf("HelloWorker(a): %v", err)
	}
	if err := hub.Attach(aDown); err != nil {
		t.Fatalf("Attach worker a: %v", err)
	}
	_, bServe := serveTestWorker(t, hub, "b", HonestFactory)

	// Link 1: the raw mux wire protocol, so a corrupt frame can be injected
	// after the handshakes went through clean.
	sup1, hubUp1 := transport.Pipe(transport.WithBuffer(8))
	if err := sendHello(sup1, helloMsg{Role: helloRoleMux, Worker: "sup-1"}); err != nil {
		t.Fatalf("mux hello: %v", err)
	}
	if err := hub.Attach(hubUp1); err != nil {
		t.Fatalf("Attach mux link 1: %v", err)
	}
	if err := sendHello(sup1, helloMsg{Role: helloRoleOpen, Worker: "a", Route: 1}); err != nil {
		t.Fatalf("open hello: %v", err)
	}
	waitBinds(t, hub, "a", 1)

	// Link 2: a healthy mux with a route to b.
	m2, _ := openTestMux(t, hub, "sup-2")
	routeB, err := m2.OpenRoute("b")
	if err != nil {
		t.Fatalf("OpenRoute(b): %v", err)
	}

	// One garbled envelope on link 1.
	garbler := transport.WithFaults(sup1, transport.FaultPlan{GarbleProb: 1, Seed: 99})
	if err := garbler.Send(transport.Message{
		Type:    msgRouted,
		Payload: encodeRouted([]routedEntry{{Route: 1, Type: msgVerdict, Payload: []byte{1}}}),
	}); err != nil {
		t.Fatalf("send corrupt frame: %v", err)
	}

	// Worker a's route dies with its physical link.
	if _, err := aConn.Recv(); err == nil {
		t.Fatal("worker a's link survived corruption on its shared supervisor link")
	}

	// Link 2 still relays: a full interactive task completes after the
	// quarantine.
	sup, err := NewSupervisor(SupervisorConfig{Spec: SchemeSpec{Kind: SchemeCBS, M: 8}, Seed: 3})
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	outcome, err := sup.RunTask(routeB, syntheticTask(128))
	if err != nil {
		t.Fatalf("RunTask over surviving link: %v", err)
	}
	if !outcome.Verdict.Accepted {
		t.Errorf("honest task rejected after unrelated link quarantine: %s", outcome.Verdict.Reason)
	}

	if got := hub.MuxCorruptFrames(); got != 1 {
		t.Errorf("hub counted %d mux-corrupt frames, want 1", got)
	}
	if st, _ := hub.WorkerStats("a"); st.CorruptFrames != 0 {
		t.Errorf("unattributable link damage was charged to worker a: %+v", st)
	}

	_ = routeB.Close()
	if err := <-bServe; err != nil {
		t.Errorf("participant b serve: %v", err)
	}
	_ = m2.Close()
	_ = sup1.Close()
	_ = aConn.Close()
}

// TestMuxCreditBackpressureIsolatesSlowRoute pins per-route flow control
// and cross-route fairness on one shared link: a route whose worker stops
// reading runs out of credit and blocks its own sender a handful of frames
// in, while a sibling route pushes its full load through the same physical
// link; draining the slow worker releases the stalled sender.
func TestMuxCreditBackpressureIsolatesSlowRoute(t *testing.T) {
	window := WithRouteCreditWindow(4096)
	hub := NewBrokerHub(window)
	defer hub.Close()
	slowDown, slowConn := transport.Pipe(transport.WithBuffer(8))
	if err := HelloWorker(slowConn, "slow"); err != nil {
		t.Fatalf("HelloWorker(slow): %v", err)
	}
	if err := hub.Attach(slowDown); err != nil {
		t.Fatalf("Attach slow: %v", err)
	}
	fastDown, fastConn := transport.Pipe(transport.WithBuffer(8))
	if err := HelloWorker(fastConn, "fast"); err != nil {
		t.Fatalf("HelloWorker(fast): %v", err)
	}
	if err := hub.Attach(fastDown); err != nil {
		t.Fatalf("Attach fast: %v", err)
	}
	m, _ := openTestMux(t, hub, "supervisor", window)
	slowRoute, err := m.OpenRoute("slow")
	if err != nil {
		t.Fatalf("OpenRoute(slow): %v", err)
	}
	fastRoute, err := m.OpenRoute("fast")
	if err != nil {
		t.Fatalf("OpenRoute(fast): %v", err)
	}
	waitBinds(t, hub, "slow", 1)
	waitBinds(t, hub, "fast", 1)

	const frames = 100
	payload := make([]byte, 1024)
	var slowSent atomic.Int64
	slowDone := make(chan error, 1)
	go func() {
		for i := 0; i < frames; i++ {
			if err := slowRoute.Send(transport.Message{Type: msgResultChunk, Payload: payload}); err != nil {
				slowDone <- err
				return
			}
			slowSent.Add(1)
		}
		slowDone <- nil
	}()

	fastRecvd := make(chan error, 1)
	go func() {
		for i := 0; i < frames; i++ {
			if _, err := fastConn.Recv(); err != nil {
				fastRecvd <- err
				return
			}
		}
		fastRecvd <- nil
	}()
	for i := 0; i < frames; i++ {
		if err := fastRoute.Send(transport.Message{Type: msgResultChunk, Payload: payload}); err != nil {
			t.Fatalf("fast route send %d: %v", i, err)
		}
	}
	if err := <-fastRecvd; err != nil {
		t.Fatalf("fast worker receive: %v", err)
	}
	// The fast route pushed 100KiB through the shared link while the slow
	// route's sender ran out of credit: no head-of-line blocking, and the
	// stalled route holds only a window's worth (plus the worker pipe's
	// buffer) at the hub instead of growing without bound.
	if got := slowSent.Load(); got >= frames/2 {
		t.Fatalf("slow route sent %d of %d frames with no reader; credit flow control is not engaging", got, frames)
	}

	for i := 0; i < frames; i++ {
		if _, err := slowConn.Recv(); err != nil {
			t.Fatalf("slow worker drain %d: %v", i, err)
		}
	}
	if err := <-slowDone; err != nil {
		t.Fatalf("slow route sender: %v", err)
	}
	if got := slowSent.Load(); got != frames {
		t.Fatalf("slow route sent %d of %d frames after its worker drained", got, frames)
	}

	_ = slowRoute.Close()
	_ = fastRoute.Close()
	_ = m.Close()
	_ = slowConn.Close()
	_ = fastConn.Close()
}

// TestRunSimBrokeredMuxReport pins the sim-level mux surface: a clean
// brokered pipelined run rides exactly one physical supervisor link, the
// report's mux ledgers are populated, and the per-worker route snapshots
// reconcile with the supervisor's endpoint totals.
func TestRunSimBrokeredMuxReport(t *testing.T) {
	cfg := SimConfig{
		Spec:           SchemeSpec{Kind: SchemeNICBS, M: 8, ChainIters: 1},
		Workload:       "synthetic",
		Seed:           13,
		TaskSize:       128,
		Tasks:          6,
		Honest:         3,
		PipelineWindow: 2,
		Broker:         true,
	}
	report, err := RunSim(cfg)
	if err != nil {
		t.Fatalf("RunSim: %v", err)
	}
	if !report.Brokered || report.BrokerRelayedMsgs == 0 {
		t.Fatalf("broker accounting empty: %+v", report)
	}
	if report.BrokerMuxLinks != 1 {
		t.Errorf("clean run used %d physical supervisor links, want 1", report.BrokerMuxLinks)
	}
	if report.BrokerRoutesOpened != int64(cfg.participants()) {
		t.Errorf("opened %d routes, want one per participant (%d)", report.BrokerRoutesOpened, cfg.participants())
	}
	if len(report.BrokerRoutes) != cfg.participants() {
		t.Fatalf("report carries %d route snapshots, want %d", len(report.BrokerRoutes), cfg.participants())
	}
	var toWorkerIn, toSupEgress int64
	for name, st := range report.BrokerRoutes {
		if st.Binds != 1 || st.ToWorker.IngressBytes == 0 || st.ToSupervisor.EgressBytes == 0 {
			t.Errorf("route snapshot for %s looks empty: %+v", name, st)
		}
		toWorkerIn += st.ToWorker.IngressBytes
		toSupEgress += st.ToSupervisor.EgressBytes
	}
	// Route conns credit dedicated-link-equivalent sizes, so the endpoint
	// totals must equal the hub's inner-frame ledgers exactly.
	if report.SupervisorBytesSent != toWorkerIn {
		t.Errorf("supervisor sent %dB, hub ToWorker ingress %dB", report.SupervisorBytesSent, toWorkerIn)
	}
	if report.SupervisorBytesRecv != toSupEgress {
		t.Errorf("supervisor received %dB, hub ToSupervisor egress %dB", report.SupervisorBytesRecv, toSupEgress)
	}
}

// TestRunSimRoutesFanOut pins the -routes surface: a brokered pipelined run
// with Routes > participants opens the surplus round-robin as extra
// multiplexed routes to the same workers, all tasks complete, and the extra
// dials are not misreported as reconnects.
func TestRunSimRoutesFanOut(t *testing.T) {
	cfg := SimConfig{
		Spec:           SchemeSpec{Kind: SchemeNICBS, M: 8, ChainIters: 1},
		Workload:       "synthetic",
		Seed:           13,
		TaskSize:       128,
		Tasks:          8,
		Honest:         2,
		PipelineWindow: 2,
		Broker:         true,
		Routes:         6,
	}
	report, err := RunSim(cfg)
	if err != nil {
		t.Fatalf("RunSim: %v", err)
	}
	if report.TasksAssigned != cfg.Tasks {
		t.Errorf("completed %d of %d tasks", report.TasksAssigned, cfg.Tasks)
	}
	for _, tv := range report.TaskVerdicts {
		if !tv.Verdict.Accepted {
			t.Errorf("honest task %d rejected: %s", tv.TaskID, tv.Verdict.Reason)
		}
	}
	if report.BrokerMuxLinks != 1 {
		t.Errorf("clean fan-out used %d physical supervisor links, want 1", report.BrokerMuxLinks)
	}
	if report.BrokerRoutesOpened != int64(cfg.Routes) {
		t.Errorf("opened %d routes, want %d", report.BrokerRoutesOpened, cfg.Routes)
	}
	for _, p := range report.Participants {
		if p.Reconnects != 0 {
			t.Errorf("participant %s reports %d reconnects in a clean run; extra routes must not count", p.ID, p.Reconnects)
		}
	}
}

// TestSimConfigRoutesValidation pins the Routes preconditions.
func TestSimConfigRoutesValidation(t *testing.T) {
	base := SimConfig{
		Spec:     SchemeSpec{Kind: SchemeCBS, M: 4},
		Workload: "synthetic",
		TaskSize: 16,
		Tasks:    1,
		Honest:   2,
	}
	noBroker := base
	noBroker.Routes = 2
	noBroker.PipelineWindow = 2
	if _, err := RunSim(noBroker); err == nil {
		t.Error("Routes without Broker was accepted")
	}
	noWindow := base
	noWindow.Routes = 2
	noWindow.Broker = true
	if _, err := RunSim(noWindow); err == nil {
		t.Error("Routes without PipelineWindow was accepted")
	}
	tooFew := base
	tooFew.Broker = true
	tooFew.PipelineWindow = 2
	tooFew.Routes = 1
	if _, err := RunSim(tooFew); err == nil {
		t.Error("Routes below the participant count was accepted")
	}
}
