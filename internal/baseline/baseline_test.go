package baseline

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"uncheatgrid/internal/cheat"
	"uncheatgrid/internal/workload"
)

func checkAgainst(f workload.Function) CheckFunc {
	return func(index uint64, output []byte) error {
		want := f.Eval(index)
		if string(want) != string(output) {
			return fmt.Errorf("output mismatch at %d", index)
		}
		return nil
	}
}

func claims(p cheat.Producer, n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = p.Claim(uint64(i))
	}
	return out
}

func TestNaiveSamplingAcceptsHonest(t *testing.T) {
	f := workload.NewSynthetic(1, 1, 64)
	s, err := NewNaiveSampling(20, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("NewNaiveSampling: %v", err)
	}
	const n = 100
	if err := s.Verify(n, claims(cheat.NewHonest(f), n), checkAgainst(f)); err != nil {
		t.Fatalf("honest upload rejected: %v", err)
	}
}

func TestNaiveSamplingCatchesCheaterAtTheoremRate(t *testing.T) {
	// Naive sampling has the same detection probability as CBS: survival
	// (r + (1-r)q)^m with q≈0 here.
	const (
		n      = 64
		m      = 3
		r      = 0.5
		rounds = 300
	)
	survived := 0
	for round := 0; round < rounds; round++ {
		f := workload.NewSynthetic(uint64(round), 1, 64)
		producer, err := cheat.NewSemiHonest(f, r, uint64(round)*31)
		if err != nil {
			t.Fatalf("NewSemiHonest: %v", err)
		}
		s, err := NewNaiveSampling(m, rand.New(rand.NewSource(int64(round))))
		if err != nil {
			t.Fatalf("NewNaiveSampling: %v", err)
		}
		err = s.Verify(n, claims(producer, n), checkAgainst(f))
		var sampleErr *SampleError
		switch {
		case err == nil:
			survived++
		case errors.As(err, &sampleErr):
			if !errors.Is(err, ErrWrongResult) {
				t.Fatalf("unexpected failure class: %v", err)
			}
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	got := float64(survived) / rounds
	want := math.Pow(r, m)
	sigma := math.Sqrt(want * (1 - want) / rounds)
	if math.Abs(got-want) > 4*sigma+0.02 {
		t.Fatalf("survival = %v, want %v (Theorem 3 shape)", got, want)
	}
}

func TestNaiveSamplingValidation(t *testing.T) {
	if _, err := NewNaiveSampling(0, nil); !errors.Is(err, ErrBadSampleCount) {
		t.Errorf("m=0: err = %v, want ErrBadSampleCount", err)
	}
	s, err := NewNaiveSampling(5, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("NewNaiveSampling: %v", err)
	}
	f := workload.NewSynthetic(1, 1, 64)
	if err := s.Verify(0, nil, checkAgainst(f)); !errors.Is(err, ErrBadDomain) {
		t.Errorf("n=0: err = %v, want ErrBadDomain", err)
	}
	if err := s.Verify(4, make([][]byte, 3), checkAgainst(f)); !errors.Is(err, ErrResultCountMismatch) {
		t.Errorf("short upload: err = %v, want ErrResultCountMismatch", err)
	}
	if err := s.Verify(4, make([][]byte, 4), nil); err == nil {
		t.Error("nil check accepted")
	}
}

func TestDoubleCheckUnanimousAgreement(t *testing.T) {
	f := workload.NewSynthetic(2, 1, 64)
	d, err := NewDoubleCheck(3)
	if err != nil {
		t.Fatalf("NewDoubleCheck: %v", err)
	}
	honest := claims(cheat.NewHonest(f), 32)
	verdict, err := d.Compare([][][]byte{honest, honest, honest})
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if len(verdict.Dissenters) != 0 || verdict.DisputedIndices != 0 {
		t.Fatalf("unanimous replicas flagged: %+v", verdict)
	}
	for i := range honest {
		if string(verdict.Canonical[i]) != string(honest[i]) {
			t.Fatalf("canonical differs at %d", i)
		}
	}
}

func TestDoubleCheckFlagsTheCheater(t *testing.T) {
	f := workload.NewSynthetic(3, 1, 64)
	d, err := NewDoubleCheck(3)
	if err != nil {
		t.Fatalf("NewDoubleCheck: %v", err)
	}
	cheater, err := cheat.NewSemiHonest(f, 0.5, 5)
	if err != nil {
		t.Fatalf("NewSemiHonest: %v", err)
	}
	const n = 64
	honest := claims(cheat.NewHonest(f), n)
	verdict, err := d.Compare([][][]byte{honest, claims(cheater, n), honest})
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if len(verdict.Dissenters) != 1 || verdict.Dissenters[0] != 1 {
		t.Fatalf("Dissenters = %v, want [1]", verdict.Dissenters)
	}
	if verdict.DisputedIndices == 0 {
		t.Fatal("no disputed indices despite a cheater")
	}
	// The majority result is the honest one.
	for i := range honest {
		if string(verdict.Canonical[i]) != string(honest[i]) {
			t.Fatalf("canonical corrupted at %d", i)
		}
	}
}

func TestDoubleCheckNoConsensus(t *testing.T) {
	d, err := NewDoubleCheck(2)
	if err != nil {
		t.Fatalf("NewDoubleCheck: %v", err)
	}
	a := [][]byte{{1}, {2}}
	b := [][]byte{{1}, {3}}
	if _, err := d.Compare([][][]byte{a, b}); !errors.Is(err, ErrNoConsensus) {
		t.Fatalf("err = %v, want ErrNoConsensus", err)
	}
}

func TestDoubleCheckTwoAgainstOneColluders(t *testing.T) {
	// Redundancy's known weakness: two colluding cheaters outvote one
	// honest replica. The honest worker gets flagged — documenting why the
	// paper pursues sampling instead.
	f := workload.NewSynthetic(4, 1, 64)
	d, err := NewDoubleCheck(3)
	if err != nil {
		t.Fatalf("NewDoubleCheck: %v", err)
	}
	colluder, err := cheat.NewSemiHonest(f, 0, 9) // same seed ⇒ same fabrications
	if err != nil {
		t.Fatalf("NewSemiHonest: %v", err)
	}
	const n = 16
	lies := claims(colluder, n)
	honest := claims(cheat.NewHonest(f), n)
	verdict, err := d.Compare([][][]byte{lies, honest, lies})
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if len(verdict.Dissenters) != 1 || verdict.Dissenters[0] != 1 {
		t.Fatalf("Dissenters = %v; colluders should outvote the honest replica", verdict.Dissenters)
	}
}

func TestDoubleCheckValidation(t *testing.T) {
	if _, err := NewDoubleCheck(1); err == nil {
		t.Error("replicas=1 accepted")
	}
	d, err := NewDoubleCheck(2)
	if err != nil {
		t.Fatalf("NewDoubleCheck: %v", err)
	}
	if _, err := d.Compare([][][]byte{{{1}}}); err == nil {
		t.Error("wrong replica count accepted")
	}
	if _, err := d.Compare([][][]byte{{}, {}}); !errors.Is(err, ErrBadDomain) {
		t.Errorf("empty vectors: err = %v, want ErrBadDomain", err)
	}
	if _, err := d.Compare([][][]byte{{{1}}, {{1}, {2}}}); !errors.Is(err, ErrResultCountMismatch) {
		t.Errorf("ragged vectors: err = %v, want ErrResultCountMismatch", err)
	}
}

func TestRingerHonestParticipantFindsAll(t *testing.T) {
	p := workload.NewPassword(7, 10) // 1024 keys
	const n = 1 << 10
	rng := rand.New(rand.NewSource(2))
	set, err := PlantRingers(p.Eval, n, 8, rng)
	if err != nil {
		t.Fatalf("PlantRingers: %v", err)
	}
	honest := cheat.NewHonest(p)
	found := set.FindRingers(honest.Claim, n)
	if err := set.Verify(found); err != nil {
		t.Fatalf("honest participant failed ringer check: %v", err)
	}
}

func TestRingerCatchesLazyParticipant(t *testing.T) {
	// A cheater computing half the domain misses each ringer with
	// probability 1/2; with 8 ringers it survives ~0.4% of runs.
	p := workload.NewPassword(8, 10)
	const n = 1 << 10
	caught := 0
	const rounds = 50
	for round := 0; round < rounds; round++ {
		rng := rand.New(rand.NewSource(int64(round)))
		set, err := PlantRingers(p.Eval, n, 8, rng)
		if err != nil {
			t.Fatalf("PlantRingers: %v", err)
		}
		lazy, err := cheat.NewSemiHonest(p, 0.5, uint64(round))
		if err != nil {
			t.Fatalf("NewSemiHonest: %v", err)
		}
		if err := set.Verify(set.FindRingers(lazy.Claim, n)); err != nil {
			if !errors.Is(err, ErrMissingRinger) {
				t.Fatalf("unexpected failure: %v", err)
			}
			caught++
		}
	}
	if caught < rounds-5 {
		t.Fatalf("caught %d/%d lazy runs; ringers should almost always catch r=0.5", caught, rounds)
	}
}

func TestRingerSecretsAreDistinctAndInRange(t *testing.T) {
	p := workload.NewPassword(9, 10)
	set, err := PlantRingers(p.Eval, 1<<10, 16, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatalf("PlantRingers: %v", err)
	}
	seen := make(map[uint64]struct{})
	for _, s := range set.Secrets() {
		if s >= 1<<10 {
			t.Fatalf("secret %d out of range", s)
		}
		if _, dup := seen[s]; dup {
			t.Fatalf("duplicate secret %d", s)
		}
		seen[s] = struct{}{}
	}
	if set.M() != 16 {
		t.Fatalf("M() = %d, want 16", set.M())
	}
}

func TestRingerImagesSorted(t *testing.T) {
	// Sorted images must not leak plant positions.
	p := workload.NewPassword(10, 10)
	set, err := PlantRingers(p.Eval, 1<<10, 12, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatalf("PlantRingers: %v", err)
	}
	for i := 1; i < len(set.Images); i++ {
		if string(set.Images[i-1]) > string(set.Images[i]) {
			t.Fatal("images not sorted")
		}
	}
}

func TestRingerValidation(t *testing.T) {
	p := workload.NewPassword(11, 10)
	rng := rand.New(rand.NewSource(5))
	if _, err := PlantRingers(p.Eval, 0, 4, rng); !errors.Is(err, ErrBadDomain) {
		t.Errorf("n=0: err = %v, want ErrBadDomain", err)
	}
	if _, err := PlantRingers(p.Eval, 16, 0, rng); !errors.Is(err, ErrBadSampleCount) {
		t.Errorf("m=0: err = %v, want ErrBadSampleCount", err)
	}
	if _, err := PlantRingers(p.Eval, 4, 5, rng); err == nil {
		t.Error("m>n accepted")
	}
	if _, err := PlantRingers(nil, 16, 4, rng); err == nil {
		t.Error("nil eval accepted")
	}
}

func TestRingerVerifyIgnoresExtraReports(t *testing.T) {
	p := workload.NewPassword(12, 10)
	set, err := PlantRingers(p.Eval, 1<<10, 4, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatalf("PlantRingers: %v", err)
	}
	reported := append(set.Secrets(), 999, 1000)
	if err := set.Verify(reported); err != nil {
		t.Fatalf("extra reports rejected: %v", err)
	}
}
