package baseline

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// Ringer errors.
var (
	// ErrMissingRinger indicates the participant failed to report a planted
	// ringer — evidence it skipped part of its domain.
	ErrMissingRinger = errors.New("baseline: planted ringer not reported")
	// ErrNotOneWay is returned when the ringer scheme is requested for a
	// workload without the one-way property it requires.
	ErrNotOneWay = errors.New("baseline: ringer scheme requires a one-way f")
)

// RingerSet is the supervisor's state for one Golle-Mironov exchange: m
// pre-computed images f(x_j) for secret inputs x_j scattered through the
// participant's domain. The participant receives only the images; to report
// the matching inputs it must evaluate f across the domain — the scheme's
// whole leverage, and the reason it only works when f is one-way
// (Section 1.1).
type RingerSet struct {
	// Images are the f(x_j) values handed to the participant, sorted to
	// hide plant order.
	Images [][]byte
	// secrets are the planted inputs, kept supervisor-side.
	secrets []uint64
	// imageIndex maps image bytes to plant position for verification.
	imageIndex map[string]int
}

// PlantRingers precomputes m ringers over the domain [0, n) using eval (the
// supervisor's own access to f). Duplicate plants are re-drawn so the m
// secrets are distinct; m must not exceed n.
func PlantRingers(eval func(x uint64) []byte, n uint64, m int, rng *rand.Rand) (*RingerSet, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadDomain, n)
	}
	if m < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadSampleCount, m)
	}
	if uint64(m) > n {
		return nil, fmt.Errorf("baseline: cannot plant %d distinct ringers in a domain of %d", m, n)
	}
	if eval == nil {
		return nil, errors.New("baseline: nil eval function")
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(rand.Int63()))
	}

	chosen := make(map[uint64]struct{}, m)
	secrets := make([]uint64, 0, m)
	for len(secrets) < m {
		x := uint64(rng.Int63n(int64(n)))
		if _, dup := chosen[x]; dup {
			continue
		}
		chosen[x] = struct{}{}
		secrets = append(secrets, x)
	}

	set := &RingerSet{
		Images:     make([][]byte, m),
		secrets:    secrets,
		imageIndex: make(map[string]int, m),
	}
	for j, x := range secrets {
		img := eval(x)
		set.Images[j] = img
		set.imageIndex[string(img)] = j
	}
	// Sort images so their order leaks nothing about plant positions.
	sort.Slice(set.Images, func(a, b int) bool {
		return string(set.Images[a]) < string(set.Images[b])
	})
	return set, nil
}

// M reports the number of planted ringers.
func (rs *RingerSet) M() int { return len(rs.secrets) }

// Secrets returns a copy of the planted inputs; tests and experiments use it
// as ground truth.
func (rs *RingerSet) Secrets() []uint64 {
	return append([]uint64(nil), rs.secrets...)
}

// FindRingers is the honest participant-side scan: evaluate claim over the
// whole domain and report every input whose value matches a ringer image.
// Passing a cheater's claim function models the lazy participant: it only
// discovers ringers that land in the part of the domain it really computed
// (a guessed value matches an image only with negligible probability).
func (rs *RingerSet) FindRingers(claim func(x uint64) []byte, n uint64) []uint64 {
	images := make(map[string]struct{}, len(rs.Images))
	for _, img := range rs.Images {
		images[string(img)] = struct{}{}
	}
	var found []uint64
	for x := uint64(0); x < n; x++ {
		if _, ok := images[string(claim(x))]; ok {
			found = append(found, x)
		}
	}
	return found
}

// Verify checks the participant's reported ringer inputs: every planted
// secret must be present. Extra reported inputs are ignored (they may be
// legitimate collisions). A missing secret convicts the participant.
func (rs *RingerSet) Verify(reported []uint64) error {
	have := make(map[uint64]struct{}, len(reported))
	for _, x := range reported {
		have[x] = struct{}{}
	}
	for _, secret := range rs.secrets {
		if _, ok := have[secret]; !ok {
			return &SampleError{Index: secret, Err: ErrMissingRinger}
		}
	}
	return nil
}
