// Package baseline implements the verification schemes the paper compares
// CBS against: double-checking by redundant assignment, naive sampling over
// a full result upload (both Section 1), and the ringer scheme of Golle and
// Mironov (Section 1.1, reference [8]).
//
// Each baseline exposes the participant- and supervisor-side mechanics; the
// grid layer wires them over a transport so their communication cost can be
// measured next to CBS.
package baseline

import (
	"errors"
	"fmt"
	"math/rand"
)

// Errors reported by this package.
var (
	// ErrBadSampleCount is returned for non-positive sample counts.
	ErrBadSampleCount = errors.New("baseline: sample count must be >= 1")
	// ErrBadDomain is returned for empty domains.
	ErrBadDomain = errors.New("baseline: domain size must be >= 1")
	// ErrWrongResult indicates a sampled result failed the supervisor's
	// correctness check.
	ErrWrongResult = errors.New("baseline: sampled result is incorrect")
	// ErrNoConsensus indicates redundant replicas disagree with no
	// majority, so the double-check scheme cannot produce a verdict.
	ErrNoConsensus = errors.New("baseline: replicas disagree with no majority")
	// ErrResultCountMismatch indicates a participant returned the wrong
	// number of results.
	ErrResultCountMismatch = errors.New("baseline: result count does not match domain size")
)

// CheckFunc validates a claimed output for a domain index; nil means
// correct. It mirrors core.CheckFunc so supervisors can share adapters.
type CheckFunc func(index uint64, output []byte) error

// SampleError reports which sampled index convicted the participant.
type SampleError struct {
	// Index is the domain index of the failing sample.
	Index uint64
	// Err describes the failure (wraps ErrWrongResult).
	Err error
}

// Error implements error.
func (e *SampleError) Error() string {
	return fmt.Sprintf("baseline: sample %d failed: %v", e.Index, e.Err)
}

// Unwrap exposes the failure class.
func (e *SampleError) Unwrap() error { return e.Err }

// NaiveSampling is the improved strawman of Section 1: the participant
// uploads all n results, the supervisor re-checks m uniform samples. Its
// detection probability matches CBS (Theorem 3) but its communication is
// O(n) — the cost CBS eliminates.
type NaiveSampling struct {
	m   int
	rng *rand.Rand
}

// NewNaiveSampling creates a supervisor-side sampler re-checking m results.
func NewNaiveSampling(m int, rng *rand.Rand) (*NaiveSampling, error) {
	if m < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadSampleCount, m)
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(rand.Int63()))
	}
	return &NaiveSampling{m: m, rng: rng}, nil
}

// M reports the sample count.
func (s *NaiveSampling) M() int { return s.m }

// Verify audits a full result upload of n entries: it draws m uniform
// indices (with replacement) and applies the correctness check to each.
func (s *NaiveSampling) Verify(n int, results [][]byte, check CheckFunc) error {
	if n < 1 {
		return fmt.Errorf("%w: got %d", ErrBadDomain, n)
	}
	if len(results) != n {
		return fmt.Errorf("%w: got %d results for n=%d", ErrResultCountMismatch, len(results), n)
	}
	if check == nil {
		return errors.New("baseline: nil check function")
	}
	for k := 0; k < s.m; k++ {
		idx := uint64(s.rng.Int63n(int64(n)))
		if err := check(idx, results[idx]); err != nil {
			return &SampleError{Index: idx, Err: fmt.Errorf("%w: %v", ErrWrongResult, err)}
		}
	}
	return nil
}
