package baseline

import (
	"bytes"
	"fmt"
)

// DoubleCheck is the straightforward solution of Section 1: assign the same
// task to several participants and compare their result vectors. It wastes
// (k-1)× the processor cycles and still uploads O(n) per replica; the paper
// dismisses it, which is why measuring it matters.
type DoubleCheck struct {
	replicas int
}

// NewDoubleCheck creates a redundancy comparator over k >= 2 replicas.
func NewDoubleCheck(replicas int) (*DoubleCheck, error) {
	if replicas < 2 {
		return nil, fmt.Errorf("baseline: double-check needs >= 2 replicas, got %d", replicas)
	}
	return &DoubleCheck{replicas: replicas}, nil
}

// Replicas reports the redundancy factor k.
func (d *DoubleCheck) Replicas() int { return d.replicas }

// Verdict is the outcome of a redundancy comparison.
type Verdict struct {
	// Canonical is the majority result vector (index-wise majority vote).
	Canonical [][]byte
	// Dissenters lists replica positions that disagreed with the majority
	// on at least one index — the flagged (presumed cheating) replicas.
	Dissenters []int
	// DisputedIndices counts domain indices with any disagreement.
	DisputedIndices int
}

// Compare performs an index-wise majority vote over the replicas' result
// vectors. All vectors must have equal length n. An index with no strict
// majority yields ErrNoConsensus: the supervisor must recompute or reassign.
func (d *DoubleCheck) Compare(replicaResults [][][]byte) (*Verdict, error) {
	if len(replicaResults) != d.replicas {
		return nil, fmt.Errorf("baseline: got %d replicas, want %d", len(replicaResults), d.replicas)
	}
	n := len(replicaResults[0])
	if n == 0 {
		return nil, fmt.Errorf("%w: empty result vectors", ErrBadDomain)
	}
	for r, results := range replicaResults {
		if len(results) != n {
			return nil, fmt.Errorf("%w: replica %d has %d results, want %d",
				ErrResultCountMismatch, r, len(results), n)
		}
	}

	verdict := &Verdict{Canonical: make([][]byte, n)}
	dissenting := make([]bool, d.replicas)
	for i := 0; i < n; i++ {
		majority, ok := majorityValue(replicaResults, i)
		if !ok {
			return nil, fmt.Errorf("%w: index %d", ErrNoConsensus, i)
		}
		verdict.Canonical[i] = majority
		disputed := false
		for r := 0; r < d.replicas; r++ {
			if !bytes.Equal(replicaResults[r][i], majority) {
				dissenting[r] = true
				disputed = true
			}
		}
		if disputed {
			verdict.DisputedIndices++
		}
	}
	for r, bad := range dissenting {
		if bad {
			verdict.Dissenters = append(verdict.Dissenters, r)
		}
	}
	return verdict, nil
}

// majorityValue returns the strictly most common value at index i, if one
// exists (> half the replicas).
func majorityValue(replicaResults [][][]byte, i int) ([]byte, bool) {
	k := len(replicaResults)
	counts := make(map[string]int, k)
	for r := 0; r < k; r++ {
		counts[string(replicaResults[r][i])]++
	}
	for value, count := range counts {
		if 2*count > k {
			return []byte(value), true
		}
	}
	return nil, false
}
