package merkle

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrBadSubtreeHeight is returned when the requested subtree height ℓ is
// negative or exceeds the tree height H.
var ErrBadSubtreeHeight = errors.New("merkle: subtree height out of range")

// PartialTree implements the storage-usage improvement of Section 3.3 of the
// paper: instead of storing the whole Merkle tree, it stores only the levels
// from the root down to level H-ℓ, and rebuilds the missing bottom-ℓ-level
// subtree (recomputing f on its 2^ℓ leaves) whenever a proof is requested.
//
// Storage is S = 2^(H-ℓ+1) node slots; each proof costs 2^ℓ leaf
// recomputations, giving the paper's relative computation overhead
// rco = m·2^ℓ/|D| = 2m/S for m samples.
type PartialTree struct {
	n         int
	cap       int
	ell       int // ℓ: height of the discarded subtrees
	blockSize int // 2^ℓ leaves per rebuilt subtree
	// top is a heap-layout tree over the 2^(H-ℓ) subtree roots; top[1] is
	// the overall root.
	top    [][]byte
	leafAt func(i int) []byte
	hs     hashers
	// workers is the resolved per-rebuild parallelism (1 = sequential).
	workers int

	// rebuiltLeaves counts leaf recomputations performed to serve proofs;
	// the experiments use it to measure rco.
	rebuiltLeaves atomic.Int64

	mu sync.Mutex // serializes the scratch state below
	// scratch is a reusable buffer for subtree rebuilds (2*blockSize slots);
	// with a fixed-size hash its internal-node digests live in scratchArena
	// rows and nh is the reusable hash state, so a rebuild allocates nothing.
	scratch      [][]byte
	scratchArena []byte
	nh           *nodeHasher
}

// NewPartial builds a partial tree over n leaves whose values are produced
// by leafAt. leafAt must be deterministic: it is called once per leaf during
// construction and again for every leaf of a rebuilt subtree during Prove.
// ℓ = 0 stores the full tree; ℓ = H stores only the root.
//
// WithParallelism(p) shards each subtree rebuild — at construction and for
// every Prove — across up to p goroutines; leafAt is then called
// concurrently (still exactly once per leaf of the block) and must be safe
// for concurrent use. Roots, proofs, and rebuild accounting are
// bit-identical to a sequential tree: only the hashing schedule changes.
// Rebuilds of blocks smaller than 1024 leaves stay sequential.
func NewPartial(n, ell int, leafAt func(i int) []byte, opts ...Option) (*PartialTree, error) {
	if n <= 0 {
		return nil, ErrEmptyTree
	}
	if leafAt == nil {
		return nil, fmt.Errorf("%w: nil leafAt", ErrNilLeaf)
	}
	capacity := nextPow2(n)
	height := log2(capacity)
	if ell < 0 || ell > height {
		return nil, fmt.Errorf("%w: ℓ=%d, height=%d", ErrBadSubtreeHeight, ell, height)
	}
	o := buildOptions(opts)
	hs := newHashers(o)
	blockSize := 1 << ell
	numBlocks := capacity / blockSize

	p := &PartialTree{
		n:         n,
		cap:       capacity,
		ell:       ell,
		blockSize: blockSize,
		top:       make([][]byte, 2*numBlocks),
		leafAt:    leafAt,
		hs:        hs,
		workers:   rebuildWorkers(o.parallelism, blockSize),
		scratch:   make([][]byte, 2*blockSize),
	}
	for b := 0; b < numBlocks; b++ {
		p.top[numBlocks+b] = p.subtreeRoot(b, false)
	}
	for i := numBlocks - 1; i >= 1; i-- {
		p.top[i] = hs.combine(p.top[2*i], p.top[2*i+1])
	}
	return p, nil
}

// N reports the number of real leaves.
func (p *PartialTree) N() int { return p.n }

// Height reports the full tree height H (edges from leaf to root).
func (p *PartialTree) Height() int { return log2(p.cap) }

// SubtreeHeight reports ℓ, the height of the discarded subtrees.
func (p *PartialTree) SubtreeHeight() int { return p.ell }

// StoredNodes reports S, the number of node slots kept in memory. It equals
// the paper's S = 2^(H-ℓ+1).
func (p *PartialTree) StoredNodes() int { return len(p.top) }

// RebuiltLeaves reports how many leaf values have been recomputed so far to
// serve proofs. It is safe for concurrent use.
func (p *PartialTree) RebuiltLeaves() int64 { return p.rebuiltLeaves.Load() }

// ResetCounters zeroes the rebuild accounting.
func (p *PartialTree) ResetCounters() { p.rebuiltLeaves.Store(0) }

// Root returns the commitment Φ(R).
func (p *PartialTree) Root() []byte {
	return cloneBytes(p.top[1])
}

// Prove produces the audit path for leaf i, rebuilding the containing
// subtree (recomputing f for its 2^ℓ leaves) and then continuing through the
// stored top levels. The resulting proof is byte-identical to the one a full
// Tree would produce.
func (p *PartialTree) Prove(i int) (*Proof, error) {
	if i < 0 || i >= p.n {
		return nil, fmt.Errorf("%w: %d not in [0, %d)", ErrIndexOutOfRange, i, p.n)
	}
	block := i / p.blockSize

	p.mu.Lock()
	defer p.mu.Unlock()

	siblings := make([][]byte, 0, p.Height())
	var value []byte
	if p.ell > 0 {
		sub := p.rebuildSubtree(block)
		local := i % p.blockSize
		value = cloneBytes(sub[p.blockSize+local])
		for pos := p.blockSize + local; pos > 1; pos /= 2 {
			siblings = append(siblings, cloneBytes(sub[pos^1]))
		}
	} else {
		value = cloneBytes(p.top[len(p.top)/2+block])
	}
	numBlocks := len(p.top) / 2
	for pos := numBlocks + block; pos > 1; pos /= 2 {
		siblings = append(siblings, cloneBytes(p.top[pos^1]))
	}
	return &Proof{Index: i, N: p.n, Value: value, Siblings: siblings}, nil
}

// subtreeRoot computes the root of block b. When counted is true the leaf
// evaluations are added to the rebuild accounting. The root is cloned out of
// the scratch state, which the next rebuild overwrites.
func (p *PartialTree) subtreeRoot(b int, counted bool) []byte {
	sub := p.fillSubtree(b, counted)
	return cloneBytes(sub[1])
}

// rebuildSubtree recomputes the full node set of block b into the scratch
// buffer and returns it. Callers must hold p.mu.
func (p *PartialTree) rebuildSubtree(b int) [][]byte {
	return p.fillSubtree(b, true)
}

// rebuildWorkers resolves the per-rebuild worker count. Unlike the full
// tree's buildWorkers it does not clamp to runtime.NumCPU(): a rebuild runs
// under p.mu (one proof at a time), the goroutine count is bounded by the
// caller's request, and the result is schedule-independent either way.
// Blocks below parallelMinLeaves always rebuild sequentially — goroutine
// startup would cost more than it saves.
func rebuildWorkers(requested, blockSize int) int {
	if requested <= 1 || blockSize < parallelMinLeaves {
		return 1
	}
	if max := blockSize / 2; requested > max {
		requested = max
	}
	return requested
}

// ensureScratch lazily builds the reusable rebuild state: the node-slot
// buffer, the arena rows backing internal digests, and the hash state. Lazy
// so snapshot-restored trees get it on first use under p.mu.
func (p *PartialTree) ensureScratch() {
	if p.scratch == nil {
		p.scratch = make([][]byte, 2*p.blockSize)
	}
	if p.nh == nil {
		p.nh = p.hs.node()
	}
	if p.scratchArena == nil {
		p.scratchArena = newNodeArena(p.hs, p.blockSize)
	}
}

// fillSubtree populates the scratch buffer with the heap-layout subtree of
// block b. Leaves beyond n take the pad digest. Callers must hold p.mu (or
// be the constructor, which runs before the tree is shared).
func (p *PartialTree) fillSubtree(b int, counted bool) [][]byte {
	p.ensureScratch()
	sub := p.scratch
	base := b * p.blockSize
	if p.workers > 1 {
		p.fillSubtreeParallel(sub, base, counted)
		return sub
	}
	for j := 0; j < p.blockSize; j++ {
		idx := base + j
		if idx < p.n {
			sub[p.blockSize+j] = p.leafAt(idx)
			if counted {
				p.rebuiltLeaves.Add(1)
			}
		} else {
			sub[p.blockSize+j] = p.hs.pad
		}
	}
	for i := p.blockSize - 1; i >= 1; i-- {
		sub[i] = p.nh.combineInto(arenaRow(p.scratchArena, p.hs.fixedLen, i), sub[2*i], sub[2*i+1])
	}
	return sub
}

// fillSubtreeParallel is the sharded twin of the sequential pass in
// fillSubtree: the block's leaf span is cut into equal-sized sub-subtrees,
// each evaluated and hashed bottom-up by its own goroutine, and the top
// log2(shards) levels are combined sequentially. Node values are
// bit-identical to the sequential schedule — structure, padding, and hash
// inputs are unchanged.
func (p *PartialTree) fillSubtreeParallel(sub [][]byte, base int, counted bool) {
	shards := nextPow2(p.workers)
	if shards > p.blockSize/2 {
		shards = p.blockSize / 2
	}
	span := p.blockSize / shards
	var wg sync.WaitGroup
	wg.Add(shards)
	for s := 0; s < shards; s++ {
		go func(s int) {
			defer wg.Done()
			// Per-goroutine hash state; the arena rows written here are the
			// shard's own subtree nodes, disjoint from every other shard.
			nh := p.hs.node()
			lo := s * span
			for j := lo; j < lo+span; j++ {
				idx := base + j
				if idx < p.n {
					sub[p.blockSize+j] = p.leafAt(idx)
					if counted {
						p.rebuiltLeaves.Add(1)
					}
				} else {
					sub[p.blockSize+j] = p.hs.pad
				}
			}
			root := (p.blockSize + lo) / span
			for w := span / 2; w >= 1; w /= 2 {
				for q := root * w; q < (root+1)*w; q++ {
					sub[q] = nh.combineInto(arenaRow(p.scratchArena, p.hs.fixedLen, q), sub[2*q], sub[2*q+1])
				}
			}
		}(s)
	}
	wg.Wait()
	for i := shards - 1; i >= 1; i-- {
		sub[i] = p.nh.combineInto(arenaRow(p.scratchArena, p.hs.fixedLen, i), sub[2*i], sub[2*i+1])
	}
}

func cloneBytes(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
