package merkle

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func leafFunc(n int) func(i int) []byte {
	values := leafValues(n)
	return func(i int) []byte { return values[i] }
}

func TestPartialMatchesFullTree(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8, 16, 33, 64, 100} {
		full := mustBuild(t, leafValues(n))
		height := full.Height()
		for ell := 0; ell <= height; ell++ {
			t.Run(fmt.Sprintf("n=%d/ell=%d", n, ell), func(t *testing.T) {
				partial, err := NewPartial(n, ell, leafFunc(n))
				if err != nil {
					t.Fatalf("NewPartial: %v", err)
				}
				if !bytes.Equal(partial.Root(), full.Root()) {
					t.Fatal("partial root differs from full root")
				}
				for i := 0; i < n; i++ {
					wantProof, err := full.Prove(i)
					if err != nil {
						t.Fatalf("full Prove(%d): %v", i, err)
					}
					gotProof, err := partial.Prove(i)
					if err != nil {
						t.Fatalf("partial Prove(%d): %v", i, err)
					}
					if !proofsEqual(gotProof, wantProof) {
						t.Fatalf("proof mismatch at leaf %d", i)
					}
					if err := Verify(full.Root(), gotProof); err != nil {
						t.Fatalf("Verify(%d): %v", i, err)
					}
				}
			})
		}
	}
}

func proofsEqual(a, b *Proof) bool {
	if a.Index != b.Index || a.N != b.N || !bytes.Equal(a.Value, b.Value) {
		return false
	}
	if len(a.Siblings) != len(b.Siblings) {
		return false
	}
	for i := range a.Siblings {
		if !bytes.Equal(a.Siblings[i], b.Siblings[i]) {
			return false
		}
	}
	return true
}

func TestPartialStorageMatchesPaperFormula(t *testing.T) {
	// Section 3.3: storing the tree up to level H-ℓ keeps S = 2^(H-ℓ+1)
	// node slots and each proof rebuilds one subtree of 2^ℓ leaves.
	const n = 256 // H = 8
	for ell := 0; ell <= 8; ell++ {
		partial, err := NewPartial(n, ell, leafFunc(n))
		if err != nil {
			t.Fatalf("NewPartial(ell=%d): %v", ell, err)
		}
		wantStored := 1 << (8 - ell + 1)
		if got := partial.StoredNodes(); got != wantStored {
			t.Errorf("ell=%d: StoredNodes() = %d, want %d", ell, got, wantStored)
		}

		partial.ResetCounters()
		if _, err := partial.Prove(n / 3); err != nil {
			t.Fatalf("Prove: %v", err)
		}
		wantEvals := int64(1 << ell)
		if ell == 0 {
			wantEvals = 0 // full tree stored: nothing to rebuild
		}
		if got := partial.RebuiltLeaves(); got != wantEvals {
			t.Errorf("ell=%d: RebuiltLeaves() = %d, want %d", ell, got, wantEvals)
		}
	}
}

func TestPartialRCOIndependentOfDomainSize(t *testing.T) {
	// The paper's key observation: rco = 2m/S depends only on the sample
	// count and the stored size, not on |D|.
	const m = 8
	const storedTarget = 64 // S = 64 slots → H-ℓ+1 = 6 → ℓ = H-5
	for _, n := range []int{256, 1024, 4096} {
		height := log2(nextPow2(n))
		ell := height - 5
		partial, err := NewPartial(n, ell, leafFunc(n))
		if err != nil {
			t.Fatalf("NewPartial(n=%d): %v", n, err)
		}
		if got := partial.StoredNodes(); got != storedTarget {
			t.Fatalf("n=%d: StoredNodes() = %d, want %d", n, got, storedTarget)
		}
		partial.ResetCounters()
		for s := 0; s < m; s++ {
			if _, err := partial.Prove((s * n) / m); err != nil {
				t.Fatalf("Prove: %v", err)
			}
		}
		gotRCO := float64(partial.RebuiltLeaves()) / float64(n)
		wantRCO := 2.0 * float64(m) / float64(storedTarget)
		if diff := gotRCO - wantRCO; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("n=%d: rco = %v, want %v", n, gotRCO, wantRCO)
		}
	}
}

func TestPartialRejectsInvalidInput(t *testing.T) {
	if _, err := NewPartial(0, 0, leafFunc(1)); !errors.Is(err, ErrEmptyTree) {
		t.Errorf("n=0: err = %v, want ErrEmptyTree", err)
	}
	if _, err := NewPartial(8, -1, leafFunc(8)); !errors.Is(err, ErrBadSubtreeHeight) {
		t.Errorf("ell=-1: err = %v, want ErrBadSubtreeHeight", err)
	}
	if _, err := NewPartial(8, 4, leafFunc(8)); !errors.Is(err, ErrBadSubtreeHeight) {
		t.Errorf("ell>H: err = %v, want ErrBadSubtreeHeight", err)
	}
	if _, err := NewPartial(8, 1, nil); !errors.Is(err, ErrNilLeaf) {
		t.Errorf("nil leafAt: err = %v, want ErrNilLeaf", err)
	}
	partial, err := NewPartial(8, 2, leafFunc(8))
	if err != nil {
		t.Fatalf("NewPartial: %v", err)
	}
	if _, err := partial.Prove(8); !errors.Is(err, ErrIndexOutOfRange) {
		t.Errorf("Prove(8): err = %v, want ErrIndexOutOfRange", err)
	}
}

func TestPartialConcurrentProofs(t *testing.T) {
	const n = 128
	full := mustBuild(t, leafValues(n))
	partial, err := NewPartial(n, 3, leafFunc(n))
	if err != nil {
		t.Fatalf("NewPartial: %v", err)
	}
	root := full.Root()
	done := make(chan error)
	for g := 0; g < 4; g++ {
		go func(offset int) {
			for i := offset; i < n; i += 4 {
				proof, err := partial.Prove(i)
				if err != nil {
					done <- fmt.Errorf("Prove(%d): %w", i, err)
					return
				}
				if err := Verify(root, proof); err != nil {
					done <- fmt.Errorf("Verify(%d): %w", i, err)
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestPartialQuickEquivalence(t *testing.T) {
	f := func(nSeed, iSeed uint16, ellSeed uint8) bool {
		n := int(nSeed%200) + 1
		i := int(iSeed) % n
		height := log2(nextPow2(n))
		ell := int(ellSeed) % (height + 1)
		full, err := Build(leafValues(n))
		if err != nil {
			return false
		}
		partial, err := NewPartial(n, ell, leafFunc(n))
		if err != nil {
			return false
		}
		want, err := full.Prove(i)
		if err != nil {
			return false
		}
		got, err := partial.Prove(i)
		if err != nil {
			return false
		}
		return proofsEqual(got, want) && Verify(full.Root(), got) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPartialParallelMatchesSequential pins the satellite guarantee of
// parallel subtree rebuilds: roots, proofs, and rebuild accounting of a
// WithParallelism partial tree are bit-identical to the sequential one. The
// block size (2^ℓ = 2048) clears the sequential-fallback threshold so the
// sharded path genuinely runs, whatever the host's CPU count.
func TestPartialParallelMatchesSequential(t *testing.T) {
	const n = 5000
	const ell = 11
	at := leafFunc(n) // slice-backed: safe for concurrent calls
	sequential, err := NewPartial(n, ell, at)
	if err != nil {
		t.Fatalf("NewPartial (sequential): %v", err)
	}
	parallel, err := NewPartial(n, ell, at, WithParallelism(4))
	if err != nil {
		t.Fatalf("NewPartial (parallel): %v", err)
	}
	if parallel.workers <= 1 {
		t.Fatal("parallel tree resolved to a sequential rebuild; the test proves nothing")
	}
	if !bytes.Equal(sequential.Root(), parallel.Root()) {
		t.Fatal("parallel root differs from sequential root")
	}
	for _, i := range []int{0, 1, 1023, 2048, 4095, n - 1} {
		want, err := sequential.Prove(i)
		if err != nil {
			t.Fatalf("sequential Prove(%d): %v", i, err)
		}
		got, err := parallel.Prove(i)
		if err != nil {
			t.Fatalf("parallel Prove(%d): %v", i, err)
		}
		if !proofsEqual(got, want) {
			t.Fatalf("proof mismatch at leaf %d", i)
		}
	}
	if s, p := sequential.RebuiltLeaves(), parallel.RebuiltLeaves(); s != p {
		t.Errorf("rebuild accounting diverges: sequential %d, parallel %d", s, p)
	}
}

// TestPartialParallelConcurrentProves exercises parallel rebuilds from
// concurrent Prove callers (the scratch buffer is shared; p.mu serializes
// rebuilds while each rebuild fans out internally).
func TestPartialParallelConcurrentProves(t *testing.T) {
	const n = 4096
	partial, err := NewPartial(n, 10, leafFunc(n), WithParallelism(4))
	if err != nil {
		t.Fatalf("NewPartial: %v", err)
	}
	full := mustBuild(t, leafValues(n))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < n; i += 4 * 37 {
				got, err := partial.Prove(i)
				if err != nil {
					t.Errorf("Prove(%d): %v", i, err)
					return
				}
				want, err := full.Prove(i)
				if err != nil {
					t.Errorf("full Prove(%d): %v", i, err)
					return
				}
				if !proofsEqual(got, want) {
					t.Errorf("proof mismatch at leaf %d", i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
