// Package merkle implements the Merkle (hash) tree used by the
// Commitment-Based Sampling scheme of "Uncheatable Grid Computing"
// (Du, Jia, Mangal, Murugesan; ICDCS 2004), Section 3.
//
// Following Eq. (1) of the paper, the tree is a complete binary tree whose
// leaf assignment is the raw computation result, Φ(Li) = f(xi), and whose
// internal assignment is the hash of the two children,
// Φ(V) = hash(Φ(Vleft) || Φ(Vright)).
//
// Two deliberate hardenings over the paper's abstract description:
//
//   - Internal hashing is length-prefixed and domain-separated
//     (hash(0x01 || len(l) || l || len(r) || r)) so that variable-length leaf
//     values cannot produce concatenation ambiguities.
//   - Domains whose size is not a power of two are padded with a fixed,
//     domain-separated pad digest so the tree stays complete, as the paper
//     assumes.
//
// The package provides a fully materialized Tree, a constant-memory
// StreamBuilder, and the storage-bounded PartialTree of Section 3.3.
package merkle

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"runtime"
	"sync"
	"sync/atomic"
)

// Errors reported by this package. They are exported so protocol layers can
// distinguish malformed inputs from genuine verification failures.
var (
	// ErrEmptyTree is returned when a tree is requested over zero leaves.
	ErrEmptyTree = errors.New("merkle: tree must have at least one leaf")
	// ErrIndexOutOfRange is returned when a leaf index falls outside [0, n).
	ErrIndexOutOfRange = errors.New("merkle: leaf index out of range")
	// ErrNilLeaf is returned when a leaf value is nil. Empty (zero-length)
	// values are legal; nil indicates a caller bug.
	ErrNilLeaf = errors.New("merkle: leaf value must not be nil")
)

const (
	// prefix bytes for domain separation inside the hash input.
	nodePrefix byte = 0x01
	padPrefix  byte = 0x00
)

// Hasher names a constructor for the one-way hash used throughout the tree.
// The paper suggests MD5 or SHA; the default is SHA-256.
type Hasher func() hash.Hash

// options collects construction parameters for trees and proofs.
type options struct {
	hasher      Hasher
	parallelism int
	window      int
	windowKeep  int
}

// Option customizes tree construction and proof verification. The same
// options must be used on both sides of the protocol.
type Option interface {
	apply(*options)
}

type hasherOption struct{ h Hasher }

func (o hasherOption) apply(opts *options) { opts.hasher = o.h }

// WithHasher selects the one-way hash function for internal nodes.
func WithHasher(h Hasher) Option { return hasherOption{h: h} }

type parallelismOption struct{ p int }

func (o parallelismOption) apply(opts *options) { opts.parallelism = o.p }

// WithParallelism shards leaf evaluation and subtree hashing during Build
// and BuildFunc across a worker pool of up to p goroutines. The resulting
// tree — root, proofs, everything — is bit-identical to a sequential
// build; only the construction schedule changes. p <= 1 selects the
// sequential builder; p == 0 (the zero value) likewise. Pass
// runtime.NumCPU() for a hardware-sized pool.
//
// The effective worker count is clamped to runtime.NumCPU() (hashing is
// CPU-bound) and to half the padded leaf count, and trees smaller than
// 1024 padded leaves always build sequentially — goroutine startup would
// cost more than it saves.
//
// With p > 1 the leaf producer passed to BuildFunc is called concurrently
// from multiple goroutines (still exactly once per index, but no longer in
// order), so it must be safe for concurrent use. Trees built by Build are
// unaffected: slice indexing is always safe.
//
// Parallelism only affects construction; proofs and verification are
// unchanged. NewStreamBuilder and NewPartial interpret the same option with
// their own clamping rules — see their docs.
func WithParallelism(p int) Option { return parallelismOption{p: p} }

type windowTrackingOption struct{ w, keep int }

func (o windowTrackingOption) apply(opts *options) {
	opts.window = o.w
	opts.windowKeep = o.keep
}

// WithWindowTracking makes a StreamBuilder additionally maintain standalone
// Merkle roots over consecutive w-leaf windows of the stream, retaining the
// most recent keep of them (keep <= 0 retains all), so WindowRoot can serve
// sliding-window commitments without holding any leaves. w must be a power
// of two. Build, BuildFunc, and NewPartial ignore the option.
func WithWindowTracking(w, keep int) Option { return windowTrackingOption{w: w, keep: keep} }

func buildOptions(opts []Option) options {
	o := options{hasher: sha256.New}
	for _, opt := range opts {
		opt.apply(&o)
	}
	return o
}

// hashers bundles the configured hash with the derived pad digest so the
// expensive pad computation happens once per tree.
type hashers struct {
	newHash Hasher
	pad     []byte
	// fixedLen is the digest length when the hash produces fixed-size
	// output (every standard hash does). 0 selects the allocating fallback
	// for custom hashers whose Sum length disagrees with Size().
	fixedLen int
}

func newHashers(o options) hashers {
	h := o.hasher()
	h.Write([]byte{padPrefix})
	h.Write([]byte("uncheatgrid/merkle: pad leaf"))
	pad := h.Sum(nil)
	fixedLen := 0
	if h.Size() == len(pad) {
		fixedLen = len(pad)
	}
	return hashers{newHash: o.hasher, pad: pad, fixedLen: fixedLen}
}

// combine computes the Φ value of an internal node from its two children,
// with length prefixes to rule out ambiguity between variable-length leaves.
func (hs hashers) combine(left, right []byte) []byte {
	h := hs.newHash()
	var lenBuf [binary.MaxVarintLen64]byte
	h.Write([]byte{nodePrefix})
	n := binary.PutUvarint(lenBuf[:], uint64(len(left)))
	h.Write(lenBuf[:n])
	h.Write(left)
	n = binary.PutUvarint(lenBuf[:], uint64(len(right)))
	h.Write(lenBuf[:n])
	h.Write(right)
	return h.Sum(nil)
}

// padTable returns padAt(0..maxLevel), where padAt(L) is the root of a
// height-L subtree whose every leaf is the pad digest: padAt(0) = pad,
// padAt(L) = combine(padAt(L-1), padAt(L-1)).
func (hs hashers) padTable(maxLevel int) [][]byte {
	pads := make([][]byte, maxLevel+1)
	pads[0] = hs.pad
	for l := 1; l <= maxLevel; l++ {
		pads[l] = hs.combine(pads[l-1], pads[l-1])
	}
	return pads
}

// nodeHasher is a reusable hashing state for the build hot paths: one hash
// instance reset per node instead of allocated per node, with digests written
// into caller-provided rows. The scratch buffer is a struct field so the
// slices handed to hash.Write never escape per call. A nodeHasher is not safe
// for concurrent use — each goroutine takes its own from hashers.node().
type nodeHasher struct {
	hs  hashers
	h   hash.Hash // nil selects the allocating fallback (variable-size digests)
	buf [1 + binary.MaxVarintLen64]byte
}

func (hs hashers) node() *nodeHasher {
	nh := &nodeHasher{hs: hs}
	if hs.fixedLen > 0 {
		nh.h = hs.newHash()
	}
	return nh
}

// combineInto computes combine(left, right) into dst, which must have
// capacity fixedLen. dst may alias left or right: both are absorbed into the
// hash state before dst is written. With a variable-size hasher dst is
// ignored and a fresh digest is allocated, preserving combine's semantics.
func (nh *nodeHasher) combineInto(dst, left, right []byte) []byte {
	if nh.h == nil {
		return nh.hs.combine(left, right)
	}
	h := nh.h
	h.Reset()
	nh.buf[0] = nodePrefix
	n := binary.PutUvarint(nh.buf[1:], uint64(len(left)))
	h.Write(nh.buf[:1+n])
	h.Write(left)
	n = binary.PutUvarint(nh.buf[:], uint64(len(right)))
	h.Write(nh.buf[:n])
	h.Write(right)
	return h.Sum(dst[:0])
}

// Tree is a fully materialized Merkle tree over n leaf values. It is the
// participant-side data structure of the CBS scheme (Step 1, Section 3.1).
// A Tree is immutable after construction and safe for concurrent reads.
type Tree struct {
	n     int      // number of real leaves
	cap   int      // leaves after padding; power of two, cap >= n
	nodes [][]byte // heap layout; nodes[1] is the root, nodes[cap+i] leaf i
	hs    hashers
	// arena backs every internal-node digest in one contiguous slab
	// (nodes[i] = arena[i*fixedLen:(i+1)*fixedLen] for 1 <= i < cap), so a
	// materialized tree costs O(1) allocations instead of one per node. nil
	// for variable-size hashers, where each digest is allocated individually.
	arena []byte
}

// Build constructs the tree over the given leaf values. values[i] holds the
// raw computation result f(xi); values must be non-empty and every entry
// non-nil. The slice contents are retained by reference: callers must not
// mutate them afterwards.
func Build(values [][]byte, opts ...Option) (*Tree, error) {
	if len(values) == 0 {
		return nil, ErrEmptyTree
	}
	return BuildFunc(len(values), func(i int) []byte { return values[i] }, opts...)
}

// BuildFunc constructs the tree over n leaves whose values are produced by
// at(i). It avoids materializing a separate value slice; at is called exactly
// once per index — in order by default, concurrently (and out of order) when
// WithParallelism selects a worker pool.
func BuildFunc(n int, at func(i int) []byte, opts ...Option) (*Tree, error) {
	if n <= 0 {
		return nil, ErrEmptyTree
	}
	o := buildOptions(opts)
	hs := newHashers(o)
	capacity := nextPow2(n)
	nodes := make([][]byte, 2*capacity)
	arena := newNodeArena(hs, capacity)

	workers := buildWorkers(o.parallelism, capacity)
	if workers > 1 {
		if err := fillParallel(nodes, arena, n, capacity, at, hs, workers); err != nil {
			return nil, err
		}
		return &Tree{n: n, cap: capacity, nodes: nodes, hs: hs, arena: arena}, nil
	}

	for i := 0; i < n; i++ {
		v := at(i)
		if v == nil {
			return nil, fmt.Errorf("%w: index %d", ErrNilLeaf, i)
		}
		nodes[capacity+i] = v
	}
	for i := n; i < capacity; i++ {
		nodes[capacity+i] = hs.pad
	}
	nh := hs.node()
	for i := capacity - 1; i >= 1; i-- {
		nodes[i] = nh.combineInto(arenaRow(arena, hs.fixedLen, i), nodes[2*i], nodes[2*i+1])
	}
	return &Tree{n: n, cap: capacity, nodes: nodes, hs: hs, arena: arena}, nil
}

// newNodeArena allocates the contiguous slab backing all internal-node
// digests of a capacity-leaf tree; nil when digests are variable-size (or the
// degenerate one-leaf tree, which has no internal nodes).
func newNodeArena(hs hashers, capacity int) []byte {
	if hs.fixedLen == 0 || capacity < 2 {
		return nil
	}
	return make([]byte, capacity*hs.fixedLen)
}

// arenaRow returns internal node i's slab row as an empty slice with exactly
// one digest of capacity, ready for combineInto. Rows are capacity-bounded so
// adjacent nodes can never bleed into each other.
func arenaRow(arena []byte, size, i int) []byte {
	if arena == nil {
		return nil
	}
	return arena[i*size : i*size : (i+1)*size]
}

// parallelMinLeaves is the tree size below which goroutine startup costs
// more than it saves; smaller trees always build sequentially.
const parallelMinLeaves = 1 << 10

// buildWorkers resolves the effective worker count for a tree of the given
// padded capacity.
func buildWorkers(requested, capacity int) int {
	if requested <= 1 || capacity < parallelMinLeaves {
		return 1
	}
	if cpus := runtime.NumCPU(); requested > cpus {
		requested = cpus
	}
	// Never more shards than half the leaves, so every shard owns a whole
	// subtree of at least two leaves.
	if max := capacity / 2; requested > max {
		requested = max
	}
	return requested
}

// fillParallel populates nodes (heap layout, padded capacity `capacity`)
// using a pool of workers. The leaf span is cut into shards equal-sized
// subtrees; each worker evaluates its shard's leaves and hashes the subtree
// bottom-up, fully independently. The top log2(shards) levels are then
// combined sequentially — shards-1 nodes, a negligible tail. The node
// values are bit-identical to the sequential schedule because the tree
// structure, padding, and hash inputs are unchanged.
func fillParallel(nodes [][]byte, arena []byte, n, capacity int, at func(i int) []byte, hs hashers, workers int) error {
	shards := nextPow2(workers)
	if shards > capacity/2 {
		shards = capacity / 2
	}
	span := capacity / shards // leaves per shard; a power of two >= 2

	errs := make([]error, shards)
	var failed atomic.Bool
	var wg sync.WaitGroup
	next := make(chan int, shards)
	for s := 0; s < shards; s++ {
		next <- s
	}
	close(next)

	// abortStride bounds how much work a shard does between checks of the
	// shared failure flag, so one bad leaf stops the whole build quickly
	// instead of after every other shard finishes.
	const abortStride = 256

	worker := func() {
		defer wg.Done()
		// Hash state is per-goroutine; the arena rows each worker writes are
		// disjoint (its own subtree's node indices), so no synchronization is
		// needed beyond the WaitGroup.
		nh := hs.node()
		for s := range next {
			if failed.Load() {
				return
			}
			lo := s * span // first leaf index of the shard
			for i := lo; i < lo+span; i++ {
				if i%abortStride == 0 && failed.Load() {
					return
				}
				switch {
				case i < n:
					v := at(i)
					if v == nil {
						errs[s] = fmt.Errorf("%w: index %d", ErrNilLeaf, i)
						failed.Store(true)
						return
					}
					nodes[capacity+i] = v
				default:
					nodes[capacity+i] = hs.pad
				}
			}
			if failed.Load() {
				return
			}
			// Bottom-up within the shard's subtree: the nodes of level
			// width w are exactly [root*w, (root+1)*w) in heap layout,
			// where root = shards + s scaled down level by level.
			root := (capacity + lo) / span
			for w := span / 2; w >= 1; w /= 2 {
				for q := root * w; q < (root+1)*w; q++ {
					nodes[q] = nh.combineInto(arenaRow(arena, hs.fixedLen, q), nodes[2*q], nodes[2*q+1])
				}
			}
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Shard roots occupy [shards, 2*shards); finish the top of the heap.
	nh := hs.node()
	for i := shards - 1; i >= 1; i-- {
		nodes[i] = nh.combineInto(arenaRow(arena, hs.fixedLen, i), nodes[2*i], nodes[2*i+1])
	}
	return nil
}

// N reports the number of real (unpadded) leaves.
func (t *Tree) N() int { return t.n }

// Height reports the number of edges on the path from a leaf to the root;
// it equals the number of sibling hashes in every proof.
func (t *Tree) Height() int { return log2(t.cap) }

// Root returns Φ(R), the commitment the participant sends to the supervisor.
// The returned slice is a copy and safe to retain.
func (t *Tree) Root() []byte {
	root := t.nodes[1]
	if t.cap == 1 {
		// Degenerate single-leaf tree: the root is the leaf value itself,
		// exactly as Eq. (1) degenerates for n = 1.
		root = t.nodes[t.cap]
	}
	out := make([]byte, len(root))
	copy(out, root)
	return out
}

// Leaf returns the value stored at leaf index i.
func (t *Tree) Leaf(i int) ([]byte, error) {
	if i < 0 || i >= t.n {
		return nil, fmt.Errorf("%w: %d not in [0, %d)", ErrIndexOutOfRange, i, t.n)
	}
	return t.nodes[t.cap+i], nil
}

// Prove produces the audit path for leaf i: the leaf value plus the Φ values
// of the sibling of every node on the path from the leaf to the root
// (Step 3, Section 3.1 of the paper).
func (t *Tree) Prove(i int) (*Proof, error) {
	if i < 0 || i >= t.n {
		return nil, fmt.Errorf("%w: %d not in [0, %d)", ErrIndexOutOfRange, i, t.n)
	}
	siblings := make([][]byte, 0, t.Height())
	for pos := t.cap + i; pos > 1; pos /= 2 {
		siblings = append(siblings, t.nodes[pos^1])
	}
	value := make([]byte, len(t.nodes[t.cap+i]))
	copy(value, t.nodes[t.cap+i])
	return &Proof{Index: i, N: t.n, Value: value, Siblings: siblings}, nil
}

// nextPow2 returns the smallest power of two >= n (n >= 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}

// log2 returns the base-2 logarithm of a power of two.
func log2(p int) int {
	l := 0
	for p > 1 {
		p /= 2
		l++
	}
	return l
}
