package merkle

import (
	"bytes"
	"crypto/md5"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"math/rand"
	"testing"
	"testing/quick"
)

// leafValues builds n distinct deterministic leaf values.
func leafValues(n int) [][]byte {
	values := make([][]byte, n)
	for i := range values {
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(i)*2654435761)
		sum := sha256.Sum256(buf[:])
		values[i] = sum[:]
	}
	return values
}

func mustBuild(t *testing.T, values [][]byte, opts ...Option) *Tree {
	t.Helper()
	tree, err := Build(values, opts...)
	if err != nil {
		t.Fatalf("Build(%d leaves): %v", len(values), err)
	}
	return tree
}

func TestBuildRejectsInvalidInput(t *testing.T) {
	tests := []struct {
		name    string
		values  [][]byte
		wantErr error
	}{
		{name: "empty", values: nil, wantErr: ErrEmptyTree},
		{name: "nil leaf", values: [][]byte{[]byte("a"), nil}, wantErr: ErrNilLeaf},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Build(tt.values); !errors.Is(err, tt.wantErr) {
				t.Fatalf("Build: err = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestBuildHeights(t *testing.T) {
	tests := []struct {
		n          int
		wantHeight int
	}{
		{n: 1, wantHeight: 0},
		{n: 2, wantHeight: 1},
		{n: 3, wantHeight: 2},
		{n: 4, wantHeight: 2},
		{n: 5, wantHeight: 3},
		{n: 16, wantHeight: 4},
		{n: 17, wantHeight: 5},
		{n: 1024, wantHeight: 10},
	}
	for _, tt := range tests {
		t.Run(fmt.Sprintf("n=%d", tt.n), func(t *testing.T) {
			tree := mustBuild(t, leafValues(tt.n))
			if got := tree.Height(); got != tt.wantHeight {
				t.Errorf("Height() = %d, want %d", got, tt.wantHeight)
			}
			if got := tree.N(); got != tt.n {
				t.Errorf("N() = %d, want %d", got, tt.n)
			}
		})
	}
}

func TestRootIsDeterministic(t *testing.T) {
	values := leafValues(37)
	a := mustBuild(t, values)
	b := mustBuild(t, values)
	if !bytes.Equal(a.Root(), b.Root()) {
		t.Fatal("two builds over identical leaves produced different roots")
	}
}

func TestRootDependsOnEveryLeaf(t *testing.T) {
	values := leafValues(16)
	base := mustBuild(t, values).Root()
	for i := range values {
		mutated := make([][]byte, len(values))
		copy(mutated, values)
		flipped := append([]byte(nil), values[i]...)
		flipped[0] ^= 0x01
		mutated[i] = flipped
		if bytes.Equal(base, mustBuild(t, mutated).Root()) {
			t.Errorf("flipping leaf %d did not change the root", i)
		}
	}
}

func TestRootDependsOnLeafOrder(t *testing.T) {
	values := leafValues(8)
	swapped := make([][]byte, len(values))
	copy(swapped, values)
	swapped[2], swapped[5] = swapped[5], swapped[2]
	if bytes.Equal(mustBuild(t, values).Root(), mustBuild(t, swapped).Root()) {
		t.Fatal("swapping leaves did not change the root")
	}
}

func TestSingleLeafRootIsValue(t *testing.T) {
	value := []byte("only result")
	tree := mustBuild(t, [][]byte{value})
	if !bytes.Equal(tree.Root(), value) {
		t.Fatalf("single-leaf root = %x, want the leaf value", tree.Root())
	}
	proof, err := tree.Prove(0)
	if err != nil {
		t.Fatalf("Prove(0): %v", err)
	}
	if len(proof.Siblings) != 0 {
		t.Fatalf("single-leaf proof has %d siblings, want 0", len(proof.Siblings))
	}
	if err := Verify(tree.Root(), proof); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestProveVerifyAllIndices(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 9, 16, 33, 100} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			tree := mustBuild(t, leafValues(n))
			root := tree.Root()
			for i := 0; i < n; i++ {
				proof, err := tree.Prove(i)
				if err != nil {
					t.Fatalf("Prove(%d): %v", i, err)
				}
				if err := Verify(root, proof); err != nil {
					t.Fatalf("Verify(%d): %v", i, err)
				}
			}
		})
	}
}

func TestProveIndexOutOfRange(t *testing.T) {
	tree := mustBuild(t, leafValues(8))
	for _, i := range []int{-1, 8, 100} {
		if _, err := tree.Prove(i); !errors.Is(err, ErrIndexOutOfRange) {
			t.Errorf("Prove(%d): err = %v, want ErrIndexOutOfRange", i, err)
		}
	}
}

func TestVerifyDetectsTamperedValue(t *testing.T) {
	tree := mustBuild(t, leafValues(16))
	root := tree.Root()
	proof, err := tree.Prove(5)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	proof.Value = append([]byte(nil), proof.Value...)
	proof.Value[3] ^= 0x80
	if err := Verify(root, proof); !errors.Is(err, ErrRootMismatch) {
		t.Fatalf("Verify(tampered value): err = %v, want ErrRootMismatch", err)
	}
}

func TestVerifyDetectsTamperedSibling(t *testing.T) {
	tree := mustBuild(t, leafValues(16))
	root := tree.Root()
	for level := 0; level < tree.Height(); level++ {
		proof, err := tree.Prove(9)
		if err != nil {
			t.Fatalf("Prove: %v", err)
		}
		proof.Siblings[level] = append([]byte(nil), proof.Siblings[level]...)
		proof.Siblings[level][0] ^= 0x01
		if err := Verify(root, proof); !errors.Is(err, ErrRootMismatch) {
			t.Errorf("level %d: err = %v, want ErrRootMismatch", level, err)
		}
	}
}

func TestVerifyDetectsWrongIndex(t *testing.T) {
	// A proof for leaf 3 must not verify as a proof for leaf 4: the paper's
	// supervisor derives the path position from the sample index.
	tree := mustBuild(t, leafValues(16))
	root := tree.Root()
	proof, err := tree.Prove(3)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	proof.Index = 4
	if err := Verify(root, proof); !errors.Is(err, ErrRootMismatch) {
		t.Fatalf("Verify(wrong index): err = %v, want ErrRootMismatch", err)
	}
}

func TestVerifyRejectsMalformedProofs(t *testing.T) {
	tree := mustBuild(t, leafValues(8))
	root := tree.Root()
	good, err := tree.Prove(2)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}

	tests := []struct {
		name   string
		mutate func(p *Proof)
	}{
		{name: "negative index", mutate: func(p *Proof) { p.Index = -1 }},
		{name: "index beyond n", mutate: func(p *Proof) { p.Index = p.N }},
		{name: "zero n", mutate: func(p *Proof) { p.N = 0 }},
		{name: "nil value", mutate: func(p *Proof) { p.Value = nil }},
		{name: "short path", mutate: func(p *Proof) { p.Siblings = p.Siblings[:1] }},
		{name: "long path", mutate: func(p *Proof) { p.Siblings = append(p.Siblings, p.Siblings[0]) }},
		{name: "nil sibling", mutate: func(p *Proof) { p.Siblings[1] = nil }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := &Proof{
				Index:    good.Index,
				N:        good.N,
				Value:    append([]byte(nil), good.Value...),
				Siblings: append([][]byte(nil), good.Siblings...),
			}
			tt.mutate(p)
			if err := Verify(root, p); !errors.Is(err, ErrMalformedProof) {
				t.Fatalf("Verify: err = %v, want ErrMalformedProof", err)
			}
		})
	}

	if err := Verify(root, nil); !errors.Is(err, ErrMalformedProof) {
		t.Fatalf("Verify(nil): err = %v, want ErrMalformedProof", err)
	}
}

func TestVariableLengthLeavesNoAmbiguity(t *testing.T) {
	// Length-prefixed hashing must distinguish ("ab","c") from ("a","bc").
	a := mustBuild(t, [][]byte{[]byte("ab"), []byte("c")})
	b := mustBuild(t, [][]byte{[]byte("a"), []byte("bc")})
	if bytes.Equal(a.Root(), b.Root()) {
		t.Fatal("concatenation ambiguity: different leaf splits share a root")
	}
}

func TestEmptyLeafValuesAreLegal(t *testing.T) {
	tree := mustBuild(t, [][]byte{{}, []byte("x"), {}})
	for i := 0; i < 3; i++ {
		proof, err := tree.Prove(i)
		if err != nil {
			t.Fatalf("Prove(%d): %v", i, err)
		}
		if err := Verify(tree.Root(), proof); err != nil {
			t.Fatalf("Verify(%d): %v", i, err)
		}
	}
}

func TestWithHasherChangesRoot(t *testing.T) {
	values := leafValues(8)
	shaTree := mustBuild(t, values)
	md5Tree := mustBuild(t, values, WithHasher(func() hash.Hash { return md5.New() }))
	if bytes.Equal(shaTree.Root(), md5Tree.Root()) {
		t.Fatal("different hash functions produced the same root")
	}
	proof, err := md5Tree.Prove(4)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if err := Verify(md5Tree.Root(), proof, WithHasher(func() hash.Hash { return md5.New() })); err != nil {
		t.Fatalf("Verify with md5: %v", err)
	}
	if err := Verify(md5Tree.Root(), proof); !errors.Is(err, ErrRootMismatch) {
		t.Fatalf("Verify with mismatched hasher: err = %v, want ErrRootMismatch", err)
	}
}

func TestBuildFuncMatchesBuild(t *testing.T) {
	values := leafValues(21)
	a := mustBuild(t, values)
	b, err := BuildFunc(len(values), func(i int) []byte { return values[i] })
	if err != nil {
		t.Fatalf("BuildFunc: %v", err)
	}
	if !bytes.Equal(a.Root(), b.Root()) {
		t.Fatal("BuildFunc root differs from Build root")
	}
}

func TestLeafAccessor(t *testing.T) {
	values := leafValues(5)
	tree := mustBuild(t, values)
	for i, want := range values {
		got, err := tree.Leaf(i)
		if err != nil {
			t.Fatalf("Leaf(%d): %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("Leaf(%d) = %x, want %x", i, got, want)
		}
	}
	if _, err := tree.Leaf(5); !errors.Is(err, ErrIndexOutOfRange) {
		t.Fatalf("Leaf(5): err = %v, want ErrIndexOutOfRange", err)
	}
}

// TestFigure1PathStructure reproduces the worked example of Figure 1: a
// 16-leaf tree where the proof for sample x3 (leaf index 2) consists of the
// sibling leaf L4 and the Φ values of nodes A, D, and F.
func TestFigure1PathStructure(t *testing.T) {
	values := leafValues(16)
	tree := mustBuild(t, values)

	proof, err := tree.Prove(2) // x3 is the third input: index 2
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if len(proof.Siblings) != 4 {
		t.Fatalf("proof has %d siblings, want 4 (H = log2 16)", len(proof.Siblings))
	}

	hs := newHashers(buildOptions(nil))
	// Recreate the named nodes of Figure 1.
	phiA := hs.combine(values[0], values[1]) // A = hash(L1 || L2)
	phiB := hs.combine(values[2], values[3]) // B = hash(L3 || L4)
	phiC := hs.combine(phiA, phiB)           // C = hash(A || B)
	phiD := hs.combine(hs.combine(values[4], values[5]), hs.combine(values[6], values[7]))
	phiE := hs.combine(phiC, phiD) // E = hash(C || D)
	phiF := hs.combine(
		hs.combine(hs.combine(values[8], values[9]), hs.combine(values[10], values[11])),
		hs.combine(hs.combine(values[12], values[13]), hs.combine(values[14], values[15])),
	)
	phiR := hs.combine(phiE, phiF)

	wantSiblings := [][]byte{values[3], phiA, phiD, phiF} // L4, A, D, F
	for i, want := range wantSiblings {
		if !bytes.Equal(proof.Siblings[i], want) {
			t.Errorf("sibling %d mismatch with Figure 1 node", i)
		}
	}
	if !bytes.Equal(tree.Root(), phiR) {
		t.Error("root does not equal hash(E || F)")
	}
	if err := Verify(phiR, proof); err != nil {
		t.Errorf("Figure 1 verification failed: %v", err)
	}
}

func TestProofRoundTripQuick(t *testing.T) {
	// Property: for random (n, i), a generated proof marshals, unmarshals,
	// and verifies; and a one-bit corruption of the payload fails.
	f := func(nSeed uint16, iSeed uint16, corrupt bool, corruptAt uint16) bool {
		n := int(nSeed%300) + 1
		i := int(iSeed) % n
		tree, err := Build(leafValues(n))
		if err != nil {
			return false
		}
		proof, err := tree.Prove(i)
		if err != nil {
			return false
		}
		data, err := proof.MarshalBinary()
		if err != nil {
			return false
		}
		if len(data) != proof.EncodedSize() {
			return false
		}
		var decoded Proof
		if err := decoded.UnmarshalBinary(data); err != nil {
			return false
		}
		if !corrupt {
			return Verify(tree.Root(), &decoded) == nil
		}
		// Corrupt one bit of the value or a sibling; verification must fail.
		target := decoded.Value
		if len(decoded.Siblings) > 0 && corruptAt%2 == 0 {
			target = decoded.Siblings[int(corruptAt/2)%len(decoded.Siblings)]
		}
		if len(target) == 0 {
			return true // nothing to corrupt (empty value)
		}
		target[int(corruptAt)%len(target)] ^= 1 << (corruptAt % 8)
		return errors.Is(Verify(tree.Root(), &decoded), ErrRootMismatch)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestProofUnmarshalRejectsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tree := mustBuild(t, leafValues(16))
	good, err := tree.Prove(7)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	data, err := good.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}

	t.Run("truncated", func(t *testing.T) {
		for cut := 0; cut < len(data); cut += 7 {
			var p Proof
			if err := p.UnmarshalBinary(data[:cut]); err == nil {
				t.Fatalf("UnmarshalBinary accepted truncation at %d", cut)
			}
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		var p Proof
		if err := p.UnmarshalBinary(append(append([]byte(nil), data...), 0x00)); err == nil {
			t.Fatal("UnmarshalBinary accepted trailing bytes")
		}
	})
	t.Run("random garbage", func(t *testing.T) {
		for trial := 0; trial < 50; trial++ {
			junk := make([]byte, rng.Intn(200))
			rng.Read(junk)
			var p Proof
			if err := p.UnmarshalBinary(junk); err == nil {
				// Random bytes may rarely decode to a structurally valid
				// proof; it must then still be well-formed.
				if vErr := validateProof(&p); vErr != nil {
					t.Fatalf("decoded invalid proof from garbage: %v", vErr)
				}
			}
		}
	})
	t.Run("huge declared length", func(t *testing.T) {
		// index=0, n=1, value length claims 2^40 bytes.
		payload := []byte{0x00, 0x01, 0x80, 0x80, 0x80, 0x80, 0x80, 0x20}
		var p Proof
		if err := p.UnmarshalBinary(payload); err == nil {
			t.Fatal("UnmarshalBinary accepted absurd length prefix")
		}
	})
}

func TestEncodedSizeIsLogarithmic(t *testing.T) {
	// The heart of the paper's efficiency claim: proof size grows with
	// log2(n), not with n.
	sizeFor := func(n int) int {
		tree := mustBuild(t, leafValues(n))
		proof, err := tree.Prove(n / 2)
		if err != nil {
			t.Fatalf("Prove: %v", err)
		}
		return proof.EncodedSize()
	}
	s1k := sizeFor(1 << 10)
	s64k := sizeFor(1 << 16)
	// 64x more leaves must cost only ~6 extra siblings, far below 2x bytes.
	if s64k >= 2*s1k {
		t.Fatalf("proof size not logarithmic: n=2^10 → %dB, n=2^16 → %dB", s1k, s64k)
	}
	// Six more 32-byte digests with 1-byte length prefixes, plus one extra
	// varint byte each for the larger index and leaf count.
	wantExtra := 6*(32+1) + 2
	if diff := s64k - s1k; diff != wantExtra {
		t.Fatalf("size growth = %dB, want exactly %dB", diff, wantExtra)
	}
}
