package merkle

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func TestStreamBuilderMatchesTree(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 64, 65, 200} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			values := leafValues(n)
			want := mustBuild(t, values).Root()

			b, err := NewStreamBuilder(n)
			if err != nil {
				t.Fatalf("NewStreamBuilder: %v", err)
			}
			for _, v := range values {
				if err := b.Add(v); err != nil {
					t.Fatalf("Add: %v", err)
				}
			}
			got, err := b.Root()
			if err != nil {
				t.Fatalf("Root: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("stream root %x != tree root %x", got, want)
			}
		})
	}
}

func TestStreamBuilderErrors(t *testing.T) {
	if _, err := NewStreamBuilder(0); !errors.Is(err, ErrEmptyTree) {
		t.Fatalf("NewStreamBuilder(0): err = %v, want ErrEmptyTree", err)
	}

	b, err := NewStreamBuilder(2)
	if err != nil {
		t.Fatalf("NewStreamBuilder: %v", err)
	}
	if err := b.Add(nil); !errors.Is(err, ErrNilLeaf) {
		t.Fatalf("Add(nil): err = %v, want ErrNilLeaf", err)
	}
	if _, err := b.Root(); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("early Root: err = %v, want ErrIncomplete", err)
	}
	if err := b.Add([]byte("a")); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if got := b.Added(); got != 1 {
		t.Fatalf("Added() = %d, want 1", got)
	}
	if err := b.Add([]byte("b")); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := b.Add([]byte("c")); !errors.Is(err, ErrTooManyLeaves) {
		t.Fatalf("extra Add: err = %v, want ErrTooManyLeaves", err)
	}
}

func TestStreamBuilderRootIsRepeatable(t *testing.T) {
	b, err := NewStreamBuilder(3)
	if err != nil {
		t.Fatalf("NewStreamBuilder: %v", err)
	}
	for _, v := range leafValues(3) {
		if err := b.Add(v); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	first, err := b.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	second, err := b.Root()
	if err != nil {
		t.Fatalf("Root (second call): %v", err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("Root is not idempotent")
	}
}

func TestStreamBuilderQuickEquivalence(t *testing.T) {
	f := func(nSeed uint16) bool {
		n := int(nSeed%500) + 1
		values := leafValues(n)
		tree, err := Build(values)
		if err != nil {
			return false
		}
		b, err := NewStreamBuilder(n)
		if err != nil {
			return false
		}
		for _, v := range values {
			if err := b.Add(v); err != nil {
				return false
			}
		}
		got, err := b.Root()
		if err != nil {
			return false
		}
		return bytes.Equal(got, tree.Root())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
