package merkle

import (
	"bytes"
	"crypto/md5"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// buildParallelDirect constructs a tree through the parallel fill path with
// the given worker count, bypassing the size gate of buildWorkers so tiny
// and oddly-shaped domains exercise the sharding logic too.
func buildParallelDirect(t *testing.T, n, workers int, at func(i int) []byte, opts ...Option) *Tree {
	t.Helper()
	o := buildOptions(opts)
	hs := newHashers(o)
	capacity := nextPow2(n)
	if workers > capacity/2 {
		workers = capacity / 2
	}
	if workers < 1 {
		workers = 1
	}
	nodes := make([][]byte, 2*capacity)
	arena := newNodeArena(hs, capacity)
	if err := fillParallel(nodes, arena, n, capacity, at, hs, workers); err != nil {
		t.Fatalf("fillParallel(n=%d, workers=%d): %v", n, workers, err)
	}
	return &Tree{n: n, cap: capacity, nodes: nodes, hs: hs, arena: arena}
}

// TestParallelRootsMatchSequentialQuick is the core equivalence property:
// for random domain sizes (non-powers of two included) and worker counts,
// the parallel builder produces a bit-identical tree to the sequential one.
func TestParallelRootsMatchSequentialQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(816))
	property := func(nSeed uint16, wSeed uint8) bool {
		n := int(nSeed)%4096 + 2
		workers := int(wSeed)%8 + 2
		values := make([][]byte, n)
		for i := range values {
			values[i] = make([]byte, rng.Intn(48)+1)
			rng.Read(values[i])
		}
		at := func(i int) []byte { return values[i] }
		seq, err := BuildFunc(n, at)
		if err != nil {
			t.Fatalf("sequential BuildFunc(%d): %v", n, err)
		}
		par := buildParallelDirect(t, n, workers, at)
		if !bytes.Equal(seq.Root(), par.Root()) {
			t.Logf("root mismatch at n=%d workers=%d", n, workers)
			return false
		}
		// The whole heap must agree, not just the root: proofs read
		// interior nodes.
		for i := 1; i < 2*seq.cap; i++ {
			if !bytes.Equal(seq.nodes[i], par.nodes[i]) {
				t.Logf("node %d mismatch at n=%d workers=%d", i, n, workers)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelPublicPathMatchesSequential drives the exported option on a
// domain large enough to clear the size gate, for several worker counts and
// a non-power-of-two n.
func TestParallelPublicPathMatchesSequential(t *testing.T) {
	const n = parallelMinLeaves + 321
	values := leafValues(n)
	seq := mustBuild(t, values)
	for _, p := range []int{2, 3, runtime.NumCPU()} {
		par := mustBuild(t, values, WithParallelism(p))
		if !bytes.Equal(seq.Root(), par.Root()) {
			t.Fatalf("WithParallelism(%d): root differs from sequential build", p)
		}
		// Proofs from the parallel tree must verify exactly like
		// sequential ones.
		for _, i := range []int{0, 1, n / 2, n - 1} {
			proof, err := par.Prove(i)
			if err != nil {
				t.Fatalf("Prove(%d): %v", i, err)
			}
			if err := Verify(seq.Root(), proof); err != nil {
				t.Fatalf("parallel proof %d rejected against sequential root: %v", i, err)
			}
		}
	}
}

// TestParallelRespectsHasherOption checks option plumbing: a non-default
// hash must flow into the worker pool.
func TestParallelRespectsHasherOption(t *testing.T) {
	const n = parallelMinLeaves + 7
	values := leafValues(n)
	seq := mustBuild(t, values, WithHasher(md5.New))
	par := mustBuild(t, values, WithHasher(md5.New), WithParallelism(4))
	if !bytes.Equal(seq.Root(), par.Root()) {
		t.Fatal("md5 parallel root differs from md5 sequential root")
	}
	if bytes.Equal(seq.Root(), mustBuild(t, values).Root()) {
		t.Fatal("md5 root unexpectedly equals sha256 root")
	}
}

// TestParallelCallsEachLeafOnce verifies the exactly-once contract of
// BuildFunc under a worker pool.
func TestParallelCallsEachLeafOnce(t *testing.T) {
	const n = parallelMinLeaves + 100
	counts := make([]int64, n)
	values := leafValues(n)
	_, err := BuildFunc(n, func(i int) []byte {
		atomic.AddInt64(&counts[i], 1)
		return values[i]
	}, WithParallelism(runtime.NumCPU()))
	if err != nil {
		t.Fatalf("BuildFunc: %v", err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("leaf %d evaluated %d times, want exactly 1", i, c)
		}
	}
}

// TestParallelNilLeafError verifies nil-leaf detection survives sharding.
func TestParallelNilLeafError(t *testing.T) {
	const n = parallelMinLeaves + 5
	values := leafValues(n)
	bad := n - 3
	_, err := BuildFunc(n, func(i int) []byte {
		if i == bad {
			return nil
		}
		return values[i]
	}, WithParallelism(4))
	if err == nil {
		t.Fatal("BuildFunc accepted a nil leaf under parallelism")
	}
}

// TestBuildWorkersClamps pins the resolution rules: sequential below the
// size gate, never more workers than CPUs or half the leaves.
func TestBuildWorkersClamps(t *testing.T) {
	if got := buildWorkers(8, parallelMinLeaves/2); got != 1 {
		t.Fatalf("small tree: workers = %d, want 1", got)
	}
	if got := buildWorkers(0, 1<<20); got != 1 {
		t.Fatalf("zero request: workers = %d, want 1", got)
	}
	if got := buildWorkers(1<<20, 1<<20); got > runtime.NumCPU() {
		t.Fatalf("workers = %d exceeds NumCPU %d", got, runtime.NumCPU())
	}
}
