package merkle

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"hash"
	"math/rand"
	"testing"
	"testing/quick"
)

// variableHash reports a Size() that disagrees with its Sum length, forcing
// the merkle package onto the allocating fallback path for variable-size
// digests. The underlying function is still deterministic sha256.
type variableHash struct{ hash.Hash }

func newVariableHash() hash.Hash { return variableHash{Hash: sha256.New()} }

func (v variableHash) Size() int { return 16 }

// TestStreamBuilderShardedMatchesSerial sweeps leaf counts (powers of two,
// off-by-ones, tiny trees where sharding disables itself) against a grid of
// parallelism degrees: every combination must reproduce the serial root
// bit for bit.
func TestStreamBuilderShardedMatchesSerial(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 64, 65, 200, 257, 1024, 1031} {
		values := leafValues(n)
		want := mustBuild(t, values).Root()
		for _, p := range []int{1, 2, 3, 4, 7, 8, 16} {
			t.Run(fmt.Sprintf("n=%d/p=%d", n, p), func(t *testing.T) {
				b, err := NewStreamBuilder(n, WithParallelism(p))
				if err != nil {
					t.Fatalf("NewStreamBuilder: %v", err)
				}
				for _, v := range values {
					if err := b.Add(v); err != nil {
						t.Fatalf("Add: %v", err)
					}
				}
				got, err := b.Root()
				if err != nil {
					t.Fatalf("Root: %v", err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("sharded root %x != serial root %x", got, want)
				}
			})
		}
	}
}

// TestStreamBuilderShardedQuick is the randomized equivalence property over
// (n, p) pairs, with variable-length leaf values.
func TestStreamBuilderShardedQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(2004))
	f := func(nSeed uint16, pSeed uint8) bool {
		n := int(nSeed%2000) + 1
		p := int(pSeed%10) + 1
		values := make([][]byte, n)
		for i := range values {
			values[i] = make([]byte, rng.Intn(40)+1)
			rng.Read(values[i])
		}
		tree, err := Build(values)
		if err != nil {
			return false
		}
		b, err := NewStreamBuilder(n, WithParallelism(p))
		if err != nil {
			return false
		}
		for _, v := range values {
			if err := b.Add(v); err != nil {
				return false
			}
		}
		got, err := b.Root()
		if err != nil {
			return false
		}
		return bytes.Equal(got, tree.Root())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestStreamBuilderShardedErrorSemantics pins that the sharded builder keeps
// the serial builder's contract: nil leaves and overflow rejected up front,
// ErrIncomplete before all leaves arrive, idempotent Root after.
func TestStreamBuilderShardedErrorSemantics(t *testing.T) {
	b, err := NewStreamBuilder(8, WithParallelism(4))
	if err != nil {
		t.Fatalf("NewStreamBuilder: %v", err)
	}
	if err := b.Add(nil); !errors.Is(err, ErrNilLeaf) {
		t.Fatalf("Add(nil): err = %v, want ErrNilLeaf", err)
	}
	if _, err := b.Root(); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("early Root: err = %v, want ErrIncomplete", err)
	}
	values := leafValues(8)
	for _, v := range values {
		if err := b.Add(v); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if err := b.Add([]byte("extra")); !errors.Is(err, ErrTooManyLeaves) {
		t.Fatalf("extra Add: err = %v, want ErrTooManyLeaves", err)
	}
	first, err := b.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	second, err := b.Root()
	if err != nil {
		t.Fatalf("Root (second call): %v", err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("sharded Root is not idempotent")
	}
	if want := mustBuild(t, values).Root(); !bytes.Equal(first, want) {
		t.Fatalf("sharded root %x != tree root %x", first, want)
	}
}

// TestStreamBuilderShardedVariableHasher drives the sharded path over the
// allocating fallback engine (a hasher whose Sum length disagrees with
// Size()), which must still produce the serial fallback's root.
func TestStreamBuilderShardedVariableHasher(t *testing.T) {
	const n = 77
	values := leafValues(n)
	serial, err := NewStreamBuilder(n, WithHasher(newVariableHash))
	if err != nil {
		t.Fatalf("NewStreamBuilder: %v", err)
	}
	sharded, err := NewStreamBuilder(n, WithHasher(newVariableHash), WithParallelism(4))
	if err != nil {
		t.Fatalf("NewStreamBuilder: %v", err)
	}
	for _, v := range values {
		if err := serial.Add(v); err != nil {
			t.Fatalf("serial Add: %v", err)
		}
		if err := sharded.Add(v); err != nil {
			t.Fatalf("sharded Add: %v", err)
		}
	}
	want, err := serial.Root()
	if err != nil {
		t.Fatalf("serial Root: %v", err)
	}
	got, err := sharded.Root()
	if err != nil {
		t.Fatalf("sharded Root: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("variable-hasher sharded root %x != serial %x", got, want)
	}
}

// FuzzStreamBuilderSharded fuzzes the sharded builder against the serial one
// and the materialized tree: random leaf count, random per-leaf sizes carved
// from the fuzz input, random parallelism. Any divergence is a soundness bug
// in the frontier merge.
func FuzzStreamBuilderSharded(f *testing.F) {
	f.Add(uint16(1), uint8(0), []byte{0x01})
	f.Add(uint16(5), uint8(3), []byte("hello fuzzer"))
	f.Add(uint16(64), uint8(4), bytes.Repeat([]byte{0xAB}, 64))
	f.Add(uint16(1031), uint8(9), []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Fuzz(func(t *testing.T, nSeed uint16, pSeed uint8, data []byte) {
		n := int(nSeed%1500) + 1
		p := int(pSeed % 12)
		values := make([][]byte, n)
		for i := range values {
			// Carve variable-length leaves out of the fuzz data; empty
			// leaves are legal, nil is not.
			if len(data) == 0 {
				values[i] = []byte{}
				continue
			}
			take := int(data[0])%7 + 1
			if take > len(data) {
				take = len(data)
			}
			values[i] = data[:take]
			data = data[take:]
		}
		tree, err := Build(values)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		b, err := NewStreamBuilder(n, WithParallelism(p))
		if err != nil {
			t.Fatalf("NewStreamBuilder: %v", err)
		}
		for i, v := range values {
			if err := b.Add(v); err != nil {
				t.Fatalf("Add(%d): %v", i, err)
			}
		}
		got, err := b.Root()
		if err != nil {
			t.Fatalf("Root: %v", err)
		}
		if want := tree.Root(); !bytes.Equal(got, want) {
			t.Fatalf("n=%d p=%d: sharded root %x != tree root %x", n, p, got, want)
		}
	})
}
