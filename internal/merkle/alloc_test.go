//go:build !race

package merkle

import (
	"bytes"
	"testing"
)

// The allocation regressions pinned here are the point of the arena /
// reusable-digest design: combine-per-node and StreamBuilder.Add must stay
// allocation-free in steady state, and a full Build must allocate O(depth),
// not O(leaves). The file is excluded from race builds because the race
// runtime adds its own allocations.

func TestCombineIntoZeroAlloc(t *testing.T) {
	hs := newHashers(buildOptions(nil))
	if hs.fixedLen == 0 {
		t.Fatal("default hasher should have a fixed digest size")
	}
	nh := hs.node()
	left := bytes.Repeat([]byte{0x11}, hs.fixedLen)
	right := bytes.Repeat([]byte{0x22}, hs.fixedLen)
	dst := make([]byte, 0, hs.fixedLen)
	allocs := testing.AllocsPerRun(100, func() {
		dst = nh.combineInto(dst[:0], left, right)
	})
	if allocs != 0 {
		t.Fatalf("combineInto allocates %.1f per call, want 0", allocs)
	}
	if want := hs.combine(left, right); !bytes.Equal(dst, want) {
		t.Fatalf("combineInto digest %x != combine digest %x", dst, want)
	}
}

func TestCombineIntoAliasedDst(t *testing.T) {
	// The merge cascade reuses a row that may alias an input; both children
	// are absorbed into the hash state before dst is written, so the digest
	// must not change when dst overlaps left.
	hs := newHashers(buildOptions(nil))
	nh := hs.node()
	left := bytes.Repeat([]byte{0x33}, hs.fixedLen)
	right := bytes.Repeat([]byte{0x44}, hs.fixedLen)
	want := hs.combine(left, right)
	got := nh.combineInto(left[:0], left, right)
	if !bytes.Equal(got, want) {
		t.Fatalf("aliased combineInto %x != combine %x", got, want)
	}
}

func TestStreamBuilderAddZeroAllocSteadyState(t *testing.T) {
	const n = 1 << 10
	values := leafValues(n)
	// AllocsPerRun calls the function runs+1 times (one warm-up); each call
	// consumes one pre-built builder so Add's own cost is all that is
	// measured.
	const runs = 5
	builders := make([]*StreamBuilder, runs+1)
	for i := range builders {
		b, err := NewStreamBuilder(n)
		if err != nil {
			t.Fatalf("NewStreamBuilder: %v", err)
		}
		builders[i] = b
	}
	idx := 0
	allocs := testing.AllocsPerRun(runs, func() {
		b := builders[idx]
		idx++
		for _, v := range values {
			if err := b.Add(v); err != nil {
				t.Fatalf("Add: %v", err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("StreamBuilder.Add allocates %.1f per %d-leaf stream, want 0", allocs, n)
	}
}

func TestBuildAllocsAreDepthBound(t *testing.T) {
	const n = 1 << 14
	values := leafValues(n)
	at := func(i int) []byte { return values[i] }
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := BuildFunc(n, at); err != nil {
			t.Fatalf("BuildFunc: %v", err)
		}
	})
	// A handful of fixed allocations (nodes slice, arena slab, tree header,
	// hash states) — O(depth) at worst, never O(leaves). The seed build
	// allocated ~4 per leaf (65536+ here).
	if allocs > 16 {
		t.Fatalf("Build of %d leaves allocates %.0f, want <= 16", n, allocs)
	}
}

func TestVariableHasherFallbackStillCorrect(t *testing.T) {
	// Custom hashers with variable digest sizes take the allocating path;
	// tree, stream, and proofs must stay mutually consistent there.
	const n = 37
	values := leafValues(n)
	tree, err := Build(values, WithHasher(newVariableHash))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	b, err := NewStreamBuilder(n, WithHasher(newVariableHash))
	if err != nil {
		t.Fatalf("NewStreamBuilder: %v", err)
	}
	for _, v := range values {
		if err := b.Add(v); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	streamRoot, err := b.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	if !bytes.Equal(streamRoot, tree.Root()) {
		t.Fatalf("fallback stream root %x != tree root %x", streamRoot, tree.Root())
	}
	proof, err := tree.Prove(n / 2)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if err := Verify(tree.Root(), proof, WithHasher(newVariableHash)); err != nil {
		t.Fatalf("fallback proof rejected: %v", err)
	}
}
